package scheme

import (
	"mcddvfs/internal/baselines"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
)

// The fixed-interval attack/decay controller of Semeraro et al. [9]:
// interval-boundary statistics drive a proportional "attack" on large
// swings and a slow downward "decay" while the queue is comfortable.
func init() {
	Register(Descriptor{
		Name:        "attack-decay",
		Order:       30,
		Controlled:  true,
		Description: "fixed-interval attack/decay controller [Semeraro et al. 2002]",
		Attach: func(p *mcd.Processor, opt Options) error {
			for d := 0; d < isa.NumExecDomains; d++ {
				dom := isa.ExecDomain(d)
				cfg := baselines.DefaultAttackDecay()
				if dom == isa.DomainInt {
					cfg.QRef = 7
				}
				p.Attach(dom, baselines.NewAttackDecay(cfg))
			}
			return nil
		},
	})
}
