package scheme

import "mcddvfs/internal/mcd"

// The no-DVFS baseline: every domain pinned at f_max. It anchors every
// comparison (energy saving, performance degradation, and EDP are all
// measured against it), which is why it is the one registered scheme
// with Controlled false.
func init() {
	Register(Descriptor{
		Name:        "none",
		Order:       0,
		Controlled:  false,
		Description: "no DVFS: all domains pinned at f_max (the comparison baseline)",
		Attach:      func(p *mcd.Processor, opt Options) error { return nil },
	})
}
