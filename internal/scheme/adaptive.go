package scheme

import (
	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
)

// The paper's scheme: per-domain event-driven control with adaptive
// reaction time (Section 3). Each domain uses the paper's reference
// occupancy (7 for INT, 4 for FP/LS); on machines with a
// DVFS-controllable dispatch domain the scheme also drives the front
// end from the fetch-queue occupancy.
func init() {
	Register(Descriptor{
		Name:        "adaptive",
		Order:       10,
		Controlled:  true,
		Description: "the paper's adaptive reaction-time controller (two-signal FSM per domain)",
		Attach: func(p *mcd.Processor, opt Options) error {
			if opt.Machine != nil && opt.Machine.ControlFrontEnd {
				cfg := control.DefaultConfig(isa.DomainFP) // qref 4 on the 16-entry fetch queue
				if opt.MutateAdaptive != nil {
					opt.MutateAdaptive(&cfg)
				}
				p.AttachFrontEnd(control.NewAdaptive(cfg))
			}
			for d := 0; d < isa.NumExecDomains; d++ {
				dom := isa.ExecDomain(d)
				cfg := control.DefaultConfig(dom)
				if opt.MutateAdaptive != nil {
					opt.MutateAdaptive(&cfg)
				}
				p.Attach(dom, control.NewAdaptive(cfg))
			}
			return nil
		},
	})
}
