// Package scheme is the registry of DVFS control schemes. Every scheme
// the harness can run — the paper's adaptive controller, the prior-work
// fixed-interval baselines, and any extension — self-registers a
// Descriptor at init time; every dispatch site in the repository
// (attach, validation, matrix building, report/SVG column ordering,
// CLI parsing and -h listings) derives its behavior from the registry
// instead of switching on a scheme name.
//
// Adding a scheme is therefore one new file in this package (plus its
// controller implementation wherever it lives): write a Descriptor,
// call Register from the file's init, and the experiment harness, both
// CLIs, and the public API pick it up with zero edits elsewhere. The
// mcdlint schemeswitch analyzer enforces the other direction: a
// switch-on-Scheme outside this package fails `make lint`, so dispatch
// cannot silently re-fragment. See docs/ARCHITECTURE.md, "Scheme
// registry", for the walkthrough.
package scheme

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mcddvfs/internal/control"
	"mcddvfs/internal/mcd"
)

// Options carries the per-run knobs a scheme's Validate and Attach
// hooks may consult. It is the registry-facing projection of
// experiment.Options (which cannot be imported here without a cycle):
// the experiment harness converts before dispatching.
type Options struct {
	// Machine, when non-nil, is the machine configuration override the
	// run uses; the adaptive scheme inspects it for a DVFS-controllable
	// dispatch domain (Config.ControlFrontEnd).
	Machine *mcd.Config
	// MutateAdaptive, when non-nil, adjusts each adaptive controller's
	// configuration before attachment (the ablation hook).
	MutateAdaptive func(*control.Config)
	// PIDIntervalTicks overrides the PID decision interval (0 = the
	// 2500-tick default) — the Table-3 sweep knob.
	PIDIntervalTicks int
}

// Descriptor is one scheme's self-description: everything a dispatch
// site needs to validate, construct, list, or order the scheme without
// knowing it by name.
type Descriptor struct {
	// Name is the stable external identifier: CLI flag value, cache-key
	// component, Result.Scheme label, report column header. Renaming a
	// registered scheme is a breaking change (it retires disk-cache
	// entries and breaks saved artifacts); don't.
	Name string
	// Order fixes the display and iteration order everywhere schemes
	// are enumerated (matrix columns, -h listings, Schemes()). Every
	// registered scheme needs a distinct Order so artifacts stay
	// byte-stable no matter the registration sequence.
	Order int
	// Controlled marks schemes that actually scale frequency; the
	// no-DVFS baseline is the one registered scheme without it.
	Controlled bool
	// Extension marks schemes outside the paper's core comparison
	// (adaptive vs pid vs attack-decay). Extensions never join the
	// default matrix or sweep sets — they run only when requested
	// explicitly — so pre-existing artifacts stay byte-identical as
	// new schemes register.
	Extension bool
	// Description is the one-line summary shown by CLI -h listings and
	// the public Schemes() API.
	Description string
	// Validate, when non-nil, front-loads per-scheme option checks so
	// bad specs surface at the API boundary (wrapped in ErrInvalidSpec
	// by the caller) instead of as panics mid-simulation.
	Validate func(opt Options) error
	// Attach wires the scheme's controllers onto a constructed
	// processor. It must be deterministic and must not retain opt.
	Attach func(p *mcd.Processor, opt Options) error
}

// registry holds every registered descriptor. Registration happens in
// package init functions (single-goroutine by the language spec), but
// the mutex also makes test-time registration race-safe.
var registry = struct {
	sync.Mutex
	byName  map[string]Descriptor
	byOrder map[int]string
}{byName: make(map[string]Descriptor), byOrder: make(map[int]string)}

// Register adds a scheme to the registry. It panics on a nil Attach,
// an empty or whitespace-carrying name, a duplicate name, or a
// duplicate order: every one of these is a programming error that must
// surface at init time, not as a silently shadowed scheme at run time.
func Register(d Descriptor) {
	if d.Name == "" || strings.TrimSpace(d.Name) != d.Name {
		panic(fmt.Sprintf("scheme: invalid name %q", d.Name))
	}
	if d.Attach == nil {
		panic(fmt.Sprintf("scheme: %q registered without an Attach hook", d.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[d.Name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", d.Name))
	}
	if prev, dup := registry.byOrder[d.Order]; dup {
		panic(fmt.Sprintf("scheme: %q reuses order %d of %q", d.Name, d.Order, prev))
	}
	registry.byName[d.Name] = d
	registry.byOrder[d.Order] = d.Name
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	registry.Lock()
	defer registry.Unlock()
	d, ok := registry.byName[name]
	return d, ok
}

// All returns every registered descriptor in display order. The slice
// is freshly allocated; callers may keep or mutate it.
func All() []Descriptor {
	registry.Lock()
	out := make([]Descriptor, 0, len(registry.byName))
	for _, d := range registry.byName {
		out = append(out, d)
	}
	registry.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// Default returns the paper's core comparison set — the controlled,
// non-extension schemes — in display order. This is the column set of
// every default artifact, so its contents and order are part of the
// byte-stability contract.
func Default() []Descriptor {
	var out []Descriptor
	for _, d := range All() {
		if d.Controlled && !d.Extension {
			out = append(out, d)
		}
	}
	return out
}

// Names returns every registered scheme name in display order — the
// list CLI errors and -h texts print.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// NamesList renders the registered names as one comma-separated string
// for error messages and flag usage texts.
func NamesList() string {
	return strings.Join(Names(), ", ")
}
