package scheme

import (
	"mcddvfs/internal/baselines"
	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
)

// Chip-coupled scaling, an extension beyond the paper's comparison:
// one adaptive decision engine driven by the most loaded queue, all
// execution domains forced to the same frequency. It approximates
// conventional synchronous-chip DVFS and quantifies the benefit of
// per-domain MCD control; as an extension it never joins the default
// matrix.
func init() {
	Register(Descriptor{
		Name:        "global",
		Order:       40,
		Controlled:  true,
		Extension:   true,
		Description: "chip-coupled scaling: one adaptive engine drives every domain (extension)",
		Attach: func(p *mcd.Processor, opt Options) error {
			g := baselines.NewGlobal(control.DefaultConfig(isa.DomainFP))
			for d := 0; d < isa.NumExecDomains; d++ {
				p.Attach(isa.ExecDomain(d), g.Port(isa.ExecDomain(d)))
			}
			return nil
		},
	})
}
