package scheme

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mcddvfs/internal/mcd"
)

// TestBuiltinOrdering pins the display order the byte-stability of
// every artifact depends on: the registry must enumerate the seed
// schemes first, in the pre-registry column order, with the extensions
// after them.
func TestBuiltinOrdering(t *testing.T) {
	names := Names()
	want := []string{"none", "adaptive", "pid", "attack-decay", "global", "pid-adaptive"}
	if len(names) < len(want) {
		t.Fatalf("registry has %d schemes, want at least %d (%v)", len(names), len(want), names)
	}
	if !reflect.DeepEqual(names[:len(want)], want) {
		t.Errorf("display order = %v, want prefix %v", names, want)
	}
	// All() must agree with Names() and be sorted by Order.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Order >= all[i].Order {
			t.Errorf("All() not strictly ordered: %q (%d) before %q (%d)",
				all[i-1].Name, all[i-1].Order, all[i].Name, all[i].Order)
		}
	}
}

// TestDefaultSet pins the paper's core comparison: the default set
// must stay exactly adaptive/pid/attack-decay no matter how many
// extensions register, or pre-refactor artifacts change bytes.
func TestDefaultSet(t *testing.T) {
	var names []string
	for _, d := range Default() {
		names = append(names, d.Name)
		if !d.Controlled || d.Extension {
			t.Errorf("default set includes %q (controlled=%v extension=%v)", d.Name, d.Controlled, d.Extension)
		}
	}
	if want := []string{"adaptive", "pid", "attack-decay"}; !reflect.DeepEqual(names, want) {
		t.Errorf("Default() = %v, want %v", names, want)
	}
}

// TestRegisterPanics covers every init-time invariant: duplicate name,
// duplicate order, empty name, and a missing Attach hook all panic.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, d Descriptor) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(d)
	}
	attach := func(p *mcd.Processor, opt Options) error { return nil }
	mustPanic("duplicate name", Descriptor{Name: "adaptive", Order: 990001, Attach: attach})
	mustPanic("duplicate order", Descriptor{Name: "nonce-scheme", Order: 0, Attach: attach})
	mustPanic("empty name", Descriptor{Name: "", Order: 990002, Attach: attach})
	mustPanic("padded name", Descriptor{Name: " padded", Order: 990003, Attach: attach})
	mustPanic("nil attach", Descriptor{Name: "no-attach", Order: 990004})

	// A failed registration must not leave a partial entry behind.
	if _, ok := Lookup("nonce-scheme"); ok {
		t.Error("panicked registration still inserted the scheme")
	}
}

// TestLookup covers hit and miss, and that descriptors round-trip.
func TestLookup(t *testing.T) {
	d, ok := Lookup("pid")
	if !ok || d.Name != "pid" || !d.Controlled || d.Extension {
		t.Errorf("Lookup(pid) = %+v, %v", d, ok)
	}
	if _, ok := Lookup("warp-speed"); ok {
		t.Error("Lookup accepted an unregistered scheme")
	}
}

// TestValidateHook exercises the per-scheme option validation seam.
func TestValidateHook(t *testing.T) {
	d, _ := Lookup("pid")
	if d.Validate == nil {
		t.Fatal("pid descriptor has no Validate hook")
	}
	if err := d.Validate(Options{PIDIntervalTicks: -1}); err == nil {
		t.Error("negative PID interval accepted")
	}
	if err := d.Validate(Options{PIDIntervalTicks: 312}); err != nil {
		t.Errorf("valid PID interval rejected: %v", err)
	}
}

// TestAttachErrorPropagates proves Attach hooks can fail cleanly: a
// registered scheme whose constructor errors surfaces that error to
// the caller (the experiment harness wraps it further).
func TestAttachErrorPropagates(t *testing.T) {
	sentinel := errors.New("no hardware")
	Register(Descriptor{
		Name:        "test-failing",
		Order:       990100,
		Controlled:  true,
		Extension:   true,
		Description: "test-only scheme whose Attach always fails",
		Attach:      func(p *mcd.Processor, opt Options) error { return sentinel },
	})
	d, ok := Lookup("test-failing")
	if !ok {
		t.Fatal("test scheme not registered")
	}
	if err := d.Attach(nil, Options{}); !errors.Is(err, sentinel) {
		t.Errorf("Attach error not propagated: %v", err)
	}
	// The test registration lands after every builtin in the listing.
	names := Names()
	if names[len(names)-1] != "test-failing" {
		t.Errorf("high-order registration not last: %v", names)
	}
	if !strings.Contains(NamesList(), "adaptive, pid, attack-decay") {
		t.Errorf("NamesList() lost the builtin order: %s", NamesList())
	}
}
