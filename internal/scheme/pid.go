package scheme

import (
	"fmt"

	"mcddvfs/internal/baselines"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
)

// The fixed-interval PID controller of Wu et al. [23], the paper's
// strongest prior-work comparison. Options.PIDIntervalTicks shortens or
// stretches the decision interval (the Table-3 sweep).
func init() {
	Register(Descriptor{
		Name:        "pid",
		Order:       20,
		Controlled:  true,
		Description: "fixed-interval PID controller [Wu et al. 2004]",
		Validate: func(opt Options) error {
			if opt.PIDIntervalTicks < 0 {
				return fmt.Errorf("scheme: negative PID interval %d ticks", opt.PIDIntervalTicks)
			}
			return nil
		},
		Attach: func(p *mcd.Processor, opt Options) error {
			for d := 0; d < isa.NumExecDomains; d++ {
				dom := isa.ExecDomain(d)
				cfg := baselines.DefaultPID()
				if dom == isa.DomainInt {
					cfg.QRef = 7
				}
				if opt.PIDIntervalTicks > 0 {
					cfg.IntervalTicks = opt.PIDIntervalTicks
				}
				p.Attach(dom, baselines.NewPID(cfg))
			}
			return nil
		},
	})
}
