package scheme

import (
	"fmt"

	"mcddvfs/internal/baselines"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
)

// pid-adaptive is the registry's proof-of-seam scheme: the
// fixed-interval PID law wrapped in the paper's adaptive reaction-time
// trigger. It exists entirely in this file plus its controller
// (baselines.AdaptivePID) — no dispatch site elsewhere knows it by
// name — and, as an extension, it renders as an extra report column
// only when a scheme subset requests it (Options.Schemes / -schemes).
//
// Options.PIDIntervalTicks, the Table-3 knob, maps onto the decision
// floor here so the same sweep can be pointed at this scheme.
func init() {
	Register(Descriptor{
		Name:        "pid-adaptive",
		Order:       50,
		Controlled:  true,
		Extension:   true,
		Description: "PID control law behind the paper's adaptive reaction-time trigger (extension)",
		Validate: func(opt Options) error {
			if opt.PIDIntervalTicks < 0 {
				return fmt.Errorf("scheme: negative PID interval %d ticks", opt.PIDIntervalTicks)
			}
			return nil
		},
		Attach: func(p *mcd.Processor, opt Options) error {
			for d := 0; d < isa.NumExecDomains; d++ {
				dom := isa.ExecDomain(d)
				cfg := baselines.DefaultAdaptivePID()
				if dom == isa.DomainInt {
					cfg.QRef = 7
				}
				if opt.PIDIntervalTicks > 0 {
					cfg.MinIntervalTicks = opt.PIDIntervalTicks
				}
				p.Attach(dom, baselines.NewAdaptivePID(cfg))
			}
			return nil
		},
	})
}
