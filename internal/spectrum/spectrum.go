package spectrum

import (
	"fmt"
	"math"

	"mcddvfs/internal/stats"
)

// Spectrum is a one-sided variance spectrum: Power[j] is the variance
// contributed by frequency bin j (cycles per sample f_j = j/NFFT,
// j = 1..NFFT/2; the DC bin is excluded since series are detrended).
// Σ Power ≈ the series variance (Parseval).
type Spectrum struct {
	Power []float64 // indexed by bin; Power[0] is unused (DC removed)
	N     int       // original series length
	NFFT  int       // transform length (power of two, >= N)
}

// Freq returns the frequency of bin j in cycles per sample.
func (s *Spectrum) Freq(j int) float64 { return float64(j) / float64(s.NFFT) }

// Wavelength returns the period of bin j in samples.
func (s *Spectrum) Wavelength(j int) float64 {
	if j == 0 {
		return math.Inf(1)
	}
	return float64(s.NFFT) / float64(j)
}

// TotalVariance integrates the whole spectrum.
func (s *Spectrum) TotalVariance() float64 {
	sum := 0.0
	for j := 1; j < len(s.Power); j++ {
		sum += s.Power[j]
	}
	return sum
}

// BandVariance integrates the variance at wavelengths within
// [minWavelength, maxWavelength) samples.
func (s *Spectrum) BandVariance(minWavelength, maxWavelength float64) float64 {
	sum := 0.0
	for j := 1; j < len(s.Power); j++ {
		w := s.Wavelength(j)
		if w >= minWavelength && w < maxWavelength {
			sum += s.Power[j]
		}
	}
	return sum
}

// ShortWavelengthShare returns the fraction of total variance at
// wavelengths strictly shorter than the given length in samples — the
// paper's fast-workload-variation metric (Figure 8's dotted-line
// region, normalized).
func (s *Spectrum) ShortWavelengthShare(wavelength float64) float64 {
	tot := s.TotalVariance()
	if tot <= 0 {
		return 0
	}
	return s.BandVariance(0, wavelength) / tot
}

// FastShare returns the share of *workload* variance in the
// fast-variation band [noiseWavelength, intervalWavelength), relative
// to all variance above the noise floor. Occupancy series carry
// tick-level sampling noise that is white — it spreads variance across
// every bin and would otherwise dominate any short-wavelength measure;
// wavelengths below noiseWavelength are ignored because no controller
// (adaptive or fixed-interval) can act on them anyway.
func (s *Spectrum) FastShare(noiseWavelength, intervalWavelength float64) float64 {
	tot := s.BandVariance(noiseWavelength, math.Inf(1))
	if tot <= 0 {
		return 0
	}
	return s.BandVariance(noiseWavelength, intervalWavelength) / tot
}

// Periodogram estimates the variance spectrum of x with a plain
// (single-taper, boxcar) periodogram. The series is detrended and
// zero-padded to a power of two.
func Periodogram(x []float64) (*Spectrum, error) {
	return estimate(x, 1, false)
}

// Multitaper estimates the variance spectrum with k sine tapers
// (Riedel & Sidorenko), the closed-form approximation to the Thomson
// DPSS tapers the paper's Multi-taper method uses. Averaging the k
// orthogonal eigenspectra trades a small bias for a k-fold variance
// reduction of the estimate.
func Multitaper(x []float64, k int) (*Spectrum, error) {
	if k < 1 {
		return nil, fmt.Errorf("spectrum: taper count %d < 1", k)
	}
	return estimate(x, k, true)
}

func estimate(x []float64, k int, taper bool) (*Spectrum, error) {
	n := len(x)
	if n < 8 {
		return nil, fmt.Errorf("spectrum: series too short (%d samples)", n)
	}
	d := stats.Detrend(x)
	nfft := NextPow2(n)
	half := nfft / 2
	power := make([]float64, half+1)

	buf := make([]complex128, nfft)
	accumulate := func(w []float64, scale float64) {
		for i := range buf {
			buf[i] = 0
		}
		for t := 0; t < n; t++ {
			v := d[t]
			if w != nil {
				v *= w[t]
			}
			buf[t] = complex(v, 0)
		}
		X := FFT(buf)
		for j := 1; j <= half; j++ {
			p := real(X[j])*real(X[j]) + imag(X[j])*imag(X[j])
			if j != half {
				p *= 2 // fold the conjugate-symmetric half
			}
			power[j] += p * scale
		}
	}

	if !taper {
		// Periodogram normalization: Σ_j |X_j|²/(nfft·n) = variance.
		accumulate(nil, 1/(float64(nfft)*float64(n)))
	} else {
		tapers := SineTapers(n, k)
		for _, w := range tapers {
			// Unit-energy taper: Σ_j |Y_j|²/nfft = Σ_t (w_t·x_t)² ≈ var·Σw².
			accumulate(w, 1/(float64(nfft)*float64(k)))
		}
	}
	return &Spectrum{Power: power, N: n, NFFT: nfft}, nil
}

// SineTapers returns the first k sine tapers of length n, normalized to
// unit energy: w_k(t) = √(2/(n+1))·sin(π(k+1)(t+1)/(n+1)).
func SineTapers(n, k int) [][]float64 {
	out := make([][]float64, k)
	norm := math.Sqrt(2 / float64(n+1))
	for i := 0; i < k; i++ {
		w := make([]float64, n)
		for t := 0; t < n; t++ {
			w[t] = norm * math.Sin(math.Pi*float64(i+1)*float64(t+1)/float64(n+1))
		}
		out[i] = w
	}
	return out
}

// Classification is the verdict for one benchmark's occupancy series.
type Classification struct {
	// ShortShare is the fraction of occupancy variance at wavelengths
	// shorter than the fixed-interval length.
	ShortShare float64
	// TotalVariance is the series variance captured by the spectrum.
	TotalVariance float64
	// Fast is true when ShortShare exceeds the decision threshold.
	Fast bool
}

// DefaultIntervalSamples is the fixed-interval length expressed in
// sampling periods: a 10K-instruction interval at IPC ≈ 1 and 1 GHz is
// 10 µs = 2500 periods of the 250 MHz sampling clock.
const DefaultIntervalSamples = 2500

// DefaultNoiseSamples is the noise-floor wavelength (1 µs): variations
// faster than this are sampling noise no controller acts on.
const DefaultNoiseSamples = 250

// DefaultFastShareThreshold is the decision threshold on the fast
// share. A benchmark whose sub-interval wavelengths carry more than
// this share of the workload variance swings faster than a
// fixed-interval controller can react.
const DefaultFastShareThreshold = 0.75

// Classify runs the paper's fast-workload-variation test on an
// occupancy series using the multitaper estimator with 5 tapers.
func Classify(x []float64, intervalSamples float64, threshold float64) (Classification, error) {
	s, err := Multitaper(x, 5)
	if err != nil {
		return Classification{}, err
	}
	share := s.FastShare(DefaultNoiseSamples, intervalSamples)
	return Classification{
		ShortShare:    share,
		TotalVariance: s.BandVariance(DefaultNoiseSamples, math.Inf(1)),
		Fast:          share > threshold,
	}, nil
}
