package spectrum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mcddvfs/internal/stats"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	got := FFT(x)
	for j := 0; j < n; j++ {
		var want complex128
		for k := 0; k < n; k++ {
			ang := -2 * math.Pi * float64(j) * float64(k) / float64(n)
			want += x[k] * complex(math.Cos(ang), math.Sin(ang))
		}
		if d := got[j] - want; math.Hypot(real(d), imag(d)) > 1e-9 {
			t.Fatalf("bin %d: got %v want %v", j, got[j], want)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	f := func(raw []int8) bool {
		n := NextPow2(len(raw) + 8)
		x := make([]complex128, n)
		for i, v := range raw {
			x[i] = complex(float64(v), 0)
		}
		back := IFFT(FFT(x))
		for i := range x {
			if d := back[i] - x[i]; math.Hypot(real(d), imag(d)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 256
	x := make([]complex128, n)
	var tsum float64
	for i := range x {
		v := rng.NormFloat64()
		x[i] = complex(v, 0)
		tsum += v * v
	}
	X := FFT(x)
	var fsum float64
	for _, v := range X {
		fsum += real(v)*real(v) + imag(v)*imag(v)
	}
	fsum /= float64(n)
	if math.Abs(tsum-fsum)/tsum > 1e-9 {
		t.Errorf("Parseval violated: time %g freq %g", tsum, fsum)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestPeriodogramFindsSinusoid(t *testing.T) {
	n := 1024
	x := make([]float64, n)
	period := 32.0
	for i := range x {
		x[i] = 3 * math.Sin(2*math.Pi*float64(i)/period)
	}
	s, err := Periodogram(x)
	if err != nil {
		t.Fatal(err)
	}
	// Peak bin should be at wavelength 32.
	best := 1
	for j := 2; j < len(s.Power); j++ {
		if s.Power[j] > s.Power[best] {
			best = j
		}
	}
	if w := s.Wavelength(best); math.Abs(w-period) > 1 {
		t.Errorf("peak at wavelength %g, want %g", w, period)
	}
}

func TestSpectrumVarianceMatchesSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2048
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()*2 + 5
	}
	v := stats.Variance(x)
	for name, est := range map[string]func([]float64) (*Spectrum, error){
		"periodogram": Periodogram,
		"multitaper":  func(y []float64) (*Spectrum, error) { return Multitaper(y, 5) },
	} {
		s, err := est(x)
		if err != nil {
			t.Fatal(err)
		}
		got := s.TotalVariance()
		if math.Abs(got-v)/v > 0.15 {
			t.Errorf("%s: total spectral variance %g vs series variance %g", name, got, v)
		}
	}
}

func TestSineTapersOrthonormal(t *testing.T) {
	tapers := SineTapers(256, 5)
	for i := range tapers {
		for j := range tapers {
			dot := 0.0
			for k := range tapers[i] {
				dot += tapers[i][k] * tapers[j][k]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("taper inner product (%d,%d) = %g, want %g", i, j, dot, want)
			}
		}
	}
}

func TestMultitaperSmootherThanPeriodogram(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p, _ := Periodogram(x)
	m, _ := Multitaper(x, 8)
	// White noise: the flat-spectrum estimate's bin-to-bin variance
	// should drop substantially under multitaper averaging.
	varOf := func(s *Spectrum) float64 { return stats.Variance(s.Power[1:]) }
	if varOf(m) >= varOf(p)*0.5 {
		t.Errorf("multitaper variance %g not clearly below periodogram %g", varOf(m), varOf(p))
	}
}

func TestShortWavelengthShare(t *testing.T) {
	n := 4096
	fast := make([]float64, n)
	slow := make([]float64, n)
	for i := range fast {
		fast[i] = math.Sin(2 * math.Pi * float64(i) / 64)   // wavelength 64
		slow[i] = math.Sin(2 * math.Pi * float64(i) / 2048) // wavelength 2048
	}
	sf, _ := Multitaper(fast, 5)
	ss, _ := Multitaper(slow, 5)
	if share := sf.ShortWavelengthShare(500); share < 0.9 {
		t.Errorf("fast series short-wavelength share = %g, want ~1", share)
	}
	if share := ss.ShortWavelengthShare(500); share > 0.1 {
		t.Errorf("slow series short-wavelength share = %g, want ~0", share)
	}
}

func TestClassify(t *testing.T) {
	n := 8192
	fast := make([]float64, n)
	slow := make([]float64, n)
	for i := range fast {
		fast[i] = 5 + 4*math.Sin(2*math.Pi*float64(i)/300)
		slow[i] = 5 + 4*math.Sin(2*math.Pi*float64(i)/6000)
	}
	cf, err := Classify(fast, DefaultIntervalSamples, DefaultFastShareThreshold)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Classify(slow, DefaultIntervalSamples, DefaultFastShareThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !cf.Fast {
		t.Errorf("300-sample swings not classified fast (share %g)", cf.ShortShare)
	}
	if cs.Fast {
		t.Errorf("6000-sample swings classified fast (share %g)", cs.ShortShare)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Periodogram([]float64{1, 2, 3}); err == nil {
		t.Error("short series accepted")
	}
	if _, err := Multitaper(make([]float64, 100), 0); err == nil {
		t.Error("zero tapers accepted")
	}
}

func TestWavelengthAndFreq(t *testing.T) {
	s := &Spectrum{Power: make([]float64, 9), N: 16, NFFT: 16}
	if s.Freq(4) != 0.25 {
		t.Errorf("Freq(4) = %g, want 0.25", s.Freq(4))
	}
	if s.Wavelength(4) != 4 {
		t.Errorf("Wavelength(4) = %g, want 4", s.Wavelength(4))
	}
	if !math.IsInf(s.Wavelength(0), 1) {
		t.Error("Wavelength(0) should be +Inf")
	}
}

func TestFastShareDegenerateCases(t *testing.T) {
	// Constant series: zero variance everywhere -> share 0.
	x := make([]float64, 1024)
	for i := range x {
		x[i] = 5
	}
	s, err := Multitaper(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if share := s.FastShare(250, 2500); share != 0 {
		t.Errorf("constant series share = %g, want 0", share)
	}
	if s.TotalVariance() > 1e-12 {
		t.Errorf("constant series has variance %g", s.TotalVariance())
	}
}

func TestClassifyTooShort(t *testing.T) {
	if _, err := Classify([]float64{1, 2}, 2500, 0.75); err == nil {
		t.Error("short series accepted")
	}
}

func TestShortWavelengthShareZeroTotal(t *testing.T) {
	s := &Spectrum{Power: make([]float64, 9), N: 16, NFFT: 16}
	if s.ShortWavelengthShare(4) != 0 {
		t.Error("zero-power spectrum share must be 0")
	}
	if s.FastShare(2, 8) != 0 {
		t.Error("zero-power FastShare must be 0")
	}
}
