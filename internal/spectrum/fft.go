// Package spectrum implements the spectral analysis of Section 5.2: a
// radix-2 FFT, periodogram and sine-taper multitaper spectral
// estimators for queue-occupancy time series, variance-by-wavelength
// integration, and the paper's classifier that flags benchmarks with
// fast workload variations (variance concentrated at wavelengths
// shorter than the fixed DVFS interval).
package spectrum

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-order discrete Fourier transform of x using an
// iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two. The input is not modified.
func FFT(x []complex128) []complex128 { return fftDir(x, false) }

// IFFT computes the inverse DFT (with 1/N normalization).
func IFFT(x []complex128) []complex128 {
	out := fftDir(x, true)
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out
}

func fftDir(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("spectrum: FFT length %d is not a power of two", n))
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		out[bits.Reverse64(uint64(i))>>shift] = x[i]
	}
	sign := -2.0 // forward: e^{-i2πjk/N}
	if inverse {
		sign = 2.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return out
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
