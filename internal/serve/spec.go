package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"mcddvfs/internal/experiment"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/governor"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/scheme"
	"mcddvfs/internal/trace"
)

// RenderRequest is the wire form of one experiment spec: which catalog
// artifact to render, how, and under what simulation options. Zero
// fields take the harness defaults, so {"artifact":"fig9",
// "format":"txt"} is a complete request. Every field is validated
// against the registries before the request is admitted — an
// unrunnable spec is rejected as invalid_spec without consuming a
// worker slot.
type RenderRequest struct {
	// Artifact names a catalog entry (GET /api/v1/artifacts).
	Artifact string `json:"artifact"`
	// Format is txt, json, or svg (svg only for figures).
	Format string `json:"format"`
	// Instructions bounds each simulation (0 selects the harness
	// default, 500000).
	Instructions int64 `json:"instructions,omitempty"`
	// Seed is the simulation seed (0 selects the harness default, 1 —
	// the same default the CLIs flag in, so default renders are
	// byte-identical across the API and cmd/experiments).
	Seed int64 `json:"seed,omitempty"`
	// Benchmarks narrows the workload set (nil = artifact default).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Schemes narrows the matrix columns (nil = the paper's core
	// comparison). Names must be registered controlled schemes.
	Schemes []string `json:"schemes,omitempty"`
	// PIDIntervalTicks overrides the PID sampling interval (0 =
	// default).
	PIDIntervalTicks int `json:"pid_interval_ticks,omitempty"`
	// FaultIntensity scales the canonical fault profile in [0,1];
	// 0 disables injection.
	FaultIntensity float64 `json:"fault_intensity,omitempty"`
	// FaultSeed seeds the fault RNG when FaultIntensity > 0.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// TimeoutMS is this request's deadline in milliseconds (0 = server
	// default; clamped to the server maximum). Excluded from the cache
	// identity: it bounds the attempt, not the result.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Cores sizes the simulated chip (0 or 1 = the classic single-core
	// processor; >1 = an N-core chip).
	Cores int `json:"cores,omitempty"`
	// PowerCapW is the chip power budget in watts (0 = unbudgeted). A
	// positive budget with no Governor selects integral-gain.
	PowerCapW float64 `json:"power_cap_w,omitempty"`
	// Governor names a chip-level power-cap governor from the registry
	// (GET via the CLI's -governor usage; empty = none).
	Governor string `json:"governor,omitempty"`
	// GovernorGain overrides the governor's integral gain in MHz/W
	// (0 = the governor default).
	GovernorGain float64 `json:"governor_gain,omitempty"`
}

// renderSpec is a validated, normalized request plus its effective
// deadline.
type renderSpec struct {
	req     RenderRequest
	format  experiment.ArtifactFormat
	timeout time.Duration
}

// invalid wraps a validation failure with the harness sentinel so it
// classifies as invalid_spec.
func invalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", experiment.ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// validateSpec checks req against the artifact catalog and the
// benchmark and scheme registries, applies the server's deadline
// policy, and returns the normalized spec.
func validateSpec(req RenderRequest, defaultTimeout, maxTimeout time.Duration) (renderSpec, error) {
	var info experiment.ArtifactInfo
	found := false
	for _, a := range experiment.Artifacts() {
		if a.ID == req.Artifact {
			info, found = a, true
			break
		}
	}
	if !found {
		return renderSpec{}, invalid("unknown artifact %q", req.Artifact)
	}
	format := experiment.ArtifactFormat(req.Format)
	if format.ContentType() == "" {
		return renderSpec{}, invalid("unknown format %q (txt, json, svg)", req.Format)
	}
	if format == experiment.FormatSVG && !info.SVG {
		return renderSpec{}, invalid("artifact %q has no SVG rendering", req.Artifact)
	}
	for _, b := range req.Benchmarks {
		if _, err := trace.ByName(b); err != nil {
			return renderSpec{}, invalid("unknown benchmark %q", b)
		}
	}
	for _, s := range req.Schemes {
		d, ok := scheme.Lookup(s)
		if !ok {
			return renderSpec{}, invalid("unknown scheme %q (registered: %s)", s, scheme.NamesList())
		}
		if !d.Controlled && d.Name != "none" {
			return renderSpec{}, invalid("scheme %q does not control frequency", s)
		}
	}
	if req.Instructions < 0 {
		return renderSpec{}, invalid("negative instruction budget %d", req.Instructions)
	}
	if req.PIDIntervalTicks < 0 {
		return renderSpec{}, invalid("negative pid_interval_ticks %d", req.PIDIntervalTicks)
	}
	if req.FaultIntensity < 0 || req.FaultIntensity > 1 {
		return renderSpec{}, invalid("fault_intensity %g outside [0,1]", req.FaultIntensity)
	}
	if req.TimeoutMS < 0 {
		return renderSpec{}, invalid("negative timeout_ms %d", req.TimeoutMS)
	}
	if req.Cores < 0 {
		return renderSpec{}, invalid("negative cores %d", req.Cores)
	}
	if req.Cores > mcd.MaxChipCores {
		return renderSpec{}, invalid("cores %d exceeds the %d-core chip bound", req.Cores, mcd.MaxChipCores)
	}
	if req.PowerCapW < 0 {
		return renderSpec{}, invalid("negative power_cap_w %g", req.PowerCapW)
	}
	if req.GovernorGain < 0 {
		return renderSpec{}, invalid("negative governor_gain %g", req.GovernorGain)
	}
	if req.Governor != "" {
		d, ok := governor.Lookup(req.Governor)
		if !ok {
			return renderSpec{}, invalid("unknown governor %q (registered: %s)", req.Governor, governor.NamesList())
		}
		if req.PowerCapW > 0 && !d.Capping {
			return renderSpec{}, invalid("governor %q does not cap power", req.Governor)
		}
	}
	timeout := defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if maxTimeout > 0 && timeout > maxTimeout {
		timeout = maxTimeout
	}
	// Normalize the defaults into the request itself so that an
	// omitted field and its explicit default are one spec: one flight
	// key, one set of cache entries, and — because these are the same
	// defaults the CLIs flag in — bytes identical to a CLI render.
	def := experiment.DefaultOptions()
	if req.Instructions == 0 {
		req.Instructions = def.Instructions
	}
	if req.Seed == 0 {
		req.Seed = def.Seed
	}
	// Chip-field normalization, same one-spec rule: a 1-core chip IS the
	// default single-core machine, an explicit "none" with no budget IS
	// the default governor, and a budget with no governor named selects
	// integral-gain (mirroring the harness's governorName resolution).
	if req.Cores == 1 {
		req.Cores = 0
	}
	if req.Governor == "none" && req.PowerCapW == 0 {
		req.Governor = ""
	}
	if req.Governor == "" && req.PowerCapW > 0 {
		req.Governor = "integral-gain"
	}
	return renderSpec{req: req, format: format, timeout: timeout}, nil
}

// key is the spec's content address: the sha256 of its canonical JSON
// with the deadline zeroed. Two requests for the same artifact under
// the same options share one flight (and one set of cache entries) no
// matter what deadlines they carry.
func (s renderSpec) key() string {
	id := s.req
	id.TimeoutMS = 0
	blob, err := json.Marshal(id)
	if err != nil {
		// RenderRequest is plain data; Marshal cannot fail. Guard with
		// a unique key so a future field type mistake degrades to
		// duplicate work, not shared wrong results.
		return fmt.Sprintf("unkeyed:%p", &s)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// options translates the spec into harness options. cacheDir is empty
// when the breaker has taken the disk tier away.
func (s renderSpec) options(cacheDir string, cacheMaxBytes int64) experiment.Options {
	opt := experiment.Options{
		Instructions:     s.req.Instructions,
		Seed:             s.req.Seed,
		Benchmarks:       s.req.Benchmarks,
		PIDIntervalTicks: s.req.PIDIntervalTicks,
		Timeout:          s.timeout,
		CacheDir:         cacheDir,
		CacheMaxBytes:    cacheMaxBytes,
		Cores:            s.req.Cores,
		PowerCapW:        s.req.PowerCapW,
		Governor:         s.req.Governor,
		GovernorGain:     s.req.GovernorGain,
	}
	if s.req.FaultIntensity > 0 {
		opt.Faults = faults.Intensity(s.req.FaultIntensity, s.req.FaultSeed)
	}
	for _, name := range s.req.Schemes {
		opt.Schemes = append(opt.Schemes, experiment.Scheme(name))
	}
	return opt
}
