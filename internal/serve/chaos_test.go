package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mcddvfs/internal/diskcache"
)

// TestChaosLoad is the tentpole's proof obligation: thousands of
// concurrent mixed hot/cold requests through the full stack while a
// chaos goroutine injects filesystem faults under the live disk cache,
// asserting
//
//   - zero corrupted artifacts: every 200 body for a spec is
//     byte-identical to every other, and the cache directory verifies
//     clean afterwards;
//   - every non-200 carries the stable error schema with a known code;
//   - bounded latency: no request outlives its deadline by more than
//     the grace the harness needs to unwind;
//   - clean drain within the shutdown budget;
//   - zero goroutine leaks once the dust settles.
func TestChaosLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load test is not -short")
	}
	baseline := runtime.NumGoroutine()

	dir := t.TempDir()
	cfg := Config{
		CacheDir:         dir,
		Workers:          8,
		QueueDepth:       4096, // no shedding in this test: every request must resolve
		DefaultTimeout:   2 * time.Minute,
		MaxTimeout:       2 * time.Minute,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Millisecond,
		EnableChaos:      true,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// The spec pool: a few hot specs (pre-warmed, most traffic) and a
	// tail of cold ones. Everything is tiny so the matrix stays fast.
	var pool []RenderRequest
	for seed := int64(1); seed <= 3; seed++ {
		pool = append(pool, tinySpec(seed, "txt"))
	}
	pool = append(pool, tinySpec(1, "json"), tinySpec(1, "svg"))
	for seed := int64(10); seed < 22; seed++ {
		spec := tinySpec(seed, "txt")
		if seed%3 == 0 {
			spec.Artifact = "fig10"
		}
		pool = append(pool, spec)
	}

	// Pre-warm the hot subset through the service itself.
	client := ts.Client()
	client.Timeout = 3 * time.Minute
	doPost := func(spec RenderRequest) (*http.Response, error) {
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		return client.Post(ts.URL+"/api/v1/render", "application/json", bytes.NewReader(blob))
	}
	for i := 0; i < 5; i++ {
		resp, err := doPost(pool[i])
		if err != nil {
			t.Fatal(err)
		}
		if b := readBody(t, resp); resp.StatusCode != 200 {
			t.Fatalf("pre-warm %d: %d %s", i, resp.StatusCode, b)
		}
	}

	// Chaos: a deterministic sprinkle of write/read faults toggled
	// while the load runs.
	chaosDone := make(chan struct{})
	chaosStop := make(chan struct{})
	go func() {
		defer close(chaosDone)
		post := func(body string) {
			resp, err := client.Post(ts.URL+"/debugz/cache-faults", "application/json", strings.NewReader(body))
			if err != nil {
				return // server shutting down
			}
			resp.Body.Close()
		}
		for i := 0; ; i++ {
			select {
			case <-chaosStop:
				post(`{"mode":"heal"}`)
				return
			case <-time.After(10 * time.Millisecond):
			}
			if i%2 == 0 {
				post(`{"mode":"fail-every","n":3,"ops":["open","createtemp","write","rename"]}`)
			} else {
				post(`{"mode":"heal"}`)
			}
		}
	}()

	const totalRequests = 1200
	type outcome struct {
		spec    int
		status  int
		code    string
		body    []byte
		elapsed time.Duration
	}
	results := make(chan outcome, totalRequests)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 256) // bound sockets, keep heavy concurrency
	for i := 0; i < totalRequests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// ~80% of traffic hits the hot subset, the rest the tail.
			var idx int
			if i%5 != 4 {
				idx = i % 5
			} else {
				idx = 5 + i%(len(pool)-5)
			}
			start := time.Now()
			resp, err := doPost(pool[idx])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Errorf("request %d: reading body: %v", i, err)
				return
			}
			o := outcome{spec: idx, status: resp.StatusCode, body: buf.Bytes(), elapsed: time.Since(start)}
			if o.status != 200 {
				var eb errorBody
				if err := json.Unmarshal(o.body, &eb); err != nil {
					t.Errorf("request %d: non-200 without error schema: %d %s", i, o.status, o.body)
					return
				}
				o.code = eb.Error.Code
			}
			results <- o
		}(i)
	}
	wg.Wait()
	close(results)
	close(chaosStop)
	<-chaosDone

	// Zero corrupted artifacts: all 200 bodies for one spec identical.
	reference := make(map[int][]byte)
	counts := map[string]int{}
	var maxLatency time.Duration
	n := 0
	for o := range results {
		n++
		if o.elapsed > maxLatency {
			maxLatency = o.elapsed
		}
		if o.status != 200 {
			counts[o.code]++
			switch o.code {
			case CodeOverloaded, CodeCancelled, CodeRunTimeout:
				// Legal under chaos; corruption or internal are not.
			default:
				t.Errorf("unexpected error code %q (status %d)", o.code, o.status)
			}
			continue
		}
		counts["ok"]++
		if ref, seen := reference[o.spec]; !seen {
			reference[o.spec] = o.body
		} else if !bytes.Equal(ref, o.body) {
			t.Errorf("spec %d: two 200 responses differ — corrupted artifact", o.spec)
		}
	}
	if n != totalRequests {
		t.Fatalf("collected %d outcomes, want %d", n, totalRequests)
	}
	if counts["ok"] < totalRequests*9/10 {
		t.Errorf("only %d/%d requests succeeded under chaos: %v", counts["ok"], totalRequests, counts)
	}
	t.Logf("chaos outcomes: %v, max latency %v, breaker %v", counts, maxLatency, func() string { st, tr := s.breaker.snapshot(); return fmt.Sprintf("%s/%d trips", st, tr) }())

	// Drain within budget.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain not clean: %v", err)
	}
	t.Logf("drained in %v", time.Since(start))
	ts.Close()

	// The cache directory survived the storm: every entry complete,
	// no orphaned temp files.
	if _, err := diskcache.Verify(dir, true); err != nil {
		t.Errorf("cache damaged by chaos: %v", err)
	}

	// Zero goroutine leaks once everything settles.
	deadline := time.Now().Add(20 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s", runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
