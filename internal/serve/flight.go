package serve

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent renders of the same spec across
// requests: the first request for a content-addressed key becomes the
// leader and runs the work on a context detached from its own request
// (the server's base context bounded by the leader's deadline); every
// later request for the same key attaches as a follower and shares the
// outcome. A follower that disconnects just detaches; the work is
// cancelled only when the last interested request has gone. Flights
// are removed the moment they complete — errors are never memoized, so
// a transient failure (timeout, shed) cannot poison later requests.
type flightGroup struct {
	wg      *sync.WaitGroup // the server's in-flight accounting
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	workCtx context.Context
	waiters int

	// Written by the leader goroutine before close(done); read only
	// after <-done.
	body  []byte
	ctype string
	err   error
}

func newFlightGroup(wg *sync.WaitGroup) *flightGroup {
	return &flightGroup{wg: wg, flights: make(map[string]*flight)}
}

// do returns the render for key, either by starting the work (leader)
// or by attaching to an identical in-progress render (follower).
// guard runs under the group lock before a new flight is created — the
// server uses it to refuse flight creation once draining, atomically
// with Shutdown's barrier, so the WaitGroup never goes 0→1 during
// Wait. start builds the detached work context; run performs the
// render. The returned bool reports leadership; the returned context
// is the work context the result was produced under (for error
// classification). When reqCtx ends first, do returns its error and
// the work keeps running for any remaining waiters.
func (g *flightGroup) do(
	reqCtx context.Context,
	key string,
	guard func() error,
	start func() (context.Context, context.CancelFunc),
	run func(ctx context.Context) ([]byte, string, error),
) ([]byte, string, context.Context, bool, error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if !ok {
		if err := guard(); err != nil {
			g.mu.Unlock()
			return nil, "", nil, false, err
		}
		workCtx, cancel := start()
		f = &flight{done: make(chan struct{}), cancel: cancel, workCtx: workCtx}
		g.flights[key] = f
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			f.body, f.ctype, f.err = run(f.workCtx)
			g.mu.Lock()
			delete(g.flights, key)
			g.mu.Unlock()
			f.cancel()
			close(f.done)
		}()
	}
	f.waiters++
	g.mu.Unlock()

	leader := !ok
	select {
	case <-f.done:
		return f.body, f.ctype, f.workCtx, leader, f.err
	case <-reqCtx.Done():
		g.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		g.mu.Unlock()
		if abandoned {
			// Nobody is listening anymore; stop burning CPU. The
			// goroutine still completes and unregisters the flight.
			f.cancel()
		}
		return nil, "", f.workCtx, leader, reqCtx.Err()
	}
}

// barrier runs fn under the group lock, ordering it against flight
// creation: after barrier returns, every subsequent do observes fn's
// effects before deciding to create a flight.
func (g *flightGroup) barrier(fn func()) {
	g.mu.Lock()
	fn()
	g.mu.Unlock()
}

// size reports how many distinct renders are in progress.
func (g *flightGroup) size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
