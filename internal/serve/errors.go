package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"mcddvfs/internal/experiment"
)

// The service error taxonomy extends the harness sentinels
// (experiment.ErrInvalidSpec/ErrRunTimeout/ErrCancelled/ErrRunPanicked)
// with the conditions only a server can hit. Every error a handler
// emits maps onto exactly one stable machine-readable code, so clients
// dispatch on Code and never parse messages.
var (
	// ErrOverloaded means admission control shed the request: the
	// worker pool and its bounded queue are full. Clients should back
	// off and retry.
	ErrOverloaded = errors.New("serve: overloaded, work queue full")
	// ErrDraining means the server is shutting down and accepts no new
	// work; in-flight requests are finishing.
	ErrDraining = errors.New("serve: draining, not accepting new work")
	// ErrForcedDrain reports a shutdown that exceeded its grace budget
	// and had to cancel in-flight work.
	ErrForcedDrain = errors.New("serve: drain grace exceeded, in-flight work cancelled")
	// ErrConfig reports an unusable server configuration.
	ErrConfig = errors.New("serve: invalid configuration")
)

// The machine-readable error codes of the HTTP API. Stable: clients
// and the CI smoke test dispatch on these strings.
const (
	CodeInvalidSpec = "invalid_spec" // 400: the spec can never run
	CodeBadRequest  = "bad_request"  // 400: malformed request envelope
	CodeNotFound    = "not_found"    // 404: no such route
	CodeOverloaded  = "overloaded"   // 429: queue full, retry later
	CodeRunPanicked = "run_panicked" // 500: simulation panicked
	CodeInternal    = "internal"     // 500: unclassified failure
	CodeCancelled   = "cancelled"    // 503: run abandoned before completion
	CodeDraining    = "draining"     // 503: server shutting down
	CodeRunTimeout  = "run_timeout"  // 504: per-request deadline expired
)

// apiError is the wire form of one failure.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorBody is the stable HTTP error schema: {"error":{"code","message"}}.
type errorBody struct {
	Error apiError `json:"error"`
}

// httpStatus maps an error code to its HTTP status.
func httpStatus(code string) int {
	switch code {
	case CodeInvalidSpec, CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeCancelled, CodeDraining:
		return http.StatusServiceUnavailable
	case CodeRunTimeout:
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// classify maps an error from the render path onto its code. workCtx
// is the context the work actually ran under (nil when it never
// started): RunMatrixContext reports any context termination as
// ErrCancelled, so an expired work deadline is re-classified here as
// the timeout it really is.
func classify(workCtx context.Context, err error) string {
	switch {
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, experiment.ErrInvalidSpec):
		return CodeInvalidSpec
	case errors.Is(err, experiment.ErrRunTimeout):
		return CodeRunTimeout
	case errors.Is(err, experiment.ErrRunPanicked):
		return CodeRunPanicked
	case errors.Is(err, experiment.ErrCancelled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		if workCtx != nil {
			if d, ok := workCtx.Deadline(); ok && !time.Now().Before(d) {
				return CodeRunTimeout
			}
		}
		return CodeCancelled
	}
	return CodeInternal
}

// writeErr emits the error schema. Shedding and draining responses
// carry a Retry-After hint so well-behaved clients pace themselves.
func writeErr(w http.ResponseWriter, code, message string) {
	status := httpStatus(code)
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: apiError{Code: code, Message: message}}) //nolint:errcheck // client gone
}

// writeClassified classifies err and emits it.
func writeClassified(w http.ResponseWriter, workCtx context.Context, err error) {
	writeErr(w, classify(workCtx, err), err.Error())
}
