// Package serve is mcdserve's engine room: a fault-tolerant HTTP/JSON
// facade over the experiment harness. One Server owns admission
// control (bounded queue, explicit 429 shedding), cross-request
// single-flight on content-addressed specs, a circuit breaker that
// degrades the disk-cache tier to in-memory-only under I/O failure,
// and graceful drain within a shutdown-grace budget. docs/SERVICE.md
// documents the API, error codes, and degradation ladder.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcddvfs/internal/diskcache"
	"mcddvfs/internal/experiment"
	"mcddvfs/internal/scheme"
)

// maxRequestBytes bounds a render request body; specs are small.
const maxRequestBytes = 1 << 20

// Config tunes one Server. The zero value is usable: memory-only
// caching, GOMAXPROCS-ish worker pool, sane deadlines.
type Config struct {
	// CacheDir enables the disk-cache tier ("" = in-memory only).
	CacheDir string
	// CacheMaxBytes bounds the disk cache (0 = diskcache default).
	CacheMaxBytes int64
	// Workers is the number of concurrent renders (0 = 4).
	Workers int
	// QueueDepth is how many renders may wait behind the workers
	// before cold requests are shed with 429 (0 = 16).
	QueueDepth int
	// DefaultTimeout bounds a request that sets no timeout_ms
	// (0 = 2m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (0 = 10m).
	MaxTimeout time.Duration
	// BreakerThreshold is how many consecutive disk-cache I/O failures
	// open the breaker (0 = 3).
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay (0 = 10s).
	BreakerCooldown time.Duration
	// EnableChaos mounts POST /debugz/cache-faults, which injects
	// filesystem faults under the live disk cache. Test and CI use
	// only; never expose it publicly.
	EnableChaos bool
	// Logf receives operational messages (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the service engine. Create with New, mount Handler on an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	gate     *gate
	flights  *flightGroup
	breaker  *breaker
	store    *diskcache.Store // nil: disk tier off
	storeErr error            // why the disk tier failed to open

	baseCtx  context.Context // parent of every work context
	baseStop context.CancelFunc
	wg       sync.WaitGroup // running flight goroutines
	draining atomic.Bool

	chaosMu sync.Mutex
	chaosFS *diskcache.FaultFS
}

// New builds a Server from cfg. An unusable cache directory does not
// fail startup — the server degrades to in-memory-only and reports the
// reason via /api/v1/statusz — but a contradictory configuration does.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxTimeout < cfg.DefaultTimeout {
		return nil, fmt.Errorf("%w: max timeout %v below default timeout %v", ErrConfig, cfg.MaxTimeout, cfg.DefaultTimeout)
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		gate:    newGate(cfg.Workers, cfg.QueueDepth),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	s.flights = newFlightGroup(&s.wg)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		store, err := experiment.DiskStore(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			s.storeErr = err
			cfg.Logf("mcdserve: disk cache unusable, running in-memory only: %v", err)
		} else {
			s.store = store
			// Every disk-tier outcome of every run against this
			// directory feeds the breaker; misses and self-healed
			// corruption arrive as successes.
			store.SetObserver(s.breaker.record)
		}
	}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /api/v1/artifacts", s.handleArtifacts)
	s.mux.HandleFunc("GET /api/v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /api/v1/statusz", s.handleStatusz)
	s.mux.HandleFunc("POST /api/v1/render", s.handleRender)
	if s.cfg.EnableChaos {
		s.mux.HandleFunc("POST /debugz/cache-faults", s.handleChaos)
	}
	s.mux.HandleFunc("/", s.handleNotFound)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new work is refused with 503 draining,
// in-flight renders run to completion, and when ctx expires first the
// remaining work is cancelled and Shutdown reports ErrForcedDrain.
// The caller owns the listener (http.Server.Shutdown) — this drains
// the work tier.
func (s *Server) Shutdown(ctx context.Context) error {
	// The barrier orders the draining flag against flight creation:
	// after it, every new render observes draining and no new flight
	// can register, so the WaitGroup below is monotonically draining.
	s.flights.barrier(func() { s.draining.Store(true) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseStop()
		return nil
	case <-ctx.Done():
		s.baseStop()
		<-done
		return fmt.Errorf("%w: %v", ErrForcedDrain, ctx.Err())
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// render is the unit of admitted work: one artifact rendered under the
// flight's work context, with the disk tier granted or withheld by the
// breaker.
func (s *Server) render(ctx context.Context, spec renderSpec) ([]byte, string, error) {
	if err := s.gate.acquire(ctx); err != nil {
		return nil, "", err
	}
	defer s.gate.release()
	dir := ""
	if s.store != nil && s.breaker.allow() {
		dir = s.cfg.CacheDir
	}
	opt := spec.options(dir, s.cfg.CacheMaxBytes)
	return experiment.RenderArtifactContext(ctx, spec.req.Artifact, spec.format, opt)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	var req RenderRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, CodeBadRequest, "decoding render request: "+err.Error())
		return
	}
	spec, err := validateSpec(req, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if err != nil {
		writeClassified(w, nil, err)
		return
	}
	key := spec.key()
	body, ctype, workCtx, leader, err := s.flights.do(r.Context(), key,
		func() error {
			if s.draining.Load() {
				return ErrDraining
			}
			return nil
		},
		func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(s.baseCtx, spec.timeout)
		},
		func(ctx context.Context) ([]byte, string, error) {
			return s.render(ctx, spec)
		})
	if err != nil {
		writeClassified(w, workCtx, err)
		return
	}
	role := "follower"
	if leader {
		role = "leader"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Mcdserve-Flight", role)
	w.Header().Set("X-Mcdserve-Key", key)
	w.Write(body) //nolint:errcheck // client gone
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyState is the /readyz body: the degradation ladder's current
// rung plus the raw signals behind it.
type readyState struct {
	Status   string `json:"status"` // ok | degraded | overloaded | draining
	Breaker  string `json:"breaker"`
	Running  int    `json:"running"`
	Waiting  int    `json:"waiting"`
	Flights  int    `json:"flights"`
	DiskTier bool   `json:"disk_tier"`
}

func (s *Server) readyState() (readyState, int) {
	state, _ := s.breaker.snapshot()
	running, waiting := s.gate.load()
	rs := readyState{
		Status:   "ok",
		Breaker:  state,
		Running:  running,
		Waiting:  waiting,
		Flights:  s.flights.size(),
		DiskTier: s.store != nil,
	}
	status := http.StatusOK
	switch {
	case s.draining.Load():
		rs.Status, status = "draining", http.StatusServiceUnavailable
	case state == BreakerOpen:
		rs.Status, status = "degraded", http.StatusServiceUnavailable
	case s.gate.saturated():
		rs.Status, status = "overloaded", http.StatusServiceUnavailable
	}
	return rs, status
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	rs, status := s.readyState()
	writeJSON(w, status, rs)
}

func (s *Server) handleArtifacts(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Formats []string `json:"formats"`
	}
	var out []entry
	for _, a := range experiment.Artifacts() {
		formats := []string{"txt", "json"}
		if a.SVG {
			formats = append(formats, "svg")
		}
		out = append(out, entry{ID: a.ID, Title: a.Title, Formats: formats})
	}
	writeJSON(w, http.StatusOK, map[string]any{"artifacts": out})
}

func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Name       string `json:"name"`
		Controlled bool   `json:"controlled"`
		Extension  bool   `json:"extension"`
	}
	var out []entry
	for _, d := range scheme.All() {
		out = append(out, entry{Name: d.Name, Controlled: d.Controlled, Extension: d.Extension})
	}
	writeJSON(w, http.StatusOK, map[string]any{"schemes": out})
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	rs, _ := s.readyState()
	_, trips := s.breaker.snapshot()
	memHits, memMisses := experiment.CacheStats()
	st := map[string]any{
		"ready":         rs,
		"breaker_trips": trips,
		"mem_cache":     map[string]uint64{"hits": memHits, "misses": memMisses},
		"workers":       s.cfg.Workers,
		"queue_depth":   s.cfg.QueueDepth,
	}
	if s.store != nil {
		st["disk_cache"] = s.store.Stats()
	} else if s.storeErr != nil {
		st["disk_cache_error"] = s.storeErr.Error()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleNotFound(w http.ResponseWriter, _ *http.Request) {
	writeErr(w, CodeNotFound, "no such route")
}

// chaosRequest drives the fault-injection debug endpoint.
type chaosRequest struct {
	// Mode is fail (every armed op), fail-next (next N), fail-every
	// (every N-th), or heal.
	Mode string `json:"mode"`
	// N parameterizes fail-next and fail-every.
	N int `json:"n,omitempty"`
	// Ops lists diskcache fault points (default: the write path).
	Ops []string `json:"ops,omitempty"`
}

func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, CodeBadRequest, "no disk cache to inject faults into")
		return
	}
	var req chaosRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes)).Decode(&req); err != nil {
		writeErr(w, CodeBadRequest, "decoding chaos request: "+err.Error())
		return
	}
	s.chaosMu.Lock()
	if s.chaosFS == nil {
		s.chaosFS = diskcache.NewFaultFS(nil)
		s.store.SetFS(s.chaosFS)
	}
	ffs := s.chaosFS
	s.chaosMu.Unlock()
	switch req.Mode {
	case "fail":
		ffs.Fail(req.Ops...)
	case "fail-next":
		ffs.FailNext(req.N, req.Ops...)
	case "fail-every":
		ffs.FailEvery(req.N, req.Ops...)
	case "heal":
		ffs.Heal()
	default:
		writeErr(w, CodeBadRequest, "unknown chaos mode "+req.Mode)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"mode":     req.Mode,
		"failing":  ffs.Failing(),
		"injected": ffs.Injected(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}
