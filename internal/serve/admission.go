package serve

import (
	"context"
	"fmt"
)

// gate is the admission controller: a worker-slot semaphore fronted by
// a bounded queue. A unit of work (one single-flight render; followers
// share their leader's admission) first claims a queue token — an
// immediate, non-blocking decision — and then waits for a worker slot.
// A full queue is the load-shedding signal: acquire fails fast with
// ErrOverloaded and the handler answers 429, so latency under overload
// stays bounded instead of every request piling onto an unbounded
// wait.
type gate struct {
	slots chan struct{} // running work, capacity = workers
	queue chan struct{} // running + waiting work, capacity = workers + depth
}

// newGate sizes the controller: workers concurrent runs, depth more
// waiting behind them before shedding starts.
func newGate(workers, depth int) *gate {
	return &gate{
		slots: make(chan struct{}, workers),
		queue: make(chan struct{}, workers+depth),
	}
}

// acquire admits one unit of work or fails: immediately with
// ErrOverloaded when the queue is full, or with ctx's error if the
// caller gives up while waiting for a slot.
func (g *gate) acquire(ctx context.Context) error {
	select {
	case g.queue <- struct{}{}:
	default:
		return fmt.Errorf("%w: %d running, %d queued", ErrOverloaded, len(g.slots), len(g.queue)-len(g.slots))
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-g.queue
		return ctx.Err()
	}
}

// release returns the slot and queue token claimed by acquire.
func (g *gate) release() {
	<-g.slots
	<-g.queue
}

// load reports how many units are running and how many are waiting.
func (g *gate) load() (running, waiting int) {
	running = len(g.slots)
	q := len(g.queue)
	if q > running {
		waiting = q - running
	}
	return running, waiting
}

// saturated reports whether the next cold request would be shed.
func (g *gate) saturated() bool {
	return len(g.queue) == cap(g.queue)
}
