package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcddvfs/internal/diskcache"
	"mcddvfs/internal/experiment"
)

// testInsts keeps simulations fast; specs in this file stay tiny.
const testInsts = 2000

// newTestServer builds a Server (mut tweaks the config) and an
// httptest front end, both torn down with the test.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers:          4,
		QueueDepth:       16,
		DefaultTimeout:   time.Minute,
		MaxTimeout:       2 * time.Minute,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// postRender sends one render request and returns the response.
func postRender(t *testing.T, ts *httptest.Server, req RenderRequest) *http.Response {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/api/v1/render", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readBody drains and closes resp.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// errCode decodes the stable error schema.
func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("response is not the error schema: %v\n%s", err, body)
	}
	return eb.Error.Code
}

// tinySpec is a fast, fully valid render request.
func tinySpec(seed int64, format string) RenderRequest {
	return RenderRequest{
		Artifact:     "fig9",
		Format:       format,
		Instructions: testInsts,
		Seed:         seed,
		Benchmarks:   []string{"epic_decode"},
		Schemes:      []string{"adaptive"},
	}
}

func TestHealthAndReadiness(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var rs readyState
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || rs.Status != "ok" || rs.Breaker != BreakerClosed {
		t.Fatalf("readyz = %d %+v", resp.StatusCode, rs)
	}
}

func TestErrorSchema(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name     string
		body     string
		wantCode string
		wantHTTP int
	}{
		{"unknown artifact", `{"artifact":"nope","format":"txt"}`, CodeInvalidSpec, 400},
		{"unknown format", `{"artifact":"fig9","format":"pdf"}`, CodeInvalidSpec, 400},
		{"svg of a table", `{"artifact":"table1","format":"svg"}`, CodeInvalidSpec, 400},
		{"unknown scheme", `{"artifact":"fig9","format":"txt","schemes":["warp"]}`, CodeInvalidSpec, 400},
		{"unknown benchmark", `{"artifact":"fig9","format":"txt","benchmarks":["quake3"]}`, CodeInvalidSpec, 400},
		{"fault intensity range", `{"artifact":"fig9","format":"txt","fault_intensity":2}`, CodeInvalidSpec, 400},
		{"malformed json", `{"artifact":`, CodeBadRequest, 400},
		{"unknown field", `{"artifact":"fig9","format":"txt","turbo":true}`, CodeBadRequest, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/api/v1/render", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body := readBody(t, resp)
			if resp.StatusCode != tc.wantHTTP {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.wantHTTP, body)
			}
			if code := errCode(t, body); code != tc.wantCode {
				t.Fatalf("code = %q, want %q", code, tc.wantCode)
			}
		})
	}

	resp, err := ts.Client().Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != 404 || errCode(t, body) != CodeNotFound {
		t.Fatalf("unknown route = %d %s", resp.StatusCode, body)
	}
}

// TestRenderParity is the byte-parity contract: what the service
// serves is exactly what the harness renders (and therefore exactly
// what cmd/experiments -out writes) for the same spec, in every
// format, cold and warm.
func TestRenderParity(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	for _, format := range []string{"txt", "json", "svg"} {
		spec := tinySpec(1, format)
		want, ctype, err := experiment.RenderArtifactContext(
			context.Background(), spec.Artifact, experiment.ArtifactFormat(format),
			experiment.Options{
				Instructions: spec.Instructions,
				Seed:         spec.Seed,
				Benchmarks:   spec.Benchmarks,
				Schemes:      []experiment.Scheme{"adaptive"},
			})
		if err != nil {
			t.Fatal(err)
		}
		for pass, label := range []string{"cold", "warm"} {
			resp := postRender(t, ts, spec)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", format, label, resp.StatusCode, body)
			}
			if got := resp.Header.Get("Content-Type"); got != ctype {
				t.Errorf("%s %s: content type %q, want %q", format, label, got, ctype)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s pass %d: service bytes differ from harness render", format, pass)
			}
		}
	}
}

func TestCatalogEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := ts.Client().Get(ts.URL + "/api/v1/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if !strings.Contains(string(body), `"fig9"`) || !strings.Contains(string(body), `"svg"`) {
		t.Fatalf("artifact catalog incomplete: %s", body)
	}
	resp, err = ts.Client().Get(ts.URL + "/api/v1/schemes")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if !strings.Contains(string(body), `"adaptive"`) {
		t.Fatalf("scheme catalog incomplete: %s", body)
	}
}

// TestFlightGroupShares drives the single-flight machinery directly:
// one leader runs, late arrivals attach, everyone shares the bytes.
func TestFlightGroupShares(t *testing.T) {
	var wg sync.WaitGroup
	g := newFlightGroup(&wg)
	release := make(chan struct{})
	started := make(chan struct{})
	run := func(ctx context.Context) ([]byte, string, error) {
		close(started)
		<-release
		return []byte("shared"), "text/plain", nil
	}
	start := func() (context.Context, context.CancelFunc) {
		return context.WithCancel(context.Background())
	}
	noGuard := func() error { return nil }

	type out struct {
		body   []byte
		leader bool
		err    error
	}
	results := make(chan out, 6)
	go func() {
		body, _, _, leader, err := g.do(context.Background(), "k", noGuard, start, run)
		results <- out{body, leader, err}
	}()
	<-started
	for i := 0; i < 5; i++ {
		go func() {
			body, _, _, leader, err := g.do(context.Background(), "k", noGuard, start, run)
			results <- out{body, leader, err}
		}()
	}
	// Followers are attached once the waiter count reaches 6.
	deadline := time.After(10 * time.Second)
	for {
		g.mu.Lock()
		n := 0
		if f := g.flights["k"]; f != nil {
			n = f.waiters
		}
		g.mu.Unlock()
		if n == 6 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("waiters = %d, want 6", n)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	leaders := 0
	for i := 0; i < 6; i++ {
		r := <-results
		if r.err != nil || string(r.body) != "shared" {
			t.Fatalf("result = %q, %v", r.body, r.err)
		}
		if r.leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
	if g.size() != 0 {
		t.Fatalf("flight not unregistered after completion")
	}
}

// TestFlightGroupAbandonment: when every waiter gives up, the work
// context is cancelled so the render stops burning CPU.
func TestFlightGroupAbandonment(t *testing.T) {
	var wg sync.WaitGroup
	g := newFlightGroup(&wg)
	stopped := make(chan struct{})
	run := func(ctx context.Context) ([]byte, string, error) {
		<-ctx.Done()
		close(stopped)
		return nil, "", ctx.Err()
	}
	reqCtx, cancelReq := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, _, err := g.do(reqCtx, "k", func() error { return nil },
			func() (context.Context, context.CancelFunc) { return context.WithCancel(context.Background()) },
			run)
		done <- err
	}()
	// Wait until the flight is registered, then abandon it.
	for {
		if g.size() == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelReq()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v, want context.Canceled", err)
	}
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("work context not cancelled after the last waiter left")
	}
	wg.Wait()
}

// TestAdmissionShedding saturates the gate and asserts the next cold
// request is shed immediately with 429/overloaded and a Retry-After
// hint, not queued indefinitely.
func TestAdmissionShedding(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	// Fill the worker slot and the single queue seat out-of-band so the
	// gate state is deterministic (acquire would block on the slot).
	if err := s.gate.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.gate.release()
	s.gate.queue <- struct{}{} // the queue seat a waiting render would hold
	defer func() { <-s.gate.queue }()

	resp := postRender(t, ts, tinySpec(99, "txt"))
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", code, CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestGate covers the admission controller's bookkeeping.
func TestGate(t *testing.T) {
	g := newGate(2, 1)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Both workers busy: the third unit takes the queue seat and waits.
	acquired := make(chan error, 1)
	go func() { acquired <- g.acquire(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for !g.saturated() {
		if time.Now().After(deadline) {
			t.Fatal("queue seat never claimed")
		}
		time.Sleep(time.Millisecond)
	}
	// The fourth is shed immediately — no unbounded queueing.
	if err := g.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire over capacity = %v, want ErrOverloaded", err)
	}
	if running, waiting := g.load(); running != 2 || waiting != 1 {
		t.Fatalf("load = %d running %d waiting, want 2/1", running, waiting)
	}
	// Freeing a slot promotes the waiter.
	g.release()
	if err := <-acquired; err != nil {
		t.Fatalf("promoted waiter got %v", err)
	}
	g.release()
	g.release()
	if r, w := g.load(); r != 0 || w != 0 {
		t.Fatalf("load after drain = %d/%d, want 0/0", r, w)
	}
	// A waiter that gives up returns its queue seat.
	solo := newGate(1, 1)
	if err := solo.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := solo.acquire(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context acquire = %v, want context.Canceled", err)
	}
	if r, w := solo.load(); r != 1 || w != 0 {
		t.Fatalf("load after abandoned wait = %d/%d, want 1/0", r, w)
	}
}

// TestBreakerUnit walks the state machine with a fake clock.
func TestBreakerUnit(t *testing.T) {
	b := newBreaker(3, time.Minute)
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }
	if !b.allow() {
		t.Fatal("closed breaker must allow")
	}
	fault := errors.New("io down")
	b.record(diskcache.OpPut, fault)
	b.record(diskcache.OpPut, nil) // success resets its stream's count
	b.record(diskcache.OpPut, fault)
	b.record(diskcache.OpGet, nil) // a healthy read must not vouch for writes
	b.record(diskcache.OpPut, fault)
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %s after 2 consecutive put failures, want closed", st)
	}
	b.record(diskcache.OpPut, fault)
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state = %s, want open", st)
	}
	if b.allow() {
		t.Fatal("open breaker must deny before cooldown")
	}
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("cooldown elapsed: the probe must be allowed")
	}
	if b.allow() {
		t.Fatal("only one half-open probe at a time")
	}
	b.record(diskcache.OpGet, fault) // probe failed: reopen
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("state = %s after failed probe, want open", st)
	}
	now = now.Add(2 * time.Minute)
	if !b.allow() {
		t.Fatal("second probe must be allowed")
	}
	b.record(diskcache.OpGet, nil)
	if st, trips := b.snapshot(); st != BreakerClosed || trips != 2 {
		t.Fatalf("state = %s trips = %d, want closed/2", st, trips)
	}
}

// TestBreakerDegradesAndRecovers drives the real loop over HTTP: fault
// injection under the live cache opens the breaker (readyz degrades),
// healing plus one probe closes it again, and rendering keeps working
// throughout — in-memory only while open.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(c *Config) {
		c.CacheDir = dir
		c.EnableChaos = true
		c.BreakerThreshold = 2
		c.BreakerCooldown = 10 * time.Millisecond
	})

	chaos := func(body string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/debugz/cache-faults", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if b := readBody(t, resp); resp.StatusCode != 200 {
			t.Fatalf("chaos endpoint: %d %s", resp.StatusCode, b)
		}
	}

	// Break the whole disk: reads and writes.
	chaos(`{"mode":"fail","ops":["open","createtemp","write","rename"]}`)
	var seed int64 = 100
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp := postRender(t, ts, tinySpec(seed, "txt"))
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("render under faults must degrade, not fail: %d %s", resp.StatusCode, body)
		}
		seed++
		if st, _ := s.breaker.snapshot(); st == BreakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under persistent disk faults")
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var rs readyState
	if err := json.Unmarshal(body, &rs); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rs.Status != "degraded" || rs.Breaker != BreakerOpen {
		t.Fatalf("readyz while broken = %d %+v, want 503/degraded/open", resp.StatusCode, rs)
	}

	// While open, rendering still works (memory tier).
	resp2 := postRender(t, ts, tinySpec(seed, "txt"))
	if b := readBody(t, resp2); resp2.StatusCode != 200 {
		t.Fatalf("render with open breaker: %d %s", resp2.StatusCode, b)
	}
	seed++

	// Heal, wait out the cooldown, and let probes close the breaker.
	chaos(`{"mode":"heal"}`)
	deadline = time.Now().Add(30 * time.Second)
	for {
		time.Sleep(15 * time.Millisecond)
		resp := postRender(t, ts, tinySpec(seed, "txt"))
		readBody(t, resp)
		seed++
		if st, _ := s.breaker.snapshot(); st == BreakerClosed {
			break
		}
		if time.Now().After(deadline) {
			st, _ := s.breaker.snapshot()
			t.Fatalf("breaker stuck %s after heal", st)
		}
	}
	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d %s", resp.StatusCode, body)
	}
	if _, trips := s.breaker.snapshot(); trips < 1 {
		t.Error("breaker trip count not recorded")
	}
}

// TestShutdownDrainsInFlight: a render in flight when drain begins
// finishes and is served; new work is refused with draining.
func TestShutdownDrainsInFlight(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueDepth: 4, DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	var body []byte
	var gotErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		b, _, _, _, err := s.flights.do(context.Background(), "slow",
			func() error { return nil },
			func() (context.Context, context.CancelFunc) { return context.WithTimeout(s.baseCtx, time.Minute) },
			func(ctx context.Context) ([]byte, string, error) {
				close(started)
				select {
				case <-release:
					return []byte("finished"), "text/plain", nil
				case <-ctx.Done():
					return nil, "", ctx.Err()
				}
			})
		body, gotErr = b, err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Draining is observable before the in-flight work completes.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp := postRender(t, ts, tinySpec(7, "txt"))
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, b) != CodeDraining {
		t.Fatalf("render while draining = %d %s, want 503 draining", resp.StatusCode, b)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}
	<-done
	if gotErr != nil || string(body) != "finished" {
		t.Fatalf("in-flight render = %q, %v; want finished, nil", body, gotErr)
	}
}

// TestShutdownForcesAfterGrace: work that outlives the grace budget is
// cancelled and Shutdown reports ErrForcedDrain.
func TestShutdownForcesAfterGrace(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 1, DefaultTimeout: time.Minute, MaxTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		_, _, _, _, err := s.flights.do(context.Background(), "stuck",
			func() error { return nil },
			func() (context.Context, context.CancelFunc) { return context.WithTimeout(s.baseCtx, time.Minute) },
			func(ctx context.Context) ([]byte, string, error) {
				close(started)
				<-ctx.Done() // never finishes on its own
				return nil, "", ctx.Err()
			})
		errs <- err
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, ErrForcedDrain) {
		t.Fatalf("Shutdown past grace = %v, want ErrForcedDrain", err)
	}
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("stuck work got %v, want cancellation", err)
	}
}

// TestTimeoutClassification: a request whose deadline expires
// mid-simulation comes back 504 run_timeout, not 503 cancelled.
func TestTimeoutClassification(t *testing.T) {
	_, ts := newTestServer(t, nil)
	spec := RenderRequest{
		Artifact:     "fig9",
		Format:       "txt",
		Instructions: 10_000_000, // far more work than the deadline allows
		Seed:         3,
		Benchmarks:   []string{"epic_decode"},
		Schemes:      []string{"adaptive"},
		TimeoutMS:    5,
	}
	resp := postRender(t, ts, spec)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d %s, want 504", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != CodeRunTimeout {
		t.Fatalf("code = %q, want %q", code, CodeRunTimeout)
	}
}

// TestConfigValidation: contradictory deadline policy is refused.
func TestConfigValidation(t *testing.T) {
	_, err := New(Config{DefaultTimeout: time.Hour, MaxTimeout: time.Minute})
	if !errors.Is(err, ErrConfig) {
		t.Fatalf("New with default > max = %v, want ErrConfig", err)
	}
}

// TestStatusz sanity-checks the operational snapshot.
func TestStatusz(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, func(c *Config) { c.CacheDir = dir })
	resp := postRender(t, ts, tinySpec(5, "txt"))
	readBody(t, resp)
	st, err := ts.Client().Get(ts.URL + "/api/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, st)
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	for _, k := range []string{"ready", "mem_cache", "disk_cache", "workers", "queue_depth"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("statusz missing %q: %s", k, body)
		}
	}
}
