package serve

import (
	"sync"
	"time"

	"mcddvfs/internal/diskcache"
)

// The circuit breaker's states, in the order the breaker walks them.
const (
	// BreakerClosed: the disk cache is healthy and every run uses it.
	BreakerClosed = "closed"
	// BreakerOpen: repeated I/O failures; runs skip the disk tier and
	// serve from the in-process cache plus fresh simulation until the
	// cooldown elapses.
	BreakerOpen = "open"
	// BreakerHalfOpen: the cooldown elapsed; exactly one run probes the
	// disk tier. Success closes the breaker, failure reopens it.
	BreakerHalfOpen = "half-open"
)

// breaker is a consecutive-failure circuit breaker over the disk-cache
// tier. It is fed by the diskcache observer (record) and consulted
// before each run (allow); misses and self-healed corruption count as
// successes there, so only genuine I/O failure — the disk going away —
// trips it. Trip math is deterministic: threshold consecutive failures
// open it, one cooldown later a single probe is let through.
//
// Failures are counted per operation stream (get/put/gc), because the
// streams interleave: a cold cache answers every read with a healthy
// miss, and if those successes reset one shared counter, a disk that
// fails every single write never accumulates two consecutive failures.
// A success only vouches for its own path.
type breaker struct {
	mu        sync.Mutex
	state     string
	failures  map[diskcache.Op]int // consecutive failures per op while closed
	threshold int                  // failures on one stream that open the breaker
	cooldown  time.Duration        // open → half-open delay
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	trips     uint64
	now       func() time.Time // injectable for tests
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		state:     BreakerClosed,
		failures:  make(map[diskcache.Op]int),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// allow reports whether the next run may use the disk tier. In the
// half-open state only the first caller per probe window gets true;
// everyone else stays memory-only until the probe's outcome arrives.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// record feeds one disk-tier outcome (nil = success) into the breaker.
// It is the diskcache observer target, so it must never call back into
// the store.
func (b *breaker) record(op diskcache.Op, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.failures[op] = 0
			return
		}
		b.failures[op]++
		if b.failures[op] >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerHalfOpen:
		b.probing = false
		if err == nil {
			b.state = BreakerClosed
			b.failures = make(map[diskcache.Op]int)
			return
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	case BreakerOpen:
		// Late results from runs admitted before the trip; the breaker
		// is already open, nothing to update.
	}
}

// snapshot returns the current state name and lifetime trip count.
func (b *breaker) snapshot() (state string, trips uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
