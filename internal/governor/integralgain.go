package governor

import (
	"mcddvfs/internal/clock"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/mcd"
)

// DefaultGainMHzPerW is the integral gain when the caller leaves it
// unset. Calibration: at the Table-1 operating points a 4-core chip's
// power moves on the order of 0.03–0.06 W per MHz of total frequency
// allowance (between linear and cubic in f because voltage tracks
// frequency), so a gain of 20 MHz/W puts the loop gain G·dP/df near
// one — measured settling is 8–12 epochs from a cold N·f_max start
// with no overshoot ringing, and the cap-sweep artifact's ±5%
// steady-state adherence band holds across the binding budget grid.
const DefaultGainMHzPerW = 20

// The paper-adjacent chip policy, after Chen, Wardi & Yalamanchili
// ("Power Regulation in High Performance Multicore Processors",
// PAPERS.md): one chip-level integral regulator drives the total
// frequency allowance from the total power error, and the allowance is
// apportioned to cores in proportion to their measured demand. A core
// that goes idle releases its watts to the busy cores within a few
// epochs — the budget-reallocation transient the captransient artifact
// records.
func init() {
	Register(Descriptor{
		Name:        "integral-gain",
		Order:       2,
		Capping:     true,
		Description: "chip-level integral power regulator with demand-proportional apportioning (Chen/Wardi/Yalamanchili)",
		Validate:    validateBudget,
		New: func(opt Options) (mcd.Governor, error) {
			if err := validateBudget(opt); err != nil {
				return nil, err
			}
			g := &integralGain{
				budgetW:  opt.BudgetW,
				gain:     opt.GainMHzPerW,
				rng:      opt.Range,
				cores:    opt.Cores,
				allocMHz: opt.Range.MaxMHz * float64(opt.Cores),
			}
			if g.gain <= 0 {
				g.gain = DefaultGainMHzPerW
			}
			return g, nil
		},
	})
}

type integralGain struct {
	budgetW float64
	gain    float64
	rng     dvfs.Range
	cores   int
	// allocMHz is the integral state: the chip-wide frequency
	// allowance, started at N·f_max (no throttling until the budget is
	// provably exceeded).
	allocMHz float64
}

// Apportion integrates the chip-wide budget error into the total
// frequency allowance, then splits the allowance across cores half
// evenly, half in proportion to measured demand. The demand half is
// what reallocates an idle core's watts to its busy neighbors; the
// even half bounds the positive feedback a pure demand split invites
// (a capped core draws less, earns a smaller share, gets capped
// harder, and starves).
func (g *integralGain) Apportion(_ clock.Time, powerW, capMHz []float64) {
	total := 0.0
	for _, w := range powerW {
		total += w
	}
	n := float64(g.cores)
	g.allocMHz += g.gain * (g.budgetW - total)
	if min := g.rng.MinMHz * n; g.allocMHz < min {
		g.allocMHz = min
	}
	if max := g.rng.MaxMHz * n; g.allocMHz > max {
		g.allocMHz = max
	}
	for i := range capMHz {
		share := 1 / n
		if total > 0 {
			share = 0.5/n + 0.5*powerW[i]/total
		}
		capMHz[i] = clampCap(g.rng, g.allocMHz*share)
	}
}
