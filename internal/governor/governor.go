// Package governor is the registry of chip-level power-cap governors.
// Every policy the chip harness can run — the no-op baseline, the naive
// per-core static split, and the Chen/Wardi/Yalamanchili-style integral
// regulator — self-registers a Descriptor at init time; every dispatch
// site in the repository (chip construction, validation, CLI parsing
// and -h listings, mcdserve spec validation) derives its behavior from
// the registry instead of switching on a governor name, mirroring
// internal/scheme exactly.
//
// Adding a governor is one new file in this package: write an
// mcd.Governor implementation and a Descriptor, call Register from the
// file's init, and the experiment harness, both CLIs, and the service
// pick it up with zero edits elsewhere. See docs/ARCHITECTURE.md,
// "Chip model & governor", for the walkthrough.
package governor

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/mcd"
)

// Options carries the per-run knobs a governor's Validate and New
// hooks may consult. It is the registry-facing projection of
// experiment.Options plus the chip facts a policy needs.
type Options struct {
	// Cores is the chip's core count; every New hook sizes its state
	// from it.
	Cores int
	// BudgetW is the chip-wide power budget to hold (Options.PowerCapW
	// at the harness layer).
	BudgetW float64
	// GainMHzPerW is the integral gain in MHz of frequency allowance
	// per watt of budget error per epoch (0 = the governor's default).
	GainMHzPerW float64
	// Range is the per-core DVFS range caps must respect.
	Range dvfs.Range
}

// Descriptor is one governor's self-description: everything a dispatch
// site needs to validate, construct, list, or order the governor
// without knowing it by name.
type Descriptor struct {
	// Name is the stable external identifier: CLI flag value, cache-key
	// component, RenderRequest field. Renaming a registered governor is
	// a breaking change (it retires disk-cache entries); don't.
	Name string
	// Order fixes the display and iteration order everywhere governors
	// are enumerated. Every registered governor needs a distinct Order
	// so listings stay byte-stable no matter the registration sequence.
	Order int
	// Capping marks governors that actually impose frequency caps; the
	// "none" baseline is the one registered governor without it. Only
	// capping governors accept a power budget.
	Capping bool
	// Description is the one-line summary shown by CLI -h listings and
	// the public Governors() API.
	Description string
	// Validate, when non-nil, front-loads per-governor option checks so
	// bad specs surface at the API boundary (wrapped in ErrInvalidSpec
	// by the caller) instead of as panics mid-simulation.
	Validate func(opt Options) error
	// New constructs the policy instance a Chip will consult each
	// epoch. A nil returned Governor means "run free": the chip skips
	// epoch barriers entirely (how "none" keeps the single-core path
	// bit-identical). New must be deterministic and must not retain opt.
	New func(opt Options) (mcd.Governor, error)
}

// DefaultName is the governor every run gets when none is requested:
// the no-op baseline, so plain single-core runs never see a barrier.
const DefaultName = "none"

// registry holds every registered descriptor. Registration happens in
// package init functions (single-goroutine by the language spec), but
// the mutex also makes test-time registration race-safe.
var registry = struct {
	sync.Mutex
	byName  map[string]Descriptor
	byOrder map[int]string
}{byName: make(map[string]Descriptor), byOrder: make(map[int]string)}

// Register adds a governor to the registry. It panics on a nil New
// hook, an empty or whitespace-carrying name, a duplicate name, or a
// duplicate order: every one of these is a programming error that must
// surface at init time, not as a silently shadowed governor at run
// time.
func Register(d Descriptor) {
	if d.Name == "" || strings.TrimSpace(d.Name) != d.Name {
		panic(fmt.Sprintf("governor: invalid name %q", d.Name))
	}
	if d.New == nil {
		panic(fmt.Sprintf("governor: %q registered without a New hook", d.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[d.Name]; dup {
		panic(fmt.Sprintf("governor: duplicate registration of %q", d.Name))
	}
	if prev, dup := registry.byOrder[d.Order]; dup {
		panic(fmt.Sprintf("governor: %q reuses order %d of %q", d.Name, d.Order, prev))
	}
	registry.byName[d.Name] = d
	registry.byOrder[d.Order] = d.Name
}

// Lookup returns the descriptor registered under name.
func Lookup(name string) (Descriptor, bool) {
	registry.Lock()
	defer registry.Unlock()
	d, ok := registry.byName[name]
	return d, ok
}

// All returns every registered descriptor in display order. The slice
// is freshly allocated; callers may keep or mutate it.
func All() []Descriptor {
	registry.Lock()
	out := make([]Descriptor, 0, len(registry.byName))
	for _, d := range registry.byName {
		out = append(out, d)
	}
	registry.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// Names returns every registered governor name in display order — the
// list CLI errors and -h texts print.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, d := range all {
		out[i] = d.Name
	}
	return out
}

// NamesList renders the registered names as one comma-separated string
// for error messages and flag usage texts.
func NamesList() string {
	return strings.Join(Names(), ", ")
}

// clampCap bounds one core's frequency cap to the DVFS range: a
// governor may never starve a core below f_min (the range has no lower
// operating point) nor allocate above f_max (meaningless headroom that
// would slow the integral loop's recovery).
func clampCap(rng dvfs.Range, mhz float64) float64 {
	if mhz < rng.MinMHz {
		return rng.MinMHz
	}
	if mhz > rng.MaxMHz {
		return rng.MaxMHz
	}
	return mhz
}

// validateBudget is the shared Validate hook of every capping
// governor: a power budget is mandatory and must be positive.
func validateBudget(opt Options) error {
	if opt.BudgetW <= 0 {
		return fmt.Errorf("governor: a capping governor needs a positive power budget (got %v W)", opt.BudgetW)
	}
	if opt.Cores <= 0 {
		return fmt.Errorf("governor: invalid core count %d", opt.Cores)
	}
	if opt.GainMHzPerW < 0 {
		return fmt.Errorf("governor: negative gain %v MHz/W", opt.GainMHzPerW)
	}
	return nil
}
