package governor

import "mcddvfs/internal/mcd"

// The no-op baseline: no caps, no epoch barriers. Its New hook returns
// a nil mcd.Governor, which Chip.RunContext reads as "run every core
// free to completion" — the property that keeps a default 1-core chip
// bit-identical to the single-processor path.
func init() {
	Register(Descriptor{
		Name:        DefaultName,
		Order:       0,
		Capping:     false,
		Description: "no chip-level power control; cores run free (the single-core default)",
		New: func(Options) (mcd.Governor, error) {
			return nil, nil
		},
	})
}
