package governor

import (
	"mcddvfs/internal/clock"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/mcd"
)

// The naive chip policy: split the budget evenly and run one integral
// frequency-cap loop per core against its fixed B/N share. Simple and
// stable, but a core that needs less than its share strands headroom —
// the slack never reaches the cores that could use it, which is
// exactly the deficiency the integral-gain governor's reallocation
// fixes and the cap-sweep artifact quantifies.
func init() {
	Register(Descriptor{
		Name:        "static-split",
		Order:       1,
		Capping:     true,
		Description: "even B/N per-core budgets, one integral cap loop per core (strands idle cores' slack)",
		Validate:    validateBudget,
		New: func(opt Options) (mcd.Governor, error) {
			if err := validateBudget(opt); err != nil {
				return nil, err
			}
			g := &staticSplit{
				shareW: opt.BudgetW / float64(opt.Cores),
				gain:   opt.GainMHzPerW,
				rng:    opt.Range,
				capMHz: make([]float64, opt.Cores),
			}
			if g.gain <= 0 {
				g.gain = DefaultGainMHzPerW
			}
			for i := range g.capMHz {
				g.capMHz[i] = opt.Range.MaxMHz
			}
			return g, nil
		},
	})
}

type staticSplit struct {
	shareW float64
	gain   float64
	rng    dvfs.Range
	capMHz []float64
}

// Apportion integrates each core's budget error into its cap,
// independently of every other core.
func (g *staticSplit) Apportion(_ clock.Time, powerW, capMHz []float64) {
	for i := range capMHz {
		g.capMHz[i] = clampCap(g.rng, g.capMHz[i]+g.gain*(g.shareW-powerW[i]))
		capMHz[i] = g.capMHz[i]
	}
}
