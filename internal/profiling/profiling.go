// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLIs so performance work on the simulator is measurable with
// `go tool pprof` without ad-hoc instrumentation.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a
// stop function that ends the CPU profile and writes an allocation
// profile to memPath (if non-empty). The stop function must be called
// on the program's success path; error paths that os.Exit early simply
// lose the profile.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
		}
		return nil
	}, nil
}
