package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
)

func TestDefaultRangeMatchesTable1(t *testing.T) {
	r := Default()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.MinMHz != 250 || r.MaxMHz != 1000 || r.MinV != 0.65 || r.MaxV != 1.20 || r.Steps != 320 {
		t.Errorf("default range %+v does not match Table 1", r)
	}
	// ~2.3 MHz per step ("320 steps to traverse the total range").
	if s := r.StepMHz(); math.Abs(s-2.34375) > 1e-9 {
		t.Errorf("StepMHz = %g, want 2.34375", s)
	}
}

func TestVoltageMapEndpointsAndMonotonic(t *testing.T) {
	r := Default()
	if v := r.VoltageFor(250); math.Abs(v-0.65) > 1e-12 {
		t.Errorf("V(250MHz) = %g, want 0.65", v)
	}
	if v := r.VoltageFor(1000); math.Abs(v-1.20) > 1e-12 {
		t.Errorf("V(1000MHz) = %g, want 1.20", v)
	}
	prev := 0.0
	for f := 250.0; f <= 1000; f += 10 {
		v := r.VoltageFor(f)
		if v < prev {
			t.Fatalf("voltage map not monotonic at %g MHz", f)
		}
		prev = v
	}
	// Out-of-range frequencies clamp.
	if r.VoltageFor(5000) != 1.20 || r.VoltageFor(1) != 0.65 {
		t.Error("VoltageFor did not clamp")
	}
}

func TestQuantizeIdempotentAndOnGrid(t *testing.T) {
	r := Default()
	f := func(raw uint16) bool {
		x := 200 + float64(raw%900) + float64(raw%7)/7.0
		q := r.Quantize(x)
		if q < r.MinMHz || q > r.MaxMHz {
			return false
		}
		// Idempotent.
		if math.Abs(r.Quantize(q)-q) > 1e-9 {
			return false
		}
		// On grid.
		n := (q - r.MinMHz) / r.StepMHz()
		return math.Abs(n-math.Round(n)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStepWalksTheGrid(t *testing.T) {
	r := Default()
	f := r.MinMHz
	for i := 0; i < r.Steps; i++ {
		f = r.Step(f, 1)
	}
	if math.Abs(f-r.MaxMHz) > 1e-6 {
		t.Errorf("after %d up-steps f = %g, want %g", r.Steps, f, r.MaxMHz)
	}
	// Saturates at the top.
	if g := r.Step(f, 5); math.Abs(g-r.MaxMHz) > 1e-6 {
		t.Errorf("step above max = %g", g)
	}
	// Walk all the way down.
	for i := 0; i < r.Steps+10; i++ {
		f = r.Step(f, -1)
	}
	if math.Abs(f-r.MinMHz) > 1e-6 {
		t.Errorf("after down-steps f = %g, want %g", f, r.MinMHz)
	}
}

func TestDoubleStep(t *testing.T) {
	r := Default()
	f0 := r.Quantize(500)
	if got, want := r.Step(f0, 2), r.Step(r.Step(f0, 1), 1); math.Abs(got-want) > 1e-9 {
		t.Errorf("Step(2) = %g, want %g", got, want)
	}
}

func TestRelativeFreq(t *testing.T) {
	r := Default()
	if rf := r.RelativeFreq(1000); rf != 1 {
		t.Errorf("RelativeFreq(fmax) = %g, want 1", rf)
	}
	if rf := r.RelativeFreq(250); rf != 0.25 {
		t.Errorf("RelativeFreq(fmin) = %g, want 0.25", rf)
	}
}

func TestValidateCatchesBadRanges(t *testing.T) {
	bad := []Range{
		{MinMHz: 0, MaxMHz: 100, MinV: 1, MaxV: 2, Steps: 10},
		{MinMHz: 100, MaxMHz: 50, MinV: 1, MaxV: 2, Steps: 10},
		{MinMHz: 100, MaxMHz: 200, MinV: 2, MaxV: 1, Steps: 10},
		{MinMHz: 100, MaxMHz: 200, MinV: 1, MaxV: 2, Steps: 0},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTransitionTimes(t *testing.T) {
	r := Default()
	m := DefaultTransitions()
	// Frequency slew (73.3 ns/MHz) dominates the voltage slew
	// (7 ns / 2.34 MHz ≈ 3 ns/MHz).
	if got := m.SlewPerMHz(r); got != clock.Time(73.3*float64(clock.Nanosecond)) {
		t.Errorf("SlewPerMHz = %v", got)
	}
	// Full-range transition: 750 MHz * 73.3 ns ≈ 55 µs.
	full := m.TimeFor(r, 750)
	if full < 54*clock.Microsecond || full > 56*clock.Microsecond {
		t.Errorf("full-range transition = %v, want ~55µs", full)
	}
	if m.TimeFor(r, -10) != m.TimeFor(r, 10) {
		t.Error("TimeFor must ignore sign")
	}
}

func TestTransitionStyles(t *testing.T) {
	if DefaultTransitions().Style != clock.XScale {
		t.Error("default transitions must be XScale-style")
	}
	if TransmetaTransitions().Style != clock.Transmeta {
		t.Error("Transmeta transitions mis-styled")
	}
}

func TestVoltageSlewDominatesWhenStepsAreFine(t *testing.T) {
	// With a very fine frequency grid the voltage slew per MHz grows
	// and must take over.
	r := Range{MinMHz: 250, MaxMHz: 1000, MinV: 0.65, MaxV: 1.2, Steps: 320000}
	m := DefaultTransitions()
	if m.SlewPerMHz(r) <= m.FreqSlew {
		t.Error("voltage slew should dominate for a fine grid")
	}
}
