// Package dvfs models the voltage/frequency actuation machinery of the
// MCD processor: the discrete operating-point grid, the linear V–f map,
// and the transition-cost model of Table 1 (73.3 ns/MHz frequency slew,
// 7 ns per 2.86 mV voltage step, XScale-style execute-through
// transitions).
package dvfs

import (
	"fmt"
	"math"

	"mcddvfs/internal/clock"
)

// Range is the controllable operating envelope of one clock domain.
type Range struct {
	// MinMHz and MaxMHz bound the frequency (Table 1: 250–1000 MHz).
	MinMHz, MaxMHz float64
	// MinV and MaxV bound the supply voltage (Table 1: 0.65–1.20 V).
	MinV, MaxV float64
	// Steps is the number of discrete frequency steps spanning the
	// range. The paper uses a step of ~2.3 MHz, "so it takes 320 steps
	// to traverse the total frequency/voltage range".
	Steps int
}

// Default returns the Table-1 operating range.
func Default() Range {
	return Range{MinMHz: 250, MaxMHz: 1000, MinV: 0.65, MaxV: 1.20, Steps: 320}
}

// Validate checks the range for consistency.
func (r Range) Validate() error {
	if r.MinMHz <= 0 || r.MaxMHz <= r.MinMHz {
		return fmt.Errorf("dvfs: bad frequency range [%g,%g]", r.MinMHz, r.MaxMHz)
	}
	if r.MinV <= 0 || r.MaxV <= r.MinV {
		return fmt.Errorf("dvfs: bad voltage range [%g,%g]", r.MinV, r.MaxV)
	}
	if r.Steps < 1 {
		return fmt.Errorf("dvfs: non-positive step count %d", r.Steps)
	}
	return nil
}

// StepMHz returns the frequency granularity of one DVFS step.
func (r Range) StepMHz() float64 { return (r.MaxMHz - r.MinMHz) / float64(r.Steps) }

// StepV returns the voltage granularity of one DVFS step.
func (r Range) StepV() float64 { return (r.MaxV - r.MinV) / float64(r.Steps) }

// Clamp bounds f to the range.
func (r Range) Clamp(f float64) float64 {
	if f < r.MinMHz {
		return r.MinMHz
	}
	if f > r.MaxMHz {
		return r.MaxMHz
	}
	return f
}

// Quantize snaps f onto the discrete operating grid (and into range).
func (r Range) Quantize(f float64) float64 {
	f = r.Clamp(f)
	step := r.StepMHz()
	n := math.Round((f - r.MinMHz) / step)
	return r.MinMHz + n*step
}

// Step moves f by n grid steps (negative = down), staying in range.
func (r Range) Step(f float64, n int) float64 {
	return r.Quantize(f + float64(n)*r.StepMHz())
}

// VoltageFor returns the supply voltage required for frequency f. The
// map is linear across the envelope, matching the paired Table-1 steps
// (one frequency step always moves one voltage step).
func (r Range) VoltageFor(f float64) float64 {
	f = r.Clamp(f)
	frac := (f - r.MinMHz) / (r.MaxMHz - r.MinMHz)
	return r.MinV + frac*(r.MaxV-r.MinV)
}

// RelativeFreq returns f normalized to the maximum frequency (the
// paper's "relative frequency using f_max as the base").
func (r Range) RelativeFreq(f float64) float64 { return r.Clamp(f) / r.MaxMHz }

// TransitionModel is the physical cost model of a frequency/voltage
// change.
type TransitionModel struct {
	// FreqSlew is the time to move the frequency by 1 MHz
	// (Table 1: 73.3 ns/MHz).
	FreqSlew clock.Time
	// VoltSlewPerStep is the time to move the voltage by one grid step
	// (Table 1: 7 ns per 2.86 mV step).
	VoltSlewPerStep clock.Time
	// Style is XScale (execute through) or Transmeta (idle through).
	Style clock.TransitionStyle
	// EnergyPerTransitionJ is the regulator switching-energy cost of
	// one transition. The paper (and most DVFS studies) ignores it
	// because the regulator capacitors are small; it is exposed for
	// ablation studies.
	EnergyPerTransitionJ float64
}

// DefaultTransitions returns the Table-1 XScale-style model.
func DefaultTransitions() TransitionModel {
	return TransitionModel{
		FreqSlew:        clock.Time(73.3 * float64(clock.Nanosecond) / 1), // per MHz
		VoltSlewPerStep: 7 * clock.Nanosecond,
		Style:           clock.XScale,
	}
}

// TransmetaTransitions returns a coarse-grained Transmeta-style model:
// the same physical slew rates, but the domain idles during the change
// (the paper's Section 3 discussion of the two DVFS families).
func TransmetaTransitions() TransitionModel {
	m := DefaultTransitions()
	m.Style = clock.Transmeta
	return m
}

// SlewPerMHz returns the effective per-MHz transition time: frequency
// and voltage slew concurrently, so the slower of the two rates
// dominates. steps/MHz converts the voltage rate onto the frequency
// axis.
func (m TransitionModel) SlewPerMHz(r Range) clock.Time {
	vPerMHz := clock.Time(float64(m.VoltSlewPerStep) / r.StepMHz())
	if vPerMHz > m.FreqSlew {
		return vPerMHz
	}
	return m.FreqSlew
}

// TimeFor returns the duration of a transition of df MHz (sign
// ignored).
func (m TransitionModel) TimeFor(r Range, df float64) clock.Time {
	if df < 0 {
		df = -df
	}
	return clock.Time(float64(m.SlewPerMHz(r)) * df)
}
