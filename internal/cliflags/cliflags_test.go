package cliflags

import (
	"context"
	"flag"
	"io"
	"os"
	"testing"
	"time"
)

// TestSharedFlagsRegisterConsistently locks the shared contract: every
// command registering through this package gets identical flag names
// and usage strings, with only the default under command control.
func TestSharedFlagsRegisterConsistently(t *testing.T) {
	a := flag.NewFlagSet("a", flag.ContinueOnError)
	b := flag.NewFlagSet("b", flag.ContinueOnError)
	Timeout(a, 0)
	Timeout(b, 2*time.Minute)
	CacheDir(a, "results/.cache")
	CacheDir(b, "")
	CacheMaxBytes(a)
	CacheMaxBytes(b)
	ShutdownGrace(a, 0)
	ShutdownGrace(b, 15*time.Second)
	for _, name := range []string{"timeout", "cache-dir", "cache-max-bytes", "shutdown-grace"} {
		fa, fb := a.Lookup(name), b.Lookup(name)
		if fa == nil || fb == nil {
			t.Fatalf("flag -%s not registered on both sets", name)
		}
		if fa.Usage != fb.Usage {
			t.Errorf("-%s usage drifted between commands:\n  a: %s\n  b: %s", name, fa.Usage, fb.Usage)
		}
	}
	if a.Lookup("timeout").DefValue == b.Lookup("timeout").DefValue {
		t.Error("per-command defaults should be independent")
	}
}

// TestFlagsParse exercises the registered flags end to end.
func TestFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	timeout := Timeout(fs, 0)
	dir := CacheDir(fs, "d")
	max := CacheMaxBytes(fs)
	grace := ShutdownGrace(fs, 0)
	err := fs.Parse([]string{"-timeout", "30s", "-cache-dir", "/tmp/c", "-cache-max-bytes", "1024", "-shutdown-grace", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if *timeout != 30*time.Second || *dir != "/tmp/c" || *max != 1024 || *grace != 5*time.Second {
		t.Fatalf("parsed %v %q %d %v", *timeout, *dir, *max, *grace)
	}
}

// TestGraceContextImmediateWithoutGrace preserves the historical
// behavior: grace <= 0 means the first signal cancels at once.
func TestGraceContextImmediateWithoutGrace(t *testing.T) {
	sig := make(chan os.Signal, 1)
	ctx, cancel := graceContext(context.Background(), 0, sig)
	defer cancel()
	sig <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context not cancelled on first signal with zero grace")
	}
}

// TestGraceContextHoldsThenCancels asserts the grace window: the first
// signal does not cancel, the budget expiring does.
func TestGraceContextHoldsThenCancels(t *testing.T) {
	sig := make(chan os.Signal, 2)
	ctx, cancel := graceContext(context.Background(), 50*time.Millisecond, sig)
	defer cancel()
	sig <- os.Interrupt
	select {
	case <-ctx.Done():
		t.Fatal("context cancelled immediately despite grace budget")
	case <-time.After(10 * time.Millisecond):
	}
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("context not cancelled after the grace budget expired")
	}
}

// TestGraceContextSecondSignalForces asserts a second signal cuts the
// grace window short.
func TestGraceContextSecondSignalForces(t *testing.T) {
	sig := make(chan os.Signal, 2)
	ctx, cancel := graceContext(context.Background(), time.Hour, sig)
	defer cancel()
	sig <- os.Interrupt
	sig <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("second signal did not force cancellation")
	}
}
