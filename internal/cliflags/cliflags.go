// Package cliflags registers the flags every mcddvfs command shares —
// -timeout, -cache-dir, -cache-max-bytes, -shutdown-grace — from one
// place, so their names, units, and usage strings cannot drift apart
// across cmd/experiments, cmd/mcdsim, and cmd/mcdserve (they had:
// three subtly different -cache-dir usage strings before this package
// existed). Per-command defaults stay with the command; the contract
// (name + meaning) lives here.
package cliflags

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcddvfs/internal/governor"
)

// Timeout registers -timeout: the per-run deadline.
func Timeout(fs *flag.FlagSet, def time.Duration) *time.Duration {
	return fs.Duration("timeout", def, "per-run deadline (0 = none)")
}

// CacheDir registers -cache-dir: the persistent result cache location.
func CacheDir(fs *flag.FlagSet, def string) *string {
	return fs.String("cache-dir", def, `persist simulation results here across runs ("" = in-memory only)`)
}

// CacheMaxBytes registers -cache-max-bytes: the disk-cache size cap.
func CacheMaxBytes(fs *flag.FlagSet) *int64 {
	return fs.Int64("cache-max-bytes", 0, "size cap for -cache-dir before LRU eviction (0 = 2 GiB default)")
}

// Cores registers -cores: the simulated chip's core count.
func Cores(fs *flag.FlagSet) *int {
	return fs.Int("cores", 1, "number of cores on the simulated chip (1 = the classic single-core machine)")
}

// PowerCap registers -power-cap: the chip power budget.
func PowerCap(fs *flag.FlagSet) *float64 {
	return fs.Float64("power-cap", 0, "chip power budget in watts (0 = unbudgeted; >0 selects the integral-gain governor unless -governor names another)")
}

// Governor registers -governor: the chip-level power-cap governor. The
// usage string reads the registry, so new governor plugins surface in
// -h with no CLI edits.
func Governor(fs *flag.FlagSet) *string {
	return fs.String("governor", "", `chip power-cap governor, one of: `+governor.NamesList()+` ("" = none)`)
}

// GovernorGain registers -governor-gain: the governor's integral gain.
func GovernorGain(fs *flag.FlagSet) *float64 {
	return fs.Float64("governor-gain", 0, "governor integral gain in MHz per watt (0 = the governor's calibrated default)")
}

// ShutdownGrace registers -shutdown-grace: how long in-flight work may
// keep running after the first SIGINT/SIGTERM before it is cancelled.
func ShutdownGrace(fs *flag.FlagSet, def time.Duration) *time.Duration {
	return fs.Duration("shutdown-grace", def, "after SIGINT/SIGTERM, let in-flight work finish for this long before cancelling (0 = cancel immediately; a second signal always cancels now)")
}

// GraceNotifyContext is signal.NotifyContext with a -shutdown-grace
// budget: on the first SIGINT/SIGTERM the returned context stays alive
// for up to grace so in-flight work can finish, then cancels; a second
// signal — or grace <= 0 — cancels immediately, preserving the old
// first-signal-cancels behavior. stop releases the signal registration
// and cancels the context.
func GraceNotifyContext(parent context.Context, grace time.Duration) (ctx context.Context, stop context.CancelFunc) {
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	ctx, cancel := graceContext(parent, grace, sigCh)
	return ctx, func() {
		signal.Stop(sigCh)
		cancel()
	}
}

// graceContext is the testable core of GraceNotifyContext: sigCh
// stands in for the process signal stream.
func graceContext(parent context.Context, grace time.Duration, sigCh <-chan os.Signal) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		select {
		case <-ctx.Done():
			return
		case <-sigCh:
		}
		if grace <= 0 {
			cancel()
			return
		}
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case <-ctx.Done():
		case <-sigCh:
			cancel()
		case <-t.C:
			cancel()
		}
	}()
	return ctx, cancel
}
