// Package cache implements the simulated memory hierarchy: generic
// set-associative write-back caches with LRU replacement, composed into
// the Table-1 hierarchy (64 KB 2-way L1 instruction and data caches, a
// 1 MB direct-mapped unified L2, and main memory as an external
// asynchronous domain with a fixed access latency).
package cache

import "fmt"

// Level identifies where in the hierarchy an access was satisfied.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative write-back, write-allocate cache with
// true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	ways     int
	lineBits uint
	setBits  uint
	setMask  uint64

	tags  []uint64 // sets*ways; tag+1 stored so 0 means invalid
	dirty []bool
	age   []uint32 // larger = older

	stats Stats
}

// New creates a cache. size and lineSize are in bytes; size must be
// sets*ways*lineSize with power-of-two sets and lineSize.
func New(name string, size, ways, lineSize int) *Cache {
	if ways <= 0 || lineSize <= 0 || size <= 0 {
		panic(fmt.Sprintf("cache %s: non-positive geometry", name))
	}
	if lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", name, lineSize))
	}
	sets := size / (ways * lineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (from size %d, ways %d, line %d) not a power of two",
			name, sets, size, ways, lineSize))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	setBits := uint(0)
	for 1<<setBits < sets {
		setBits++
	}
	n := sets * ways
	return &Cache{
		name: name, sets: sets, ways: ways, lineBits: lineBits,
		setBits: setBits, setMask: uint64(sets - 1),
		tags: make([]uint64, n), dirty: make([]bool, n), age: make([]uint32, n),
	}
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return 1 << c.lineBits }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	// Sets are a power of two (New enforces it), so the modulo/divide
	// pair reduces to mask/shift — this is the per-access hot path.
	line := addr >> c.lineBits
	return int(line & c.setMask), line>>c.setBits + 1 // +1 so 0 = invalid
}

// Access looks up addr, allocating the line on a miss. It returns
// whether the access hit and whether the allocation evicted a dirty
// line (a writeback).
func (c *Cache) Access(addr uint64, write bool) (hit, writeback bool) {
	c.stats.Accesses++
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.touch(base, w)
			if write {
				c.dirty[base+w] = true
			}
			return true, false
		}
	}
	c.stats.Misses++
	// Choose victim: first invalid way, else oldest.
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = w
			break
		}
		if c.age[base+w] > c.age[base+victim] {
			victim = w
		}
	}
	if c.tags[base+victim] != 0 && c.dirty[base+victim] {
		writeback = true
		c.stats.Writebacks++
	}
	c.tags[base+victim] = tag
	c.dirty[base+victim] = write
	c.touch(base, victim)
	return false, writeback
}

// Fill allocates the line containing addr without counting a demand
// access — the prefetch path. It reports whether the line was already
// resident.
func (c *Cache) Fill(addr uint64) (wasResident bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.touch(base, w)
			return true
		}
	}
	victim := 0
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			victim = w
			break
		}
		if c.age[base+w] > c.age[base+victim] {
			victim = w
		}
	}
	if c.tags[base+victim] != 0 && c.dirty[base+victim] {
		c.stats.Writebacks++
	}
	c.tags[base+victim] = tag
	c.dirty[base+victim] = false
	c.touch(base, victim)
	return false
}

// Probe reports whether addr is resident without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, w int) {
	for i := 0; i < c.ways; i++ {
		c.age[base+i]++
	}
	c.age[base+w] = 0
}

// Config describes the full hierarchy; zero values fall back to the
// Table-1 defaults via Default().
type Config struct {
	L1ISize, L1IWays, L1ILine int
	L1DSize, L1DWays, L1DLine int
	L2Size, L2Ways, L2Line    int
	// L1Latency and L2Latency are access latencies in cycles of the
	// accessing domain (Table 1: 2-cycle L1, 12-cycle L2).
	L1Latency, L2Latency int
	// MemFirstChunkNS is the frequency-independent main-memory latency
	// in nanoseconds (Table 1: 80 ns first chunk).
	MemFirstChunkNS float64
}

// Validate checks every cache geometry against the constraints New
// enforces with panics, so misconfigured hierarchies surface as errors
// at the API boundary instead of panics mid-construction.
func (c Config) Validate() error {
	check := func(name string, size, ways, lineSize int) error {
		if ways <= 0 || lineSize <= 0 || size <= 0 {
			return fmt.Errorf("cache %s: non-positive geometry (size %d, ways %d, line %d)", name, size, ways, lineSize)
		}
		if lineSize&(lineSize-1) != 0 {
			return fmt.Errorf("cache %s: line size %d not a power of two", name, lineSize)
		}
		sets := size / (ways * lineSize)
		if sets <= 0 || sets&(sets-1) != 0 {
			return fmt.Errorf("cache %s: %d sets (from size %d, ways %d, line %d) not a power of two",
				name, sets, size, ways, lineSize)
		}
		return nil
	}
	if err := check("L1I", c.L1ISize, c.L1IWays, c.L1ILine); err != nil {
		return err
	}
	if err := check("L1D", c.L1DSize, c.L1DWays, c.L1DLine); err != nil {
		return err
	}
	if err := check("L2", c.L2Size, c.L2Ways, c.L2Line); err != nil {
		return err
	}
	if c.L1Latency < 0 || c.L2Latency < 0 || c.MemFirstChunkNS < 0 {
		return fmt.Errorf("cache: negative latency")
	}
	return nil
}

// Default returns the Table-1 hierarchy configuration.
func Default() Config {
	return Config{
		L1ISize: 64 << 10, L1IWays: 2, L1ILine: 64,
		L1DSize: 64 << 10, L1DWays: 2, L1DLine: 64,
		L2Size: 1 << 20, L2Ways: 1, L2Line: 128,
		L1Latency: 2, L2Latency: 12,
		MemFirstChunkNS: 80,
	}
}

// Hierarchy composes the instruction and data paths over a shared L2.
type Hierarchy struct {
	cfg Config
	l1i *Cache
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1i: New("L1I", cfg.L1ISize, cfg.L1IWays, cfg.L1ILine),
		l1d: New("L1D", cfg.L1DSize, cfg.L1DWays, cfg.L1DLine),
		l2:  New("L2", cfg.L2Size, cfg.L2Ways, cfg.L2Line),
	}
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1I, L1D and L2 expose the component caches for statistics.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L1D returns the L1 data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Data performs a data access and returns the satisfying level.
func (h *Hierarchy) Data(addr uint64, write bool) Level {
	if hit, _ := h.l1d.Access(addr, write); hit {
		return LevelL1
	}
	if hit, _ := h.l2.Access(addr, write); hit {
		return LevelL2
	}
	return LevelMem
}

// PrefetchData pulls the line containing addr into L1D and L2 without
// counting demand accesses (the next-line prefetcher path).
func (h *Hierarchy) PrefetchData(addr uint64) {
	h.l1d.Fill(addr)
	h.l2.Fill(addr)
}

// Inst performs an instruction fetch access.
func (h *Hierarchy) Inst(pc uint64) Level {
	if hit, _ := h.l1i.Access(pc, false); hit {
		return LevelL1
	}
	if hit, _ := h.l2.Access(pc, false); hit {
		return LevelL2
	}
	return LevelMem
}

// DataLatency converts a data-access level into (cycles in the
// accessing domain, frequency-independent nanoseconds). The cycle
// component scales with domain frequency; the nanosecond component is
// the asynchronous main-memory time (the t1 term of the paper's µ–f
// model).
func (h *Hierarchy) DataLatency(l Level) (cycles int, fixedNS float64) {
	switch l {
	case LevelL1:
		return h.cfg.L1Latency, 0
	case LevelL2:
		return h.cfg.L1Latency + h.cfg.L2Latency, 0
	default:
		return h.cfg.L1Latency + h.cfg.L2Latency, h.cfg.MemFirstChunkNS
	}
}

// InstLatency converts an instruction-fetch level the same way.
func (h *Hierarchy) InstLatency(l Level) (cycles int, fixedNS float64) {
	return h.DataLatency(l)
}
