package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccessHitAfterMiss(t *testing.T) {
	c := New("t", 1<<10, 2, 64)
	if hit, _ := c.Access(0x1000, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Error("warm access missed")
	}
	if hit, _ := c.Access(0x1004, false); !hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 3 accesses / 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set: three distinct lines must evict the least recent.
	c := New("t", 128, 2, 64)
	if c.Sets() != 1 {
		t.Fatalf("sets = %d, want 1", c.Sets())
	}
	c.Access(0x0000, false) // A
	c.Access(0x4000, false) // B
	c.Access(0x0000, false) // touch A; B is LRU
	c.Access(0x8000, false) // C evicts B
	if !c.Probe(0x0000) {
		t.Error("MRU line A evicted")
	}
	if c.Probe(0x4000) {
		t.Error("LRU line B survived")
	}
	if !c.Probe(0x8000) {
		t.Error("new line C missing")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := New("t", 128, 2, 64)
	c.Access(0x0000, true) // dirty A
	c.Access(0x4000, false)
	_, wb := c.Access(0x8000, false) // evicts dirty A
	if !wb {
		t.Error("dirty eviction did not write back")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New("t", 128, 2, 64)
	c.Access(0x0000, false)
	c.Access(0x4000, false)
	if _, wb := c.Access(0x8000, false); wb {
		t.Error("clean eviction wrote back")
	}
}

func TestProbeDoesNotDisturbState(t *testing.T) {
	c := New("t", 128, 2, 64)
	c.Access(0x0000, false)
	before := c.Stats()
	c.Probe(0x0000)
	c.Probe(0x4000)
	if c.Stats() != before {
		t.Error("Probe changed statistics")
	}
}

func TestWorkingSetFitsMeansHighHitRate(t *testing.T) {
	c := New("t", 64<<10, 2, 64)
	rng := rand.New(rand.NewSource(1))
	// 32 KB working set inside a 64 KB cache: after warmup, ~every
	// access hits.
	for i := 0; i < 20000; i++ {
		c.Access(uint64(rng.Intn(32<<10))&^7, false)
	}
	warm := c.Stats()
	if warm.MissRate() > 0.1 {
		t.Errorf("miss rate %.3f too high for resident working set", warm.MissRate())
	}
	// 16 MB working set: mostly misses.
	c2 := New("t2", 64<<10, 2, 64)
	for i := 0; i < 20000; i++ {
		c2.Access(uint64(rng.Intn(16<<20))&^7, false)
	}
	if c2.Stats().MissRate() < 0.5 {
		t.Errorf("miss rate %.3f too low for thrashing working set", c2.Stats().MissRate())
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := New("dm", 1<<20, 1, 128)
	a := uint64(0x100)
	b := a + 1<<20 // same set, different tag
	c.Access(a, false)
	c.Access(b, false)
	if c.Probe(a) {
		t.Error("direct-mapped conflict did not evict")
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(Default())
	addr := uint64(0x2000_0000)
	if l := h.Data(addr, false); l != LevelMem {
		t.Errorf("cold access level = %v, want mem", l)
	}
	if l := h.Data(addr, false); l != LevelL1 {
		t.Errorf("warm access level = %v, want L1", l)
	}
	// Evict from L1 by filling its set (2-way, 512 sets, 64B lines →
	// set stride 32 KB); the line stays in L2.
	h.Data(addr+32<<10, false)
	h.Data(addr+64<<10, false)
	if l := h.Data(addr, false); l != LevelL2 {
		t.Errorf("L1-evicted access level = %v, want L2", l)
	}
}

func TestHierarchyInstPath(t *testing.T) {
	h := NewHierarchy(Default())
	pc := uint64(0x400000)
	if l := h.Inst(pc); l != LevelMem {
		t.Errorf("cold fetch = %v, want mem", l)
	}
	if l := h.Inst(pc); l != LevelL1 {
		t.Errorf("warm fetch = %v, want L1", l)
	}
	// Data accesses must not pollute L1I.
	if h.L1I().Stats().Accesses != 2 {
		t.Errorf("L1I accesses = %d, want 2", h.L1I().Stats().Accesses)
	}
}

func TestLatencies(t *testing.T) {
	h := NewHierarchy(Default())
	c1, f1 := h.DataLatency(LevelL1)
	c2, f2 := h.DataLatency(LevelL2)
	cm, fm := h.DataLatency(LevelMem)
	if c1 != 2 || f1 != 0 {
		t.Errorf("L1 latency = (%d,%g), want (2,0)", c1, f1)
	}
	if c2 != 14 || f2 != 0 {
		t.Errorf("L2 latency = (%d,%g), want (14,0)", c2, f2)
	}
	if cm != 14 || fm != 80 {
		t.Errorf("mem latency = (%d,%g), want (14,80)", cm, fm)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "mem" {
		t.Error("bad level names")
	}
	if Level(9).String() == "" {
		t.Error("out-of-range level must format")
	}
}

func TestAccessNeverPanics(t *testing.T) {
	h := NewHierarchy(Default())
	f := func(addr uint64, write bool) bool {
		h.Data(addr, write)
		h.Inst(addr)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { New("x", 0, 2, 64) },
		func() { New("x", 1000, 2, 60) },  // non-pow2 line
		func() { New("x", 96*64, 2, 64) }, // non-pow2 sets
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestFillDoesNotCountDemandStats(t *testing.T) {
	c := New("t", 1<<10, 2, 64)
	before := c.Stats()
	if c.Fill(0x1000) {
		t.Error("cold fill reported resident")
	}
	if !c.Fill(0x1000) {
		t.Error("warm fill reported non-resident")
	}
	after := c.Stats()
	if after.Accesses != before.Accesses || after.Misses != before.Misses {
		t.Error("Fill counted demand accesses")
	}
	if !c.Probe(0x1000) {
		t.Error("filled line not resident")
	}
}

func TestPrefetchDataWarmsBothLevels(t *testing.T) {
	h := NewHierarchy(Default())
	h.PrefetchData(0x4000)
	if l := h.Data(0x4000, false); l != LevelL1 {
		t.Errorf("post-prefetch access level = %v, want L1", l)
	}
}
