package mcd

import (
	"mcddvfs/internal/clock"
	"mcddvfs/internal/isa"
)

// uopState tracks a micro-op through the pipeline.
type uopState uint8

const (
	stateDispatched uopState = iota // in ROB + issue queue, waiting
	stateIssued                     // executing in a functional unit
	stateDone                       // result available, awaiting commit
)

// uop is one in-flight dynamic instruction.
type uop struct {
	seq    uint64
	inst   isa.Inst
	domain isa.ExecDomain
	state  uopState

	// src1 and src2 are producer sequence numbers (0 = operand ready).
	src1, src2 uint64

	// readyAt is the global time the result becomes available to
	// same-domain consumers once state == stateDone.
	readyAt clock.Time

	// stallUntil is an issue-scan hint: a lower bound on when an
	// operand of this (still-dispatched) uop can become ready, learned
	// from a failed readiness check against an already-issued producer.
	// The scan skips the uop without window lookups until then. Zero
	// means no bound is known. Purely an optimization: the producer's
	// readyAt is written once at issue and bounds both the forwarding
	// and the commit path, so the hint is never late.
	stallUntil clock.Time

	// Branch bookkeeping.
	predTaken  bool
	predTarget uint64
	mispredict bool

	// hasReg marks that the uop holds a physical register from
	// dispatch until commit.
	hasReg bool
}

// window is a seq-indexed ring of in-flight uops used for producer
// lookups. Producers fall out of the window when they commit; a lookup
// that misses means the producer has already committed, i.e. the
// operand is ready.
type window struct {
	slots []*uop
	mask  uint64
}

// newWindow creates a window with capacity n (rounded up to a power of
// two). n must exceed the ROB size plus the maximum dependency
// distance so that an in-flight producer can never be evicted early.
func newWindow(n int) *window {
	size := 1
	for size < n {
		size <<= 1
	}
	return &window{slots: make([]*uop, size), mask: uint64(size - 1)}
}

func (w *window) insert(u *uop) { w.slots[u.seq&w.mask] = u }

func (w *window) remove(u *uop) {
	i := u.seq & w.mask
	if w.slots[i] == u {
		w.slots[i] = nil
	}
}

// lookup returns the in-flight uop with the given seq, or nil if it has
// committed (or never existed).
func (w *window) lookup(seq uint64) *uop {
	u := w.slots[seq&w.mask]
	if u != nil && u.seq == seq {
		return u
	}
	return nil
}

// rob is the in-order reorder buffer.
type rob struct {
	entries []*uop
	head    int
	count   int
}

func newROB(size int) *rob { return &rob{entries: make([]*uop, size)} }

func (r *rob) full() bool  { return r.count == len(r.entries) }
func (r *rob) empty() bool { return r.count == 0 }
func (r *rob) len() int    { return r.count }

func (r *rob) push(u *uop) {
	if r.full() {
		panic("mcd: ROB overflow")
	}
	i := r.head + r.count
	if n := len(r.entries); i >= n { // head+count < 2n always holds
		i -= n
	}
	r.entries[i] = u
	r.count++
}

func (r *rob) peek() *uop {
	if r.empty() {
		return nil
	}
	return r.entries[r.head]
}

func (r *rob) pop() *uop {
	u := r.peek()
	if u == nil {
		panic("mcd: ROB underflow")
	}
	r.entries[r.head] = nil
	if r.head++; r.head == len(r.entries) {
		r.head = 0
	}
	r.count--
	return u
}

// funcUnit models one functional unit's availability.
type funcUnit struct {
	freeAt clock.Time
}

// unitPool is a group of identical functional units.
type unitPool struct {
	units []funcUnit
}

func newUnitPool(n int) *unitPool { return &unitPool{units: make([]funcUnit, n)} }

// acquire finds a unit free at time now and books it until busyUntil.
// It reports whether a unit was available.
func (p *unitPool) acquire(now, busyUntil clock.Time) bool {
	for i := range p.units {
		if p.units[i].freeAt <= now {
			p.units[i].freeAt = busyUntil
			return true
		}
	}
	return false
}

// available counts units free at time now.
func (p *unitPool) available(now clock.Time) int {
	n := 0
	for i := range p.units {
		if p.units[i].freeAt <= now {
			n++
		}
	}
	return n
}

func (p *unitPool) size() int { return len(p.units) }
