//go:build race

package mcd_test

// raceEnabled reports whether this test binary was built with -race;
// wall-clock assertions skip under instrumentation.
const raceEnabled = true
