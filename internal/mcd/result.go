package mcd

import (
	"mcddvfs/internal/clock"
	"mcddvfs/internal/power"
)

// FreqPoint is one sample of a domain's frequency trajectory, indexed by
// retired-instruction count (matching the x-axis of Figure 7).
type FreqPoint struct {
	Insts int64
	MHz   float64
}

// DomainStats summarizes one clock domain after a run.
type DomainStats struct {
	// EnergyJ is the domain's total (dynamic + leakage) energy.
	EnergyJ float64
	// DynamicJ and LeakageJ break EnergyJ down.
	DynamicJ, LeakageJ float64
	// Cycles executed.
	Cycles uint64
	// MeanFreqMHz is the time-weighted average frequency.
	MeanFreqMHz float64
	// Transitions counts accepted DVFS retargets.
	Transitions int
	// SlewTime is the cumulative time spent in frequency transitions.
	SlewTime clock.Time
	// MeanOccupancy is the average sampled occupancy of the domain's
	// input queue (0 for the front end).
	MeanOccupancy float64
	// MeanActivity is the average per-cycle activity factor.
	MeanActivity float64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Benchmark and Scheme label the run.
	Benchmark string
	Scheme    string

	// Metrics is the headline energy/performance outcome.
	Metrics power.Metrics

	// Domains maps domain name to its summary.
	Domains map[string]DomainStats

	// QueueSamples holds the 250 MHz occupancy series per controlled
	// domain (INT, FP, LS), possibly truncated to the sample limit.
	QueueSamples map[string][]float64

	// FreqTrace holds the frequency trajectory per controlled domain.
	FreqTrace map[string][]FreqPoint

	// IPC is retired instructions per front-end cycle.
	IPC float64
	// BranchMispredictRate is mispredictions per executed branch.
	BranchMispredictRate float64
	// L1DMissRate, L2MissRate and L1IMissRate summarize the hierarchy.
	L1DMissRate, L2MissRate, L1IMissRate float64
	// QueueFullStalls counts dispatch stalls due to full issue queues,
	// per domain.
	QueueFullStalls map[string]uint64
	// ForwardedLoads counts loads satisfied by store-to-load
	// forwarding.
	ForwardedLoads uint64
	// RetiredByClass breaks retired instructions down by operation
	// class (only classes that actually retired appear).
	RetiredByClass map[string]int64
}

// MeanSampledOccupancy returns the average of the recorded occupancy
// series for a domain, or 0 when absent.
func (r *Result) MeanSampledOccupancy(domain string) float64 {
	s := r.QueueSamples[domain]
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}
