package mcd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/power"
	"mcddvfs/internal/trace"
)

// DefaultEpoch is the chip governor's control period when
// ChipConfig.Epoch is zero: 10 µs of simulated time, 2500 ticks of the
// 250 MHz sampling clock — long against the per-domain controllers'
// reaction times (so the governor sees settled power, not transients)
// and short against a full run (so a half-million-instruction workload
// spans dozens of control epochs).
const DefaultEpoch = 10 * clock.Microsecond

// maxEpochTrace bounds ChipResult.EpochTrace; epochs past it still
// regulate, they just stop being recorded.
const maxEpochTrace = 1 << 14

// MaxChipCores bounds ChipConfig.Cores: enough for any plausible
// experiment, small enough that a corrupt spec cannot allocate a
// machine per byte of garbage.
const MaxChipCores = 256

// ChipConfig describes an N-core MCD chip: one full per-core machine
// configuration each (domain set, DVFS range, faults, seeds), plus the
// chip-level power-cap control loop that runs above them.
type ChipConfig struct {
	// Cores holds one machine configuration per core. Each core gets
	// its own clock domains, event engine, meters, and controllers;
	// cores interact only through the governor.
	Cores []Config
	// PowerCapW is the chip-wide power budget the governor apportions
	// (0 = unbudgeted; meaningful only with a capping governor).
	PowerCapW float64
	// GovernorGain is the governor's integral gain in MHz of frequency
	// allowance per watt of budget error, applied once per epoch
	// (0 = the governor's default).
	GovernorGain float64
	// Epoch is the governor's control period in simulated time
	// (0 = DefaultEpoch). With no governor attached cores run free,
	// epoch barriers and all.
	Epoch clock.Time
}

// Validate checks the chip spec, including every per-core machine
// configuration.
func (c ChipConfig) Validate() error {
	if len(c.Cores) == 0 {
		return errors.New("mcd: ChipConfig.Cores is empty")
	}
	if len(c.Cores) > MaxChipCores {
		return fmt.Errorf("mcd: ChipConfig.Cores has %d cores; max %d", len(c.Cores), MaxChipCores)
	}
	for i := range c.Cores {
		if err := c.Cores[i].Validate(); err != nil {
			return fmt.Errorf("mcd: chip core %d: %w", i, err)
		}
	}
	if c.PowerCapW < 0 {
		return fmt.Errorf("mcd: ChipConfig.PowerCapW %v is negative", c.PowerCapW)
	}
	if c.GovernorGain < 0 {
		return fmt.Errorf("mcd: ChipConfig.GovernorGain %v is negative", c.GovernorGain)
	}
	if c.Epoch < 0 {
		return fmt.Errorf("mcd: ChipConfig.Epoch %v is negative", c.Epoch)
	}
	return nil
}

// Governor is a chip-level power-cap policy. Once per control epoch the
// chip hands it each core's mean power over the epoch just ended and
// the cap slice from the previous epoch; the governor rewrites caps in
// place (MHz per core, 0 = uncapped) and the chip actuates them via
// Processor.SetFreqCap. Implementations live in internal/governor and
// register themselves there; mcd only defines the contract so the
// dependency points registry → simulator, mirroring internal/scheme.
//
// Apportion runs between epochs on a single goroutine with every core
// paused, always at the same simulated instants regardless of the
// worker-pool size — a governor that derives its output only from its
// arguments and its own state is deterministic by construction.
type Governor interface {
	Apportion(now clock.Time, powerW []float64, capMHz []float64)
}

// EpochSample is one recorded governor control epoch.
type EpochSample struct {
	// Time is the epoch barrier's simulated time.
	Time clock.Time
	// CorePowerW is each core's mean power over the epoch just ended.
	CorePowerW []float64
	// CapMHz is the per-core frequency cap the governor set at this
	// barrier (0 = uncapped).
	CapMHz []float64
	// CoreInsts is each core's cumulative retired-instruction count.
	CoreInsts []int64
}

// TotalPowerW sums the per-core powers.
func (s EpochSample) TotalPowerW() float64 {
	total := 0.0
	for _, w := range s.CorePowerW {
		total += w
	}
	return total
}

// ChipResult is the outcome of a chip run: every core's full Result in
// core-index order plus the chip-level rollup.
type ChipResult struct {
	// Cores holds one Result per core, indexed like ChipConfig.Cores.
	Cores []*Result
	// Metrics is the chip rollup: energy and instructions summed over
	// cores, execution time the latest core finish.
	Metrics power.Metrics
	// PowerCapW echoes the configured budget (0 = unbudgeted).
	PowerCapW float64 `json:",omitempty"`
	// EpochTrace records the governor's control history (nil without a
	// governor; bounded by maxEpochTrace).
	EpochTrace []EpochSample `json:",omitempty"`
}

// MeanPowerW is the chip's mean power over the run.
func (r *ChipResult) MeanPowerW() float64 {
	if sec := r.Metrics.ExecTime.Seconds(); sec > 0 {
		return r.Metrics.EnergyJ / sec
	}
	return 0
}

// chipDomainNames is the canonical domain iteration order for
// aggregation — Result.Domains is a map, and map order must never
// reach a float accumulation.
var chipDomainNames = [...]string{NameFrontEnd, NameFetch, NameInt, NameFP, NameLS}

// Aggregate flattens the chip run into one Result shaped like a
// single-core run, for renderers that compare Metrics: energy,
// instructions, and per-domain counters summed across cores, execution
// time the latest finish, rates instruction-weighted. Occupancy
// samples and frequency traces come from core 0 (they are per-core
// series; summing them is meaningless).
func (r *ChipResult) Aggregate() *Result {
	if len(r.Cores) == 1 {
		return r.Cores[0]
	}
	out := &Result{
		Benchmark:       "chip",
		Scheme:          r.Cores[0].Scheme,
		Domains:         make(map[string]DomainStats, 5),
		QueueSamples:    r.Cores[0].QueueSamples,
		FreqTrace:       r.Cores[0].FreqTrace,
		QueueFullStalls: r.Cores[0].QueueFullStalls,
		RetiredByClass:  make(map[string]int64),
	}
	same := true
	for _, c := range r.Cores {
		if c.Benchmark != r.Cores[0].Benchmark {
			same = false
			break
		}
	}
	if same {
		out.Benchmark = r.Cores[0].Benchmark
	}
	execSec := r.Metrics.ExecTime.Seconds()
	for _, name := range chipDomainNames {
		var ds DomainStats
		cores := 0
		for _, c := range r.Cores {
			cs, ok := c.Domains[name]
			if !ok {
				continue
			}
			cores++
			ds.EnergyJ += cs.EnergyJ
			ds.DynamicJ += cs.DynamicJ
			ds.LeakageJ += cs.LeakageJ
			ds.Cycles += cs.Cycles
			ds.Transitions += cs.Transitions
			ds.SlewTime += cs.SlewTime
			ds.MeanActivity += cs.MeanActivity
			ds.MeanOccupancy += cs.MeanOccupancy
		}
		if cores == 0 {
			continue
		}
		ds.MeanActivity /= float64(cores)
		ds.MeanOccupancy /= float64(cores)
		if execSec > 0 {
			// Chip-level mean: per-core cycle counts over the chip's
			// wall of execution, summed across cores.
			ds.MeanFreqMHz = float64(ds.Cycles) / execSec / 1e6 / float64(cores)
		}
		out.Domains[name] = ds
	}
	var insts float64
	for _, c := range r.Cores {
		w := float64(c.Metrics.Instructions)
		insts += w
		out.IPC += c.IPC * w
		out.BranchMispredictRate += c.BranchMispredictRate * w
		out.L1DMissRate += c.L1DMissRate * w
		out.L1IMissRate += c.L1IMissRate * w
		out.L2MissRate += c.L2MissRate * w
		out.ForwardedLoads += c.ForwardedLoads
		for cls, n := range c.RetiredByClass {
			out.RetiredByClass[cls] += n
		}
	}
	if insts > 0 {
		out.IPC /= insts
		out.BranchMispredictRate /= insts
		out.L1DMissRate /= insts
		out.L1IMissRate /= insts
		out.L2MissRate /= insts
	}
	out.Metrics = r.Metrics
	return out
}

// Chip is an N-core MCD machine: independent cores coupled only by a
// chip-level power-cap governor. Create it with NewChip, optionally
// attach per-core controllers (Core) and a governor (SetGovernor), then
// call Run exactly once.
type Chip struct {
	cfg     ChipConfig
	cores   []*Processor
	gov     Governor
	workers int
	ran     bool
}

// NewChip builds a chip from cfg, constructing every core.
func NewChip(cfg ChipConfig) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Chip{cfg: cfg, cores: make([]*Processor, len(cfg.Cores))}
	for i := range cfg.Cores {
		p, err := New(cfg.Cores[i])
		if err != nil {
			return nil, fmt.Errorf("mcd: chip core %d: %w", i, err)
		}
		c.cores[i] = p
	}
	return c, nil
}

// Cores reports the core count.
func (c *Chip) Cores() int { return len(c.cores) }

// Core exposes one core's Processor for controller attachment, exactly
// as a single-core caller would use it.
func (c *Chip) Core(i int) *Processor { return c.cores[i] }

// SetGovernor installs the chip-level power-cap policy (nil = none:
// cores run to completion with no epoch barriers at all, so a 1-core
// governorless chip is the single-processor path, bit for bit).
func (c *Chip) SetGovernor(g Governor) {
	if c.ran {
		panic("mcd: SetGovernor after Run")
	}
	c.gov = g
}

// SetWorkers bounds the worker pool that advances cores in parallel
// (0 = GOMAXPROCS). Purely a throughput knob: cores only ever
// synchronize at epoch barriers and the merge order is core index, so
// every pool size produces byte-identical ChipResults.
func (c *Chip) SetWorkers(n int) {
	if c.ran {
		panic("mcd: SetWorkers after Run")
	}
	c.workers = n
}

// Run simulates every core to completion. srcs supplies one
// instruction source per core, indexed like ChipConfig.Cores.
func (c *Chip) Run(srcs []trace.Source) (*ChipResult, error) {
	return c.RunContext(context.Background(), srcs)
}

// RunContext is Run with cancellation. Cores advance concurrently on
// the worker pool; with a governor attached they pause at every epoch
// boundary, the governor re-apportions the power budget from each
// core's epoch energy, and the new caps actuate before any core
// consumes an edge past the barrier. All cross-core reads and all
// reductions happen between barriers in core-index order, so the
// result is independent of worker count and completion order.
func (c *Chip) RunContext(ctx context.Context, srcs []trace.Source) (*ChipResult, error) {
	if c.ran {
		return nil, errors.New("mcd: Chip.Run called twice; create a new Chip per run")
	}
	c.ran = true
	n := len(c.cores)
	if len(srcs) != n {
		return nil, fmt.Errorf("mcd: chip has %d cores but %d sources", n, len(srcs))
	}
	for i, p := range c.cores {
		if err := p.beginEventRun(ctx, srcs[i]); err != nil {
			return nil, fmt.Errorf("mcd: chip core %d: %w", i, err)
		}
	}

	epoch := c.cfg.Epoch
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	deadline := clock.Forever
	if c.gov != nil {
		deadline = epoch
	}
	done := make([]bool, n)
	errs := make([]error, n)
	caps := make([]float64, n)
	powerW := make([]float64, n)
	lastJ := make([]float64, n)
	res := &ChipResult{Cores: make([]*Result, n), PowerCapW: c.cfg.PowerCapW}
	for remaining := n; remaining > 0; {
		c.forEachCore(done, func(i int) {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("mcd: chip core %d panicked: %v", i, r)
					done[i] = true
				}
			}()
			d, err := c.cores[i].advanceEvent(ctx, deadline)
			if err != nil {
				errs[i] = err
			}
			if d || err != nil {
				done[i] = true
			}
		})
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return nil, fmt.Errorf("mcd: chip core %d: %w", i, errs[i])
			}
		}
		remaining = 0
		for i := 0; i < n; i++ {
			if !done[i] {
				remaining++
			}
		}
		if c.gov == nil || remaining == 0 {
			break
		}
		// Epoch barrier: sense, apportion, actuate — single-threaded,
		// core-index order, at simulated time `deadline` exactly.
		for i := 0; i < n; i++ {
			j := c.cores[i].EnergySnapshotJ()
			powerW[i] = (j - lastJ[i]) / epoch.Seconds()
			lastJ[i] = j
		}
		c.gov.Apportion(deadline, powerW, caps)
		for i := 0; i < n; i++ {
			if !done[i] {
				c.cores[i].SetFreqCap(deadline, caps[i])
			}
		}
		if len(res.EpochTrace) < maxEpochTrace {
			s := EpochSample{
				Time:       deadline,
				CorePowerW: append([]float64(nil), powerW...),
				CapMHz:     append([]float64(nil), caps...),
				CoreInsts:  make([]int64, n),
			}
			for i := 0; i < n; i++ {
				s.CoreInsts[i] = c.cores[i].RetiredInsts()
			}
			res.EpochTrace = append(res.EpochTrace, s)
		}
		deadline += epoch
	}

	var end clock.Time
	for i := 0; i < n; i++ {
		r := c.cores[i].collect(c.cores[i].eventNow)
		res.Cores[i] = r
		res.Metrics.EnergyJ += r.Metrics.EnergyJ
		res.Metrics.Instructions += r.Metrics.Instructions
		if r.Metrics.ExecTime > end {
			end = r.Metrics.ExecTime
		}
	}
	res.Metrics.ExecTime = end
	return res, nil
}

// forEachCore runs fn(i) for every core whose skip flag is unset,
// fanning the indices out over the worker pool. Each invocation only
// writes its own core's state and its own slots of the caller's
// per-core slices, and the caller reads nothing until every worker has
// drained, so the pool needs no ordering beyond the final barrier.
func (c *Chip) forEachCore(skip []bool, fn func(i int)) {
	live := make([]int, 0, len(c.cores))
	for i := range c.cores {
		if !skip[i] {
			live = append(live, i)
		}
	}
	w := c.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(live) {
		w = len(live)
	}
	if w <= 1 {
		for _, i := range live {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for _, i := range live {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// NumExecDomains re-exports the per-core execution-domain count for
// governor implementations that reason about per-domain headroom.
const NumExecDomains = isa.NumExecDomains
