package mcd

import "mcddvfs/internal/clock"

// Controller is a per-domain online DVFS decision engine. The simulator
// calls Observe once per sampling-clock tick (250 MHz in Table 1) with
// the occupancy of the domain's input queue and the domain's current
// instantaneous frequency; the controller returns the frequency it
// wants the domain to converge to.
//
// Both the paper's adaptive controller and the fixed-interval baselines
// (attack/decay, PID) implement this interface; fixed-interval schemes
// count sampling ticks internally to delimit their intervals.
type Controller interface {
	// Name identifies the control scheme in reports.
	Name() string
	// Observe processes one occupancy sample. If change is true the
	// domain's target frequency is set to targetMHz (clamped and
	// quantized by the actuation machinery).
	Observe(now clock.Time, occupancy int, currentMHz float64) (targetMHz float64, change bool)
	// Reset returns the controller to its initial state so one
	// instance can be reused across runs.
	Reset()
}

// FixedController pins a domain at a constant frequency; attaching no
// controller is equivalent to FixedController at the initial frequency.
type FixedController struct {
	MHz float64
}

// Name implements Controller.
func (f *FixedController) Name() string { return "fixed" }

// Observe implements Controller.
func (f *FixedController) Observe(clock.Time, int, float64) (float64, bool) {
	return f.MHz, false
}

// Reset implements Controller.
func (f *FixedController) Reset() {}
