package mcd

import (
	"context"
	"errors"
	"fmt"

	"mcddvfs/internal/bpred"
	"mcddvfs/internal/cache"
	"mcddvfs/internal/clock"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/power"
	"mcddvfs/internal/queue"
	"mcddvfs/internal/trace"
)

// fetched is a front-end buffer entry: a fetched instruction plus its
// branch prediction.
type fetched struct {
	inst       isa.Inst
	predTaken  bool
	predTarget uint64
	mispredict bool
}

// Processor is one MCD machine instance. Create it with New, attach
// controllers, then call Run exactly once. It is not safe for
// concurrent use: determinism comes from single-threaded simulation.
// Engine domain indices, fixed by registration order in New. Exec
// domain d lives at engExecBase + int(d).
const (
	engFE = iota
	engExecBase
	_
	_
	engSampling
	engFetch
	numEngDomains
)

type Processor struct {
	cfg Config

	eng      *clock.Engine
	fe       *clock.Domain
	exec     [isa.NumExecDomains]*clock.Domain
	sampling *clock.Domain

	// cycleStepped selects the legacy per-cycle stepping loop; the
	// default is the event-driven core. eventMode is its runtime
	// complement, set once when Run starts.
	cycleStepped bool
	eventMode    bool
	// idleCharge holds, per engine domain, the precomputed per-edge
	// energy increments applied while that domain is descheduled. It is
	// refreshed on every Sleep, so it always reflects the sleep-time
	// voltage (wakes on frequency changes keep it from going stale).
	idleCharge [numEngDomains]power.IdleCharge
	// check counts down clock edges to the next context poll.
	check int

	rob *rob
	win *window

	// feQueue sits between fetch and dispatch. In the 4-domain machine
	// both stages share the FrontEnd clock and the queue has no
	// synchronization window; in the split (5-domain, Iyer-Marculescu
	// style) machine the fetch stage runs on its own clock and the
	// queue synchronizes across the extra boundary.
	feQueue  *queue.Queue[fetched]
	fetchDom *clock.Domain // nil unless SplitFrontEnd
	queues   [isa.NumExecDomains]*queue.Queue[*uop]
	lsqCount int
	// storeCounts tracks in-flight stores per 8-byte-aligned address,
	// backing store-to-load forwarding.
	storeCounts *storeCounter
	forwarded   uint64
	// inflight counts dispatched-but-uncommitted uops per domain,
	// backing the deep-sleep idleness test.
	inflight [isa.NumExecDomains]int

	aluPool  [isa.NumExecDomains]*unitPool // simple units per domain
	longPool [isa.NumExecDomains]*unitPool // mult/div(/sqrt) units

	pred *bpred.Unit
	mem  *cache.Hierarchy

	// Per-domain energy meters, resolved once at construction so the
	// per-cycle paths never hash a domain name. fetchMeter is non-nil
	// only on split-front-end machines.
	feMeter    *power.Meter
	fetchMeter *power.Meter
	execMeters [isa.NumExecDomains]*power.Meter

	// uopFree recycles uop structs: the ROB bounds live uops, so after
	// warm-up dispatch never allocates. deferredBranch is a committed
	// blocking branch whose recycle waits until fetch has observed its
	// resolution (fetch still holds the pointer).
	uopFree        []*uop
	deferredBranch *uop
	// issueScratch is the reusable issue-index buffer for execCycle.
	issueScratch []int

	// Single-entry voltage memos, one per metered domain: outside
	// transitions the frequency is constant for long stretches, so the
	// clamp+interpolate in Range.VoltageFor is paid once per frequency
	// value instead of once per cycle. Slot NumExecDomains is the
	// front end's.
	voltFreq [isa.NumExecDomains + 1]float64
	voltV    [isa.NumExecDomains + 1]float64

	// syncWin caches cfg.SyncWindow() for the issue inner loop.
	syncWin clock.Time

	controllers [isa.NumExecDomains]Controller
	samplers    [isa.NumExecDomains]*queue.Sampler
	freqTrace   [isa.NumExecDomains][]FreqPoint
	lastTraceF  [isa.NumExecDomains]float64

	// Fault-injection hooks on the control loop (nil = clean). Sensors
	// corrupt what controllers observe; actuators corrupt what reaches
	// the clock domains. Samplers always record ground truth.
	sensors   [isa.NumExecDomains]*faults.Sensor
	actuators [isa.NumExecDomains]*faults.Actuator

	// Dispatch-domain control (5-domain machines with ControlFrontEnd).
	feController Controller
	feSampler    *queue.Sampler
	feSensor     *faults.Sensor
	feActuator   *faults.Actuator

	src trace.Source

	nextSeq      uint64
	physIntFree  int
	physFPFree   int
	retired      int64
	retiredByCls [isa.NumClasses]int64
	branches     uint64
	mispredicts  uint64
	traceDone    bool
	fetchBlocked clock.Time // no fetch before this time
	// blockingBranch is a mispredicted branch whose resolution gates
	// fetch; pendingMispredict covers the window between fetching such
	// a branch and dispatching it.
	blockingBranch    *uop
	pendingMispredict bool

	lastCommit clock.Time
	ran        bool

	// eventNow is the time of the last consumed clock edge — the resume
	// point a chip's epoch barrier pauses the event loop at, and the end
	// time collect closes the meters at.
	eventNow clock.Time
	// execCapMHz is the chip governor's frequency ceiling on the
	// execution domains (0 = uncapped). uncappedMHz remembers each
	// domain controller's last quantized target so lifting or lowering
	// the cap can re-derive the effective frequency without consulting
	// the controller.
	execCapMHz  float64
	uncappedMHz [isa.NumExecDomains]float64
}

// New builds a processor from cfg.
func New(cfg Config) (*Processor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Processor{
		cfg:         cfg,
		rob:         newROB(cfg.ROBSize),
		win:         newWindow(cfg.ROBSize + 1024),
		pred:        bpred.DefaultUnit(),
		mem:         cache.NewHierarchy(cfg.Cache),
		physIntFree: cfg.PhysInt,
		physFPFree:  cfg.PhysFP,
		nextSeq:     1, // seq 0 is the "operand ready" sentinel
		storeCounts: newStoreCounter(cfg.LSQSize),
	}
	// At most ROBSize uops are in flight, plus one committed blocking
	// branch awaiting its fetch-side release; one contiguous slab seeds
	// the free list so steady-state dispatch is allocation-free.
	slab := make([]uop, cfg.ROBSize+1)
	p.uopFree = make([]*uop, 0, cfg.ROBSize+1)
	for i := range slab {
		p.uopFree = append(p.uopFree, &slab[i])
	}
	p.issueScratch = make([]int, 0, cfg.IssueWidth)
	for d := 0; d < isa.NumExecDomains; d++ {
		p.uncappedMHz[d] = cfg.Range.MaxMHz
	}

	if inj := faults.NewInjector(cfg.Faults, cfg.SamplingPeriod()); inj != nil {
		for d := 0; d < isa.NumExecDomains; d++ {
			p.sensors[d] = inj.Sensor(d)
			p.actuators[d] = inj.Actuator(d)
		}
		p.feSensor = inj.Sensor(isa.NumExecDomains)
		p.feActuator = inj.Actuator(isa.NumExecDomains)
	}
	slew := cfg.Transitions.SlewPerMHz(cfg.Range)
	feCfg := clock.DomainConfig{
		Name: NameFrontEnd, FreqMHz: cfg.Range.MaxMHz,
		JitterPS: cfg.JitterPS, Seed: cfg.Seed + 1,
	}
	if cfg.ControlFrontEnd {
		feCfg.MinMHz = cfg.Range.MinMHz
		feCfg.MaxMHz = cfg.Range.MaxMHz
		feCfg.SlewPerMHz = slew
		feCfg.Style = cfg.Transitions.Style
	}
	p.fe = clock.NewDomain(feCfg)
	names := [isa.NumExecDomains]string{isa.DomainInt: NameInt, isa.DomainFP: NameFP, isa.DomainLS: NameLS}
	for d := 0; d < isa.NumExecDomains; d++ {
		p.exec[d] = clock.NewDomain(clock.DomainConfig{
			Name: names[d], FreqMHz: cfg.Range.MaxMHz,
			MinMHz: cfg.Range.MinMHz, MaxMHz: cfg.Range.MaxMHz,
			SlewPerMHz: slew, JitterPS: cfg.JitterPS,
			Style: cfg.Transitions.Style, Seed: cfg.Seed + 2 + int64(d),
		})
	}
	p.sampling = clock.NewDomain(clock.DomainConfig{
		Name: "sampling", FreqMHz: cfg.SamplingMHz, Seed: cfg.Seed + 9,
	})
	p.eng = clock.NewEngine(p.fe, p.exec[0], p.exec[1], p.exec[2], p.sampling)

	syncWin := cfg.SyncWindow()
	p.syncWin = syncWin
	feWin := clock.Time(0)
	if cfg.SplitFrontEnd {
		feWin = syncWin
		p.fetchDom = clock.NewDomain(clock.DomainConfig{
			Name: NameFetch, FreqMHz: cfg.Range.MaxMHz,
			JitterPS: cfg.JitterPS, Seed: cfg.Seed + 7,
		})
		p.eng.Add(p.fetchDom)
	}
	p.feQueue = queue.NewWithPolicy[fetched]("FetchQ", cfg.FetchBuf, feWin, cfg.SyncPolicy)
	p.queues[isa.DomainInt] = queue.NewWithPolicy[*uop](NameInt, cfg.IntQSize, syncWin, cfg.SyncPolicy)
	p.queues[isa.DomainFP] = queue.NewWithPolicy[*uop](NameFP, cfg.FPQSize, syncWin, cfg.SyncPolicy)
	p.queues[isa.DomainLS] = queue.NewWithPolicy[*uop](NameLS, cfg.LSQueue, syncWin, cfg.SyncPolicy)

	p.aluPool[isa.DomainInt] = newUnitPool(cfg.IntALUs)
	p.longPool[isa.DomainInt] = newUnitPool(cfg.IntMultDiv)
	p.aluPool[isa.DomainFP] = newUnitPool(cfg.FPALUs)
	p.longPool[isa.DomainFP] = newUnitPool(cfg.FPMultDiv)
	p.aluPool[isa.DomainLS] = newUnitPool(cfg.MemPorts)
	p.longPool[isa.DomainLS] = newUnitPool(1) // unused; keeps indexing uniform

	feModel := cfg.Power[NameFrontEnd]
	if cfg.SplitFrontEnd {
		// Split the front-end energy budget across the two new
		// domains: fetch (I-cache + predictor) ~45%, dispatch
		// (rename/ROB/commit) ~55%.
		fetchModel := feModel
		fetchModel.Name = NameFetch
		fetchModel.SwitchedCapF *= 0.45
		fetchModel.LeakagePerV *= 0.45
		p.fetchMeter = power.NewMeter(fetchModel)
		feModel.SwitchedCapF *= 0.55
		feModel.LeakagePerV *= 0.55
	}
	p.feMeter = power.NewMeter(feModel)
	p.execMeters[isa.DomainInt] = power.NewMeter(cfg.Power[NameInt])
	p.execMeters[isa.DomainFP] = power.NewMeter(cfg.Power[NameFP])
	p.execMeters[isa.DomainLS] = power.NewMeter(cfg.Power[NameLS])
	for d := 0; d < isa.NumExecDomains; d++ {
		p.samplers[d] = queue.NewSampler(cfg.SampleLimit)
	}
	p.feSampler = queue.NewSampler(cfg.SampleLimit)
	return p, nil
}

// AttachFrontEnd installs a DVFS controller on the dispatch domain of a
// split, ControlFrontEnd machine; the controller observes the fetch
// queue's occupancy.
func (p *Processor) AttachFrontEnd(c Controller) {
	if !p.cfg.ControlFrontEnd {
		panic("mcd: AttachFrontEnd requires Config.ControlFrontEnd")
	}
	p.feController = c
}

// Attach installs a DVFS controller on an execution domain. Passing nil
// leaves the domain pinned at its initial (maximum) frequency.
func (p *Processor) Attach(d isa.ExecDomain, c Controller) {
	p.controllers[d] = c
}

// Domain exposes an execution domain's clock (for tests and tools).
func (p *Processor) Domain(d isa.ExecDomain) *clock.Domain { return p.exec[d] }

// EngineStats reports, per clock domain, how the event engine spent the
// run: slow edges (full cycle work), skipped edges (descheduled,
// idle-charged), sleeps, and wake causes. Deliberately not part of
// Result — the default artifacts must stay byte-identical across cores.
func (p *Processor) EngineStats() map[string]clock.DomainEngineStats {
	out := make(map[string]clock.DomainEngineStats, p.eng.Len())
	for i := 0; i < p.eng.Len(); i++ {
		out[p.eng.Domain(i).Name()] = p.eng.Stats(i)
	}
	return out
}

// Run simulates the instruction source to completion and returns the
// result. Any trace.Source works: a synthetic Generator or a replayed
// trace.Reader. A Processor can run only once.
func (p *Processor) Run(src trace.Source) (*Result, error) {
	return p.RunContext(context.Background(), src)
}

// ctxCheckInterval is how many clock edges pass between context
// checks: frequent enough that cancellation lands within microseconds
// of wall time, rare enough that the per-edge cost is one decrement.
const ctxCheckInterval = 1 << 16

// commitTimeout is the deadlock guard: the machine must commit
// something at least every 2 simulated milliseconds (worst-case
// memory-bound code commits thousands of times per ms).
const commitTimeout = 2 * clock.Millisecond

// SetCycleStepped selects the legacy per-cycle stepping loop instead of
// the event-driven core. The two cores produce bit-identical Results;
// the cycle-stepped loop is retained as the oracle for differential
// testing (and as a fallback while reading the event core's wake
// conditions). Must be called before Run.
func (p *Processor) SetCycleStepped(on bool) {
	if p.ran {
		panic("mcd: SetCycleStepped after Run")
	}
	p.cycleStepped = on
}

// RunContext is Run with cancellation: the simulation aborts with
// ctx.Err() (context.Canceled or context.DeadlineExceeded) shortly
// after the context ends. A cancelled Processor is spent, like any
// other that has run.
func (p *Processor) RunContext(ctx context.Context, src trace.Source) (*Result, error) {
	if !p.cycleStepped {
		if err := p.beginEventRun(ctx, src); err != nil {
			return nil, err
		}
		if _, err := p.advanceEvent(ctx, clock.Forever); err != nil {
			return nil, err
		}
		return p.collect(p.eventNow), nil
	}
	if p.ran {
		return nil, errors.New("mcd: Processor.Run called twice; create a new Processor per run")
	}
	p.ran = true
	p.src = src
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var now clock.Time
	check := ctxCheckInterval
	for {
		t, ok := p.step()
		if !ok {
			return nil, errors.New("mcd: all clocks stopped")
		}
		now = t
		if p.traceDone && p.rob.empty() && p.feQueue.Empty() {
			break
		}
		if now-p.lastCommit > commitTimeout {
			return nil, fmt.Errorf("mcd: no commit progress since %v (now %v): likely scheduling deadlock", p.lastCommit, now)
		}
		if check--; check <= 0 {
			check = ctxCheckInterval
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return p.collect(now), nil
}

// beginEventRun claims the processor for an event-driven run and binds
// its instruction source — the setup half of RunContext, split out so a
// Chip can interleave advanceEvent calls across cores.
func (p *Processor) beginEventRun(ctx context.Context, src trace.Source) error {
	if p.ran {
		return errors.New("mcd: Processor.Run called twice; create a new Processor per run")
	}
	if p.cycleStepped {
		return errors.New("mcd: chip cores require the event engine (SetCycleStepped is single-core only)")
	}
	p.ran = true
	p.src = src
	p.eventMode = true
	p.check = ctxCheckInterval
	return ctx.Err()
}

// advanceEvent is the event-driven main loop. Every clock edge of every
// domain is still consumed in exact arbitration order (edge times and
// jitter draws are part of the bit-exact contract), but a descheduled
// domain's edge skips its cycle work entirely: the engine advances the
// clock and the precomputed idle charge replays the meter's float
// stream. A domain runs its full cycle work again at the first edge at
// or after its earliest wake event.
//
// The loop runs until the workload completes (done = true) or the next
// pending edge lands at or after deadline, whichever is first. Pausing
// consumes nothing — Next is a peek — so a later call resumes the
// bit-exact edge stream where this one stopped; clock.Forever never
// pauses. The last consumed edge time persists in p.eventNow for
// collect.
func (p *Processor) advanceEvent(ctx context.Context, deadline clock.Time) (bool, error) {
	eng := p.eng
	for {
		idx, t := eng.Next()
		if idx < 0 {
			return false, errors.New("mcd: all clocks stopped")
		}
		if t >= deadline {
			return false, nil
		}
		if eng.Asleep(idx) {
			if t < eng.WakeAt(idx) {
				h := eng.IdleHorizon()
				if h > deadline {
					// The drain must not consume sleeping domains' edges
					// past the pause point: a governor actuation at the
					// deadline changes the voltage their idle charges
					// assume.
					h = deadline
				}
				if t < h {
					// No slow edge can run before h: batch-drain every
					// sleeping domain's edges below it without
					// re-arbitrating per edge.
					p.drainIdle(h)
				} else {
					eng.IdleAdvance(idx)
					p.idleCharge[idx].Tick(t)
					p.check--
				}
				if p.check <= 0 {
					p.check = ctxCheckInterval
					if err := ctx.Err(); err != nil {
						return false, err
					}
				}
				continue
			}
			eng.WakeDue(idx)
		}
		eng.Advance(idx)
		p.eventNow = t
		p.runEdge(idx, t)
		if p.traceDone && p.rob.empty() && p.feQueue.Empty() {
			return true, nil
		}
		if t-p.lastCommit > commitTimeout {
			return false, fmt.Errorf("mcd: no commit progress since %v (now %v): likely scheduling deadlock", p.lastCommit, t)
		}
		if p.check--; p.check <= 0 {
			p.check = ctxCheckInterval
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
	}
}

// drainIdle consumes every sleeping domain's clock edges strictly
// before the horizon h in one tight loop per domain: clock advance
// (jitter stream included) plus the precomputed idle energy charge,
// with none of the per-edge arbitration of the main loop. Cross-domain
// ordering is free here — a descheduled edge touches only its own
// domain's clock, RNG, and meter — so per-domain batching accumulates
// the bit-identical float streams the edge-by-edge path would. The
// drain is bounded by the context-check budget so cancellation stays
// responsive even when the horizon is far away.
func (p *Processor) drainIdle(h clock.Time) {
	eng := p.eng
	budget := p.check
	n := 0
	for di := 0; di < eng.Len(); di++ {
		if !eng.Asleep(di) {
			continue
		}
		d := eng.Domain(di)
		charge := p.idleCharge[di]
		for n < budget {
			t := d.NextEdge()
			if t >= h {
				break
			}
			eng.IdleAdvance(di)
			charge.Tick(t)
			n++
		}
	}
	p.check -= n
}

// step advances the engine by one clock edge and runs that domain's
// cycle work, returning the edge time: the legacy cycle-stepped loop.
// It reports false when every clock has stopped.
func (p *Processor) step() (clock.Time, bool) {
	idx, _ := p.eng.Next()
	if idx < 0 {
		return 0, false
	}
	now := p.eng.Advance(idx)
	p.runEdge(idx, now)
	return now, true
}

// runEdge dispatches one consumed clock edge to its domain's cycle
// work.
func (p *Processor) runEdge(idx int, now clock.Time) {
	switch idx {
	case engFE:
		p.frontEndCycle(now)
	case engExecBase + int(isa.DomainInt):
		p.execCycle(now, isa.DomainInt)
	case engExecBase + int(isa.DomainFP):
		p.execCycle(now, isa.DomainFP)
	case engExecBase + int(isa.DomainLS):
		p.execCycle(now, isa.DomainLS)
	case engSampling:
		p.sampleCycle(now)
	case engFetch:
		p.fetchCycle(now)
	}
}

// voltageFor returns Range.VoltageFor(freq) through the single-entry
// memo of the given slot (an isa.ExecDomain, or isa.NumExecDomains for
// the front end). The mapping is unchanged; only the repeated
// clamp+interpolate for an unchanged frequency is skipped.
func (p *Processor) voltageFor(slot int, freq float64) float64 {
	if freq != p.voltFreq[slot] {
		p.voltFreq[slot] = freq
		p.voltV[slot] = p.cfg.Range.VoltageFor(freq)
	}
	return p.voltV[slot]
}

// feVoltage is the dispatch domain's supply: fixed at V_max unless the
// domain is DVFS-controlled, in which case it tracks its frequency.
func (p *Processor) feVoltage(now clock.Time) float64 {
	if p.cfg.ControlFrontEnd {
		return p.voltageFor(int(isa.NumExecDomains), p.fe.FreqMHz(now))
	}
	return p.cfg.Range.MaxV
}

// frontEndCycle performs commit, (in the unified machine) fetch, and
// dispatch for one front-end clock edge.
func (p *Processor) frontEndCycle(now clock.Time) {
	committed := p.commit(now)
	fetchedN := 0
	width := float64(p.cfg.RetireWidth + p.cfg.DecodeWidth)
	if p.fetchDom == nil {
		fetchedN = p.fetch(now)
		width += float64(p.cfg.FetchWidth)
	}
	dispatched := p.dispatch(now)

	act := float64(committed+fetchedN+dispatched) / width
	m := p.feMeter
	v := p.feVoltage(now)
	m.Cycle(v, act)
	m.Leak(now, v)
	if p.eventMode && committed+fetchedN+dispatched == 0 {
		p.maybeSleepFE(now, v)
	}
}

// maybeSleepFE deschedules the front-end domain after a provably idle
// cycle. The sleep bound is the earliest time any of its three stages
// can do work again: commit wakes when the ROB head's result lands (or
// on any issue, if the head has not issued yet), fetch wakes per
// fetchSleepBound, dispatch per dispatchSleepBound. Events internal to
// the front end itself (a commit freeing ROB/LSQ/register resources, a
// dispatch draining the fetch buffer) need no wake: they can only
// happen on front-end edges the domain would be running anyway.
func (p *Processor) maybeSleepFE(now clock.Time, v float64) {
	if p.cfg.ControlFrontEnd && p.fe.InTransition(now) {
		return // supply voltage is moving edge-to-edge
	}
	bound := clock.Forever
	issueWake := false
	if head := p.rob.peek(); head != nil {
		if head.state == stateIssued {
			bound = head.readyAt
		} else {
			issueWake = true
		}
	}
	if p.fetchDom == nil {
		fb, iw, ok := p.fetchSleepBound(now)
		if !ok {
			return
		}
		if fb < bound {
			bound = fb
		}
		issueWake = issueWake || iw
	}
	db, ok := p.dispatchSleepBound(now)
	if !ok {
		return
	}
	if db < bound {
		bound = db
	}
	if bound <= now {
		return
	}
	p.idleCharge[engFE] = p.feMeter.IdleCharge(v)
	p.eng.Sleep(engFE, bound, issueWake)
}

// fetchSleepBound returns the earliest time the fetch stage can make
// progress again, whether an issue broadcast should also wake it, and
// whether sleeping is safe at all. Forever means only an explicit Wake
// (fetch-buffer drain, mispredict-state change) can make fetch runnable.
func (p *Processor) fetchSleepBound(now clock.Time) (clock.Time, bool, bool) {
	if b := p.blockingBranch; b != nil {
		if b.state == stateIssued {
			return b.readyAt, false, true // resolution time is known
		}
		return clock.Forever, true, true // wake when it issues
	}
	if p.pendingMispredict || p.traceDone {
		return clock.Forever, false, true
	}
	if now < p.fetchBlocked {
		return p.fetchBlocked, false, true
	}
	if p.feQueue.Full() {
		return clock.Forever, false, true
	}
	// Fetch could make progress right now; running the cycle is the only
	// safe option.
	return 0, false, false
}

// dispatchSleepBound returns the earliest time the dispatch stage can
// make progress again and whether sleeping is safe. It replicates
// dispatch's hazard checks on the front entry without its side effects;
// hazards cleared by commit (ROB, LSQ, registers) bound to Forever
// because commit runs on this same domain.
func (p *Processor) dispatchSleepBound(now clock.Time) (clock.Time, bool) {
	if p.feQueue.Empty() {
		return clock.Forever, true
	}
	if vis := p.feQueue.VisibleFrom(0); vis > now {
		return vis, true
	}
	f, _ := p.feQueue.FrontPtr(now)
	in := f.inst
	if p.rob.full() {
		return clock.Forever, true
	}
	dom := in.Class.Domain()
	if dom == isa.DomainLS && p.lsqCount >= p.cfg.LSQSize {
		return clock.Forever, true
	}
	if (&in).HasOutput() {
		if (&in).IsFP() {
			if p.physFPFree == 0 {
				return clock.Forever, true
			}
		} else if p.physIntFree == 0 {
			return clock.Forever, true
		}
	}
	// The front entry is blocked (at most) by a full target queue, whose
	// per-cycle stall accounting requires running the cycle. Don't sleep.
	return 0, false
}

// fetchCycle is the split machine's dedicated fetch-domain cycle.
func (p *Processor) fetchCycle(now clock.Time) {
	n := p.fetch(now)
	m := p.fetchMeter
	// The fetch domain always runs at f_max / V_max.
	m.Cycle(p.cfg.Range.MaxV, float64(n)/float64(p.cfg.FetchWidth))
	m.Leak(now, p.cfg.Range.MaxV)
	if !p.eventMode {
		return
	}
	if n > 0 {
		// New fetch-buffer entries: the dispatch domain may be sleeping
		// on an empty buffer.
		p.eng.Wake(engFE, clock.EvQueuePush)
		return
	}
	if fb, iw, ok := p.fetchSleepBound(now); ok && fb > now {
		p.idleCharge[engFetch] = m.IdleCharge(p.cfg.Range.MaxV)
		p.eng.Sleep(engFetch, fb, iw)
	}
}

// commit retires completed uops in order, up to the retire width.
func (p *Processor) commit(now clock.Time) int {
	n := 0
	for n < p.cfg.RetireWidth {
		u := p.rob.peek()
		if u == nil || !u.doneBy(now) {
			break
		}
		p.rob.pop()
		p.win.remove(u)
		if u.hasReg {
			if u.inst.IsFP() {
				p.physFPFree++
			} else {
				p.physIntFree++
			}
		}
		p.inflight[u.domain]--
		if p.eventMode && p.cfg.DeepSleep && p.inflight[u.domain] == 0 && p.queues[u.domain].Empty() {
			// The domain just became deep-sleep eligible: its energy
			// regime changes from idle-gated to deep-gated, so a sleeping
			// domain must re-run one cycle to switch charge rates.
			p.eng.Wake(engExecBase+int(u.domain), clock.EvQueueDrain)
		}
		if u.domain == isa.DomainLS {
			p.lsqCount--
			if u.inst.Class == isa.Store && p.cfg.StoreForwarding {
				p.storeCounts.decr(u.inst.Addr &^ 7)
			}
		}
		p.retired++
		p.retiredByCls[u.inst.Class]++
		p.lastCommit = now
		if u == p.blockingBranch {
			// fetch still holds this pointer to observe the branch's
			// resolution; recycling waits until it lets go.
			p.deferredBranch = u
		} else {
			p.uopFree = append(p.uopFree, u)
		}
		n++
	}
	return n
}

// doneBy reports whether the uop's result is architecturally complete
// at time now.
func (u *uop) doneBy(now clock.Time) bool {
	return u.state == stateIssued && u.readyAt <= now
}

// fetch pulls instructions from the trace into the fetch buffer,
// modeling I-cache misses and mispredicted-branch fetch stalls.
func (p *Processor) fetch(now clock.Time) int {
	// A resolved mispredicted branch unblocks fetch after the redirect
	// penalty.
	if p.blockingBranch != nil {
		if !p.blockingBranch.doneBy(now) {
			return 0
		}
		fePeriod := clock.PeriodForMHz(p.fetchClock().FreqMHz(now))
		p.fetchBlocked = now + clock.Time(p.cfg.MispredictRedirect)*fePeriod
		if p.deferredBranch == p.blockingBranch {
			p.uopFree = append(p.uopFree, p.deferredBranch)
			p.deferredBranch = nil
		}
		p.blockingBranch = nil
		return 0
	}
	if p.pendingMispredict || p.traceDone || now < p.fetchBlocked {
		return 0
	}
	n := 0
	for n < p.cfg.FetchWidth && !p.feQueue.Full() {
		in, ok := p.src.Next()
		if !ok {
			p.traceDone = true
			break
		}
		f := fetched{inst: in}
		// I-cache access; a miss blocks further fetch until the fill.
		level := p.mem.Inst(in.PC)
		if level != cache.LevelL1 {
			cycles, fixedNS := p.mem.InstLatency(level)
			fePeriod := clock.PeriodForMHz(p.fetchClock().FreqMHz(now))
			p.fetchBlocked = now + clock.Time(cycles)*fePeriod +
				clock.Time(fixedNS*float64(clock.Nanosecond))
		}
		if in.Class == isa.Branch {
			p.branches++
			f.predTaken, f.predTarget = p.pred.Predict(in.PC)
			f.mispredict = p.pred.Resolve(in.PC, f.predTaken, f.predTarget, in.Taken, in.Target)
			if f.mispredict {
				p.mispredicts++
				// Stop fetching: the machine is on the wrong path
				// until this branch resolves in the integer core.
				p.pendingMispredict = true
				p.feQueue.Push(now, f)
				n++
				break
			}
		}
		p.feQueue.Push(now, f)
		n++
		if now < p.fetchBlocked { // the miss entry itself was fetched
			break
		}
	}
	return n
}

// dispatch renames and inserts fetched instructions into the ROB and
// the per-domain issue queues, in order, stopping at the first
// structural hazard.
func (p *Processor) dispatch(now clock.Time) int {
	n := 0
	for n < p.cfg.DecodeWidth {
		f, ok := p.feQueue.FrontPtr(now)
		if !ok {
			break
		}
		in := f.inst
		dom := in.Class.Domain()
		if p.rob.full() {
			break
		}
		if dom == isa.DomainLS && p.lsqCount >= p.cfg.LSQSize {
			break
		}
		needsReg := (&in).HasOutput()
		if needsReg {
			if (&in).IsFP() {
				if p.physFPFree == 0 {
					break
				}
			} else if p.physIntFree == 0 {
				break
			}
		}
		if p.queues[dom].Full() {
			// Count the stall against the target queue and stop: this
			// back-pressure is the signal DVFS controllers react to.
			p.queues[dom].Push(now, nil) // records the full-stall
			break
		}

		u := p.allocUop()
		// Reset every field explicitly: a struct-literal assignment of
		// the ~100-byte uop costs a duffcopy (plus zeroing a temporary)
		// per dispatched instruction.
		u.seq = p.nextSeq
		u.inst = in
		u.domain = dom
		u.state = stateDispatched
		u.readyAt = 0
		u.stallUntil = 0
		u.predTaken = f.predTaken
		u.predTarget = f.predTarget
		u.mispredict = f.mispredict
		u.hasReg = false
		p.nextSeq++
		u.src1 = p.producerSeq(in.Dep1, u.seq)
		u.src2 = p.producerSeq(in.Dep2, u.seq)
		if needsReg {
			u.hasReg = true
			if (&in).IsFP() {
				p.physFPFree--
			} else {
				p.physIntFree--
			}
		}
		p.inflight[dom]++
		if dom == isa.DomainLS {
			p.lsqCount++
			if in.Class == isa.Store && p.cfg.StoreForwarding {
				p.storeCounts.incr(in.Addr &^ 7)
			}
		}
		p.win.insert(u)
		p.rob.push(u)
		p.queues[dom].Push(now, u)
		if p.eventMode {
			p.eng.Wake(engExecBase+int(dom), clock.EvQueuePush)
		}
		if u.mispredict {
			p.blockingBranch = u
			p.pendingMispredict = false
			if p.eventMode && p.fetchDom != nil {
				// The fetch domain may be sleeping unboundedly on
				// pendingMispredict; the gate is now the branch itself,
				// which resolves at a knowable time.
				p.eng.Wake(engFetch, clock.EvQueueDrain)
			}
		}
		if p.eventMode && p.fetchDom != nil && p.feQueue.Full() {
			// Removing the front entry reopens a full fetch buffer.
			p.eng.Wake(engFetch, clock.EvQueueDrain)
		}
		p.feQueue.RemoveAt(0)
		n++
	}
	return n
}

// allocUop takes a recycled uop from the free list, falling back to the
// heap only if the list is unexpectedly empty. The caller overwrites
// every field.
func (p *Processor) allocUop() *uop {
	if n := len(p.uopFree); n > 0 {
		u := p.uopFree[n-1]
		p.uopFree = p.uopFree[:n-1]
		return u
	}
	return new(uop)
}

// fetchClock returns the clock that paces instruction fetch.
func (p *Processor) fetchClock() *clock.Domain {
	if p.fetchDom != nil {
		return p.fetchDom
	}
	return p.fe
}

// producerSeq converts a dependency distance into a producer sequence
// number. Distance counts backwards over *all* older instructions; if
// the producer is no longer in flight the operand is ready (seq 0).
func (p *Processor) producerSeq(dist uint32, consumer uint64) uint64 {
	if dist == 0 || uint64(dist) >= consumer {
		return 0
	}
	producer := consumer - uint64(dist)
	if u := p.win.lookup(producer); u != nil && u.inst.HasOutput() {
		return producer
	}
	return 0
}

// srcReady reports whether the operand produced by seq is available to
// a consumer in domain dom at time now, charging the synchronization
// window for cross-domain result forwarding.
func (p *Processor) srcReady(seq uint64, dom isa.ExecDomain, now clock.Time) bool {
	if seq == 0 {
		return true
	}
	u := p.win.lookup(seq)
	if u == nil {
		return true // committed
	}
	if u.state != stateIssued {
		return false
	}
	ready := u.readyAt
	if u.domain != dom {
		ready += p.syncWin
	}
	return ready <= now
}

// srcReadyAt is srcReady plus a lower bound: when the operand is not
// ready but its producer has issued, the returned time is the earliest
// moment it can become ready (0 when unknowable, i.e. the producer has
// not issued yet). The bound is the producer's readyAt, NOT readyAt
// plus the synchronization window: a cross-domain operand also becomes
// ready the moment its producer commits (the value then comes from the
// register file, not the forwarding network), and commit can land
// anywhere in [readyAt, readyAt+syncWin). readyAt is the latest time
// provably below both paths.
func (p *Processor) srcReadyAt(seq uint64, dom isa.ExecDomain, now clock.Time) (bool, clock.Time) {
	u := p.win.lookup(seq)
	if u == nil {
		return true, 0 // committed
	}
	if u.state != stateIssued {
		return false, 0
	}
	ready := u.readyAt
	if u.domain != dom {
		ready += p.syncWin
	}
	return ready <= now, u.readyAt
}

// execCycle issues ready, visible uops from a domain's queue into its
// functional units for one domain clock edge.
func (p *Processor) execCycle(now clock.Time, dom isa.ExecDomain) {
	d := p.exec[dom]
	freq := d.FreqMHz(now)
	v := p.voltageFor(int(dom), freq)
	meter := p.execMeters[dom]

	units := p.aluPool[dom].size()
	if dom != isa.DomainLS { // the LS long pool is a structural dummy
		units += p.longPool[dom].size()
	}
	if d.Idle(now) { // Transmeta-style transition: domain stalls
		meter.Cycle(v, 0)
		meter.Leak(now, v)
		return
	}
	if p.cfg.DeepSleep && p.queues[dom].Empty() && p.inflight[dom] == 0 {
		// Domain sleep: nothing queued, nothing in flight — gate the
		// whole clock tree.
		factor := p.cfg.DeepSleepFactor
		if factor <= 0 {
			factor = 0.02
		}
		meter.CycleDeepGated(v, factor)
		meter.Leak(now, v)
		if p.eventMode && !d.InTransition(now) {
			// Descheduled until a dispatch pushes work (or a frequency
			// command arrives): every skipped edge charges the deep-gated
			// rate.
			p.idleCharge[engExecBase+int(dom)] = meter.DeepIdleCharge(v, factor)
			p.eng.Sleep(engExecBase+int(dom), clock.Forever, false)
		}
		return
	}

	period := d.PeriodForFreq(freq)
	width := p.cfg.IssueWidth
	if width > units {
		width = units
	}
	issued := 0
	// Sleep-bound tracking (event mode): bound is the earliest time any
	// scanned entry can become issuable; issueWake marks an entry gated
	// on a producer that has not issued yet (unknowable bound — wake on
	// issue broadcasts); noSleep marks a state the scan cannot bound
	// (a failed tryIssue retries — and re-touches the cache — every
	// cycle, and a conservatively-bounded operand inside its
	// cross-domain synchronization window re-polls every cycle).
	bound := clock.Forever
	issueWake := false
	noSleep := false
	remove := p.issueScratch[:0]
	q := p.queues[dom]
	for i, qn := 0, q.Len(); i < qn && issued < width; i++ {
		u, visible := q.EntryAt(i, now)
		if !visible {
			if vis := q.VisibleFrom(i); vis < bound {
				bound = vis
			}
			continue
		}
		if u.state != stateDispatched {
			noSleep = true
			continue
		}
		// Readiness is monotonic within the consuming domain (readyAt
		// is fixed once the producer issues, and now only advances), so
		// an operand observed ready is cleared to the sentinel and
		// never looked up again, and a known not-before bound skips the
		// uop without any lookup.
		if u.stallUntil > now {
			if u.stallUntil < bound {
				bound = u.stallUntil
			}
			continue
		}
		if u.src1 != 0 {
			ok, at := p.srcReadyAt(u.src1, dom, now)
			if !ok {
				u.stallUntil = at
				if at == 0 {
					issueWake = true
				} else if at <= now {
					noSleep = true
				} else if at < bound {
					bound = at
				}
				continue
			}
			u.src1 = 0
		}
		if u.src2 != 0 {
			ok, at := p.srcReadyAt(u.src2, dom, now)
			if !ok {
				u.stallUntil = at
				if at == 0 {
					issueWake = true
				} else if at <= now {
					noSleep = true
				} else if at < bound {
					bound = at
				}
				continue
			}
			u.src2 = 0
		}
		if !p.tryIssue(u, dom, now, period) {
			noSleep = true
			continue // no free unit for this class; try younger ops
		}
		issued++
		remove = append(remove, i)
	}
	for j := len(remove) - 1; j >= 0; j-- {
		q.RemoveAt(remove[j])
	}
	if cap(remove) != cap(p.issueScratch) {
		// append outgrew the scratch buffer: keep the larger backing.
		// Guarded so the common no-growth case skips the write barrier.
		p.issueScratch = remove[:0]
	}
	meter.Cycle(v, float64(issued)/float64(units))
	meter.Leak(now, v)
	if p.eventMode && issued == 0 && !noSleep && bound > now && !d.InTransition(now) {
		p.idleCharge[engExecBase+int(dom)] = meter.IdleCharge(v)
		p.eng.Sleep(engExecBase+int(dom), bound, issueWake)
	}
}

// tryIssue books a functional unit and computes the uop's completion
// time. It reports false when no suitable unit is free.
func (p *Processor) tryIssue(u *uop, dom isa.ExecDomain, now clock.Time, period clock.Time) bool {
	class := u.inst.Class
	lat := clock.Time(class.Latency()) * period
	fixed := clock.Time(0)

	if class == isa.Load || class == isa.Store {
		if class == isa.Load && p.cfg.StoreForwarding && p.storeCounts.count(u.inst.Addr&^7) > 0 {
			// Store-to-load forwarding: the value comes straight from
			// the store queue; no cache access.
			p.forwarded++
			lat += clock.Time(p.cfg.Cache.L1Latency) * period
		} else {
			level := p.mem.Data(u.inst.Addr, class == isa.Store)
			if class == isa.Load && p.cfg.Prefetch && level != cache.LevelL1 {
				// Next-line prefetch into the hierarchy (stat-neutral).
				p.mem.PrefetchData(u.inst.Addr + uint64(p.cfg.Cache.L1DLine))
			}
			cycles, fixedNS := p.mem.DataLatency(level)
			if class == isa.Store {
				// Stores drain through the write buffer: address
				// generation plus L1 access; misses are absorbed.
				cycles = p.cfg.Cache.L1Latency
				fixedNS = 0
			}
			lat += clock.Time(cycles) * period
			fixed = clock.Time(fixedNS * float64(clock.Nanosecond))
		}
	}

	completion := now + lat + fixed
	pool := p.aluPool[dom]
	if !class.Pipelined() || class == isa.IntMult || class == isa.FPMult {
		pool = p.longPool[dom]
	}
	busyUntil := now + period // pipelined: unit accepts a new op next cycle
	if !class.Pipelined() {
		busyUntil = completion
	}
	if !pool.acquire(now, busyUntil) {
		return false
	}
	u.state = stateIssued
	u.readyAt = completion
	if p.eventMode {
		// Sleepers gated on a not-yet-issued producer now have a bound:
		// no operand of this uop can exist before its completion.
		p.eng.BroadcastIssue(completion)
	}
	return true
}

// sampleCycle runs one tick of the 250 MHz sampling clock: record queue
// occupancies, consult the controllers, and actuate frequency changes.
func (p *Processor) sampleCycle(now clock.Time) {
	for dom := 0; dom < isa.NumExecDomains; dom++ {
		occ := p.queues[dom].Len()
		p.samplers[dom].Record(occ)
		d := p.exec[dom]
		if c := p.controllers[dom]; c != nil {
			seen := occ
			if s := p.sensors[dom]; s != nil {
				seen = s.Read(occ)
			}
			target, change := c.Observe(now, seen, d.FreqMHz(now))
			if a := p.actuators[dom]; a != nil {
				target, change = a.Filter(now, target, change)
				if p.eventMode {
					if due, pending := a.PendingDue(); pending {
						// Regulator latency as a single scheduled event:
						// the domain need not be awake before the
						// deferred command can land.
						p.eng.Schedule(due, clock.EvActuation, engExecBase+dom)
					}
				}
			}
			if change {
				qt := p.cfg.Range.Quantize(target)
				p.uncappedMHz[dom] = qt
				before := d.Transitions()
				d.SetTarget(now, p.cappedMHz(qt))
				if cost := p.cfg.Transitions.EnergyPerTransitionJ; cost > 0 && d.Transitions() > before {
					// Regulator switching energy (ignored by the paper
					// because the capacitors are small; charged here
					// when the ablation enables it).
					p.execMeters[dom].AddJ(cost)
				}
				if p.eventMode {
					// A sleeping domain's precomputed idle charge assumes
					// a fixed voltage; a frequency transition invalidates
					// it, so the domain re-runs slow edges until the
					// transition completes.
					p.eng.Wake(engExecBase+dom, clock.EvFreqChange)
				}
			}
		}
		p.recordFreq(isa.ExecDomain(dom), now, d.FreqMHz(now))
	}
	if p.cfg.ControlFrontEnd {
		occ := p.feQueue.Len()
		p.feSampler.Record(occ)
		if p.feController != nil {
			seen := occ
			if s := p.feSensor; s != nil {
				seen = s.Read(occ)
			}
			target, change := p.feController.Observe(now, seen, p.fe.FreqMHz(now))
			if a := p.feActuator; a != nil {
				target, change = a.Filter(now, target, change)
				if p.eventMode {
					if due, pending := a.PendingDue(); pending {
						p.eng.Schedule(due, clock.EvActuation, engFE)
					}
				}
			}
			if change {
				p.fe.SetTarget(now, p.cfg.Range.Quantize(target))
				if p.eventMode {
					p.eng.Wake(engFE, clock.EvFreqChange)
				}
			}
		}
	}
}

// cappedMHz applies the chip governor's frequency ceiling to an
// execution-domain target. With no cap in force it is the identity, so
// the single-core control path is untouched.
func (p *Processor) cappedMHz(mhz float64) float64 {
	if p.execCapMHz > 0 && mhz > p.execCapMHz {
		return p.execCapMHz
	}
	return mhz
}

// SetFreqCap imposes (or, with mhz <= 0, lifts) a chip-level frequency
// ceiling on the execution domains. The cap composes with per-domain
// control: each domain runs at min(controller target, cap), so the
// paper's adaptive reaction-time machinery keeps working underneath a
// chip power governor. The front end is left at its own target — the
// paper pins it at f_max, and starving dispatch would distort the very
// queue occupancies the domain controllers observe. Caps are quantized
// to the DVFS range like any controller target and actuate ideally
// (the chip governor bypasses the per-domain fault injectors).
func (p *Processor) SetFreqCap(now clock.Time, mhz float64) {
	if mhz <= 0 {
		p.execCapMHz = 0
	} else {
		p.execCapMHz = p.cfg.Range.Quantize(mhz)
	}
	for dom := 0; dom < isa.NumExecDomains; dom++ {
		d := p.exec[dom]
		eff := p.cappedMHz(p.uncappedMHz[dom])
		if eff == d.TargetMHz() {
			continue
		}
		before := d.Transitions()
		d.SetTarget(now, eff)
		if cost := p.cfg.Transitions.EnergyPerTransitionJ; cost > 0 && d.Transitions() > before {
			p.execMeters[dom].AddJ(cost)
		}
		if p.eventMode {
			// Same invalidation as sampleCycle: a sleeping domain's
			// precomputed idle charge assumes a fixed voltage.
			p.eng.Wake(engExecBase+dom, clock.EvFreqChange)
		}
	}
}

// EnergySnapshotJ is the running chip-governor power sensor: total
// energy consumed so far across every domain meter. Leakage is
// integrated up to each meter's last consumed edge, which depends only
// on the simulated event stream — never on wall clock or worker
// scheduling — so snapshots taken at an epoch barrier are bit-identical
// across worker-pool sizes.
func (p *Processor) EnergySnapshotJ() float64 {
	total := p.feMeter.TotalJ()
	if p.fetchMeter != nil {
		total += p.fetchMeter.TotalJ()
	}
	for d := 0; d < isa.NumExecDomains; d++ {
		total += p.execMeters[d].TotalJ()
	}
	return total
}

// RetiredInsts reports how many instructions have committed so far.
func (p *Processor) RetiredInsts() int64 { return p.retired }

// recordFreq appends a frequency-trace point when the frequency moved.
func (p *Processor) recordFreq(dom isa.ExecDomain, now clock.Time, mhz float64) {
	if p.cfg.FreqTraceLimit > 0 && len(p.freqTrace[dom]) >= p.cfg.FreqTraceLimit {
		return
	}
	if last := p.lastTraceF[dom]; len(p.freqTrace[dom]) > 0 && abs(mhz-last) < 0.5 {
		return
	}
	p.lastTraceF[dom] = mhz
	p.freqTrace[dom] = append(p.freqTrace[dom], FreqPoint{Insts: p.retired, MHz: mhz})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// collect assembles the Result at end time.
func (p *Processor) collect(end clock.Time) *Result {
	res := &Result{
		Benchmark:       p.src.Name(),
		Domains:         make(map[string]DomainStats, 4),
		QueueSamples:    make(map[string][]float64, 3),
		FreqTrace:       make(map[string][]FreqPoint, 3),
		QueueFullStalls: make(map[string]uint64, 3),
	}
	total := 0.0
	execSec := end.Seconds()
	type domainMeter struct {
		name string
		m    *power.Meter
		d    *clock.Domain
	}
	meters := make([]domainMeter, 0, 5)
	meters = append(meters, domainMeter{NameFrontEnd, p.feMeter, p.fe})
	if p.fetchMeter != nil {
		meters = append(meters, domainMeter{NameFetch, p.fetchMeter, p.fetchDom})
	}
	meters = append(meters,
		domainMeter{NameInt, p.execMeters[isa.DomainInt], p.exec[isa.DomainInt]},
		domainMeter{NameFP, p.execMeters[isa.DomainFP], p.exec[isa.DomainFP]},
		domainMeter{NameLS, p.execMeters[isa.DomainLS], p.exec[isa.DomainLS]},
	)
	for _, dm := range meters {
		name, m, d := dm.name, dm.m, dm.d
		// Final leakage integration at the domain's closing voltage.
		var v float64
		switch name {
		case NameFetch:
			v = p.cfg.Range.MaxV
		case NameFrontEnd:
			v = p.feVoltage(end)
		default:
			v = p.cfg.Range.VoltageFor(d.FreqMHz(end))
		}
		m.Leak(end, v)
		ds := DomainStats{
			EnergyJ:      m.TotalJ(),
			DynamicJ:     m.DynamicJ(),
			LeakageJ:     m.LeakageJ(),
			Cycles:       d.Cycles(),
			Transitions:  d.Transitions(),
			SlewTime:     d.SlewTime(),
			MeanActivity: m.MeanActivity(),
		}
		if execSec > 0 {
			ds.MeanFreqMHz = float64(d.Cycles()) / execSec / 1e6
		}
		res.Domains[name] = ds
		total += m.TotalJ()
	}
	for dom := 0; dom < isa.NumExecDomains; dom++ {
		name := p.exec[dom].Name()
		samples := p.samplers[dom].Samples()
		res.QueueSamples[name] = samples
		res.FreqTrace[name] = p.freqTrace[dom]
		_, _, stalls := p.queues[dom].Stats()
		res.QueueFullStalls[name] = stalls
		ds := res.Domains[name]
		if len(samples) > 0 {
			sum := 0.0
			for _, s := range samples {
				sum += s
			}
			ds.MeanOccupancy = sum / float64(len(samples))
			res.Domains[name] = ds
		}
	}
	res.Metrics = power.Metrics{
		EnergyJ:      total,
		ExecTime:     end,
		Instructions: p.retired,
	}
	if fc := p.fe.Cycles(); fc > 0 {
		res.IPC = float64(p.retired) / float64(fc)
	}
	if p.branches > 0 {
		res.BranchMispredictRate = float64(p.mispredicts) / float64(p.branches)
	}
	if p.cfg.ControlFrontEnd {
		res.QueueSamples["FetchQ"] = p.feSampler.Samples()
	}
	res.RetiredByClass = make(map[string]int64, isa.NumClasses)
	for c := 0; c < isa.NumClasses; c++ {
		if p.retiredByCls[c] > 0 {
			res.RetiredByClass[isa.Class(c).String()] = p.retiredByCls[c]
		}
	}
	res.ForwardedLoads = p.forwarded
	res.L1DMissRate = p.mem.L1D().Stats().MissRate()
	res.L1IMissRate = p.mem.L1I().Stats().MissRate()
	res.L2MissRate = p.mem.L2().Stats().MissRate()
	return res
}
