// Package mcd implements the multiple-clock-domain out-of-order
// processor simulator the paper evaluates on: a 4-domain GALS machine
// (front end, integer core, floating-point core, load/store unit) in the
// style of Semeraro et al., with per-domain DVFS, synchronizing
// interface/issue queues, a Wattch-style energy model, and an
// independent 250 MHz occupancy-sampling clock that drives the attached
// DVFS controllers.
package mcd

import (
	"fmt"
	"sort"

	"mcddvfs/internal/cache"
	"mcddvfs/internal/clock"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/power"
	"mcddvfs/internal/queue"
)

// Domain names used throughout the simulator and the power model.
// NameFetch only exists on split-front-end (5-domain) machines.
const (
	NameFrontEnd = "FrontEnd"
	NameFetch    = "Fetch"
	NameInt      = "INT"
	NameFP       = "FP"
	NameLS       = "LS"
)

// Config carries every Table-1 machine parameter.
type Config struct {
	// Pipeline widths (Table 1: decode/issue/retire = 4/6/11; fetch
	// matches decode).
	FetchWidth  int
	DecodeWidth int
	IssueWidth  int // global cap across domains per front-end cycle span
	RetireWidth int

	// Window sizes (Table 1: ROB 80, LS retire buffer 64, issue queues
	// 20 INT / 16 FP / 16 LS).
	ROBSize  int
	LSQSize  int
	IntQSize int
	FPQSize  int
	LSQueue  int
	FetchBuf int
	PhysInt  int // physical integer registers (72)
	PhysFP   int // physical FP registers (72)

	// Functional units (Table 1: 4 int ALUs + mult/div, 2 FP ALUs +
	// mult/div/sqrt, 2 L1D ports).
	IntALUs    int
	IntMultDiv int
	FPALUs     int
	FPMultDiv  int
	MemPorts   int

	// MispredictRedirect is the front-end redirect penalty in
	// front-end cycles after a mispredicted branch resolves.
	MispredictRedirect int

	// StoreForwarding enables store-to-load forwarding in the LS
	// domain: a load whose address matches an in-flight older store
	// receives the value from the store queue (2 cycles) instead of
	// accessing the cache.
	StoreForwarding bool

	// Prefetch enables a next-line prefetcher on L1D misses.
	Prefetch bool

	// DeepSleep gates a domain's clock tree entirely while it has an
	// empty queue and nothing in flight, cutting its idle dynamic
	// energy to DeepSleepFactor of full activity (vs the ~10% regular
	// clock gating leaves on). An extension beyond the paper's
	// aggressive-clock-gating assumption.
	DeepSleep bool
	// DeepSleepFactor is the residual dynamic fraction while asleep
	// (default 0.02 when DeepSleep is enabled).
	DeepSleepFactor float64

	// SplitFrontEnd selects the 5-domain partition of Iyer &
	// Marculescu (Section 2 of the paper): the front end splits into a
	// fetch domain and a dispatch/rename domain, with a synchronizing
	// queue at the new boundary. By default both front-end domains stay
	// at f_max (the paper's methodology); the study quantifies the cost
	// of the extra synchronization boundary.
	SplitFrontEnd bool

	// ControlFrontEnd (requires SplitFrontEnd) makes the dispatch
	// domain DVFS-controllable, driven by the fetch-queue occupancy —
	// the flexibility the 5-domain partition exists to buy. The fetch
	// domain stays at f_max (its input is the I-cache, not a queue).
	// Attach the controller with Processor.AttachFrontEnd.
	ControlFrontEnd bool

	// Clocking.
	Range        dvfs.Range           // controllable domain envelope
	Transitions  dvfs.TransitionModel // physical DVFS cost model
	SamplingMHz  float64              // queue signal sampling rate (250 MHz)
	SyncWindowPS float64              // inter-domain synchronization window (300 ps)
	SyncPolicy   queue.SyncPolicy     // arbitration (paper) or token-ring interface
	JitterPS     float64              // per-domain clock jitter (±110 ps)

	// Substrates.
	Cache cache.Config
	Power map[string]power.DomainModel

	// Seed makes runs reproducible.
	Seed int64

	// Faults configures the deterministic fault-injection layer on the
	// DVFS control loop's sensor and actuator paths. The zero value
	// disables injection and leaves every output bit-identical to a
	// machine built without it.
	Faults faults.Config

	// SampleLimit bounds retained occupancy samples per queue
	// (0 = unlimited). Controllers always see live values.
	SampleLimit int

	// FreqTraceLimit bounds retained frequency-trace points per domain.
	FreqTraceLimit int
}

// DefaultConfig returns the Table-1 machine.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		DecodeWidth: 4,
		IssueWidth:  6,
		RetireWidth: 11,

		ROBSize:  80,
		LSQSize:  64,
		IntQSize: 20,
		FPQSize:  16,
		LSQueue:  16,
		FetchBuf: 16,
		PhysInt:  72,
		PhysFP:   72,

		IntALUs:    4,
		IntMultDiv: 1,
		FPALUs:     2,
		FPMultDiv:  1,
		MemPorts:   2,

		MispredictRedirect: 2,
		StoreForwarding:    true,

		Range:        dvfs.Default(),
		Transitions:  dvfs.DefaultTransitions(),
		SamplingMHz:  250,
		SyncWindowPS: 300,
		JitterPS:     110,

		Cache: cache.Default(),
		Power: power.DefaultModels(),

		FreqTraceLimit: 1 << 16,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	pos := map[string]int{
		"FetchWidth": c.FetchWidth, "DecodeWidth": c.DecodeWidth,
		"IssueWidth": c.IssueWidth, "RetireWidth": c.RetireWidth,
		"ROBSize": c.ROBSize, "LSQSize": c.LSQSize,
		"IntQSize": c.IntQSize, "FPQSize": c.FPQSize, "LSQueue": c.LSQueue,
		"FetchBuf": c.FetchBuf, "PhysInt": c.PhysInt, "PhysFP": c.PhysFP,
		"IntALUs": c.IntALUs, "IntMultDiv": c.IntMultDiv,
		"FPALUs": c.FPALUs, "FPMultDiv": c.FPMultDiv, "MemPorts": c.MemPorts,
	}
	// Sorted so the first failure reported is deterministic when
	// several fields are invalid.
	names := make([]string, 0, len(pos))
	for name := range pos {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if v := pos[name]; v <= 0 {
			return fmt.Errorf("mcd: %s must be positive, got %d", name, v)
		}
	}
	if c.SamplingMHz <= 0 {
		return fmt.Errorf("mcd: SamplingMHz must be positive")
	}
	if c.SyncWindowPS < 0 || c.JitterPS < 0 {
		return fmt.Errorf("mcd: negative sync window or jitter")
	}
	if c.SyncPolicy != queue.SyncArbitration && c.SyncPolicy != queue.SyncTokenRing {
		return fmt.Errorf("mcd: unknown sync policy %d", int(c.SyncPolicy))
	}
	if c.DeepSleepFactor < 0 {
		return fmt.Errorf("mcd: negative DeepSleepFactor %g", c.DeepSleepFactor)
	}
	if c.ControlFrontEnd && !c.SplitFrontEnd {
		return fmt.Errorf("mcd: ControlFrontEnd requires SplitFrontEnd")
	}
	if err := c.Range.Validate(); err != nil {
		return err
	}
	if err := c.Cache.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	for _, name := range []string{NameFrontEnd, NameInt, NameFP, NameLS} {
		m, ok := c.Power[name]
		if !ok {
			return fmt.Errorf("mcd: missing power model for domain %s", name)
		}
		if err := m.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SyncWindow returns the synchronization window as a clock.Time.
func (c *Config) SyncWindow() clock.Time {
	return clock.Time(c.SyncWindowPS * float64(clock.Picosecond))
}

// SamplingPeriod returns the occupancy sampling period.
func (c *Config) SamplingPeriod() clock.Time {
	return clock.PeriodForMHz(c.SamplingMHz)
}
