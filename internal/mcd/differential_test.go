package mcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcddvfs/internal/baselines"
	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/trace"
)

// diffRun executes one configuration through both simulation cores —
// the event-driven engine (the default) and the cycle-stepped oracle
// (SetCycleStepped) — and requires bit-identical Results. Equality is
// checked twice: structurally (reflect.DeepEqual covers every field,
// meter totals and the sampled meter/occupancy streams included) and on
// the serialized artifact bytes, which is the form the experiment cache
// and CI artifact diff actually compare.
func diffRun(t *testing.T, label string, cfg Config, profile string, insts int64, attach func(*Processor)) *Result {
	t.Helper()
	run := func(cycleStepped bool) *Result {
		t.Helper()
		prof, err := trace.ByName(profile)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(prof, cfg.Seed+100, insts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.SetCycleStepped(cycleStepped)
		if attach != nil {
			attach(p)
		}
		res, err := p.Run(gen)
		if err != nil {
			t.Fatalf("%s: core(cycleStepped=%v): %v", label, cycleStepped, err)
		}
		return res
	}
	event, oracle := run(false), run(true)
	if !reflect.DeepEqual(event, oracle) {
		t.Errorf("%s: event core diverged from cycle-stepped oracle:\nevent:  %+v\noracle: %+v", label, event, oracle)
	}
	ej, err := json.Marshal(event)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := json.Marshal(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ej, oj) {
		t.Errorf("%s: serialized artifacts differ between cores", label)
	}
	return event
}

func attachAdaptive(p *Processor) {
	if p.cfg.ControlFrontEnd {
		p.AttachFrontEnd(control.NewAdaptive(control.DefaultConfig(isa.DomainFP)))
	}
	for d := 0; d < isa.NumExecDomains; d++ {
		dom := isa.ExecDomain(d)
		p.Attach(dom, control.NewAdaptive(control.DefaultConfig(dom)))
	}
}

func attachAttackDecay(p *Processor) {
	for d := 0; d < isa.NumExecDomains; d++ {
		p.Attach(isa.ExecDomain(d), baselines.NewAttackDecay(baselines.DefaultAttackDecay()))
	}
}

func attachPID(p *Processor) {
	for d := 0; d < isa.NumExecDomains; d++ {
		p.Attach(isa.ExecDomain(d), baselines.NewPID(baselines.DefaultPID()))
	}
}

// TestEventCoreMatchesOracle pins the headline claim on the default
// machine: the event-driven core produces the byte-identical Result the
// cycle-stepped core does, with and without DVFS control.
func TestEventCoreMatchesOracle(t *testing.T) {
	res := diffRun(t, "uncontrolled", DefaultConfig(), "gcc", 20000, nil)
	if res.Metrics.Instructions != 20000 {
		t.Errorf("retired %d instructions, want 20000", res.Metrics.Instructions)
	}
	diffRun(t, "adaptive", DefaultConfig(), "mcf", 20000, attachAdaptive)
}

// TestEventCoreMatchesOracleRandomized is the differential property
// test: random configurations × trace profiles × fault seeds, each run
// through both cores. Any divergence in any Result field — energy
// accumulators, cycle counts, queue sample streams, frequency traces,
// stall counters — fails the test.
func TestEventCoreMatchesOracleRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	profiles := trace.Names()
	attachers := []struct {
		name string
		fn   func(*Processor)
	}{
		{"none", nil},
		{"adaptive", attachAdaptive},
		{"attack-decay", attachAttackDecay},
		{"pid", attachPID},
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 14; i++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Int63n(1 << 30)
		profile := profiles[rng.Intn(len(profiles))]
		att := attachers[rng.Intn(len(attachers))]
		cfg.DeepSleep = rng.Intn(2) == 0
		cfg.StoreForwarding = rng.Intn(2) == 0
		cfg.Prefetch = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.SplitFrontEnd = true
			cfg.ControlFrontEnd = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			cfg.Transitions.Style = clock.Transmeta
		}
		if rng.Intn(2) == 0 {
			cfg.SyncPolicy = 1 // token-ring
		}
		var faultLevel float64
		if att.fn != nil && rng.Intn(2) == 0 {
			faultLevel = 0.25 + 0.75*rng.Float64()
			cfg.Faults = faults.Intensity(faultLevel, rng.Int63n(1<<30))
		}
		insts := int64(6000 + rng.Intn(10000))
		label := fmt.Sprintf("case%02d(%s,%s,seed=%d,deep=%v,split=%v,faults=%.2f)",
			i, profile, att.name, cfg.Seed, cfg.DeepSleep, cfg.SplitFrontEnd, faultLevel)
		t.Run(label, func(t *testing.T) {
			diffRun(t, label, cfg, profile, insts, att.fn)
		})
	}
}

// noopGovernor keeps every core uncapped but, by being non-nil, forces
// the chip through its epoch-barrier machinery: pause every core at the
// epoch boundary, sense power, actuate (uncapped) caps, resume. It
// exists to prove the barriers themselves are invisible in the Results.
type noopGovernor struct{}

func (noopGovernor) Apportion(clock.Time, []float64, []float64) {}

// chipDiffRun executes one configuration through the legacy
// single-Processor path and as a one-core Chip — governorless (the
// barrier-free fast path) or under a no-op governor (every epoch
// barrier taken) — and requires the chip's core Result to be
// bit-identical to the legacy Result, structurally and on the
// serialized artifact bytes. This is the refactor's compatibility
// contract: the chip is a superset of the processor, not a fork of it.
func chipDiffRun(t *testing.T, label string, cfg Config, profile string, insts int64, attach func(*Processor), barriers bool) {
	t.Helper()
	prof, err := trace.ByName(profile)
	if err != nil {
		t.Fatal(err)
	}
	newGen := func() trace.Source {
		t.Helper()
		gen, err := trace.NewGenerator(prof, cfg.Seed+100, insts)
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}

	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(p)
	}
	legacy, err := p.Run(newGen())
	if err != nil {
		t.Fatalf("%s: processor: %v", label, err)
	}

	chip, err := NewChip(ChipConfig{Cores: []Config{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(chip.Core(0))
	}
	if barriers {
		chip.SetGovernor(noopGovernor{})
	}
	cres, err := chip.Run([]trace.Source{newGen()})
	if err != nil {
		t.Fatalf("%s: chip(barriers=%v): %v", label, barriers, err)
	}
	got := cres.Cores[0]
	if !reflect.DeepEqual(got, legacy) {
		t.Errorf("%s: 1-core chip (barriers=%v) diverged from the single processor:\nchip:      %+v\nprocessor: %+v",
			label, barriers, got, legacy)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	lj, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gj, lj) {
		t.Errorf("%s: serialized artifacts differ between chip core and processor (barriers=%v)", label, barriers)
	}
	if cres.Metrics != legacy.Metrics {
		t.Errorf("%s: chip rollup %+v differs from the single core's metrics %+v", label, cres.Metrics, legacy.Metrics)
	}
}

// TestChipSingleCoreMatchesProcessor pins the chip refactor's gate on
// the default machine: a 1-core chip — with and without epoch barriers
// — is the single-processor path, bit for bit.
func TestChipSingleCoreMatchesProcessor(t *testing.T) {
	chipDiffRun(t, "uncontrolled", DefaultConfig(), "gcc", 20000, nil, false)
	chipDiffRun(t, "uncontrolled+barriers", DefaultConfig(), "gcc", 20000, nil, true)
	chipDiffRun(t, "adaptive", DefaultConfig(), "mcf", 20000, attachAdaptive, false)
	chipDiffRun(t, "adaptive+barriers", DefaultConfig(), "mcf", 20000, attachAdaptive, true)
}

// TestChipSingleCoreMatchesProcessorRandomized sweeps the 1-core-chip
// equivalence across random configurations × trace profiles × control
// schemes × fault intensities, half the cases with the no-op governor's
// epoch barriers active.
func TestChipSingleCoreMatchesProcessorRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	profiles := trace.Names()
	attachers := []struct {
		name string
		fn   func(*Processor)
	}{
		{"none", nil},
		{"adaptive", attachAdaptive},
		{"attack-decay", attachAttackDecay},
		{"pid", attachPID},
	}
	rng := rand.New(rand.NewSource(20260809))
	for i := 0; i < 12; i++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Int63n(1 << 30)
		profile := profiles[rng.Intn(len(profiles))]
		att := attachers[rng.Intn(len(attachers))]
		cfg.DeepSleep = rng.Intn(2) == 0
		cfg.StoreForwarding = rng.Intn(2) == 0
		cfg.Prefetch = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.SplitFrontEnd = true
			cfg.ControlFrontEnd = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			cfg.Transitions.Style = clock.Transmeta
		}
		if rng.Intn(2) == 0 {
			cfg.SyncPolicy = 1 // token-ring
		}
		var faultLevel float64
		if att.fn != nil && rng.Intn(2) == 0 {
			faultLevel = 0.25 + 0.75*rng.Float64()
			cfg.Faults = faults.Intensity(faultLevel, rng.Int63n(1<<30))
		}
		barriers := rng.Intn(2) == 0
		insts := int64(6000 + rng.Intn(10000))
		label := fmt.Sprintf("case%02d(%s,%s,seed=%d,deep=%v,split=%v,faults=%.2f,barriers=%v)",
			i, profile, att.name, cfg.Seed, cfg.DeepSleep, cfg.SplitFrontEnd, faultLevel, barriers)
		t.Run(label, func(t *testing.T) {
			chipDiffRun(t, label, cfg, profile, insts, att.fn, barriers)
		})
	}
}

// TestEventCoreSkipsEdges asserts the engine actually descheduled work
// on a workload with idle domains: a pure-integer profile leaves the FP
// domain asleep almost permanently.
func TestEventCoreSkipsEdges(t *testing.T) {
	cfg := DefaultConfig()
	prof, err := trace.ByName("adpcm_encode")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(prof, cfg.Seed+100, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(gen); err != nil {
		t.Fatal(err)
	}
	st := p.EngineStats()
	fp := st[NameFP]
	total := fp.SlowEdges + fp.SkippedEdges
	if total == 0 {
		t.Fatal("FP domain recorded no edges")
	}
	if frac := float64(fp.SkippedEdges) / float64(total); frac < 0.5 {
		t.Errorf("FP domain skipped only %.1f%% of %d edges on integer-only code", 100*frac, total)
	}
	for name, s := range st {
		t.Logf("%-9s slow=%-9d skipped=%-9d sleeps=%-7d (%.1f%% skipped)",
			name, s.SlowEdges, s.SkippedEdges, s.Sleeps,
			100*float64(s.SkippedEdges)/float64(s.SlowEdges+s.SkippedEdges+1))
	}
}
