package mcd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcddvfs/internal/baselines"
	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/trace"
)

// diffRun executes one configuration through both simulation cores —
// the event-driven engine (the default) and the cycle-stepped oracle
// (SetCycleStepped) — and requires bit-identical Results. Equality is
// checked twice: structurally (reflect.DeepEqual covers every field,
// meter totals and the sampled meter/occupancy streams included) and on
// the serialized artifact bytes, which is the form the experiment cache
// and CI artifact diff actually compare.
func diffRun(t *testing.T, label string, cfg Config, profile string, insts int64, attach func(*Processor)) *Result {
	t.Helper()
	run := func(cycleStepped bool) *Result {
		t.Helper()
		prof, err := trace.ByName(profile)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(prof, cfg.Seed+100, insts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.SetCycleStepped(cycleStepped)
		if attach != nil {
			attach(p)
		}
		res, err := p.Run(gen)
		if err != nil {
			t.Fatalf("%s: core(cycleStepped=%v): %v", label, cycleStepped, err)
		}
		return res
	}
	event, oracle := run(false), run(true)
	if !reflect.DeepEqual(event, oracle) {
		t.Errorf("%s: event core diverged from cycle-stepped oracle:\nevent:  %+v\noracle: %+v", label, event, oracle)
	}
	ej, err := json.Marshal(event)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := json.Marshal(oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ej, oj) {
		t.Errorf("%s: serialized artifacts differ between cores", label)
	}
	return event
}

func attachAdaptive(p *Processor) {
	if p.cfg.ControlFrontEnd {
		p.AttachFrontEnd(control.NewAdaptive(control.DefaultConfig(isa.DomainFP)))
	}
	for d := 0; d < isa.NumExecDomains; d++ {
		dom := isa.ExecDomain(d)
		p.Attach(dom, control.NewAdaptive(control.DefaultConfig(dom)))
	}
}

func attachAttackDecay(p *Processor) {
	for d := 0; d < isa.NumExecDomains; d++ {
		p.Attach(isa.ExecDomain(d), baselines.NewAttackDecay(baselines.DefaultAttackDecay()))
	}
}

func attachPID(p *Processor) {
	for d := 0; d < isa.NumExecDomains; d++ {
		p.Attach(isa.ExecDomain(d), baselines.NewPID(baselines.DefaultPID()))
	}
}

// TestEventCoreMatchesOracle pins the headline claim on the default
// machine: the event-driven core produces the byte-identical Result the
// cycle-stepped core does, with and without DVFS control.
func TestEventCoreMatchesOracle(t *testing.T) {
	res := diffRun(t, "uncontrolled", DefaultConfig(), "gcc", 20000, nil)
	if res.Metrics.Instructions != 20000 {
		t.Errorf("retired %d instructions, want 20000", res.Metrics.Instructions)
	}
	diffRun(t, "adaptive", DefaultConfig(), "mcf", 20000, attachAdaptive)
}

// TestEventCoreMatchesOracleRandomized is the differential property
// test: random configurations × trace profiles × fault seeds, each run
// through both cores. Any divergence in any Result field — energy
// accumulators, cycle counts, queue sample streams, frequency traces,
// stall counters — fails the test.
func TestEventCoreMatchesOracleRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	profiles := trace.Names()
	attachers := []struct {
		name string
		fn   func(*Processor)
	}{
		{"none", nil},
		{"adaptive", attachAdaptive},
		{"attack-decay", attachAttackDecay},
		{"pid", attachPID},
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 14; i++ {
		cfg := DefaultConfig()
		cfg.Seed = rng.Int63n(1 << 30)
		profile := profiles[rng.Intn(len(profiles))]
		att := attachers[rng.Intn(len(attachers))]
		cfg.DeepSleep = rng.Intn(2) == 0
		cfg.StoreForwarding = rng.Intn(2) == 0
		cfg.Prefetch = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			cfg.SplitFrontEnd = true
			cfg.ControlFrontEnd = rng.Intn(2) == 0
		}
		if rng.Intn(2) == 0 {
			cfg.Transitions.Style = clock.Transmeta
		}
		if rng.Intn(2) == 0 {
			cfg.SyncPolicy = 1 // token-ring
		}
		var faultLevel float64
		if att.fn != nil && rng.Intn(2) == 0 {
			faultLevel = 0.25 + 0.75*rng.Float64()
			cfg.Faults = faults.Intensity(faultLevel, rng.Int63n(1<<30))
		}
		insts := int64(6000 + rng.Intn(10000))
		label := fmt.Sprintf("case%02d(%s,%s,seed=%d,deep=%v,split=%v,faults=%.2f)",
			i, profile, att.name, cfg.Seed, cfg.DeepSleep, cfg.SplitFrontEnd, faultLevel)
		t.Run(label, func(t *testing.T) {
			diffRun(t, label, cfg, profile, insts, att.fn)
		})
	}
}

// TestEventCoreSkipsEdges asserts the engine actually descheduled work
// on a workload with idle domains: a pure-integer profile leaves the FP
// domain asleep almost permanently.
func TestEventCoreSkipsEdges(t *testing.T) {
	cfg := DefaultConfig()
	prof, err := trace.ByName("adpcm_encode")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(prof, cfg.Seed+100, 20000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(gen); err != nil {
		t.Fatal(err)
	}
	st := p.EngineStats()
	fp := st[NameFP]
	total := fp.SlowEdges + fp.SkippedEdges
	if total == 0 {
		t.Fatal("FP domain recorded no edges")
	}
	if frac := float64(fp.SkippedEdges) / float64(total); frac < 0.5 {
		t.Errorf("FP domain skipped only %.1f%% of %d edges on integer-only code", 100*frac, total)
	}
	for name, s := range st {
		t.Logf("%-9s slow=%-9d skipped=%-9d sleeps=%-7d (%.1f%% skipped)",
			name, s.SlowEdges, s.SkippedEdges, s.Sleeps,
			100*float64(s.SkippedEdges)/float64(s.SlowEdges+s.SkippedEdges+1))
	}
}
