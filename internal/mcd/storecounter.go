package mcd

// storeCounter counts in-flight stores per 8-byte-aligned address,
// backing store-to-load forwarding. It replaces the previous
// map[uint64]int with a fixed-size open-addressed table (linear probing,
// backward-shift deletion) sized to the LS retire buffer, so the
// per-instruction hot path never hashes through the runtime map or
// allocates. At most LSQSize stores are in flight at once and the table
// is sized to 4x that, keeping probe chains short.
type storeCounter struct {
	keys   []uint64
	counts []int32
	mask   uint64
	shift  uint
}

// newStoreCounter builds a table for at most capacity concurrent keys.
func newStoreCounter(capacity int) *storeCounter {
	size := 8
	for size < 4*capacity {
		size <<= 1
	}
	shift := uint(64)
	for s := size; s > 1; s >>= 1 {
		shift--
	}
	return &storeCounter{
		keys:   make([]uint64, size),
		counts: make([]int32, size),
		mask:   uint64(size - 1),
		shift:  shift,
	}
}

// home is the key's preferred slot (Fibonacci hashing: the aligned
// addresses that arrive here differ only in a few middle bits, which a
// multiplicative hash spreads well).
func (s *storeCounter) home(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> s.shift
}

// incr adds one in-flight store at key.
func (s *storeCounter) incr(key uint64) {
	i := s.home(key)
	for {
		if s.counts[i] == 0 {
			s.keys[i] = key
			s.counts[i] = 1
			return
		}
		if s.keys[i] == key {
			s.counts[i]++
			return
		}
		i = (i + 1) & s.mask
	}
}

// count returns the number of in-flight stores at key.
func (s *storeCounter) count(key uint64) int32 {
	i := s.home(key)
	for {
		if s.counts[i] == 0 {
			return 0
		}
		if s.keys[i] == key {
			return s.counts[i]
		}
		i = (i + 1) & s.mask
	}
}

// decr retires one in-flight store at key, removing the entry when the
// count reaches zero.
func (s *storeCounter) decr(key uint64) {
	i := s.home(key)
	for s.counts[i] != 0 && s.keys[i] != key {
		i = (i + 1) & s.mask
	}
	if s.counts[i] == 0 {
		return // decr of an untracked key; mirrors the old map's no-op
	}
	if s.counts[i]--; s.counts[i] > 0 {
		return
	}
	s.erase(i)
}

// erase deletes the entry at slot i using backward-shift deletion, which
// keeps every remaining entry reachable from its home slot without
// tombstones.
func (s *storeCounter) erase(i uint64) {
	j := i
	for {
		j = (j + 1) & s.mask
		if s.counts[j] == 0 {
			s.counts[i] = 0
			return
		}
		h := s.home(s.keys[j])
		// Move entry j back to the freed slot unless its home lies
		// cyclically within (i, j], in which case it is already as close
		// to home as it can get.
		if (j > i && (h <= i || h > j)) || (j < i && h <= i && h > j) {
			s.keys[i] = s.keys[j]
			s.counts[i] = s.counts[j]
			i = j
		}
	}
}
