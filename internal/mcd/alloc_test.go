package mcd

import (
	"testing"

	"mcddvfs/internal/trace"
)

// TestSteadyStateZeroAllocs is the allocation regression test for the
// hot path: after warm-up (occupancy samplers full, uop free list
// populated, the generator's static-branch table sized), retiring
// instructions must not allocate at all. The uop free list, the
// domain-indexed meters, the open-addressed store counter, and the
// ring-buffer queues exist to keep this at zero.
func TestSteadyStateZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	// Small cap so the samplers stop retaining during warm-up.
	cfg.SampleLimit = 1 << 10

	prof, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 500000
	gen, err := trace.NewGenerator(prof, 12, budget)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No controllers attached: domains stay pinned at f_max, so the
	// frequency traces never grow. (Controller-driven runs append one
	// FreqPoint per retarget by design; that is reported state, not
	// hot-path churn.)
	p.ran = true
	p.src = gen

	// retire drives the clock until n more instructions commit.
	retire := func(n int64) {
		target := p.retired + n
		for p.retired < target {
			if _, ok := p.step(); !ok {
				t.Fatal("all clocks stopped before the retire target")
			}
			if p.traceDone && p.rob.empty() && p.feQueue.Empty() {
				t.Fatal("trace exhausted before the retire target; raise the budget")
			}
		}
	}

	// Warm-up: fill the samplers past SampleLimit, cycle every uop slot
	// through the free list, and let the trace generator visit its full
	// static code footprint so its branch table stops growing.
	retire(100000)

	const perRun = 2000
	avg := testing.AllocsPerRun(20, func() { retire(perRun) })
	if avg != 0 {
		t.Fatalf("steady state allocates: %.2f allocs per %d retired instructions (want 0)", avg, perRun)
	}
}
