package mcd_test

// The worker-pool determinism suite lives in the external test package
// so it can attach the real integral-gain governor from
// internal/governor (which imports mcd; an in-package test would be an
// import cycle).

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"mcddvfs/internal/control"
	"mcddvfs/internal/governor"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

// chipRunBytes runs the canonical determinism workload — a 4-core chip
// with heterogeneous per-core benchmarks, adaptive per-domain
// controllers, and the integral-gain governor holding a 30 W budget —
// on a worker pool of the given size and returns the serialized
// ChipResult.
func chipRunBytes(t *testing.T, workers int) []byte {
	t.Helper()
	benches := []string{"epic_decode", "gzip", "swim", "adpcm_encode"}
	cfg := mcd.ChipConfig{Cores: make([]mcd.Config, len(benches)), PowerCapW: 30}
	for i := range cfg.Cores {
		mc := mcd.DefaultConfig()
		mc.Seed += int64(i)
		cfg.Cores[i] = mc
	}
	chip, err := mcd.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chip.Cores(); i++ {
		for d := 0; d < isa.NumExecDomains; d++ {
			dom := isa.ExecDomain(d)
			chip.Core(i).Attach(dom, control.NewAdaptive(control.DefaultConfig(dom)))
		}
	}
	desc, ok := governor.Lookup("integral-gain")
	if !ok {
		t.Fatal("integral-gain governor not registered")
	}
	gov, err := desc.New(governor.Options{
		Cores:   len(benches),
		BudgetW: cfg.PowerCapW,
		Range:   cfg.Cores[0].Range,
	})
	if err != nil {
		t.Fatal(err)
	}
	chip.SetGovernor(gov)
	chip.SetWorkers(workers)

	srcs := make([]trace.Source, len(benches))
	for i, name := range benches {
		prof, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(prof, cfg.Cores[i].Seed+100, 30000)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = gen
	}
	res, err := chip.Run(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochTrace) == 0 {
		t.Fatal("governed chip run recorded no control epochs")
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// timedChipRun measures the wall-clock of one governorless 4-core chip
// run at the given pool size — governorless so there are no epoch
// barriers and the measurement isolates the pool itself.
func timedChipRun(t *testing.T, workers int, insts int64) time.Duration {
	t.Helper()
	benches := []string{"epic_decode", "gzip", "swim", "adpcm_encode"}
	cfg := mcd.ChipConfig{Cores: make([]mcd.Config, len(benches))}
	for i := range cfg.Cores {
		mc := mcd.DefaultConfig()
		mc.Seed += int64(i)
		cfg.Cores[i] = mc
	}
	chip, err := mcd.NewChip(cfg)
	if err != nil {
		t.Fatal(err)
	}
	chip.SetWorkers(workers)
	srcs := make([]trace.Source, len(benches))
	for i, name := range benches {
		prof, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewGenerator(prof, cfg.Cores[i].Seed+100, insts)
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = gen
	}
	start := time.Now()
	if _, err := chip.Run(srcs); err != nil {
		t.Fatal(err)
	}
	return time.Since(start)
}

// TestChipParallelSpeedup is the throughput half of the worker-pool
// contract: on a machine with CPUs to spare, a 4-core chip on the full
// pool must finish at least 2x faster than the same chip advanced
// serially. Cores share nothing between barriers, so the only serial
// residue is the per-run setup and the final merge. The test skips
// where the hardware cannot show the effect (GOMAXPROCS < 4 — a
// worker per core is the configuration the bound is stated for) and
// under -race, whose instrumentation serializes the cores' memory
// traffic and makes wall-clock ratios meaningless.
func TestChipParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement is slow")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts wall-clock ratios")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 CPUs to demonstrate 4-core speedup; have %d", runtime.GOMAXPROCS(0))
	}
	const insts = 400000
	timedChipRun(t, 1, 50000) // warm caches and the scheduler
	serial := timedChipRun(t, 1, insts)
	parallel := timedChipRun(t, 4, insts)
	speedup := serial.Seconds() / parallel.Seconds()
	t.Logf("serial=%v parallel=%v speedup=%.2fx", serial, parallel, speedup)
	if speedup < 2 {
		t.Errorf("4-core chip sped up only %.2fx over serial; the pool should buy at least 2x with 4 CPUs", speedup)
	}
}

// TestChipResultIndependentOfWorkers is the parallelism determinism
// gate: the worker pool is purely a throughput knob, so the same
// governed heterogeneous chip run must serialize to the same bytes at
// pool sizes 1, 4, and GOMAXPROCS. Under -race (make race) it doubles
// as the data-race check on the epoch-barrier protocol.
func TestChipResultIndependentOfWorkers(t *testing.T) {
	want := chipRunBytes(t, 1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := chipRunBytes(t, w); !bytes.Equal(got, want) {
			t.Errorf("ChipResult bytes at %d workers differ from the serial run (%d vs %d bytes)",
				w, len(got), len(want))
		}
	}
}
