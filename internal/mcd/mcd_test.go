package mcd

import (
	"testing"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/trace"
)

func runBench(t *testing.T, name string, insts int64, cfg Config, attach func(*Processor)) *Result {
	t.Helper()
	prof, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(prof, cfg.Seed+100, insts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attach != nil {
		attach(p)
	}
	res, err := p.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.SyncWindow() != 300*clock.Picosecond {
		t.Errorf("sync window = %v, want 300ps", cfg.SyncWindow())
	}
	if cfg.SamplingPeriod() != 4*clock.Nanosecond {
		t.Errorf("sampling period = %v, want 4ns", cfg.SamplingPeriod())
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ROB accepted")
	}
	cfg = DefaultConfig()
	cfg.SamplingMHz = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero sampling rate accepted")
	}
	cfg = DefaultConfig()
	delete(cfg.Power, NameFP)
	if err := cfg.Validate(); err == nil {
		t.Error("missing power model accepted")
	}
}

func TestRunCompletesAndRetiresEverything(t *testing.T) {
	res := runBench(t, "epic_decode", 20000, DefaultConfig(), nil)
	if res.Metrics.Instructions != 20000 {
		t.Errorf("retired %d, want 20000", res.Metrics.Instructions)
	}
	if res.Metrics.ExecTime <= 0 {
		t.Error("non-positive exec time")
	}
	if res.Metrics.EnergyJ <= 0 {
		t.Error("non-positive energy")
	}
	if res.IPC < 0.2 || res.IPC > 4 {
		t.Errorf("IPC %.3f implausible", res.IPC)
	}
	if res.BranchMispredictRate <= 0 || res.BranchMispredictRate > 0.5 {
		t.Errorf("mispredict rate %.3f implausible", res.BranchMispredictRate)
	}
	for _, name := range []string{NameFrontEnd, NameInt, NameFP, NameLS} {
		d, ok := res.Domains[name]
		if !ok {
			t.Fatalf("missing domain %s", name)
		}
		if d.EnergyJ <= 0 || d.Cycles == 0 {
			t.Errorf("%s: energy %g cycles %d", name, d.EnergyJ, d.Cycles)
		}
	}
}

func TestQueueSamplesRecorded(t *testing.T) {
	res := runBench(t, "gsm_decode", 10000, DefaultConfig(), nil)
	for _, name := range []string{NameInt, NameFP, NameLS} {
		s := res.QueueSamples[name]
		if len(s) == 0 {
			t.Errorf("%s: no occupancy samples", name)
		}
		for _, v := range s {
			if v < 0 || v > 20 {
				t.Fatalf("%s: occupancy sample %g out of range", name, v)
			}
		}
	}
	// INT queue must show real activity on an integer codec.
	if res.MeanSampledOccupancy(NameInt) <= 0 {
		t.Error("INT queue never occupied")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	a := runBench(t, "adpcm_encode", 15000, cfg, nil)
	b := runBench(t, "adpcm_encode", 15000, cfg, nil)
	if a.Metrics != b.Metrics {
		t.Errorf("metrics differ across identical runs:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if a.IPC != b.IPC {
		t.Errorf("IPC differs: %v vs %v", a.IPC, b.IPC)
	}
}

func TestLowFrequencySlowsAndSaves(t *testing.T) {
	cfg := DefaultConfig()
	base := runBench(t, "gzip", 15000, cfg, nil)
	slow := runBench(t, "gzip", 15000, cfg, func(p *Processor) {
		p.Attach(isa.DomainInt, &FixedController{MHz: 250})
		// Kick the domain immediately so the whole run is slow.
		p.Domain(isa.DomainInt).SetTarget(0, 250)
	})
	if slow.Metrics.ExecTime <= base.Metrics.ExecTime {
		t.Errorf("INT at fmin not slower: %v vs %v", slow.Metrics.ExecTime, base.Metrics.ExecTime)
	}
	intBase := base.Domains[NameInt]
	intSlow := slow.Domains[NameInt]
	if intSlow.MeanFreqMHz >= intBase.MeanFreqMHz {
		t.Errorf("INT mean freq did not drop: %g vs %g", intSlow.MeanFreqMHz, intBase.MeanFreqMHz)
	}
	if intSlow.EnergyJ >= intBase.EnergyJ {
		t.Errorf("INT energy did not drop at fmin: %g vs %g", intSlow.EnergyJ, intBase.EnergyJ)
	}
}

func TestSlowIntDomainBacksUpItsQueue(t *testing.T) {
	cfg := DefaultConfig()
	base := runBench(t, "gzip", 15000, cfg, nil)
	slow := runBench(t, "gzip", 15000, cfg, func(p *Processor) {
		p.Domain(isa.DomainInt).SetTarget(0, 250)
	})
	if slow.MeanSampledOccupancy(NameInt) <= base.MeanSampledOccupancy(NameInt) {
		t.Errorf("slow INT domain should raise INT queue occupancy: %.2f vs %.2f",
			slow.MeanSampledOccupancy(NameInt), base.MeanSampledOccupancy(NameInt))
	}
}

func TestFPQueueQuietOnIntegerCode(t *testing.T) {
	res := runBench(t, "adpcm_encode", 15000, DefaultConfig(), nil)
	if occ := res.MeanSampledOccupancy(NameFP); occ > 0.1 {
		t.Errorf("FP queue occupancy %.3f on integer-only code, want ~0", occ)
	}
}

func TestMemoryBoundCodeMissesCaches(t *testing.T) {
	res := runBench(t, "mcf", 20000, DefaultConfig(), nil)
	if res.L1DMissRate < 0.05 {
		t.Errorf("mcf L1D miss rate %.3f suspiciously low", res.L1DMissRate)
	}
	res2 := runBench(t, "adpcm_encode", 20000, DefaultConfig(), nil)
	if res2.L1DMissRate > res.L1DMissRate {
		t.Errorf("tiny-footprint codec misses more than mcf (%.3f vs %.3f)",
			res2.L1DMissRate, res.L1DMissRate)
	}
	if res2.IPC <= res.IPC {
		t.Errorf("cache-resident codec IPC %.2f not above mcf IPC %.2f", res2.IPC, res.IPC)
	}
}

func TestRunTwiceFails(t *testing.T) {
	cfg := DefaultConfig()
	prof, _ := trace.ByName("gzip")
	gen, _ := trace.NewGenerator(prof, 1, 1000)
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(gen); err != nil {
		t.Fatal(err)
	}
	gen2, _ := trace.NewGenerator(prof, 1, 1000)
	if _, err := p.Run(gen2); err == nil {
		t.Error("second Run should fail")
	}
}

func TestFrequencyTraceRecordsRetargets(t *testing.T) {
	res := runBench(t, "gzip", 10000, DefaultConfig(), func(p *Processor) {
		p.Domain(isa.DomainInt).SetTarget(0, 500)
	})
	tr := res.FreqTrace[NameInt]
	if len(tr) == 0 {
		t.Fatal("no frequency trace recorded")
	}
	// The 73.3 ns/MHz slew is slow relative to a 10K-instruction run;
	// the trace must show the frequency clearly descending from fmax
	// even if the target is not reached yet.
	last := tr[len(tr)-1]
	if last.MHz > 950 {
		t.Errorf("trace did not capture the slew toward 500 MHz: %+v", last)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].MHz > tr[i-1].MHz {
			t.Fatalf("frequency trace not monotone during a single down-slew: %+v -> %+v", tr[i-1], tr[i])
		}
	}
}
