package mcd

import (
	"testing"

	"mcddvfs/internal/trace"
)

// TestIdleBurstCoverage drives the synthetic idle_burst workload (long
// single-domain bursts) through the event core and asserts the engine
// deschedules the starved domains at scale: every execution domain is
// idle for roughly two thirds of the run, so each must batch-skip a
// large share of its edges. This is the coverage workload for the
// idle-descheduling machinery — the paper suite's codecs alternate
// domains too quickly to hold a domain asleep for whole sampling
// intervals.
func TestIdleBurstCoverage(t *testing.T) {
	cfg := DefaultConfig()
	prof, err := trace.ByName("idle_burst")
	if err != nil {
		t.Fatal(err)
	}
	const insts = 90000 // one full loop: all three bursts
	gen, err := trace.NewGenerator(prof, cfg.Seed+100, insts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(gen); err != nil {
		t.Fatal(err)
	}

	st := p.EngineStats()
	var slow, skipped uint64
	for name, s := range st {
		total := s.SlowEdges + s.SkippedEdges
		slow += s.SlowEdges
		skipped += s.SkippedEdges
		t.Logf("%-9s slow=%-9d skipped=%-9d sleeps=%-7d (%.1f%% skipped)",
			name, s.SlowEdges, s.SkippedEdges, s.Sleeps,
			100*float64(s.SkippedEdges)/float64(total+1))
	}
	// The FP domain only works during fp_spin: it must skip most edges.
	fp := st[NameFP]
	if total := fp.SlowEdges + fp.SkippedEdges; total == 0 {
		t.Fatal("FP domain recorded no edges")
	} else if frac := float64(fp.SkippedEdges) / float64(total); frac < 0.55 {
		t.Errorf("FP domain skipped only %.1f%% of %d edges", 100*frac, total)
	}
	// Across all domains, the bursts should let the engine skip a
	// sizeable share of total edge work.
	if frac := float64(skipped) / float64(slow+skipped); frac < 0.35 {
		t.Errorf("engine skipped only %.1f%% of all edges on idle_burst", 100*frac)
	}
}

// TestIdleBurstMatchesOracle pins the synthetic workload to the
// differential contract: descheduling its unusually long idle
// stretches must not perturb a single byte of the result.
func TestIdleBurstMatchesOracle(t *testing.T) {
	diffRun(t, "idle_burst", DefaultConfig(), "idle_burst", 30000, nil)
}
