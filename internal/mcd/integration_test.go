package mcd

import (
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/trace"
)

// TestAdaptiveDropsIdleDomainToFloor: on integer-only code, the FP
// queue is permanently empty and the adaptive controller must walk the
// FP domain down toward f_min (the opening of the paper's Figure-7
// narrative).
func TestAdaptiveDropsIdleDomainToFloor(t *testing.T) {
	cfg := DefaultConfig()
	res := runBench(t, "gzip", 400000, cfg, func(p *Processor) {
		for d := 0; d < isa.NumExecDomains; d++ {
			p.Attach(isa.ExecDomain(d), control.NewAdaptive(control.DefaultConfig(isa.ExecDomain(d))))
		}
	})
	tr := res.FreqTrace[NameFP]
	if len(tr) == 0 {
		t.Fatal("no FP trace")
	}
	final := tr[len(tr)-1].MHz
	if final > 400 {
		t.Errorf("idle FP domain ended at %.0f MHz; expected a walk toward 250", final)
	}
	// And it must never have gone up on an empty queue.
	for i := 1; i < len(tr); i++ {
		if tr[i].MHz > tr[i-1].MHz+1 {
			t.Fatalf("FP frequency rose (%v -> %v) with an empty queue", tr[i-1], tr[i])
		}
	}
}

// TestAdaptiveKeepsBusyDomainFast: a loaded INT domain must stay near
// f_max under adaptive control (the controller protects performance
// when the queue runs above reference).
func TestAdaptiveKeepsBusyDomainFast(t *testing.T) {
	cfg := DefaultConfig()
	res := runBench(t, "mcf", 150000, cfg, func(p *Processor) {
		p.Attach(isa.DomainInt, control.NewAdaptive(control.DefaultConfig(isa.DomainInt)))
	})
	if f := res.Domains[NameInt].MeanFreqMHz; f < 850 {
		t.Errorf("INT mean frequency %.0f MHz on a queue-saturated workload; want near f_max", f)
	}
}

// TestEnergyDecomposition: domain energies must sum to the chip total,
// and dynamic+leakage must sum to each domain's energy.
func TestEnergyDecomposition(t *testing.T) {
	res := runBench(t, "gsm_decode", 30000, DefaultConfig(), nil)
	sum := 0.0
	for name, d := range res.Domains {
		if diff := d.EnergyJ - (d.DynamicJ + d.LeakageJ); diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: energy parts do not sum: %g vs %g+%g", name, d.EnergyJ, d.DynamicJ, d.LeakageJ)
		}
		sum += d.EnergyJ
	}
	if diff := res.Metrics.EnergyJ - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("chip energy %g != sum of domains %g", res.Metrics.EnergyJ, sum)
	}
}

// TestTransmetaStyleRunsAndCostsMore: the idle-through transition model
// must complete and lose more performance than execute-through under
// an action-happy controller.
func TestTransmetaStyleRunsAndCostsMore(t *testing.T) {
	mk := func(style dvfs.TransitionModel) *Result {
		cfg := DefaultConfig()
		cfg.Transitions = style
		return runBench(t, "gzip", 100000, cfg, func(p *Processor) {
			for d := 0; d < isa.NumExecDomains; d++ {
				dom := isa.ExecDomain(d)
				cc := control.DefaultConfig(dom)
				p.Attach(dom, control.NewAdaptive(cc))
			}
		})
	}
	x := mk(dvfs.DefaultTransitions())
	tm := mk(dvfs.TransmetaTransitions())
	if tm.Metrics.ExecTime <= x.Metrics.ExecTime {
		t.Errorf("Transmeta-style (%v) not slower than XScale-style (%v)",
			tm.Metrics.ExecTime, x.Metrics.ExecTime)
	}
}

// TestSyncWindowCostsTime: widening the synchronization window should
// not speed the machine up.
func TestSyncWindowCostsTime(t *testing.T) {
	narrow := DefaultConfig()
	narrow.SyncWindowPS = 0
	wide := DefaultConfig()
	wide.SyncWindowPS = 2000
	a := runBench(t, "gsm_decode", 60000, narrow, nil)
	b := runBench(t, "gsm_decode", 60000, wide, nil)
	if b.Metrics.ExecTime < a.Metrics.ExecTime {
		t.Errorf("2 ns sync window (%v) faster than zero window (%v)",
			b.Metrics.ExecTime, a.Metrics.ExecTime)
	}
}

// TestSmallerROBHurtsIPC: structural sanity of the out-of-order core.
func TestSmallerROBHurtsIPC(t *testing.T) {
	big := DefaultConfig()
	small := DefaultConfig()
	small.ROBSize = 8
	a := runBench(t, "swim", 60000, big, nil)
	b := runBench(t, "swim", 60000, small, nil)
	if b.IPC >= a.IPC {
		t.Errorf("ROB 8 IPC %.3f not below ROB 80 IPC %.3f", b.IPC, a.IPC)
	}
}

// TestQueueOccupancySampleBounds: property — every recorded occupancy
// respects the configured queue capacities.
func TestQueueOccupancySampleBounds(t *testing.T) {
	cfg := DefaultConfig()
	res := runBench(t, "art", 60000, cfg, nil)
	limits := map[string]float64{
		NameInt: float64(cfg.IntQSize),
		NameFP:  float64(cfg.FPQSize),
		NameLS:  float64(cfg.LSQueue),
	}
	for name, lim := range limits {
		for _, v := range res.QueueSamples[name] {
			if v < 0 || v > lim {
				t.Fatalf("%s occupancy %g outside [0,%g]", name, v, lim)
			}
		}
	}
}

// TestWindowProducerLookup: property-based check of the seq-indexed
// window ring.
func TestWindowProducerLookup(t *testing.T) {
	w := newWindow(64)
	f := func(seqs []uint16) bool {
		live := map[uint64]*uop{}
		for _, s := range seqs {
			seq := uint64(s%256) + 1
			u := &uop{seq: seq}
			// Evicted entries (same slot) silently disappear, which is
			// fine: the contract is lookup returns either the exact
			// uop or nil.
			w.insert(u)
			live[seq] = u
			got := w.lookup(seq)
			if got != nil && got.seq != seq {
				return false
			}
			w.remove(u)
			if w.lookup(seq) == u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestROBFIFOOrder: property — the ROB pops in push order.
func TestROBFIFOOrder(t *testing.T) {
	r := newROB(16)
	for i := 0; i < 16; i++ {
		r.push(&uop{seq: uint64(i)})
	}
	if !r.full() {
		t.Fatal("ROB should be full")
	}
	for i := 0; i < 16; i++ {
		if u := r.pop(); u.seq != uint64(i) {
			t.Fatalf("pop %d returned seq %d", i, u.seq)
		}
	}
	if !r.empty() {
		t.Fatal("ROB should be empty")
	}
}

func TestROBOverflowPanics(t *testing.T) {
	r := newROB(2)
	r.push(&uop{})
	r.push(&uop{})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	r.push(&uop{})
}

func TestUnitPoolAcquire(t *testing.T) {
	p := newUnitPool(2)
	if !p.acquire(0, 100) || !p.acquire(0, 100) {
		t.Fatal("two units should be available")
	}
	if p.acquire(50, 100) {
		t.Fatal("third acquire should fail while both busy")
	}
	if !p.acquire(100, 200) {
		t.Fatal("unit should free at its busy-until time")
	}
	if p.available(150) != 1 {
		t.Errorf("available(150) = %d, want 1", p.available(150))
	}
}

// TestControllerSeesLiveOccupancy: the sampling clock must feed the
// controller the same occupancy trajectory the sampler records.
func TestControllerSeesLiveOccupancy(t *testing.T) {
	type probe struct {
		FixedController
		seen []int
	}
	pr := &probe{FixedController: FixedController{MHz: 1000}}
	cfg := DefaultConfig()
	prof, _ := trace.ByName("gzip")
	gen, _ := trace.NewGenerator(prof, 1, 20000)
	p, _ := New(cfg)
	obs := &observingController{inner: pr}
	p.Attach(isa.DomainInt, obs)
	res, err := p.Run(gen)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.QueueSamples[NameInt]
	if len(obs.seen) != len(rec) {
		t.Fatalf("controller saw %d samples, sampler recorded %d", len(obs.seen), len(rec))
	}
	for i := range rec {
		if float64(obs.seen[i]) != rec[i] {
			t.Fatalf("sample %d: controller %d vs sampler %g", i, obs.seen[i], rec[i])
		}
	}
}

type observingController struct {
	inner Controller
	seen  []int
}

func (o *observingController) Name() string { return "probe" }
func (o *observingController) Reset()       { o.seen = nil }
func (o *observingController) Observe(now clock.Time, occ int, cur float64) (float64, bool) {
	o.seen = append(o.seen, occ)
	return o.inner.Observe(now, occ, cur)
}

// TestSplitFrontEndRuns: the 5-domain (Iyer-Marculescu) partition must
// complete, account a Fetch domain, and pay a small penalty for the
// extra synchronization boundary relative to the 4-domain machine.
func TestSplitFrontEndRuns(t *testing.T) {
	four := DefaultConfig()
	five := DefaultConfig()
	five.SplitFrontEnd = true
	a := runBench(t, "gsm_decode", 60000, four, nil)
	b := runBench(t, "gsm_decode", 60000, five, nil)
	if _, ok := b.Domains[NameFetch]; !ok {
		t.Fatal("split machine missing Fetch domain stats")
	}
	if _, ok := a.Domains[NameFetch]; ok {
		t.Fatal("unified machine has a Fetch domain")
	}
	if b.Metrics.Instructions != 60000 {
		t.Fatalf("split machine retired %d", b.Metrics.Instructions)
	}
	// The extra boundary must not make the machine faster.
	if b.Metrics.ExecTime < a.Metrics.ExecTime {
		t.Errorf("5-domain machine (%v) faster than 4-domain (%v)",
			b.Metrics.ExecTime, a.Metrics.ExecTime)
	}
	// Front-end energy is split, not duplicated: Fetch + FrontEnd of
	// the split machine should be in the same ballpark as the unified
	// front end (the run is slightly longer, so allow 25%).
	unified := a.Domains[NameFrontEnd].EnergyJ
	split := b.Domains[NameFrontEnd].EnergyJ + b.Domains[NameFetch].EnergyJ
	if split > unified*1.25 || split < unified*0.75 {
		t.Errorf("front-end energy: unified %g vs split %g", unified, split)
	}
}

// TestSplitFrontEndWithAdaptiveControl: DVFS control must work
// unchanged on the 5-domain machine.
func TestSplitFrontEndWithAdaptiveControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitFrontEnd = true
	res := runBench(t, "gzip", 100000, cfg, func(p *Processor) {
		for d := 0; d < isa.NumExecDomains; d++ {
			p.Attach(isa.ExecDomain(d), control.NewAdaptive(control.DefaultConfig(isa.ExecDomain(d))))
		}
	})
	if res.Domains[NameFP].MeanFreqMHz > 900 {
		t.Errorf("idle FP domain stayed at %.0f MHz under adaptive control", res.Domains[NameFP].MeanFreqMHz)
	}
}

// TestStoreForwardingHappensAndHelps: forwarded loads occur on
// store-then-load address reuse and never hurt performance.
func TestStoreForwardingHappensAndHelps(t *testing.T) {
	on := DefaultConfig()
	off := DefaultConfig()
	off.StoreForwarding = false
	a := runBench(t, "g721_encode", 80000, on, nil)
	b := runBench(t, "g721_encode", 80000, off, nil)
	if a.ForwardedLoads == 0 {
		t.Error("no loads forwarded with forwarding on")
	}
	if b.ForwardedLoads != 0 {
		t.Error("loads forwarded with forwarding off")
	}
	if a.Metrics.ExecTime > b.Metrics.ExecTime+b.Metrics.ExecTime/50 {
		t.Errorf("forwarding slowed the machine: %v vs %v", a.Metrics.ExecTime, b.Metrics.ExecTime)
	}
}

// TestPrefetchCutsMissRateOnStreams: the next-line prefetcher must
// reduce the L1D miss rate on a strided FP workload.
func TestPrefetchCutsMissRateOnStreams(t *testing.T) {
	off := DefaultConfig()
	on := DefaultConfig()
	on.Prefetch = true
	a := runBench(t, "swim", 80000, off, nil)
	b := runBench(t, "swim", 80000, on, nil)
	if b.L1DMissRate >= a.L1DMissRate {
		t.Errorf("prefetch did not cut miss rate: %.3f vs %.3f", b.L1DMissRate, a.L1DMissRate)
	}
	if b.Metrics.ExecTime >= a.Metrics.ExecTime {
		t.Errorf("prefetch did not help swim: %v vs %v", b.Metrics.ExecTime, a.Metrics.ExecTime)
	}
}

// TestRegulatorEnergyCharged: the optional per-transition regulator
// cost must raise total energy when enabled.
func TestRegulatorEnergyCharged(t *testing.T) {
	free := DefaultConfig()
	costly := DefaultConfig()
	costly.Transitions.EnergyPerTransitionJ = 1e-6
	attach := func(p *Processor) {
		for d := 0; d < isa.NumExecDomains; d++ {
			p.Attach(isa.ExecDomain(d), control.NewAdaptive(control.DefaultConfig(isa.ExecDomain(d))))
		}
	}
	a := runBench(t, "gsm_decode", 60000, free, attach)
	b := runBench(t, "gsm_decode", 60000, costly, attach)
	transitions := 0
	for _, name := range []string{NameInt, NameFP, NameLS} {
		transitions += b.Domains[name].Transitions
	}
	if transitions == 0 {
		t.Fatal("no transitions to charge")
	}
	wantExtra := 1e-6 * float64(transitions)
	extra := b.Metrics.EnergyJ - a.Metrics.EnergyJ
	if extra < wantExtra*0.9 {
		t.Errorf("regulator cost not charged: extra %.3g J, want >= %.3g J", extra, wantExtra)
	}
}

// TestRetiredByClassSumsToTotal: the per-class retirement breakdown
// must account for every retired instruction.
func TestRetiredByClassSumsToTotal(t *testing.T) {
	res := runBench(t, "mesa", 30000, DefaultConfig(), nil)
	var sum int64
	for _, n := range res.RetiredByClass {
		sum += n
	}
	if sum != res.Metrics.Instructions {
		t.Errorf("class breakdown sums to %d, want %d", sum, res.Metrics.Instructions)
	}
	if res.RetiredByClass["fadd"] == 0 {
		t.Error("mesa retired no FP adds")
	}
}

// TestDeepSleepCutsIdleDomainEnergy: with the FP unit idle on integer
// code, domain sleep must cut FP dynamic energy well below regular
// clock gating, without touching correctness or timing.
func TestDeepSleepCutsIdleDomainEnergy(t *testing.T) {
	awake := DefaultConfig()
	asleep := DefaultConfig()
	asleep.DeepSleep = true
	a := runBench(t, "gzip", 60000, awake, nil)
	b := runBench(t, "gzip", 60000, asleep, nil)
	if b.Metrics.Instructions != a.Metrics.Instructions {
		t.Fatal("deep sleep changed retirement")
	}
	if b.Metrics.ExecTime != a.Metrics.ExecTime {
		t.Errorf("deep sleep changed timing: %v vs %v", b.Metrics.ExecTime, a.Metrics.ExecTime)
	}
	fa := a.Domains[NameFP].DynamicJ
	fb := b.Domains[NameFP].DynamicJ
	if fb >= fa/2 {
		t.Errorf("FP dynamic energy under sleep = %g, want well below %g", fb, fa)
	}
	// Busy domains are barely affected.
	ia, ib := a.Domains[NameInt].DynamicJ, b.Domains[NameInt].DynamicJ
	if ib < ia*0.9 {
		t.Errorf("INT dynamic energy dropped too much under sleep: %g vs %g", ib, ia)
	}
}

// TestControlledDispatchDomain: with the 5-domain partition and
// dispatch-domain DVFS, a low-IPC workload lets the dispatch domain
// slow down (the fetch queue rarely backs up) and save front-end
// energy, at a bounded performance cost.
func TestControlledDispatchDomain(t *testing.T) {
	fixed := DefaultConfig()
	fixed.SplitFrontEnd = true
	ctrl := DefaultConfig()
	ctrl.SplitFrontEnd = true
	ctrl.ControlFrontEnd = true

	attach := func(p *Processor) {
		cfg := control.DefaultConfig(isa.DomainFP) // qref 4 on a 16-entry queue
		p.AttachFrontEnd(control.NewAdaptive(cfg))
	}
	a := runBench(t, "mcf", 80000, fixed, nil)
	b := runBench(t, "mcf", 80000, ctrl, attach)
	if b.Domains[NameFrontEnd].MeanFreqMHz >= a.Domains[NameFrontEnd].MeanFreqMHz-50 {
		t.Errorf("controlled dispatch domain did not slow on a memory-bound workload: %.0f vs %.0f MHz",
			b.Domains[NameFrontEnd].MeanFreqMHz, a.Domains[NameFrontEnd].MeanFreqMHz)
	}
	if b.Domains[NameFrontEnd].EnergyJ >= a.Domains[NameFrontEnd].EnergyJ {
		t.Errorf("no front-end energy saved: %g vs %g",
			b.Domains[NameFrontEnd].EnergyJ, a.Domains[NameFrontEnd].EnergyJ)
	}
	if slow := float64(b.Metrics.ExecTime)/float64(a.Metrics.ExecTime) - 1; slow > 0.25 {
		t.Errorf("dispatch control cost %.1f%% performance", 100*slow)
	}
	if len(b.QueueSamples["FetchQ"]) == 0 {
		t.Error("fetch-queue occupancy not sampled")
	}
}

// TestControlFrontEndValidation: the flag combinations are enforced.
func TestControlFrontEndValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ControlFrontEnd = true // without SplitFrontEnd
	if _, err := New(cfg); err == nil {
		t.Error("ControlFrontEnd without SplitFrontEnd accepted")
	}
	ok := DefaultConfig()
	p, err := New(ok)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AttachFrontEnd on a non-ControlFrontEnd machine did not panic")
		}
	}()
	p.AttachFrontEnd(&FixedController{MHz: 1000})
}
