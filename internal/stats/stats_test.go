package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var r Running
		for i, v := range raw {
			xs[i] = float64(v)
			r.Add(xs[i])
		}
		return almost(r.Mean(), Mean(xs), 1e-6*(1+math.Abs(Mean(xs)))) &&
			almost(r.Variance(), Variance(xs), 1e-4*(1+Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRunningMinMax(t *testing.T) {
	var r Running
	for _, x := range []float64{3, -1, 7, 2} {
		r.Add(x)
	}
	if r.Min() != -1 || r.Max() != 7 || r.N() != 4 {
		t.Errorf("min/max/n = %g/%g/%d, want -1/7/4", r.Min(), r.Max(), r.N())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.N() != 0 {
		t.Error("empty Running should report zeros")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %g, want 4", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almost(got, 10, 1e-9) {
		t.Errorf("GeoMean(1,100) = %g, want 10", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almost(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	// Must not mutate the input.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestDetrendZeroMean(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return almost(Mean(Detrend(xs)), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDownsample(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := Downsample(xs, 2)
	want := []float64{1.5, 3.5, 5}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Errorf("got[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if got := Downsample(xs, 1); &got[0] == &xs[0] {
		t.Error("Downsample(k=1) must copy")
	}
}

func TestDownsamplePreservesMean(t *testing.T) {
	f := func(raw []int8, k uint8) bool {
		if len(raw) == 0 {
			return true
		}
		kk := int(k%7) + 1
		if len(raw)%kk != 0 {
			return true // only exact groupings preserve the mean exactly
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return almost(Mean(Downsample(xs, kk)), Mean(xs), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range = %d,%d, want 1,2", under, over)
	}
	if h.Counts[0] != 2 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bins = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if !almost(h.BinCenter(0), 0.5, 1e-12) || !almost(h.BinCenter(9), 9.5, 1e-12) {
		t.Error("bad bin centers")
	}
}

func TestHistogramPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(1, 1, 4)
}
