// Package stats provides the small statistical toolkit shared by the
// simulator, the spectral analyzer, and the experiment harness: running
// moments, series containers, histograms, and simple aggregations.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean and variance online using Welford's
// algorithm, which is numerically stable for long simulations.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 for fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 { return r.max }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of strictly positive values.
// Non-positive inputs yield NaN, mirroring the mathematical domain.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It copies xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	pos := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Detrend returns xs with its mean removed.
func Detrend(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x - m
	}
	return out
}

// Downsample reduces xs by averaging consecutive groups of k samples.
// A trailing partial group is averaged over its actual length.
func Downsample(xs []float64, k int) []float64 {
	if k <= 1 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, 0, (len(xs)+k-1)/k)
	for i := 0; i < len(xs); i += k {
		j := i + k
		if j > len(xs) {
			j = len(xs)
		}
		out = append(out, Mean(xs[i:j]))
	}
	return out
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	under  int64
	over   int64
	total  int64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram spec [%g,%g) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// OutOfRange returns the number of observations below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
