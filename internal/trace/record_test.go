package trace

import (
	"sync"
	"testing"
)

// TestRecordedReplaysGeneratorExactly asserts the core shared-trace
// contract: recording a generator and replaying it yields the exact
// instruction sequence the generator would have produced live.
func TestRecordedReplaysGeneratorExactly(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "epic_decode"} {
		prof, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		const seed, total = 12, 20000
		rec, err := RecordProfile(prof, seed, total)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Len() != total {
			t.Fatalf("%s: recorded %d instructions, want %d", name, rec.Len(), total)
		}
		if rec.Name() != prof.Name {
			t.Fatalf("recorded name %q, want %q", rec.Name(), prof.Name)
		}

		g, err := NewGenerator(prof, seed, total)
		if err != nil {
			t.Fatal(err)
		}
		rep := rec.Replay()
		for i := int64(0); ; i++ {
			want, wok := g.Next()
			got, gok := rep.Next()
			if wok != gok {
				t.Fatalf("%s: stream length mismatch at %d (gen %v, replay %v)", name, i, wok, gok)
			}
			if !wok {
				break
			}
			if want != got {
				t.Fatalf("%s: instruction %d differs:\n generator %+v\n replayer  %+v", name, i, want, got)
			}
		}
	}
}

// TestReplayerCursorsAreIndependent asserts concurrent cursors over
// one shared recording each see the full stream from the start.
func TestReplayerCursorsAreIndependent(t *testing.T) {
	prof, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordProfile(prof, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	first, ok := rec.Replay().Next()
	if !ok {
		t.Fatal("empty recording")
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := rec.Replay()
			in, ok := rep.Next()
			if !ok || in != first {
				t.Errorf("cursor did not start at the first instruction")
				return
			}
			n := int64(1)
			for {
				if _, ok := rep.Next(); !ok {
					break
				}
				n++
			}
			if n != rec.Len() {
				t.Errorf("cursor saw %d instructions, want %d", n, rec.Len())
			}
		}()
	}
	wg.Wait()
}

// TestReplayerNextDoesNotAllocate locks in the zero-copy claim: the
// replay hot path must not allocate per instruction.
func TestReplayerNextDoesNotAllocate(t *testing.T) {
	prof, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordProfile(prof, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Replay()
	avg := testing.AllocsPerRun(5000, func() {
		if _, ok := rep.Next(); !ok {
			t.Fatal("replayer ran dry mid-measurement")
		}
	})
	if avg != 0 {
		t.Errorf("Replayer.Next allocates %.2f objects per call, want 0", avg)
	}
}

// TestRecordStopsAtSourceEnd asserts Record drains exactly what the
// source offers, independent of the capacity hint.
func TestRecordStopsAtSourceEnd(t *testing.T) {
	prof, err := ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(prof, 7, 333)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record(g, 10_000) // oversized hint
	if rec.Len() != 333 {
		t.Fatalf("recorded %d instructions, want 333", rec.Len())
	}
	if rec.Bytes() <= 0 {
		t.Error("Bytes() reported a non-positive size")
	}
}
