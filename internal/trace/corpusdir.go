package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mcddvfs/internal/detfs"
)

// A corpus directory is a set of chunked v2 trace files plus a
// manifest that pins everything a matrix run needs to resolve
// benchmarks without generating traces: which benchmarks exist, which
// file holds each stream, the harness seed and instruction count the
// streams were recorded at, a SHA-256 of every file, and the full
// synthetic profile each stream came from (so replay against a corpus
// does not depend on the binary's bundled profile table).
//
// The manifest — not a directory listing — is the source of truth for
// membership and order: members are sorted by benchmark name and
// OpenCorpus rejects a manifest that is not, so a matrix resolved from
// a corpus is deterministic without any filesystem enumeration on the
// replay path (dettaint stays clean). Only VerifyCorpus lists the
// directory, through detfs.SortedNames, to catch orphan files.

// CorpusManifestName is the manifest file every corpus directory
// carries.
const CorpusManifestName = "manifest.json"

// CorpusMemberExt is the extension of chunked member trace files.
const CorpusMemberExt = ".mcdc"

// CorpusMember describes one benchmark stream in a corpus.
type CorpusMember struct {
	// Benchmark is the workload name, equal to Profile.Name.
	Benchmark string `json:"benchmark"`
	// File is the member's chunked trace file, relative to the corpus
	// directory (no path separators allowed).
	File string `json:"file"`
	// SHA256 is the hex digest of the file's bytes.
	SHA256 string `json:"sha256"`
	// Profile is the full synthetic profile the stream was recorded
	// from, embedded so replay needs nothing from the profile table.
	Profile Profile `json:"profile"`
}

// CorpusManifest is the manifest.json schema.
type CorpusManifest struct {
	// FormatVersion is the chunked trace format version of the members.
	FormatVersion int `json:"format_version"`
	// Seed is the user-facing harness seed; member streams were
	// recorded with the generator seeded at StreamSeed(Seed).
	Seed int64 `json:"seed"`
	// Instructions is the length of every member stream.
	Instructions int64 `json:"instructions"`
	// Members are the streams, sorted by Benchmark.
	Members []CorpusMember `json:"members"`
}

// EmitCorpusMember records profile prof for insts instructions at
// harness seed seed and writes it as a chunked member file in dir,
// hashing the bytes as they are written. The file is published
// atomically (temp file + rename). It returns the manifest entry.
func EmitCorpusMember(dir string, prof Profile, seed, insts int64, chunkInsts int) (CorpusMember, error) {
	if err := checkMemberName(prof.Name); err != nil {
		return CorpusMember{}, err
	}
	gen, err := NewGenerator(prof, StreamSeed(seed), insts)
	if err != nil {
		return CorpusMember{}, err
	}
	file := prof.Name + CorpusMemberExt
	tmp, err := os.CreateTemp(dir, file+".tmp*")
	if err != nil {
		return CorpusMember{}, err
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	_, err = WriteChunked(io.MultiWriter(tmp, h), gen, insts, chunkInsts)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return CorpusMember{}, fmt.Errorf("trace: emitting corpus member %q: %w", prof.Name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, file)); err != nil {
		return CorpusMember{}, err
	}
	return CorpusMember{
		Benchmark: prof.Name,
		File:      file,
		SHA256:    hex.EncodeToString(h.Sum(nil)),
		Profile:   prof,
	}, nil
}

// WriteCorpusManifest sorts the manifest's members, validates it, and
// writes it atomically to dir.
func WriteCorpusManifest(dir string, man CorpusManifest) error {
	sort.Slice(man.Members, func(i, j int) bool {
		return man.Members[i].Benchmark < man.Members[j].Benchmark
	})
	if err := validateManifest(&man); err != nil {
		return err
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(dir, CorpusManifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	_, err = tmp.Write(b)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, CorpusManifestName))
}

// checkMemberName rejects benchmark names that cannot be member file
// stems.
func checkMemberName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("trace: benchmark name %q is not a valid corpus member name", name)
	}
	return nil
}

// validateManifest checks the structural invariants OpenCorpus relies
// on.
func validateManifest(man *CorpusManifest) error {
	if man.FormatVersion != chunkedVersion {
		return fmt.Errorf("trace: corpus format version %d, want %d", man.FormatVersion, chunkedVersion)
	}
	if man.Instructions <= 0 {
		return fmt.Errorf("trace: corpus declares non-positive instruction count %d", man.Instructions)
	}
	if len(man.Members) == 0 {
		return fmt.Errorf("trace: corpus has no members")
	}
	for i := range man.Members {
		m := &man.Members[i]
		if err := checkMemberName(m.Benchmark); err != nil {
			return err
		}
		if i > 0 && man.Members[i-1].Benchmark >= m.Benchmark {
			return fmt.Errorf("trace: corpus members not sorted by benchmark (%q before %q)", man.Members[i-1].Benchmark, m.Benchmark)
		}
		if m.File == "" || strings.ContainsAny(m.File, "/\\") {
			return fmt.Errorf("trace: corpus member %q: bad file name %q", m.Benchmark, m.File)
		}
		if m.Profile.Name != m.Benchmark {
			return fmt.Errorf("trace: corpus member %q embeds profile %q", m.Benchmark, m.Profile.Name)
		}
		if err := m.Profile.Validate(); err != nil {
			return fmt.Errorf("trace: corpus member %q: %w", m.Benchmark, err)
		}
	}
	return nil
}

// Corpus is an opened corpus directory: the parsed, validated
// manifest. Member streams open lazily via Open.
type Corpus struct {
	dir    string
	man    CorpusManifest
	byName map[string]*CorpusMember
}

// OpenCorpus reads and validates dir's manifest. It touches only the
// manifest file — member files are checked when opened — and never
// lists the directory.
func OpenCorpus(dir string) (*Corpus, error) {
	b, err := os.ReadFile(filepath.Join(dir, CorpusManifestName))
	if err != nil {
		return nil, fmt.Errorf("trace: opening corpus: %w", err)
	}
	var man CorpusManifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("trace: corpus manifest %s: %w", filepath.Join(dir, CorpusManifestName), err)
	}
	if err := validateManifest(&man); err != nil {
		return nil, err
	}
	c := &Corpus{dir: dir, man: man, byName: make(map[string]*CorpusMember, len(man.Members))}
	for i := range man.Members {
		c.byName[man.Members[i].Benchmark] = &man.Members[i]
	}
	return c, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// Seed returns the harness seed the corpus was recorded at.
func (c *Corpus) Seed() int64 { return c.man.Seed }

// Instructions returns the per-member stream length.
func (c *Corpus) Instructions() int64 { return c.man.Instructions }

// Benchmarks returns the member benchmark names in manifest (sorted)
// order.
func (c *Corpus) Benchmarks() []string {
	names := make([]string, len(c.man.Members))
	for i := range c.man.Members {
		names[i] = c.man.Members[i].Benchmark
	}
	return names
}

// Member returns the manifest entry for a benchmark.
func (c *Corpus) Member(bench string) (CorpusMember, bool) {
	m, ok := c.byName[bench]
	if !ok {
		return CorpusMember{}, false
	}
	return *m, true
}

// Profile returns the embedded profile for a benchmark.
func (c *Corpus) Profile(bench string) (Profile, error) {
	m, ok := c.byName[bench]
	if !ok {
		return Profile{}, fmt.Errorf("trace: corpus has no member %q", bench)
	}
	return m.Profile, nil
}

// Open opens a member's chunked stream with the given window and
// cross-checks the file's own header against the manifest.
func (c *Corpus) Open(bench string, window int) (*ChunkedFile, error) {
	m, ok := c.byName[bench]
	if !ok {
		return nil, fmt.Errorf("trace: corpus has no member %q", bench)
	}
	cf, err := OpenChunkedFile(filepath.Join(c.dir, m.File), window)
	if err != nil {
		return nil, err
	}
	if cf.Name() != bench || cf.Count() != c.man.Instructions {
		cf.Close()
		return nil, fmt.Errorf("trace: corpus member %q: file %s holds %q (%d instructions), manifest declares %q (%d)",
			bench, m.File, cf.Name(), cf.Count(), bench, c.man.Instructions)
	}
	return cf, nil
}

// VerifyCorpus is the full integrity pass: it re-hashes every member
// file against its manifest SHA-256, decodes every chunk (CRC
// included) through a bounded window, and scans the directory for
// member-shaped files the manifest does not know about. This is the
// one corpus path that lists the directory; the listing goes through
// detfs.SortedNames.
func VerifyCorpus(dir string) error {
	c, err := OpenCorpus(dir)
	if err != nil {
		return err
	}
	for i := range c.man.Members {
		m := &c.man.Members[i]
		if err := verifyMemberHash(filepath.Join(dir, m.File), m.SHA256); err != nil {
			return fmt.Errorf("trace: corpus member %q: %w", m.Benchmark, err)
		}
		cf, err := c.Open(m.Benchmark, 0)
		if err != nil {
			return err
		}
		err = cf.VerifyChunks()
		cf.Close()
		if err != nil {
			return err
		}
	}
	names, err := detfs.SortedNames(dir)
	if err != nil {
		return err
	}
	known := make(map[string]bool, len(c.man.Members))
	for i := range c.man.Members {
		known[c.man.Members[i].File] = true
	}
	var orphans []string
	for _, n := range names {
		if strings.HasSuffix(n, CorpusMemberExt) && !known[n] {
			orphans = append(orphans, n)
		}
	}
	if len(orphans) > 0 {
		return fmt.Errorf("trace: corpus holds trace files the manifest does not list: %s", strings.Join(orphans, ", "))
	}
	return nil
}

// verifyMemberHash re-hashes a member file and compares digests.
func verifyMemberHash(path, want string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != want {
		return fmt.Errorf("checksum mismatch: file %s hashes to %s, manifest says %s", path, got, want)
	}
	return nil
}
