package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mcddvfs/internal/isa"
)

// Source is a stream of dynamic instructions. Generator produces them
// synthetically; Reader replays a serialized trace. The simulator
// consumes either.
type Source interface {
	// Next returns the next instruction; ok is false at end of stream.
	Next() (in isa.Inst, ok bool)
	// Name identifies the workload for reports.
	Name() string
}

// Name implements Source for Generator.
func (g *Generator) Name() string { return g.prof.Name }

var _ Source = (*Generator)(nil)

// Trace file format: a fixed header followed by fixed-width records.
//
//	magic   [4]byte  "MCDT"
//	version uint32   1
//	count   int64    number of instructions
//	nameLen uint16 + name bytes
//	records: PC u64 | Class u8 | flags u8 | Dep1 u32 | Dep2 u32 |
//	         Target u64 | Addr u64
const (
	traceMagic   = "MCDT"
	traceVersion = 1
)

// Write serializes every remaining instruction of src to w and returns
// the number written. The count must be known up front, so Write takes
// it explicitly (a Generator knows its Remaining).
func Write(w io.Writer, src Source, count int64) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(traceVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, count); err != nil {
		return 0, err
	}
	name := src.Name()
	if len(name) > 1<<16-1 {
		return 0, fmt.Errorf("trace: name too long")
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return 0, err
	}

	var rec [34]byte
	var n int64
	for n < count {
		in, ok := src.Next()
		if !ok {
			return n, fmt.Errorf("trace: source ran dry at %d of %d instructions", n, count)
		}
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		rec[8] = uint8(in.Class)
		if in.Taken {
			rec[9] = 1
		} else {
			rec[9] = 0
		}
		binary.LittleEndian.PutUint32(rec[10:], in.Dep1)
		binary.LittleEndian.PutUint32(rec[14:], in.Dep2)
		binary.LittleEndian.PutUint64(rec[18:], in.Target)
		binary.LittleEndian.PutUint64(rec[26:], in.Addr)
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// Reader replays a serialized trace as a Source.
type Reader struct {
	r     *bufio.Reader
	name  string
	count int64
	read  int64
	err   error
}

// NewReader validates the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var count int64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: negative instruction count %d", count)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	return &Reader{r: br, name: string(name), count: count}, nil
}

// Name implements Source.
func (t *Reader) Name() string { return t.name }

// Count returns the total instruction count declared in the header.
func (t *Reader) Count() int64 { return t.count }

// Err returns the first stream error encountered by Next.
func (t *Reader) Err() error { return t.err }

// Next implements Source.
func (t *Reader) Next() (isa.Inst, bool) {
	if t.err != nil || t.read >= t.count {
		return isa.Inst{}, false
	}
	var rec [34]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		t.err = fmt.Errorf("trace: truncated at instruction %d: %w", t.read, err)
		return isa.Inst{}, false
	}
	t.read++
	in := isa.Inst{
		PC:     binary.LittleEndian.Uint64(rec[0:]),
		Class:  isa.Class(rec[8]),
		Taken:  rec[9] != 0,
		Dep1:   binary.LittleEndian.Uint32(rec[10:]),
		Dep2:   binary.LittleEndian.Uint32(rec[14:]),
		Target: binary.LittleEndian.Uint64(rec[18:]),
		Addr:   binary.LittleEndian.Uint64(rec[26:]),
	}
	if !in.Class.Valid() {
		t.err = fmt.Errorf("trace: invalid class %d at instruction %d", rec[8], t.read-1)
		return isa.Inst{}, false
	}
	return in, true
}

var _ Source = (*Reader)(nil)
