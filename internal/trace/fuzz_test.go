package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic and must either reject the stream or produce only valid
// instructions.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid small trace, a truncation of it, garbage.
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 20)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen, 20); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MCDT garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		count := 0
		for count < 1<<16 {
			in, ok := r.Next()
			if !ok {
				break
			}
			if !in.Class.Valid() {
				t.Fatalf("reader produced invalid class %d", in.Class)
			}
			count++
		}
	})
}

// FuzzChunked feeds arbitrary bytes to the chunked-format (v2)
// decoder: open must reject malformed headers, footers, and indexes
// with clean errors; a file that opens must replay either to a clean
// end or to a stream error — never a panic, an invalid instruction,
// or an unbounded allocation (the maxChunkInstructions cap).
func FuzzChunked(f *testing.F) {
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 300)
	var buf bytes.Buffer
	if _, err := WriteChunked(&buf, gen, 300, 64); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])     // truncated footer
	f.Add(valid[:len(valid)*2/3])   // truncated index
	f.Add(append([]byte(nil), valid[len(valid)/4:]...)) // missing header
	f.Add([]byte("MCDCgarbageXDCM"))
	f.Add([]byte{})
	// Single flipped bytes in each region: header, payload, index.
	for _, off := range []int{5, 30, len(valid) - 20} {
		b := append([]byte(nil), valid...)
		b[off] ^= 0xFF
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := OpenChunked(bytes.NewReader(data), int64(len(data)), 2)
		if err != nil {
			return
		}
		cur := c.Replay()
		count := int64(0)
		for count < 1<<17 {
			in, ok := cur.Next()
			if !ok {
				break
			}
			if !in.Class.Valid() {
				t.Fatalf("chunked replayer produced invalid class %d", in.Class)
			}
			count++
		}
		if cur.Err() == nil && count < c.Count() && count < 1<<17 {
			t.Fatalf("stream ended at %d of %d with no error", count, c.Count())
		}
		if peak := c.PeakResidentBytes(); peak > c.WindowBytes() {
			t.Fatalf("peak %d exceeds window bound %d", peak, c.WindowBytes())
		}
	})
}
