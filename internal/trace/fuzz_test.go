package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic and must either reject the stream or produce only valid
// instructions.
func FuzzReader(f *testing.F) {
	// Seed corpus: a valid small trace, a truncation of it, garbage.
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 20)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen, 20); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("MCDT garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		count := 0
		for count < 1<<16 {
			in, ok := r.Next()
			if !ok {
				break
			}
			if !in.Class.Valid() {
				t.Fatalf("reader produced invalid class %d", in.Class)
			}
			count++
		}
	})
}
