package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcddvfs/internal/isa"
)

// chunkedBytes serializes a profile's stream in the chunked v2 format.
func chunkedBytes(t *testing.T, bench string, seed, insts int64, chunkInsts int) []byte {
	t.Helper()
	prof, err := ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(prof, seed, insts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := WriteChunked(&buf, gen, insts, chunkInsts)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteChunked reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestChunkedRoundTripBitIdentical is the format's core differential:
// a streamed chunked replay must emit exactly the instructions the
// generator (and the in-memory Recorded replay) emits, across chunk
// boundaries and a short final chunk.
func TestChunkedRoundTripBitIdentical(t *testing.T) {
	const insts, chunk = 10_000, 1 << 9 // 19 full chunks + a short one
	data := chunkedBytes(t, "gzip", 7, insts, chunk)
	c, err := OpenChunked(bytes.NewReader(data), int64(len(data)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "gzip" || c.Count() != insts || c.ChunkInstructions() != chunk {
		t.Fatalf("header round trip: name=%q count=%d chunkInsts=%d", c.Name(), c.Count(), c.ChunkInstructions())
	}
	if want := int(insts+chunk-1) / chunk; c.Chunks() != want {
		t.Fatalf("got %d chunks, want %d", c.Chunks(), want)
	}

	prof, _ := ByName("gzip")
	rec, err := RecordProfile(prof, 7, insts)
	if err != nil {
		t.Fatal(err)
	}
	mem, stream := rec.Replay(), c.Replay()
	for i := 0; i < insts; i++ {
		want, wok := mem.Next()
		got, gok := stream.Next()
		if !wok || !gok {
			t.Fatalf("stream ended early at %d (mem ok=%v, chunked ok=%v, err=%v)", i, wok, gok, stream.Err())
		}
		if got != want {
			t.Fatalf("instruction %d diverges:\n  recorded: %+v\n  chunked:  %+v", i, want, got)
		}
	}
	if _, ok := stream.Next(); ok || stream.Err() != nil {
		t.Fatalf("stream did not end cleanly (err=%v)", stream.Err())
	}
}

// TestChunkedWindowBoundsMemory drives several concurrent-style
// cursors across a many-chunk trace and asserts peak decoded residency
// never exceeds the window bound.
func TestChunkedWindowBoundsMemory(t *testing.T) {
	const insts, chunk, window = 20_000, 1 << 8, 3
	data := chunkedBytes(t, "swim", 3, insts, chunk)
	c, err := OpenChunked(bytes.NewReader(data), int64(len(data)), window)
	if err != nil {
		t.Fatal(err)
	}
	cursors := []*ChunkedReplayer{c.Replay(), c.Replay(), c.Replay()}
	// Interleave unevenly so cursors sit in different chunks.
	for done := 0; done < len(cursors); {
		done = 0
		for i, cur := range cursors {
			for j := 0; j <= i*40; j++ {
				if _, ok := cur.Next(); !ok {
					done++
					if cur.Err() != nil {
						t.Fatal(cur.Err())
					}
					break
				}
			}
		}
	}
	if raw := int64(insts) * instBytes; c.WindowBytes() >= raw {
		t.Fatalf("test is vacuous: window %d B not smaller than whole trace %d B", c.WindowBytes(), raw)
	}
	if peak := c.PeakResidentBytes(); peak > c.WindowBytes() {
		t.Fatalf("peak resident %d B exceeds window bound %d B", peak, c.WindowBytes())
	}
	if c.Loads() < int64(c.Chunks()) {
		t.Fatalf("only %d loads for %d chunks?", c.Loads(), c.Chunks())
	}
}

// TestChunkedRejectsCorruption flips bytes in each structural region
// and expects a clean error — at open for header/index/footer damage,
// at replay for payload damage.
func TestChunkedRejectsCorruption(t *testing.T) {
	const insts, chunk = 4000, 1 << 9
	data := chunkedBytes(t, "gcc", 5, insts, chunk)

	open := func(b []byte) (*Chunked, error) {
		return OpenChunked(bytes.NewReader(b), int64(len(b)), 2)
	}
	replayAll := func(c *Chunked) error {
		cur := c.Replay()
		for {
			if _, ok := cur.Next(); !ok {
				return cur.Err()
			}
		}
	}

	if _, err := open(data[:len(data)-7]); err == nil {
		t.Error("truncated footer accepted")
	}
	if _, err := open(data[:len(data)/3]); err == nil {
		t.Error("truncated file accepted")
	}

	flip := func(off int) []byte {
		b := append([]byte(nil), data...)
		b[off] ^= 0x40
		return b
	}
	if _, err := open(flip(0)); err == nil {
		t.Error("bad magic accepted")
	}
	// Index entry damage (index sits right before the 16-byte footer).
	if _, err := open(flip(len(data) - 30)); err == nil {
		t.Error("corrupt index accepted")
	}
	// Payload damage: open succeeds (lazy CRC), replay must fail.
	c, err := open(flip(chunkedHeaderMin + len("gcc") + 10))
	if err != nil {
		t.Fatalf("payload corruption rejected at open (should be lazy): %v", err)
	}
	if err := replayAll(c); err == nil || !strings.Contains(err.Error(), "chunk") {
		t.Errorf("corrupt payload replayed without error (err=%v)", err)
	}
	if err := c.VerifyChunks(); err == nil {
		t.Error("VerifyChunks passed a corrupt payload")
	}
}

// TestChunkedRejectsInvalidClass hand-builds a file whose payload CRC
// is valid but whose meta column carries an out-of-range class: the
// replayer must error, never hand the simulator a bad instruction.
func TestChunkedRejectsInvalidClass(t *testing.T) {
	bad := badClassSource{n: 4}
	var buf bytes.Buffer
	if _, err := WriteChunked(&buf, &bad, 4, 8); err != nil {
		t.Fatal(err)
	}
	// WriteChunked masks nothing: the invalid class byte is in the
	// payload with a CRC computed over it.
	c, err := OpenChunked(bytes.NewReader(buf.Bytes()), int64(buf.Len()), 1)
	if err != nil {
		t.Fatal(err)
	}
	cur := c.Replay()
	for {
		in, ok := cur.Next()
		if !ok {
			break
		}
		if !in.Class.Valid() {
			t.Fatalf("replayer emitted invalid class %d", in.Class)
		}
	}
	if cur.Err() == nil || !strings.Contains(cur.Err().Error(), "invalid class") {
		t.Fatalf("want invalid-class error, got %v", cur.Err())
	}
}

// badClassSource emits instructions whose class is out of range.
type badClassSource struct{ n int }

func (s *badClassSource) Name() string { return "bad" }
func (s *badClassSource) Next() (isa.Inst, bool) {
	if s.n == 0 {
		return isa.Inst{}, false
	}
	s.n--
	return isa.Inst{PC: 64, Class: isa.Class(isa.NumClasses + 3)}, true
}

// TestCorpusDirRoundTrip exercises the directory layer: emit members,
// write a manifest, reopen, verify, stream.
func TestCorpusDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const seed, insts = 4, 3000
	man := CorpusManifest{FormatVersion: 2, Seed: seed, Instructions: insts}
	for _, bench := range []string{"swim", "gzip", "adpcm_encode"} {
		prof, err := ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		m, err := EmitCorpusMember(dir, prof, seed, insts, 1<<8)
		if err != nil {
			t.Fatal(err)
		}
		man.Members = append(man.Members, m)
	}
	if err := WriteCorpusManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCorpus(dir); err != nil {
		t.Fatal(err)
	}

	c, err := OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []string{"adpcm_encode", "gzip", "swim"}
	if got := c.Benchmarks(); len(got) != 3 || got[0] != wantOrder[0] || got[1] != wantOrder[1] || got[2] != wantOrder[2] {
		t.Fatalf("benchmarks not in sorted manifest order: %v", got)
	}
	if c.Seed() != seed || c.Instructions() != insts {
		t.Fatalf("manifest round trip: seed=%d insts=%d", c.Seed(), c.Instructions())
	}

	// A member stream equals the generator at the corpus stream seed.
	cf, err := c.Open("gzip", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	prof, _ := c.Profile("gzip")
	gen, err := NewGenerator(prof, StreamSeed(seed), insts)
	if err != nil {
		t.Fatal(err)
	}
	cur := cf.Replay()
	for i := 0; i < insts; i++ {
		want, _ := gen.Next()
		got, ok := cur.Next()
		if !ok || got != want {
			t.Fatalf("member stream diverges from generator at %d (ok=%v)", i, ok)
		}
	}
}

// TestCorpusVerifyCatchesDamage mirrors diskcache's integrity tests:
// a flipped byte in a member, a hash mismatch, and an orphan trace
// file must all fail VerifyCorpus with a descriptive error, while
// OpenCorpus (manifest-only) still succeeds for the orphan case.
func TestCorpusVerifyCatchesDamage(t *testing.T) {
	dir := t.TempDir()
	const seed, insts = 9, 2000
	prof, _ := ByName("swim")
	m, err := EmitCorpusMember(dir, prof, seed, insts, 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	man := CorpusManifest{FormatVersion: 2, Seed: seed, Instructions: insts, Members: []CorpusMember{m}}
	if err := WriteCorpusManifest(dir, man); err != nil {
		t.Fatal(err)
	}

	// Orphan member file.
	orphan := filepath.Join(dir, "stray"+CorpusMemberExt)
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCorpus(dir); err != nil {
		t.Fatalf("orphan broke manifest-only open: %v", err)
	}
	if err := VerifyCorpus(dir); err == nil || !strings.Contains(err.Error(), "stray") {
		t.Fatalf("want orphan error, got %v", err)
	}
	os.Remove(orphan)

	// Flip one payload byte: the hash check must catch it.
	path := filepath.Join(dir, m.File)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCorpus(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

// TestCorpusManifestValidation rejects the malformed manifests
// OpenCorpus must never act on.
func TestCorpusManifestValidation(t *testing.T) {
	prof, _ := ByName("swim")
	member := func(bench string) CorpusMember {
		p := prof
		p.Name = bench
		return CorpusMember{Benchmark: bench, File: bench + CorpusMemberExt, Profile: p}
	}
	base := CorpusManifest{FormatVersion: 2, Seed: 1, Instructions: 100,
		Members: []CorpusMember{member("a"), member("b")}}

	cases := map[string]func(*CorpusManifest){
		"wrong version":  func(m *CorpusManifest) { m.FormatVersion = 1 },
		"no members":     func(m *CorpusManifest) { m.Members = nil },
		"unsorted":       func(m *CorpusManifest) { m.Members[0], m.Members[1] = m.Members[1], m.Members[0] },
		"duplicate":      func(m *CorpusManifest) { m.Members[1] = m.Members[0] },
		"path traversal": func(m *CorpusManifest) { m.Members[0].File = "../evil" },
		"name mismatch":  func(m *CorpusManifest) { m.Members[0].Profile.Name = "other" },
		"bad profile":    func(m *CorpusManifest) { m.Members[0].Profile.Phases = nil },
		"zero insts":     func(m *CorpusManifest) { m.Instructions = 0 },
	}
	for name, mutate := range cases {
		man := base
		man.Members = append([]CorpusMember(nil), base.Members...)
		mutate(&man)
		if err := validateManifest(&man); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := base
	if err := validateManifest(&good); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
}

// TestChunkedOversizeChunkRejected guards the allocation bound: an
// index demanding more than maxChunkInstructions per chunk must be
// rejected before any payload allocation.
func TestChunkedOversizeChunkRejected(t *testing.T) {
	data := chunkedBytes(t, "gzip", 1, 100, 50)
	b := append([]byte(nil), data...)
	// Header chunkInsts field is at offset 8.
	binary.LittleEndian.PutUint32(b[8:], maxChunkInstructions+1)
	if _, err := OpenChunked(bytes.NewReader(b), int64(len(b)), 1); err == nil {
		t.Fatal("oversize chunkInsts accepted")
	}
	var src badClassSource
	if _, err := WriteChunked(&bytes.Buffer{}, &src, 1, maxChunkInstructions+1); err == nil {
		t.Fatal("writer accepted oversize chunk size")
	}
}
