package trace

import (
	"fmt"

	"mcddvfs/internal/isa"
)

// Recorded is a workload's full dynamic instruction stream captured
// into compact append-only columnar buffers. The stream a Generator
// produces depends only on (profile, seed, total) — never on the DVFS
// scheme simulated on top of it — so one Recorded can be built once
// and fanned out to every scheme × fault cell of an experiment matrix:
// each consumer gets its own Replayer cursor over the same immutable
// arrays, paying neither the generation work (RNG draws, branch-count
// map updates) nor any per-instruction allocation.
//
// Layout is struct-of-arrays, following the simulator's zero-alloc
// conventions: one contiguous slab per field, 25 bytes per
// instruction. Target and Addr are mutually exclusive by construction
// (branches carry a target, memory ops an address, everything else
// neither), so they share the one `extra` column; the taken flag rides
// in the class byte's high bit.
type Recorded struct {
	name string

	pc    []uint64
	extra []uint64 // Target for branches, Addr for loads/stores
	dep1  []uint32
	dep2  []uint32
	meta  []uint8 // bits 0..6 = isa.Class, bit 7 = branch taken
}

const takenBit = 0x80

// Record drains src into a Recorded stream named name. It stops at end
// of stream; the capacity hint sizes the buffers up front (pass the
// known instruction budget, or 0 when unknown).
func Record(src Source, capacity int64) *Recorded {
	if capacity < 0 {
		capacity = 0
	}
	r := &Recorded{
		name:  src.Name(),
		pc:    make([]uint64, 0, capacity),
		extra: make([]uint64, 0, capacity),
		dep1:  make([]uint32, 0, capacity),
		dep2:  make([]uint32, 0, capacity),
		meta:  make([]uint8, 0, capacity),
	}
	for {
		in, ok := src.Next()
		if !ok {
			return r
		}
		m := uint8(in.Class)
		var extra uint64
		switch in.Class {
		case isa.Branch:
			extra = in.Target
			if in.Taken {
				m |= takenBit
			}
		case isa.Load, isa.Store:
			extra = in.Addr
		}
		r.pc = append(r.pc, in.PC)
		r.extra = append(r.extra, extra)
		r.dep1 = append(r.dep1, in.Dep1)
		r.dep2 = append(r.dep2, in.Dep2)
		r.meta = append(r.meta, m)
	}
}

// RecordProfile generates and captures a profile's stream exactly as
// the simulator would consume it live: the Generator seeded with
// (seed, total) produces a bit-identical sequence whether it is
// simulated directly or recorded here and replayed.
func RecordProfile(p Profile, seed, total int64) (*Recorded, error) {
	g, err := NewGenerator(p, seed, total)
	if err != nil {
		return nil, fmt.Errorf("trace: recording %q: %w", p.Name, err)
	}
	return Record(g, total), nil
}

// Name returns the recorded workload's name.
func (r *Recorded) Name() string { return r.name }

// Len returns the number of recorded instructions.
func (r *Recorded) Len() int64 { return int64(len(r.pc)) }

// Bytes returns the approximate resident size of the recording.
func (r *Recorded) Bytes() int64 {
	return int64(len(r.pc))*(8+8+4+4+1) + int64(len(r.name))
}

// At decodes the i-th recorded instruction.
func (r *Recorded) At(i int64) isa.Inst {
	m := r.meta[i]
	in := isa.Inst{
		PC:    r.pc[i],
		Class: isa.Class(m &^ takenBit),
		Dep1:  r.dep1[i],
		Dep2:  r.dep2[i],
	}
	switch in.Class {
	case isa.Branch:
		in.Target = r.extra[i]
		in.Taken = m&takenBit != 0
	case isa.Load, isa.Store:
		in.Addr = r.extra[i]
	}
	return in
}

// Replay returns a fresh read-only cursor over the recording. Cursors
// are independent: any number may stream the same Recorded
// concurrently (the underlying arrays are never written after Record
// returns), but a single Replayer is not safe for concurrent use —
// give each consumer its own.
func (r *Recorded) Replay() *Replayer {
	return &Replayer{rec: r}
}

// Replayer streams a Recorded trace as a Source. Next performs no
// allocation and no RNG work — it only decodes the shared columns.
type Replayer struct {
	rec *Recorded
	i   int64
}

// Name implements Source.
func (p *Replayer) Name() string { return p.rec.name }

// Remaining returns how many instructions the cursor will still emit.
func (p *Replayer) Remaining() int64 { return p.rec.Len() - p.i }

// Next implements Source. The decode is At's, open-coded: Next runs
// once per simulated instruction, and keeping the column loads in one
// frame lets the compiler fold the five bounds checks into the single
// length test.
func (p *Replayer) Next() (isa.Inst, bool) {
	rec := p.rec
	i := p.i
	if i >= int64(len(rec.meta)) {
		return isa.Inst{}, false
	}
	p.i = i + 1
	m := rec.meta[i]
	in := isa.Inst{
		PC:    rec.pc[i],
		Class: isa.Class(m &^ takenBit),
		Dep1:  rec.dep1[i],
		Dep2:  rec.dep2[i],
	}
	switch in.Class {
	case isa.Branch:
		in.Target = rec.extra[i]
		in.Taken = m&takenBit != 0
	case isa.Load, isa.Store:
		in.Addr = rec.extra[i]
	}
	return in, true
}

var _ Source = (*Replayer)(nil)
