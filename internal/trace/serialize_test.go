package trace

import (
	"bytes"
	"io"
	"testing"

	"mcddvfs/internal/isa"
)

func TestWriteReadRoundTrip(t *testing.T) {
	prof, _ := ByName("gsm_decode")
	const n = 5000
	gen, err := NewGenerator(prof, 21, n)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a reference copy from an identical generator.
	ref, _ := NewGenerator(prof, 21, n)
	want := make([]isa.Inst, 0, n)
	for {
		in, ok := ref.Next()
		if !ok {
			break
		}
		want = append(want, in)
	}

	var buf bytes.Buffer
	wrote, err := Write(&buf, gen, n)
	if err != nil {
		t.Fatal(err)
	}
	if wrote != n {
		t.Fatalf("wrote %d, want %d", wrote, n)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "gsm_decode" || r.Count() != n {
		t.Errorf("header = (%q,%d)", r.Name(), r.Count())
	}
	for i := 0; i < n; i++ {
		in, ok := r.Next()
		if !ok {
			t.Fatalf("reader dry at %d: %v", i, r.Err())
		}
		if in != want[i] {
			t.Fatalf("instruction %d mismatch:\n got %+v\nwant %+v", i, in, want[i])
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("reader returned an instruction past the declared count")
	}
	if r.Err() != nil {
		t.Errorf("unexpected stream error: %v", r.Err())
	}
}

func TestWriteSourceRunsDry(t *testing.T) {
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 100)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen, 200); err == nil {
		t.Error("over-count accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("MCDTxxxx"),
	}
	for i, b := range cases {
		if _, err := NewReader(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: accepted garbage", i)
		}
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 50)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen, 50); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
	if n >= 50 {
		t.Errorf("read %d instructions from a truncated stream", n)
	}
}

func TestReaderDetectsBadClass(t *testing.T) {
	prof, _ := ByName("gzip")
	gen, _ := NewGenerator(prof, 1, 2)
	var buf bytes.Buffer
	if _, err := Write(&buf, gen, 2); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first record's class byte (header is 4+4+8+2+4 = 22
	// bytes for the 4-char "gzip" name).
	b[22+8] = 0xFF
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("invalid class accepted")
	}
	if r.Err() == nil {
		t.Error("invalid class not reported")
	}
}

func TestReaderImplementsSource(t *testing.T) {
	var _ Source = (*Reader)(nil)
	var _ Source = (*Generator)(nil)
	var _ io.Reader // keep io imported for clarity of intent
}
