package trace

import (
	"testing"
	"testing/quick"

	"mcddvfs/internal/bpred"
	"mcddvfs/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestRegistryShape(t *testing.T) {
	counts := map[string]int{}
	for _, p := range Profiles() {
		counts[p.Suite]++
	}
	if counts[SuiteMediaBench] != 6 {
		t.Errorf("MediaBench count = %d, want 6", counts[SuiteMediaBench])
	}
	if counts[SuiteSPECint] != 6 {
		t.Errorf("SPECint count = %d, want 6", counts[SuiteSPECint])
	}
	if counts[SuiteSPECfp] != 5 {
		t.Errorf("SPECfp count = %d, want 5", counts[SuiteSPECfp])
	}
	if len(Names()) != 17 {
		t.Errorf("total = %d, want 17", len(Names()))
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("epic_decode")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "epic_decode" || p.Suite != SuiteMediaBench {
		t.Errorf("got %s/%s", p.Name, p.Suite)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestBySuite(t *testing.T) {
	fp := BySuite(SuiteSPECfp)
	if len(fp) != 5 {
		t.Fatalf("SPECfp suite size = %d, want 5", len(fp))
	}
	for _, p := range fp {
		if p.Suite != SuiteSPECfp {
			t.Errorf("%s has suite %s", p.Name, p.Suite)
		}
	}
}

func TestGeneratorProducesExactBudget(t *testing.T) {
	for _, name := range []string{"epic_decode", "adpcm_encode", "mcf", "swim"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(p, 1, 10000)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			_, ok := g.Next()
			if !ok {
				break
			}
			n++
		}
		if n != 10000 {
			t.Errorf("%s: generated %d instructions, want 10000", name, n)
		}
		if g.Remaining() != 0 {
			t.Errorf("%s: Remaining = %d after exhaustion", name, g.Remaining())
		}
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	p, _ := ByName("gsm_decode")
	gen := func(seed int64) []isa.Inst {
		g, err := NewGenerator(p, seed, 5000)
		if err != nil {
			t.Fatal(err)
		}
		var out []isa.Inst
		for {
			in, ok := g.Next()
			if !ok {
				break
			}
			out = append(out, in)
		}
		return out
	}
	a, b := gen(7), gen(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs across identical seeds", i)
		}
	}
	c := gen(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGeneratorMixRoughlyHonored(t *testing.T) {
	p, _ := ByName("swim") // FP-heavy
	g, err := NewGenerator(p, 3, 50000)
	if err != nil {
		t.Fatal(err)
	}
	var counts [isa.NumClasses]int
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		counts[in.Class]++
	}
	fp := counts[isa.FPAdd] + counts[isa.FPMult] + counts[isa.FPDiv] + counts[isa.FPSqrt]
	if frac := float64(fp) / 50000; frac < 0.3 || frac > 0.55 {
		t.Errorf("swim FP fraction = %.3f, want ~0.42", frac)
	}
	loads := float64(counts[isa.Load]) / 50000
	if loads < 0.2 || loads > 0.4 {
		t.Errorf("swim load fraction = %.3f, want ~0.30", loads)
	}
}

func TestFastVaryingProfilesLoop(t *testing.T) {
	for _, name := range []string{"adpcm_encode", "adpcm_decode", "g721_encode", "gsm_decode", "art"} {
		p, _ := ByName(name)
		if !p.Loop {
			t.Errorf("%s should be a looping (fast-varying) profile", name)
		}
		if p.LoopLen > 8000 {
			t.Errorf("%s loop length %d too long to be fast-varying", name, p.LoopLen)
		}
	}
}

func TestEpicDecodeFPBurstStructure(t *testing.T) {
	// The FP activity of epic_decode must be concentrated in two
	// windows (~25-33% and ~76-92% of the run), matching Figure 7.
	p, _ := ByName("epic_decode")
	const total = 100000
	g, err := NewGenerator(p, 11, total)
	if err != nil {
		t.Fatal(err)
	}
	buckets := make([]int, 20) // 5% buckets
	i := 0
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Class.Domain() == isa.DomainFP {
			buckets[i*20/total]++
		}
		i++
	}
	early := buckets[5] + buckets[6] // 25-35%
	late := buckets[16] + buckets[17]
	quiet := buckets[10] + buckets[11] + buckets[12]
	if early < 100 {
		t.Errorf("no modest FP burst around 28%%: %v", buckets)
	}
	if late < 2*early {
		t.Errorf("late burst (%d) should dwarf early burst (%d)", late, early)
	}
	if quiet > early/2 {
		t.Errorf("FP queue should be quiet mid-run (quiet=%d early=%d)", quiet, early)
	}
}

func TestGeneratorDepDistances(t *testing.T) {
	p, _ := ByName("adpcm_encode")
	g, _ := NewGenerator(p, 5, 20000)
	var sum, n float64
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Dep1 > 0 {
			sum += float64(in.Dep1)
			n++
		}
		if in.Dep1 > 512 || in.Dep2 > 512 {
			t.Fatalf("dep distance out of range: %d/%d", in.Dep1, in.Dep2)
		}
	}
	mean := sum / n
	if mean < 1.2 || mean > 8 {
		t.Errorf("mean dep distance %.2f outside plausible band", mean)
	}
}

func TestGeneratorAddressesInsideWorkingSet(t *testing.T) {
	p, _ := ByName("mcf")
	g, _ := NewGenerator(p, 9, 20000)
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Class == isa.Load || in.Class == isa.Store {
			if in.Addr < dataRegionBase || in.Addr >= dataRegionBase+24*MB {
				t.Fatalf("address %#x outside working set", in.Addr)
			}
		}
	}
}

func TestGeneratorPCStaysInCodeRegion(t *testing.T) {
	p, _ := ByName("gcc")
	g, _ := NewGenerator(p, 13, 30000)
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.PC < codeRegionBase {
			t.Fatalf("PC %#x below code region", in.PC)
		}
		if in.PC%4 != 0 {
			t.Fatalf("unaligned PC %#x", in.PC)
		}
	}
}

func TestBranchPredictabilityFollowsHardFraction(t *testing.T) {
	// swim (HardBranchFrac 0.005) must be far more predictable than
	// adpcm_decode's reconstruct-heavy stream (HardBranchFrac 0.22).
	// Predictability is what BranchBias/HardBranchFrac control; raw
	// taken fraction is an emergent property of the loop structure.
	misRate := func(name string) float64 {
		p, _ := ByName(name)
		g, _ := NewGenerator(p, 17, 50000)
		u := bpred.DefaultUnit()
		var branches, mis int
		for {
			in, ok := g.Next()
			if !ok {
				break
			}
			if in.Class != isa.Branch {
				continue
			}
			branches++
			pt, ptgt := u.Predict(in.PC)
			if u.Resolve(in.PC, pt, ptgt, in.Taken, in.Target) {
				mis++
			}
		}
		if branches == 0 {
			t.Fatalf("%s: no branches generated", name)
		}
		return float64(mis) / float64(branches)
	}
	easy := misRate("swim")
	hard := misRate("adpcm_decode")
	if easy > 0.08 {
		t.Errorf("swim mispredict rate %.3f, want < 0.08", easy)
	}
	if hard < easy+0.02 {
		t.Errorf("adpcm_decode (%.3f) should mispredict clearly more than swim (%.3f)", hard, easy)
	}
}

func TestBranchTargetsAreStatic(t *testing.T) {
	p, _ := ByName("gzip")
	g, _ := NewGenerator(p, 23, 40000)
	targets := map[uint64]uint64{}
	for {
		in, ok := g.Next()
		if !ok {
			break
		}
		if in.Class != isa.Branch {
			continue
		}
		if prev, seen := targets[in.PC]; seen && prev != in.Target {
			t.Fatalf("branch %#x changed target %#x -> %#x", in.PC, prev, in.Target)
		}
		targets[in.PC] = in.Target
	}
}

func TestScaledLengthsExactAndPositive(t *testing.T) {
	f := func(w1, w2, w3 uint8, totRaw uint16) bool {
		ws := []float64{float64(w1%50) + 1, float64(w2%50) + 1, float64(w3%50) + 1}
		phases := make([]Phase, 3)
		for i := range phases {
			phases[i].Weight = ws[i]
		}
		total := int64(totRaw%5000) + 3
		lens := scaledLengths(phases, total)
		var sum int64
		for _, l := range lens {
			if l < 1 {
				return false
			}
			sum += l
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	bad := []Profile{
		{Name: "", Phases: []Phase{{Weight: 1}}},
		{Name: "x"},
		{Name: "x", Phases: []Phase{{Name: "p", Weight: 0}}},
		{Name: "x", Phases: []Phase{{Name: "p", Weight: 1, DepMean: 0.5}}},
		{Name: "x", Loop: true, Phases: []Phase{{Name: "p", Weight: 1, DepMean: 2,
			Mix: intMix(0.2), WorkingSet: KB, CodeSize: KB}}}, // LoopLen missing
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestNewGeneratorRejectsBadBudget(t *testing.T) {
	p, _ := ByName("gzip")
	if _, err := NewGenerator(p, 1, 0); err == nil {
		t.Error("expected error for zero budget")
	}
}

func TestMixPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mix > 1")
		}
	}()
	mix(0.5, 0.5, 0.5, 0, 0, 0, 0, 0, 0)
}

func TestGeneratorAccessors(t *testing.T) {
	p, _ := ByName("gzip")
	g, _ := NewGenerator(p, 1, 100)
	if g.Profile().Name != "gzip" || g.Name() != "gzip" {
		t.Error("profile accessors broken")
	}
	if g.Phase() == "" {
		t.Error("empty phase name")
	}
	g.Next()
	if g.Remaining() != 99 {
		t.Errorf("Remaining = %d, want 99", g.Remaining())
	}
}

func TestMixValidationErrors(t *testing.T) {
	var m Mix // all zero
	if _, err := m.cumulative(); err == nil {
		t.Error("empty mix accepted")
	}
	m[0] = -1
	if _, err := m.cumulative(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestValidateMoreBranches(t *testing.T) {
	good, _ := ByName("gzip")
	p := good
	p.Phases = append([]Phase(nil), good.Phases...)
	p.Phases[0].Mix = Mix{} // empty mix
	if err := p.Validate(); err == nil {
		t.Error("empty-mix phase accepted")
	}
	p = good
	p.Phases = append([]Phase(nil), good.Phases...)
	p.Phases[0].CodeSize = 0
	if err := p.Validate(); err == nil {
		t.Error("zero code size accepted")
	}
}

// TestSyntheticRegistryIsSideLoaded pins the side-registry contract:
// synthetic diagnostics resolve by name and validate like any profile,
// but never leak into Names/Profiles — the default experiment matrix
// (and its cached artifacts) must not change when a diagnostic
// workload is added.
func TestSyntheticRegistryIsSideLoaded(t *testing.T) {
	if len(Synthetic()) == 0 {
		t.Fatal("no synthetic profiles registered")
	}
	for _, p := range Synthetic() {
		if p.Suite != SuiteSynthetic {
			t.Errorf("synthetic profile %q carries suite %q", p.Name, p.Suite)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("synthetic profile %q invalid: %v", p.Name, err)
		}
		got, err := ByName(p.Name)
		if err != nil {
			t.Errorf("ByName(%q): %v", p.Name, err)
		} else if got.Name != p.Name {
			t.Errorf("ByName(%q) returned %q", p.Name, got.Name)
		}
		for _, name := range Names() {
			if name == p.Name {
				t.Errorf("synthetic profile %q leaked into Names()", p.Name)
			}
		}
	}
	if got := BySuite(SuiteSynthetic); len(got) != len(Synthetic()) {
		t.Errorf("BySuite(synthetic) returned %d profiles, want %d", len(got), len(Synthetic()))
	}
}
