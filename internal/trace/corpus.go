package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"mcddvfs/internal/isa"
)

// Chunked trace format, version 2 — the corpus successor to the
// monolithic v1 "MCDT" stream in serialize.go. A v2 file is replayable
// with memory bounded by the chunk window regardless of trace length:
//
//	header:  magic "MCDC" | version u32 | chunkInsts u32 |
//	         nameLen u16 | name
//	chunks:  flate-compressed columnar payloads, one per chunkInsts
//	         instructions (the last chunk may be short)
//	index:   count i64 | numChunks u32 |
//	         numChunks × { off u64 | clen u32 | n u32 | crc u32 } |
//	         crc u32 over the preceding index bytes
//	footer:  indexOff u64 | indexLen u32 | magic "XDCM"
//
// Every integer is little-endian. A chunk's raw payload is the
// Recorded column layout packed back to back — pc[8n] | extra[8n] |
// dep1[4n] | dep2[4n] | meta[n], 25 bytes per instruction, taken flag
// in meta's high bit — so decoding a chunk is the same column walk
// Replayer.Next performs, and replay is bit-identical to an in-memory
// Recorded replay by construction. Each chunk's CRC-32C is computed
// over the raw (decompressed) payload: it proves end-to-end integrity
// through the compressor, not just media integrity of the stored
// bytes. The index at the tail makes the file seekable: a reader maps
// any instruction position to chunk position/chunkInsts without
// touching the payloads before it.
const (
	chunkedMagic       = "MCDC"
	chunkedFooterMagic = "XDCM"
	chunkedVersion     = 2

	// DefaultChunkInstructions is the writer's default chunk size:
	// 64Ki instructions, 1.6 MiB raw per chunk.
	DefaultChunkInstructions = 1 << 16

	// maxChunkInstructions bounds the decoded size of one chunk
	// (25 B/inst, 32 MiB) so a corrupt or hostile index cannot demand
	// an absurd allocation before validation can reject it.
	maxChunkInstructions = 1 << 20

	// DefaultChunkWindow is how many decoded chunks a Chunked keeps
	// resident at once when the caller does not choose.
	DefaultChunkWindow = 4

	// instBytes is the packed size of one instruction, shared with the
	// Recorded column layout.
	instBytes = 25

	chunkedHeaderMin = 4 + 4 + 4 + 2 // magic + version + chunkInsts + nameLen
	chunkedFooterLen = 8 + 4 + 4     // indexOff + indexLen + magic
	chunkedIndexMin  = 8 + 4 + 4     // count + numChunks + index crc
	chunkEntryLen    = 8 + 4 + 4 + 4 // off + clen + n + crc
)

// chunkedCRC is the table every chunk and index checksum uses
// (CRC-32C, hardware-accelerated on the platforms that matter).
var chunkedCRC = crc32.MakeTable(crc32.Castagnoli)

// checksumChunk is the one checksum routine for chunk payloads and the
// index body.
func checksumChunk(b []byte) uint32 { return crc32.Checksum(b, chunkedCRC) }

// WriteChunked serializes count instructions of src to w in the
// chunked v2 format and returns the number of bytes written. A
// chunkInsts of 0 selects DefaultChunkInstructions. Like Write, the
// instruction count must be known up front; a source that runs dry
// before count is an error.
func WriteChunked(w io.Writer, src Source, count int64, chunkInsts int) (int64, error) {
	if count < 0 {
		return 0, fmt.Errorf("trace: negative instruction count %d", count)
	}
	if chunkInsts == 0 {
		chunkInsts = DefaultChunkInstructions
	}
	if chunkInsts < 1 || chunkInsts > maxChunkInstructions {
		return 0, fmt.Errorf("trace: chunk size %d instructions outside [1, %d]", chunkInsts, maxChunkInstructions)
	}
	name := src.Name()
	if len(name) > 1<<16-1 {
		return 0, fmt.Errorf("trace: name too long")
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [chunkedHeaderMin]byte
	copy(hdr[0:], chunkedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], chunkedVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(chunkInsts))
	binary.LittleEndian.PutUint16(hdr[12:], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return 0, err
	}
	written := int64(chunkedHeaderMin + len(name))

	raw := make([]byte, 0, chunkInsts*instBytes)
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return written, err
	}
	var idx []chunkInfo
	for start := int64(0); start < count; start += int64(chunkInsts) {
		n := count - start
		if n > int64(chunkInsts) {
			n = int64(chunkInsts)
		}
		raw = raw[:n*instBytes]
		if err := packChunk(raw, src, n); err != nil {
			return written, fmt.Errorf("trace: at instruction %d of %d: %w", start, count, err)
		}
		comp.Reset()
		fw.Reset(&comp)
		if _, err := fw.Write(raw); err != nil {
			return written, err
		}
		if err := fw.Close(); err != nil {
			return written, err
		}
		if _, err := bw.Write(comp.Bytes()); err != nil {
			return written, err
		}
		idx = append(idx, chunkInfo{
			off:  written,
			clen: uint32(comp.Len()),
			n:    uint32(n),
			crc:  checksumChunk(raw),
		})
		written += int64(comp.Len())
	}

	index := make([]byte, 0, chunkedIndexMin+len(idx)*chunkEntryLen)
	index = binary.LittleEndian.AppendUint64(index, uint64(count))
	index = binary.LittleEndian.AppendUint32(index, uint32(len(idx)))
	for _, e := range idx {
		index = binary.LittleEndian.AppendUint64(index, uint64(e.off))
		index = binary.LittleEndian.AppendUint32(index, e.clen)
		index = binary.LittleEndian.AppendUint32(index, e.n)
		index = binary.LittleEndian.AppendUint32(index, e.crc)
	}
	index = binary.LittleEndian.AppendUint32(index, checksumChunk(index))
	if _, err := bw.Write(index); err != nil {
		return written, err
	}

	var foot [chunkedFooterLen]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(written))
	binary.LittleEndian.PutUint32(foot[8:], uint32(len(index)))
	copy(foot[12:], chunkedFooterMagic)
	if _, err := bw.Write(foot[:]); err != nil {
		return written, err
	}
	written += int64(len(index) + chunkedFooterLen)
	return written, bw.Flush()
}

// packChunk encodes n instructions of src into raw (already sized to
// n*instBytes) in the columnar chunk layout.
func packChunk(raw []byte, src Source, n int64) error {
	pc, extra := raw[0:], raw[8*n:]
	dep1, dep2 := raw[16*n:], raw[20*n:]
	meta := raw[24*n:]
	for j := int64(0); j < n; j++ {
		in, ok := src.Next()
		if !ok {
			return fmt.Errorf("source ran dry")
		}
		m := uint8(in.Class)
		var ex uint64
		switch in.Class {
		case isa.Branch:
			ex = in.Target
			if in.Taken {
				m |= takenBit
			}
		case isa.Load, isa.Store:
			ex = in.Addr
		}
		binary.LittleEndian.PutUint64(pc[8*j:], in.PC)
		binary.LittleEndian.PutUint64(extra[8*j:], ex)
		binary.LittleEndian.PutUint32(dep1[4*j:], in.Dep1)
		binary.LittleEndian.PutUint32(dep2[4*j:], in.Dep2)
		meta[j] = m
	}
	return nil
}

// chunkInfo is one index entry: where a chunk's compressed bytes live,
// how many instructions it packs, and the CRC of its raw payload.
type chunkInfo struct {
	off  int64
	clen uint32
	n    uint32
	crc  uint32
}

// Chunked is an open chunked-format trace. It owns a bounded window
// of decoded chunks shared by every replay cursor, so peak memory is
// O(window × chunk) — independent of trace length. Any number of
// cursors may stream concurrently; the window cache is mutex-guarded.
type Chunked struct {
	r          io.ReaderAt
	name       string
	count      int64
	chunkInsts int
	size       int64
	idx        []chunkInfo
	window     int

	mu       sync.Mutex
	chunks   map[int][]byte // decoded raw payloads by chunk number
	order    []int          // LRU order, least recently used first
	resident int64
	peak     int64
	loads    int64 // cache misses (chunk decodes)
}

// OpenChunked validates a chunked trace of the given size and prepares
// to stream it. The reader must stay valid for the Chunked's lifetime
// (use OpenChunkedFile for the file-backed convenience form). window
// caps how many decoded chunks stay resident (0 selects
// DefaultChunkWindow; the floor is 1). Every header, footer, and index
// inconsistency is a clean error — the per-chunk payload CRCs are
// checked lazily as chunks are decoded.
func OpenChunked(r io.ReaderAt, size int64, window int) (*Chunked, error) {
	if window == 0 {
		window = DefaultChunkWindow
	}
	if window < 1 {
		window = 1
	}
	if size < int64(chunkedHeaderMin+chunkedIndexMin+chunkedFooterLen) {
		return nil, fmt.Errorf("trace: chunked file too short (%d bytes)", size)
	}

	var hdr [chunkedHeaderMin]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading chunked header: %w", err)
	}
	if string(hdr[0:4]) != chunkedMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != chunkedVersion {
		return nil, fmt.Errorf("trace: unsupported chunked version %d", v)
	}
	chunkInsts := int(binary.LittleEndian.Uint32(hdr[8:]))
	if chunkInsts < 1 || chunkInsts > maxChunkInstructions {
		return nil, fmt.Errorf("trace: chunk size %d instructions outside [1, %d]", chunkInsts, maxChunkInstructions)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[12:]))
	headerLen := int64(chunkedHeaderMin + nameLen)
	if headerLen > size {
		return nil, fmt.Errorf("trace: truncated chunked header")
	}
	nameBuf := make([]byte, nameLen)
	if _, err := r.ReadAt(nameBuf, chunkedHeaderMin); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}

	var foot [chunkedFooterLen]byte
	if _, err := r.ReadAt(foot[:], size-chunkedFooterLen); err != nil {
		return nil, fmt.Errorf("trace: reading footer: %w", err)
	}
	if string(foot[12:16]) != chunkedFooterMagic {
		return nil, fmt.Errorf("trace: bad footer magic %q (truncated file?)", foot[12:16])
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexLen := int64(binary.LittleEndian.Uint32(foot[8:]))
	if indexLen < chunkedIndexMin || indexOff < headerLen || indexOff+indexLen != size-chunkedFooterLen {
		return nil, fmt.Errorf("trace: index bounds [%d, +%d] disagree with file size %d", indexOff, indexLen, size)
	}
	index := make([]byte, indexLen)
	if _, err := r.ReadAt(index, indexOff); err != nil {
		return nil, fmt.Errorf("trace: reading index: %w", err)
	}
	body, sum := index[:indexLen-4], binary.LittleEndian.Uint32(index[indexLen-4:])
	if checksumChunk(body) != sum {
		return nil, fmt.Errorf("trace: index checksum mismatch (corrupt index)")
	}
	count := int64(binary.LittleEndian.Uint64(body[0:]))
	numChunks := int64(binary.LittleEndian.Uint32(body[8:]))
	if count < 0 {
		return nil, fmt.Errorf("trace: negative instruction count %d", count)
	}
	if int64(len(body)-12) != numChunks*chunkEntryLen {
		return nil, fmt.Errorf("trace: index declares %d chunks but holds %d entry bytes", numChunks, len(body)-12)
	}

	c := &Chunked{
		r:          r,
		name:       string(nameBuf),
		count:      count,
		chunkInsts: chunkInsts,
		size:       size,
		idx:        make([]chunkInfo, numChunks),
		window:     window,
		chunks:     make(map[int][]byte, window),
	}
	var total int64
	prevEnd := headerLen
	for k := range c.idx {
		ent := body[12+k*chunkEntryLen:]
		e := chunkInfo{
			off:  int64(binary.LittleEndian.Uint64(ent[0:])),
			clen: binary.LittleEndian.Uint32(ent[8:]),
			n:    binary.LittleEndian.Uint32(ent[12:]),
			crc:  binary.LittleEndian.Uint32(ent[16:]),
		}
		if e.n < 1 || int(e.n) > chunkInsts {
			return nil, fmt.Errorf("trace: chunk %d declares %d instructions (chunk size %d)", k, e.n, chunkInsts)
		}
		if k < len(c.idx)-1 && int(e.n) != chunkInsts {
			return nil, fmt.Errorf("trace: non-final chunk %d is short (%d of %d instructions)", k, e.n, chunkInsts)
		}
		if e.clen < 1 || e.off < prevEnd || e.off+int64(e.clen) > indexOff {
			return nil, fmt.Errorf("trace: chunk %d bytes [%d, +%d] out of bounds", k, e.off, e.clen)
		}
		prevEnd = e.off + int64(e.clen)
		total += int64(e.n)
		c.idx[k] = e
	}
	if total != count {
		return nil, fmt.Errorf("trace: chunks hold %d instructions, index declares %d", total, count)
	}
	return c, nil
}

// Name returns the workload name recorded in the header.
func (c *Chunked) Name() string { return c.name }

// Count returns the total instruction count.
func (c *Chunked) Count() int64 { return c.count }

// Chunks returns the number of chunks in the file.
func (c *Chunked) Chunks() int { return len(c.idx) }

// ChunkInstructions returns the per-chunk instruction capacity.
func (c *Chunked) ChunkInstructions() int { return c.chunkInsts }

// CompressedBytes returns the on-disk size of the trace.
func (c *Chunked) CompressedBytes() int64 { return c.size }

// Window returns the resident-chunk cap this Chunked was opened with.
func (c *Chunked) Window() int { return c.window }

// WindowBytes returns the window's raw-payload memory bound:
// window × chunk payload size. PeakResidentBytes never exceeds it.
func (c *Chunked) WindowBytes() int64 {
	return int64(c.window) * int64(c.chunkInsts) * instBytes
}

// PeakResidentBytes reports the largest total of decoded chunk
// payloads held at any point so far — the number the bounded-memory
// contract is about. A cursor may briefly pin one evicted chunk on top
// of this while it crosses a boundary.
func (c *Chunked) PeakResidentBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// Loads reports how many chunk decodes (window-cache misses) have
// happened — the replay-amplification figure: a perfectly shared
// sequential sweep loads each chunk once.
func (c *Chunked) Loads() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loads
}

// chunk returns chunk k's raw payload, decoding (and CRC-checking) it
// on a window miss and evicting the least recently used chunk past the
// window.
func (c *Chunked) chunk(k int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if raw, ok := c.chunks[k]; ok {
		c.touch(k)
		return raw, nil
	}
	e := c.idx[k]
	rawLen := int(e.n) * instBytes
	// Evicted buffers are never recycled: a cursor may still be
	// decoding out of one after it leaves the window, so the buffer's
	// lifetime ends when the last cursor moves on, not here.
	raw := make([]byte, rawLen)
	fr := flate.NewReader(io.NewSectionReader(c.r, e.off, int64(e.clen)))
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, fmt.Errorf("trace: %q chunk %d: inflating: %w", c.name, k, err)
	}
	var over [1]byte
	if n, _ := fr.Read(over[:]); n != 0 {
		return nil, fmt.Errorf("trace: %q chunk %d: payload longer than declared", c.name, k)
	}
	if checksumChunk(raw) != e.crc {
		return nil, fmt.Errorf("trace: %q chunk %d: checksum mismatch (corrupt chunk)", c.name, k)
	}
	c.loads++
	// Evict down to window-1 before inserting so resident (and the
	// peak it drives) never exceeds the window bound.
	for len(c.order) >= c.window {
		ev := c.order[0]
		c.order = c.order[1:]
		c.resident -= int64(len(c.chunks[ev]))
		delete(c.chunks, ev)
	}
	c.chunks[k] = raw
	c.order = append(c.order, k)
	c.resident += int64(rawLen)
	if c.resident > c.peak {
		c.peak = c.resident
	}
	return raw, nil
}

// touch moves chunk k to the most-recently-used end of the order.
func (c *Chunked) touch(k int) {
	for i, v := range c.order {
		if v == k {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = k
			return
		}
	}
}

// VerifyChunks decodes every chunk once (through the window, so memory
// stays bounded) and returns the first payload error: the full
// integrity pass tracegen and the corpus verifier run.
func (c *Chunked) VerifyChunks() error {
	for k := range c.idx {
		if _, err := c.chunk(k); err != nil {
			return err
		}
	}
	return nil
}

// Replay returns a fresh streaming cursor. Cursors are independent and
// share the chunk window; a single cursor is not safe for concurrent
// use — give each consumer its own.
func (c *Chunked) Replay() *ChunkedReplayer {
	return &ChunkedReplayer{c: c}
}

// ChunkedReplayer streams a chunked trace as a Source. Next decodes
// straight out of the pinned chunk's columns — no per-instruction
// allocation — and crosses chunk boundaries through the shared window.
// A payload error (truncation, CRC mismatch) ends the stream; Err
// distinguishes it from clean end-of-trace.
type ChunkedReplayer struct {
	c    *Chunked
	i    int64
	raw  []byte // pinned current chunk payload
	base int64  // absolute index of the pinned chunk's first instruction
	n    int64  // instructions in the pinned chunk
	err  error
}

// Name implements Source.
func (p *ChunkedReplayer) Name() string { return p.c.name }

// Remaining returns how many instructions the cursor will still emit.
func (p *ChunkedReplayer) Remaining() int64 { return p.c.count - p.i }

// Err returns the first stream error encountered by Next.
func (p *ChunkedReplayer) Err() error { return p.err }

// Next implements Source.
func (p *ChunkedReplayer) Next() (isa.Inst, bool) {
	if p.err != nil || p.i >= p.c.count {
		return isa.Inst{}, false
	}
	j := p.i - p.base
	if p.raw == nil || j >= p.n {
		k := int(p.i / int64(p.c.chunkInsts))
		raw, err := p.c.chunk(k)
		if err != nil {
			p.err = err
			return isa.Inst{}, false
		}
		p.raw = raw
		p.base = int64(k) * int64(p.c.chunkInsts)
		p.n = int64(p.c.idx[k].n)
		j = p.i - p.base
	}
	raw, n := p.raw, p.n
	m := raw[24*n+j]
	in := isa.Inst{
		PC:    binary.LittleEndian.Uint64(raw[8*j:]),
		Class: isa.Class(m &^ takenBit),
		Dep1:  binary.LittleEndian.Uint32(raw[16*n+4*j:]),
		Dep2:  binary.LittleEndian.Uint32(raw[20*n+4*j:]),
	}
	if !in.Class.Valid() {
		// The CRC covers whatever bytes were written, so a hand-built
		// (or fuzzed) file can carry a valid checksum over an invalid
		// class; it must surface as a stream error, not a downstream
		// panic.
		p.err = fmt.Errorf("trace: %q: invalid class %d at instruction %d", p.c.name, uint8(in.Class), p.i)
		return isa.Inst{}, false
	}
	p.i++
	switch in.Class {
	case isa.Branch:
		in.Target = binary.LittleEndian.Uint64(raw[8*n+8*j:])
		in.Taken = m&takenBit != 0
	case isa.Load, isa.Store:
		in.Addr = binary.LittleEndian.Uint64(raw[8*n+8*j:])
	}
	return in, true
}

var _ Source = (*ChunkedReplayer)(nil)

// ChunkedFile is a Chunked backed by an open file.
type ChunkedFile struct {
	*Chunked
	f *os.File
}

// OpenChunkedFile opens and validates a chunked trace file. The caller
// owns the Close.
func OpenChunkedFile(path string, window int) (*ChunkedFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	c, err := OpenChunked(f, st.Size(), window)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &ChunkedFile{Chunked: c, f: f}, nil
}

// Close releases the underlying file.
func (cf *ChunkedFile) Close() error { return cf.f.Close() }
