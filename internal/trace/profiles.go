package trace

import (
	"fmt"
	"sort"

	"mcddvfs/internal/isa"
)

// Suite names used by the registry.
const (
	SuiteMediaBench = "MediaBench"
	SuiteSPECint    = "SPECint"
	SuiteSPECfp     = "SPECfp"
	// SuiteSynthetic labels diagnostic workloads that are not part of
	// the paper's suite. They resolve by name (ByName, -only on the
	// CLIs) but are excluded from Names and Profiles, so the default
	// experiment matrix — and every artifact derived from it — is
	// unchanged by their existence.
	SuiteSynthetic = "synthetic"
)

// KB and MB are working-set size helpers.
const (
	KB uint64 = 1024
	MB uint64 = 1024 * KB
)

// mix builds a Mix from the most common knobs; the remainder after
// loads, stores, branches and the FP/mult shares goes to IntALU.
func mix(load, store, branch, imult, idiv, fadd, fmult, fdiv, fsqrt float64) Mix {
	var m Mix
	m[isa.Load] = load
	m[isa.Store] = store
	m[isa.Branch] = branch
	m[isa.IntMult] = imult
	m[isa.IntDiv] = idiv
	m[isa.FPAdd] = fadd
	m[isa.FPMult] = fmult
	m[isa.FPDiv] = fdiv
	m[isa.FPSqrt] = fsqrt
	rest := 1 - load - store - branch - imult - idiv - fadd - fmult - fdiv - fsqrt
	if rest < 0 {
		panic(fmt.Sprintf("trace: mix overflows 1 by %g", -rest))
	}
	m[isa.IntALU] = rest
	return m
}

// intMix is a typical integer-code mix with the given load share.
func intMix(load float64) Mix { return mix(load, load*0.45, 0.17, 0.015, 0.002, 0, 0, 0, 0) }

// fpMix is a typical floating-point-code mix with the given FP share
// (split between adds and multiplies) and load share.
func fpMix(fp, load float64) Mix {
	return mix(load, load*0.35, 0.08, 0.01, 0, fp*0.55, fp*0.4, fp*0.045, fp*0.005)
}

// profiles is the benchmark registry, mirroring the paper's suite:
// 6 MediaBench + 6 SPECint + 5 SPECfp applications ("roughly the same
// subset of SPECint and SPECfp as those used in [4, 9, 23]"). The
// MediaBench codecs and art are authored as fast-varying workloads
// (phase alternation well inside the 10K-instruction fixed interval);
// the rest vary slowly. Table 2 of the paper is reconstructed from this
// registry plus the spectral classifier.
var profiles = []Profile{
	// ------------------------------------------------------------------
	// MediaBench
	// ------------------------------------------------------------------
	{
		// epic_decode reproduces the Figure-7 narrative: the FP queue is
		// empty except for a modest burst around 28% of the run and a
		// dramatic burst around 82%.
		Name: "epic_decode", Suite: SuiteMediaBench,
		Phases: []Phase{
			{Name: "startup", Weight: 5, Mix: intMix(0.24), DepMean: 3.0, Dep2Prob: 0.4,
				BranchBias: 0.9, HardBranchFrac: 0.08, WorkingSet: 256 * KB, SeqFrac: 0.7, CodeSize: 48 * KB},
			{Name: "huffman", Weight: 20, Mix: intMix(0.22), DepMean: 2.2, Dep2Prob: 0.45,
				BranchBias: 0.88, HardBranchFrac: 0.12, WorkingSet: 512 * KB, SeqFrac: 0.55, CodeSize: 32 * KB},
			{Name: "fp_modest", Weight: 8, Mix: fpMix(0.18, 0.24), DepMean: 4.5, Dep2Prob: 0.5,
				BranchBias: 0.93, HardBranchFrac: 0.05, WorkingSet: 1 * MB, SeqFrac: 0.8, CodeSize: 24 * KB},
			{Name: "drain", Weight: 12, Mix: intMix(0.20), DepMean: 2.5, Dep2Prob: 0.4,
				BranchBias: 0.9, HardBranchFrac: 0.1, WorkingSet: 512 * KB, SeqFrac: 0.6, CodeSize: 32 * KB},
			{Name: "quiet", Weight: 37, Mix: intMix(0.23), DepMean: 2.3, Dep2Prob: 0.4,
				BranchBias: 0.9, HardBranchFrac: 0.1, WorkingSet: 512 * KB, SeqFrac: 0.6, CodeSize: 32 * KB},
			{Name: "fp_burst", Weight: 10, Mix: fpMix(0.38, 0.25), DepMean: 6.0, Dep2Prob: 0.55,
				BranchBias: 0.95, HardBranchFrac: 0.03, WorkingSet: 2 * MB, SeqFrac: 0.85, CodeSize: 24 * KB},
			{Name: "tail", Weight: 8, Mix: intMix(0.22), DepMean: 2.4, Dep2Prob: 0.4,
				BranchBias: 0.9, HardBranchFrac: 0.1, WorkingSet: 512 * KB, SeqFrac: 0.6, CodeSize: 32 * KB},
		},
	},
	{
		Name: "epic_encode", Suite: SuiteMediaBench,
		Phases: []Phase{
			{Name: "read", Weight: 8, Mix: intMix(0.28), DepMean: 2.5, Dep2Prob: 0.4,
				BranchBias: 0.9, HardBranchFrac: 0.08, WorkingSet: 1 * MB, SeqFrac: 0.85, CodeSize: 32 * KB},
			{Name: "pyramid", Weight: 40, Mix: fpMix(0.3, 0.26), DepMean: 5.0, Dep2Prob: 0.5,
				BranchBias: 0.94, HardBranchFrac: 0.04, WorkingSet: 2 * MB, SeqFrac: 0.8, CodeSize: 40 * KB},
			{Name: "quantize", Weight: 30, Mix: mix(0.22, 0.1, 0.12, 0.03, 0.004, 0.06, 0.04, 0.004, 0 /*fsqrt*/), DepMean: 3.0, Dep2Prob: 0.45,
				BranchBias: 0.9, HardBranchFrac: 0.1, WorkingSet: 1 * MB, SeqFrac: 0.7, CodeSize: 32 * KB},
			{Name: "encode", Weight: 22, Mix: intMix(0.2), DepMean: 2.2, Dep2Prob: 0.45,
				BranchBias: 0.87, HardBranchFrac: 0.14, WorkingSet: 512 * KB, SeqFrac: 0.6, CodeSize: 24 * KB},
		},
	},
	{
		// The ADPCM codecs are tiny kernels alternating between a
		// serial predictor-update step and a parallel pack/unpack step
		// every couple of thousand instructions — the canonical
		// fast-workload-variation case the adaptive scheme targets.
		Name: "adpcm_encode", Suite: SuiteMediaBench,
		Loop: true, LoopLen: 7000,
		Phases: []Phase{
			{Name: "predict", Weight: 1.0, Mix: mix(0.18, 0.08, 0.2, 0.03, 0.012, 0, 0, 0, 0), DepMean: 1.35, Dep2Prob: 0.5,
				BranchBias: 0.82, HardBranchFrac: 0.2, WorkingSet: 64 * KB, SeqFrac: 0.9, CodeSize: 8 * KB},
			{Name: "pack", Weight: 1.0, Mix: intMix(0.32), DepMean: 8.0, Dep2Prob: 0.3,
				BranchBias: 0.96, HardBranchFrac: 0.02, WorkingSet: 64 * KB, SeqFrac: 0.95, CodeSize: 8 * KB},
		},
	},
	{
		Name: "adpcm_decode", Suite: SuiteMediaBench,
		Loop: true, LoopLen: 6000,
		Phases: []Phase{
			{Name: "unpack", Weight: 0.8, Mix: intMix(0.34), DepMean: 8.0, Dep2Prob: 0.3,
				BranchBias: 0.96, HardBranchFrac: 0.02, WorkingSet: 64 * KB, SeqFrac: 0.95, CodeSize: 8 * KB},
			{Name: "reconstruct", Weight: 1.2, Mix: mix(0.16, 0.1, 0.19, 0.025, 0.01, 0, 0, 0, 0), DepMean: 1.35, Dep2Prob: 0.5,
				BranchBias: 0.8, HardBranchFrac: 0.22, WorkingSet: 64 * KB, SeqFrac: 0.9, CodeSize: 8 * KB},
		},
	},
	{
		Name: "g721_encode", Suite: SuiteMediaBench,
		Loop: true, LoopLen: 3000,
		Phases: []Phase{
			{Name: "filter", Weight: 1.0, Mix: mix(0.2, 0.08, 0.14, 0.09, 0.01, 0, 0, 0, 0), DepMean: 2.0, Dep2Prob: 0.55,
				BranchBias: 0.88, HardBranchFrac: 0.12, WorkingSet: 96 * KB, SeqFrac: 0.8, CodeSize: 16 * KB},
			{Name: "quantize", Weight: 0.7, Mix: intMix(0.24), DepMean: 5.0, Dep2Prob: 0.4,
				BranchBias: 0.93, HardBranchFrac: 0.06, WorkingSet: 96 * KB, SeqFrac: 0.85, CodeSize: 16 * KB},
			{Name: "update", Weight: 0.5, Mix: mix(0.15, 0.12, 0.22, 0.04, 0.01, 0, 0, 0, 0), DepMean: 1.6, Dep2Prob: 0.5,
				BranchBias: 0.8, HardBranchFrac: 0.2, WorkingSet: 96 * KB, SeqFrac: 0.7, CodeSize: 16 * KB},
		},
	},
	{
		Name: "gsm_decode", Suite: SuiteMediaBench,
		Loop: true, LoopLen: 2600,
		Phases: []Phase{
			{Name: "ltp", Weight: 1.0, Mix: mix(0.22, 0.07, 0.13, 0.11, 0.004, 0, 0, 0, 0), DepMean: 2.1, Dep2Prob: 0.55,
				BranchBias: 0.9, HardBranchFrac: 0.09, WorkingSet: 128 * KB, SeqFrac: 0.85, CodeSize: 16 * KB},
			{Name: "synthesis", Weight: 0.9, Mix: intMix(0.28), DepMean: 5.5, Dep2Prob: 0.35,
				BranchBias: 0.95, HardBranchFrac: 0.03, WorkingSet: 128 * KB, SeqFrac: 0.9, CodeSize: 16 * KB},
			{Name: "postfilter", Weight: 0.6, Mix: mix(0.18, 0.1, 0.2, 0.05, 0.008, 0, 0, 0, 0), DepMean: 1.7, Dep2Prob: 0.5,
				BranchBias: 0.83, HardBranchFrac: 0.18, WorkingSet: 128 * KB, SeqFrac: 0.75, CodeSize: 16 * KB},
		},
	},
	// ------------------------------------------------------------------
	// SPECint2000
	// ------------------------------------------------------------------
	{
		Name: "bzip2", Suite: SuiteSPECint,
		Loop: true, LoopLen: 90000,
		Phases: []Phase{
			{Name: "sort", Weight: 1.2, Mix: intMix(0.27), DepMean: 2.8, Dep2Prob: 0.45,
				BranchBias: 0.85, HardBranchFrac: 0.16, WorkingSet: 4 * MB, SeqFrac: 0.35, CodeSize: 32 * KB},
			{Name: "huffman", Weight: 0.8, Mix: intMix(0.2), DepMean: 2.2, Dep2Prob: 0.45,
				BranchBias: 0.88, HardBranchFrac: 0.12, WorkingSet: 1 * MB, SeqFrac: 0.6, CodeSize: 24 * KB},
		},
	},
	{
		Name: "gcc", Suite: SuiteSPECint,
		Phases: []Phase{
			{Name: "parse", Weight: 25, Mix: intMix(0.25), DepMean: 2.4, Dep2Prob: 0.45,
				BranchBias: 0.84, HardBranchFrac: 0.18, WorkingSet: 2 * MB, SeqFrac: 0.4, CodeSize: 256 * KB},
			{Name: "rtl", Weight: 35, Mix: intMix(0.27), DepMean: 2.6, Dep2Prob: 0.5,
				BranchBias: 0.85, HardBranchFrac: 0.17, WorkingSet: 4 * MB, SeqFrac: 0.35, CodeSize: 384 * KB},
			{Name: "regalloc", Weight: 20, Mix: intMix(0.3), DepMean: 2.2, Dep2Prob: 0.5,
				BranchBias: 0.83, HardBranchFrac: 0.2, WorkingSet: 3 * MB, SeqFrac: 0.3, CodeSize: 256 * KB},
			{Name: "emit", Weight: 20, Mix: intMix(0.24), DepMean: 2.8, Dep2Prob: 0.4,
				BranchBias: 0.88, HardBranchFrac: 0.12, WorkingSet: 1 * MB, SeqFrac: 0.6, CodeSize: 128 * KB},
		},
	},
	{
		Name: "gzip", Suite: SuiteSPECint,
		Loop: true, LoopLen: 60000,
		Phases: []Phase{
			{Name: "deflate", Weight: 1.3, Mix: intMix(0.26), DepMean: 2.5, Dep2Prob: 0.45,
				BranchBias: 0.86, HardBranchFrac: 0.14, WorkingSet: 512 * KB, SeqFrac: 0.55, CodeSize: 24 * KB},
			{Name: "longest_match", Weight: 0.7, Mix: intMix(0.33), DepMean: 2.0, Dep2Prob: 0.5,
				BranchBias: 0.8, HardBranchFrac: 0.22, WorkingSet: 512 * KB, SeqFrac: 0.45, CodeSize: 16 * KB},
		},
	},
	{
		// mcf is the memory-bound pointer chaser: huge working set,
		// random accesses, low ILP — the LS domain dominates.
		Name: "mcf", Suite: SuiteSPECint,
		Phases: []Phase{
			{Name: "simplex", Weight: 70, Mix: mix(0.34, 0.1, 0.16, 0.01, 0.001, 0, 0, 0, 0), DepMean: 1.8, Dep2Prob: 0.5,
				BranchBias: 0.86, HardBranchFrac: 0.14, WorkingSet: 24 * MB, SeqFrac: 0.1, CodeSize: 24 * KB},
			{Name: "pricing", Weight: 30, Mix: mix(0.3, 0.08, 0.18, 0.02, 0.002, 0, 0, 0, 0), DepMean: 2.0, Dep2Prob: 0.45,
				BranchBias: 0.84, HardBranchFrac: 0.16, WorkingSet: 24 * MB, SeqFrac: 0.15, CodeSize: 24 * KB},
		},
	},
	{
		Name: "parser", Suite: SuiteSPECint,
		Loop: true, LoopLen: 40000,
		Phases: []Phase{
			{Name: "tokenize", Weight: 0.6, Mix: intMix(0.24), DepMean: 2.3, Dep2Prob: 0.4,
				BranchBias: 0.86, HardBranchFrac: 0.15, WorkingSet: 512 * KB, SeqFrac: 0.6, CodeSize: 64 * KB},
			{Name: "link", Weight: 1.4, Mix: intMix(0.29), DepMean: 2.0, Dep2Prob: 0.5,
				BranchBias: 0.82, HardBranchFrac: 0.2, WorkingSet: 8 * MB, SeqFrac: 0.2, CodeSize: 96 * KB},
		},
	},
	{
		Name: "vortex", Suite: SuiteSPECint,
		Phases: []Phase{
			{Name: "lookup", Weight: 40, Mix: intMix(0.31), DepMean: 2.4, Dep2Prob: 0.45,
				BranchBias: 0.88, HardBranchFrac: 0.11, WorkingSet: 6 * MB, SeqFrac: 0.25, CodeSize: 256 * KB},
			{Name: "insert", Weight: 35, Mix: intMix(0.28), DepMean: 2.2, Dep2Prob: 0.5,
				BranchBias: 0.87, HardBranchFrac: 0.12, WorkingSet: 6 * MB, SeqFrac: 0.3, CodeSize: 256 * KB},
			{Name: "validate", Weight: 25, Mix: intMix(0.25), DepMean: 2.6, Dep2Prob: 0.4,
				BranchBias: 0.89, HardBranchFrac: 0.1, WorkingSet: 4 * MB, SeqFrac: 0.35, CodeSize: 192 * KB},
		},
	},
	// ------------------------------------------------------------------
	// SPECfp2000
	// ------------------------------------------------------------------
	{
		Name: "applu", Suite: SuiteSPECfp,
		Phases: []Phase{
			{Name: "jacobi", Weight: 45, Mix: fpMix(0.42, 0.28), DepMean: 7.0, Dep2Prob: 0.6,
				BranchBias: 0.97, HardBranchFrac: 0.01, WorkingSet: 12 * MB, SeqFrac: 0.9, Stride: 8, CodeSize: 64 * KB},
			{Name: "blts", Weight: 30, Mix: fpMix(0.38, 0.3), DepMean: 5.0, Dep2Prob: 0.6,
				BranchBias: 0.96, HardBranchFrac: 0.02, WorkingSet: 12 * MB, SeqFrac: 0.85, Stride: 8, CodeSize: 64 * KB},
			{Name: "rhs", Weight: 25, Mix: fpMix(0.4, 0.26), DepMean: 6.5, Dep2Prob: 0.6,
				BranchBias: 0.97, HardBranchFrac: 0.01, WorkingSet: 12 * MB, SeqFrac: 0.9, Stride: 8, CodeSize: 64 * KB},
		},
	},
	{
		// art alternates a short FP-heavy neuron-evaluation scan with a
		// short integer winner-search step; the alternation period is a
		// small fraction of the 10K-instruction fixed interval, putting
		// art in the fast-variation group alongside the codecs.
		Name: "art", Suite: SuiteSPECfp,
		Loop: true, LoopLen: 2400,
		Phases: []Phase{
			{Name: "f1_scan", Weight: 1.1, Mix: fpMix(0.4, 0.3), DepMean: 6.0, Dep2Prob: 0.55,
				BranchBias: 0.96, HardBranchFrac: 0.02, WorkingSet: 3 * MB, SeqFrac: 0.9, CodeSize: 16 * KB},
			{Name: "match", Weight: 0.9, Mix: intMix(0.26), DepMean: 1.8, Dep2Prob: 0.5,
				BranchBias: 0.84, HardBranchFrac: 0.17, WorkingSet: 1 * MB, SeqFrac: 0.5, CodeSize: 16 * KB},
		},
	},
	{
		Name: "equake", Suite: SuiteSPECfp,
		Loop: true, LoopLen: 50000,
		Phases: []Phase{
			{Name: "smvp", Weight: 1.2, Mix: fpMix(0.36, 0.32), DepMean: 4.5, Dep2Prob: 0.6,
				BranchBias: 0.95, HardBranchFrac: 0.03, WorkingSet: 10 * MB, SeqFrac: 0.5, CodeSize: 32 * KB},
			{Name: "time_integ", Weight: 0.8, Mix: fpMix(0.3, 0.26), DepMean: 5.5, Dep2Prob: 0.55,
				BranchBias: 0.96, HardBranchFrac: 0.02, WorkingSet: 6 * MB, SeqFrac: 0.8, CodeSize: 24 * KB},
		},
	},
	{
		Name: "mesa", Suite: SuiteSPECfp,
		Phases: []Phase{
			{Name: "vertex", Weight: 30, Mix: fpMix(0.33, 0.24), DepMean: 5.0, Dep2Prob: 0.55,
				BranchBias: 0.94, HardBranchFrac: 0.04, WorkingSet: 2 * MB, SeqFrac: 0.75, CodeSize: 96 * KB},
			{Name: "raster", Weight: 45, Mix: mix(0.24, 0.12, 0.12, 0.02, 0.002, 0.1, 0.08, 0.006, 0), DepMean: 3.5, Dep2Prob: 0.5,
				BranchBias: 0.9, HardBranchFrac: 0.09, WorkingSet: 4 * MB, SeqFrac: 0.65, CodeSize: 128 * KB},
			{Name: "texture", Weight: 25, Mix: mix(0.3, 0.08, 0.1, 0.02, 0, 0.08, 0.07, 0.004, 0), DepMean: 4.0, Dep2Prob: 0.5,
				BranchBias: 0.92, HardBranchFrac: 0.06, WorkingSet: 8 * MB, SeqFrac: 0.5, CodeSize: 96 * KB},
		},
	},
	{
		Name: "swim", Suite: SuiteSPECfp,
		Phases: []Phase{
			{Name: "calc1", Weight: 35, Mix: fpMix(0.45, 0.3), DepMean: 8.0, Dep2Prob: 0.6,
				BranchBias: 0.98, HardBranchFrac: 0.005, WorkingSet: 16 * MB, SeqFrac: 0.95, Stride: 8, CodeSize: 32 * KB},
			{Name: "calc2", Weight: 35, Mix: fpMix(0.44, 0.31), DepMean: 8.0, Dep2Prob: 0.6,
				BranchBias: 0.98, HardBranchFrac: 0.005, WorkingSet: 16 * MB, SeqFrac: 0.95, Stride: 8, CodeSize: 32 * KB},
			{Name: "calc3", Weight: 30, Mix: fpMix(0.42, 0.3), DepMean: 7.5, Dep2Prob: 0.6,
				BranchBias: 0.98, HardBranchFrac: 0.005, WorkingSet: 16 * MB, SeqFrac: 0.95, Stride: 8, CodeSize: 32 * KB},
		},
	},
}

// synthetic is the diagnostic side registry (SuiteSynthetic): named,
// reproducible workloads for exercising simulator mechanisms rather
// than reproducing paper results.
var synthetic = []Profile{
	{
		// idle_burst stresses the event engine's idle-domain
		// descheduling: three long single-domain bursts, each tens of
		// sampling intervals long, so at any moment two of the three
		// execution domains have empty queues and should be asleep with
		// their edges batch-skipped. The paper's suite never leaves a
		// domain idle this long — codecs alternate within a burst —
		// which is exactly why the engine's skip accounting needs a
		// dedicated workload to be observable at scale.
		Name: "idle_burst", Suite: SuiteSynthetic,
		// LoopLen is instructions per unit of phase weight: each burst
		// runs 30K instructions (three sampling intervals), a 90K cycle.
		Loop: true, LoopLen: 30000,
		Phases: []Phase{
			// Integer spin: no FP at all, almost no memory traffic.
			{Name: "int_spin", Weight: 1.0, Mix: mix(0.02, 0.01, 0.05, 0.01, 0, 0, 0, 0, 0), DepMean: 2.0, Dep2Prob: 0.4,
				BranchBias: 0.95, HardBranchFrac: 0.03, WorkingSet: 32 * KB, SeqFrac: 0.95, CodeSize: 8 * KB},
			// FP spin: the INT and LS domains starve.
			{Name: "fp_spin", Weight: 1.0, Mix: mix(0.05, 0.02, 0.03, 0, 0, 0.5, 0.36, 0.02, 0.005), DepMean: 6.0, Dep2Prob: 0.55,
				BranchBias: 0.97, HardBranchFrac: 0.01, WorkingSet: 64 * KB, SeqFrac: 0.95, CodeSize: 8 * KB},
			// Memory spin: load/store dominated, FP silent.
			{Name: "mem_spin", Weight: 1.0, Mix: mix(0.45, 0.28, 0.05, 0, 0, 0, 0, 0, 0), DepMean: 2.5, Dep2Prob: 0.45,
				BranchBias: 0.94, HardBranchFrac: 0.04, WorkingSet: 8 * MB, SeqFrac: 0.3, CodeSize: 8 * KB},
		},
	},
}

// Synthetic returns the diagnostic side registry.
func Synthetic() []Profile {
	out := make([]Profile, len(synthetic))
	copy(out, synthetic)
	return out
}

// Profiles returns the full benchmark registry in suite order
// (MediaBench, SPECint, SPECfp), copying the slice header so callers
// cannot reorder the registry.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// Names returns the registered benchmark names in registry order.
func Names() []string {
	out := make([]string, len(profiles))
	for i := range profiles {
		out[i] = profiles[i].Name
	}
	return out
}

// ByName looks up one profile, searching the paper suite first and the
// synthetic side registry second.
func ByName(name string) (Profile, error) {
	for i := range profiles {
		if profiles[i].Name == name {
			return profiles[i], nil
		}
	}
	for i := range synthetic {
		if synthetic[i].Name == name {
			return synthetic[i], nil
		}
	}
	// Offer the sorted name list in the error to make CLI typos cheap.
	names := Names()
	for i := range synthetic {
		names = append(names, synthetic[i].Name)
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q (have %v)", name, names)
}

// BySuite returns the profiles belonging to one suite (including
// SuiteSynthetic, which Profiles and Names omit).
func BySuite(suite string) []Profile {
	var out []Profile
	for i := range profiles {
		if profiles[i].Suite == suite {
			out = append(out, profiles[i])
		}
	}
	for i := range synthetic {
		if synthetic[i].Suite == suite {
			out = append(out, synthetic[i])
		}
	}
	return out
}
