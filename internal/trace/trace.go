// Package trace generates synthetic dynamic instruction streams for the
// MCD processor simulator.
//
// The paper evaluates on MediaBench and SPEC2000 binaries running under a
// cycle-accurate simulator. Those binaries and inputs are not available
// here, so each benchmark is replaced by a *profile*: a sequence of
// program phases, each characterized by its instruction mix, its
// dependency-distance distribution (instruction-level parallelism), its
// branch behavior, and its memory working set. The generator streams
// micro-operations (isa.Inst) drawn from the active phase, switching
// phases at the profiled boundaries.
//
// This substitution preserves what the paper's DVFS controllers actually
// observe: issue-queue occupancy dynamics created by the interaction of
// the front-end arrival rate and each domain's service rate. Phase
// changes in the profile produce exactly the workload swings — gradual
// drifts, sharp bursts, long empty stretches — that drive Figures 7–11.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"mcddvfs/internal/isa"
)

// Mix is the probability of each operation class in a phase. Weights
// need not sum to 1; the generator normalizes them.
type Mix [isa.NumClasses]float64

// normalize returns cumulative probabilities over the classes.
func (m Mix) cumulative() ([isa.NumClasses]float64, error) {
	var cum [isa.NumClasses]float64
	total := 0.0
	for _, w := range m {
		if w < 0 {
			return cum, fmt.Errorf("trace: negative mix weight %g", w)
		}
		total += w
	}
	if total == 0 {
		return cum, fmt.Errorf("trace: empty instruction mix")
	}
	acc := 0.0
	for i, w := range m {
		acc += w / total
		cum[i] = acc
	}
	cum[isa.NumClasses-1] = 1.0
	return cum, nil
}

// Phase describes one program phase.
type Phase struct {
	// Name labels the phase in reports.
	Name string
	// Weight is the phase's share of the benchmark's dynamic
	// instructions (relative to the sum of weights over all phases).
	Weight float64
	// Mix is the instruction-class mix.
	Mix Mix
	// DepMean is the mean producer distance for register operands.
	// Distances are drawn from a geometric distribution with this mean;
	// small values serialize execution (low ILP), large values expose
	// parallelism.
	DepMean float64
	// Dep2Prob is the probability that an instruction has a second
	// register operand.
	Dep2Prob float64
	// BranchBias is the taken probability of easy (strongly biased)
	// static branches.
	BranchBias float64
	// HardBranchFrac is the fraction of static branches that are hard
	// (outcome near 50/50), which sets the misprediction rate the
	// predictor can achieve.
	HardBranchFrac float64
	// WorkingSet is the data working-set size in bytes; data addresses
	// fall inside it.
	WorkingSet uint64
	// SeqFrac is the fraction of memory accesses that follow a
	// sequential (strided) stream; the rest are uniform over the
	// working set.
	SeqFrac float64
	// Stride is the byte stride of the sequential stream (default 8).
	Stride uint64
	// CodeSize is the static code footprint in bytes; the PC walks
	// inside it, which determines I-cache behavior.
	CodeSize uint64
}

// Profile is a complete synthetic benchmark.
type Profile struct {
	// Name identifies the benchmark (e.g. "epic_decode").
	Name string
	// Suite is "MediaBench", "SPECint" or "SPECfp".
	Suite string
	// Phases play in order; with Loop set the sequence repeats until
	// the requested instruction budget is exhausted, otherwise phase
	// lengths are scaled proportionally to their weights.
	Phases []Phase
	// Loop selects cyclic phase repetition with LoopLen instructions
	// per weight unit, producing workload variation whose period is
	// independent of the total run length (fast-varying benchmarks).
	Loop bool
	// LoopLen is the number of instructions corresponding to one unit
	// of phase weight when Loop is set.
	LoopLen int64
}

// Validate checks the profile for structural errors.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile with empty name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("trace: profile %q has no phases", p.Name)
	}
	total := 0.0
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Weight <= 0 {
			return fmt.Errorf("trace: profile %q phase %q: non-positive weight", p.Name, ph.Name)
		}
		total += ph.Weight
		if _, err := ph.Mix.cumulative(); err != nil {
			return fmt.Errorf("trace: profile %q phase %q: %v", p.Name, ph.Name, err)
		}
		if ph.DepMean < 1 {
			return fmt.Errorf("trace: profile %q phase %q: DepMean %g < 1", p.Name, ph.Name, ph.DepMean)
		}
		if ph.WorkingSet == 0 || ph.CodeSize == 0 {
			return fmt.Errorf("trace: profile %q phase %q: zero working set or code size", p.Name, ph.Name)
		}
	}
	if p.Loop && p.LoopLen <= 0 {
		return fmt.Errorf("trace: looping profile %q needs LoopLen > 0", p.Name)
	}
	_ = total
	return nil
}

// Generator streams the dynamic instructions of a profile. It is
// deterministic for a given (profile, seed, total) triple.
type Generator struct {
	prof  Profile
	rng   *rand.Rand
	total int64
	count int64

	// Per-phase schedule: phase index and remaining instructions.
	phaseIdx  int
	remaining int64
	lengths   []int64 // per-phase lengths for non-loop profiles

	// Cached per-phase derived state.
	cum       [isa.NumClasses]float64
	logQ      float64 // math.Log(1 - 1/DepMean), valid when depGeo
	depGeo    bool    // DepMean > 1: geometric draw needed in drawDep
	dataBase  uint64
	codeBase  uint64
	seqCursor uint64
	pc        uint64

	// branchCount tracks per-static-branch occurrence counts, driving
	// the periodic outcome patterns of easy branches.
	branchCount map[uint64]uint32
}

// codeRegionBase and dataRegionBase separate instruction and data
// address spaces so I- and D-cache behavior do not interfere.
const (
	codeRegionBase = 0x0040_0000
	dataRegionBase = 0x1000_0000
)

// streamSeedOffset decouples the workload stream's RNG from the other
// RNG consumers (clock jitter, fault processes) that the harness
// derives from the same user-facing seed.
const streamSeedOffset = 11

// StreamSeed maps a user-facing harness seed to the generator seed of
// the workload stream. The experiment harness and tracegen's corpus
// emitter share this mapping, which is what makes a corpus member
// recorded at seed S bit-identical to the stream the harness would
// generate itself for Options.Seed = S.
func StreamSeed(seed int64) int64 { return seed + streamSeedOffset }

// NewGenerator builds a generator producing exactly total instructions.
func NewGenerator(p Profile, seed int64, total int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if total <= 0 {
		return nil, fmt.Errorf("trace: non-positive instruction budget %d", total)
	}
	g := &Generator{
		prof:        p,
		rng:         rand.New(rand.NewSource(seed)),
		total:       total,
		branchCount: make(map[uint64]uint32),
	}
	if !p.Loop {
		g.lengths = scaledLengths(p.Phases, total)
	}
	g.enterPhase(0)
	return g, nil
}

// scaledLengths distributes total over phases proportionally to weight,
// guaranteeing every phase at least 1 instruction and an exact sum.
func scaledLengths(phases []Phase, total int64) []int64 {
	wsum := 0.0
	for i := range phases {
		wsum += phases[i].Weight
	}
	lens := make([]int64, len(phases))
	var used int64
	for i := range phases {
		l := int64(float64(total) * phases[i].Weight / wsum)
		if l < 1 {
			l = 1
		}
		lens[i] = l
		used += l
	}
	// Fix rounding drift on the longest phase.
	drift := total - used
	longest := 0
	for i, l := range lens {
		if l > lens[longest] {
			longest = i
		}
		_ = l
	}
	lens[longest] += drift
	if lens[longest] < 1 {
		lens[longest] = 1
	}
	return lens
}

func (g *Generator) enterPhase(idx int) {
	g.phaseIdx = idx
	ph := &g.prof.Phases[idx]
	if g.prof.Loop {
		g.remaining = int64(ph.Weight * float64(g.prof.LoopLen))
		if g.remaining < 1 {
			g.remaining = 1
		}
	} else {
		g.remaining = g.lengths[idx]
	}
	cum, err := ph.Mix.cumulative()
	if err != nil {
		panic(err) // validated in NewGenerator
	}
	g.cum = cum
	// The geometric dependence draw divides by math.Log(1-p) with
	// p = 1/DepMean — a per-phase constant, cached here so drawDep pays
	// one Log per draw instead of two. The division form is kept in
	// drawDep so drawn values stay bit-identical.
	g.depGeo = ph.DepMean > 1
	if g.depGeo {
		g.logQ = math.Log(1 - 1/ph.DepMean)
	} else {
		g.logQ = 0
	}
	// Benchmarks reuse one data region across phases (working sets
	// overlap, as in real programs); code regions differ per phase so
	// that phase changes disturb the I-cache.
	g.dataBase = dataRegionBase
	g.codeBase = codeRegionBase + uint64(idx)*0x0010_0000
	g.pc = g.codeBase
}

// advancePhase moves to the next phase per the profile's policy and
// reports whether another phase is available.
func (g *Generator) advancePhase() bool {
	next := g.phaseIdx + 1
	if next >= len(g.prof.Phases) {
		if !g.prof.Loop {
			return false
		}
		next = 0
	}
	g.enterPhase(next)
	return true
}

// Remaining returns how many instructions the generator will still emit.
func (g *Generator) Remaining() int64 { return g.total - g.count }

// Phase returns the name of the currently active phase.
func (g *Generator) Phase() string { return g.prof.Phases[g.phaseIdx].Name }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next dynamic instruction. ok is false once the
// instruction budget is exhausted.
func (g *Generator) Next() (in isa.Inst, ok bool) {
	if g.count >= g.total {
		return isa.Inst{}, false
	}
	for g.remaining <= 0 {
		if !g.advancePhase() {
			return isa.Inst{}, false
		}
	}
	ph := &g.prof.Phases[g.phaseIdx]
	g.count++
	g.remaining--

	in.Class = g.classAtPC(g.pc)
	in.PC = g.pc

	// Register dependencies: geometric producer distances.
	in.Dep1 = g.drawDep(ph)
	if g.rng.Float64() < ph.Dep2Prob {
		in.Dep2 = g.drawDep(ph)
	}

	switch in.Class {
	case isa.Load, isa.Store:
		in.Addr = g.drawAddr(ph)
	case isa.Branch:
		in.Taken, in.Target = g.drawBranch(ph)
	}

	// Advance the PC: straight-line code, except taken branches jump.
	if in.Class == isa.Branch && in.Taken {
		g.pc = in.Target
	} else {
		g.pc = g.nextPC(ph, g.pc+4)
	}
	return in, true
}

// classAtPC returns the operation class of the static instruction at
// pc. The class is a *deterministic* hash of the PC mapped through the
// phase's mix distribution: the synthetic code is a real static program
// — revisiting a PC (a loop iteration) re-executes the same
// instruction. This is what lets branch predictors, BTBs, and I-caches
// warm up exactly as they do on real binaries, while the dynamic mix
// still converges to the configured distribution over the code region.
func (g *Generator) classAtPC(pc uint64) isa.Class {
	h := (pc ^ 0xA5A5_5A5A_1234_9876) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	u := float64(h>>11) / float64(uint64(1)<<53)
	// Linear scan: NumClasses is small, and this runs once per emitted
	// instruction — the sort.Search closure overhead is measurable here.
	for i := 0; i < isa.NumClasses-1; i++ {
		if g.cum[i] >= u {
			return isa.Class(i)
		}
	}
	return isa.Class(isa.NumClasses - 1)
}

// drawDep samples a producer distance: geometric with the phase mean,
// clamped to [1, 512]. A distance of 0 (no dependence) happens when the
// geometric draw exceeds the clamp, modeling operands produced far in
// the past that are architecturally ready.
func (g *Generator) drawDep(ph *Phase) uint32 {
	// Geometric with success probability p = 1/mean, support {1,2,...}.
	// math.Log(1-p) is the per-phase constant cached as logQ.
	// Inverse-transform sampling keeps it to one uniform draw.
	u := g.rng.Float64()
	d := int64(1)
	if g.depGeo {
		d = int64(math.Log(1-u)/g.logQ) + 1
	}
	if d > 512 {
		return 0 // long-dead producer: operand ready
	}
	if d < 1 {
		d = 1
	}
	return uint32(d)
}

// drawAddr samples a data address: a sequential (strided) stream with
// probability SeqFrac; otherwise an irregular access over the working
// set. Irregular accesses still have temporal locality, as in real
// programs: 3 in 4 hit a hot subset one eighth the working-set size,
// the rest range over the whole set. A working set much larger than the
// cache hierarchy (e.g. mcf's) therefore still thrashes, while modest
// working sets enjoy realistic hit rates.
func (g *Generator) drawAddr(ph *Phase) uint64 {
	if g.rng.Float64() < ph.SeqFrac {
		stride := ph.Stride
		if stride == 0 {
			stride = 8
		}
		g.seqCursor += stride
		if g.seqCursor >= ph.WorkingSet {
			g.seqCursor = 0
		}
		return g.dataBase + g.seqCursor
	}
	span := ph.WorkingSet
	if g.rng.Float64() < 0.75 {
		span = ph.WorkingSet / 8
		if span < 64 {
			span = 64
		}
	}
	off := uint64(g.rng.Int63n(int64(span/8))) * 8
	return g.dataBase + off
}

// drawBranch produces a branch outcome and target.
//
// The static branch at a PC has a deterministic *kind* and *target*
// (real branch targets are static), so the BTB and direction predictors
// warm up exactly as on real binaries:
//
//   - ~25% are loop back-edges: a short backward target (body of 1–64
//     instructions) taken (k−1)-of-k, with the trip count k derived
//     from the phase bias and a heavy-tailed hash factor. These create
//     the hot loops where execution concentrates.
//   - ~60% are forward conditionals (if/else): a short forward target,
//     mostly not taken (taken 1-of-m periodically), so control flows
//     onward locally.
//   - the rest are far jumps across the code region, rarely taken.
//
// A HardBranchFrac subset of static branches is data-dependent instead:
// a 55/45 coin flip no predictor beats, which sets the achievable
// misprediction rate for the phase.
func (g *Generator) drawBranch(ph *Phase) (taken bool, target uint64) {
	h := g.pc * 0x9E3779B97F4A7C15
	c := g.branchCount[g.pc]
	g.branchCount[g.pc] = c + 1
	hard := isHardBranch(g.pc, ph.HardBranchFrac)

	kind := h % 100
	switch {
	case kind < 25: // loop back-edge
		back := (h>>17)%64*4 + 4
		target = g.pc - back
		if target < g.codeBase {
			target += ph.CodeSize
		}
		if hard {
			taken = g.rng.Float64() < 0.55
			break
		}
		bias := ph.BranchBias
		if bias < 0.5 || bias >= 1 {
			bias = 0.9
		}
		// Trip count: phase-bias base times a hash factor of 1–4,
		// making the distribution heavy-tailed so hot loops dominate.
		k := uint32(1 / (1 - bias))
		if k < 2 {
			k = 2
		}
		k <<= (h >> 9) % 3
		taken = c%k != k-1
	case kind < 85: // forward conditional
		// Short forward hops (2–9 instructions): if/else joins stay
		// inside the enclosing loop body, as compilers lay them out.
		fwd := (h>>17)%8*4 + 8
		target = g.pc + fwd
		if hard {
			taken = g.rng.Float64() < 0.45
			break
		}
		m := uint32(3 + (h>>9)%8)
		taken = c%m == m-1 // mostly not taken
	default: // far jump (call-like), rarely taken
		target = g.codeBase + (h>>23)%(ph.CodeSize/4)*4
		taken = c%8 == 7
	}
	return taken, g.nextPC(ph, target)
}

// nextPC wraps the program counter inside the phase code region.
func (g *Generator) nextPC(ph *Phase, pc uint64) uint64 {
	if pc < g.codeBase || pc >= g.codeBase+ph.CodeSize {
		return g.codeBase + (pc % ph.CodeSize &^ 3)
	}
	return pc
}

// isHardBranch deterministically classifies a static branch by hashing
// its PC against the hard fraction.
func isHardBranch(pc uint64, hardFrac float64) bool {
	h := pc * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return float64(h>>40)/float64(1<<24) < hardFrac
}
