package power

import (
	"math"
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
)

func TestDefaultModelsValidateAndSumTo50W(t *testing.T) {
	models := DefaultModels()
	if len(models) != 4 {
		t.Fatalf("expected 4 domains, got %d", len(models))
	}
	totalW := 0.0
	for _, m := range models {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
		totalW += m.SwitchedCapF * 1.2 * 1.2 * 1e9
	}
	if math.Abs(totalW-50) > 1e-6 {
		t.Errorf("full-activity dynamic power = %g W, want 50", totalW)
	}
}

func TestCycleEnergyScalesWithVSquared(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0, LeakagePerV: 0})
	m.Cycle(1.2, 1)
	e12 := m.DynamicJ()
	m2 := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0, LeakagePerV: 0})
	m2.Cycle(0.6, 1)
	e06 := m2.DynamicJ()
	if math.Abs(e12/e06-4) > 1e-9 {
		t.Errorf("E(1.2V)/E(0.6V) = %g, want 4 (V^2 scaling)", e12/e06)
	}
}

func TestClockGatingFloor(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0.1})
	m.Cycle(1.0, 0) // fully idle
	idle := m.DynamicJ()
	m2 := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0.1})
	m2.Cycle(1.0, 1) // fully busy
	busy := m2.DynamicJ()
	if math.Abs(idle/busy-0.1) > 1e-9 {
		t.Errorf("idle/busy = %g, want 0.1 (gated fraction)", idle/busy)
	}
}

func TestActivityClamped(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0})
	m.Cycle(1.0, 2.5)
	over := m.DynamicJ()
	m2 := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0})
	m2.Cycle(1.0, 1)
	if over != m2.DynamicJ() {
		t.Error("activity above 1 not clamped")
	}
	m3 := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0})
	m3.Cycle(1.0, -3)
	if m3.DynamicJ() != 0 {
		t.Error("negative activity not clamped to 0")
	}
}

func TestLeakIntegratesOverTime(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, LeakagePerV: 2}) // 2 W/V
	m.Leak(clock.Millisecond, 1.0)                                            // 2 W for 1 ms
	want := 2e-3
	if math.Abs(m.LeakageJ()-want) > 1e-12 {
		t.Errorf("leakage = %g J, want %g", m.LeakageJ(), want)
	}
	// Second call integrates only the delta.
	m.Leak(2*clock.Millisecond, 0.5)
	want += 1e-3
	if math.Abs(m.LeakageJ()-want) > 1e-12 {
		t.Errorf("leakage = %g J, want %g", m.LeakageJ(), want)
	}
	// Non-monotonic timestamps must not add energy.
	before := m.LeakageJ()
	m.Leak(clock.Millisecond, 1.0)
	if m.LeakageJ() != before {
		t.Error("backwards Leak added energy")
	}
}

func TestEnergyNeverNegative(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0.1, LeakagePerV: 1})
	f := func(vRaw uint8, act float64, dt uint32) bool {
		v := 0.65 + float64(vRaw%56)/100
		m.Cycle(v, act)
		m.Leak(m.lastLeak+clock.Time(dt), v)
		return m.TotalJ() >= 0 && m.DynamicJ() >= 0 && m.LeakageJ() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMeanActivityAndCycles(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9})
	m.Cycle(1, 0.2)
	m.Cycle(1, 0.8)
	if m.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2", m.Cycles())
	}
	if math.Abs(m.MeanActivity()-0.5) > 1e-12 {
		t.Errorf("mean activity = %g, want 0.5", m.MeanActivity())
	}
}

func TestMetricsEDPAndIPS(t *testing.T) {
	m := Metrics{EnergyJ: 2, ExecTime: clock.Second / 2, Instructions: 1000}
	if m.EDP() != 1 {
		t.Errorf("EDP = %g, want 1", m.EDP())
	}
	if m.IPS() != 2000 {
		t.Errorf("IPS = %g, want 2000", m.IPS())
	}
	if (Metrics{}).IPS() != 0 {
		t.Error("zero metrics should have 0 IPS")
	}
}

func TestCompare(t *testing.T) {
	base := Metrics{EnergyJ: 10, ExecTime: clock.Second}
	run := Metrics{EnergyJ: 9, ExecTime: clock.Second + clock.Second/100*3}
	c := Compare(base, run)
	if math.Abs(c.EnergySaving-0.10) > 1e-9 {
		t.Errorf("energy saving = %g, want 0.10", c.EnergySaving)
	}
	if math.Abs(c.PerfDegradation-0.03) > 1e-9 {
		t.Errorf("perf degradation = %g, want 0.03", c.PerfDegradation)
	}
	wantEDP := 1 - (9*1.03)/(10*1)
	if math.Abs(c.EDPImprovement-wantEDP) > 1e-9 {
		t.Errorf("EDP improvement = %g, want %g", c.EDPImprovement, wantEDP)
	}
	// Degenerate baseline doesn't divide by zero.
	_ = Compare(Metrics{}, run)
}

func TestAddJ(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9})
	m.AddJ(0.5)
	if m.TotalJ() != 0.5 {
		t.Errorf("TotalJ = %g, want 0.5", m.TotalJ())
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	bad := []DomainModel{
		{Name: "a", SwitchedCapF: 0},
		{Name: "b", SwitchedCapF: 1e-9, GatedFraction: -0.1},
		{Name: "c", SwitchedCapF: 1e-9, GatedFraction: 1.1},
		{Name: "d", SwitchedCapF: 1e-9, LeakagePerV: -1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q: expected validation error", m.Name)
		}
	}
}

func TestNewMeterPanicsOnInvalidModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMeter(DomainModel{Name: "bad"})
}

func TestCycleDeepGated(t *testing.T) {
	m := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0.1})
	m.CycleDeepGated(1.0, 0.02)
	deep := m.DynamicJ()
	r := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9, GatedFraction: 0.1})
	r.Cycle(1.0, 0) // regular gating floor
	regular := r.DynamicJ()
	if math.Abs(deep/regular-0.2) > 1e-9 { // 0.02 / 0.10
		t.Errorf("deep/regular = %g, want 0.2", deep/regular)
	}
	// Clamping.
	m2 := NewMeter(DomainModel{Name: "x", SwitchedCapF: 1e-9})
	m2.CycleDeepGated(1.0, -1)
	if m2.DynamicJ() != 0 {
		t.Error("negative factor not clamped")
	}
	m2.CycleDeepGated(1.0, 5)
	if m2.DynamicJ() != 1e-9 {
		t.Errorf("over-unity factor not clamped: %g", m2.DynamicJ())
	}
	if m2.Cycles() != 2 {
		t.Errorf("cycles = %d, want 2", m2.Cycles())
	}
}

// TestIdleChargeBitIdenticalToSlowPath is the fast path's contract:
// ticking an IdleCharge must accumulate the exact float64 stream of the
// per-cycle slow path, bit for bit, across arbitrary models, voltages,
// and (jittered, irregular) edge times.
func TestIdleChargeBitIdenticalToSlowPath(t *testing.T) {
	f := func(capPJ, gated, leak, v uint16, deep bool, steps []uint8) bool {
		model := DomainModel{
			Name:          "x",
			SwitchedCapF:  (1 + float64(capPJ)) * 1e-12,
			GatedFraction: float64(gated) / 65535,
			LeakagePerV:   float64(leak) * 1e-3,
		}
		volt := 0.6 + float64(v)/65535
		slow := NewMeter(model)
		fast := NewMeter(model)
		charge := fast.IdleCharge(volt)
		factor := 0.02
		if deep {
			charge = fast.DeepIdleCharge(volt, factor)
		}
		now := clock.Time(0)
		for _, s := range steps {
			now += clock.Time(s) * clock.Picosecond // jittered spacing; 0 steps exercise the now<=lastLeak guard
			if deep {
				slow.CycleDeepGated(volt, factor)
			} else {
				slow.Cycle(volt, 0)
			}
			slow.Leak(now, volt)
			charge.Tick(now)
		}
		return math.Float64bits(slow.DynamicJ()) == math.Float64bits(fast.DynamicJ()) &&
			math.Float64bits(slow.LeakageJ()) == math.Float64bits(fast.LeakageJ()) &&
			slow.Cycles() == fast.Cycles() &&
			math.Float64bits(slow.MeanActivity()) == math.Float64bits(fast.MeanActivity())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
