// Package power implements the Wattch-style energy model of the
// simulated MCD processor. Each clock domain carries an effective
// switched capacitance; per-cycle dynamic energy is C·V² scaled by unit
// activity, with aggressive conditional clock gating (the paper assumes
// "aggressive clock gating that is applied whenever the unit is not
// used"). Leakage is proportional to supply voltage and integrates over
// wall-clock time, so lowering a domain's V/f reduces both components.
//
// As in the paper's evaluation, only energy *ratios* between control
// schemes are meaningful; the capacitance constants are calibrated to
// plausible early-2000s absolute numbers purely for readable reports.
package power

import (
	"fmt"

	"mcddvfs/internal/clock"
)

// DomainModel parameterizes the energy behavior of one clock domain.
type DomainModel struct {
	// Name labels the domain in reports.
	Name string
	// SwitchedCapF is the effective switched capacitance (farads)
	// clocked per cycle at full activity.
	SwitchedCapF float64
	// GatedFraction is the fraction of a unit's dynamic energy still
	// spent when the unit is idle under clock gating (clock tree and
	// ungateable latches).
	GatedFraction float64
	// LeakagePerV is leakage power (watts) per volt of supply.
	LeakagePerV float64
}

// Validate checks the model's physical sanity.
func (m DomainModel) Validate() error {
	if m.SwitchedCapF <= 0 {
		return fmt.Errorf("power: domain %q: non-positive capacitance", m.Name)
	}
	if m.GatedFraction < 0 || m.GatedFraction > 1 {
		return fmt.Errorf("power: domain %q: gated fraction %g outside [0,1]", m.Name, m.GatedFraction)
	}
	if m.LeakagePerV < 0 {
		return fmt.Errorf("power: domain %q: negative leakage", m.Name)
	}
	return nil
}

// DefaultModels returns calibrated per-domain models for the paper's
// 4-domain machine. The split (front end largest, then LS, INT, FP)
// follows the Wattch-reported distribution for a comparable core.
// Capacitances are chosen so the whole chip dissipates ~50 W of dynamic
// power at 1 GHz / 1.2 V full activity, with leakage ~10 % of that.
func DefaultModels() map[string]DomainModel {
	mk := func(name string, fullW float64) DomainModel {
		const vmax, fmax = 1.2, 1e9
		return DomainModel{
			Name:          name,
			SwitchedCapF:  fullW / (vmax * vmax * fmax),
			GatedFraction: 0.10,
			LeakagePerV:   0.10 * fullW / vmax,
		}
	}
	return map[string]DomainModel{
		"FrontEnd": mk("FrontEnd", 15),
		"INT":      mk("INT", 12),
		"FP":       mk("FP", 10),
		"LS":       mk("LS", 13),
	}
}

// Meter accumulates the energy of one domain.
type Meter struct {
	model DomainModel

	dynamicJ float64
	leakageJ float64
	lastLeak clock.Time
	cycles   uint64
	actSum   float64
}

// NewMeter creates a meter for the given model.
func NewMeter(model DomainModel) *Meter {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	return &Meter{model: model}
}

// Model returns the meter's domain model.
func (m *Meter) Model() DomainModel { return m.model }

// Cycle charges one clock cycle's dynamic energy at supply voltage v
// with the given activity factor in [0,1] (fraction of the domain's
// capacitance actually switched; idle capacitance still pays the gated
// fraction).
func (m *Meter) Cycle(v, activity float64) {
	if activity < 0 {
		activity = 0
	} else if activity > 1 {
		activity = 1
	}
	g := m.model.GatedFraction
	eff := g + (1-g)*activity
	m.dynamicJ += m.model.SwitchedCapF * v * v * eff
	m.cycles++
	m.actSum += activity
}

// CycleDeepGated charges one cycle at a deep-gating factor: the whole
// domain's clock is gated off (domain sleep), leaving only the given
// fraction of the full-activity dynamic energy (ungateable global
// clock buffers). Used when a domain has an empty queue and no work in
// flight.
func (m *Meter) CycleDeepGated(v, factor float64) {
	if factor < 0 {
		factor = 0
	} else if factor > 1 {
		factor = 1
	}
	m.dynamicJ += m.model.SwitchedCapF * v * v * factor
	m.cycles++
}

// IdleCharge is the precomputed per-cycle energy effect of a domain
// that is doing no work at a fixed supply voltage: the event engine's
// fast path for descheduled domains. Tick(now) is bit-identical to the
// slow path's Cycle(v, 0)+Leak(now, v) (or CycleDeepGated+Leak for a
// deep-gated domain): the dynamic increment and the leakage-per-second
// product are precomputed with the exact expression shapes the slow
// path evaluates, so replaying N idle cycles through Tick accumulates
// the identical float64 stream. An idle cycle's activity term
// (actSum += 0) is skipped: adding +0 to a non-negative sum is a
// bitwise no-op.
//
// The charge is only valid while the voltage is fixed; recompute it
// after any frequency/voltage transition.
type IdleCharge struct {
	m   *Meter
	dyn float64 // per-cycle dynamic increment at the idle activity
	lv  float64 // leakage watts at v: multiplied by dt per cycle
}

// IdleCharge prepares the fast-path charge equivalent to
// Cycle(v, 0)+Leak(now, v) per tick.
func (m *Meter) IdleCharge(v float64) IdleCharge {
	g := m.model.GatedFraction
	eff := g + (1-g)*0
	return IdleCharge{
		m:   m,
		dyn: m.model.SwitchedCapF * v * v * eff,
		lv:  m.model.LeakagePerV * v,
	}
}

// DeepIdleCharge prepares the fast-path charge equivalent to
// CycleDeepGated(v, factor)+Leak(now, v) per tick.
func (m *Meter) DeepIdleCharge(v, factor float64) IdleCharge {
	if factor < 0 {
		factor = 0
	} else if factor > 1 {
		factor = 1
	}
	return IdleCharge{
		m:   m,
		dyn: m.model.SwitchedCapF * v * v * factor,
		lv:  m.model.LeakagePerV * v,
	}
}

// Tick charges one descheduled cycle at time now.
func (c IdleCharge) Tick(now clock.Time) {
	m := c.m
	m.dynamicJ += c.dyn
	m.cycles++
	if now <= m.lastLeak {
		m.lastLeak = now
		return
	}
	dt := (now - m.lastLeak).Seconds()
	m.leakageJ += c.lv * dt
	m.lastLeak = now
}

// Leak integrates leakage from the last leakage timestamp to now at
// supply voltage v. Call it whenever the voltage changes and at the end
// of simulation.
func (m *Meter) Leak(now clock.Time, v float64) {
	if now <= m.lastLeak {
		m.lastLeak = now
		return
	}
	dt := (now - m.lastLeak).Seconds()
	m.leakageJ += m.model.LeakagePerV * v * dt
	m.lastLeak = now
}

// DynamicJ returns accumulated dynamic energy in joules.
func (m *Meter) DynamicJ() float64 { return m.dynamicJ }

// LeakageJ returns accumulated leakage energy in joules.
func (m *Meter) LeakageJ() float64 { return m.leakageJ }

// TotalJ returns total energy in joules.
func (m *Meter) TotalJ() float64 { return m.dynamicJ + m.leakageJ }

// AddJ charges an unstructured energy cost (e.g. regulator switching
// energy per DVFS transition, when that ablation is enabled).
func (m *Meter) AddJ(j float64) { m.dynamicJ += j }

// Cycles returns the number of charged cycles.
func (m *Meter) Cycles() uint64 { return m.cycles }

// MeanActivity returns the average activity factor over charged cycles.
func (m *Meter) MeanActivity() float64 {
	if m.cycles == 0 {
		return 0
	}
	return m.actSum / float64(m.cycles)
}

// Metrics is the energy/performance outcome of one simulation run.
type Metrics struct {
	// EnergyJ is total chip energy.
	EnergyJ float64
	// ExecTime is the simulated execution time.
	ExecTime clock.Time
	// Instructions retired.
	Instructions int64
}

// EDP returns the energy-delay product (J·s).
func (m Metrics) EDP() float64 { return m.EnergyJ * m.ExecTime.Seconds() }

// IPS returns retired instructions per simulated second.
func (m Metrics) IPS() float64 {
	if m.ExecTime <= 0 {
		return 0
	}
	return float64(m.Instructions) / m.ExecTime.Seconds()
}

// Comparison summarizes a controlled run against a baseline run, using
// the paper's three headline metrics.
type Comparison struct {
	// EnergySaving is 1 − E/E_base (positive = saved energy).
	EnergySaving float64
	// PerfDegradation is T/T_base − 1 (positive = slower).
	PerfDegradation float64
	// EDPImprovement is 1 − EDP/EDP_base (positive = better).
	EDPImprovement float64
}

// Compare computes the paper's metrics for run m against base.
func Compare(base, m Metrics) Comparison {
	c := Comparison{}
	if base.EnergyJ > 0 {
		c.EnergySaving = 1 - m.EnergyJ/base.EnergyJ
	}
	if base.ExecTime > 0 {
		c.PerfDegradation = float64(m.ExecTime)/float64(base.ExecTime) - 1
	}
	if b := base.EDP(); b > 0 {
		c.EDPImprovement = 1 - m.EDP()/b
	}
	return c
}
