package isa

import (
	"testing"
	"testing/quick"
)

func TestClassDomains(t *testing.T) {
	tests := []struct {
		c    Class
		want ExecDomain
	}{
		{IntALU, DomainInt}, {IntMult, DomainInt}, {IntDiv, DomainInt},
		{FPAdd, DomainFP}, {FPMult, DomainFP}, {FPDiv, DomainFP}, {FPSqrt, DomainFP},
		{Load, DomainLS}, {Store, DomainLS},
		{Branch, DomainInt}, {Nop, DomainInt},
	}
	for _, tt := range tests {
		if got := tt.c.Domain(); got != tt.want {
			t.Errorf("%v.Domain() = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestEveryClassHasPositiveLatency(t *testing.T) {
	for c := Class(0); c.Valid(); c++ {
		if c.Latency() <= 0 {
			t.Errorf("%v.Latency() = %d, want > 0", c, c.Latency())
		}
	}
}

func TestEveryClassMapsToValidDomain(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(raw % uint8(NumClasses))
		d := c.Domain()
		return int(d) < NumExecDomains
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIterativeUnitsNotPipelined(t *testing.T) {
	for _, c := range []Class{IntDiv, FPDiv, FPSqrt} {
		if c.Pipelined() {
			t.Errorf("%v should not be pipelined", c)
		}
	}
	for _, c := range []Class{IntALU, IntMult, FPAdd, FPMult, Load, Store, Branch} {
		if !c.Pipelined() {
			t.Errorf("%v should be pipelined", c)
		}
	}
}

func TestHasOutput(t *testing.T) {
	for _, tt := range []struct {
		c    Class
		want bool
	}{
		{IntALU, true}, {Load, true}, {FPMult, true},
		{Store, false}, {Branch, false}, {Nop, false},
	} {
		in := Inst{Class: tt.c}
		if got := in.HasOutput(); got != tt.want {
			t.Errorf("%v.HasOutput() = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestIsFP(t *testing.T) {
	for _, tt := range []struct {
		c    Class
		want bool
	}{
		{FPAdd, true}, {FPSqrt, true}, {IntALU, false}, {Load, false},
	} {
		in := Inst{Class: tt.c}
		if got := in.IsFP(); got != tt.want {
			t.Errorf("%v.IsFP() = %v, want %v", tt.c, got, tt.want)
		}
	}
}

func TestClassAndDomainStrings(t *testing.T) {
	if IntALU.String() != "ialu" || FPSqrt.String() != "fsqrt" {
		t.Error("unexpected class names")
	}
	if DomainInt.String() != "INT" || DomainFP.String() != "FP" || DomainLS.String() != "LS" {
		t.Error("unexpected domain names")
	}
	if Class(200).String() == "" || ExecDomain(200).String() == "" {
		t.Error("out-of-range Stringers must not be empty")
	}
}
