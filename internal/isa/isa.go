// Package isa defines the micro-operation model consumed by the MCD
// processor simulator. It plays the role of the Alpha ISA subset that
// SimpleScalar executes in the paper's infrastructure: each dynamic
// instruction carries an operation class, data dependencies expressed as
// producer distances in program order, and class-specific payload (branch
// outcome, memory address).
package isa

import "fmt"

// Class identifies the functional class of a micro-operation.
type Class uint8

// Operation classes. The set mirrors SimpleScalar's functional-unit
// classes for the machine configuration in Table 1 of the paper.
const (
	IntALU Class = iota // integer add/logic/shift/compare
	IntMult
	IntDiv
	FPAdd
	FPMult
	FPDiv
	FPSqrt
	Load
	Store
	Branch // conditional branch, resolved in the integer core
	Nop
	numClasses
)

// NumClasses is the number of distinct operation classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	IntALU: "ialu", IntMult: "imult", IntDiv: "idiv",
	FPAdd: "fadd", FPMult: "fmult", FPDiv: "fdiv", FPSqrt: "fsqrt",
	Load: "load", Store: "store", Branch: "branch", Nop: "nop",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c < numClasses }

// ExecDomain identifies the clock domain in which a class executes.
// The front end is not an ExecDomain: every instruction passes through
// it, but none executes there.
type ExecDomain uint8

// Execution domains, matching the 4-domain partition of Semeraro et al.
// (Figure 1 of the paper) minus the front end.
const (
	DomainInt ExecDomain = iota
	DomainFP
	DomainLS
	numExecDomains
)

// NumExecDomains is the number of DVFS-controlled execution domains.
const NumExecDomains = int(numExecDomains)

var domainNames = [...]string{DomainInt: "INT", DomainFP: "FP", DomainLS: "LS"}

// String implements fmt.Stringer.
func (d ExecDomain) String() string {
	if int(d) < len(domainNames) {
		return domainNames[d]
	}
	return fmt.Sprintf("ExecDomain(%d)", uint8(d))
}

// Domain returns the execution domain for a class. Branches resolve in
// the integer core; Nops are steered to the integer queue as well (they
// occupy no functional unit but must retire in order).
func (c Class) Domain() ExecDomain {
	switch c {
	case FPAdd, FPMult, FPDiv, FPSqrt:
		return DomainFP
	case Load, Store:
		return DomainLS
	default:
		return DomainInt
	}
}

// Latency returns the execution latency of the class in cycles of its
// own domain, excluding cache behavior for memory operations (the LS
// pipeline adds cache latencies on top of address generation).
func (c Class) Latency() int {
	switch c {
	case IntALU, Branch, Nop:
		return 1
	case IntMult:
		return 3
	case IntDiv:
		return 12
	case FPAdd:
		return 2
	case FPMult:
		return 4
	case FPDiv:
		return 12
	case FPSqrt:
		return 24
	case Load, Store:
		return 1 // address generation; memory latency added by the LS pipeline
	default:
		return 1
	}
}

// Pipelined reports whether a unit executing this class can accept a new
// operation every cycle. Divide and square root iterate in place.
func (c Class) Pipelined() bool {
	switch c {
	case IntDiv, FPDiv, FPSqrt:
		return false
	default:
		return true
	}
}

// Inst is one dynamic micro-operation in a program trace.
type Inst struct {
	// PC is the synthetic program counter (byte address of the
	// instruction), used by the branch predictor and I-cache.
	PC uint64
	// Class is the operation class.
	Class Class
	// Dep1 and Dep2 are producer distances: this instruction's operands
	// are produced by the Dep-th previous instruction in program order.
	// Zero means the operand is ready (immediate / long-dead producer).
	Dep1, Dep2 uint32
	// Taken is the architectural outcome of a Branch.
	Taken bool
	// Target is the branch target PC (meaningful when Taken).
	Target uint64
	// Addr is the effective memory address of a Load or Store.
	Addr uint64
}

// HasOutput reports whether the instruction produces a register value
// that later instructions can depend on.
func (in *Inst) HasOutput() bool {
	switch in.Class {
	case Store, Branch, Nop:
		return false
	default:
		return true
	}
}

// IsFP reports whether the destination (if any) is a floating-point
// register, which determines which physical register file it consumes.
func (in *Inst) IsFP() bool {
	switch in.Class {
	case FPAdd, FPMult, FPDiv, FPSqrt:
		return true
	case Load:
		// FP loads exist in real programs; the trace generator encodes
		// them as plain loads. Treating all load results as integer
		// registers slightly favors the INT register file, which is
		// sized equally (72/72) in Table 1, so the approximation is
		// immaterial to queue dynamics.
		return false
	default:
		return false
	}
}
