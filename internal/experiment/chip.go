package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"mcddvfs/internal/control"
	"mcddvfs/internal/diskcache"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

// DefaultChipBenchmarks is the heterogeneous per-core workload set the
// chip artifacts assign round-robin when the caller names none: one
// media codec, one integer SPEC, one FP SPEC, and one short codec, so
// a 4-core chip mixes demand profiles and finish times — the mixture
// the budget-reallocation transient needs.
var DefaultChipBenchmarks = []string{"epic_decode", "gzip", "swim", "adpcm_encode"}

// RunChip simulates an N-core chip with per-core workloads assigned
// round-robin from benchmarks (nil = DefaultChipBenchmarks), under one
// scheme per domain controller and the configured chip governor.
func RunChip(benchmarks []string, scheme Scheme, opt Options) (*mcd.ChipResult, error) {
	return RunChipContext(opt.ctx(), benchmarks, scheme, opt)
}

// RunChipContext is RunChip with explicit cancellation. Results are
// memoized like RunProfile's (in-process and, with Options.CacheDir,
// on disk) and must be treated as read-only.
func RunChipContext(ctx context.Context, benchmarks []string, sch Scheme, opt Options) (*mcd.ChipResult, error) {
	opt = opt.withDefaults()
	profs, err := chipBenchProfiles(benchmarks, opt)
	if err != nil {
		return nil, err
	}
	if err := validateRun(profs[0], sch, opt); err != nil {
		return nil, err
	}
	return runChipCell(ctx, profs, sch, opt)
}

// chipBenchProfiles resolves the per-core workload assignment: one
// validated profile per core, round-robin from benchmarks (nil =
// DefaultChipBenchmarks). Pure setup, kept out of the context-bearing
// entry point.
func chipBenchProfiles(benchmarks []string, opt Options) ([]trace.Profile, error) {
	if len(benchmarks) == 0 {
		benchmarks = DefaultChipBenchmarks
	}
	profs := make([]trace.Profile, opt.chipCores())
	for i := range profs {
		prof, err := trace.ByName(benchmarks[i%len(benchmarks)])
		if err != nil {
			return nil, invalidSpec(err)
		}
		if err := prof.Validate(); err != nil {
			return nil, invalidSpec(err)
		}
		profs[i] = prof
	}
	return profs, nil
}

// chipProfiles expands a single benchmark across every core — the
// homogeneous chip a chip-mode matrix cell simulates.
func chipProfiles(prof trace.Profile, opt Options) []trace.Profile {
	out := make([]trace.Profile, opt.chipCores())
	for i := range out {
		out[i] = prof
	}
	return out
}

// chipCacheKey hashes the complete chip-simulation input. It extends
// the single-core cacheKey contract with the chip shape — per-core
// profiles, core count, budget, governor, gain — and a Kind tag that
// keeps chip entries in a disjoint keyspace from single-core Results
// (the two decode into different types from the same disk store). The
// same exclusions apply: Benchmarks/Schemes/CacheDir/CorpusDir and the
// rest of the waived fields select or store runs, they never change
// what one computes. opt must already have defaults applied.
func chipCacheKey(profs []trace.Profile, scheme Scheme, opt Options) ([sha256.Size]byte, error) {
	mutated := make([]control.Config, isa.NumExecDomains)
	for d := 0; d < isa.NumExecDomains; d++ {
		cfg := control.DefaultConfig(isa.ExecDomain(d))
		if opt.MutateAdaptive != nil {
			opt.MutateAdaptive(&cfg)
		}
		mutated[d] = cfg
	}
	key := struct {
		Format           int
		Kind             string
		Profiles         []trace.Profile
		Scheme           Scheme
		Instructions     int64
		Seed             int64
		PIDIntervalTicks int
		Machine          mcd.Config
		Adaptive         []control.Config
		Cores            int
		PowerCapW        float64
		Governor         string
		GovernorGain     float64
	}{
		Format:           diskcache.FormatVersion,
		Kind:             "chip",
		Profiles:         profs,
		Scheme:           scheme,
		Instructions:     opt.Instructions,
		Seed:             opt.Seed,
		PIDIntervalTicks: opt.PIDIntervalTicks,
		Machine:          opt.machine(),
		Adaptive:         mutated,
		Cores:            opt.chipCores(),
		PowerCapW:        opt.PowerCapW,
		Governor:         opt.governorName(),
		GovernorGain:     opt.GovernorGain,
	}
	blob, err := json.Marshal(&key)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("experiment: chip cache key: %w", err)
	}
	return sha256.Sum256(blob), nil
}

// chipCache is the chip-level twin of resultCache: same single-flight
// protocol, same enablement switch, same disk tier, separate entry map
// because the cached type differs.
var chipCache = struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*chipCacheEntry
}{entries: make(map[[sha256.Size]byte]*chipCacheEntry)}

type chipCacheEntry struct {
	done chan struct{}
	res  *mcd.ChipResult
	err  error
}

// resetChipCache drops every memoized chip result (ResetCache calls
// it).
func resetChipCache() {
	chipCache.mu.Lock()
	chipCache.entries = make(map[[sha256.Size]byte]*chipCacheEntry)
	chipCache.mu.Unlock()
}

// runChipCell is the cached chip run path shared by chip-mode matrix
// cells and RunChipContext. opt must already have defaults applied and
// been validated.
func runChipCell(ctx context.Context, profs []trace.Profile, scheme Scheme, opt Options) (*mcd.ChipResult, error) {
	resultCache.mu.Lock()
	enabled := resultCache.enabled
	resultCache.mu.Unlock()
	if !enabled {
		return runChip(ctx, profs, scheme, opt)
	}
	key, err := chipCacheKey(profs, scheme, opt)
	if err != nil {
		return nil, err
	}
	chipCache.mu.Lock()
	if e, ok := chipCache.entries[key]; ok {
		chipCache.mu.Unlock()
		countCache(true)
		<-e.done
		return e.res, e.err
	}
	e := &chipCacheEntry{done: make(chan struct{})}
	chipCache.entries[key] = e
	chipCache.mu.Unlock()
	countCache(false)

	store := diskStore(opt)
	func() {
		defer close(e.done)
		if store != nil && ctx.Err() == nil {
			var res mcd.ChipResult
			if derr := store.Get(key, &res); derr == nil {
				e.res = &res
				return
			}
		}
		e.res, e.err = runChip(ctx, profs, scheme, opt)
		if e.err == nil && store != nil {
			store.Put(key, e.res) //nolint:errcheck // cache write is best-effort
		}
	}()
	if e.err != nil && transientErr(e.err) {
		chipCache.mu.Lock()
		if chipCache.entries[key] == e {
			delete(chipCache.entries, key)
		}
		chipCache.mu.Unlock()
	}
	return e.res, e.err
}

// countCache folds chip-cache traffic into the shared CacheStats
// counters.
func countCache(hit bool) {
	resultCache.mu.Lock()
	if hit {
		resultCache.hits++
	} else {
		resultCache.misses++
	}
	resultCache.mu.Unlock()
}

// runChip is the uncached chip simulation: build one machine per core
// (core i's clock and trace seeds offset by i so cores decorrelate;
// core 0 matches the single-core path exactly), attach the scheme's
// controllers to every core, resolve and attach the governor, and run.
// Panics are recovered into ErrRunPanicked like any single-core cell.
func runChip(ctx context.Context, profs []trace.Profile, scheme Scheme, opt Options) (res *mcd.ChipResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("chip/%s: %w: %v", scheme, ErrRunPanicked, r)
		}
	}()
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	chip, srcs, err := buildChip(profs, scheme, opt)
	if err != nil {
		return nil, err
	}
	cr, err := chip.RunContext(ctx, srcs)
	if err != nil {
		return nil, fmt.Errorf("chip/%s: %w", scheme, wrapRunErr(err))
	}
	for _, r := range cr.Cores {
		r.Scheme = string(scheme)
	}
	return cr, nil
}

// buildChip constructs the chip — one machine per core with the
// core-index seed offsets, the scheme's controllers attached to every
// core, the resolved governor, and one trace source per core. Pure
// setup, kept out of the context-bearing run path.
func buildChip(profs []trace.Profile, scheme Scheme, opt Options) (*mcd.Chip, []trace.Source, error) {
	gdesc, err := validateChip(opt)
	if err != nil {
		return nil, nil, err
	}
	cfg := mcd.ChipConfig{
		Cores:        make([]mcd.Config, len(profs)),
		PowerCapW:    opt.PowerCapW,
		GovernorGain: opt.GovernorGain,
	}
	for i := range cfg.Cores {
		mc := opt.machine()
		mc.Seed += int64(i)
		cfg.Cores[i] = mc
	}
	chip, err := mcd.NewChip(cfg)
	if err != nil {
		return nil, nil, invalidSpec(err)
	}
	for i := 0; i < chip.Cores(); i++ {
		if err := attach(chip.Core(i), scheme, opt); err != nil {
			return nil, nil, err
		}
	}
	gov, err := gdesc.New(opt.governorOptions())
	if err != nil {
		return nil, nil, invalidSpec(err)
	}
	chip.SetGovernor(gov)
	srcs := make([]trace.Source, len(profs))
	for i := range srcs {
		gen, gerr := trace.NewGenerator(profs[i], trace.StreamSeed(opt.Seed+int64(i)), opt.Instructions)
		if gerr != nil {
			return nil, nil, invalidSpec(gerr)
		}
		srcs[i] = gen
	}
	return chip, srcs, nil
}
