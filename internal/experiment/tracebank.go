package experiment

import (
	"sort"
	"sync"

	"mcddvfs/internal/isa"
	"mcddvfs/internal/trace"
)

// The workload stream a matrix cell simulates depends only on
// (profile, seed, instructions) — never on the DVFS scheme or fault
// spec layered on top — so the benchmark × scheme grid regenerates the
// identical trace once per benchmark instead of once per cell. A
// traceBank owns that sharing for one matrix run: the first cell to
// actually need a benchmark's stream records it (trace.Recorded,
// single-flight), every other cell replays the same immutable buffers
// through its own zero-alloc cursor, and a per-benchmark countdown of
// outstanding cells releases the recording as soon as its last cell
// finishes, bounding resident traces to the benchmarks in flight.
//
// In corpus mode (Options.CorpusDir) the bank resolves streams from
// chunked trace files instead of recording them: one ChunkedFile per
// benchmark, opened single-flight, with every scheme's cell streaming
// through its own cursor over the shared bounded chunk window — peak
// trace memory per benchmark is the window, independent of trace
// length. A member that fails to open, or corrupts mid-stream, heals
// the same way diskcache does: the stream is regenerated from the
// member's embedded profile at the corpus seed (bit-identical to the
// recorded bytes by the StreamSeed contract) and the sweep continues.
//
// Recording is lazy so a fully cache-served matrix (in-process or
// disk) records and opens nothing at all.
type traceBank struct {
	seed   int64 // stream seed (trace.StreamSeed of the harness seed)
	insts  int64
	corpus *trace.Corpus // nil outside corpus mode

	mu      sync.Mutex
	entries map[string]*bankEntry

	// Aggregated corpus streaming stats, final after close().
	stats CorpusStats
}

type bankEntry struct {
	remaining int // cells (users or not) yet to call release
	done      chan struct{} // closed when rec/cf/err are set
	rec       *trace.Recorded
	cf        *trace.ChunkedFile // corpus mode; nil after a heal
	err       error
}

// CorpusStats summarizes streamed-trace behavior for one corpus-backed
// matrix run.
type CorpusStats struct {
	// PeakResidentBytes is the largest decoded-chunk residency any one
	// member reached; the bounded-memory contract is
	// PeakResidentBytes <= WindowBytes.
	PeakResidentBytes int64
	// WindowBytes is the per-member residency bound
	// (window × chunk payload), maximized over members.
	WindowBytes int64
	// Loads counts chunk decodes across all members; a perfectly
	// shared sweep decodes each chunk close to once per window pass.
	Loads int64
	// Heals counts benchmarks whose stream had to be regenerated from
	// its profile because the corpus bytes were unreadable or corrupt.
	Heals int
}

// traceSharing gates the bank globally, mirroring SetCaching: sharing
// is semantics-free (a replayed stream is bit-identical to a generated
// one), so the toggle exists for A/B benchmarks and for validating
// that transparency. Corpus-backed matrices always stream through the
// bank — the corpus is the stream source, not an optimization.
var traceSharing = struct {
	mu sync.Mutex
	on bool
}{on: true}

// SetTraceSharing enables or disables shared-trace replay in
// RunMatrix. It is enabled by default; disabling makes every cell
// regenerate its workload stream from the profile (the pre-sharing
// behavior), which must produce byte-identical artifacts.
func SetTraceSharing(on bool) {
	traceSharing.mu.Lock()
	defer traceSharing.mu.Unlock()
	traceSharing.on = on
}

// traceSharingEnabled reports the toggle.
func traceSharingEnabled() bool {
	traceSharing.mu.Lock()
	defer traceSharing.mu.Unlock()
	return traceSharing.on
}

// newTraceBank prepares a bank for one matrix sweep: every benchmark
// starts with cellsPerBench outstanding release calls. corpus is nil
// for the recording (generate-and-share) mode. opt must have defaults
// applied.
func newTraceBank(opt Options, corpus *trace.Corpus, cellsPerBench int) *traceBank {
	b := &traceBank{
		seed:    trace.StreamSeed(opt.Seed),
		insts:   opt.Instructions,
		corpus:  corpus,
		entries: make(map[string]*bankEntry, len(opt.Benchmarks)),
	}
	for _, bench := range opt.Benchmarks {
		b.entries[bench] = &bankEntry{remaining: cellsPerBench}
	}
	return b
}

// source returns a fresh replay cursor over the benchmark's shared
// stream, materializing it first (a recording, or an opened corpus
// member) if this is the earliest cell to need it. Concurrent callers
// for one benchmark run a single materialization and share the
// outcome.
func (b *traceBank) source(prof trace.Profile) (trace.Source, error) {
	b.mu.Lock()
	e := b.entries[prof.Name]
	if e == nil {
		// A cell the bank was not sized for (defensive; RunMatrix only
		// asks for benchmarks it registered). Fall back to a private
		// recording with no sharing.
		b.mu.Unlock()
		rec, err := trace.RecordProfile(prof, b.seed, b.insts)
		if err != nil {
			return nil, invalidSpec(err)
		}
		return rec.Replay(), nil
	}
	if e.done != nil {
		done := e.done
		b.mu.Unlock()
		<-done
	} else {
		e.done = make(chan struct{})
		b.mu.Unlock()
		b.materialize(prof, e)
		close(e.done)
	}
	if e.err != nil {
		return nil, invalidSpec(e.err)
	}
	if e.cf != nil {
		return &healingSource{bank: b, prof: prof, cur: e.cf.Replay()}, nil
	}
	return e.rec.Replay(), nil
}

// materialize fills the entry's shared stream: a corpus member in
// corpus mode (healing to a recording if the member will not open),
// otherwise a recording.
func (b *traceBank) materialize(prof trace.Profile, e *bankEntry) {
	if b.corpus != nil {
		cf, err := b.corpus.Open(prof.Name, 0)
		if err == nil {
			e.cf = cf
			return
		}
		// Unreadable member: regenerate the identical stream from the
		// embedded profile, like diskcache discarding a corrupt entry.
		b.mu.Lock()
		b.stats.Heals++
		b.mu.Unlock()
	}
	e.rec, e.err = trace.RecordProfile(prof, b.seed, b.insts)
}

// release retires one cell's claim on a benchmark's stream; the stream
// is dropped (and a corpus member's file closed, its residency stats
// folded into the bank's) when the last claim retires. Every matrix
// cell releases exactly once, whether or not it consumed the trace (a
// result-cache hit never touches it).
func (b *traceBank) release(bench string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[bench]
	if e == nil {
		return
	}
	e.remaining--
	if e.remaining <= 0 {
		// Last cell done: free the columnar buffers (or close the
		// member file) now instead of at end of sweep, so peak memory
		// tracks benchmarks in flight.
		b.retireLocked(e)
		delete(b.entries, bench)
	}
}

// close retires every entry still open — cells skipped by cancellation
// never release — and returns the final streaming stats.
func (b *traceBank) close() CorpusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	benches := make([]string, 0, len(b.entries))
	for bench := range b.entries {
		benches = append(benches, bench)
	}
	sort.Strings(benches)
	for _, bench := range benches {
		b.retireLocked(b.entries[bench])
		delete(b.entries, bench)
	}
	return b.stats
}

// retireLocked frees an entry's stream. Callers hold b.mu.
func (b *traceBank) retireLocked(e *bankEntry) {
	e.rec = nil
	if e.cf == nil {
		return
	}
	if p := e.cf.PeakResidentBytes(); p > b.stats.PeakResidentBytes {
		b.stats.PeakResidentBytes = p
	}
	if w := e.cf.WindowBytes(); w > b.stats.WindowBytes {
		b.stats.WindowBytes = w
	}
	b.stats.Loads += e.cf.Loads()
	e.cf.Close()
	e.cf = nil
}

// healingSource streams a corpus member and, if the stream dies
// mid-flight (truncated chunk, CRC mismatch — anything
// ChunkedReplayer.Err reports), regenerates the remainder from the
// member's profile: a generator at the corpus stream seed is
// fast-forwarded past the instructions already emitted and takes over.
// By the StreamSeed determinism contract the regenerated tail is
// bit-identical to what the corpus bytes held, so a heal changes no
// result — it only costs the regeneration time, mirroring diskcache's
// discard-and-recompute semantics.
type healingSource struct {
	bank   *traceBank
	prof   trace.Profile
	cur    trace.Source
	pos    int64
	healed bool
}

// Name implements trace.Source.
func (h *healingSource) Name() string { return h.prof.Name }

// Next implements trace.Source.
func (h *healingSource) Next() (isa.Inst, bool) {
	in, ok := h.cur.Next()
	if ok {
		h.pos++
		return in, true
	}
	if h.healed || h.pos >= h.bank.insts {
		return isa.Inst{}, false // genuine end of stream
	}
	if r, isChunked := h.cur.(*trace.ChunkedReplayer); isChunked && r.Err() == nil {
		return isa.Inst{}, false // clean (if short) end; nothing to heal from
	}
	gen, err := trace.NewGenerator(h.prof, h.bank.seed, h.bank.insts)
	if err != nil {
		return isa.Inst{}, false
	}
	for i := int64(0); i < h.pos; i++ {
		if _, ok := gen.Next(); !ok {
			return isa.Inst{}, false
		}
	}
	h.cur = gen
	h.healed = true
	h.bank.mu.Lock()
	h.bank.stats.Heals++
	h.bank.mu.Unlock()
	return h.Next()
}
