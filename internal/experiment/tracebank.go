package experiment

import (
	"sync"

	"mcddvfs/internal/trace"
)

// The workload stream a matrix cell simulates depends only on
// (profile, seed, instructions) — never on the DVFS scheme or fault
// spec layered on top — so the benchmark × scheme grid regenerates the
// identical trace once per benchmark instead of once per cell. A
// traceBank owns that sharing for one matrix run: the first cell to
// actually need a benchmark's stream records it (trace.Recorded,
// single-flight), every other cell replays the same immutable buffers
// through its own zero-alloc cursor, and a per-benchmark countdown of
// outstanding cells releases the recording as soon as its last cell
// finishes, bounding resident traces to the benchmarks in flight.
//
// Recording is lazy so a fully cache-served matrix (in-process or
// disk) records nothing at all.
type traceBank struct {
	seed  int64
	insts int64

	mu      sync.Mutex
	entries map[string]*bankEntry
}

type bankEntry struct {
	remaining int // cells (users or not) yet to call release
	recording bool
	done      chan struct{} // closed when rec/err are set
	rec       *trace.Recorded
	err       error
}

// traceSharing gates the bank globally, mirroring SetCaching: sharing
// is semantics-free (a replayed stream is bit-identical to a generated
// one), so the toggle exists for A/B benchmarks and for validating
// that transparency.
var traceSharing = struct {
	mu sync.Mutex
	on bool
}{on: true}

// SetTraceSharing enables or disables shared-trace replay in
// RunMatrix. It is enabled by default; disabling makes every cell
// regenerate its workload stream from the profile (the pre-sharing
// behavior), which must produce byte-identical artifacts.
func SetTraceSharing(on bool) {
	traceSharing.mu.Lock()
	defer traceSharing.mu.Unlock()
	traceSharing.on = on
}

// traceSharingEnabled reports the toggle.
func traceSharingEnabled() bool {
	traceSharing.mu.Lock()
	defer traceSharing.mu.Unlock()
	return traceSharing.on
}

// newTraceBank prepares a bank for one matrix sweep: every benchmark
// starts with cellsPerBench outstanding release calls. opt must have
// defaults applied.
func newTraceBank(opt Options, cellsPerBench int) *traceBank {
	b := &traceBank{
		seed:    opt.Seed + traceSeedOffset,
		insts:   opt.Instructions,
		entries: make(map[string]*bankEntry, len(opt.Benchmarks)),
	}
	for _, bench := range opt.Benchmarks {
		b.entries[bench] = &bankEntry{remaining: cellsPerBench}
	}
	return b
}

// source returns a fresh replay cursor over the benchmark's shared
// recording, recording it first if this is the earliest cell to need
// it. Concurrent callers for one benchmark run a single recording and
// share the outcome.
func (b *traceBank) source(prof trace.Profile) (trace.Source, error) {
	b.mu.Lock()
	e := b.entries[prof.Name]
	if e == nil {
		// A cell the bank was not sized for (defensive; RunMatrix only
		// asks for benchmarks it registered). Fall back to a private
		// recording with no sharing.
		b.mu.Unlock()
		rec, err := trace.RecordProfile(prof, b.seed, b.insts)
		if err != nil {
			return nil, invalidSpec(err)
		}
		return rec.Replay(), nil
	}
	if e.done != nil {
		done := e.done
		b.mu.Unlock()
		<-done
	} else {
		e.done = make(chan struct{})
		b.mu.Unlock()
		e.rec, e.err = trace.RecordProfile(prof, b.seed, b.insts)
		close(e.done)
	}
	if e.err != nil {
		return nil, invalidSpec(e.err)
	}
	return e.rec.Replay(), nil
}

// release retires one cell's claim on a benchmark's recording; the
// recording is dropped when the last claim retires. Every matrix cell
// releases exactly once, whether or not it consumed the trace (a
// result-cache hit never touches it).
func (b *traceBank) release(bench string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[bench]
	if e == nil {
		return
	}
	e.remaining--
	if e.remaining <= 0 {
		// Last cell done: free the columnar buffers now instead of at
		// end of sweep, so peak memory tracks benchmarks in flight.
		e.rec = nil
		delete(b.entries, bench)
	}
}
