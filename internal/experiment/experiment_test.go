package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
	"mcddvfs/internal/trace"
)

// fastOpt keeps integration tests quick: a reduced instruction budget
// still exercises every code path and preserves the qualitative trends.
func fastOpt(benches ...string) Options {
	return Options{Instructions: 60000, Seed: 3, Benchmarks: benches}
}

func TestRunOneAllSchemes(t *testing.T) {
	for _, s := range append([]Scheme{SchemeNone}, ControlledSchemes()...) {
		res, err := RunOne("gzip", s, fastOpt())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Metrics.Instructions != 60000 {
			t.Errorf("%s: retired %d", s, res.Metrics.Instructions)
		}
		if res.Scheme != string(s) {
			t.Errorf("scheme label = %q, want %q", res.Scheme, s)
		}
	}
}

func TestRunOneUnknownInputs(t *testing.T) {
	if _, err := RunOne("nope", SchemeNone, fastOpt()); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := RunOne("gzip", Scheme("bogus"), fastOpt()); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestControlledSchemesSaveEnergy(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 150000
	base, err := RunOne("swim", SchemeNone, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range ControlledSchemes() {
		run, err := RunOne("swim", s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if run.Metrics.EnergyJ >= base.Metrics.EnergyJ {
			t.Errorf("%s did not save energy on swim: %g >= %g", s, run.Metrics.EnergyJ, base.Metrics.EnergyJ)
		}
	}
}

// TestExtensionSchemeThroughRegistry is the registry's proof of seam:
// pid-adaptive exists only as a plugin (internal/scheme/pidadaptive.go
// plus its controller), yet the harness runs it, labels it, caches it,
// and it behaves as a real DVFS scheme — saving energy against the
// baseline like the seed schemes do. No dispatch site in this package
// names it.
func TestExtensionSchemeThroughRegistry(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 150000
	base, err := RunOne("swim", SchemeNone, opt)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunOne("swim", Scheme("pid-adaptive"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if run.Scheme != "pid-adaptive" {
		t.Errorf("scheme label = %q", run.Scheme)
	}
	if run.Metrics.EnergyJ >= base.Metrics.EnergyJ {
		t.Errorf("pid-adaptive did not save energy on swim: %g >= %g", run.Metrics.EnergyJ, base.Metrics.EnergyJ)
	}
	// Extensions stay out of the default comparison: the core artifact
	// columns are part of the byte-stability contract.
	for _, s := range ControlledSchemes() {
		if s == "pid-adaptive" || s == SchemeGlobal {
			t.Fatalf("extension scheme %s leaked into the default set", s)
		}
	}
	// The Table-3 knob maps onto the extension's decision floor, and
	// its Validate hook rejects a negative one up front.
	opt.PIDIntervalTicks = -5
	if _, err := RunOne("swim", Scheme("pid-adaptive"), opt); err == nil {
		t.Error("negative PIDIntervalTicks accepted")
	}
}

func TestMatrixAndFigures(t *testing.T) {
	opt := fastOpt("gzip", "adpcm_encode")
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != 2 {
		t.Fatalf("matrix has %d benchmarks", len(m.Results))
	}
	for _, rep := range []Report{m.Figure9(), m.Figure10(), m.Figure11([]string{"adpcm_encode"})} {
		if len(rep.Lines) < 3 {
			t.Errorf("%s: too few lines: %v", rep.ID, rep.Lines)
		}
		if !strings.Contains(rep.String(), rep.ID) {
			t.Errorf("%s: report string missing ID", rep.ID)
		}
	}
	// The average row exists.
	if !strings.Contains(m.Figure9().Lines[len(m.Figure9().Lines)-1], "AVERAGE") {
		t.Error("figure 9 missing AVERAGE row")
	}
	// Controlled-scheme samples were dropped, baseline kept.
	if m.Results["gzip"][SchemeAdaptive].QueueSamples != nil {
		t.Error("controlled-run samples retained")
	}
	if len(m.Results["gzip"][SchemeNone].QueueSamples) == 0 {
		t.Error("baseline samples dropped")
	}
}

func TestTable1RendersConfig(t *testing.T) {
	rep := Table1(DefaultOptions())
	s := rep.String()
	for _, want := range []string{"250", "1000", "0.65", "1.20", "Tl0 = 8, Tm0 = 50", "4/6/11", "20 INT, 16 FP, 16 LS", "80"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2ClassifiesFastAndSlow(t *testing.T) {
	opt := fastOpt("adpcm_encode", "art", "gcc", "swim")
	opt.Instructions = 150000
	rep, classes, err := Table2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Fatalf("classified %d benchmarks", len(classes))
	}
	byName := map[string]BenchClass{}
	for _, c := range classes {
		byName[c.Name] = c
	}
	// The designed-fast codecs must classify fast; the long-phase
	// SPEC codes must classify slow. (Other benchmarks may land either
	// way depending on their emergent micro-dynamics — the classifier
	// decides, exactly as in the paper.)
	if !byName["adpcm_encode"].Fast {
		t.Errorf("adpcm_encode not fast (share %.3f)", byName["adpcm_encode"].ShortShare)
	}
	if !byName["art"].Fast {
		t.Errorf("art not fast (share %.3f)", byName["art"].ShortShare)
	}
	if byName["gcc"].Fast {
		t.Errorf("gcc classified fast (share %.3f)", byName["gcc"].ShortShare)
	}
	if byName["swim"].Fast {
		t.Errorf("swim classified fast (share %.3f)", byName["swim"].ShortShare)
	}
	fg := FastGroup(classes)
	if len(fg) < 2 {
		t.Errorf("fast group = %v", fg)
	}
	if !strings.Contains(rep.String(), "FAST") {
		t.Error("table2 missing FAST rows")
	}
}

func TestFigure7ShowsDescentAndRecovery(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 300000
	rep, err := Figure7(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) < 10 {
		t.Fatalf("figure 7 too short: %d lines", len(rep.Lines))
	}
}

func TestFigure8SpectrumReport(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 150000
	rep, err := Figure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "short-wavelength share") {
		t.Error("figure 8 missing share line")
	}
}

func TestTable3PIDSweep(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 80000
	rep, err := Table3(opt, []string{"adpcm_encode"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 7 { // header + adaptive + 5 PID rows
		t.Errorf("table3 rows = %d, want 7:\n%s", len(rep.Lines), rep.String())
	}
	if _, err := Table3(opt, nil); err == nil {
		t.Error("empty fast group accepted")
	}
}

func TestTable4HardwareOrdering(t *testing.T) {
	rep := Table4()
	if len(rep.Lines) != 4 {
		t.Fatalf("table4 rows = %d", len(rep.Lines))
	}
	s := rep.String()
	if !strings.Contains(s, "adaptive") || !strings.Contains(s, "pid") {
		t.Error("table4 missing schemes")
	}
}

func TestRemarksReport(t *testing.T) {
	rep, err := RemarksReport()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"xi=", "Tm0/Tl0 in [2, 8]", "RK4 step response"} {
		if !strings.Contains(s, want) {
			t.Errorf("remarks missing %q", want)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 50000
	rep, err := Ablation(opt, []string{"adpcm_encode"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != len(AblationVariants())+1 {
		t.Errorf("ablation rows = %d, want %d", len(rep.Lines), len(AblationVariants())+1)
	}
}

func TestTransitionStylesRuns(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 50000
	rep, err := TransitionStyles(opt, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 4 {
		t.Errorf("transition rows = %d, want 4", len(rep.Lines))
	}
	if !strings.Contains(rep.String(), "transmeta") {
		t.Error("missing transmeta rows")
	}
}

func TestMeanComparisonSubset(t *testing.T) {
	opt := fastOpt("gzip", "adpcm_encode")
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	all := m.MeanComparison(SchemeAdaptive, nil)
	one := m.MeanComparison(SchemeAdaptive, []string{"gzip"})
	if all == one {
		t.Error("subset mean equals full mean; subset ignored?")
	}
	if (m.MeanComparison(SchemeAdaptive, []string{})) != (powerComparison{}) {
		t.Error("empty subset should produce zero comparison")
	}
}

func TestSampleLimitApplied(t *testing.T) {
	opt := fastOpt()
	cfg := opt.machine()
	if cfg.SampleLimit != 1<<17 {
		t.Errorf("sample limit = %d, want %d", cfg.SampleLimit, 1<<17)
	}
	if cfg.Seed != opt.Seed {
		t.Error("seed not propagated")
	}
	_ = mcd.DefaultConfig()
}

func TestGlobalSchemeRuns(t *testing.T) {
	res, err := RunOne("adpcm_encode", SchemeGlobal, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Coupled scaling: all three domains end at (nearly) the same
	// mean frequency by construction.
	fi := res.Domains[mcd.NameInt].MeanFreqMHz
	ff := res.Domains[mcd.NameFP].MeanFreqMHz
	fl := res.Domains[mcd.NameLS].MeanFreqMHz
	spread := max3(fi, ff, fl) - min3(fi, ff, fl)
	if spread > 50 {
		t.Errorf("coupled domains diverged: INT=%.0f FP=%.0f LS=%.0f", fi, ff, fl)
	}
}

func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

func min3(a, b, c float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

func TestPerDomainBeatsGlobalOnAsymmetricCode(t *testing.T) {
	// Integer-only code with an idle FP unit: per-domain control slows
	// FP to the floor, coupled control cannot.
	opt := fastOpt()
	opt.Instructions = 150000
	base, err := RunOne("gzip", SchemeNone, opt)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := RunOne("gzip", SchemeGlobal, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Domains[mcd.NameFP].MeanFreqMHz >= gl.Domains[mcd.NameFP].MeanFreqMHz {
		t.Errorf("per-domain FP frequency (%.0f) should undercut coupled (%.0f)",
			ad.Domains[mcd.NameFP].MeanFreqMHz, gl.Domains[mcd.NameFP].MeanFreqMHz)
	}
	ca := power.Compare(base.Metrics, ad.Metrics)
	cg := power.Compare(base.Metrics, gl.Metrics)
	if ca.EDPImprovement <= cg.EDPImprovement {
		t.Errorf("per-domain EDP %.2f%% should beat coupled %.2f%% on asymmetric code",
			100*ca.EDPImprovement, 100*cg.EDPImprovement)
	}
}

func TestGlobalComparisonReport(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 50000
	rep, err := GlobalComparison(opt, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 4 { // two headers + 1 bench + MEAN
		t.Errorf("global report rows = %d, want 4:\n%s", len(rep.Lines), rep.String())
	}
}

func TestQRefSweepMonotoneEnergy(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 60000
	rep, err := QRefSweep(opt, []string{"gsm_decode"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 8 {
		t.Fatalf("qref sweep rows = %d, want 8:\n%s", len(rep.Lines), rep.String())
	}
}

func TestInterfaceStudy(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 40000
	rep, err := InterfaceStudy(opt, []string{"gsm_decode"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 7 { // header + 3 windows x 2 policies
		t.Fatalf("interface rows = %d, want 7:\n%s", len(rep.Lines), rep.String())
	}
	if !strings.Contains(rep.String(), "token-ring") {
		t.Error("missing token-ring rows")
	}
}

func TestPartitionStudy(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 40000
	rep, err := PartitionStudy(opt, []string{"gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 4 { // two headers + 1 bench + MEAN
		t.Fatalf("partition rows = %d:\n%s", len(rep.Lines), rep.String())
	}
	if !strings.Contains(rep.String(), "FE DVFS") {
		t.Error("missing front-end DVFS column")
	}
}

func TestDelaySweep(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 30000
	rep, err := DelaySweep(opt, []string{"gsm_decode"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 16 { // header + 5x3 grid
		t.Fatalf("delay sweep rows = %d, want 16:\n%s", len(rep.Lines), rep.String())
	}
}

func TestFullSuiteSmoke(t *testing.T) {
	// Every bundled benchmark completes under the adaptive scheme.
	opt := Options{Instructions: 15000, Seed: 7}
	for _, b := range trace.Names() {
		res, err := RunOne(b, SchemeAdaptive, opt)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.Metrics.Instructions != 15000 || res.Metrics.EnergyJ <= 0 {
			t.Errorf("%s: bad result %+v", b, res.Metrics)
		}
	}
}

func TestMatrixParallelMatchesSerialCell(t *testing.T) {
	// A matrix cell must be identical to the same run done alone
	// (parallelism cannot leak state between simulations).
	opt := fastOpt("gzip", "swim")
	opt.Instructions = 20000
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := RunOne("swim", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Results["swim"][SchemeAdaptive].Metrics != solo.Metrics {
		t.Errorf("matrix cell diverged from solo run:\n matrix %+v\n solo   %+v",
			m.Results["swim"][SchemeAdaptive].Metrics, solo.Metrics)
	}
}

func TestSummaryReport(t *testing.T) {
	opt := fastOpt("gzip", "adpcm_encode")
	opt.Instructions = 30000
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	classes := []BenchClass{
		{Name: "adpcm_encode", Fast: true},
		{Name: "gzip", Fast: false},
	}
	rep := Summary(m, classes)
	s := rep.String()
	for _, want := range []string{"suite average", "fast group", "decision-logic gates", "adaptive"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := Table4()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != rep.ID || len(back.Lines) != len(rep.Lines) || len(back.Notes) != len(rep.Notes) {
		t.Errorf("JSON round trip lost content: %+v", back)
	}
}

func TestSVGFigures(t *testing.T) {
	opt := fastOpt("gzip", "adpcm_encode")
	opt.Instructions = 40000
	svg7, err := Figure7SVG(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg7, "<svg") || !strings.Contains(svg7, "epic_decode") {
		t.Error("figure 7 SVG malformed")
	}
	svg8, err := Figure8SVG(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg8, "variance") {
		t.Error("figure 8 SVG malformed")
	}
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func() (string, error){
		"fig9":  m.Figure9SVG,
		"fig10": m.Figure10SVG,
		"fig11": func() (string, error) { return m.Figure11SVG([]string{"adpcm_encode"}) },
	} {
		svg, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(svg, "AVERAGE") || !strings.Contains(svg, "adaptive") {
			t.Errorf("%s SVG missing content", name)
		}
	}
}

func TestSeedStudy(t *testing.T) {
	opt := fastOpt()
	opt.Instructions = 30000
	rep, err := SeedStudy(opt, []string{"gzip"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lines) != 2 {
		t.Fatalf("seed study rows = %d:\n%s", len(rep.Lines), rep.String())
	}
	if !strings.Contains(rep.String(), "±") {
		t.Error("missing dispersion column")
	}
	if _, err := SeedStudy(opt, []string{"gzip"}, 1); err == nil {
		t.Error("single-seed study accepted")
	}
}
