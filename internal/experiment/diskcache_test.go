package experiment

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// diskOpt is smallOpt with the persistent cache rooted in a fresh
// per-test directory.
func diskOpt(t *testing.T) Options {
	t.Helper()
	opt := smallOpt()
	opt.CacheDir = t.TempDir()
	return opt
}

// entryCount returns how many published cache entries dir holds.
func entryCount(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestDiskCacheServesAcrossReset asserts the persistence contract: a
// result computed before ResetCache (which models process death for
// the in-process level) is served from disk afterwards, identical to
// the simulated one.
func TestDiskCacheServesAcrossReset(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := diskOpt(t)

	before, _ := DiskCacheStats()
	cold, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := entryCount(t, opt.CacheDir); n != 1 {
		t.Fatalf("cold run published %d entries, want 1", n)
	}

	ResetCache() // drop the in-process level; disk must carry the result
	warm, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := DiskCacheStats()
	if got := after.Hits - before.Hits; got != 1 {
		t.Errorf("warm run hit disk %d times, want 1", got)
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) {
		t.Errorf("disk round trip changed metrics:\n cold %+v\n warm %+v", cold.Metrics, warm.Metrics)
	}
	if cold.IPC != warm.IPC || cold.L1DMissRate != warm.L1DMissRate {
		t.Errorf("disk round trip changed rates: cold (%v, %v) warm (%v, %v)",
			cold.IPC, cold.L1DMissRate, warm.IPC, warm.L1DMissRate)
	}
	if len(cold.QueueSamples) != len(warm.QueueSamples) {
		t.Errorf("disk round trip changed sample count: %d vs %d",
			len(cold.QueueSamples), len(warm.QueueSamples))
	}
}

// TestDiskCacheMatrixWarmRun asserts a full matrix re-rendered after a
// simulated restart is served entirely from disk and metric-identical.
func TestDiskCacheMatrixWarmRun(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := diskOpt(t)

	cold, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(opt.Benchmarks) * (1 + len(ControlledSchemes()))
	if n := entryCount(t, opt.CacheDir); n != cells {
		t.Fatalf("cold matrix published %d entries, want %d", n, cells)
	}

	ResetCache()
	before, _ := DiskCacheStats()
	warm, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := DiskCacheStats()
	if got := after.Hits - before.Hits; got != uint64(cells) {
		t.Errorf("warm matrix hit disk %d times, want %d (every cell)", got, cells)
	}
	for _, b := range opt.Benchmarks {
		for s, want := range cold.Results[b] {
			got := warm.Results[b][s]
			if got == nil {
				t.Fatalf("%s/%s missing from warm matrix", b, s)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s/%s metrics differ after disk round trip", b, s)
			}
		}
	}
}

// TestDiskCacheCorruptEntryResimulates asserts the harness treats a
// damaged entry as a miss: the cell re-simulates, produces the same
// result, and heals the entry on disk.
func TestDiskCacheCorruptEntryResimulates(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := diskOpt(t)

	cold, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(opt.CacheDir, "*.res"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want one entry, got %v (err %v)", matches, err)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(matches[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	ResetCache()
	warm, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Metrics, warm.Metrics) {
		t.Error("re-simulation after corruption produced different metrics")
	}
	if n := entryCount(t, opt.CacheDir); n != 1 {
		t.Errorf("corrupt entry was not healed: %d entries on disk", n)
	}
}

// TestDiskCacheSkipsTransientErrors asserts a timed-out run persists
// nothing: the next attempt with a saner deadline must actually
// simulate, not replay the failure from disk.
func TestDiskCacheSkipsTransientErrors(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := diskOpt(t)
	opt.Timeout = time.Nanosecond

	_, err := RunOne("gzip", SchemeAdaptive, opt)
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("nanosecond budget did not time out: %v", err)
	}
	if n := entryCount(t, opt.CacheDir); n != 0 {
		t.Fatalf("transient failure persisted %d entries, want 0", n)
	}

	opt.Timeout = time.Minute
	if _, err := RunOne("gzip", SchemeAdaptive, opt); err != nil {
		t.Fatalf("run after transient failure: %v", err)
	}
	if n := entryCount(t, opt.CacheDir); n != 1 {
		t.Errorf("clean retry published %d entries, want 1", n)
	}
}

// TestDiskCacheUnusableDirDegrades asserts a cache directory that
// cannot be created costs persistence, never correctness: runs fall
// back to simulation and succeed.
func TestDiskCacheUnusableDirDegrades(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := smallOpt()
	// A regular file where the directory should go: MkdirAll fails.
	block := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(block, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	opt.CacheDir = block

	if _, err := RunOne("gzip", SchemeAdaptive, opt); err != nil {
		t.Fatalf("run with unusable cache dir failed: %v", err)
	}
	if _, err := DiskCacheStats(); err == nil {
		t.Error("DiskCacheStats does not surface the open failure")
	}
}

// TestTraceSharingTransparent asserts shared-trace replay is
// semantics-free: a matrix computed from per-cell generators and one
// computed from shared recordings are metric-identical, cell for cell.
func TestTraceSharingTransparent(t *testing.T) {
	defer func() {
		SetCaching(true)
		SetTraceSharing(true)
		ResetCache()
	}()
	opt := smallOpt()
	SetCaching(false) // force every cell to simulate on both sides

	SetTraceSharing(false)
	perCell, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	SetTraceSharing(true)
	shared, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, b := range opt.Benchmarks {
		for s, want := range perCell.Results[b] {
			got := shared.Results[b][s]
			if got == nil {
				t.Fatalf("%s/%s missing from shared-trace matrix", b, s)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s/%s metrics differ under trace sharing:\n per-cell %+v\n shared   %+v",
					b, s, want.Metrics, got.Metrics)
			}
			if want.IPC != got.IPC {
				t.Errorf("%s/%s IPC differs under trace sharing: %v vs %v", b, s, want.IPC, got.IPC)
			}
		}
	}
}
