package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"mcddvfs/internal/control"
	"mcddvfs/internal/faults"
)

// marshal renders a result for byte-level comparison.
func marshal(t *testing.T, v interface{}) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestZeroFaultConfigBitIdentical is the acceptance contract for the
// injection layer: a fault config with no fault knobs set (seed
// included) must leave the simulation on its pre-fault code paths and
// produce byte-identical results.
func TestZeroFaultConfigBitIdentical(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)
	opt := Options{Instructions: 20000, Seed: 3}

	clean, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = faults.Config{Seed: 99} // a seed alone enables nothing
	zero, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, clean)) != string(marshal(t, zero)) {
		t.Fatal("zero-value fault config changed the simulation output")
	}

	// Sanity check the other direction: enabled faults must actually
	// perturb the run, or the sweep measures nothing.
	opt.Faults = faults.Intensity(1, 3)
	faulty, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, clean)) == string(marshal(t, faulty)) {
		t.Fatal("full-intensity faults left the simulation output unchanged")
	}
}

// TestFaultSeedDeterministicReplay asserts a faulty run is as
// reproducible as a clean one: the same fault seed replays
// byte-identically, and a different seed draws a different fault
// sequence.
func TestFaultSeedDeterministicReplay(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)
	opt := Options{Instructions: 20000, Seed: 3, Faults: faults.Intensity(0.75, 17)}

	a, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, a)) != string(marshal(t, b)) {
		t.Fatal("same fault seed did not replay byte-identically")
	}

	opt.Faults = faults.Intensity(0.75, 18)
	c, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if string(marshal(t, a)) == string(marshal(t, c)) {
		t.Fatal("different fault seeds produced identical fault sequences")
	}
}

// TestMatrixPartialFailure asserts one bad cell does not poison a
// sweep: the unknown benchmark's cells land in Failures as
// ErrInvalidSpec while every other cell completes.
func TestMatrixPartialFailure(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := Options{Instructions: 20000, Seed: 3, Benchmarks: []string{"gzip", "no_such_bench"}}

	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatalf("partial failure escalated to a sweep error: %v", err)
	}
	perBench := 1 + len(ControlledSchemes())
	if len(m.Failures) != perBench {
		t.Fatalf("got %d failures, want %d (one per scheme of the bad benchmark)", len(m.Failures), perBench)
	}
	for _, f := range m.Failures {
		if f.Bench != "no_such_bench" {
			t.Errorf("healthy benchmark %q reported a failure: %v", f.Bench, f.Err)
		}
		if !errors.Is(f.Err, ErrInvalidSpec) {
			t.Errorf("unknown benchmark not classified ErrInvalidSpec: %v", f.Err)
		}
	}
	if !m.Complete("gzip") {
		t.Error("healthy benchmark row is incomplete")
	}
	if m.Complete("no_such_bench") {
		t.Error("failed benchmark row claims to be complete")
	}
	if c := m.Compare("no_such_bench", SchemeAdaptive); c != (m.Compare("no_such_bench", SchemePID)) {
		_ = c // both are zero Comparisons; just exercising nil-safety
	}
}

// TestMatrixPanicIsolation asserts a panic inside one cell's simulation
// is recovered into ErrRunPanicked for that cell only. Caching is off
// so the panicking MutateAdaptive runs only where it is attached — the
// adaptive cells — instead of in every cell's cache-key derivation.
func TestMatrixPanicIsolation(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)
	opt := Options{
		Instructions:   20000,
		Seed:           3,
		Benchmarks:     []string{"gzip"},
		MutateAdaptive: func(c *control.Config) { panic("rigged controller") },
	}

	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatalf("one panicking scheme escalated to a sweep error: %v", err)
	}
	if len(m.Failures) != 1 {
		t.Fatalf("got %d failures, want exactly the adaptive cell: %+v", len(m.Failures), m.Failures)
	}
	f := m.Failures[0]
	if f.Bench != "gzip" || f.Scheme != SchemeAdaptive {
		t.Errorf("failure at %s/%s, want gzip/adaptive", f.Bench, f.Scheme)
	}
	if !errors.Is(f.Err, ErrRunPanicked) {
		t.Errorf("panic not classified ErrRunPanicked: %v", f.Err)
	}
	for _, s := range []Scheme{SchemeNone, SchemePID, SchemeAttackDecay} {
		if m.Results["gzip"][s] == nil {
			t.Errorf("%s cell missing although only adaptive panicked", s)
		}
	}
}

// TestRunTimeout asserts a deadline shorter than any simulation
// surfaces as ErrRunTimeout.
func TestRunTimeout(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)
	opt := Options{Instructions: 20000, Seed: 3, Timeout: time.Nanosecond}
	_, err := RunOne("gzip", SchemeAdaptive, opt)
	if !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("got %v, want ErrRunTimeout", err)
	}
}

// TestRunCancelled asserts a cancelled context surfaces as
// ErrCancelled.
func TestRunCancelled(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := Options{Instructions: 20000, Seed: 3}
	_, err := RunOneContext(ctx, "gzip", SchemeAdaptive, opt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
}

// TestTransientErrorsNotMemoized asserts a timeout is never replayed
// from the result cache: the same key re-simulates once the deadline
// pressure is gone.
func TestTransientErrorsNotMemoized(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := Options{Instructions: 20000, Seed: 3, Timeout: time.Nanosecond}
	if _, err := RunOne("gzip", SchemeAdaptive, opt); !errors.Is(err, ErrRunTimeout) {
		t.Fatalf("setup: got %v, want ErrRunTimeout", err)
	}
	opt.Timeout = 0 // same cache key: Timeout is not part of the simulation input
	res, err := RunOne("gzip", SchemeAdaptive, opt)
	if err != nil {
		t.Fatalf("timeout failure was replayed from the cache: %v", err)
	}
	if res == nil {
		t.Fatal("no result after retry")
	}
}

// TestFaultSweepReport asserts the robustness artifact is generated,
// shaped as expected, and deterministic under a fixed seed even when
// every simulation is redone from scratch.
func TestFaultSweepReport(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := Options{Instructions: 20000, Seed: 3}
	intensities := []float64{0, 1}

	rep, err := FaultSweep(opt, []string{"gzip"}, intensities)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "robustness" {
		t.Errorf("report ID %q, want robustness", rep.ID)
	}
	// Header, one row per intensity, and the degradation summary.
	if want := 1 + len(intensities) + 1; len(rep.Lines) != want {
		t.Errorf("report has %d lines, want %d:\n%s", len(rep.Lines), want, rep.String())
	}

	ResetCache() // force a full re-simulation of every cell
	again, err := FaultSweep(opt, []string{"gzip"}, intensities)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Errorf("fault sweep is not deterministic for a fixed seed:\n%s\nvs\n%s", rep.String(), again.String())
	}

	if _, err := FaultSweep(opt, []string{"gzip"}, []float64{2}); !errors.Is(err, ErrInvalidSpec) {
		t.Errorf("out-of-range intensity accepted: %v", err)
	}
}
