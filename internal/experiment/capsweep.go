package experiment

import (
	"context"
	"fmt"
	"strings"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/governor"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/plot"
)

// DefaultCapBudgetsPerCoreW is the cap sweep's per-core budget grid in
// watts. The chip budget for a cell is grid value × core count, so the
// grid stays binding at any core count: the default 4-core workload mix
// draws 12-19 W per core uncapped, so the grid spans from barely
// binding (10 W/core) to deeply throttled (5 W/core).
var DefaultCapBudgetsPerCoreW = []float64{10, 8.75, 7.5, 6.25, 5}

// DefaultCapTransientPerCoreW is the budget-reallocation transient's
// per-core budget: binding against every default benchmark but far from
// the frequency floor, so the trace shows regulation rather than
// saturation.
const DefaultCapTransientPerCoreW = 7.5

// capSweepCores sizes the chip the cap artifacts simulate. A chip-level
// governor study needs multiple cores; when the caller does not ask for
// a specific count the artifacts use a 4-core chip (matching the four
// DefaultChipBenchmarks).
func capSweepCores(opt Options) int {
	if opt.Cores > 1 {
		return opt.Cores
	}
	return 4
}

// bindingWindow returns the prefix of the epoch trace during which
// every core is still running. Cores finish at different times, and
// once one retires its workload the chip's demand can fall below the
// budget; those tail epochs measure demand, not regulation.
func bindingWindow(r *mcd.ChipResult) []mcd.EpochSample {
	if len(r.Cores) == 0 {
		return nil
	}
	first := r.Cores[0].Metrics.ExecTime
	for _, c := range r.Cores[1:] {
		if c.Metrics.ExecTime < first {
			first = c.Metrics.ExecTime
		}
	}
	end := 0
	for end < len(r.EpochTrace) && r.EpochTrace[end].Time <= first {
		end++
	}
	return r.EpochTrace[:end]
}

// steadyPowerW measures steady-state chip power: the mean total power
// over the last half of the binding window.
func steadyPowerW(r *mcd.ChipResult) (float64, bool) {
	window := bindingWindow(r)
	if len(window) == 0 {
		return 0, false
	}
	half := window[len(window)/2:]
	sum := 0.0
	for _, s := range half {
		sum += s.TotalPowerW()
	}
	return sum / float64(len(half)), true
}

// floorLimited reports whether the governor's allowance railed at the
// frequency floor across the steady half of the binding window — a
// budget below the chip's floor power (gating residue plus leakage at
// f_min) is unreachable, and the adherence figure for such a cell
// measures the floor, not the regulator. The detector uses the mean
// per-core cap with a 10% tolerance above f_min: a demand-proportional
// split can hold individual caps slightly above the floor even when the
// total allowance is pinned at N·f_min.
func floorLimited(r *mcd.ChipResult, minMHz float64) bool {
	window := bindingWindow(r)
	if len(window) == 0 {
		return false
	}
	sum, n := 0.0, 0
	for _, s := range window[len(window)/2:] {
		for _, cap := range s.CapMHz {
			sum += cap
			n++
		}
	}
	return n > 0 && sum/float64(n) <= minMHz*1.1
}

// capSweepGrid holds one cap sweep: the uncapped reference chip plus
// one cell per (capping governor, budget).
type capSweepGrid struct {
	cores    int
	budgetsW []float64 // chip budgets, descending
	govs     []governor.Descriptor
	base     *mcd.ChipResult
	cells    [][]*mcd.ChipResult // [gov][budget]
}

// newCapSweepGrid lays out the sweep's shape from the registry and the
// budget grid. Pure setup, kept out of the context-bearing sweep.
func newCapSweepGrid(opt Options) (*capSweepGrid, error) {
	cores := capSweepCores(opt)
	g := &capSweepGrid{cores: cores}
	for _, per := range DefaultCapBudgetsPerCoreW {
		g.budgetsW = append(g.budgetsW, per*float64(cores))
	}
	for _, d := range governor.All() {
		if d.Capping {
			g.govs = append(g.govs, d)
		}
	}
	if len(g.govs) == 0 {
		return nil, invalidSpec(fmt.Errorf("experiment: no capping governors registered"))
	}
	g.cells = make([][]*mcd.ChipResult, len(g.govs))
	for i := range g.cells {
		g.cells[i] = make([]*mcd.ChipResult, len(g.budgetsW))
	}
	return g, nil
}

// runCapSweep simulates the grid. Cells run on the shared worker pool;
// each chip additionally parallelizes over its own cores, so the sweep
// saturates the machine without oversubscribing any single cell.
func runCapSweep(ctx context.Context, opt Options) (*capSweepGrid, error) {
	benches := opt.Benchmarks
	g, err := newCapSweepGrid(opt)
	if err != nil {
		return nil, err
	}
	// Flatten to one task list: index 0 is the uncapped reference, the
	// rest are (governor, budget) cells.
	type cell struct{ gi, bi int }
	cells := []cell{{-1, -1}}
	for gi := range g.govs {
		for bi := range g.budgetsW {
			cells = append(cells, cell{gi, bi})
		}
	}
	errs := forEachParallel(ctx, len(cells), func(i int) error {
		sub := opt
		sub.Cores = g.cores
		c := cells[i]
		if c.gi < 0 {
			sub.Governor = governor.DefaultName
			sub.PowerCapW = 0
		} else {
			sub.Governor = g.govs[c.gi].Name
			sub.PowerCapW = g.budgetsW[c.bi]
		}
		res, err := RunChipContext(ctx, benches, SchemeAdaptive, sub)
		if err != nil {
			return err
		}
		if c.gi < 0 {
			g.base = res
		} else {
			g.cells[c.gi][c.bi] = res
		}
		return nil
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("capsweep: %w: %v", ErrCancelled, err)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("capsweep: %w", errs[0].err)
	}
	return g, nil
}

// CapSweep renders the chip power-cap sweep: for every capping governor
// and every budget on the grid, the chip's mean and steady-state power,
// budget adherence, EDP, and per-core throughput, against the uncapped
// reference. The per-domain adaptive controllers stay active in every
// cell — the sweep shows the chip-level cap loop composing with, not
// replacing, the paper's per-domain control.
func CapSweep(opt Options) (Report, error) {
	return CapSweepContext(opt.ctx(), opt)
}

// CapSweepContext is CapSweep with explicit cancellation.
func CapSweepContext(ctx context.Context, opt Options) (Report, error) {
	g, err := runCapSweep(ctx, opt)
	if err != nil {
		return Report{}, err
	}
	return renderCapSweep(opt, g), nil
}

// perCoreMIPS formats each core's throughput for a report row.
func perCoreMIPS(r *mcd.ChipResult) string {
	parts := make([]string, len(r.Cores))
	for i, c := range r.Cores {
		parts[i] = fmt.Sprintf("%.0f", c.Metrics.IPS()/1e6)
	}
	return strings.Join(parts, " ")
}

// renderCapSweep formats the simulated grid. Pure rendering over
// in-memory data, kept out of the context-bearing sweep.
func renderCapSweep(opt Options, g *capSweepGrid) Report {
	lines := []string{
		fmt.Sprintf("%-14s %10s %9s %10s %9s %11s  %s",
			"governor", "budget(W)", "mean(W)", "steady(W)", "adher(%)", "EDP(uJ.s)", "per-core MIPS"),
		fmt.Sprintf("%-14s %10s %9.2f %10s %9s %11.3f  %s",
			"none", "-", g.base.MeanPowerW(), "-", "-", g.base.Metrics.EDP()*1e6, perCoreMIPS(g.base)),
	}
	minMHz := opt.machine().Range.MinMHz
	worstAdher := 0.0
	for gi, d := range g.govs {
		for bi, b := range g.budgetsW {
			r := g.cells[gi][bi]
			steady, ok := steadyPowerW(r)
			steadyCol, adherCol := "-", "-"
			if ok {
				steadyCol = fmt.Sprintf("%.2f", steady)
				// Floor-limited = the allowance railed near f_min AND the
				// chip still overshot the budget by more than 10% — near
				// the floor a cell can regulate within band (flag neither
				// signal alone).
				if floorLimited(r, minMHz) && steady > b*1.1 {
					adherCol = "floor"
				} else {
					adher := 100 * (steady - b) / b
					adherCol = fmt.Sprintf("%+.1f", adher)
					if adher < 0 {
						adher = -adher
					}
					if d.Name == "integral-gain" && adher > worstAdher {
						worstAdher = adher
					}
				}
			}
			lines = append(lines, fmt.Sprintf("%-14s %10.1f %9.2f %10s %9s %11.3f  %s",
				d.Name, b, r.MeanPowerW(), steadyCol, adherCol, r.Metrics.EDP()*1e6, perCoreMIPS(r)))
		}
	}
	return Report{
		ID:    "capsweep",
		Title: "Chip EDP and per-core throughput vs power budget, per governor",
		Lines: lines,
		Notes: []string{
			fmt.Sprintf("%d cores, benchmarks round-robin %s, scheme adaptive, epoch %gus, gain %g MHz/W",
				g.cores, strings.Join(capBenchNames(opt), "/"), float64(mcd.DefaultEpoch)/float64(clock.Microsecond), capGain(opt)),
			"adher: steady-state power vs budget over the last half of the binding window (epochs while every core runs); tail epochs measure demand, not regulation",
			"adher 'floor': budget below the chip's frequency-floor power (gating residue + leakage at f_min); every cap rails at f_min and the cell measures the floor, not the regulator",
			fmt.Sprintf("integral-gain worst steady-state adherence across feasible budgets: %.1f%% (acceptance band +/-5%%)", worstAdher),
			"per-domain adaptive DVFS stays active under every governor; the cap composes with it via min(controller target, cap)",
		},
	}
}

// CapSweepSVG renders the sweep's EDP curves: one line per capping
// governor plus the uncapped reference, EDP (µJ·s) against the chip
// power budget (W).
func CapSweepSVG(ctx context.Context, opt Options) (string, error) {
	g, err := runCapSweep(ctx, opt)
	if err != nil {
		return "", err
	}
	return capSweepChart(g)
}

// capSweepChart builds the sweep figure. Pure rendering over in-memory
// data, kept out of the context-bearing sweep.
func capSweepChart(g *capSweepGrid) (string, error) {
	x := make([]float64, len(g.budgetsW))
	baseY := make([]float64, len(g.budgetsW))
	for i, b := range g.budgetsW {
		x[i] = b
		baseY[i] = round2(g.base.Metrics.EDP() * 1e6)
	}
	series := []plot.Series{{Name: "uncapped", X: x, Y: baseY}}
	for gi, d := range g.govs {
		y := make([]float64, len(g.budgetsW))
		for bi := range g.budgetsW {
			y[bi] = round2(g.cells[gi][bi].Metrics.EDP() * 1e6)
		}
		series = append(series, plot.Series{Name: d.Name, X: x, Y: y})
	}
	c := plot.LineChart{
		Title:  fmt.Sprintf("Chip EDP vs power budget (%d cores, adaptive scheme)", g.cores),
		XLabel: "chip power budget (W)",
		YLabel: "chip EDP (uJ*s)",
		Series: series,
	}
	return c.SVG()
}

// capBenchNames reports the workload mix the cap artifacts simulate
// (the caller's -bench selection, else the chip default).
func capBenchNames(opt Options) []string {
	if len(opt.Benchmarks) > 0 {
		return opt.Benchmarks
	}
	return DefaultChipBenchmarks
}

// capGain reports the integral gain the cap artifacts run with.
func capGain(opt Options) float64 {
	if opt.GovernorGain > 0 {
		return opt.GovernorGain
	}
	return governor.DefaultGainMHzPerW
}

// CapTransient renders the budget-reallocation transient: an N-core
// chip under the integral-gain governor at a binding budget, traced
// epoch by epoch. The interesting moments are the cold start (the
// allowance integrates down from N·f_max until the chip meets the
// budget) and each core's finish (the finisher's watts reflow to the
// still-running cores within a few epochs).
func CapTransient(opt Options) (Report, error) {
	return CapTransientContext(opt.ctx(), opt)
}

// CapTransientContext is CapTransient with explicit cancellation.
func CapTransientContext(ctx context.Context, opt Options) (Report, error) {
	cores := capSweepCores(opt)
	budget := opt.PowerCapW
	if budget <= 0 {
		budget = DefaultCapTransientPerCoreW * float64(cores)
	}
	sub := opt
	sub.Cores = cores
	sub.Governor = "integral-gain"
	sub.PowerCapW = budget
	r, err := RunChipContext(ctx, opt.Benchmarks, SchemeAdaptive, sub)
	if err != nil {
		return Report{}, err
	}
	if len(r.EpochTrace) == 0 {
		return Report{}, fmt.Errorf("captransient: %w: run produced no epoch trace", ErrInvalidSpec)
	}
	return renderCapTransient(opt, cores, budget, r), nil
}

// renderCapTransient formats the epoch trace. Pure rendering over
// in-memory data, kept out of the context-bearing run.
func renderCapTransient(opt Options, cores int, budget float64, r *mcd.ChipResult) Report {
	lines := []string{
		fmt.Sprintf("%-9s %9s %9s  %-*s  %s",
			"t(us)", "total(W)", "err(W)", 7*len(r.Cores)-1, "per-core P(W)", "per-core cap(MHz)"),
	}
	// Print at most ~80 epochs; long runs are strided deterministically
	// but the final epoch is always shown.
	stride := (len(r.EpochTrace) + 79) / 80
	for i, s := range r.EpochTrace {
		if i%stride != 0 && i != len(r.EpochTrace)-1 {
			continue
		}
		pw := make([]string, len(s.CorePowerW))
		for c, w := range s.CorePowerW {
			pw[c] = fmt.Sprintf("%6.2f", w)
		}
		caps := make([]string, len(s.CapMHz))
		for c, m := range s.CapMHz {
			caps[c] = fmt.Sprintf("%.0f", m)
		}
		total := s.TotalPowerW()
		lines = append(lines, fmt.Sprintf("%-9.1f %9.2f %+9.2f  %s  %s",
			s.Time.Seconds()*1e6, total, total-budget, strings.Join(pw, " "), strings.Join(caps, " ")))
	}

	notes := []string{
		fmt.Sprintf("%d cores, benchmarks round-robin %s, scheme adaptive, budget %.1f W, gain %g MHz/W, epoch %gus",
			cores, strings.Join(capBenchNames(opt), "/"), budget, capGain(opt), float64(mcd.DefaultEpoch)/float64(clock.Microsecond)),
	}
	for i, c := range r.Cores {
		notes = append(notes, fmt.Sprintf("core %d (%s) finishes at %.1f us", i, c.Benchmark, c.Metrics.ExecTime.Seconds()*1e6))
	}
	if stride := (len(r.EpochTrace) + 79) / 80; stride > 1 {
		notes = append(notes, fmt.Sprintf("trace strided: every %dth of %d epochs (final epoch always shown)", stride, len(r.EpochTrace)))
	}
	notes = append(notes, "watch err(W) re-converge toward zero a few epochs after each core finish: the governor reallocates the finisher's share to the survivors")
	return Report{
		ID:    "captransient",
		Title: "Chip power-budget reallocation transient (integral-gain governor)",
		Lines: lines,
		Notes: notes,
	}
}
