package experiment

import (
	"context"
	"fmt"

	"mcddvfs/internal/faults"
	"mcddvfs/internal/power"
)

// DefaultFaultIntensities is the robustness sweep's default grid.
func DefaultFaultIntensities() []float64 {
	return []float64{0, 0.25, 0.5, 0.75, 1.0}
}

// FaultSweep measures how gracefully each control scheme degrades as
// control-loop faults intensify: for every intensity level it injects
// the canonical faults.Intensity profile (sensor noise, dropped and
// corrupted samples, actuation delay, missed steps, relock jitter) and
// reports the mean EDP improvement against the clean no-DVFS baseline,
// plus the drop from the scheme's own fault-free figure.
//
// The sweep tests the paper's robustness claim (Section 3: the
// resettable delay counters "reject deviant events") against the
// fixed-interval baselines, whose window averaging filters sensor
// noise by construction. The baseline runs are fault-free: faults
// corrupt only the control loop, and SchemeNone has no control loop.
func FaultSweep(opt Options, benchmarks []string, intensities []float64) (Report, error) {
	return FaultSweepContext(opt.ctx(), opt, benchmarks, intensities)
}

// FaultSweepContext is FaultSweep with explicit cancellation.
func FaultSweepContext(ctx context.Context, opt Options, benchmarks []string, intensities []float64) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	if len(intensities) == 0 {
		intensities = DefaultFaultIntensities()
	}
	if err := validateIntensities(intensities); err != nil {
		return Report{}, err
	}
	schemes, err := matrixSchemes(opt)
	if err != nil {
		return Report{}, err
	}

	// One task per (intensity, scheme, benchmark) triple plus the
	// shared clean baselines; the flat list keeps every simulation on
	// the worker pool at once.
	type cell struct {
		intensity float64
		scheme    Scheme
		bench     string
	}
	var cells []cell
	for _, lv := range intensities {
		for _, s := range schemes {
			for _, b := range opt.Benchmarks {
				cells = append(cells, cell{lv, s, b})
			}
		}
	}
	comps := make([]power.Comparison, len(cells))
	var failures []CellError
	errs := forEachParallel(ctx, len(cells), func(i int) error {
		c := cells[i]
		base, err := RunOneContext(ctx, c.bench, SchemeNone, opt) // clean, shared via cache
		if err != nil {
			return err
		}
		sub := opt
		sub.Faults = faults.Intensity(c.intensity, opt.Seed)
		run, err := RunOneContext(ctx, c.bench, c.scheme, sub)
		if err != nil {
			return err
		}
		comps[i] = power.Compare(base.Metrics, run.Metrics)
		return nil
	})
	for _, te := range errs {
		c := cells[te.index]
		failures = append(failures, CellError{Bench: c.bench, Scheme: c.scheme, Err: te.err})
	}
	if err := ctx.Err(); err != nil {
		return Report{}, fmt.Errorf("robustness: %w: %v", ErrCancelled, err)
	}
	if len(failures) == len(cells) && len(cells) > 0 {
		return Report{}, fmt.Errorf("robustness: every cell failed, first: %w", failures[0].Err)
	}
	// Aggregate: mean EDP improvement per (intensity, scheme) over the
	// benchmarks whose cells completed.
	failed := make(map[cell]bool, len(failures))
	for _, te := range errs {
		failed[cells[te.index]] = true
	}
	mean := make(map[Scheme][]float64, len(schemes)) // per scheme, indexed by intensity
	for _, s := range schemes {
		mean[s] = make([]float64, len(intensities))
	}
	for li, lv := range intensities {
		for _, s := range schemes {
			sum, n := 0.0, 0
			for i, c := range cells {
				if c.intensity != lv || c.scheme != s || failed[c] {
					continue
				}
				sum += comps[i].EDPImprovement
				n++
			}
			if n > 0 {
				mean[s][li] = sum / float64(n)
			}
		}
	}

	return renderFaultSweep(opt, schemes, intensities, mean, failures), nil
}

// validateIntensities bounds-checks the sweep grid.
func validateIntensities(intensities []float64) error {
	for _, lv := range intensities {
		if lv < 0 || lv > 1 {
			return invalidSpec(fmt.Errorf("experiment: fault intensity %g outside [0,1]", lv))
		}
	}
	return nil
}

// renderFaultSweep formats the aggregated sweep. Pure rendering over
// in-memory data — kept out of the context-bearing sweep so the
// cancellable function contains only cancellable work.
func renderFaultSweep(opt Options, schemes []Scheme, intensities []float64, mean map[Scheme][]float64, failures []CellError) Report {
	header := fmt.Sprintf("%-10s", "intensity")
	for _, s := range schemes {
		header += fmt.Sprintf(" %18s", string(s)+" EDP")
	}
	lines := []string{header}
	for li, lv := range intensities {
		row := fmt.Sprintf("%-10.2f", lv)
		for _, s := range schemes {
			row += fmt.Sprintf(" %17.2f%%", 100*mean[s][li])
		}
		lines = append(lines, row)
	}
	// Degradation: fault-free minus harshest level, per scheme.
	last := len(intensities) - 1
	deg := fmt.Sprintf("%-10s", "degraded")
	for _, s := range schemes {
		deg += fmt.Sprintf(" %16.2fpp", 100*(mean[s][0]-mean[s][last]))
	}
	lines = append(lines, deg)

	rep := Report{
		ID:    "robustness",
		Title: "EDP improvement vs control-loop fault intensity (mean over benchmarks)",
		Lines: lines,
		Notes: []string{
			fmt.Sprintf("benchmarks: %d; faults: sensor noise/drops/corruption + actuation delay/misses/relock jitter (faults.Intensity, seed %d)", len(opt.Benchmarks), opt.Seed),
			"'degraded' row: EDP-improvement points lost from intensity 0 to the harshest level (smaller = more robust)",
		},
	}
	for _, f := range failures {
		rep.Notes = append(rep.Notes, "failed cell: "+f.Error())
	}
	return rep
}
