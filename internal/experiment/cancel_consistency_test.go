package experiment

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcddvfs/internal/diskcache"
)

// TestMidMatrixCancellationLeavesDiskCacheConsistent is the crash/
// cancel-consistency contract for the disk tier: killing a matrix
// mid-flight may lose cells, but must never leave the cache directory
// damaged — no partial entries, no orphaned temp files — and a warm
// re-run over the survivors must produce artifacts byte-identical to a
// fully cold run.
func TestMidMatrixCancellationLeavesDiskCacheConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run consistency test is not -short")
	}
	defer ResetCache()

	render := func(dir string, ctx context.Context) (fig9, fig10 string, err error) {
		opt := Options{
			Instructions: 20000,
			Seed:         1,
			Benchmarks:   []string{"epic_decode", "gzip"},
			CacheDir:     dir,
		}
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return "", "", err
		}
		r9, r10 := m.Figure9(), m.Figure10()
		return r9.String(), r10.String(), nil
	}

	// Reference: a fully cold run in its own directory.
	refDir := t.TempDir()
	ResetCache()
	wantFig9, wantFig10, err := render(refDir, context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel as soon as the store has persisted at
	// least one cell but (likely) not all of them.
	dir := t.TempDir()
	store, err := DiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ResetCache()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if store.Stats().Writes >= 1 {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, _, err = render(dir, ctx)
	if err != nil && !errors.Is(err, ErrCancelled) {
		t.Fatalf("interrupted run: %v, want nil or ErrCancelled", err)
	}
	cancel()

	// The directory must verify clean right now: complete entries
	// only, no temp litter from the cancelled writers.
	if _, err := diskcache.Verify(dir, true); err != nil {
		t.Fatalf("cancelled run damaged the cache: %v", err)
	}

	// Warm re-run over the partial cache: same bytes as the cold
	// reference.
	ResetCache()
	gotFig9, gotFig10, err := render(dir, context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gotFig9 != wantFig9 {
		t.Error("fig9 after cancelled-then-warm run differs from a cold run")
	}
	if gotFig10 != wantFig10 {
		t.Error("fig10 after cancelled-then-warm run differs from a cold run")
	}
	if _, err := diskcache.Verify(dir, true); err != nil {
		t.Fatalf("warm re-run damaged the cache: %v", err)
	}
}
