package experiment

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcddvfs/internal/faults"
	"mcddvfs/internal/trace"
)

// buildCorpus emits a corpus directory for the named benchmarks at
// (seed, insts) with small chunks, so even short tests span many
// chunks per member.
func buildCorpus(t *testing.T, seed, insts int64, chunkInsts int, benches ...string) string {
	t.Helper()
	dir := t.TempDir()
	man := trace.CorpusManifest{FormatVersion: 2, Seed: seed, Instructions: insts}
	for _, bench := range benches {
		prof, err := trace.ByName(bench)
		if err != nil {
			t.Fatal(err)
		}
		m, err := trace.EmitCorpusMember(dir, prof, seed, insts, chunkInsts)
		if err != nil {
			t.Fatal(err)
		}
		man.Members = append(man.Members, m)
	}
	if err := trace.WriteCorpusManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	return dir
}

// sameResults asserts two matrices agree cell for cell on metrics and
// headline rates.
func sameResults(t *testing.T, label string, want, got *Matrix) {
	t.Helper()
	for _, b := range want.Benchmarks {
		for s, w := range want.Results[b] {
			g := got.Results[b][s]
			if g == nil {
				t.Fatalf("%s: %s/%s missing", label, b, s)
			}
			if !reflect.DeepEqual(w.Metrics, g.Metrics) {
				t.Errorf("%s: %s/%s metrics differ:\n  generated: %+v\n  corpus:    %+v", label, b, s, w.Metrics, g.Metrics)
			}
			if w.IPC != g.IPC || w.L1DMissRate != g.L1DMissRate {
				t.Errorf("%s: %s/%s rates differ", label, b, s)
			}
		}
	}
}

// TestCorpusMatrixBitIdentical is the tentpole differential: a matrix
// resolved from a corpus (streamed chunked replay) must be
// bit-identical — results and rendered txt/json/svg artifacts — to
// one whose streams are generated in memory, across a scheme subset
// and with the fault layer on.
func TestCorpusMatrixBitIdentical(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)

	const seed, insts = 21, 30000
	benches := []string{"adpcm_encode", "gzip", "swim"}
	dir := buildCorpus(t, seed, insts, 1<<10, benches...)

	variants := map[string]func(*Options){
		"plain":         func(o *Options) {},
		"scheme-subset": func(o *Options) { o.Schemes = []Scheme{SchemeAdaptive, SchemePID} },
		"faults":        func(o *Options) { o.Faults = faults.Intensity(0.5, seed) },
	}
	for name, tweak := range variants {
		gen := Options{Instructions: insts, Seed: seed, Benchmarks: benches}
		tweak(&gen)
		corp := gen
		corp.CorpusDir = dir

		mGen, err := RunMatrix(gen)
		if err != nil {
			t.Fatalf("%s: generated: %v", name, err)
		}
		mCorp, err := RunMatrix(corp)
		if err != nil {
			t.Fatalf("%s: corpus: %v", name, err)
		}
		if len(mGen.Failures) != 0 || len(mCorp.Failures) != 0 {
			t.Fatalf("%s: failures: gen=%v corpus=%v", name, mGen.Failures, mCorp.Failures)
		}
		sameResults(t, name, mGen, mCorp)
		if mCorp.Corpus == nil || mCorp.Corpus.Heals != 0 {
			t.Errorf("%s: corpus stats %+v", name, mCorp.Corpus)
		}
	}

	// Rendered artifacts through the full pipeline: every format of
	// the matrix-backed figures must be byte-identical.
	for _, id := range []string{"fig9", "fig10"} {
		for _, format := range []ArtifactFormat{FormatText, FormatJSON, FormatSVG} {
			gen := Options{Instructions: insts, Seed: seed, Benchmarks: benches}
			wantB, _, err := RenderArtifactContext(context.Background(), id, format, gen)
			if err != nil {
				t.Fatal(err)
			}
			gen.CorpusDir = dir
			gotB, _, err := RenderArtifactContext(context.Background(), id, format, gen)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantB, gotB) {
				t.Errorf("%s.%s differs between generated and corpus runs", id, format)
			}
		}
	}
}

// TestCorpusMatrixBoundedMemory is the scale acceptance check: a
// matrix whose corpus members are far larger than the chunk window
// completes with peak decoded-trace residency bounded by the window.
func TestCorpusMatrixBoundedMemory(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)

	const seed, insts = 33, 60000
	const chunk = 1 << 11 // 2048 insts -> ~30 chunks per member
	dir := buildCorpus(t, seed, insts, chunk, "gzip", "swim")

	opt := Options{Instructions: insts, Seed: seed, CorpusDir: dir}
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Failures) != 0 {
		t.Fatalf("failures: %v", m.Failures)
	}
	if m.Corpus == nil {
		t.Fatal("corpus-backed matrix reported no corpus stats")
	}
	memberRaw := insts * 25 // full decoded member size
	if m.Corpus.WindowBytes >= int64(memberRaw) {
		t.Fatalf("vacuous: window %d B not smaller than member %d B", m.Corpus.WindowBytes, memberRaw)
	}
	if m.Corpus.PeakResidentBytes > m.Corpus.WindowBytes {
		t.Fatalf("peak resident %d B exceeds window bound %d B", m.Corpus.PeakResidentBytes, m.Corpus.WindowBytes)
	}
	if m.Corpus.Loads == 0 {
		t.Fatal("no chunk loads recorded; did the corpus stream at all?")
	}
	// Benchmarks defaulted from the manifest, in sorted order.
	if len(m.Benchmarks) != 2 || m.Benchmarks[0] != "gzip" || m.Benchmarks[1] != "swim" {
		t.Fatalf("benchmarks not resolved from manifest: %v", m.Benchmarks)
	}
}

// TestCorpusMatrixHeals mirrors diskcache's self-healing: corrupt
// corpus bytes never fail the sweep or change a result — the stream is
// regenerated from the embedded profile, and the heal is counted.
func TestCorpusMatrixHeals(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(false)

	const seed, insts = 44, 20000
	benches := []string{"gzip", "swim"}
	opt := Options{Instructions: insts, Seed: seed, Benchmarks: benches}
	clean, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string]func(t *testing.T, path string){
		// Unreadable at open: the whole file is garbage.
		"open-time": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// Open succeeds, a later chunk's CRC fails mid-replay.
		"mid-stream": func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)*2/5] ^= 0x20
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, damage := range corrupt {
		dir := buildCorpus(t, seed, insts, 1<<9, benches...)
		damage(t, filepath.Join(dir, "gzip"+trace.CorpusMemberExt))

		o := opt
		o.CorpusDir = dir
		m, err := RunMatrix(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Failures) != 0 {
			t.Fatalf("%s: corruption failed the sweep: %v", name, m.Failures)
		}
		if m.Corpus == nil || m.Corpus.Heals < 1 {
			t.Fatalf("%s: no heal recorded: %+v", name, m.Corpus)
		}
		sameResults(t, name, clean, m)
	}
}

// TestCorpusOptionsMismatch: a corpus recorded at other coordinates
// than the options must be rejected as an invalid spec, as must a
// benchmark subset the corpus does not hold.
func TestCorpusOptionsMismatch(t *testing.T) {
	const seed, insts = 5, 2000
	dir := buildCorpus(t, seed, insts, 1<<8, "gzip")

	bad := []Options{
		{Instructions: insts, Seed: seed + 1, CorpusDir: dir},
		{Instructions: insts * 2, Seed: seed, CorpusDir: dir},
		{Instructions: insts, Seed: seed, CorpusDir: dir, Benchmarks: []string{"swim"}},
		{Instructions: insts, Seed: seed, CorpusDir: filepath.Join(dir, "nope")},
	}
	for i, o := range bad {
		if _, err := RunMatrix(o); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("case %d: err = %v, want ErrInvalidSpec", i, err)
		}
	}
	// The happy path with everything explicit still runs.
	good := Options{Instructions: insts, Seed: seed, CorpusDir: dir, Benchmarks: []string{"gzip"}}
	if m, err := RunMatrix(good); err != nil || !m.Complete("gzip") {
		t.Errorf("explicit match failed: %v", err)
	}
}

// TestRowFlushOrderedAndStreamIdentical pins the incremental-render
// contract: RowFlush delivers every benchmark exactly once in
// benchmark order, and a FigureStream fed those events produces bytes
// identical to the batch renderer's Report.WriteTo.
func TestRowFlushOrderedAndStreamIdentical(t *testing.T) {
	opt := fastOpt("adpcm_encode", "gzip", "swim")

	var events []RowEvent
	var f9, f10 bytes.Buffer
	s9, err := NewFigureStream(&f9, "fig9", opt)
	if err != nil {
		t.Fatal(err)
	}
	s10, err := NewFigureStream(&f10, "fig10", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.RowFlush = func(ev RowEvent) {
		events = append(events, ev)
		s9.Row(ev)
		s10.Row(ev)
	}
	m, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s9.Finish(m); err != nil {
		t.Fatal(err)
	}
	if err := s10.Finish(m); err != nil {
		t.Fatal(err)
	}

	if len(events) != 3 {
		t.Fatalf("got %d row events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Index != i || ev.Total != 3 || ev.Bench != opt.Benchmarks[i] {
			t.Errorf("event %d out of order: %+v", i, ev)
		}
		if !ev.Complete {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
	}

	var want9, want10 bytes.Buffer
	rep9, rep10 := m.Figure9(), m.Figure10()
	rep9.WriteTo(&want9)   //nolint:errcheck // bytes.Buffer cannot fail
	rep10.WriteTo(&want10) //nolint:errcheck // bytes.Buffer cannot fail
	if f9.String() != want9.String() {
		t.Errorf("streamed fig9 differs from batch:\n--- stream\n%s--- batch\n%s", f9.String(), want9.String())
	}
	if f10.String() != want10.String() {
		t.Errorf("streamed fig10 differs from batch:\n--- stream\n%s--- batch\n%s", f10.String(), want10.String())
	}
}

// TestRowFlushDrainsOnCancellation: the interrupted path shares the
// flush path — a cancelled sweep still delivers one event per
// benchmark (via the post-sweep drain), and the streamed figure equals
// the batch render of the partial matrix.
func TestRowFlushDrainsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every cell drains as skipped

	opt := fastOpt("gzip", "swim")
	var events []RowEvent
	var out bytes.Buffer
	stream, err := NewFigureStream(&out, "fig9", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.RowFlush = func(ev RowEvent) {
		events = append(events, ev)
		stream.Row(ev)
	}
	m, err := RunMatrixContext(ctx, opt)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if err := stream.Finish(m); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Complete || events[1].Complete {
		t.Fatalf("cancelled sweep events: %+v", events)
	}
	rep := m.Figure9()
	var want bytes.Buffer
	rep.WriteTo(&want) //nolint:errcheck // bytes.Buffer cannot fail
	if out.String() != want.String() {
		t.Errorf("cancelled stream differs from batch:\n--- stream\n%s--- batch\n%s", out.String(), want.String())
	}
	if !strings.Contains(out.String(), "omitted") {
		t.Errorf("omitted-rows note missing:\n%s", out.String())
	}
}
