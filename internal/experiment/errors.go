package experiment

import (
	"context"
	"errors"
	"fmt"
)

// The harness error taxonomy. Every failure an experiment run can
// produce wraps exactly one of these sentinels, so callers dispatch
// with errors.Is instead of string matching:
//
//	ErrInvalidSpec — the request could never run: unknown benchmark,
//	    malformed profile, or a machine configuration that fails
//	    validation. Retrying is pointless.
//	ErrRunTimeout  — the per-run deadline (Options.Timeout) expired.
//	ErrCancelled   — the run's context was cancelled (e.g. SIGINT).
//	ErrRunPanicked — the simulation panicked; the panic was recovered
//	    and converted so one bad cell cannot kill a whole sweep.
var (
	ErrInvalidSpec = errors.New("invalid run spec")
	ErrRunTimeout  = errors.New("run deadline exceeded")
	ErrCancelled   = errors.New("run cancelled")
	ErrRunPanicked = errors.New("run panicked")
)

// invalidSpec wraps an underlying validation failure with
// ErrInvalidSpec.
func invalidSpec(err error) error {
	return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
}

// wrapRunErr maps context termination onto the taxonomy and leaves
// every other error (already structured or domain-specific) alone.
func wrapRunErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrRunTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", ErrCancelled, err)
	default:
		return err
	}
}

// transientErr reports whether err reflects the circumstances of this
// attempt (cancellation, deadline) rather than a property of the
// simulation itself. Transient failures are never memoized: a later
// call with a fresh context must re-run the simulation.
func transientErr(err error) bool {
	return errors.Is(err, ErrCancelled) || errors.Is(err, ErrRunTimeout) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CellError is one failed cell of a benchmark × scheme sweep. The
// matrix keeps running when a cell fails; the failure is reported here
// alongside the partial results.
type CellError struct {
	Bench  string
	Scheme Scheme
	Err    error
}

// Error implements the error interface.
func (e *CellError) Error() string {
	return fmt.Sprintf("%s/%s: %v", e.Bench, e.Scheme, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }
