package experiment

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// taskError is one failed task of a forEachParallel sweep, tagged with
// the task's index so callers can map it back to their work list.
type taskError struct {
	index int
	err   error
}

// forEachParallel runs fn(0..n-1) on a fixed pool of min(GOMAXPROCS, n)
// workers pulling task indices from a channel. Every task runs to
// completion regardless of other tasks' failures — sweeps want partial
// results plus a failure list, not a first-error abort — and a panic
// inside a task is recovered into an ErrRunPanicked task error instead
// of killing the process. Failed tasks come back sorted by index.
//
// Cancelling ctx stops workers from picking up new tasks
// (already-started ones finish); tasks skipped that way are reported
// with ErrCancelled so the caller can tell "failed" from "never ran".
// Every task must be independent; the experiment harness qualifies
// because each simulation is a self-contained, internally deterministic
// machine.
func forEachParallel(ctx context.Context, n int, fn func(i int) error) []taskError {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []taskError
	)
	record := func(i int, err error) {
		mu.Lock()
		errs = append(errs, taskError{index: i, err: err})
		mu.Unlock()
	}
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if err := ctx.Err(); err != nil {
					record(i, fmt.Errorf("%w: %v", ErrCancelled, err))
					continue // drain remaining tasks without running them
				}
				if err := runTask(i, fn); err != nil {
					record(i, err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()

	// Insertion sort by index: failure lists are tiny.
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j-1].index > errs[j].index; j-- {
			errs[j-1], errs[j] = errs[j], errs[j-1]
		}
	}
	return errs
}

// runTask executes one task, converting a panic into a structured
// error carrying the panic value and its stack.
func runTask(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: task %d: %v\n%s", ErrRunPanicked, i, r, debug.Stack())
		}
	}()
	return fn(i)
}

// firstError adapts the failure list to the historical single-error
// contract: the lowest-indexed failure wrapped with its index, or nil.
func firstError(errs []taskError) error {
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("task %d: %w", errs[0].index, errs[0].err)
}
