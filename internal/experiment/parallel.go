package experiment

import (
	"runtime"
	"sync"
)

// forEachParallel runs fn(0..n-1) across GOMAXPROCS workers and returns
// the first error. Every task must be independent; the experiment
// harness qualifies because each simulation is a self-contained,
// internally deterministic machine.
func forEachParallel(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
