package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachParallel runs fn(0..n-1) on a fixed pool of min(GOMAXPROCS, n)
// workers pulling task indices from a channel, and returns the error of
// the lowest-numbered failing task wrapped with that index. After the
// first failure workers stop picking up new tasks (already-started ones
// finish). Every task must be independent; the experiment harness
// qualifies because each simulation is a self-contained, internally
// deterministic machine.
func forEachParallel(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		errIdx  = -1
		taskErr error
		failed  atomic.Bool
	)
	tasks := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				if failed.Load() {
					continue // drain remaining tasks without running them
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx = i
						taskErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	if taskErr != nil {
		return fmt.Errorf("task %d: %w", errIdx, taskErr)
	}
	return nil
}
