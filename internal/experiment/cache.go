package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"mcddvfs/internal/control"
	"mcddvfs/internal/diskcache"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

// The result cache memoizes RunProfile outcomes, keyed by a content
// hash of everything that determines a simulation: the workload
// profile, the scheme, and the canonicalized options (instruction
// budget, seed, machine configuration — including the fault spec —
// PID interval, and the *effect* of MutateAdaptive). The harness
// regenerates Tables 2-4, Figures 7-11 and the E1-E5 extensions from
// overlapping (benchmark, scheme, options) triples; with the cache
// each distinct triple is simulated exactly once per process.
//
// Caching is two-level. The first level is this in-process map;
// entries use a done-channel so concurrent requests for the same key
// run one simulation and share the result (single-flight). The second,
// optional level is a persistent content-addressed store on disk
// (internal/diskcache, enabled by Options.CacheDir): an in-process
// miss consults the store before simulating, and a successful
// simulation is written back, so completed cells survive process death
// and a warm re-render only decodes. Only clean results ever reach
// disk — errors, and in particular transient CellErrors (timeout,
// cancellation), are never persisted.
//
// Cached *mcd.Result values are shared between callers and MUST be
// treated as read-only. The one historical mutation site — RunMatrix
// stripping QueueSamples from non-baseline cells — now copies the
// struct first.
//
// A simulation is deterministic, so caching never changes any value a
// caller observes; it only removes duplicate work.
var resultCache = struct {
	mu      sync.Mutex
	enabled bool
	entries map[[sha256.Size]byte]*cacheEntry
	hits    uint64
	misses  uint64
}{enabled: true, entries: make(map[[sha256.Size]byte]*cacheEntry)}

type cacheEntry struct {
	done chan struct{}
	res  *mcd.Result
	err  error
}

// SetCaching enables or disables result memoization (both the
// in-process level and the disk level). It is enabled by default;
// disabling is useful for A/B-validating that the cache is transparent
// (artifacts must be byte-identical either way).
func SetCaching(on bool) {
	resultCache.mu.Lock()
	defer resultCache.mu.Unlock()
	resultCache.enabled = on
}

// ResetCache drops every memoized in-process result and zeroes the
// hit/miss counters. On-disk entries are untouched (delete the cache
// directory to force a cold run).
func ResetCache() {
	resultCache.mu.Lock()
	resultCache.entries = make(map[[sha256.Size]byte]*cacheEntry)
	resultCache.hits = 0
	resultCache.misses = 0
	resultCache.mu.Unlock()
	resetChipCache()
	sharedReplays.reset()
}

// CacheStats reports how many RunProfile calls were served from memory
// versus not (disk hits count as misses here; see DiskCacheStats).
func CacheStats() (hits, misses uint64) {
	resultCache.mu.Lock()
	defer resultCache.mu.Unlock()
	return resultCache.hits, resultCache.misses
}

// diskStores holds one open store per cache directory, created
// lazily. A store that fails to open is recorded as nil so a
// misconfigured directory degrades to uncached operation once instead
// of erroring every run.
var diskStores = struct {
	mu      sync.Mutex
	stores  map[string]*diskcache.Store
	openErr error
}{stores: make(map[string]*diskcache.Store)}

// diskStore returns the store for opt.CacheDir, opening it on first
// use, or nil when disk caching is off (empty CacheDir) or the
// directory is unusable.
func diskStore(opt Options) *diskcache.Store {
	if opt.CacheDir == "" {
		return nil
	}
	s, _ := DiskStore(opt.CacheDir, opt.CacheMaxBytes)
	return s
}

// DiskStore returns the process-wide store for dir, opening it on
// first use with the given size budget (later calls reuse the first
// store regardless of maxBytes). Every harness run with
// Options.CacheDir == dir goes through the returned store, so an
// operator attaching an observer or swapping the FS (chaos injection,
// circuit breaking in internal/serve) sees exactly the traffic the
// runs generate. The error reports an unusable directory; such a
// directory is cached as nil, and runs against it silently degrade to
// uncached simulation.
func DiskStore(dir string, maxBytes int64) (*diskcache.Store, error) {
	if dir == "" {
		return nil, invalidSpec(fmt.Errorf("experiment: DiskStore: empty cache directory"))
	}
	diskStores.mu.Lock()
	defer diskStores.mu.Unlock()
	if s, ok := diskStores.stores[dir]; ok {
		if s == nil {
			return nil, diskStores.openErr
		}
		return s, nil
	}
	s, err := diskcache.Open(dir, maxBytes)
	if err != nil {
		s = nil
		diskStores.openErr = err
	}
	diskStores.stores[dir] = s
	return s, err
}

// DiskCacheStats aggregates traffic over every store this process
// opened, plus the first open error (nil when every directory was
// usable). A non-nil error means runs fell back to simulation.
func DiskCacheStats() (diskcache.Stats, error) {
	diskStores.mu.Lock()
	defer diskStores.mu.Unlock()
	var total diskcache.Stats
	for _, s := range diskStores.stores {
		if s == nil {
			continue
		}
		st := s.Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Writes += st.Writes
		total.Corrupt += st.Corrupt
		total.Stale += st.Stale
		total.Evictions += st.Evictions
		total.ReadErrors += st.ReadErrors
		total.WriteErrors += st.WriteErrors
		total.Retries += st.Retries
	}
	return total, diskStores.openErr
}

// cacheKey hashes the complete simulation input. Options.Benchmarks
// and Options.Schemes are deliberately excluded: they select which
// runs happen, not what any individual run computes — a cell simulated
// for a subset matrix must hit the same warm disk-cache entry as the
// full sweep. CacheDir/CacheMaxBytes are excluded for the same reason
// — they say where results are stored, not what they are. The scheme
// enters the key as its registry name only (the struct below is part
// of the byte-stability contract; see TestCacheKeyGolden), so a
// registry refactor must never reorder or retype these fields.
// MutateAdaptive is a function and cannot be hashed directly; it is
// canonicalized by its observable effect — the controller
// configuration it produces from each domain's default. The Format
// field versions the key itself: bumping diskcache.FormatVersion
// retires every existing on-disk entry at once. opt must already have
// defaults applied.
func cacheKey(prof trace.Profile, scheme Scheme, opt Options) ([sha256.Size]byte, error) {
	if opt.chipMode() {
		// Chip-mode cells key on the chip shape as well — core count,
		// power budget, governor, gain — in a disjoint keyspace (see
		// chipCacheKey). The default single-core options never take
		// this branch, so the legacy key bytes are untouched.
		return chipCacheKey(chipProfiles(prof, opt), scheme, opt)
	}
	mutated := make([]control.Config, isa.NumExecDomains)
	for d := 0; d < isa.NumExecDomains; d++ {
		cfg := control.DefaultConfig(isa.ExecDomain(d))
		if opt.MutateAdaptive != nil {
			opt.MutateAdaptive(&cfg)
		}
		mutated[d] = cfg
	}
	key := struct {
		Format           int
		Profile          trace.Profile
		Scheme           Scheme
		Instructions     int64
		Seed             int64
		PIDIntervalTicks int
		Machine          mcd.Config
		Adaptive         []control.Config
	}{
		Format:           diskcache.FormatVersion,
		Profile:          prof,
		Scheme:           scheme,
		Instructions:     opt.Instructions,
		Seed:             opt.Seed,
		PIDIntervalTicks: opt.PIDIntervalTicks,
		Machine:          opt.machine(),
		Adaptive:         mutated,
	}
	blob, err := json.Marshal(&key)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("experiment: cache key: %w", err)
	}
	return sha256.Sum256(blob), nil
}

// cachedRun returns the memoized result for (prof, scheme, opt) or
// simulates it via run. Exactly one caller simulates a given key; any
// concurrent callers block on its completion and share the outcome.
// ctx gates only this attempt's disk probe — a cancelled context
// falls straight through to run, whose own machinery honors it.
func cachedRun(ctx context.Context, prof trace.Profile, scheme Scheme, opt Options, run func() (*mcd.Result, error)) (*mcd.Result, error) {
	resultCache.mu.Lock()
	if !resultCache.enabled {
		resultCache.mu.Unlock()
		return run()
	}
	k, err := cacheKey(prof, scheme, opt)
	if err != nil {
		resultCache.mu.Unlock()
		return nil, err
	}
	if e, ok := resultCache.entries[k]; ok {
		resultCache.hits++
		resultCache.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	resultCache.entries[k] = e
	resultCache.misses++
	resultCache.mu.Unlock()

	store := diskStore(opt)
	func() {
		// Close even if run panics so waiters are not stranded; the
		// panic still propagates to this (first) caller.
		defer close(e.done)
		if store != nil && ctx.Err() == nil {
			var res mcd.Result
			if derr := store.Get(k, &res); derr == nil {
				e.res = &res
				return
			}
			// Any disk failure — miss, corruption, version mismatch —
			// falls back to simulation; Get already healed bad entries.
		}
		e.res, e.err = run()
		if e.err == nil && store != nil {
			// Persist only clean results. A write failure costs the
			// persistence of this one cell, not the run.
			store.Put(k, e.res) //nolint:errcheck // cache write is best-effort
		}
	}()
	if e.err != nil && transientErr(e.err) {
		// A timeout or cancellation says nothing about the simulation
		// itself — evict so a later call with a fresh context re-runs
		// instead of replaying the stale failure. Waiters already
		// parked on e.done still see this attempt's error.
		resultCache.mu.Lock()
		if resultCache.entries[k] == e {
			delete(resultCache.entries, k)
		}
		resultCache.mu.Unlock()
	}
	return e.res, e.err
}
