package experiment

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/trace"
)

// The result cache memoizes RunProfile outcomes within a process,
// keyed by a content hash of everything that determines a simulation:
// the workload profile, the scheme, and the canonicalized options
// (instruction budget, seed, machine configuration, PID interval, and
// the *effect* of MutateAdaptive). The harness regenerates Tables 2-4,
// Figures 7-11 and the E1-E5 extensions from overlapping (benchmark,
// scheme, options) triples; with the cache each distinct triple is
// simulated exactly once per process.
//
// Cached *mcd.Result values are shared between callers and MUST be
// treated as read-only. The one historical mutation site — RunMatrix
// stripping QueueSamples from non-baseline cells — now copies the
// struct first.
//
// A simulation is deterministic, so caching never changes any value a
// caller observes; it only removes duplicate work. Entries use a
// done-channel so concurrent requests for the same key run one
// simulation and share the result (single-flight).
var resultCache = struct {
	mu      sync.Mutex
	enabled bool
	entries map[[sha256.Size]byte]*cacheEntry
	hits    uint64
	misses  uint64
}{enabled: true, entries: make(map[[sha256.Size]byte]*cacheEntry)}

type cacheEntry struct {
	done chan struct{}
	res  *mcd.Result
	err  error
}

// SetCaching enables or disables in-process result memoization. It is
// enabled by default; disabling is useful for A/B-validating that the
// cache is transparent (artifacts must be byte-identical either way).
func SetCaching(on bool) {
	resultCache.mu.Lock()
	defer resultCache.mu.Unlock()
	resultCache.enabled = on
}

// ResetCache drops every memoized result and zeroes the hit/miss
// counters.
func ResetCache() {
	resultCache.mu.Lock()
	defer resultCache.mu.Unlock()
	resultCache.entries = make(map[[sha256.Size]byte]*cacheEntry)
	resultCache.hits = 0
	resultCache.misses = 0
}

// CacheStats reports how many RunProfile calls were served from memory
// versus simulated.
func CacheStats() (hits, misses uint64) {
	resultCache.mu.Lock()
	defer resultCache.mu.Unlock()
	return resultCache.hits, resultCache.misses
}

// cacheKey hashes the complete simulation input. Options.Benchmarks is
// deliberately excluded: it selects which runs happen, not what any
// individual run computes. MutateAdaptive is a function and cannot be
// hashed directly; it is canonicalized by its observable effect — the
// controller configuration it produces from each domain's default.
// opt must already have defaults applied.
func cacheKey(prof trace.Profile, scheme Scheme, opt Options) ([sha256.Size]byte, error) {
	mutated := make([]control.Config, isa.NumExecDomains)
	for d := 0; d < isa.NumExecDomains; d++ {
		cfg := control.DefaultConfig(isa.ExecDomain(d))
		if opt.MutateAdaptive != nil {
			opt.MutateAdaptive(&cfg)
		}
		mutated[d] = cfg
	}
	key := struct {
		Profile          trace.Profile
		Scheme           Scheme
		Instructions     int64
		Seed             int64
		PIDIntervalTicks int
		Machine          mcd.Config
		Adaptive         []control.Config
	}{
		Profile:          prof,
		Scheme:           scheme,
		Instructions:     opt.Instructions,
		Seed:             opt.Seed,
		PIDIntervalTicks: opt.PIDIntervalTicks,
		Machine:          opt.machine(),
		Adaptive:         mutated,
	}
	blob, err := json.Marshal(&key)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("experiment: cache key: %w", err)
	}
	return sha256.Sum256(blob), nil
}

// cachedRun returns the memoized result for (prof, scheme, opt) or
// simulates it via run. Exactly one caller simulates a given key; any
// concurrent callers block on its completion and share the outcome.
func cachedRun(prof trace.Profile, scheme Scheme, opt Options, run func() (*mcd.Result, error)) (*mcd.Result, error) {
	resultCache.mu.Lock()
	if !resultCache.enabled {
		resultCache.mu.Unlock()
		return run()
	}
	k, err := cacheKey(prof, scheme, opt)
	if err != nil {
		resultCache.mu.Unlock()
		return nil, err
	}
	if e, ok := resultCache.entries[k]; ok {
		resultCache.hits++
		resultCache.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	resultCache.entries[k] = e
	resultCache.misses++
	resultCache.mu.Unlock()

	func() {
		// Close even if run panics so waiters are not stranded; the
		// panic still propagates to this (first) caller.
		defer close(e.done)
		e.res, e.err = run()
	}()
	if e.err != nil && transientErr(e.err) {
		// A timeout or cancellation says nothing about the simulation
		// itself — evict so a later call with a fresh context re-runs
		// instead of replaying the stale failure. Waiters already
		// parked on e.done still see this attempt's error.
		resultCache.mu.Lock()
		if resultCache.entries[k] == e {
			delete(resultCache.entries, k)
		}
		resultCache.mu.Unlock()
	}
	return e.res, e.err
}
