package experiment

import (
	"fmt"

	"mcddvfs/internal/control"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
)

// AblationVariant is one adaptive-controller configuration under test.
type AblationVariant struct {
	Name   string
	Mutate func(*control.Config)
}

// AblationVariants returns the design-choice ablations called out in
// DESIGN.md: each paper feature disabled in isolation, plus the
// Remark-3 delay-ratio extremes.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "paper", Mutate: nil},
		{Name: "no-signal-scaling", Mutate: func(c *control.Config) { c.SignalScaledDelay = false }},
		{Name: "no-down-caution", Mutate: func(c *control.Config) { c.ScaleDownCaution = false }},
		{Name: "no-double-step", Mutate: func(c *control.Config) { c.CombineDouble = false }},
		{Name: "no-deviation-window", Mutate: func(c *control.Config) { c.DWLevel, c.DWSlope = 0, 0 }},
		{Name: "equal-delays", Mutate: func(c *control.Config) { c.TL0 = c.TM0 }}, // violates Remark 3
		{Name: "ratio-2x", Mutate: func(c *control.Config) { c.TL0 = c.TM0 / 2 }},
		{Name: "ratio-8x", Mutate: func(c *control.Config) { c.TL0 = c.TM0 / 8 }},
		{Name: "proportional-step", Mutate: func(c *control.Config) { c.ProportionalStep = true }},
	}
}

// Ablation evaluates the variants over the given benchmarks and reports
// mean energy/performance/EDP against the no-DVFS baseline.
func Ablation(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{fmt.Sprintf("%-22s %12s %12s %12s %10s", "variant", "energy save", "perf degr.", "EDP impr.", "actions")}
	for _, v := range AblationVariants() {
		sub := opt
		sub.MutateAdaptive = v.Mutate
		var sum power.Comparison
		actions := 0
		for _, b := range sub.Benchmarks {
			base, err := RunOne(b, SchemeNone, sub)
			if err != nil {
				return Report{}, err
			}
			run, err := RunOne(b, SchemeAdaptive, sub)
			if err != nil {
				return Report{}, err
			}
			c := power.Compare(base.Metrics, run.Metrics)
			sum.EnergySaving += c.EnergySaving
			sum.PerfDegradation += c.PerfDegradation
			sum.EDPImprovement += c.EDPImprovement
			for _, name := range []string{mcd.NameInt, mcd.NameFP, mcd.NameLS} {
				actions += run.Domains[name].Transitions
			}
		}
		n := float64(len(sub.Benchmarks))
		lines = append(lines, fmt.Sprintf("%-22s %11.2f%% %11.2f%% %11.2f%% %10d",
			v.Name, 100*sum.EnergySaving/n, 100*sum.PerfDegradation/n, 100*sum.EDPImprovement/n, actions))
	}
	return Report{
		ID:    "ablation",
		Title: "Adaptive-controller feature ablation",
		Lines: lines,
		Notes: []string{
			"no-deviation-window should raise action counts (lost noise rejection)",
			"equal-delays violates Remark 3 (Tm0 should be 2-8x Tl0)",
		},
	}, nil
}

// TransitionStyles compares the XScale-style execute-through DVFS model
// against a Transmeta-style idle-through model (Section 3's two DVFS
// families). For the Transmeta style, the paper prescribes larger
// steps and longer delays to amortize the costlier switches; the
// variant scales both by 8x.
func TransitionStyles(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{fmt.Sprintf("%-26s %12s %12s %12s", "model", "energy save", "perf degr.", "EDP impr.")}

	type variant struct {
		name   string
		trans  dvfs.TransitionModel
		mutate func(*control.Config)
	}
	variants := []variant{
		{name: "xscale (paper)", trans: dvfs.DefaultTransitions()},
		{name: "transmeta, paper knobs", trans: dvfs.TransmetaTransitions()},
		{name: "transmeta, coarse knobs", trans: dvfs.TransmetaTransitions(),
			mutate: func(c *control.Config) {
				c.StepMHz *= 8
				c.TM0 *= 8
				c.TL0 *= 8
				c.SwitchTime *= 8
			}},
	}
	for _, v := range variants {
		machine := opt.machine()
		machine.Transitions = v.trans
		sub := opt
		sub.Machine = &machine
		sub.MutateAdaptive = v.mutate
		var sum power.Comparison
		for _, b := range sub.Benchmarks {
			base, err := RunOne(b, SchemeNone, sub)
			if err != nil {
				return Report{}, err
			}
			run, err := RunOne(b, SchemeAdaptive, sub)
			if err != nil {
				return Report{}, err
			}
			c := power.Compare(base.Metrics, run.Metrics)
			sum.EnergySaving += c.EnergySaving
			sum.PerfDegradation += c.PerfDegradation
			sum.EDPImprovement += c.EDPImprovement
		}
		n := float64(len(sub.Benchmarks))
		lines = append(lines, fmt.Sprintf("%-26s %11.2f%% %11.2f%% %11.2f%%",
			v.name, 100*sum.EnergySaving/n, 100*sum.PerfDegradation/n, 100*sum.EDPImprovement/n))
	}
	return Report{
		ID:    "transitions",
		Title: "XScale-style vs Transmeta-style DVFS transitions (adaptive scheme)",
		Lines: lines,
		Notes: []string{
			"Section 3: Transmeta-style switching should use larger steps and delays; fine-grained knobs pay idle time on every step",
		},
	}, nil
}
