package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
)

// The artifact registry: one stable catalog of renderable experiment
// outputs shared by cmd/experiments' batch mode, the mcdserve HTTP
// service, and the public API. Rendering here is byte-identical to the
// CLI's -out files — txt is Report.String(), json is the two-space
// MarshalIndent of the Report, svg is the figure's SVG — so an
// artifact fetched over HTTP diffs clean against one written by a
// batch run from the same options (the CI parity gate relies on it).

// ArtifactFormat selects an artifact encoding.
type ArtifactFormat string

// The supported encodings.
const (
	FormatText ArtifactFormat = "txt"
	FormatJSON ArtifactFormat = "json"
	FormatSVG  ArtifactFormat = "svg"
)

// ContentType returns the HTTP content type for the format (empty for
// unknown formats).
func (f ArtifactFormat) ContentType() string {
	switch f {
	case FormatText:
		return "text/plain; charset=utf-8"
	case FormatJSON:
		return "application/json"
	case FormatSVG:
		return "image/svg+xml"
	}
	return ""
}

// ArtifactInfo describes one renderable artifact.
type ArtifactInfo struct {
	// ID is the stable identifier (the CLI's -only vocabulary).
	ID string
	// Title is a one-line description.
	Title string
	// SVG reports whether the artifact also renders as a figure.
	SVG bool
}

// artifactCatalog lists every registry artifact in display order. The
// IDs match cmd/experiments -only; the sweep-style studies (ablation,
// qref, seeds, ...) stay CLI-only for now — they take bespoke
// benchmark lists rather than Options.
var artifactCatalog = []ArtifactInfo{
	{ID: "table1", Title: "Summary of all simulation parameters"},
	{ID: "table2", Title: "Benchmark classification (fast/slow-varying)"},
	{ID: "fig7", Title: "Adaptive frequency settings, FP domain, epic_decode", SVG: true},
	{ID: "fig8", Title: "INT-queue variance spectrum, epic_decode", SVG: true},
	{ID: "fig9", Title: "Energy savings vs no-DVFS baseline", SVG: true},
	{ID: "fig10", Title: "Performance degradation vs no-DVFS baseline", SVG: true},
	{ID: "fig11", Title: "EDP improvement, fast-varying group", SVG: true},
	{ID: "summary", Title: "Headline means vs the paper's reported results"},
	{ID: "robustness", Title: "EDP degradation vs control-loop fault intensity"},
	{ID: "capsweep", Title: "Chip EDP and per-core throughput vs power budget, per governor", SVG: true},
	{ID: "captransient", Title: "Chip power-budget reallocation transient (integral-gain governor)"},
}

// Artifacts returns the artifact catalog in stable display order.
func Artifacts() []ArtifactInfo {
	out := make([]ArtifactInfo, len(artifactCatalog))
	copy(out, artifactCatalog)
	return out
}

// artifactIDList renders the catalog IDs for error messages.
func artifactIDList() string {
	ids := make([]string, len(artifactCatalog))
	for i, a := range artifactCatalog {
		ids[i] = a.ID
	}
	return strings.Join(ids, ", ")
}

// lookupArtifact resolves id against the catalog; unknown IDs fail as
// ErrInvalidSpec listing what is available.
func lookupArtifact(id string) (ArtifactInfo, error) {
	for _, a := range artifactCatalog {
		if a.ID == id {
			return a, nil
		}
	}
	return ArtifactInfo{}, invalidSpec(fmt.Errorf("experiment: unknown artifact %q (available: %s)", id, artifactIDList()))
}

// robustnessDefaults mirrors cmd/experiments' -faults selection: the
// benchmarks the sweep runs when the caller does not narrow them.
var robustnessBenchmarks = []string{"adpcm_encode", "gsm_decode", "gzip", "swim"}

// RenderArtifactContext renders one catalog artifact in the requested
// format, returning the encoded bytes and their content type. ctx
// cancels the underlying simulations; every failure wraps a taxonomy
// sentinel (unknown artifact or format → ErrInvalidSpec, deadline →
// ErrRunTimeout, cancellation → ErrCancelled, simulator panic →
// ErrRunPanicked). The bytes are identical to what cmd/experiments
// -out writes for the same options.
func RenderArtifactContext(ctx context.Context, id string, format ArtifactFormat, opt Options) ([]byte, string, error) {
	info, err := lookupArtifact(id)
	if err != nil {
		return nil, "", err
	}
	ctype := format.ContentType()
	if ctype == "" {
		return nil, "", invalidSpec(fmt.Errorf("experiment: unknown artifact format %q (available: txt, json, svg)", format))
	}
	if format == FormatSVG && !info.SVG {
		return nil, "", invalidSpec(fmt.Errorf("experiment: artifact %q has no SVG rendering", id))
	}
	opt.Context = ctx

	if format == FormatSVG {
		svg, err := renderArtifactSVG(ctx, id, opt)
		if err != nil {
			return nil, "", err
		}
		return []byte(svg), ctype, nil
	}
	rep, err := renderArtifactReport(ctx, id, opt)
	if err != nil {
		return nil, "", err
	}
	if format == FormatJSON {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, "", invalidSpec(fmt.Errorf("experiment: encoding %s: %v", id, err))
		}
		return blob, ctype, nil
	}
	return []byte(rep.String()), ctype, nil
}

// renderArtifactReport produces the textual Report for id. opt.Context
// is already set, so the non-context entry points cancel correctly.
func renderArtifactReport(ctx context.Context, id string, opt Options) (Report, error) {
	switch id {
	case "table1":
		return Table1(opt), nil
	case "table2":
		rep, _, err := Table2(opt)
		return rep, err
	case "fig7":
		return Figure7(opt)
	case "fig8":
		return Figure8(opt)
	case "summary":
		_, classes, err := Table2(opt)
		if err != nil {
			return Report{}, err
		}
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return Report{}, err
		}
		return Summary(m, classes), nil
	case "fig11":
		_, classes, err := Table2(opt)
		if err != nil {
			return Report{}, err
		}
		fast := FastGroup(classes)
		if len(fast) == 0 {
			return Report{}, invalidSpec(fmt.Errorf("experiment: classifier found no fast benchmarks"))
		}
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return Report{}, err
		}
		return m.Figure11(fast), nil
	case "fig9", "fig10":
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return Report{}, err
		}
		if id == "fig9" {
			return m.Figure9(), nil
		}
		return m.Figure10(), nil
	case "robustness":
		benchmarks := opt.Benchmarks
		if benchmarks == nil {
			benchmarks = robustnessBenchmarks
		}
		return FaultSweepContext(ctx, opt, benchmarks, nil)
	case "capsweep":
		return CapSweepContext(ctx, opt)
	case "captransient":
		return CapTransientContext(ctx, opt)
	}
	return Report{}, invalidSpec(fmt.Errorf("experiment: artifact %q has no report rendering", id))
}

// renderArtifactSVG produces the SVG figure for id.
func renderArtifactSVG(ctx context.Context, id string, opt Options) (string, error) {
	switch id {
	case "fig7":
		return Figure7SVG(opt)
	case "fig8":
		return Figure8SVG(opt)
	case "fig11":
		_, classes, err := Table2(opt)
		if err != nil {
			return "", err
		}
		fast := FastGroup(classes)
		if len(fast) == 0 {
			return "", invalidSpec(fmt.Errorf("experiment: classifier found no fast benchmarks"))
		}
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return "", err
		}
		return m.Figure11SVG(fast)
	case "fig9", "fig10":
		m, err := RunMatrixContext(ctx, opt)
		if err != nil {
			return "", err
		}
		if id == "fig9" {
			return m.Figure9SVG()
		}
		return m.Figure10SVG()
	case "capsweep":
		return CapSweepSVG(ctx, opt)
	}
	return "", invalidSpec(fmt.Errorf("experiment: artifact %q has no SVG rendering", id))
}
