package experiment

import (
	"fmt"
	"io"
)

// FigureStream renders a benchmark × scheme figure incrementally: the
// banner and column header go out at construction, each complete row
// as RunMatrix's RowFlush delivers it, and the AVERAGE line plus notes
// at Finish. Because it shares every formatting helper with
// Matrix.figure and RowFlush delivers rows in benchmark order, the
// streamed bytes are identical to rendering the finished matrix — the
// differential test pins that. The interrupted path needs nothing
// special: RunMatrix drains the row frontier even on cancellation, so
// Finish on the partial matrix completes the same file the old
// SIGINT-only renderer produced.
//
// A FigureStream is not safe for concurrent use on its own; RunMatrix
// serializes RowFlush calls, and Finish must come after RunMatrix
// returns. Write errors stick: the first one stops output and comes
// back from Finish.
type FigureStream struct {
	w       io.Writer
	sel     comparisonSelector
	schemes []Scheme
	skipped int
	err     error
}

// figureStreamSpecs maps the streamable figure IDs to their titles and
// metric selectors, mirroring Matrix.Figure9/Figure10. (fig11 is not
// streamable: it renders a benchmark subset with summary notes that
// need the finished matrix.)
var figureStreamSpecs = map[string]struct {
	title string
	sel   comparisonSelector
}{
	"fig9": {"Energy savings vs no-DVFS baseline",
		func(sav, perf, edp float64) float64 { return sav }},
	"fig10": {"Performance degradation vs no-DVFS baseline",
		func(sav, perf, edp float64) float64 { return perf }},
}

// NewFigureStream starts streaming figure id (fig9 or fig10) for a
// sweep configured by opt, writing the banner and header immediately.
// Wire the returned stream's Row into Options.RowFlush and call Finish
// with the matrix RunMatrix returns.
func NewFigureStream(w io.Writer, id string, opt Options) (*FigureStream, error) {
	spec, ok := figureStreamSpecs[id]
	if !ok {
		return nil, invalidSpec(fmt.Errorf("experiment: figure %q is not streamable", id))
	}
	schemes, err := matrixSchemes(opt)
	if err != nil {
		return nil, err
	}
	f := &FigureStream{w: w, sel: spec.sel, schemes: schemes}
	f.line("==== %s: %s ====", id, spec.title)
	f.line("%s", figureHeader(schemes))
	return f, nil
}

// Row consumes one RowEvent: a complete row is rendered, an incomplete
// one counted for the omitted-rows note.
func (f *FigureStream) Row(ev RowEvent) {
	if !rowComplete(f.schemes, ev.Results) {
		f.skipped++
		return
	}
	f.line("%s", figureRow(ev.Bench, f.schemes, ev.Results, f.sel))
}

// Finish writes the AVERAGE row and trailing notes from the finished
// (possibly partial) matrix and returns the first write error.
func (f *FigureStream) Finish(m *Matrix) error {
	f.line("%s", m.figureAverage(f.schemes, f.sel))
	if n := figureSkippedNote(f.skipped); n != "" {
		f.line("note: %s", n)
	}
	f.line("")
	return f.err
}

// line writes one formatted line, latching the first error.
func (f *FigureStream) line(format string, args ...any) {
	if f.err != nil {
		return
	}
	_, f.err = fmt.Fprintf(f.w, format+"\n", args...)
}
