package experiment

import (
	"fmt"
	"sort"
	"strings"

	"mcddvfs/internal/baselines"
	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
	"mcddvfs/internal/spectrum"
	"mcddvfs/internal/stability"
	"mcddvfs/internal/trace"
)

// Table1 renders the simulation-parameter summary (paper Table 1) from
// the live machine configuration, so the report can never drift from
// the code.
func Table1(opt Options) Report {
	cfg := opt.machine()
	r := cfg.Range
	ctl := control.DefaultConfig(isa.DomainInt)
	lines := []string{
		fmt.Sprintf("%-38s %s", "Domain frequency range", fmt.Sprintf("%g MHz - %g MHz", r.MinMHz, r.MaxMHz)),
		fmt.Sprintf("%-38s %s", "Domain voltage range", fmt.Sprintf("%.2f V - %.2f V", r.MinV, r.MaxV)),
		fmt.Sprintf("%-38s %s", "Frequency/voltage change speed", fmt.Sprintf("%v/MHz, %v per %.2f mV step", cfg.Transitions.FreqSlew, cfg.Transitions.VoltSlewPerStep, r.StepV()*1000)),
		fmt.Sprintf("%-38s %g MHz", "Signal sampling rate", cfg.SamplingMHz),
		fmt.Sprintf("%-38s Tl0 = %g, Tm0 = %g (sampling periods)", "Basic time delays", ctl.TL0, ctl.TM0),
		fmt.Sprintf("%-38s %.2f MHz / %.2f mV (%d steps)", "Step size (f/V)", r.StepMHz(), r.StepV()*1000, r.Steps),
		fmt.Sprintf("%-38s %d INT, %d FP, %d LS", "Reference queue point", control.DefaultConfig(isa.DomainInt).QRef, control.DefaultConfig(isa.DomainFP).QRef, control.DefaultConfig(isa.DomainLS).QRef),
		fmt.Sprintf("%-38s ±%d level, ±%d slope", "Deviation window (DW)", ctl.DWLevel, ctl.DWSlope),
		fmt.Sprintf("%-38s ±%g ps, normally distributed", "Domain clock jitter", cfg.JitterPS),
		fmt.Sprintf("%-38s %g ps", "Inter-domain synchronization window", cfg.SyncWindowPS),
		fmt.Sprintf("%-38s %d/%d/%d", "Decode/Issue/Retire width", cfg.DecodeWidth, cfg.IssueWidth, cfg.RetireWidth),
		fmt.Sprintf("%-38s %d KB %d-way / %d KB %d-way", "L1 data / instruction cache", cfg.Cache.L1DSize>>10, cfg.Cache.L1DWays, cfg.Cache.L1ISize>>10, cfg.Cache.L1IWays),
		fmt.Sprintf("%-38s %d MB, %d-way", "L2 unified cache", cfg.Cache.L2Size>>20, cfg.Cache.L2Ways),
		fmt.Sprintf("%-38s %d cycles L1, %d cycles L2", "Cache access time", cfg.Cache.L1Latency, cfg.Cache.L2Latency),
		fmt.Sprintf("%-38s %g ns first chunk", "Memory access latency", cfg.Cache.MemFirstChunkNS),
		fmt.Sprintf("%-38s %d + %d mult/div", "Integer ALUs", cfg.IntALUs, cfg.IntMultDiv),
		fmt.Sprintf("%-38s %d + %d mult/div/sqrt", "Floating-point ALUs", cfg.FPALUs, cfg.FPMultDiv),
		fmt.Sprintf("%-38s %d INT, %d FP, %d LS", "Issue queue size", cfg.IntQSize, cfg.FPQSize, cfg.LSQueue),
		fmt.Sprintf("%-38s %d", "Reorder buffer size", cfg.ROBSize),
		fmt.Sprintf("%-38s %d", "LS retire buffer size", cfg.LSQSize),
		fmt.Sprintf("%-38s %d INT, %d FP", "Physical register file size", cfg.PhysInt, cfg.PhysFP),
	}
	return Report{
		ID:    "table1",
		Title: "Summary of all simulation parameters",
		Lines: lines,
		Notes: []string{"matches paper Table 1; Tl0 follows the running text (8) over the garbled table entry"},
	}
}

// BenchClass is one benchmark's Table-2 row.
type BenchClass struct {
	Name       string
	Suite      string
	IPC        float64
	ShortShare float64 // max over the three queues
	Fast       bool
}

// ClassifyBenchmarks runs the no-DVFS baseline for each benchmark and
// applies the Section-5.2 spectral classifier to its queue-occupancy
// series (the maximum short-wavelength share across the three queues
// decides, since fast variation in any domain defeats a fixed-interval
// controller there).
func ClassifyBenchmarks(opt Options) ([]BenchClass, error) {
	opt = opt.withDefaults()
	out := make([]BenchClass, len(opt.Benchmarks))
	err := firstError(forEachParallel(opt.ctx(), len(opt.Benchmarks), func(i int) error {
		b := opt.Benchmarks[i]
		res, err := RunOne(b, SchemeNone, opt)
		if err != nil {
			return err
		}
		prof, err := trace.ByName(b)
		if err != nil {
			return err
		}
		bc := BenchClass{Name: b, Suite: prof.Suite, IPC: res.IPC}
		for _, dom := range []string{mcd.NameInt, mcd.NameFP, mcd.NameLS} {
			samples := res.QueueSamples[dom]
			if len(samples) < 64 {
				continue
			}
			cl, err := spectrum.Classify(samples, spectrum.DefaultIntervalSamples, spectrum.DefaultFastShareThreshold)
			if err != nil {
				return err
			}
			// Queues that barely move carry no exploitable signal.
			if cl.TotalVariance < 0.5 {
				continue
			}
			if cl.ShortShare > bc.ShortShare {
				bc.ShortShare = cl.ShortShare
			}
		}
		bc.Fast = bc.ShortShare > spectrum.DefaultFastShareThreshold
		out[i] = bc
		return nil
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FastGroup returns the benchmarks the classifier marks fast-varying.
func FastGroup(classes []BenchClass) []string {
	var out []string
	for _, c := range classes {
		if c.Fast {
			out = append(out, c.Name)
		}
	}
	return out
}

// Table2 renders the benchmark suite with the workload-variability
// classification (paper Table 2, reconstructed; the classification
// methodology is Section 5.2's).
func Table2(opt Options) (Report, []BenchClass, error) {
	classes, err := ClassifyBenchmarks(opt)
	if err != nil {
		return Report{}, nil, err
	}
	lines := []string{fmt.Sprintf("%-14s %-11s %6s %12s %s", "benchmark", "suite", "IPC", "short-share", "class")}
	for _, c := range classes {
		class := "slow"
		if c.Fast {
			class = "FAST"
		}
		lines = append(lines, fmt.Sprintf("%-14s %-11s %6.2f %12.3f %s", c.Name, c.Suite, c.IPC, c.ShortShare, class))
	}
	return Report{
		ID:    "table2",
		Title: "Benchmark suite and workload-variability classification",
		Lines: lines,
		Notes: []string{
			"benchmark list reconstructed: 6 MediaBench + 6 SPECint + 5 SPECfp as in [4,9,23]",
			"short-share = occupancy variance at wavelengths under the fixed interval (2500 sampling periods)",
		},
	}, classes, nil
}

// Figure7 renders the FP-domain frequency trajectory of epic_decode
// under the adaptive controller.
func Figure7(opt Options) (Report, error) {
	opt = opt.withDefaults()
	res, err := RunOne("epic_decode", SchemeAdaptive, opt)
	if err != nil {
		return Report{}, err
	}
	tr := res.FreqTrace[mcd.NameFP]
	lines := []string{fmt.Sprintf("%12s %14s", "insts", "rel. freq")}
	step := len(tr)/60 + 1
	for i := 0; i < len(tr); i += step {
		rel := tr[i].MHz / opt.machine().Range.MaxMHz
		lines = append(lines, fmt.Sprintf("%12d %14.3f %s", tr[i].Insts, rel, bar(rel, 40)))
	}
	return Report{
		ID:    "fig7",
		Title: "Adaptive frequency settings, FP domain, epic_decode",
		Lines: lines,
		Notes: []string{
			"paper narrative: quick drop to f_min; modest recovery near 28% of the run; empty again; dramatic rise to f_max near 82%",
		},
	}, nil
}

// Figure8 renders the variance spectrum of the INT queue occupancy for
// epic_decode (multitaper estimate, variance density per wavelength).
func Figure8(opt Options) (Report, error) {
	opt = opt.withDefaults()
	res, err := RunOne("epic_decode", SchemeNone, opt)
	if err != nil {
		return Report{}, err
	}
	samples := res.QueueSamples[mcd.NameInt]
	sp, err := spectrum.Multitaper(samples, 5)
	if err != nil {
		return Report{}, err
	}
	// Aggregate the spectrum into log-spaced wavelength buckets.
	edges := []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}
	lines := []string{fmt.Sprintf("%22s %14s", "wavelength (samples)", "variance")}
	maxV := 0.0
	vars := make([]float64, len(edges)-1)
	for i := 0; i+1 < len(edges); i++ {
		vars[i] = sp.BandVariance(edges[i], edges[i+1])
		if vars[i] > maxV {
			maxV = vars[i]
		}
	}
	for i := 0; i+1 < len(edges); i++ {
		rel := 0.0
		if maxV > 0 {
			rel = vars[i] / maxV
		}
		marker := " "
		if edges[i+1] <= spectrum.DefaultIntervalSamples {
			marker = "*" // inside the fast-variation region (dotted line)
		}
		lines = append(lines, fmt.Sprintf("%9.0f - %-10.0f %14.4g %s %s", edges[i], edges[i+1], vars[i], marker, bar(rel, 40)))
	}
	share := sp.ShortWavelengthShare(spectrum.DefaultIntervalSamples)
	lines = append(lines, fmt.Sprintf("short-wavelength share (< %d samples): %.3f", spectrum.DefaultIntervalSamples, share))
	return Report{
		ID:    "fig8",
		Title: "Variance spectrum, INT queue occupancy, epic_decode",
		Lines: lines,
		Notes: []string{"* marks wavelengths inside the fast-variation region (paper's dotted line)"},
	}, nil
}

// Figure9 renders per-benchmark energy savings for the three schemes.
func (m *Matrix) Figure9() Report {
	return m.figure("fig9", "Energy savings vs no-DVFS baseline",
		func(sav, perf, edp float64) float64 { return sav })
}

// Figure10 renders per-benchmark performance degradation.
func (m *Matrix) Figure10() Report {
	return m.figure("fig10", "Performance degradation vs no-DVFS baseline",
		func(sav, perf, edp float64) float64 { return perf })
}

// Figure11 renders the EDP improvement on the fast-variation group,
// where the paper reports the adaptive scheme's decisive win.
func (m *Matrix) Figure11(fastGroup []string) Report {
	sub := &Matrix{Options: m.Options, Benchmarks: fastGroup, Schemes: m.Schemes, Results: m.Results}
	rep := sub.figure("fig11", "Energy-delay-product improvement, fast-variation group",
		func(sav, perf, edp float64) float64 { return edp })
	ad := sub.MeanComparison(SchemeAdaptive, nil).EDPImprovement
	pid := sub.MeanComparison(SchemePID, nil).EDPImprovement
	att := sub.MeanComparison(SchemeAttackDecay, nil).EDPImprovement
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("adaptive %.2f%% vs pid %.2f%% vs attack/decay %.2f%% mean EDP improvement", 100*ad, 100*pid, 100*att),
		"paper (reconstructed): adaptive ≈8%% better than PID, ≈3x better than attack/decay on this group")
	return rep
}

// comparisonSelector picks one of the three metrics for a figure.
type comparisonSelector func(sav, perf, edp float64) float64

func (m *Matrix) figure(id, title string, sel comparisonSelector) Report {
	schemes := m.schemes()
	lines := []string{figureHeader(schemes)}
	skipped := 0
	for _, b := range m.Benchmarks {
		if !rowComplete(schemes, m.Results[b]) {
			skipped++
			continue
		}
		lines = append(lines, figureRow(b, schemes, m.Results[b], sel))
	}
	lines = append(lines, m.figureAverage(schemes, sel))
	rep := Report{ID: id, Title: title, Lines: lines}
	if n := figureSkippedNote(skipped); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	return rep
}

// The helpers below are shared between the batch renderer above and
// the incremental FigureStream (stream.go), which is what keeps a
// row-by-row render byte-identical to an end-of-sweep one.

// figureHeader renders a figure's column header line.
func figureHeader(schemes []Scheme) string {
	header := fmt.Sprintf("%-14s", "benchmark")
	for _, s := range schemes {
		header += fmt.Sprintf(" %12s", s)
	}
	return header
}

// rowComplete reports whether a row snapshot holds the baseline and
// every scheme column (the per-row form of Matrix.Complete).
func rowComplete(schemes []Scheme, row map[Scheme]*mcd.Result) bool {
	if row[SchemeNone] == nil {
		return false
	}
	for _, s := range schemes {
		if row[s] == nil {
			return false
		}
	}
	return true
}

// figureRow renders one complete benchmark row.
func figureRow(bench string, schemes []Scheme, row map[Scheme]*mcd.Result, sel comparisonSelector) string {
	base := row[SchemeNone]
	line := fmt.Sprintf("%-14s", bench)
	for _, s := range schemes {
		c := power.Compare(base.Metrics, row[s].Metrics)
		line += fmt.Sprintf(" %11.2f%%", 100*sel(c.EnergySaving, c.PerfDegradation, c.EDPImprovement))
	}
	return line
}

// figureAverage renders the AVERAGE row.
func (m *Matrix) figureAverage(schemes []Scheme, sel comparisonSelector) string {
	avg := fmt.Sprintf("%-14s", "AVERAGE")
	for _, s := range schemes {
		c := m.MeanComparison(s, nil)
		avg += fmt.Sprintf(" %11.2f%%", 100*sel(c.EnergySaving, c.PerfDegradation, c.EDPImprovement))
	}
	return avg
}

// figureSkippedNote renders the omitted-rows note ("" when none).
func figureSkippedNote(skipped int) string {
	if skipped == 0 {
		return ""
	}
	return fmt.Sprintf("%d benchmark(s) omitted: cells failed (see matrix failure list)", skipped)
}

// Table3Report renders the PID-interval sweep against the adaptive
// scheme on the fast-variation group (the paper's closing comparison
// "to [23] with different and shorter interval lengths").
func Table3(opt Options, fastGroup []string) (Report, error) {
	opt = opt.withDefaults()
	if len(fastGroup) == 0 {
		return Report{}, invalidSpec(fmt.Errorf("experiment: empty fast group"))
	}
	sort.Strings(fastGroup)
	sub := opt
	sub.Benchmarks = fastGroup

	lines := []string{fmt.Sprintf("%-22s %12s %12s %12s", "scheme", "energy save", "perf degr.", "EDP impr.")}
	addRow := func(label string, mean powerComparison) {
		lines = append(lines, fmt.Sprintf("%-22s %11.2f%% %11.2f%% %11.2f%%",
			label, 100*mean.EnergySaving, 100*mean.PerfDegradation, 100*mean.EDPImprovement))
	}

	// Adaptive reference.
	adMean, err := meanOver(sub, SchemeAdaptive, 0)
	if err != nil {
		return Report{}, err
	}
	addRow("adaptive", adMean)

	for _, ticks := range []int{312, 625, 1250, 2500, 6250} {
		mean, err := meanOver(sub, SchemePID, ticks)
		if err != nil {
			return Report{}, err
		}
		us := float64(ticks) * 4.0 / 1000.0
		addRow(fmt.Sprintf("pid (interval %.2gus)", us), mean)
	}
	return Report{
		ID:    "table3",
		Title: "Adaptive vs PID at shorter interval lengths (fast-variation group)",
		Lines: lines,
		Notes: []string{"fast group: " + strings.Join(fastGroup, ", ")},
	}, nil
}

type powerComparison = power.Comparison

// meanOver runs a scheme over the option's benchmarks (plus baseline)
// and averages the comparison. Benchmark runs execute in parallel.
func meanOver(opt Options, scheme Scheme, pidTicks int) (powerComparison, error) {
	opt = opt.withDefaults()
	opt.PIDIntervalTicks = pidTicks
	comps := make([]powerComparison, len(opt.Benchmarks))
	err := firstError(forEachParallel(opt.ctx(), len(opt.Benchmarks), func(i int) error {
		b := opt.Benchmarks[i]
		base, err := RunOne(b, SchemeNone, opt)
		if err != nil {
			return err
		}
		run, err := RunOne(b, scheme, opt)
		if err != nil {
			return err
		}
		comps[i] = power.Compare(base.Metrics, run.Metrics)
		return nil
	}))
	if err != nil {
		return powerComparison{}, err
	}
	var sum powerComparison
	for _, c := range comps {
		sum = addComparison(sum, c)
	}
	n := float64(len(opt.Benchmarks))
	sum.EnergySaving /= n
	sum.PerfDegradation /= n
	sum.EDPImprovement /= n
	return sum, nil
}

// Table4 renders the hardware-cost comparison of Section 3.1.
func Table4() Report {
	budgets := []control.HardwareBudget{
		control.AdaptiveHardware(),
		baselines.AttackDecayHardware(),
		baselines.PIDHardware(),
	}
	lines := []string{fmt.Sprintf("%-14s %10s %s", "scheme", "gates", "notes")}
	notes := map[string]string{
		"adaptive":     "adders/comparators/counters + 5-state FSMs only (Figure 5)",
		"attack-decay": "interval statistics + one gain multiply per interval",
		"pid":          "three gain multiplies + accumulator state per interval",
	}
	for _, b := range budgets {
		lines = append(lines, fmt.Sprintf("%-14s %10d %s", b.Scheme, b.Gates(), notes[b.Scheme]))
	}
	return Report{
		ID:    "table4",
		Title: "Decision-logic hardware comparison (per clock domain)",
		Lines: lines,
		Notes: []string{"Section 3.1: the adaptive scheme's logic is book-keeping scale; fixed-interval schemes need per-interval arithmetic"},
	}
}

// RemarksReport renders the Section-4 stability analysis (Remarks 1–3)
// with both the analytic quantities and an RK4 validation run.
func RemarksReport() (Report, error) {
	s := stability.Default()
	var lines []string
	for _, f0 := range []float64{0.25, 0.5, 1.0} {
		r1, r2 := s.Roots(f0)
		lines = append(lines, fmt.Sprintf(
			"f0=%.2f  Km=%.5f Kl=%.5f  roots=(%.4f%+.4fi, %.4f%+.4fi)  xi=%.2f  ts=%.0f  tr=%.0f  overshoot=%.1f%%",
			f0, s.Km(f0), s.Kl(f0), real(r1), imag(r1), real(r2), imag(r2),
			s.DampingRatio(f0), s.SettlingTime(f0), s.RiseTime(f0), 100*s.Overshoot(f0)))
		if !s.Stable(f0) {
			// An unstable default system is a broken build, not a
			// caller-dispatchable failure mode.
			//lint:allow errtaxonomy internal sanity check outside the run taxonomy
			return Report{}, fmt.Errorf("experiment: default system unstable at f0=%g", f0)
		}
	}
	lo, hi := stability.DelayRatioBounds(0.5)
	lines = append(lines, fmt.Sprintf("Remark 3 delay-ratio band at Kl=0.5: Tm0/Tl0 in [%g, %g]", lo, hi))

	// RK4 validation: workload step at three delay settings.
	for _, scale := range []float64{0.5, 1, 4} {
		sys := stability.Default()
		sys.TM0 *= scale
		sys.TL0 *= scale
		tr, err := sys.StepResponse(0.5, 0.25, 0.5, 40000)
		if err != nil {
			return Report{}, err
		}
		met := sys.Analyze(tr)
		lines = append(lines, fmt.Sprintf(
			"RK4 step response, delays x%-4g: settle=%.0f periods  peakQ=%.2f  finalF=%.3f",
			scale, met.SettleTime, met.PeakQ, met.FinalF))
	}
	return Report{
		ID:    "remarks",
		Title: "Stability analysis (Section 4, Remarks 1-3)",
		Lines: lines,
		Notes: []string{
			"Remark 1: all roots in the left half-plane -> stable for any positive setting",
			"Remark 2: smaller delays settle faster (analytic ts=8/Kl and RK4 agree)",
			"Remark 3: Tm0/Tl0 of 2-8x keeps damping in [0.5,1] (small overshoot)",
		},
	}, nil
}

// bar renders a crude horizontal bar for terminal figures.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n)
}

// Summary condenses the whole evaluation into one page: the headline
// suite averages, the fast-group comparison, and the hardware costs —
// the numbers the paper's abstract cites.
func Summary(m *Matrix, classes []BenchClass) Report {
	lines := []string{
		fmt.Sprintf("benchmarks: %d (%d classified fast-varying)", len(m.Benchmarks), len(FastGroup(classes))),
		"",
		fmt.Sprintf("%-14s %12s %12s %12s", "suite average", "energy save", "perf degr.", "EDP impr."),
	}
	for _, s := range m.schemes() {
		c := m.MeanComparison(s, nil)
		lines = append(lines, fmt.Sprintf("%-14s %11.2f%% %11.2f%% %11.2f%%",
			s, 100*c.EnergySaving, 100*c.PerfDegradation, 100*c.EDPImprovement))
	}
	fast := FastGroup(classes)
	if len(fast) > 0 {
		lines = append(lines, "", fmt.Sprintf("%-14s %12s %12s %12s", "fast group", "energy save", "perf degr.", "EDP impr."))
		for _, s := range m.schemes() {
			c := m.MeanComparison(s, fast)
			lines = append(lines, fmt.Sprintf("%-14s %11.2f%% %11.2f%% %11.2f%%",
				s, 100*c.EnergySaving, 100*c.PerfDegradation, 100*c.EDPImprovement))
		}
	}
	lines = append(lines, "",
		fmt.Sprintf("decision-logic gates: adaptive %d, attack/decay %d, pid %d",
			control.AdaptiveHardware().Gates(),
			baselines.AttackDecayHardware().Gates(),
			baselines.PIDHardware().Gates()))
	return Report{
		ID:    "summary",
		Title: "Headline results (the abstract's claims, measured)",
		Lines: lines,
		Notes: []string{
			"paper: ~9% energy savings at ~3% degradation on average; adaptive decisively ahead on fast-varying workloads; much cheaper decision hardware",
		},
	}
}
