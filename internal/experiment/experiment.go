// Package experiment is the harness that regenerates every table and
// figure of the paper's evaluation (Section 5), mapping each artifact
// to the simulator, controllers, and analyses in the other packages.
// See DESIGN.md for the experiment index.
package experiment

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"mcddvfs/internal/control"
	"mcddvfs/internal/faults"
	"mcddvfs/internal/governor"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
	"mcddvfs/internal/scheme"
	"mcddvfs/internal/trace"
)

// Scheme names a DVFS control scheme. Valid values are the names in
// the scheme registry (internal/scheme); the constants below cover the
// paper's evaluation, and scheme.Names() lists everything registered.
type Scheme string

// The four evaluated schemes: the no-DVFS baseline (all domains at
// f_max), the paper's adaptive controller, and the two fixed-interval
// prior-work schemes. SchemeGlobal is a registered extension (see
// internal/scheme/global.go); further extensions need no constant here
// at all — any registered name is a valid Scheme.
const (
	SchemeNone        Scheme = "none"
	SchemeAdaptive    Scheme = "adaptive"
	SchemePID         Scheme = "pid"
	SchemeAttackDecay Scheme = "attack-decay"
	SchemeGlobal      Scheme = "global"
)

// ControlledSchemes lists the paper's core comparison — the registered
// frequency-scaling schemes outside the extension set — in registry
// display order. It is the default column set of every benchmark ×
// scheme artifact, so its contents are part of the byte-stability
// contract (see scheme.Descriptor.Extension).
func ControlledSchemes() []Scheme {
	ds := scheme.Default()
	out := make([]Scheme, len(ds))
	for i, d := range ds {
		out[i] = Scheme(d.Name)
	}
	return out
}

// Options configures a harness run.
type Options struct {
	// Instructions per benchmark run. The paper simulates millions of
	// instructions; half a million is enough for every trend here and
	// keeps the full matrix under a minute.
	Instructions int64
	// Seed for trace generation and clock jitter.
	Seed int64
	// Benchmarks restricts the suite (nil = all 17).
	//lint:allow cachekey selects which runs happen, not what any run computes
	Benchmarks []string
	// Schemes restricts the benchmark × scheme sweeps (RunMatrix, the
	// fault sweep, and the figures they feed) to this subset of
	// registered frequency-controlling schemes, validated against the
	// scheme registry and normalized to registry display order (nil =
	// the paper's core comparison, ControlledSchemes). The no-DVFS
	// baseline always runs regardless — every metric is measured
	// against it. Like Benchmarks, this selects which runs happen, not
	// what any run computes, so it never enters the result-cache key.
	//lint:allow cachekey selects which runs happen, not what any run computes
	Schemes []Scheme
	// PIDIntervalTicks overrides the PID decision interval (0 = the
	// 2500-tick default) — used by the Table-3 sweep.
	PIDIntervalTicks int
	// MutateAdaptive, when non-nil, adjusts each adaptive controller's
	// configuration — used by the ablation experiments.
	MutateAdaptive func(*control.Config)
	// Machine, when non-nil, replaces the Table-1 machine config.
	Machine *mcd.Config
	// Faults, when enabled, injects deterministic sensor/actuator
	// faults into the control loop (overriding Machine.Faults). The
	// zero value leaves every run bit-identical to a fault-free one.
	Faults faults.Config
	// Timeout bounds each individual simulation; a run that exceeds it
	// fails with ErrRunTimeout (0 = unbounded).
	//lint:allow cachekey bounds the attempt, not the result a successful run computes
	Timeout time.Duration
	// Context, when non-nil, cancels in-flight and pending runs for
	// every harness entry point that does not take an explicit context
	// (the report and sweep generators). Explicit ...Context variants
	// take precedence.
	//lint:allow cachekey cancellation plumbing; a cancelled run caches nothing
	Context context.Context
	// CacheDir, when non-empty, enables the persistent on-disk result
	// cache rooted at that directory (cmd/experiments defaults it to
	// results/.cache): completed simulations survive process death and
	// a warm rerun only decodes them. Empty — the zero-config default —
	// keeps memoization in-process only, so plain Run behavior is
	// unchanged.
	//lint:allow cachekey says where results are stored, not what they are
	CacheDir string
	// CacheMaxBytes caps the on-disk cache's total size; the
	// least-recently-used entries are evicted past it (0 = the
	// diskcache default).
	//lint:allow cachekey says where results are stored, not what they are
	CacheMaxBytes int64
	// CorpusDir, when non-empty, makes RunMatrix resolve benchmark
	// streams from a recorded trace corpus (cmd/tracegen -corpus)
	// instead of generating them: members stream from disk through a
	// bounded chunk window, so peak trace memory is independent of
	// Instructions and of how many benchmarks the corpus holds. The
	// corpus must have been recorded at this Options' Seed and
	// Instructions (checked against the manifest); a member's bytes
	// are bit-identical to the stream the harness would generate, so
	// where the stream comes from never changes what a run computes.
	//lint:allow cachekey names the stream's storage, not its contents; corpus replay is bit-identical to generation (differential-tested)
	CorpusDir string
	// RowFlush, when non-nil, is called by RunMatrix as benchmark rows
	// complete, in benchmark order — the hook incremental artifact
	// rendering hangs off, so long sweeps emit figure rows as they
	// finish instead of only at the end. Purely observational: it
	// receives copies and alters no result.
	//lint:allow cachekey observation hook; receives results, never shapes them
	RowFlush func(RowEvent)
	// Cores lifts a run onto an N-core chip: every matrix cell (and
	// RunProfile call) simulates Cores copies of the machine running
	// the benchmark, coupled only by the chip governor, and reports the
	// chip aggregate. 0 or 1 is the single-core path — exactly the
	// pre-chip code, byte for byte.
	Cores int
	// PowerCapW is the chip-wide power budget in watts a capping
	// governor holds the chip to (0 = unbudgeted). Setting it without
	// naming a Governor selects "integral-gain".
	PowerCapW float64
	// Governor names the chip-level power-cap policy from the governor
	// registry ("" = "none"; governor.Names() lists everything
	// registered).
	Governor string
	// GovernorGain overrides the governor's integral gain in MHz of
	// frequency allowance per watt of budget error per epoch (0 = the
	// governor's default).
	GovernorGain float64
}

// chipMode reports whether the options ask for the N-core chip path.
// The default — one core, no budget, no (or the "none") governor —
// must take the legacy single-core path so every existing artifact
// renders byte-identically.
func (o Options) chipMode() bool {
	return o.Cores > 1 || o.PowerCapW > 0 ||
		(o.Governor != "" && o.Governor != governor.DefaultName)
}

// chipCores is the normalized core count (at least one).
func (o Options) chipCores() int {
	if o.Cores < 1 {
		return 1
	}
	return o.Cores
}

// governorName resolves the effective governor: an explicit name wins,
// a bare power budget implies the integral-gain regulator, and the
// default is "none".
func (o Options) governorName() string {
	if o.Governor != "" {
		return o.Governor
	}
	if o.PowerCapW > 0 {
		return "integral-gain"
	}
	return governor.DefaultName
}

// ctx returns the options' cancellation context.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// DefaultOptions returns the harness defaults.
func DefaultOptions() Options {
	return Options{Instructions: 500000, Seed: 1}
}

func (o Options) withDefaults() Options {
	if o.Instructions <= 0 {
		o.Instructions = 500000
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = trace.Names()
	}
	return o
}

func (o Options) machine() mcd.Config {
	var cfg mcd.Config
	if o.Machine != nil {
		cfg = *o.Machine
	} else {
		cfg = mcd.DefaultConfig()
		cfg.Seed = o.Seed
		// Bound retained occupancy samples: classification and Figure 8
		// need at most ~130K samples (524 µs at 250 MHz); controllers
		// run off live values regardless.
		cfg.SampleLimit = 1 << 17
	}
	if o.Faults.Enabled() {
		cfg.Faults = o.Faults
	}
	return cfg
}

// RunOne simulates a single bundled benchmark under one scheme.
func RunOne(bench string, scheme Scheme, opt Options) (*mcd.Result, error) {
	return RunOneContext(opt.ctx(), bench, scheme, opt)
}

// RunOneContext is RunOne with explicit cancellation.
func RunOneContext(ctx context.Context, bench string, scheme Scheme, opt Options) (*mcd.Result, error) {
	prof, err := trace.ByName(bench)
	if err != nil {
		return nil, invalidSpec(err)
	}
	return RunProfileContext(ctx, prof, scheme, opt)
}

// RunProfile simulates an arbitrary workload profile under one scheme.
// Results are memoized per process (see cache.go): two calls with
// inputs that hash to the same simulation share one run and one
// *mcd.Result, so callers must not mutate what they get back.
func RunProfile(prof trace.Profile, scheme Scheme, opt Options) (*mcd.Result, error) {
	return RunProfileContext(opt.ctx(), prof, scheme, opt)
}

// RunProfileContext is RunProfile with explicit cancellation. Every
// failure wraps one of the taxonomy sentinels: a request that could
// never run returns ErrInvalidSpec; a run that exceeds opt.Timeout
// returns ErrRunTimeout; cancellation returns ErrCancelled; a panic in
// the simulator is recovered into ErrRunPanicked.
func RunProfileContext(ctx context.Context, prof trace.Profile, scheme Scheme, opt Options) (*mcd.Result, error) {
	return runCell(ctx, prof, scheme, opt, nil)
}

// runCell is the shared run path. srcFn, when non-nil, supplies the
// workload instruction stream instead of a fresh Generator — the hook
// RunMatrix uses to fan one recorded trace out across schemes. The
// provider is only invoked if the cell actually simulates; cache hits
// (in-process or disk) never touch it.
func runCell(ctx context.Context, prof trace.Profile, scheme Scheme, opt Options, srcFn func() (trace.Source, error)) (*mcd.Result, error) {
	opt = opt.withDefaults()
	if err := validateRun(prof, scheme, opt); err != nil {
		return nil, err
	}
	if opt.chipMode() {
		// A chip-mode cell runs the benchmark on every core of an
		// N-core chip and reports the chip aggregate. The trace-bank
		// hook is single-stream and does not apply: each core
		// generates its own per-seed stream.
		cr, err := runChipCell(ctx, chipProfiles(prof, opt), scheme, opt)
		if err != nil {
			return nil, err
		}
		return cr.Aggregate(), nil
	}
	return cachedRun(ctx, prof, scheme, opt, func() (*mcd.Result, error) {
		return runProfile(ctx, prof, scheme, opt, srcFn)
	})
}

// validateRun front-loads every input check so bad specs surface as
// ErrInvalidSpec at the API boundary instead of panics (or cryptic
// construction errors) from deep inside the simulator. The scheme and
// its per-scheme options validate against the registry. opt must
// already have defaults applied.
func validateRun(prof trace.Profile, sch Scheme, opt Options) error {
	if err := prof.Validate(); err != nil {
		return invalidSpec(err)
	}
	cfg := opt.machine()
	if err := cfg.Validate(); err != nil {
		return invalidSpec(err)
	}
	desc, err := lookupScheme(sch)
	if err != nil {
		return err
	}
	if desc.Validate != nil {
		if err := desc.Validate(opt.schemeOptions()); err != nil {
			return invalidSpec(err)
		}
	}
	if _, err := validateChip(opt); err != nil {
		return err
	}
	return nil
}

// validateChip checks the chip-level options against the governor
// registry and returns the resolved governor descriptor. The defaults
// (one core, no budget, no governor) always validate.
func validateChip(opt Options) (governor.Descriptor, error) {
	if opt.Cores < 0 {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: negative core count %d", opt.Cores))
	}
	if opt.Cores > mcd.MaxChipCores {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: %d cores exceeds the %d-core chip bound", opt.Cores, mcd.MaxChipCores))
	}
	if opt.PowerCapW < 0 {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: negative power cap %v W", opt.PowerCapW))
	}
	if opt.GovernorGain < 0 {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: negative governor gain %v MHz/W", opt.GovernorGain))
	}
	name := opt.governorName()
	desc, ok := governor.Lookup(name)
	if !ok {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: unknown governor %q (registered: %s)", name, governor.NamesList()))
	}
	if opt.PowerCapW > 0 && !desc.Capping {
		return governor.Descriptor{}, invalidSpec(fmt.Errorf("experiment: governor %q does not cap power; a power budget needs one of the capping governors", name))
	}
	if desc.Validate != nil && desc.Capping {
		if err := desc.Validate(opt.governorOptions()); err != nil {
			return governor.Descriptor{}, invalidSpec(err)
		}
	}
	return desc, nil
}

// governorOptions projects the harness options onto the governor
// registry's view.
func (o Options) governorOptions() governor.Options {
	return governor.Options{
		Cores:       o.chipCores(),
		BudgetW:     o.PowerCapW,
		GainMHzPerW: o.GovernorGain,
		Range:       o.machine().Range,
	}
}

// lookupScheme resolves a scheme name against the registry; unknown
// names fail as ErrInvalidSpec listing what is registered.
func lookupScheme(sch Scheme) (scheme.Descriptor, error) {
	desc, ok := scheme.Lookup(string(sch))
	if !ok {
		return scheme.Descriptor{}, invalidSpec(fmt.Errorf("experiment: unknown scheme %q (registered: %s)", sch, scheme.NamesList()))
	}
	return desc, nil
}

// schemeOptions projects the harness options onto the registry's view:
// the knobs a scheme's Validate and Attach hooks may consult.
func (o Options) schemeOptions() scheme.Options {
	return scheme.Options{
		Machine:          o.Machine,
		MutateAdaptive:   o.MutateAdaptive,
		PIDIntervalTicks: o.PIDIntervalTicks,
	}
}

// runProfile is the uncached simulation. opt must already have
// defaults applied and been validated. srcFn, when non-nil, supplies
// the instruction stream (a shared-trace replay cursor); nil generates
// it fresh. A panic anywhere below — trace generation, construction,
// the simulator hot loop — is recovered into ErrRunPanicked so one
// bad run cannot kill a sweep.
func runProfile(ctx context.Context, prof trace.Profile, scheme Scheme, opt Options, srcFn func() (trace.Source, error)) (res *mcd.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%s/%s: %w: %v", prof.Name, scheme, ErrRunPanicked, r)
		}
	}()
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	cfg := opt.machine()
	var gen trace.Source
	if srcFn != nil {
		gen, err = srcFn()
	} else {
		gen, err = sharedReplays.source(prof, trace.StreamSeed(opt.Seed), opt.Instructions)
		if err != nil {
			err = invalidSpec(err)
		}
	}
	if err != nil {
		return nil, err
	}
	p, err := mcd.New(cfg)
	if err != nil {
		return nil, invalidSpec(err)
	}
	if err := attach(p, scheme, opt); err != nil {
		return nil, err
	}
	res, err = p.RunContext(ctx, gen)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", prof.Name, scheme, wrapRunErr(err))
	}
	res.Scheme = string(scheme)
	return res, nil
}

// AttachScheme wires the controllers for a scheme onto an existing
// processor — the hook for tools that build their own Processor (e.g.
// trace replay).
func AttachScheme(p *mcd.Processor, sch Scheme, opt Options) error {
	return attach(p, sch, opt)
}

// attach resolves the scheme against the registry and lets its
// descriptor wire one controller instance per controlled domain. The
// per-scheme wiring (reference occupancies, front-end control, the
// global engine's ports) lives with each descriptor in
// internal/scheme; this function only dispatches.
func attach(p *mcd.Processor, sch Scheme, opt Options) error {
	desc, err := lookupScheme(sch)
	if err != nil {
		return err
	}
	return desc.Attach(p, opt.schemeOptions())
}

// Matrix holds the benchmark × scheme result grid that Figures 9–11
// share, so the expensive simulations run once.
type Matrix struct {
	Options    Options
	Benchmarks []string
	// Schemes is the controlled-scheme subset this matrix swept (the
	// no-DVFS baseline is implicit and always present). Renderers use
	// it to size and order their columns; nil means the default set,
	// ControlledSchemes, so hand-built matrices stay valid.
	Schemes []Scheme
	// Results[bench][scheme]
	Results map[string]map[Scheme]*mcd.Result
	// Failures lists the cells that did not produce a result (panic,
	// timeout, cancellation, bad spec). The rest of the matrix is
	// intact; renderers skip incomplete rows.
	Failures []CellError
	// Corpus carries streamed-trace residency and self-healing stats
	// when the matrix ran from a corpus (Options.CorpusDir); nil
	// otherwise.
	Corpus *CorpusStats
}

// RunMatrix simulates every benchmark under every scheme (including
// the baseline). Cells run in parallel — every simulation is an
// independent, internally deterministic single-threaded machine, so
// the matrix contents are identical to a serial run.
//
// A failing cell no longer aborts the sweep: its structured error goes
// to Matrix.Failures and every other cell completes. The returned
// error is non-nil only when the whole sweep is compromised — the
// context was cancelled, or not a single cell succeeded.
func RunMatrix(opt Options) (*Matrix, error) {
	return RunMatrixContext(opt.ctx(), opt)
}

// RunMatrixContext is RunMatrix with explicit cancellation. On
// cancellation the partial matrix is returned alongside an
// ErrCancelled error so callers can flush what finished.
func RunMatrixContext(ctx context.Context, opt Options) (*Matrix, error) {
	// Corpus resolution comes first: an unset benchmark list or
	// instruction budget defaults from the manifest, and everything
	// else about the options must agree with what the corpus was
	// recorded at.
	var corpus *trace.Corpus
	if opt.CorpusDir != "" {
		if opt.chipMode() {
			// Corpus members are recorded at one stream seed; chip cores
			// run per-core seeds, so a corpus cannot feed them.
			return nil, invalidSpec(fmt.Errorf("experiment: chip-mode runs (Cores/PowerCapW/Governor) cannot stream from a trace corpus; drop CorpusDir or the chip options"))
		}
		var err error
		corpus, err = trace.OpenCorpus(opt.CorpusDir)
		if err != nil {
			return nil, invalidSpec(err)
		}
		if len(opt.Benchmarks) == 0 {
			opt.Benchmarks = corpus.Benchmarks()
		}
		if opt.Instructions <= 0 {
			opt.Instructions = corpus.Instructions()
		}
	}
	opt = opt.withDefaults()
	if corpus != nil {
		if corpus.Seed() != opt.Seed || corpus.Instructions() != opt.Instructions {
			return nil, invalidSpec(fmt.Errorf("experiment: corpus %s was recorded at seed %d / %d instructions, options ask for seed %d / %d",
				opt.CorpusDir, corpus.Seed(), corpus.Instructions(), opt.Seed, opt.Instructions))
		}
		for _, b := range opt.Benchmarks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("matrix: %w: %v", ErrCancelled, err)
			}
			if _, ok := corpus.Member(b); !ok {
				return nil, invalidSpec(fmt.Errorf("experiment: corpus %s has no member %q", opt.CorpusDir, b))
			}
		}
	}
	controlled, err := matrixSchemes(opt)
	if err != nil {
		return nil, err
	}
	m := &Matrix{
		Options:    opt,
		Benchmarks: opt.Benchmarks,
		Schemes:    controlled,
		Results:    make(map[string]map[Scheme]*mcd.Result, len(opt.Benchmarks)),
	}
	schemes := append([]Scheme{SchemeNone}, controlled...)
	type cell struct {
		bench  string
		scheme Scheme
	}
	var cells []cell
	for _, b := range opt.Benchmarks {
		m.Results[b] = make(map[Scheme]*mcd.Result, len(schemes))
		for _, s := range schemes {
			cells = append(cells, cell{b, s})
		}
	}

	// With trace sharing on, the benchmark × scheme grid records each
	// benchmark's instruction stream once and replays it into every
	// scheme's cell; see tracebank.go. Off (or for callers outside the
	// matrix) every cell generates its own stream as before. Corpus
	// runs always go through the bank: it is what streams the member
	// files.
	var bank *traceBank
	if corpus != nil || traceSharingEnabled() {
		bank = newTraceBank(opt, corpus, len(schemes))
	}
	lookup := trace.ByName
	if corpus != nil {
		lookup = corpus.Profile
	}

	var mu sync.Mutex
	var flush *rowFlusher
	if opt.RowFlush != nil {
		flush = newRowFlusher(opt.Benchmarks, len(schemes), opt.RowFlush, func(bench string) (map[Scheme]*mcd.Result, bool) {
			mu.Lock()
			defer mu.Unlock()
			row := make(map[Scheme]*mcd.Result, len(m.Results[bench]))
			for s, r := range m.Results[bench] {
				row[s] = r
			}
			return row, m.Complete(bench)
		})
	}
	errs := forEachParallel(ctx, len(cells), func(i int) error {
		c := cells[i]
		if flush != nil {
			// Success or failure, the cell is done for row-completion
			// purposes; cells skipped by cancellation are drained after
			// the sweep instead.
			defer flush.cellDone(c.bench)
		}
		var res *mcd.Result
		var err error
		if bank != nil {
			// Every cell releases its claim exactly once, even on error
			// or a cache hit, so recordings free as benchmarks drain.
			defer bank.release(c.bench)
			var prof trace.Profile
			prof, err = lookup(c.bench)
			if err != nil {
				return invalidSpec(err)
			}
			res, err = runCell(ctx, prof, c.scheme, opt, func() (trace.Source, error) {
				return bank.source(prof)
			})
		} else {
			res, err = RunOneContext(ctx, c.bench, c.scheme, opt)
		}
		if err != nil {
			return err
		}
		if c.scheme != SchemeNone {
			// Only baseline occupancy series feed the classifier; drop
			// the rest to keep the full matrix small. Results may be
			// shared through the cache, so strip a copy.
			cp := *res
			cp.QueueSamples = nil
			res = &cp
		}
		mu.Lock()
		m.Results[c.bench][c.scheme] = res
		mu.Unlock()
		return nil
	})
	for _, te := range errs {
		c := cells[te.index]
		m.Failures = append(m.Failures, CellError{Bench: c.bench, Scheme: c.scheme, Err: te.err})
	}
	if bank != nil {
		stats := bank.close()
		if corpus != nil {
			m.Corpus = &stats
		}
	}
	if flush != nil {
		// Emit whatever rows the ordered frontier is still holding —
		// complete rows stuck behind an earlier failed or cancelled
		// bench, and the partial rows themselves — so interruption and
		// completion share one flush path.
		flush.drain()
	}
	if err := ctx.Err(); err != nil {
		return m, fmt.Errorf("matrix: %w: %v", ErrCancelled, err)
	}
	if len(m.Failures) == len(cells) && len(cells) > 0 {
		return m, fmt.Errorf("matrix: every cell failed, first: %w", m.Failures[0].Err)
	}
	return m, nil
}

// matrixSchemes resolves Options.Schemes to the controlled-scheme
// columns a matrix sweeps: nil means the paper's core comparison,
// otherwise every requested name must be a registered
// frequency-controlling scheme. The subset is normalized to registry
// display order, deduplicated, and the implicit "none" baseline is
// dropped (it always runs).
func matrixSchemes(opt Options) ([]Scheme, error) {
	if opt.Schemes == nil {
		return ControlledSchemes(), nil
	}
	requested := make(map[string]bool, len(opt.Schemes))
	for _, s := range opt.Schemes {
		if s == SchemeNone {
			continue // the baseline is implicit in every matrix
		}
		desc, err := lookupScheme(s)
		if err != nil {
			return nil, err
		}
		if !desc.Controlled {
			return nil, invalidSpec(fmt.Errorf("experiment: scheme %q does not control frequency; matrix columns must (registered controlled schemes: %s)", s, controlledNamesList()))
		}
		requested[desc.Name] = true
	}
	if len(requested) == 0 {
		return nil, invalidSpec(fmt.Errorf("experiment: scheme subset selects no controlled scheme (registered controlled schemes: %s)", controlledNamesList()))
	}
	var out []Scheme
	for _, d := range scheme.All() {
		if requested[d.Name] {
			out = append(out, Scheme(d.Name))
		}
	}
	return out, nil
}

// controlledNamesList renders every registered frequency-controlling
// scheme (extensions included) for error messages.
func controlledNamesList() string {
	var names []string
	for _, d := range scheme.All() {
		if d.Controlled {
			names = append(names, d.Name)
		}
	}
	return strings.Join(names, ", ")
}

// schemes returns the controlled-scheme columns of this matrix,
// falling back to the default set for hand-built matrices that never
// populated the field.
func (m *Matrix) schemes() []Scheme {
	if m.Schemes != nil {
		return m.Schemes
	}
	return ControlledSchemes()
}

// Complete reports whether a benchmark has a result for the baseline
// and every controlled scheme in the matrix.
func (m *Matrix) Complete(bench string) bool {
	row := m.Results[bench]
	if row[SchemeNone] == nil {
		return false
	}
	for _, s := range m.schemes() {
		if row[s] == nil {
			return false
		}
	}
	return true
}

// Compare returns the paper's three metrics for one benchmark/scheme
// cell against the no-DVFS baseline. A cell missing due to a recorded
// failure compares as zero.
func (m *Matrix) Compare(bench string, scheme Scheme) power.Comparison {
	base := m.Results[bench][SchemeNone]
	run := m.Results[bench][scheme]
	if base == nil || run == nil {
		return power.Comparison{}
	}
	return power.Compare(base.Metrics, run.Metrics)
}

// MeanComparison averages a scheme's metrics over a benchmark subset
// (nil = all), skipping benchmarks whose cells failed.
func (m *Matrix) MeanComparison(scheme Scheme, subset []string) power.Comparison {
	if subset == nil {
		subset = m.Benchmarks
	}
	var sum power.Comparison
	n := 0.0
	for _, b := range subset {
		if m.Results[b][SchemeNone] == nil || m.Results[b][scheme] == nil {
			continue
		}
		c := m.Compare(b, scheme)
		sum.EnergySaving += c.EnergySaving
		sum.PerfDegradation += c.PerfDegradation
		sum.EDPImprovement += c.EDPImprovement
		n++
	}
	if n == 0 {
		return power.Comparison{}
	}
	sum.EnergySaving /= n
	sum.PerfDegradation /= n
	sum.EDPImprovement /= n
	return sum
}

// Report is one rendered table or figure.
type Report struct {
	ID    string
	Title string
	// Lines are preformatted body rows.
	Lines []string
	// Notes carry the paper-expected-vs-measured commentary recorded
	// in EXPERIMENTS.md.
	Notes []string
}

// WriteTo renders the report as text.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the report to a string.
func (r *Report) String() string {
	var sb strings.Builder
	r.WriteTo(&sb) //nolint:errcheck // strings.Builder cannot fail
	return sb.String()
}
