package experiment

// Extension experiments beyond the paper's evaluation: the
// per-domain-vs-global comparison that motivates MCD DVFS in the first
// place, and the q_ref sensitivity sweep the paper discusses
// qualitatively in Section 3.1.

import (
	"fmt"
	"math"

	"mcddvfs/internal/control"
	"mcddvfs/internal/mcd"
	"mcddvfs/internal/power"
	"mcddvfs/internal/queue"
	"mcddvfs/internal/stats"
)

// GlobalComparison contrasts the paper's per-domain adaptive control
// with chip-coupled scaling (SchemeGlobal) on the given benchmarks.
// Workloads with asymmetric domain demand (e.g. integer-only code with
// an idle FP unit) show the per-domain advantage most clearly.
func GlobalComparison(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{fmt.Sprintf("%-14s %28s %28s", "benchmark", "per-domain adaptive", "globally coupled")}
	lines = append(lines, fmt.Sprintf("%-14s %9s %9s %8s %9s %9s %8s", "",
		"save", "perf", "EDP", "save", "perf", "EDP"))
	var sumA, sumG power.Comparison
	for _, b := range opt.Benchmarks {
		base, err := RunOne(b, SchemeNone, opt)
		if err != nil {
			return Report{}, err
		}
		ad, err := RunOne(b, SchemeAdaptive, opt)
		if err != nil {
			return Report{}, err
		}
		gl, err := RunOne(b, SchemeGlobal, opt)
		if err != nil {
			return Report{}, err
		}
		ca := power.Compare(base.Metrics, ad.Metrics)
		cg := power.Compare(base.Metrics, gl.Metrics)
		sumA = addComparison(sumA, ca)
		sumG = addComparison(sumG, cg)
		lines = append(lines, fmt.Sprintf("%-14s %8.2f%% %8.2f%% %7.2f%% %8.2f%% %8.2f%% %7.2f%%",
			b, 100*ca.EnergySaving, 100*ca.PerfDegradation, 100*ca.EDPImprovement,
			100*cg.EnergySaving, 100*cg.PerfDegradation, 100*cg.EDPImprovement))
	}
	n := float64(len(opt.Benchmarks))
	lines = append(lines, fmt.Sprintf("%-14s %8.2f%% %8.2f%% %7.2f%% %8.2f%% %8.2f%% %7.2f%%",
		"MEAN", 100*sumA.EnergySaving/n, 100*sumA.PerfDegradation/n, 100*sumA.EDPImprovement/n,
		100*sumG.EnergySaving/n, 100*sumG.PerfDegradation/n, 100*sumG.EDPImprovement/n))
	return Report{
		ID:    "global",
		Title: "Per-domain MCD control vs globally coupled scaling (extension)",
		Lines: lines,
		Notes: []string{
			"global coupling follows the busiest domain, so idle domains cannot be slowed independently",
		},
	}, nil
}

func addComparison(a, b power.Comparison) power.Comparison {
	a.EnergySaving += b.EnergySaving
	a.PerfDegradation += b.PerfDegradation
	a.EDPImprovement += b.EDPImprovement
	return a
}

// QRefSweep quantifies Section 3.1's knob: "increase q_ref to make the
// DVFS controller more aggressive in saving energy, or decrease q_ref
// to preserve performance more." Each row adds delta to every domain's
// reference occupancy.
func QRefSweep(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{fmt.Sprintf("%-12s %12s %12s %12s", "qref shift", "energy save", "perf degr.", "EDP impr.")}
	for _, delta := range []int{-3, -2, -1, 0, 2, 4, 8} {
		sub := opt
		d := delta
		sub.MutateAdaptive = func(c *control.Config) {
			c.QRef += d
			if c.QRef < 1 {
				c.QRef = 1
			}
		}
		mean, err := meanOver(sub, SchemeAdaptive, 0)
		if err != nil {
			return Report{}, err
		}
		lines = append(lines, fmt.Sprintf("%+12d %11.2f%% %11.2f%% %11.2f%%",
			delta, 100*mean.EnergySaving, 100*mean.PerfDegradation, 100*mean.EDPImprovement))
	}
	return Report{
		ID:    "qref",
		Title: "Reference-occupancy sensitivity (Section 3.1 tradeoff, extension)",
		Lines: lines,
		Notes: []string{
			"larger q_ref tolerates fuller queues: more energy saved, more performance risk",
		},
	}, nil
}

// InterfaceStudy compares the two MCD synchronization-interface
// families the paper's Section 2 surveys — arbitration-based (always
// pay the synchronization window) and token-ring FIFOs (pay only when
// the queue is empty) — across window sizes, against an ideal
// zero-window machine.
func InterfaceStudy(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}

	runMean := func(windowPS float64, policy queue.SyncPolicy) (power.Comparison, error) {
		machine := opt.machine()
		machine.SyncWindowPS = windowPS
		machine.SyncPolicy = policy
		ideal := opt.machine()
		ideal.SyncWindowPS = 0
		var sum power.Comparison
		for _, b := range opt.Benchmarks {
			subIdeal := opt
			subIdeal.Machine = &ideal
			base, err := RunOne(b, SchemeNone, subIdeal)
			if err != nil {
				return sum, err
			}
			sub := opt
			sub.Machine = &machine
			run, err := RunOne(b, SchemeNone, sub)
			if err != nil {
				return sum, err
			}
			sum = addComparison(sum, power.Compare(base.Metrics, run.Metrics))
		}
		n := float64(len(opt.Benchmarks))
		sum.EnergySaving /= n
		sum.PerfDegradation /= n
		sum.EDPImprovement /= n
		return sum, nil
	}

	lines := []string{fmt.Sprintf("%-24s %16s", "interface", "slowdown vs ideal")}
	for _, windowPS := range []float64{300, 1000, 3000} {
		for _, policy := range []queue.SyncPolicy{queue.SyncArbitration, queue.SyncTokenRing} {
			c, err := runMean(windowPS, policy)
			if err != nil {
				return Report{}, err
			}
			lines = append(lines, fmt.Sprintf("%-12s %4.0f ps %15.2f%%",
				policy, windowPS, 100*c.PerfDegradation))
		}
	}
	return Report{
		ID:    "interfaces",
		Title: "Synchronization interface designs: arbitration vs token-ring (extension)",
		Lines: lines,
		Notes: []string{
			"token-ring FIFOs avoid the window whenever the queue is non-empty (Section 2)",
		},
	}, nil
}

// PartitionStudy compares the paper's 4-domain partition (Semeraro et
// al., Figure 1) against the 5-domain Iyer-Marculescu partition with
// the front end split into fetch and dispatch domains — the "open
// research question" of where to draw clock-domain boundaries that
// Section 2 highlights. The extra boundary buys DVFS flexibility at the
// cost of one more synchronization crossing on every instruction.
func PartitionStudy(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{
		fmt.Sprintf("%-14s | %-19s | %-19s | %-19s", "", "4-domain (paper)", "5-domain, FE fixed", "5-domain, FE DVFS"),
		fmt.Sprintf("%-14s | %8s %9s | %8s %9s | %8s %9s",
			"benchmark", "save", "perf", "save", "perf", "save", "perf"),
	}
	var sums [3]power.Comparison
	for _, b := range opt.Benchmarks {
		base, err := RunOne(b, SchemeNone, opt)
		if err != nil {
			return Report{}, err
		}
		variants := make([]power.Comparison, 3)
		for i, mut := range []func(*mcd.Config){
			nil,
			func(c *mcd.Config) { c.SplitFrontEnd = true },
			func(c *mcd.Config) { c.SplitFrontEnd = true; c.ControlFrontEnd = true },
		} {
			sub := opt
			if mut != nil {
				machine := opt.machine()
				mut(&machine)
				sub.Machine = &machine
			}
			run, err := RunOne(b, SchemeAdaptive, sub)
			if err != nil {
				return Report{}, err
			}
			variants[i] = power.Compare(base.Metrics, run.Metrics)
			sums[i] = addComparison(sums[i], variants[i])
		}
		lines = append(lines, fmt.Sprintf("%-14s | %7.2f%% %8.2f%% | %7.2f%% %8.2f%% | %7.2f%% %8.2f%%",
			b,
			100*variants[0].EnergySaving, 100*variants[0].PerfDegradation,
			100*variants[1].EnergySaving, 100*variants[1].PerfDegradation,
			100*variants[2].EnergySaving, 100*variants[2].PerfDegradation))
	}
	n := float64(len(opt.Benchmarks))
	lines = append(lines, fmt.Sprintf("%-14s | %7.2f%% %8.2f%% | %7.2f%% %8.2f%% | %7.2f%% %8.2f%%",
		"MEAN",
		100*sums[0].EnergySaving/n, 100*sums[0].PerfDegradation/n,
		100*sums[1].EnergySaving/n, 100*sums[1].PerfDegradation/n,
		100*sums[2].EnergySaving/n, 100*sums[2].PerfDegradation/n))
	return Report{
		ID:    "partitions",
		Title: "Clock partitioning: 4- vs 5-domain, with and without front-end DVFS (extension)",
		Lines: lines,
		Notes: []string{
			"savings vs the 4-domain no-DVFS baseline; all schemes adaptive",
			"5-domain pays an extra synchronization boundary; dispatch-domain DVFS is the flexibility it buys",
		},
	}, nil
}

// DelaySweep validates the Section-4 guidance in the full simulator:
// it sweeps the basic time delays T_m0 × T_l0 of the adaptive
// controller and reports the resulting energy/performance/EDP and
// action counts. Remark 2 predicts smaller delays act more but risk
// noise-chasing; Remark 3 predicts the best transient behavior for
// T_m0 ≈ 2–8 × T_l0.
func DelaySweep(opt Options, benchmarks []string) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	lines := []string{fmt.Sprintf("%6s %6s %7s %12s %12s %12s %9s",
		"Tm0", "Tl0", "ratio", "energy save", "perf degr.", "EDP impr.", "actions")}
	for _, tm0 := range []float64{12, 25, 50, 100, 200} {
		for _, tl0 := range []float64{4, 8, 25} {
			sub := opt
			tm, tl := tm0, tl0
			sub.MutateAdaptive = func(c *control.Config) {
				c.TM0 = tm
				c.TL0 = tl
			}
			var sum power.Comparison
			actions := 0
			for _, b := range sub.Benchmarks {
				base, err := RunOne(b, SchemeNone, sub)
				if err != nil {
					return Report{}, err
				}
				run, err := RunOne(b, SchemeAdaptive, sub)
				if err != nil {
					return Report{}, err
				}
				sum = addComparison(sum, power.Compare(base.Metrics, run.Metrics))
				for _, name := range []string{mcd.NameInt, mcd.NameFP, mcd.NameLS} {
					actions += run.Domains[name].Transitions
				}
			}
			n := float64(len(sub.Benchmarks))
			lines = append(lines, fmt.Sprintf("%6.0f %6.0f %7.1f %11.2f%% %11.2f%% %11.2f%% %9d",
				tm0, tl0, tm0/tl0,
				100*sum.EnergySaving/n, 100*sum.PerfDegradation/n, 100*sum.EDPImprovement/n, actions))
		}
	}
	return Report{
		ID:    "delays",
		Title: "Basic time-delay sweep: Remarks 2-3 in the full simulator (extension)",
		Lines: lines,
		Notes: []string{
			"Remark 2: smaller delays -> more actions, faster response, less noise rejection",
			"Remark 3: Tm0/Tl0 of 2-8 should sit on the EDP sweet spot",
		},
	}, nil
}

// SeedStudy quantifies measurement robustness: it repeats the
// baseline/adaptive comparison across independent seeds (different
// trace randomness and clock jitter) and reports the mean and standard
// deviation of the headline metrics. EXPERIMENTS.md cites this when it
// claims run-to-run variation is a few tenths of a percentage point.
func SeedStudy(opt Options, benchmarks []string, seeds int) (Report, error) {
	opt = opt.withDefaults()
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	if seeds < 2 {
		return Report{}, invalidSpec(fmt.Errorf("experiment: seed study needs >= 2 seeds"))
	}
	lines := []string{fmt.Sprintf("%-14s %22s %22s %22s", "benchmark",
		"energy save (mean±sd)", "perf degr. (mean±sd)", "EDP impr. (mean±sd)")}
	for _, b := range opt.Benchmarks {
		comps := make([]power.Comparison, seeds)
		err := firstError(forEachParallel(opt.ctx(), seeds, func(i int) error {
			sub := opt
			sub.Seed = opt.Seed + int64(i)*1000
			base, err := RunOne(b, SchemeNone, sub)
			if err != nil {
				return err
			}
			run, err := RunOne(b, SchemeAdaptive, sub)
			if err != nil {
				return err
			}
			comps[i] = power.Compare(base.Metrics, run.Metrics)
			return nil
		}))
		if err != nil {
			return Report{}, err
		}
		var save, perf, edp []float64
		for _, c := range comps {
			save = append(save, 100*c.EnergySaving)
			perf = append(perf, 100*c.PerfDegradation)
			edp = append(edp, 100*c.EDPImprovement)
		}
		lines = append(lines, fmt.Sprintf("%-14s %12.2f%% ± %4.2f %12.2f%% ± %4.2f %12.2f%% ± %4.2f",
			b,
			stats.Mean(save), math.Sqrt(stats.Variance(save)),
			stats.Mean(perf), math.Sqrt(stats.Variance(perf)),
			stats.Mean(edp), math.Sqrt(stats.Variance(edp))))
	}
	return Report{
		ID:    "seeds",
		Title: fmt.Sprintf("Seed sensitivity of the adaptive scheme (%d seeds)", seeds),
		Lines: lines,
		Notes: []string{"each seed draws independent trace randomness and clock jitter"},
	}, nil
}
