package experiment

import (
	"sync"

	"mcddvfs/internal/mcd"
)

// RowEvent is one completed benchmark row of a matrix sweep, delivered
// through Options.RowFlush. Events arrive in benchmark order (the
// ordered frontier: a row is delivered once it and every row before it
// have finished their cells), so a streaming renderer writes rows in
// exactly the order the batch renderer would. Results holds a snapshot
// copy of the row — failed cells are absent, and Complete mirrors
// Matrix.Complete for it.
type RowEvent struct {
	// Bench is the benchmark whose row completed.
	Bench string
	// Index is the row's position in the sweep's benchmark order.
	Index int
	// Total is the number of benchmark rows in the sweep.
	Total int
	// Complete reports whether the baseline and every controlled
	// scheme produced a result for this benchmark.
	Complete bool
	// Results is the row snapshot: scheme → result, missing cells
	// absent. Shared with the matrix — do not mutate.
	Results map[Scheme]*mcd.Result
}

// rowFlusher turns per-cell completions into ordered row deliveries.
// cellDone is called once per finished cell (success or failure);
// cells a cancelled sweep never ran are settled by drain, which
// flushes every still-unemitted row so the interrupted path reuses the
// normal one.
type rowFlusher struct {
	emit     func(RowEvent)
	snapshot func(bench string) (map[Scheme]*mcd.Result, bool)
	benches  []string
	index    map[string]int

	mu   sync.Mutex
	left []int // outstanding cells per benchmark
	next int   // first row not yet emitted
}

func newRowFlusher(benches []string, cellsPerBench int, emit func(RowEvent), snapshot func(bench string) (map[Scheme]*mcd.Result, bool)) *rowFlusher {
	f := &rowFlusher{
		emit:     emit,
		snapshot: snapshot,
		benches:  benches,
		index:    make(map[string]int, len(benches)),
		left:     make([]int, len(benches)),
	}
	for i, b := range benches {
		f.index[b] = i
		f.left[i] = cellsPerBench
	}
	return f
}

// cellDone retires one cell of a benchmark and advances the emission
// frontier past every leading benchmark with no cells outstanding.
func (f *rowFlusher) cellDone(bench string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.index[bench]
	if !ok {
		return
	}
	f.left[i]--
	for f.next < len(f.benches) && f.left[f.next] <= 0 {
		f.emitRow(f.next)
		f.next++
	}
}

// drain emits every row the frontier has not reached. Called after the
// sweep settles (all cells finished, failed, or skipped), so there is
// nothing left to wait for.
func (f *rowFlusher) drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.next < len(f.benches) {
		f.emitRow(f.next)
		f.next++
	}
}

// emitRow delivers row i. Callers hold f.mu, which also serializes the
// user's callback.
func (f *rowFlusher) emitRow(i int) {
	row, complete := f.snapshot(f.benches[i])
	f.emit(RowEvent{
		Bench:    f.benches[i],
		Index:    i,
		Total:    len(f.benches),
		Complete: complete,
		Results:  row,
	})
}
