package experiment

import (
	"context"
	"encoding/hex"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mcddvfs/internal/control"
	"mcddvfs/internal/trace"
)

// smallOpt keeps cache tests fast: two benchmarks, short runs.
func smallOpt() Options {
	return Options{Instructions: 20000, Seed: 3, Benchmarks: []string{"gzip", "swim"}}
}

// TestCacheTransparent asserts the determinism contract: a cached and
// an uncached RunMatrix produce identical metrics, cell for cell.
func TestCacheTransparent(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	opt := smallOpt()

	SetCaching(false)
	cold, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	SetCaching(true)
	ResetCache()
	warm, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, b := range opt.Benchmarks {
		for s, want := range cold.Results[b] {
			got := warm.Results[b][s]
			if got == nil {
				t.Fatalf("%s/%s missing from cached matrix", b, s)
			}
			if !reflect.DeepEqual(want.Metrics, got.Metrics) {
				t.Errorf("%s/%s metrics differ: uncached %+v cached %+v", b, s, want.Metrics, got.Metrics)
			}
			if want.IPC != got.IPC || want.L1DMissRate != got.L1DMissRate {
				t.Errorf("%s/%s rates differ", b, s)
			}
		}
	}
}

// TestCacheDedupes asserts each distinct (profile, scheme, options)
// triple is simulated once per process: a second identical matrix is
// served entirely from memory, and the shared baseline results keep
// their QueueSamples even though the matrix strips its own copies.
func TestCacheDedupes(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	opt := smallOpt()
	SetCaching(true)
	ResetCache()

	m1, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	_, misses1 := CacheStats()
	cells := uint64(len(opt.Benchmarks) * (1 + len(ControlledSchemes())))
	if misses1 != cells {
		t.Fatalf("first matrix simulated %d cells, want %d", misses1, cells)
	}

	m2, err := RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses2 := CacheStats()
	if misses2 != cells {
		t.Fatalf("second matrix re-simulated: %d misses, want still %d", misses2, cells)
	}
	if hits != cells {
		t.Fatalf("second matrix hit %d times, want %d", hits, cells)
	}
	for _, b := range opt.Benchmarks {
		if m1.Results[b][SchemeNone] != m2.Results[b][SchemeNone] {
			t.Errorf("%s baseline not shared between matrices", b)
		}
		if len(m1.Results[b][SchemeNone].QueueSamples) == 0 {
			t.Errorf("%s baseline lost its queue samples", b)
		}
		if m1.Results[b][SchemeAdaptive].QueueSamples != nil {
			t.Errorf("%s adaptive cell kept queue samples", b)
		}
	}

	// A distinct seed is a different simulation, never a hit.
	opt2 := opt
	opt2.Seed = opt.Seed + 1
	if _, err := RunOne("gzip", SchemeAdaptive, opt2); err != nil {
		t.Fatal(err)
	}
	if _, misses := CacheStats(); misses != cells+1 {
		t.Errorf("changed seed did not trigger a simulation")
	}
}

// TestCacheKeyCanonicalizesMutator asserts MutateAdaptive is keyed by
// its effect, not its identity: two distinct closures with the same
// effect share one simulation, and an effectively different closure
// does not.
func TestCacheKeyCanonicalizesMutator(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := smallOpt()

	opt.MutateAdaptive = func(c *control.Config) { c.TM0 *= 2 }
	if _, err := RunOne("gzip", SchemeAdaptive, opt); err != nil {
		t.Fatal(err)
	}
	opt.MutateAdaptive = func(c *control.Config) { c.TM0 *= 2 } // same effect, new closure
	if _, err := RunOne("gzip", SchemeAdaptive, opt); err != nil {
		t.Fatal(err)
	}
	if hits, misses := CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("same-effect mutators: %d hits / %d misses, want 1/1", hits, misses)
	}

	opt.MutateAdaptive = func(c *control.Config) { c.TM0 *= 3 }
	if _, err := RunOne("gzip", SchemeAdaptive, opt); err != nil {
		t.Fatal(err)
	}
	if _, misses := CacheStats(); misses != 2 {
		t.Errorf("different-effect mutator was served from cache")
	}
}

// TestCacheKeyGolden pins the result-cache key for the four seed
// schemes to the exact SHA-256 values the pre-registry code produced
// (gzip, Instructions 20000, Seed 3, defaults applied). These keys
// address warm on-disk cache entries, so ANY drift — field order,
// type, the scheme's representation in the key — silently invalidates
// every cache a user has built. If this test fails, the fix is to
// restore the key derivation, not to update the constants (unless
// diskcache.FormatVersion was deliberately bumped, which retires old
// entries explicitly).
func TestCacheKeyGolden(t *testing.T) {
	golden := map[Scheme]string{
		SchemeNone:        "a1b6fc3e404c1a72c3f8771a2f99491b02a8f6fbb05df6abbdd7b74b79a08d83",
		SchemeAdaptive:    "558dff26263e5f7001492502462f9eb9515f369c79a7d5c2943a0d26be5b1e68",
		SchemePID:         "71dd02a967ff412b8f5b26060a8f4dfa6542dfa56cf02e838dcbb71de17f3a7d",
		SchemeAttackDecay: "2a445b1ba516bc01748a1d07cfea21e1fcc23abc2261b5637faca300c36057d0",
	}
	prof, err := trace.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Instructions: 20000, Seed: 3}.withDefaults()
	for sch, want := range golden {
		k, err := cacheKey(prof, sch, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := hex.EncodeToString(k[:]); got != want {
			t.Errorf("%s: cache key %s, want %s — existing disk caches no longer hit", sch, got, want)
		}
	}
	// Options.Schemes must never enter the key: a cell simulated for a
	// subset matrix shares warm entries with the full sweep.
	sub := opt
	sub.Schemes = []Scheme{SchemeAdaptive}
	k1, _ := cacheKey(prof, SchemeAdaptive, opt)
	k2, _ := cacheKey(prof, SchemeAdaptive, sub)
	if k1 != k2 {
		t.Error("Options.Schemes leaked into the cache key")
	}
}

// TestCacheSingleFlight asserts concurrent identical requests run one
// simulation and share its result.
func TestCacheSingleFlight(t *testing.T) {
	defer func() { SetCaching(true); ResetCache() }()
	SetCaching(true)
	ResetCache()
	opt := smallOpt()

	const callers = 8
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := RunOne("gzip", SchemeAdaptive, opt)
			if err != nil {
				results[i] = err
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
	if hits, misses := CacheStats(); misses != 1 {
		t.Errorf("%d simulations for one key (hits %d), want 1", misses, hits)
	}
}

// TestForEachParallelErrorIndex asserts the pool collects every
// failure sorted by index, runs the healthy tasks to completion
// anyway, and that firstError names the lowest failing index.
func TestForEachParallelErrorIndex(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	errs := forEachParallel(context.Background(), 1000, func(i int) error {
		ran.Add(1)
		if i == 3 || i == 700 {
			return sentinel
		}
		return nil
	})
	if len(errs) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(errs), errs)
	}
	if errs[0].index != 3 || errs[1].index != 700 {
		t.Errorf("failure indices = %d, %d; want 3, 700", errs[0].index, errs[1].index)
	}
	for _, te := range errs {
		if !errors.Is(te.err, sentinel) {
			t.Errorf("task %d error does not wrap the task error: %v", te.index, te.err)
		}
	}
	if n := ran.Load(); n != 1000 {
		t.Errorf("pool ran %d tasks, want all 1000 despite failures", n)
	}

	err := firstError(errs)
	if err == nil {
		t.Fatal("firstError reported nil for a failed pool")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("firstError does not wrap the task error: %v", err)
	}
	if !strings.HasPrefix(err.Error(), "task 3:") {
		t.Errorf("firstError %q does not name the lowest failing task", err)
	}
}

// TestForEachParallelCompletes asserts every index runs exactly once on
// the success path.
func TestForEachParallelCompletes(t *testing.T) {
	const n = 257
	var seen [n]atomic.Int32
	if errs := forEachParallel(context.Background(), n, func(i int) error {
		seen[i].Add(1)
		return nil
	}); len(errs) != 0 {
		t.Fatal(errs[0].err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Errorf("task %d ran %d times", i, got)
		}
	}
}

// TestForEachParallelRecoversPanic asserts a panicking task is
// converted into an ErrRunPanicked failure for its own index while
// every other task still runs.
func TestForEachParallelRecoversPanic(t *testing.T) {
	var ran atomic.Int64
	errs := forEachParallel(context.Background(), 64, func(i int) error {
		ran.Add(1)
		if i == 17 {
			panic("kaboom")
		}
		return nil
	})
	if n := ran.Load(); n != 64 {
		t.Errorf("pool ran %d tasks, want all 64 despite the panic", n)
	}
	if len(errs) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(errs), errs)
	}
	if errs[0].index != 17 {
		t.Errorf("failure index = %d, want 17", errs[0].index)
	}
	if !errors.Is(errs[0].err, ErrRunPanicked) {
		t.Errorf("panic not wrapped in ErrRunPanicked: %v", errs[0].err)
	}
	if !strings.Contains(errs[0].err.Error(), "kaboom") {
		t.Errorf("panic value lost from error: %v", errs[0].err)
	}
}

// TestForEachParallelCancellation asserts a cancelled context stops
// the pool from starting new tasks and marks the unstarted ones with
// ErrCancelled.
func TestForEachParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	errs := forEachParallel(ctx, 100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if len(errs) != 100 {
		t.Fatalf("got %d failures, want every task cancelled", len(errs))
	}
	for _, te := range errs {
		if !errors.Is(te.err, ErrCancelled) {
			t.Fatalf("task %d error is not ErrCancelled: %v", te.index, te.err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("%d tasks ran under a pre-cancelled context", n)
	}
}
