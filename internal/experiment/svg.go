package experiment

import (
	"fmt"
	"math"

	"mcddvfs/internal/mcd"
	"mcddvfs/internal/plot"
	"mcddvfs/internal/spectrum"
)

// Figure7SVG renders the epic_decode FP-domain frequency trajectory as
// an SVG line chart.
func Figure7SVG(opt Options) (string, error) {
	opt = opt.withDefaults()
	res, err := RunOne("epic_decode", SchemeAdaptive, opt)
	if err != nil {
		return "", err
	}
	tr := res.FreqTrace[mcd.NameFP]
	if len(tr) < 2 {
		// Too few retired instructions to trace: a property of the
		// requested run, so it joins the invalid-spec class.
		return "", invalidSpec(fmt.Errorf("experiment: frequency trace too short (%d points)", len(tr)))
	}
	fmax := opt.machine().Range.MaxMHz
	s := plot.Series{Name: "FP domain"}
	for _, p := range tr {
		s.X = append(s.X, float64(p.Insts))
		s.Y = append(s.Y, p.MHz/fmax)
	}
	c := &plot.LineChart{
		Title:  "Figure 7 — adaptive frequency settings, FP domain, epic_decode",
		XLabel: "instructions retired",
		YLabel: "relative frequency (f/fmax)",
		YMin:   0, YMax: 1.05,
		Series: []plot.Series{s},
	}
	return c.SVG()
}

// Figure8SVG renders the INT-queue variance spectrum of epic_decode as
// an SVG bar chart over log-spaced wavelength buckets.
func Figure8SVG(opt Options) (string, error) {
	opt = opt.withDefaults()
	res, err := RunOne("epic_decode", SchemeNone, opt)
	if err != nil {
		return "", err
	}
	sp, err := spectrum.Multitaper(res.QueueSamples[mcd.NameInt], 5)
	if err != nil {
		return "", err
	}
	edges := []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}
	var labels []string
	var vals []float64
	for i := 0; i+1 < len(edges); i++ {
		labels = append(labels, fmt.Sprintf("%s-%s", wl(edges[i]), wl(edges[i+1])))
		vals = append(vals, sp.BandVariance(edges[i], edges[i+1]))
	}
	c := &plot.BarChart{
		Title:  "Figure 8 — variance spectrum, INT queue occupancy, epic_decode",
		YLabel: "variance (entries²)",
		Labels: labels,
		Groups: []plot.BarGroup{{Name: "variance", Values: vals}},
		Width:  860,
	}
	return c.SVG()
}

func wl(v float64) string {
	if v >= 1024 {
		return fmt.Sprintf("%.0fk", v/1024)
	}
	return fmt.Sprintf("%.0f", v)
}

// comparisonSVG renders one of the Figure 9–11 grouped-bar comparisons.
func (m *Matrix) comparisonSVG(title, ylabel string, benchmarks []string, sel comparisonSelector) (string, error) {
	labels := append(append([]string{}, benchmarks...), "AVERAGE")
	groups := make([]plot.BarGroup, 0, 3)
	for _, s := range m.schemes() {
		g := plot.BarGroup{Name: string(s)}
		for _, b := range benchmarks {
			c := m.Compare(b, s)
			g.Values = append(g.Values, round2(100*sel(c.EnergySaving, c.PerfDegradation, c.EDPImprovement)))
		}
		mean := m.MeanComparison(s, benchmarks)
		g.Values = append(g.Values, round2(100*sel(mean.EnergySaving, mean.PerfDegradation, mean.EDPImprovement)))
		groups = append(groups, g)
	}
	c := &plot.BarChart{
		Title:            title,
		YLabel:           ylabel,
		YSuffix:          "%",
		Labels:           labels,
		Groups:           groups,
		LabelGroupValues: "AVERAGE",
	}
	return c.SVG()
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// Figure9SVG renders the energy-savings comparison.
func (m *Matrix) Figure9SVG() (string, error) {
	return m.comparisonSVG("Figure 9 — energy savings vs no-DVFS baseline", "energy saving",
		m.Benchmarks, func(sav, perf, edp float64) float64 { return sav })
}

// Figure10SVG renders the performance-degradation comparison.
func (m *Matrix) Figure10SVG() (string, error) {
	return m.comparisonSVG("Figure 10 — performance degradation vs no-DVFS baseline", "degradation",
		m.Benchmarks, func(sav, perf, edp float64) float64 { return perf })
}

// Figure11SVG renders the fast-group EDP comparison.
func (m *Matrix) Figure11SVG(fastGroup []string) (string, error) {
	return m.comparisonSVG("Figure 11 — EDP improvement, fast-variation group", "EDP improvement",
		fastGroup, func(sav, perf, edp float64) float64 { return edp })
}
