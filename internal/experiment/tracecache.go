package experiment

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"sync"

	"mcddvfs/internal/trace"
)

// The single-run path (RunOne / RunProfile and every report built on
// them) regenerates its workload stream from the profile on each
// uncached simulation, even when the same (profile, seed, budget)
// stream was generated moments ago — e.g. a benchmark loop or a report
// that runs several schemes over one benchmark with result caching
// off. Generation is a large fraction of an uncontrolled run (RNG
// draws, branch-history map updates), so the harness keeps a small LRU
// of recorded streams and hands each run a zero-alloc replay cursor.
// A replayed stream is bit-identical to a generated one (see
// trace.RecordProfile), which keeps the cache semantics-free; the
// SetTraceSharing toggle that governs the matrix trace bank disables
// this cache too, preserving the pre-sharing behavior for A/B runs.
type replayCache struct {
	mu       sync.Mutex
	entries  map[replayKey]*list.Element // value: *replayEntry
	order    *list.List                  // front = most recently used
	bytes    int64
	maxBytes int64
}

type replayKey struct {
	// fingerprint digests the full Profile value, so two distinct
	// custom profiles sharing a name can never alias.
	fingerprint [sha256.Size]byte
	seed        int64
	insts       int64
}

type replayEntry struct {
	key replayKey
	rec *trace.Recorded
}

// replayCacheMaxBytes bounds resident recordings. A 100k-instruction
// trace is ~2.5 MB (25 B/inst), so the default holds the whole bundled
// suite at benchmark budgets with room to spare.
const replayCacheMaxBytes = 64 << 20

var sharedReplays = &replayCache{
	entries:  make(map[replayKey]*list.Element),
	order:    list.New(),
	maxBytes: replayCacheMaxBytes,
}

// key fingerprints a profile. Profiles are tiny (a handful of phases),
// so one JSON encode + digest per simulation is noise next to trace
// generation, and it is exact: any field that changes the generated
// stream changes the key.
func (c *replayCache) key(prof trace.Profile, seed, insts int64) (replayKey, bool) {
	raw, err := json.Marshal(prof)
	if err != nil {
		return replayKey{}, false
	}
	return replayKey{fingerprint: sha256.Sum256(raw), seed: seed, insts: insts}, true
}

// source returns a replay cursor over the memoized recording for
// (prof, seed, insts), recording it on first use. It falls back to a
// streaming Generator when sharing is disabled or the recording would
// not fit the cache.
func (c *replayCache) source(prof trace.Profile, seed, insts int64) (trace.Source, error) {
	if !traceSharingEnabled() || insts <= 0 || insts*25 > c.maxBytes {
		return trace.NewGenerator(prof, seed, insts)
	}
	k, ok := c.key(prof, seed, insts)
	if !ok {
		return trace.NewGenerator(prof, seed, insts)
	}

	c.mu.Lock()
	if el, hit := c.entries[k]; hit {
		c.order.MoveToFront(el)
		rec := el.Value.(*replayEntry).rec
		c.mu.Unlock()
		return rec.Replay(), nil
	}
	c.mu.Unlock()

	// Record outside the lock; a concurrent miss on the same key does
	// redundant (deterministic, identical) work rather than serializing
	// every caller behind one recording.
	rec, err := trace.RecordProfile(prof, seed, insts)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, hit := c.entries[k]; hit {
		c.order.MoveToFront(el)
		rec = el.Value.(*replayEntry).rec
	} else {
		c.entries[k] = c.order.PushFront(&replayEntry{key: k, rec: rec})
		c.bytes += rec.Bytes()
		for c.bytes > c.maxBytes && c.order.Len() > 1 {
			old := c.order.Back()
			e := old.Value.(*replayEntry)
			c.order.Remove(old)
			delete(c.entries, e.key)
			c.bytes -= e.rec.Bytes()
		}
	}
	c.mu.Unlock()
	return rec.Replay(), nil
}

// reset drops every memoized recording (test hook; ResetCache calls
// it so "cold" benchmark regimes really are cold).
func (c *replayCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[replayKey]*list.Element)
	c.order.Init()
	c.bytes = 0
}
