package queue

// Sampler records a fixed-rate occupancy time series for one queue.
// The paper's controllers sample queue occupancy at 250 MHz; the same
// series feeds the spectral analysis of Section 5.2.
type Sampler struct {
	samples []float64
	limit   int
	dropped uint64
}

// NewSampler creates a sampler that retains at most limit samples
// (0 = unlimited). When the limit is hit, further samples are counted
// but not stored, keeping long simulations bounded in memory while the
// controllers still run off live values.
func NewSampler(limit int) *Sampler {
	// Pre-size the series so steady sampling does not pay repeated
	// append regrowth copies; bounded so an unlimited sampler stays
	// cheap to construct.
	cap0 := 4096
	if limit > 0 && limit < cap0 {
		cap0 = limit
	}
	return &Sampler{limit: limit, samples: make([]float64, 0, cap0)}
}

// Record appends one occupancy observation.
func (s *Sampler) Record(occ int) {
	if s.limit > 0 && len(s.samples) >= s.limit {
		s.dropped++
		return
	}
	s.samples = append(s.samples, float64(occ))
}

// Samples returns the recorded series (not a copy; callers must not
// mutate it while the simulation is running).
func (s *Sampler) Samples() []float64 { return s.samples }

// Dropped returns how many samples were discarded due to the limit.
func (s *Sampler) Dropped() uint64 { return s.dropped }

// Len returns the number of retained samples.
func (s *Sampler) Len() int { return len(s.samples) }
