// Package queue implements the bounded inter-domain interface/issue
// queues of the MCD processor. A queue lives at a clock-domain boundary:
// the producer (front end) inserts entries that become visible to the
// consumer domain only after the synchronization window has elapsed,
// modeling the arbitration-based synchronization interface used by the
// MCD implementation the paper builds on. Occupancy is the signal every
// DVFS controller in the paper observes.
package queue

import (
	"fmt"

	"mcddvfs/internal/clock"
)

// SyncPolicy selects the inter-domain synchronization interface design
// (Section 2 of the paper surveys both families).
type SyncPolicy int

const (
	// SyncArbitration models the arbitration-based interface of
	// Sjogren & Myers used by the Semeraro et al. MCD implementation:
	// every transfer may need to wait out the synchronization window.
	SyncArbitration SyncPolicy = iota
	// SyncTokenRing models token-ring FIFOs (Chelcea & Nowick), which
	// have "no synchronization cost if the FIFO is neither full nor
	// empty": only entries written into an empty queue (a waiting
	// consumer) pay the window.
	SyncTokenRing
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncArbitration:
		return "arbitration"
	case SyncTokenRing:
		return "token-ring"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Queue is a bounded buffer of entries with synchronization-delayed
// visibility. Entries are kept in insertion (program) order; consumers
// may remove any visible entry, which is how an out-of-order issue
// window behaves. The zero Queue is not usable; call New.
//
// Storage is a fixed ring sized at construction: logical index i lives
// at physical slot (head+i)&mask, so front removal — the common case at
// every dispatch — is O(1) instead of a memmove of the whole buffer,
// and no path allocates after construction.
type Queue[T any] struct {
	name     string
	capacity int
	syncWin  clock.Time
	policy   SyncPolicy

	buf     []T
	visible []clock.Time // per-entry visibility time
	head    int
	count   int
	mask    int

	// Statistics.
	pushes    uint64
	pops      uint64
	fullStall uint64
	syncPaid  uint64
}

// New creates a queue with the given capacity and synchronization
// window, using the arbitration interface. A zero window makes entries
// visible immediately.
func New[T any](name string, capacity int, syncWin clock.Time) *Queue[T] {
	return NewWithPolicy[T](name, capacity, syncWin, SyncArbitration)
}

// NewWithPolicy creates a queue with an explicit synchronization
// interface design.
func NewWithPolicy[T any](name string, capacity int, syncWin clock.Time, policy SyncPolicy) *Queue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("queue %q: non-positive capacity %d", name, capacity))
	}
	if syncWin < 0 {
		panic(fmt.Sprintf("queue %q: negative sync window", name))
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Queue[T]{
		name:     name,
		capacity: capacity,
		syncWin:  syncWin,
		policy:   policy,
		buf:      make([]T, size),
		visible:  make([]clock.Time, size),
		mask:     size - 1,
	}
}

// Name returns the queue's label.
func (q *Queue[T]) Name() string { return q.name }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.capacity }

// Len returns the current occupancy, including entries not yet visible
// to the consumer. This is the value the occupancy sampler reads: the
// physical queue fullness.
func (q *Queue[T]) Len() int { return q.count }

// Full reports whether a Push would fail.
func (q *Queue[T]) Full() bool { return q.count >= q.capacity }

// Empty reports whether the queue holds no entries at all.
func (q *Queue[T]) Empty() bool { return q.count == 0 }

// slot maps a logical index to its physical ring slot.
func (q *Queue[T]) slot(i int) int { return (q.head + i) & q.mask }

// Push inserts v at time now. It reports false (and counts a full-queue
// stall) when the queue is full. Under the arbitration interface every
// entry becomes visible at now + the synchronization window; under the
// token-ring interface only entries written into an empty queue pay it.
func (q *Queue[T]) Push(now clock.Time, v T) bool {
	if q.Full() {
		q.fullStall++
		return false
	}
	vis := now
	if q.policy == SyncArbitration || q.count == 0 {
		vis += q.syncWin
		if q.syncWin > 0 {
			q.syncPaid++
		}
	}
	i := q.slot(q.count)
	q.buf[i] = v
	q.visible[i] = vis
	q.count++
	q.pushes++
	return true
}

// SyncPenaltiesPaid counts entries that paid the synchronization
// window.
func (q *Queue[T]) SyncPenaltiesPaid() uint64 { return q.syncPaid }

// VisibleLen returns how many entries the consumer can see at time now.
func (q *Queue[T]) VisibleLen(now clock.Time) int {
	n := 0
	for i := 0; i < q.count; i++ {
		if q.visible[q.slot(i)] <= now {
			n++
		}
	}
	return n
}

// Scan calls fn for each visible entry in insertion order until fn
// returns false. The index passed to fn is stable for the duration of
// the scan and can be passed to RemoveAt afterwards (remove in
// descending index order).
func (q *Queue[T]) Scan(now clock.Time, fn func(i int, v T) bool) {
	for i := 0; i < q.count; i++ {
		s := q.slot(i)
		if q.visible[s] > now {
			continue
		}
		if !fn(i, q.buf[s]) {
			return
		}
	}
}

// At returns the entry at index i.
func (q *Queue[T]) At(i int) T { return q.buf[q.slot(i)] }

// EntryAt returns the entry at index i and whether it is visible to the
// consumer at time now. It is the allocation-free building block for
// hot-path scans that would otherwise need a closure with Scan.
func (q *Queue[T]) EntryAt(i int, now clock.Time) (T, bool) {
	s := q.slot(i)
	if q.visible[s] > now {
		var zero T
		return zero, false
	}
	return q.buf[s], true
}

// VisibleFrom returns the time at which the entry at index i becomes
// visible to the consumer: the wake bound an event-driven consumer
// sleeps on when the entry is still inside its synchronization window.
func (q *Queue[T]) VisibleFrom(i int) clock.Time { return q.visible[q.slot(i)] }

// RemoveAt deletes the entry at index i, preserving order. It shifts
// whichever side of the ring is shorter; removing the front entry (the
// dispatch hot path) moves nothing.
func (q *Queue[T]) RemoveAt(i int) {
	var zero T
	if i <= q.count-1-i {
		// Shift the prefix [0,i) up one slot, then advance head.
		for j := i; j >= 1; j-- {
			d, s := q.slot(j), q.slot(j-1)
			q.buf[d] = q.buf[s]
			q.visible[d] = q.visible[s]
		}
		q.buf[q.head] = zero
		q.head = (q.head + 1) & q.mask
	} else {
		// Shift the suffix (i,count) down one slot.
		for j := i; j < q.count-1; j++ {
			d, s := q.slot(j), q.slot(j+1)
			q.buf[d] = q.buf[s]
			q.visible[d] = q.visible[s]
		}
		q.buf[q.slot(q.count-1)] = zero
	}
	q.count--
	q.pops++
}

// RemoveIf deletes all entries matching pred, preserving order, and
// returns how many were removed. Visibility is ignored: squashes (the
// only bulk-removal user) flush wrong-path entries regardless of
// synchronization state.
func (q *Queue[T]) RemoveIf(pred func(v T) bool) int {
	out := 0
	w := 0
	for i := 0; i < q.count; i++ {
		s := q.slot(i)
		if pred(q.buf[s]) {
			out++
			continue
		}
		if d := q.slot(w); d != s {
			q.buf[d] = q.buf[s]
			q.visible[d] = q.visible[s]
		}
		w++
	}
	var zero T
	for i := w; i < q.count; i++ {
		q.buf[q.slot(i)] = zero
	}
	q.count = w
	q.pops += uint64(out)
	return out
}

// PeekFront returns the oldest entry without removing it, if it is
// visible at time now.
func (q *Queue[T]) PeekFront(now clock.Time) (v T, ok bool) {
	if q.count == 0 || q.visible[q.head] > now {
		return v, false
	}
	return q.buf[q.head], true
}

// FrontPtr returns a pointer to the oldest entry when it is visible at
// time now: the copy-free variant of PeekFront for hot paths with large
// element types. The pointer aims into the ring and is invalidated by
// any queue mutation; callers must finish reading before mutating.
func (q *Queue[T]) FrontPtr(now clock.Time) (*T, bool) {
	if q.count == 0 || q.visible[q.head] > now {
		return nil, false
	}
	return &q.buf[q.head], true
}

// PopFront removes and returns the oldest visible entry, if any.
func (q *Queue[T]) PopFront(now clock.Time) (v T, ok bool) {
	if q.count == 0 || q.visible[q.head] > now {
		return v, false
	}
	v = q.buf[q.head]
	q.RemoveAt(0)
	return v, true
}

// Stats returns cumulative pushes, pops, and full-queue stalls.
func (q *Queue[T]) Stats() (pushes, pops, fullStalls uint64) {
	return q.pushes, q.pops, q.fullStall
}
