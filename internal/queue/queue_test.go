package queue

import (
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
)

func TestPushPopFIFO(t *testing.T) {
	q := New[int]("iq", 4, 0)
	for i := 1; i <= 4; i++ {
		if !q.Push(0, i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !q.Full() {
		t.Error("queue should be full")
	}
	if q.Push(0, 5) {
		t.Error("push into full queue succeeded")
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.PopFront(0)
		if !ok || v != i {
			t.Fatalf("PopFront = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
	_, _, stalls := q.Stats()
	if stalls != 1 {
		t.Errorf("fullStalls = %d, want 1", stalls)
	}
}

func TestSyncWindowDelaysVisibility(t *testing.T) {
	win := 300 * clock.Picosecond
	q := New[int]("iq", 4, win)
	q.Push(1000, 7)
	if q.VisibleLen(1000) != 0 {
		t.Error("entry visible before sync window elapsed")
	}
	if _, ok := q.PopFront(1000 + win - 1); ok {
		t.Error("PopFront saw entry inside sync window")
	}
	if v, ok := q.PopFront(1000 + win); !ok || v != 7 {
		t.Error("entry not visible after sync window")
	}
	// Len counts physical occupancy regardless of visibility.
	q.Push(2000, 8)
	if q.Len() != 1 {
		t.Errorf("Len = %d, want 1 (physical occupancy)", q.Len())
	}
}

func TestScanVisitsOnlyVisibleInOrder(t *testing.T) {
	q := New[int]("iq", 8, 100)
	q.Push(0, 1)   // visible at 100
	q.Push(50, 2)  // visible at 150
	q.Push(500, 3) // visible at 600
	var seen []int
	q.Scan(200, func(i, v int) bool {
		seen = append(seen, v)
		return true
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("Scan saw %v, want [1 2]", seen)
	}
	// Early termination.
	count := 0
	q.Scan(1000, func(i, v int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Scan after false return visited %d entries, want 1", count)
	}
}

func TestRemoveAtPreservesOrder(t *testing.T) {
	q := New[int]("iq", 8, 0)
	for i := 1; i <= 5; i++ {
		q.Push(0, i)
	}
	q.RemoveAt(1) // remove 2
	q.RemoveAt(2) // remove 4 (indices shifted)
	var rest []int
	q.Scan(0, func(i, v int) bool { rest = append(rest, v); return true })
	want := []int{1, 3, 5}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("after removals: %v, want %v", rest, want)
		}
	}
}

func TestRemoveIfIgnoresVisibility(t *testing.T) {
	q := New[int]("iq", 8, 1000)
	q.Push(0, 1)
	q.Push(0, 2)
	q.Push(0, 3)
	n := q.RemoveIf(func(v int) bool { return v%2 == 1 })
	if n != 2 || q.Len() != 1 {
		t.Errorf("RemoveIf removed %d (len %d), want 2 (len 1)", n, q.Len())
	}
	if q.At(0) != 2 {
		t.Errorf("survivor = %d, want 2", q.At(0))
	}
}

func TestOccupancyConservation(t *testing.T) {
	// Property: Len == pushes - pops at all times.
	q := New[uint16]("iq", 16, 10)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			if op%3 == 0 {
				q.Push(clock.Time(op), op)
			} else {
				q.PopFront(clock.Time(op) + 100)
			}
			pushes, pops, _ := q.Stats()
			if int(pushes-pops) != q.Len() {
				return false
			}
			if q.Len() > q.Cap() || q.Len() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVisibleNeverExceedsLen(t *testing.T) {
	q := New[int]("iq", 8, 500)
	f := func(now uint32) bool {
		return q.VisibleLen(clock.Time(now)) <= q.Len()
	}
	q.Push(0, 1)
	q.Push(100, 2)
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for i, fn := range []func(){
		func() { New[int]("x", 0, 0) },
		func() { New[int]("x", 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(3)
	for i := 0; i < 5; i++ {
		s.Record(i)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", s.Dropped())
	}
	want := []float64{0, 1, 2}
	for i, v := range s.Samples() {
		if v != want[i] {
			t.Errorf("sample %d = %g, want %g", i, v, want[i])
		}
	}
	unl := NewSampler(0)
	for i := 0; i < 100; i++ {
		unl.Record(i)
	}
	if unl.Len() != 100 || unl.Dropped() != 0 {
		t.Error("unlimited sampler dropped samples")
	}
}

func TestTokenRingPaysOnlyOnEmpty(t *testing.T) {
	win := 300 * clock.Picosecond
	q := NewWithPolicy[int]("iq", 4, win, SyncTokenRing)
	q.Push(1000, 1) // into empty queue: pays the window
	if q.VisibleLen(1000) != 0 {
		t.Error("first entry visible before window under token ring")
	}
	q.Push(1100, 2) // queue non-empty: free
	if got := q.VisibleLen(1100); got != 1 {
		t.Errorf("second entry should be visible immediately, visible=%d", got)
	}
	if q.SyncPenaltiesPaid() != 1 {
		t.Errorf("penalties = %d, want 1", q.SyncPenaltiesPaid())
	}
	// Arbitration pays every time.
	a := NewWithPolicy[int]("iq", 4, win, SyncArbitration)
	a.Push(1000, 1)
	a.Push(1100, 2)
	if a.SyncPenaltiesPaid() != 2 {
		t.Errorf("arbitration penalties = %d, want 2", a.SyncPenaltiesPaid())
	}
}

func TestSyncPolicyString(t *testing.T) {
	if SyncArbitration.String() != "arbitration" || SyncTokenRing.String() != "token-ring" {
		t.Error("bad policy names")
	}
	if SyncPolicy(9).String() == "" {
		t.Error("out-of-range policy must format")
	}
}

func TestZeroWindowPaysNothing(t *testing.T) {
	q := NewWithPolicy[int]("iq", 4, 0, SyncArbitration)
	q.Push(0, 1)
	if q.SyncPenaltiesPaid() != 0 {
		t.Error("zero window counted a penalty")
	}
}
