package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// flagLoops reports every for statement — a minimal analyzer for
// exercising the driver and the //lint:allow machinery.
var flagLoops = &Analyzer{
	Name: "flagloops",
	Doc:  "flags every for statement",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fs, ok := n.(*ast.ForStmt); ok {
					p.Reportf(fs.For, "loop found")
				}
				return true
			})
		}
		return nil
	},
}

// check type-checks src (a dependency-free file) and runs analyzers.
func check(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Target{{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func messages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

func TestReportAndSort(t *testing.T) {
	diags := check(t, `package p
func b() {
	for {
	}
}
func a() {
	for {
	}
}
`, flagLoops)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), messages(diags))
	}
	if diags[0].Pos >= diags[1].Pos {
		t.Errorf("diagnostics not sorted by position")
	}
}

func TestAllowSameLine(t *testing.T) {
	diags := check(t, `package p
func f() {
	for { //lint:allow flagloops benchmark loop is intentionally unbounded
	}
}
`, flagLoops)
	if len(Active(diags)) != 0 {
		t.Fatalf("same-line allow did not suppress: %v", messages(Active(diags)))
	}
	// The waived finding is still on the record, reason attached.
	if len(diags) != 1 || !diags[0].Suppressed ||
		diags[0].AllowReason != "benchmark loop is intentionally unbounded" {
		t.Fatalf("suppressed diagnostic not recorded with its reason: %+v", diags)
	}
}

func TestAllowLineAbove(t *testing.T) {
	diags := check(t, `package p
func f() {
	//lint:allow flagloops benchmark loop is intentionally unbounded
	for {
	}
}
`, flagLoops)
	if len(Active(diags)) != 0 {
		t.Fatalf("line-above allow did not suppress: %v", messages(Active(diags)))
	}
}

func TestAllowWrongAnalyzerDoesNotSuppress(t *testing.T) {
	diags := check(t, `package p
func f() {
	//lint:allow flagloops the loop below is fine
	for {
	}
	for {
	}
}
`, flagLoops)
	if got := Active(diags); len(got) != 1 {
		t.Fatalf("got %d active diagnostics, want 1 (second loop unsuppressed): %v", len(got), messages(got))
	}
}

// progCalls counts functions per package across the whole program — a
// minimal whole-program analyzer exercising the ProgramPass plumbing
// and its interaction with //lint:allow.
var flagFuncs = &Analyzer{
	Name: "flagfuncs",
	Doc:  "flags every function declaration, program-wide",
	RunProgram: func(p *ProgramPass) error {
		for _, t := range p.Targets {
			for _, f := range t.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						p.Reportf(fd.Pos(), "function %s", fd.Name.Name)
					}
				}
			}
		}
		return nil
	},
}

func TestProgramPass(t *testing.T) {
	diags := check(t, `package p
func a() {}

//lint:allow flagfuncs demonstrates program-pass suppression
func b() {}
`, flagFuncs)
	active := Active(diags)
	if len(active) != 1 || !strings.Contains(active[0].Message, "function a") {
		t.Fatalf("want one active diagnostic for a, got: %v", messages(active))
	}
	if len(diags) != 2 {
		t.Fatalf("want the waived b finding recorded as suppressed, got: %v", messages(diags))
	}
}

func TestAllowMissingReason(t *testing.T) {
	diags := check(t, `package p
func f() {
	//lint:allow flagloops
	for {
	}
}
`, flagLoops)
	// The reasonless directive suppresses nothing, so both the loop
	// diagnostic and the directive complaint surface.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), messages(diags))
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "lintdirective" && strings.Contains(d.Message, "missing a reason") {
			found = true
		}
	}
	if !found {
		t.Errorf("no lintdirective diagnostic for missing reason: %v", messages(diags))
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	diags := check(t, `package p
//lint:allow nosuchcheck spelled wrong
func f() {}
`, flagLoops)
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" ||
		!strings.Contains(diags[0].Message, "unknown analyzer") {
		t.Fatalf("want one unknown-analyzer diagnostic, got: %v", messages(diags))
	}
}

func TestAllowUnused(t *testing.T) {
	diags := check(t, `package p
//lint:allow flagloops nothing here loops
func f() {}
`, flagLoops)
	if len(diags) != 1 || diags[0].Analyzer != "lintdirective" ||
		!strings.Contains(diags[0].Message, "suppresses nothing") {
		t.Fatalf("want one stale-directive diagnostic, got: %v", messages(diags))
	}
}
