// Package analysis is a deliberately small, dependency-free subset of
// golang.org/x/tools/go/analysis: just enough structure (Analyzer,
// Pass, Diagnostic) to host the mcdlint analyzers without pulling a
// module dependency into a standard-library-only repository.
//
// The driver adds one repo-specific feature the upstream framework
// leaves to each checker: a uniform escape hatch. A comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line, or on the line directly above it,
// suppresses that analyzer's diagnostics for that line. The reason is
// mandatory — an allow directive without one is itself reported, so
// every suppression in the tree documents why the invariant does not
// apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. An analyzer is either
// per-package (Run) or whole-program (RunProgram); the interprocedural
// checkers use the latter because a taint path or a field-coverage
// proof crosses package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a single lower-case word.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports violations via the pass.
	// Nil for whole-program analyzers.
	Run func(*Pass) error
	// RunProgram inspects every target package at once. The driver
	// invokes it exactly once per Run call, after the per-package
	// passes. Nil for per-package analyzers.
	RunProgram func(*ProgramPass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's findings for Files.
	Info *types.Info

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ProgramPass carries every type-checked target package through one
// whole-program analyzer. All targets share a single token.FileSet
// (the loader guarantees it).
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Targets  []*Target

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation. A diagnostic silenced by a
// //lint:allow directive is still returned — with Suppressed set and
// the directive's reason attached — so machine consumers (mcdlint
// -json) can surface waived findings next to active ones; only
// unsuppressed diagnostics affect mcdlint's exit status.
type Diagnostic struct {
	Pos         token.Pos
	Analyzer    string
	Message     string
	Suppressed  bool
	AllowReason string
}

// Active filters diags down to the unsuppressed ones.
func Active(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Target is the loader-agnostic view of one package the driver needs.
// internal/lint/load.Package satisfies it.
type Target struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	line     int
	file     string
	pos      token.Pos
	used     bool
}

const allowPrefix = "//lint:allow"

// parseAllows extracts every //lint:allow directive from a file.
func parseAllows(fset *token.FileSet, f *ast.File) []*allowDirective {
	var out []*allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
			name, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			out = append(out, &allowDirective{
				analyzer: name,
				reason:   strings.TrimSpace(reason),
				line:     pos.Line,
				file:     pos.Filename,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// Run applies every analyzer to every target package and returns the
// diagnostics sorted by position. Diagnostics silenced by a
// //lint:allow directive are returned with Suppressed set (see
// Diagnostic); malformed or unused //lint:allow directives are
// reported as diagnostics of the pseudo-analyzer "lintdirective" so
// stale escape hatches cannot linger silently.
func Run(targets []*Target, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var allows []*allowDirective
	for _, t := range targets {
		for _, f := range t.Files {
			allows = append(allows, parseAllows(t.Fset, f)...)
		}
	}
	fsetFor := func() *token.FileSet {
		if len(targets) > 0 {
			return targets[0].Fset
		}
		return token.NewFileSet()
	}
	report := func(d Diagnostic, fset *token.FileSet) {
		p := fset.Position(d.Pos)
		for _, a := range allows {
			if a.analyzer != d.Analyzer || a.file != p.Filename || a.reason == "" {
				continue
			}
			if a.line == p.Line || a.line == p.Line-1 {
				a.used = true
				d.Suppressed = true
				d.AllowReason = a.reason
				break
			}
		}
		diags = append(diags, d)
	}

	for _, t := range targets {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     t.Fset,
				Files:    t.Files,
				Pkg:      t.Pkg,
				Info:     t.Info,
			}
			fset := t.Fset
			pass.report = func(d Diagnostic) { report(d, fset) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, t.Pkg.Path(), err)
			}
		}
	}

	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     fsetFor(),
			Targets:  targets,
		}
		pass.report = func(d Diagnostic) { report(d, pass.Fset) }
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range allows {
		switch {
		case a.reason == "":
			diags = append(diags, Diagnostic{Pos: a.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("//lint:allow %s is missing a reason", a.analyzer)})
		case !known[a.analyzer]:
			diags = append(diags, Diagnostic{Pos: a.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", a.analyzer)})
		case !a.used:
			diags = append(diags, Diagnostic{Pos: a.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("//lint:allow %s suppresses nothing; remove it", a.analyzer)})
		}
	}

	// All targets share one FileSet (the loader guarantees it), so
	// sorting by file/line/column across packages is well-defined.
	if len(targets) > 0 {
		fset := targets[0].Fset
		sort.SliceStable(diags, func(i, j int) bool {
			pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			if pi.Column != pj.Column {
				return pi.Column < pj.Column
			}
			return diags[i].Analyzer < diags[j].Analyzer
		})
	}
	return diags, nil
}
