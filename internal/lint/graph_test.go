package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mcddvfs/internal/lint/load"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden call-graph dump")

// TestGraphGolden pins the exact edge set the builder produces for the
// corner-case shapes in the graphfix fixture package: mutual recursion
// (both edges, termination), interface dispatch (conservative fan-out
// to value- and pointer-receiver implementations), a method value
// referenced without a call, and a call buried in a closure attributed
// to the enclosing declaration.
func TestGraphGolden(t *testing.T) {
	dir, err := filepath.Abs("testdata/src/fixture.example")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load(dir, "./internal/graphfix")
	if err != nil {
		t.Fatalf("loading graphfix fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	g := buildGraph(Targets(pkgs), pkgs[0].Fset)
	got := g.dump()

	golden := filepath.Join("testdata", "graph_golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("call-graph dump differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
