// Package lint hosts mcdlint's analyzers: repo-specific invariant
// checkers for the determinism and cancellation contracts the
// simulator and experiment harness promise (see docs/LINTING.md).
//
// The invariants, and the analyzer that owns each:
//
//   - Simulation output is bit-identical for identical configs.
//     detrange forbids order-dependent iteration over maps, and
//     detsource forbids wall-clock, global-randomness, and
//     pointer-formatting inputs, in the simulator packages.
//   - The experiment harness is cancellable and panic-safe.
//     ctxflow enforces context acceptance, propagation, and polling;
//     errtaxonomy keeps every error crossing the harness boundary
//     attached to the ErrInvalidSpec/ErrRunTimeout/ErrCancelled/
//     ErrRunPanicked taxonomy.
//   - DVFS schemes are self-describing plugins.
//     schemeswitch forbids switch dispatch on Scheme values anywhere
//     but the scheme registry (internal/scheme), so per-scheme
//     behavior cannot fragment back into call sites.
//   - The event engine owns registered domains.
//     engineowned forbids direct clock.Domain.Advance/Stop calls
//     outside internal/clock, so the engine's cached edge times stay
//     coherent and per-cycle polling cannot creep back in.
//
// Two analyzers are whole-program rather than per-package, built on
// the call graph in graph.go:
//
//   - Nondeterminism cannot reach the simulator from anywhere.
//     dettaint propagates taint from every nondeterminism source
//     (wall clock, global rand, filesystem enumeration, multi-ready
//     select, %p, unordered map iteration) across the repo call graph
//     and fails if any source is reachable from the simulation entry
//     points — including through helpers in packages the per-package
//     analyzers never look at.
//   - The content-addressed cache key is complete.
//     cachekey proves every Options field the run path reads is hashed
//     (or explicitly exempted), and that the serve layer's request key
//     and wire-default normalization cover the same set.
package lint

import (
	"strings"

	"mcddvfs/internal/lint/analysis"
	"mcddvfs/internal/lint/load"
)

// simPackages are the deterministic-simulation packages: everything
// that executes between a Config and a Result. Matched by import-path
// suffix so the fixture module under testdata is covered by the same
// rules as the real tree.
var simPackages = []string{
	"internal/mcd",
	"internal/clock",
	"internal/dvfs",
	"internal/baselines",
	"internal/faults",
	"internal/queue",
}

// renderPackages extends the detrange scope to the experiment harness:
// artifacts (tables, figures, SVGs) must also be byte-identical across
// runs, so report rendering may not depend on map iteration order
// either.
var renderPackages = append([]string{"internal/experiment"}, simPackages...)

// harnessPackages are where the cancellation and error-taxonomy
// contracts live: the experiment harness and the HTTP service that
// fronts it.
var harnessPackages = []string{"internal/experiment", "internal/serve"}

// fsListPackages extends detsource's filesystem-enumeration ban to the
// trace corpus and experiment harness: directory listing order is host
// state (filesystems disagree about it), and both corpus resolution
// and artifact generation feed the bit-identical-output contract.
// Listings these packages genuinely need must go through
// internal/detfs.SortedNames, the one audited enumeration site.
var fsListPackages = append([]string{"internal/trace", "internal/experiment"}, simPackages...)

// inScope reports whether an import path matches one of the scope
// suffixes ("internal/mcd" matches both "mcddvfs/internal/mcd" and the
// fixture module's "fixture.example/internal/mcd").
func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Analyzers returns the full mcdlint suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRange,
		DetSource,
		CtxFlow,
		ErrTaxonomy,
		SchemeSwitch,
		EngineOwned,
		DetTaint,
		CacheKey,
	}
}

// Targets adapts loaded packages to the driver's view.
func Targets(pkgs []*load.Package) []*analysis.Target {
	out := make([]*analysis.Target, len(pkgs))
	for i, p := range pkgs {
		out[i] = &analysis.Target{Fset: p.Fset, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
	}
	return out
}
