package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mcddvfs/internal/lint/analysis"
)

// This file is the interprocedural half of mcdlint: a whole-program
// call graph over every loaded target package, shared by the dettaint
// and cachekey analyzers.
//
// Targets are type-checked independently against compiled export data
// (see internal/lint/load), so a *types.Func observed from a caller's
// package is a different object than the same function seen from its
// own package. Nodes are therefore keyed by a stable symbol string —
// "pkgpath.Func" or "pkgpath.(Recv).Method" — which is identical in
// both views.
//
// Edges are conservative in three deliberate ways:
//
//   - Referencing a function is an edge. A method value, a callback
//     passed to a worker pool, an event handler registered with the
//     engine — any mention of a declared function counts as a possible
//     call, because a reference that is never invoked costs a false
//     edge while a missed invocation would hide a taint path.
//   - Interface dispatch fans out to every declared method with the
//     same name and arity. Matching by method-set implementation is
//     impossible across independently checked packages (named types
//     from source and from export data are distinct objects), so the
//     graph taints all plausible implementers instead — exactly the
//     conservative choice the determinism contract wants.
//   - Function literals belong to their enclosing declaration. A
//     closure's body (calls, sources) is attributed to the function
//     that lexically contains it, so a tainted closure taints the
//     function that built it.
//
// The known gap: a method that is never referenced by name and never
// matches an interface call site's name/arity is invisible (e.g. a
// sort.Interface passed as a value into the standard library). The
// per-package analyzers still cover those bodies where it matters.

// graphNode is one declared function or method in a target package.
type graphNode struct {
	key     string // stable symbol key (see symbolKey)
	fn      *types.Func
	decl    *ast.FuncDecl
	target  *analysis.Target
	edges   []graphEdge
	sources []taintSource
}

// graphEdge is one possible call from a node.
type graphEdge struct {
	to  *graphNode
	via string // "call" (direct reference) or "iface" (dispatch fan-out)
}

// taintSource is one nondeterminism source inside a function body.
type taintSource struct {
	pos  token.Pos
	kind string // "wallclock", "globalrand", "fsorder", "select", "ptrformat", "maprange"
	what string // human description of the source
	fix  string // remediation advice
}

// progGraph is the whole-program call graph.
type progGraph struct {
	fset  *token.FileSet
	nodes map[string]*graphNode
	// order lists every node sorted by declaration position, so all
	// traversals (and thus all diagnostics and parent choices) are
	// deterministic.
	order []*graphNode
}

// buildGraph constructs the call graph over all target packages.
func buildGraph(targets []*analysis.Target, fset *token.FileSet) *progGraph {
	g := &progGraph{fset: fset, nodes: make(map[string]*graphNode)}

	// Pass 1: index every declared function and method.
	for _, t := range targets {
		for _, f := range t.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := t.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &graphNode{key: symbolKey(fn), fn: fn, decl: fd, target: t}
				g.nodes[n.key] = n
				g.order = append(g.order, n)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].decl.Pos() < g.order[j].decl.Pos() })

	// Pass 2: edges and sources from each body (closures included —
	// ast.Inspect descends into function literals, attributing their
	// contents to the enclosing declaration).
	for _, n := range g.order {
		if n.decl.Body == nil {
			continue
		}
		g.scanBody(n)
	}

	// Pass 3: file-granular source scans, computed once per file and
	// attributed to the enclosing declaration by position.
	for _, t := range targets {
		for _, f := range t.Files {
			for _, fd := range findOrderDependentMapRanges(t.Info, f) {
				g.attachSource(taintSource{
					pos:  fd.pos,
					kind: "maprange",
					what: "order-dependent map iteration",
					fix:  "iterate sorted keys or make the body commutative",
				})
			}
			for _, pos := range findPointerFormats(t.Info, f) {
				g.attachSource(taintSource{
					pos:  pos,
					kind: "ptrformat",
					what: "%p pointer formatting (addresses differ between runs)",
					fix:  "print a stable identifier instead",
				})
			}
		}
	}
	for _, n := range g.order {
		sort.Slice(n.sources, func(i, j int) bool { return n.sources[i].pos < n.sources[j].pos })
	}
	return g
}

// attachSource appends s to the node whose declaration encloses s.pos,
// if any (package-level positions outside every function are dropped).
func (g *progGraph) attachSource(s taintSource) {
	i := sort.Search(len(g.order), func(i int) bool { return g.order[i].decl.Pos() > s.pos })
	if i == 0 {
		return
	}
	n := g.order[i-1]
	if s.pos < n.decl.End() {
		n.sources = append(n.sources, s)
	}
}

// symbolKey returns the package-qualified name of fn, identical
// whether fn was seen from source or from export data.
func symbolKey(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
		return t.String() + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// scanBody records n's outgoing edges and taint sources.
func (g *progGraph) scanBody(n *graphNode) {
	info := n.target.Info
	seenEdge := make(map[string]bool)
	addEdge := func(to *graphNode, via string) {
		k := via + " " + to.key
		if !seenEdge[k] {
			seenEdge[k] = true
			n.edges = append(n.edges, graphEdge{to: to, via: via})
		}
	}

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.Ident:
			fn, ok := info.Uses[node].(*types.Func)
			if !ok {
				return true
			}
			if target, ok := g.nodes[symbolKey(fn)]; ok {
				addEdge(target, "call")
				return true
			}
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface dispatch: fan out to every declared method
				// with the same name and arity.
				for _, cand := range g.order {
					if cand.fn.Name() != fn.Name() || cand.fn.Type().(*types.Signature).Recv() == nil {
						continue
					}
					if sameArity(sig, cand.fn.Type().(*types.Signature)) {
						addEdge(cand, "iface")
					}
				}
				return true
			}
			// External function without a body: a nondeterminism
			// source, or (conservatively) nothing.
			if s, ok := externalSource(fn, node.Pos()); ok {
				n.sources = append(n.sources, s)
			}
		case *ast.SelectStmt:
			ready := 0
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready >= 2 {
				n.sources = append(n.sources, taintSource{
					pos:  node.Select,
					kind: "select",
					what: "select with multiple communication cases (the runtime picks a ready case pseudo-randomly)",
					fix:  "drain channels in a fixed order or restructure so at most one case can be ready",
				})
			}
		}
		return true
	})

}

// sameArity reports whether two signatures take and return the same
// number of values — the cross-universe stand-in for assignability.
func sameArity(a, b *types.Signature) bool {
	return a.Params().Len() == b.Params().Len() &&
		a.Results().Len() == b.Results().Len() &&
		a.Variadic() == b.Variadic()
}

// externalSource classifies a bodyless (non-target) function as a
// nondeterminism source.
func externalSource(fn *types.Func, pos token.Pos) (taintSource, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil {
		return taintSource{}, false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if recv := sig.Recv(); recv != nil {
		// The one sourced method family: directory enumeration on an
		// open os.File.
		if path == "os" && (name == "Readdir" || name == "Readdirnames" || name == "ReadDir") {
			return taintSource{pos, "fsorder",
				"filesystem enumeration (os.File)." + name + " reads host state",
				"simulation inputs must come from Config, not the host filesystem"}, true
		}
		return taintSource{}, false
	}
	switch path {
	case "time":
		if wallClockFuncs[name] {
			return taintSource{pos, "wallclock",
				"wall clock time." + name,
				"simulated time must come from the clock model"}, true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			return taintSource{pos, "globalrand",
				"global math/rand." + name,
				"use a *rand.Rand seeded from Config"}, true
		}
	case "os":
		if name == "ReadDir" {
			return taintSource{pos, "fsorder",
				"filesystem enumeration os.ReadDir reads host state",
				"simulation inputs must come from Config, not the host filesystem"}, true
		}
	case "path/filepath":
		if name == "Walk" || name == "WalkDir" || name == "Glob" {
			return taintSource{pos, "fsorder",
				"filesystem enumeration filepath." + name + " reads host state",
				"simulation inputs must come from Config, not the host filesystem"}, true
		}
	}
	return taintSource{}, false
}

// reachableFrom runs a breadth-first traversal from the given roots
// (in order) and returns, for every reachable node, the edge through
// which it was first discovered. Roots map to a zero parentEdge.
// First-discovery order is deterministic because roots and adjacency
// lists are.
type parentEdge struct {
	from *graphNode
	via  string
}

func reachableFrom(roots []*graphNode) map[*graphNode]parentEdge {
	parent := make(map[*graphNode]parentEdge, len(roots))
	queue := make([]*graphNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; !ok {
			parent[r] = parentEdge{}
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.edges {
			if _, seen := parent[e.to]; !seen {
				parent[e.to] = parentEdge{from: n, via: e.via}
				queue = append(queue, e.to)
			}
		}
	}
	return parent
}

// pathTo renders the discovery path from a root to n, e.g.
// "mcd.Run -> mcd.sample -> [iface] stats.wallSampler.Sample".
func pathTo(parent map[*graphNode]parentEdge, n *graphNode) string {
	var hops []string
	for cur := n; ; {
		p, ok := parent[cur]
		if !ok {
			break
		}
		label := shortFn(cur.fn)
		if p.via == "iface" {
			label = "[iface] " + label
		}
		hops = append(hops, label)
		if p.from == nil {
			break
		}
		cur = p.from
	}
	// hops is leaf-to-root; reverse.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	return strings.Join(hops, " -> ")
}

// shortFn renders fn compactly: the package path is trimmed to the
// part after the last "internal/", and methods carry their receiver.
func shortFn(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
		if i := strings.LastIndex(pkg, "internal/"); i >= 0 {
			pkg = pkg[i+len("internal/"):]
		}
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t, star = p.Elem(), "*"
		}
		name := t.String()
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s%s).%s", pkg, star, name, fn.Name())
	}
	return pkg + "." + fn.Name()
}

// dump renders the graph as sorted "caller -> [via] callee" lines plus
// per-node source annotations — the format the golden call-graph test
// pins.
func (g *progGraph) dump() string {
	var b strings.Builder
	for _, n := range g.order {
		for _, e := range n.edges {
			fmt.Fprintf(&b, "%s -> [%s] %s\n", n.key, e.via, e.to.key)
		}
		for _, s := range n.sources {
			fmt.Fprintf(&b, "%s !! %s: %s\n", n.key, s.kind, s.what)
		}
	}
	return b.String()
}
