package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"mcddvfs/internal/lint/analysis"
)

// ErrTaxonomy keeps the experiment harness's error taxonomy closed:
// callers dispatch on the package's sentinel errors (ErrInvalidSpec,
// ErrRunTimeout, ErrCancelled, ErrRunPanicked) with errors.Is, so an
// ad-hoc error escaping an exported function is a silent API break —
// it matches no sentinel and falls through every switch.
//
// For each exported function or method whose last result is error, a
// return statement may not hand back a freshly minted, unclassified
// error:
//
//   - `return errors.New(...)` is flagged — it can never match a
//     sentinel;
//   - `return fmt.Errorf(...)` without a %w verb is flagged for the
//     same reason;
//   - `fmt.Errorf` with %w is accepted: it wraps either a sentinel
//     directly or an underlying error that already carries one
//     (propagation is trusted — the analyzer checks construction
//     sites, not data flow).
//
// Errors propagated via identifiers or helper calls are accepted —
// the package's own helpers (invalidSpec, wrapRunErr) exist precisely
// to centralize sentinel attachment.
var ErrTaxonomy = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "requires errors crossing the harness boundary to wrap a taxonomy sentinel with %w",
	Run:  runErrTaxonomy,
}

func runErrTaxonomy(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), harnessPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !lastResultIsError(pass, fn) {
				continue
			}
			checkReturns(pass, fn)
		}
	}
	return nil
}

func lastResultIsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	t := pass.TypeOf(res.List[len(res.List)-1].Type)
	return t != nil && types.TypeString(t, nil) == "error"
}

// checkReturns inspects fn's own return statements (not those of
// nested function literals, which return from the literal).
func checkReturns(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		checkErrExpr(pass, fn, ret.Results[len(ret.Results)-1])
		return true
	})
}

func checkErrExpr(pass *analysis.Pass, fn *ast.FuncDecl, e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return // nil, variables, fields: propagation, trusted
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return // same-package helpers (invalidSpec, wrapRunErr) are fine
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "errors.New":
		pass.Reportf(e.Pos(),
			"%s returns a raw errors.New error across the harness boundary; wrap a taxonomy sentinel with fmt.Errorf(\"%%w: ...\", ErrX, ...)", fn.Name.Name)
	case "fmt.Errorf":
		if len(call.Args) == 0 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return // non-literal format: not statically checkable
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		if !strings.Contains(format, "%w") {
			pass.Reportf(e.Pos(),
				"%s returns fmt.Errorf without %%w across the harness boundary; wrap a taxonomy sentinel or the underlying error", fn.Name.Name)
		}
	}
}
