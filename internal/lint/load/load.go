// Package load type-checks Go packages for the mcdlint analyzers using
// only the standard library and the go tool.
//
// golang.org/x/tools/go/packages is the usual answer here, but this
// repository is standard-library-only, so the loader reimplements the
// narrow slice it needs: `go list -export -json -deps` supplies package
// metadata plus compiled export data for every dependency (including
// the standard library, whose export data no longer ships pre-built),
// the target packages are parsed from source, and go/types checks them
// against the export data through go/importer's gc lookup hook.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, compiles their
// dependency graph for export data, and returns the matched packages
// parsed and type-checked from source. All returned packages share one
// token.FileSet.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(metas))
	var targets []*listPackage
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly {
			targets = append(targets, m)
		}
	}

	fset := token.NewFileSet()
	// One importer instance for every target: it memoizes dependency
	// packages, so shared deps are read once.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var out []*Package
	for _, t := range targets {
		p, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// goList runs `go list -export -json -deps` and decodes the stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listPackage
	for {
		m := new(listPackage)
		if err := dec.Decode(m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", m.ImportPath, m.Error.Err)
		}
		out = append(out, m)
	}
	return out, nil
}

// check parses and type-checks one target package from source.
func check(fset *token.FileSet, imp types.Importer, meta *listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(meta.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", meta.ImportPath, err)
	}
	return &Package{
		ImportPath: meta.ImportPath,
		Dir:        meta.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
