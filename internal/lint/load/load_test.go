package load

import (
	"go/types"
	"strings"
	"testing"
)

// TestLoadSelf loads this package through the real `go list -export`
// path: metadata, parsing, and type-checking against export data all
// have to line up for a single package to come back resolved.
func TestLoadSelf(t *testing.T) {
	pkgs, err := Load(".", ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if !strings.HasSuffix(p.ImportPath, "internal/lint/load") {
		t.Errorf("unexpected import path %q", p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Errorf("no files parsed")
	}
	// The type-checker must have resolved imports through export
	// data: Load's signature mentions *Package, so the package scope
	// knows the type.
	obj := p.Pkg.Scope().Lookup("Load")
	if obj == nil {
		t.Fatal("Load not found in package scope")
	}
	if _, ok := obj.Type().(*types.Signature); !ok {
		t.Errorf("Load resolved to %T, want a function signature", obj.Type())
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", "./does-not-exist-anywhere"); err == nil {
		t.Fatal("want error for nonexistent package pattern")
	}
}
