package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"mcddvfs/internal/lint/analysis"
)

// DetRange flags `range` over a map in the simulator and rendering
// packages unless the loop body is provably order-insensitive.
//
// Go randomizes map iteration order on purpose, so any observable
// output assembled by ranging over a map varies run to run — which
// breaks the repo's bit-identical-replay contract (every EDP
// comparison in EXPERIMENTS.md assumes deterministic reruns). A map
// range is accepted when the body only performs commutative work:
//
//   - writes to (or deletes from) another map keyed per iteration,
//   - integer accumulation (+=, -=, *=, |=, &=, ^=, ++, --) — float
//     and string accumulation are rejected: float addition does not
//     associate and string concatenation is ordered,
//   - min/max tracking guarded by an order comparison,
//   - collecting keys/values into a slice that is sorted in the same
//     enclosing block before the loop's results can be observed.
//
// Everything else needs sorted keys or an explicit
// `//lint:allow detrange <reason>`.
var DetRange = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "forbids order-dependent iteration over maps in deterministic packages",
	Run:  runDetRange,
}

func runDetRange(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), renderPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, fd := range findOrderDependentMapRanges(pass.Info, f) {
			pass.Reportf(fd.pos, "%s", fd.msg)
		}
	}
	return nil
}

// rangeFinding is one order-dependent map range: where it is and why
// it was rejected.
type rangeFinding struct {
	pos token.Pos
	msg string
}

// findOrderDependentMapRanges returns every map range in f whose body
// is not provably order-insensitive. detrange reports these directly
// in its scoped packages; the dettaint call-graph engine treats them
// as nondeterminism sources everywhere else (a helper package leaking
// map order into the simulator).
func findOrderDependentMapRanges(info *types.Info, f *ast.File) []rangeFinding {
	w := &rangeWalker{info: info}
	w.walk(f)
	return w.findings
}

type rangeWalker struct {
	info     *types.Info
	findings []rangeFinding
	// stack holds the ancestors of the node being visited, outermost
	// first, so checkRange can find the enclosing block for the
	// append-then-sort pattern.
	stack []ast.Node
}

func (w *rangeWalker) walk(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.stack = append(w.stack, n)
		if rs, ok := n.(*ast.RangeStmt); ok {
			w.checkRange(rs)
		}
		return true
	})
}

func (w *rangeWalker) checkRange(rs *ast.RangeStmt) {
	t := w.info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	c := &bodyChecker{info: w.info}
	if c.stmtsOK(rs.Body.List) {
		if len(c.appended) == 0 {
			return // purely commutative body
		}
		if w.sortedAfter(rs, c.appended) {
			return // collect-then-sort idiom
		}
		w.findings = append(w.findings, rangeFinding{rs.For,
			fmt.Sprintf("range over map %s collects into a slice that is never sorted; sort it before use", types.ExprString(rs.X))})
		return
	}
	w.findings = append(w.findings, rangeFinding{rs.For,
		fmt.Sprintf("range over map %s has an order-dependent body; iterate sorted keys instead", types.ExprString(rs.X))})
}

// sortedAfter reports whether, in the block enclosing rs, a later
// statement sorts one of the slices the loop appended to.
func (w *rangeWalker) sortedAfter(rs *ast.RangeStmt, appended map[string]bool) bool {
	// Find the statement that is rs (or contains it) inside the
	// nearest enclosing block.
	for i := len(w.stack) - 2; i >= 0; i-- {
		block, ok := w.stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		child := w.stack[i+1]
		for j, s := range block.List {
			if s != child {
				continue
			}
			for _, later := range block.List[j+1:] {
				if stmtSortsOneOf(later, appended) {
					return true
				}
			}
			return false
		}
		return false
	}
	return false
}

// stmtSortsOneOf reports whether s is a call into sort or slices whose
// arguments mention one of the named slices.
func stmtSortsOneOf(s ast.Stmt, names map[string]bool) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && names[id.Name] {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// bodyChecker decides whether a loop body is order-insensitive. It
// records slices that received per-iteration appends; those are only
// acceptable if sorted afterwards (the caller checks).
type bodyChecker struct {
	info     *types.Info
	appended map[string]bool
}

func (c *bodyChecker) stmtsOK(list []ast.Stmt) bool {
	for _, s := range list {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *bodyChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignOK(s, nil)
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.BlockStmt:
		return c.stmtsOK(s.List)
	case *ast.IfStmt:
		return c.ifOK(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// assignOK accepts map-index writes, integer accumulation, local
// definitions, appends (recorded for the sort-after check), and — when
// guard is an order comparison mentioning the target — plain min/max
// assignments.
func (c *bodyChecker) assignOK(s *ast.AssignStmt, guard ast.Expr) bool {
	switch s.Tok {
	case token.DEFINE:
		return true
	case token.ASSIGN:
		for i, l := range s.Lhs {
			if isBlank(l) {
				continue
			}
			if ix, ok := l.(*ast.IndexExpr); ok {
				if t := c.info.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						continue
					}
				}
			}
			if i < len(s.Rhs) && isAppendTo(l, s.Rhs[i]) {
				if c.appended == nil {
					c.appended = make(map[string]bool)
				}
				c.appended[rootName(l)] = true
				continue
			}
			if guard != nil && guardMentions(guard, l) {
				continue // min/max update
			}
			return false
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		for _, l := range s.Lhs {
			t := c.info.TypeOf(l)
			if t == nil || !isExactInteger(t) {
				return false // float sums and string concat are ordered
			}
		}
		return true
	default:
		return false
	}
}

func (c *bodyChecker) ifOK(s *ast.IfStmt) bool {
	guard := orderComparison(s.Cond)
	for _, st := range s.Body.List {
		if as, ok := st.(*ast.AssignStmt); ok {
			if c.assignOK(as, guard) {
				continue
			}
			return false
		}
		if !c.stmtOK(st) {
			return false
		}
	}
	switch e := s.Else.(type) {
	case nil:
		return true
	case *ast.IfStmt:
		return c.ifOK(e)
	case *ast.BlockStmt:
		return c.stmtsOK(e.List)
	default:
		return false
	}
}

// orderComparison returns cond when it is (or contains only) <, >, <=,
// >= comparisons — the shape of a min/max guard — and nil otherwise.
func orderComparison(cond ast.Expr) ast.Expr {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return cond
	case token.LAND, token.LOR:
		if orderComparison(b.X) != nil && orderComparison(b.Y) != nil {
			return cond
		}
	}
	return nil
}

// guardMentions reports whether the comparison guard references the
// assignment target, i.e. the update is of the `if v > best { best = v }`
// family.
func guardMentions(guard ast.Expr, target ast.Expr) bool {
	name := rootName(target)
	if name == "" {
		return false
	}
	found := false
	ast.Inspect(guard, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func isAppendTo(lhs, rhs ast.Expr) bool {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	return rootName(call.Args[0]) == rootName(lhs) && rootName(lhs) != ""
}

func rootName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return rootName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return rootName(e.X)
	default:
		return ""
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isExactInteger reports whether t's core type is an integer — the only
// accumulator type whose += commutes bit-exactly.
func isExactInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
