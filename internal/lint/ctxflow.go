package lint

import (
	"go/ast"
	"go/types"

	"mcddvfs/internal/lint/analysis"
)

// CtxFlow locks in the experiment harness's cancellation contract
// (introduced with the fault-injection PR): work started by the
// harness must be cancellable end to end. Three rules, applied to
// every function in internal/experiment:
//
//  1. spawn: a function that starts goroutines must accept a
//     context.Context — fire-and-forget work cannot be cancelled;
//  2. dead context: a function that accepts a context and then does
//     real work (calls or loops) must use it — propagate it to a
//     callee or poll ctx.Err/ctx.Done;
//  3. poll in loops: inside a context-bearing function, every
//     outermost loop that calls non-builtin functions must reference
//     the context — either polling it or passing it to the callee.
//     Loops that only shuffle data (builtins, index math) are exempt:
//     they terminate promptly and have nothing to cancel.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "requires harness functions to accept, propagate, and poll context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), harnessPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxNames := contextParams(pass, fn)

	if len(ctxNames) == 0 {
		if spawnsGoroutine(fn.Body) {
			pass.Reportf(fn.Name.Pos(),
				"%s starts goroutines but has no context.Context parameter; spawned work must be cancellable", fn.Name.Name)
		}
		return
	}

	if !mentionsAny(fn.Body, ctxNames) {
		if doesWork(fn.Body) {
			pass.Reportf(fn.Name.Pos(),
				"%s accepts a context.Context but never propagates or polls it", fn.Name.Name)
		}
		return
	}

	for _, loop := range outermostLoops(fn.Body) {
		if loopCallsWork(pass, loop) && !mentionsAny(loop, ctxNames) {
			pass.Reportf(loop.Pos(),
				"loop in %s calls into work without polling or propagating its context; check ctx.Err() or pass ctx to the callee", fn.Name.Name)
		}
	}
}

// contextParams returns the names of fn's context.Context parameters
// (ignoring the blank identifier, which signals deliberate disuse).
func contextParams(pass *analysis.Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || types.TypeString(t, nil) != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out[name.Name] = true
			}
		}
	}
	return out
}

func spawnsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// doesWork reports whether body contains a loop or any function call —
// the threshold above which ignoring a context parameter stops being
// harmless.
func doesWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.CallExpr:
			found = true
		}
		return !found
	})
	return found
}

func mentionsAny(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// outermostLoops returns body's loops that are not nested inside
// another loop. Polling once per outer iteration is accepted, so only
// the outermost level carries the requirement.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					loops = append(loops, m.(ast.Stmt))
					return false // do not descend: nested loops are covered
				}
			}
			return true
		})
	}
	walk(body)
	return loops
}

// loopCallsWork reports whether the loop body calls any non-builtin
// function — i.e. performs work that could block or recurse, as
// opposed to pure data shuffling.
func loopCallsWork(pass *analysis.Pass, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		// Conversions are not calls.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
