package lint

import (
	"go/ast"
	"go/types"

	"mcddvfs/internal/lint/analysis"
)

// CtxFlow locks in the experiment harness's cancellation contract
// (introduced with the fault-injection PR): work started by the
// harness must be cancellable end to end. Four rules, applied to
// every function in the harness packages (internal/experiment and,
// since the service PR, internal/serve):
//
//  1. spawn: a function that starts goroutines must accept a
//     context.Context — fire-and-forget work cannot be cancelled;
//  2. dead context: a function that accepts a context and then does
//     real work (calls or loops) must use it — propagate it to a
//     callee or poll ctx.Err/ctx.Done;
//  3. poll in loops: inside a context-bearing function, every
//     outermost loop that calls non-builtin functions must reference
//     the context — either polling it or passing it to the callee.
//     Loops that only shuffle data (builtins, index math) are exempt:
//     they terminate promptly and have nothing to cancel.
//  4. handlers: an HTTP handler — a function taking an
//     http.ResponseWriter and a named *http.Request — that calls
//     context-accepting work must derive that context from the
//     request: r.Context() must appear, so a dropped connection
//     cancels the work it started. Naming the request parameter "_"
//     signals deliberate disuse (health probes, static catalogs).
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "requires harness functions to accept, propagate, and poll context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), harnessPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
			checkHandler(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxNames := contextParams(pass, fn)

	if len(ctxNames) == 0 {
		if spawnsGoroutine(fn.Body) {
			pass.Reportf(fn.Name.Pos(),
				"%s starts goroutines but has no context.Context parameter; spawned work must be cancellable", fn.Name.Name)
		}
		return
	}

	if !mentionsAny(fn.Body, ctxNames) {
		if doesWork(fn.Body) {
			pass.Reportf(fn.Name.Pos(),
				"%s accepts a context.Context but never propagates or polls it", fn.Name.Name)
		}
		return
	}

	for _, loop := range outermostLoops(fn.Body) {
		if loopCallsWork(pass, loop) && !mentionsAny(loop, ctxNames) {
			pass.Reportf(loop.Pos(),
				"loop in %s calls into work without polling or propagating its context; check ctx.Err() or pass ctx to the callee", fn.Name.Name)
		}
	}
}

// checkHandler enforces rule 4: a handler that hands work to anything
// context-aware must derive that context from the request, so a
// dropped connection cancels the work it started.
func checkHandler(pass *analysis.Pass, fn *ast.FuncDecl) {
	req := handlerRequestParam(pass, fn)
	if req == "" {
		return
	}
	if !callsContextualWork(pass, fn.Body) {
		return
	}
	if !callsRequestContext(fn.Body, req) {
		pass.Reportf(fn.Name.Pos(),
			"%s handles an *http.Request and calls context-aware work but never calls %s.Context(); derive the work context from the request", fn.Name.Name, req)
	}
}

// handlerRequestParam returns the name of fn's *http.Request parameter
// when fn is shaped like an HTTP handler (it also takes an
// http.ResponseWriter), or "" otherwise. A blank request name opts the
// handler out, mirroring how contextParams treats "_".
func handlerRequestParam(pass *analysis.Pass, fn *ast.FuncDecl) string {
	if fn.Type.Params == nil {
		return ""
	}
	hasWriter := false
	reqName := ""
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil {
			continue
		}
		switch types.TypeString(t, nil) {
		case "net/http.ResponseWriter":
			hasWriter = true
		case "*net/http.Request":
			for _, name := range field.Names {
				if name.Name != "_" {
					reqName = name.Name
				}
			}
		}
	}
	if !hasWriter {
		return ""
	}
	return reqName
}

// callsContextualWork reports whether body calls any function whose
// signature accepts a context.Context — the work rule 4 requires to be
// request-scoped. Handlers that only shuffle bytes (decode a body,
// write a static catalog) have nothing to scope and pass untouched.
func callsContextualWork(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		t := pass.TypeOf(call.Fun)
		if t == nil {
			return true
		}
		sig, ok := t.Underlying().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if types.TypeString(sig.Params().At(i).Type(), nil) == "context.Context" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callsRequestContext reports whether body contains a req.Context()
// call for the named request parameter.
func callsRequestContext(body *ast.BlockStmt, req string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == req && sel.Sel.Name == "Context" {
			found = true
			return false
		}
		return true
	})
	return found
}

// contextParams returns the names of fn's context.Context parameters
// (ignoring the blank identifier, which signals deliberate disuse).
func contextParams(pass *analysis.Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || types.TypeString(t, nil) != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				out[name.Name] = true
			}
		}
	}
	return out
}

func spawnsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// doesWork reports whether body contains a loop or any function call —
// the threshold above which ignoring a context parameter stops being
// harmless.
func doesWork(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.CallExpr:
			found = true
		}
		return !found
	})
	return found
}

func mentionsAny(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && names[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// outermostLoops returns body's loops that are not nested inside
// another loop. Polling once per outer iteration is accepted, so only
// the outermost level carries the requirement.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if m != n {
					loops = append(loops, m.(ast.Stmt))
					return false // do not descend: nested loops are covered
				}
			}
			return true
		})
	}
	walk(body)
	return loops
}

// loopCallsWork reports whether the loop body calls any non-builtin
// function — i.e. performs work that could block or recurse, as
// opposed to pure data shuffling.
func loopCallsWork(pass *analysis.Pass, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		// Conversions are not calls.
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		found = true
		return false
	})
	return found
}
