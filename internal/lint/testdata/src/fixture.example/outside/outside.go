// Package outside sits in none of the analyzer scopes: everything the
// suite bans elsewhere is legal here, so a clean run over this file
// verifies the scoping (no want comments anywhere).
package outside

import (
	"fmt"
	"math/rand"
	"time"
)

// Shuffle would trip detrange, detsource, and ctxflow in scoped
// packages.
func Shuffle(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	rand.Seed(time.Now().UnixNano())
	return fmt.Sprintf("%s %p %d", out, m, rand.Int())
}
