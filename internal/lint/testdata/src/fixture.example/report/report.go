// Package report models a renderer outside the scheme registry: any
// switch dispatch on Scheme values here is a shadow dispatch table the
// schemeswitch analyzer must flag. Direct comparisons stay legal.
package report

// Scheme mirrors the harness's scheme name type; the analyzer matches
// it structurally (named type Scheme over string).
type Scheme string

// The mirrored constants.
const (
	SchemeNone     Scheme = "none"
	SchemeAdaptive Scheme = "adaptive"
)

// Label dispatches per scheme with a tagged switch: the exact shape
// the registry refactor removed from the real tree.
func Label(s Scheme) string {
	switch s { // want schemeswitch `switch on Scheme .* outside the registry`
	case SchemeNone:
		return "baseline"
	case SchemeAdaptive:
		return "paper"
	default:
		return "?"
	}
}

// Order hides the same dispatch table in a tagless switch.
func Order(s Scheme) int {
	switch { // want schemeswitch `tagless switch comparing Scheme values`
	case s == SchemeNone:
		return 0
	case s == SchemeAdaptive:
		return 1
	default:
		return 99
	}
}

// IsBaseline special-cases one known scheme without enumerating the
// set — legal, and the idiom the real call sites use.
func IsBaseline(s Scheme) bool {
	return s == SchemeNone
}

// Kind switches on a plain string, not a Scheme: out of the
// analyzer's aim entirely.
func Kind(s string) string {
	switch s {
	case "none":
		return "baseline"
	default:
		return "controlled"
	}
}
