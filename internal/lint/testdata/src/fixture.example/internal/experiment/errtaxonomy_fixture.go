package experiment

import (
	"errors"
	"fmt"
)

// ErrInvalidSpec mirrors the real harness taxonomy sentinel.
var ErrInvalidSpec = errors.New("invalid run spec")

// Run exercises every boundary-error shape the analyzer classifies.
func Run(kind string) error {
	switch kind {
	case "":
		return errors.New("empty kind") // want errtaxonomy `raw errors.New`
	case "unknown":
		return fmt.Errorf("experiment: unknown kind %q", kind) // want errtaxonomy `without %w`
	case "bad":
		return fmt.Errorf("%w: kind %q", ErrInvalidSpec, kind) // ok: wraps the sentinel
	}
	return nil
}

// Delegate propagates an error built by a helper: trusted.
func Delegate(kind string) error {
	if kind == "" {
		return invalidKind(kind)
	}
	return nil
}

func invalidKind(kind string) error {
	return fmt.Errorf("%w: kind %q", ErrInvalidSpec, kind)
}
