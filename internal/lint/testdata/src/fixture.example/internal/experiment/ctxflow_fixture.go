// Package experiment is a lint fixture for the harness-contract
// analyzers (ctxflow, errtaxonomy): its import path ends in
// internal/experiment, where work must be cancellable and errors must
// carry the taxonomy sentinels.
package experiment

import "context"

func work(string) {}

// SpawnAll starts goroutines with no way to cancel them.
func SpawnAll(items []string) { // want ctxflow `starts goroutines`
	for _, it := range items {
		go work(it)
	}
}

// Sweep accepts a context and then ignores it entirely.
func Sweep(ctx context.Context, items []string) { // want ctxflow `never propagates or polls`
	for _, it := range items {
		work(it)
	}
}

// Process touches its context once up front but runs the whole sweep
// loop without polling it.
func Process(ctx context.Context, items []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, it := range items { // want ctxflow `without polling`
		work(it)
	}
	return nil
}

// Good polls per iteration: compliant.
func Good(ctx context.Context, items []string) error {
	for _, it := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(it)
	}
	return nil
}

// Render only shuffles in-memory data; loops without calls carry no
// polling requirement.
func Render(ctx context.Context, items []string) []string {
	if ctx.Err() != nil {
		return nil
	}
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}
