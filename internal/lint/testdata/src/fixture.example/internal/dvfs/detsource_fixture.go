// Package dvfs is a lint fixture for the detsource analyzer: its
// import path ends in internal/dvfs, a simulator package, where
// wall-clock readings, the global math/rand source, and pointer
// formatting are all banned nondeterminism sources.
package dvfs

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"time"
)

// Jitter reads the wall clock and the global random source.
func Jitter() time.Duration {
	start := time.Now()      // want detsource `wall clock`
	_ = rand.Float64()       // want detsource `global math/rand`
	return time.Since(start) // want detsource `wall clock`
}

// Reseed perturbs the shared global generator.
func Reseed(n int64) int {
	rand.Seed(n)        // want detsource `global math/rand`
	return rand.Intn(8) // want detsource `global math/rand`
}

// Label formats a map's address, which changes every process.
func Label(m map[string]int) string {
	return fmt.Sprintf("%p", m) // want detsource `memory address`
}

// Presets bakes a host directory listing into a simulator package.
func Presets(dir string) []string {
	names, _ := filepath.Glob(filepath.Join(dir, "*.preset")) // want detsource `filesystem enumeration filepath.Glob`
	return names
}

// Owned is fine: an owned generator seeded from configuration is the
// sanctioned idiom.
func Owned(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
