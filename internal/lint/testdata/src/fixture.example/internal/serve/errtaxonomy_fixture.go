package serve

import (
	"errors"
	"fmt"
)

// ErrOverloaded mirrors the real service taxonomy sentinel.
var ErrOverloaded = errors.New("service overloaded")

// Admit exercises the boundary-error shapes at the service edge.
func Admit(queued int) error {
	switch {
	case queued < 0:
		return errors.New("negative queue depth") // want errtaxonomy `raw errors.New`
	case queued > 1<<16:
		return fmt.Errorf("serve: queue depth %d too large", queued) // want errtaxonomy `without %w`
	case queued > 1<<10:
		return fmt.Errorf("%w: %d queued", ErrOverloaded, queued) // ok: wraps the sentinel
	}
	return nil
}

// Shed propagates an error built by a helper: trusted.
func Shed(queued int) error {
	if queued > 0 {
		return overloaded(queued)
	}
	return nil
}

func overloaded(queued int) error {
	return fmt.Errorf("%w: %d queued", ErrOverloaded, queued)
}
