package serve

import (
	"context"
	"net/http"
)

// render stands in for the harness entry point: context-aware work the
// handlers below hand off to.
func render(ctx context.Context, id string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return []byte(id), nil
}

// HandleDetached starts context-aware work from a background context,
// so a dropped connection can never cancel it.
func HandleDetached(w http.ResponseWriter, r *http.Request) { // want ctxflow `never calls r\.Context\(\)`
	body, err := render(context.Background(), r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Write(body) //nolint:errcheck
}

// HandleRender scopes the work to the request: compliant.
func HandleRender(w http.ResponseWriter, r *http.Request) {
	body, err := render(r.Context(), r.URL.Path)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Write(body) //nolint:errcheck
}

// HandleStatic serves a canned payload; the blank request name records
// that nothing here is request-scoped.
func HandleStatic(w http.ResponseWriter, _ *http.Request) {
	w.Write([]byte("ok")) //nolint:errcheck
}

// HandleEcho reads the request but starts no cancellable work, so rule
// 4 leaves it alone.
func HandleEcho(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte(r.URL.Path)) //nolint:errcheck
}
