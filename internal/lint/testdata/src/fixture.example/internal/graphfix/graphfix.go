// Package graphfix exercises the call-graph builder's corner cases —
// mutual recursion, method values, closures, interface fan-out — for
// the golden graph-dump test, which pins the exact edges these shapes
// produce.
package graphfix

// Ping and Pong are mutually recursive: the builder must terminate and
// record both edges.
func Ping(n int) int {
	if n <= 0 {
		return 0
	}
	return Pong(n - 1)
}

// Pong calls back into Ping.
func Pong(n int) int { return Ping(n - 1) }

// Doer is dispatched through below; both implementations must be
// conservatively reached from the one call site.
type Doer interface {
	Do() int
}

// Alpha implements Doer with a value receiver.
type Alpha struct{}

// Do is Alpha's implementation.
func (Alpha) Do() int { return 1 }

// Beta implements Doer with a pointer receiver.
type Beta struct{ n int }

// Do is Beta's implementation.
func (b *Beta) Do() int { return b.n }

// Dispatch calls through the interface: one call site, two iface
// edges.
func Dispatch(d Doer) int { return d.Do() }

// MethodValue references a method without calling it: a reference is
// still an edge.
func MethodValue(a Alpha) func() int {
	return a.Do
}

// Closure buries a call inside a function literal: the edge is
// attributed to Closure itself.
func Closure() int {
	f := func() int { return Ping(3) }
	return f()
}
