// Package scheme mirrors the real registry package: the one place
// where per-scheme dispatch is sanctioned, exempted from schemeswitch
// by import-path suffix (no want comments here).
package scheme

// Scheme mirrors the harness's scheme name type.
type Scheme string

// Legal registry-internal dispatch: building a descriptor table may
// enumerate schemes freely.
func DisplayOrder(s Scheme) int {
	switch s {
	case "none":
		return 0
	case "adaptive":
		return 10
	default:
		return 99
	}
}
