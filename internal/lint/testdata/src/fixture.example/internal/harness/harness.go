// Package harness is a cachekey fixture: an options package — it
// declares Options and cacheKey — whose hash misses a field the run
// path reads.
package harness

import (
	"crypto/sha256"
	"fmt"
	"io"
)

// Options configures a fixture run.
type Options struct {
	// Width is hashed directly by cacheKey: covered, and given a
	// harness default below.
	Width int
	// Rounds is hashed through a helper the key calls: coverage is
	// transitive over the call graph.
	Rounds int
	// Depth is read by RunOne but missing from the hash — the
	// stale-cache bug class this analyzer exists for.
	Depth int // want cachekey `Options.Depth is read on the run path \(harness.go:\d+\) but never enters the cacheKey hash`
	// Label names the output, not the computation; the escape hatch on
	// the declaration documents the deliberate exclusion. No diagnostic.
	//lint:allow cachekey names the output file, not the computation
	Label string
	// Spare is never read on the run path: no diagnostic.
	Spare int
}

// DefaultOptions gives Width a harness default.
func DefaultOptions() Options { return Options{Width: 4} }

func cacheKey(opt Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "w=%d;", opt.Width)
	hashRounds(h, opt)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// hashRounds proves coverage is computed over everything cacheKey
// reaches, not just its own body.
func hashRounds(w io.Writer, opt Options) {
	fmt.Fprintf(w, "r=%d;", opt.Rounds)
}

// RunOne is the exported run-path entry point.
func RunOne(opt Options) string {
	key := cacheKey(opt)
	sum := 0
	for i := 0; i < opt.Rounds; i++ {
		sum += opt.Width * opt.Depth
	}
	return fmt.Sprintf("%s/%s=%d", opt.Label, key, sum)
}
