package mcd

import "fixture.example/internal/clock"

// StepDirectly polls a domain edge-by-edge from outside the engine:
// exactly the per-cycle pattern engineowned exists to catch.
func StepDirectly(d *clock.Domain) uint64 {
	return d.Advance() // want engineowned `outside the engine`
}

// HaltDirectly stops a domain behind the engine's back, leaving the
// engine's cached edge time pointing at a dead clock.
func HaltDirectly(d *clock.Domain) {
	d.Stop() // want engineowned `outside the engine`
}

// StepViaEngine is the sanctioned idiom: register the domain and let
// the engine advance it. No diagnostic.
func StepViaEngine(e *clock.Engine, d *clock.Domain) {
	e.Register(d)
	e.Advance()
}

// Stop on an unrelated local type must not trip the analyzer: only
// clock.Domain's methods are engine-owned.
type watchdog struct{ armed bool }

func (w *watchdog) Stop()    { w.armed = false }
func (w *watchdog) Advance() {}

// DisarmWatchdog exercises the same method names on a non-Domain
// receiver. No diagnostic.
func DisarmWatchdog(w *watchdog) {
	w.Stop()
	w.Advance()
}

// BootstrapDomain is order-sensitive setup that genuinely needs one
// direct edge before the engine takes ownership; the escape hatch must
// silence the diagnostic (no want here).
func BootstrapDomain(d *clock.Domain) uint64 {
	//lint:allow engineowned fixture demonstrates the escape hatch
	return d.Advance()
}
