// Package mcd is a lint fixture. Its import path ends in
// internal/mcd, so the simulator-scope analyzers (detrange,
// detsource) apply to it exactly as they do to the real simulator.
package mcd

import (
	"fmt"
	"sort"
)

// RenderStats appends formatted rows in map order and never sorts
// them: the output differs run to run.
func RenderStats(m map[string]int) []string {
	var out []string
	for k, v := range m { // want detrange `never sorted`
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Joined concatenates strings in map order: order-dependent.
func Joined(m map[string]int) string {
	s := ""
	for k := range m { // want detrange `order-dependent`
		s += k
	}
	return s
}

// MeanValue accumulates floats in map order: float addition does not
// associate, so even a "sum" is order-dependent bit-for-bit.
func MeanValue(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want detrange `order-dependent`
		sum += v
	}
	return sum / float64(len(m))
}

// Total is fine: integer accumulation commutes exactly.
func Total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// Invert is fine: per-iteration writes into another map commute.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// MaxValue is fine: min/max tracking guarded by an order comparison.
func MaxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// SortedKeys is fine: the collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Fingerprint is order-dependent but deliberately waived: the escape
// hatch must silence the diagnostic (no want here).
func Fingerprint(m map[string]int) int {
	h := 1
	//lint:allow detrange fixture demonstrates the escape hatch
	for k, v := range m {
		h = h*31 + len(k) + v
	}
	return h
}
