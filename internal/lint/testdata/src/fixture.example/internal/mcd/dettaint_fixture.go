package mcd

import "fixture.example/internal/stats"

// RunSampled is a simulation entry point that reaches wall-clock time
// through two call hops and an interface; the diagnostic lands on the
// source in internal/stats, carrying this path.
func RunSampled() int64 {
	return stats.Hop(stats.WallSampler{})
}

// RunFromDisk drags host filesystem state into the simulator through a
// helper in an unwatched package.
func RunFromDisk() []string {
	return stats.ProfileNames("profiles")
}

// drainEither returns whichever channel is ready first: scheduler
// nondeterminism inside the simulator itself, and a source class no
// per-package analyzer owns.
func drainEither(a, b chan int) int {
	select { // want dettaint `select with multiple communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
