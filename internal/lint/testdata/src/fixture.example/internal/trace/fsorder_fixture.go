// Package trace is a lint fixture for the filesystem-enumeration ban
// in the corpus packages: its import path ends in internal/trace,
// which is both in detsource's fsListPackages scope (direct listings
// are detsource's findings here) and a dettaint root (everything it
// calls must be deterministic). Corpus directory listing must go
// through the sorted deterministic helper in internal/detfs.
package trace

import (
	"os"

	"fixture.example/internal/detfs"
)

// CorpusNames lists the corpus directory directly: host listing order
// leaks into corpus resolution.
func CorpusNames(dir string) []string {
	ents, err := os.ReadDir(dir) // want detsource `filesystem enumeration os.ReadDir`
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// StrayMembers enumerates through an open handle: the same host-order
// dependence in method-call shape.
func StrayMembers(dir string) []string {
	f, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer f.Close()
	names, _ := f.Readdirnames(-1) // want detsource `filesystem enumeration \(os.File\).Readdirnames`
	return names
}

// VerifiedNames goes through the sanctioned sorted helper: no
// diagnostic here, and the helper's audited //lint:allow waiver is
// what absorbs the underlying dettaint finding.
func VerifiedNames(dir string) ([]string, error) {
	return detfs.SortedNames(dir)
}
