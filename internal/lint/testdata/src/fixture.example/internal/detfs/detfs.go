// Package detfs mirrors the real internal/detfs helper: the one
// sanctioned directory-enumeration site. It sits outside the
// fsListPackages scope, so the listing here is dettaint's finding —
// reachable from the internal/trace roots through VerifiedNames — and
// the audited waiver on the os.ReadDir line is what keeps the fixture
// clean. Removing the waiver must make dettaint fire.
package detfs

import (
	"os"
	"sort"
)

// SortedNames returns dir's entry names in ascending lexical order — a
// listing with no host-order dependence left in it.
func SortedNames(dir string) ([]string, error) {
	//lint:allow dettaint listing is sorted before use, removing the host-order dependence
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}
