// Package clock is a lint fixture. Its import path ends in
// internal/clock, so it stands in for the real clock package: the
// engineowned analyzer exempts it (the engine lives here and is the
// sanctioned caller of Domain.Advance/Stop), and other packages that
// call these methods directly get flagged.
package clock

// Domain is a minimal stand-in for the real clock.Domain.
type Domain struct {
	now     uint64
	stopped bool
}

// Advance moves the domain's clock to its next edge. Outside this
// package only the engine may call it.
func (d *Domain) Advance() uint64 {
	d.now++
	return d.now
}

// Stop halts the domain's clock. Outside this package only the engine
// may call it.
func (d *Domain) Stop() {
	d.stopped = true
}

// Engine owns registered domains; advancing through it is the
// sanctioned idiom and must stay diagnostic-free in-package.
type Engine struct {
	domains []*Domain
}

// Register hands a domain to the engine.
func (e *Engine) Register(d *Domain) {
	e.domains = append(e.domains, d)
}

// Advance steps every registered domain: legal, it lives in
// internal/clock.
func (e *Engine) Advance() {
	for _, d := range e.domains {
		d.Advance()
	}
}

// Shutdown stops every registered domain: also legal here.
func (e *Engine) Shutdown() {
	for _, d := range e.domains {
		d.Stop()
	}
}
