// Package servekey is a cachekey fixture for the serve-side rules: the
// wire request must be hashed whole, may strip only fields that stay
// out of the result hash, and must normalize harness defaults into the
// request.
package servekey

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"fixture.example/internal/harness"
)

// RenderRequest is the wire form of a fixture spec.
type RenderRequest struct {
	// Width flows into harness Options.Width — hash-covered and
	// defaulted — but validateSpec never folds the default in: an
	// omitted Width and an explicit default-value Width get two cache
	// entries for one result.
	Width int // want cachekey `RenderRequest.Width flows into Options.Width, which has a harness default; normalize the default into the request in validateSpec`
	// Rounds flows into the hash-covered Options.Rounds; key() below
	// wrongly strips it.
	Rounds int
	// Depth flows only into the uncovered Options.Depth, so neither
	// stripping nor skipping normalization would matter. No diagnostic.
	Depth int
	// TimeoutMS bounds the attempt and flows into no Options field;
	// key() strips it legitimately. No diagnostic.
	TimeoutMS int
}

type spec struct {
	req RenderRequest
}

func (s *spec) key() string {
	id := s.req
	id.Rounds = 0 // want cachekey `key\(\) strips RenderRequest.Rounds, but it flows into Options.Rounds, which the result hash covers`
	id.TimeoutMS = 0
	b, _ := json.Marshal(id)
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

func (s *spec) options() harness.Options {
	return harness.Options{
		Width:  s.req.Width,
		Rounds: s.req.Rounds,
		Depth:  s.req.Depth,
	}
}

func (s *spec) validateSpec() error {
	if s.req.Depth < 0 {
		return fmt.Errorf("depth must be non-negative")
	}
	return nil
}
