// Package chipkey is a cachekey fixture for the chip-era key split: an
// options package whose cacheKey branches to a second hash function for
// chip-shaped options, the shape the multi-core chip PR gave the real
// harness. Coverage is reachability-based from cacheKey, so fields
// hashed only on the chip branch are still covered — and a chip field
// the run path reads but neither branch hashes is the stale-cache bug.
package chipkey

import (
	"crypto/sha256"
	"fmt"
)

// Options configures a fixture run, single-core or chip.
type Options struct {
	// Width is hashed by both key branches: covered.
	Width int
	// Cores selects chip mode; read by chipMode (reachable from
	// cacheKey) and hashed by chipKey. Covered twice over.
	Cores int
	// PowerCapW is hashed only on the chip branch — reachability-based
	// coverage means one branch is enough. No diagnostic.
	PowerCapW float64
	// GovernorGain is read by RunChip but missing from both hash
	// branches — the chip-era instance of the stale-cache bug class.
	GovernorGain float64 // want cachekey `Options.GovernorGain is read on the run path \(chipkey.go:\d+\) but never enters the cacheKey hash`
}

func (o Options) chipMode() bool { return o.Cores > 1 || o.PowerCapW > 0 }

func cacheKey(opt Options) string {
	if opt.chipMode() {
		return chipKey(opt)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(fmt.Sprintf("w=%d;", opt.Width))))
}

// chipKey hashes the chip shape on top of the single-core inputs; it is
// reachable from cacheKey, so everything it reads counts as covered.
func chipKey(opt Options) string {
	blob := fmt.Sprintf("w=%d;n=%d;cap=%g;", opt.Width, opt.Cores, opt.PowerCapW)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(blob)))
}

// RunChip is the exported run-path entry point: it consumes the chip
// fields, including the unhashed gain.
func RunChip(opt Options) string {
	key := cacheKey(opt)
	sum := 0.0
	for i := 0; i < opt.Cores; i++ {
		sum += opt.GovernorGain * (opt.PowerCapW / float64(opt.Width+1))
	}
	return fmt.Sprintf("%s=%g", key, sum)
}
