// Package stats is a lint fixture for dettaint: it sits outside every
// per-package analyzer scope, so the nondeterminism buried here is
// invisible to detsource/detrange and only whole-program reachability
// can connect it to the simulator.
package stats

import (
	"os"
	"time"
)

// Sampler abstracts a time source; the call through it forces the
// taint path to survive a conservative interface fan-out.
type Sampler interface {
	Sample() int64
}

// Hop dispatches through the interface.
func Hop(s Sampler) int64 {
	return s.Sample()
}

// WallSampler is the nondeterministic implementation.
type WallSampler struct{}

// Sample reaches the wall clock through one more hop.
func (WallSampler) Sample() int64 { return nowMillis() }

// nowMillis is the buried source: two call hops and an interface away
// from the simulation entry point that reaches it. The diagnostic must
// carry that full path.
func nowMillis() int64 {
	return time.Now().UnixMilli() // want dettaint `wall clock time.Now is reachable from the simulation entry points via mcd.RunSampled -> stats.Hop -> \[iface\] stats.\(WallSampler\).Sample -> stats.nowMillis`
}

// ProfileNames bakes host directory contents into simulation input.
func ProfileNames(dir string) []string {
	ents, err := os.ReadDir(dir) // want dettaint `filesystem enumeration os.ReadDir reads host state is reachable from the simulation entry points via mcd.RunFromDisk -> stats.ProfileNames`
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(ents))
	for _, e := range ents {
		out = append(out, e.Name())
	}
	return out
}

// LocalOnly also reads the wall clock but is never reachable from a
// simulation entry point: reachability, not mere presence, is what
// dettaint reports. No diagnostic.
func LocalOnly() int64 {
	return time.Now().UnixNano()
}
