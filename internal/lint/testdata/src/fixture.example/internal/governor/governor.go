// Package governor mirrors the real chip-governor registry: since the
// multi-core chip PR its functions are dettaint roots — a governor's
// Apportion runs inside the simulation loop at every epoch barrier, so
// any nondeterminism it reaches lands in chip results.
package governor

// Apportion splits a frequency allowance across cores in proportion to
// demand: pure arithmetic over its inputs, deterministic. No
// diagnostic.
func Apportion(allowMHz float64, powerW []float64) []float64 {
	total := 0.0
	for _, w := range powerW {
		total += w
	}
	out := make([]float64, len(powerW))
	for i, w := range powerW {
		share := 1.0 / float64(len(powerW))
		if total > 0 {
			share = w / total
		}
		out[i] = allowMHz * share
	}
	return out
}

// firstReading returns whichever power meter responds first: scheduler
// nondeterminism inside a root package, caught without any call hops.
func firstReading(a, b chan float64) float64 {
	select { // want dettaint `select with multiple communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
