package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"mcddvfs/internal/lint/analysis"
)

// CacheKey proves the content-addressed cache's completeness contract:
// every field of the harness Options struct that the run path actually
// consumes must either be written into the cache-key hash or carry an
// explicit //lint:allow cachekey exemption stating why it cannot
// change a result. A field that is read by the simulation but absent
// from the hash is the stale-cache bug class — two different
// computations sharing one cached result.
//
// The analyzer activates on two package shapes, matched by convention:
//
//   - An options package: declares `type Options struct` and a
//     function `cacheKey`. The run path is every function reachable
//     (via the whole-program call graph) from the package's exported
//     Run* entry points; the hash covers every Options field read by
//     cacheKey or anything cacheKey calls.
//   - A serve package: declares `type RenderRequest struct` (the wire
//     form of a spec). Its `key()` must content-address the request by
//     hashing the struct itself — hand-built keys silently drop new
//     fields — and may only strip fields that do not flow into a
//     hash-covered Options field. And every request field that flows
//     into a hash-covered Options field with a harness default must be
//     normalized in `validateSpec`, so an omitted field and its
//     explicit default are one spec: one flight key, one cache entry
//     (the wire-default bug class PR 7 fixed by hand).
var CacheKey = &analysis.Analyzer{
	Name:       "cachekey",
	Doc:        "proves every run-path Options field is hashed into the cache key, and the serve layer keys/normalizes the same set",
	RunProgram: runCacheKey,
}

func runCacheKey(pass *analysis.ProgramPass) error {
	g := buildGraph(pass.Targets, pass.Fset)
	var harnesses []*harnessCoverage
	for _, t := range pass.Targets {
		if h := analyzeHarness(pass, g, t); h != nil {
			harnesses = append(harnesses, h)
		}
	}
	for _, t := range pass.Targets {
		analyzeServe(pass, g, t, harnesses)
	}
	return nil
}

// harnessCoverage is what one options package proved about itself.
type harnessCoverage struct {
	pkgPath   string
	covered   map[string]bool // Options fields the cacheKey hash reads
	defaulted map[string]bool // Options fields given defaults on the run path
}

// structNamed returns the named struct type declared as `name` in
// scope, or nil.
func structNamed(pkg *types.Package, name string) (*types.Named, *types.Struct) {
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// fieldOfStruct reports whether sel selects a field of the named
// struct (matched by type name and package path, so it holds whether
// the struct is seen from source or from export data), returning the
// field's name.
func fieldOfStruct(info *types.Info, sel *ast.SelectorExpr, structName, pkgPath string) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Name() != structName || named.Obj().Pkg().Path() != pkgPath {
		return "", false
	}
	return s.Obj().Name(), true
}

// fieldMentions records every mention (read or write) of the given
// struct's fields inside the nodes' bodies, with the first position.
func fieldMentions(nodes []*graphNode, structName, pkgPath string) map[string]token.Pos {
	out := make(map[string]token.Pos)
	for _, n := range nodes {
		if n.decl.Body == nil {
			continue
		}
		info := n.target.Info
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := fieldOfStruct(info, sel, structName, pkgPath); ok {
				if p, seen := out[name]; !seen || sel.Sel.Pos() < p {
					out[name] = sel.Sel.Pos()
				}
			}
			return true
		})
	}
	return out
}

// reachedNodes flattens a reachability map into declaration order.
func reachedNodes(g *progGraph, parent map[*graphNode]parentEdge) []*graphNode {
	var out []*graphNode
	for _, n := range g.order {
		if _, ok := parent[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// analyzeHarness checks one candidate options package and reports
// run-path fields missing from the hash. Returns nil when t is not an
// options package.
func analyzeHarness(pass *analysis.ProgramPass, g *progGraph, t *analysis.Target) *harnessCoverage {
	named, st := structNamed(t.Pkg, "Options")
	if named == nil {
		return nil
	}
	keyFn, ok := t.Pkg.Scope().Lookup("cacheKey").(*types.Func)
	if !ok {
		return nil
	}
	keyNode, ok := g.nodes[symbolKey(keyFn)]
	if !ok {
		return nil
	}
	pkgPath := t.Pkg.Path()

	var runRoots []*graphNode
	var defaultNodes []*graphNode
	for _, n := range g.order {
		if n.target != t {
			continue
		}
		name := n.fn.Name()
		if n.fn.Exported() && len(name) >= 3 && name[:3] == "Run" {
			runRoots = append(runRoots, n)
		}
		if name == "DefaultOptions" || name == "withDefaults" {
			defaultNodes = append(defaultNodes, n)
		}
	}

	coveredUse := fieldMentions(reachedNodes(g, reachableFrom([]*graphNode{keyNode})), "Options", pkgPath)
	usedAt := fieldMentions(reachedNodes(g, reachableFrom(runRoots)), "Options", pkgPath)

	h := &harnessCoverage{
		pkgPath:   pkgPath,
		covered:   make(map[string]bool, len(coveredUse)),
		defaulted: make(map[string]bool),
	}
	for name := range coveredUse {
		h.covered[name] = true
	}
	// Defaults: fields assigned in DefaultOptions/withDefaults, whether
	// via selector assignment or an Options composite literal.
	defMentions := fieldMentions(defaultNodes, "Options", pkgPath)
	for name := range defMentions {
		h.defaulted[name] = true
	}
	for _, n := range defaultNodes {
		for name := range optionsLiteralKeys(n, named) {
			h.defaulted[name] = true
		}
	}

	// Report, in field-declaration order, every run-path field the hash
	// misses. The //lint:allow cachekey escape hatch on the field's
	// declaration documents deliberate exclusions (selection knobs,
	// attempt bounds, storage locations).
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		pos, used := usedAt[f.Name()]
		if !used || h.covered[f.Name()] {
			continue
		}
		p := pass.Fset.Position(pos)
		pass.Reportf(f.Pos(),
			"Options.%s is read on the run path (%s:%d) but never enters the cacheKey hash; hash it or exempt it with //lint:allow cachekey <reason>",
			f.Name(), filepath.Base(p.Filename), p.Line)
	}
	return h
}

// optionsLiteralKeys returns the field names keyed in any composite
// literal of the given Options type inside n's body.
func optionsLiteralKeys(n *graphNode, named *types.Named) map[string]bool {
	out := make(map[string]bool)
	if n.decl.Body == nil {
		return out
	}
	info := n.target.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		lit, ok := node.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := info.TypeOf(lit)
		if t == nil || !sameNamed(t, named.Obj().Name(), named.Obj().Pkg().Path()) {
			return true
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// sameNamed reports whether t (after deref) is the named type with the
// given name and package path, across type-checking universes.
func sameNamed(t types.Type, name, pkgPath string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == name && named.Obj().Pkg().Path() == pkgPath
}

// analyzeServe checks one candidate serve package against the options
// packages' coverage results.
func analyzeServe(pass *analysis.ProgramPass, g *progGraph, t *analysis.Target, harnesses []*harnessCoverage) {
	reqNamed, reqSt := structNamed(t.Pkg, "RenderRequest")
	if reqNamed == nil {
		return
	}
	pkgPath := t.Pkg.Path()

	var keyNode, optionsNode, validateNode *graphNode
	for _, n := range g.order {
		if n.target != t {
			continue
		}
		switch n.fn.Name() {
		case "key":
			keyNode = n
		case "options":
			optionsNode = n
		case "validateSpec":
			validateNode = n
		}
	}
	if keyNode == nil {
		pass.Reportf(reqNamed.Obj().Pos(),
			"RenderRequest has no key() method; the request cannot be content-addressed")
		return
	}

	// key() must hash the request struct itself, and may strip fields
	// only by assignment (recorded below and checked against coverage).
	marshalsWhole := false
	zeroed := make(map[string]token.Pos)
	info := keyNode.target.Info
	ast.Inspect(keyNode.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "encoding/json" && fn.Name() == "Marshal" &&
					len(node.Args) == 1 {
					if at := info.TypeOf(node.Args[0]); at != nil && sameNamed(at, "RenderRequest", pkgPath) {
						marshalsWhole = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, l := range node.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					if name, ok := fieldOfStruct(info, sel, "RenderRequest", pkgPath); ok {
						zeroed[name] = sel.Sel.Pos()
					}
				}
			}
		}
		return true
	})
	if !marshalsWhole {
		pass.Reportf(keyNode.decl.Pos(),
			"key() never hashes the RenderRequest struct itself (json.Marshal of a RenderRequest value); a hand-built key silently drops every field added later")
	}

	// Map request fields to the Options fields they flow into.
	flows := requestFlows(optionsNode, pkgPath, harnesses)

	// Fields normalized (assigned) in validateSpec.
	normalized := make(map[string]bool)
	if validateNode != nil {
		vinfo := validateNode.target.Info
		ast.Inspect(validateNode.decl.Body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, l := range as.Lhs {
				if sel, ok := l.(*ast.SelectorExpr); ok {
					if name, ok := fieldOfStruct(vinfo, sel, "RenderRequest", pkgPath); ok {
						normalized[name] = true
					}
				}
			}
			return true
		})
	}

	// Rule 1: a stripped field must not flow into a hash-covered
	// Options field — otherwise requests that differ in it share one
	// key for different results.
	var zeroedNames []string
	for name := range zeroed {
		zeroedNames = append(zeroedNames, name)
	}
	sort.Strings(zeroedNames)
	for _, name := range zeroedNames {
		for _, fl := range flows[name] {
			if fl.harness.covered[fl.optField] {
				pass.Reportf(zeroed[name],
					"key() strips RenderRequest.%s, but it flows into Options.%s, which the result hash covers; requests differing in %s would share one flight key for different results",
					name, fl.optField, name)
			}
		}
	}

	// Rule 2: a field that flows into a hash-covered, harness-defaulted
	// Options field must be normalized in validateSpec, so an omitted
	// field and its explicit default are one key.
	for i := 0; i < reqSt.NumFields(); i++ {
		f := reqSt.Field(i)
		if _, stripped := zeroed[f.Name()]; stripped || normalized[f.Name()] {
			continue
		}
		for _, fl := range flows[f.Name()] {
			if fl.harness.covered[fl.optField] && fl.harness.defaulted[fl.optField] {
				pass.Reportf(f.Pos(),
					"RenderRequest.%s flows into Options.%s, which has a harness default; normalize the default into the request in validateSpec so an omitted field and its explicit default share one key",
					f.Name(), fl.optField)
				break
			}
		}
	}
}

// fieldFlow says one request field feeds one Options field of one
// harness.
type fieldFlow struct {
	harness  *harnessCoverage
	optField string
}

// requestFlows extracts, from the serve package's options() body, the
// RenderRequest field → Options field dataflow: composite-literal
// entries (`Instructions: s.req.Instructions`) and field assignments
// (`opt.Faults = faults.Intensity(s.req.FaultIntensity, ...)`).
func requestFlows(optionsNode *graphNode, reqPkgPath string, harnesses []*harnessCoverage) map[string][]fieldFlow {
	flows := make(map[string][]fieldFlow)
	if optionsNode == nil || optionsNode.decl.Body == nil {
		return flows
	}
	info := optionsNode.target.Info
	harnessFor := func(t types.Type) *harnessCoverage {
		for _, h := range harnesses {
			if sameNamed(t, "Options", h.pkgPath) {
				return h
			}
		}
		return nil
	}
	addFlows := func(h *harnessCoverage, optField string, rhs ast.Expr) {
		ast.Inspect(rhs, func(node ast.Node) bool {
			sel, ok := node.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := fieldOfStruct(info, sel, "RenderRequest", reqPkgPath); ok {
				flows[name] = append(flows[name], fieldFlow{harness: h, optField: optField})
			}
			return true
		})
	}
	ast.Inspect(optionsNode.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CompositeLit:
			t := info.TypeOf(node)
			if t == nil {
				return true
			}
			h := harnessFor(t)
			if h == nil {
				return true
			}
			for _, elt := range node.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					addFlows(h, id.Name, kv.Value)
				}
			}
		case *ast.AssignStmt:
			for i, l := range node.Lhs {
				sel, ok := l.(*ast.SelectorExpr)
				if !ok || i >= len(node.Rhs) {
					continue
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				h := harnessFor(s.Recv())
				if h == nil {
					continue
				}
				addFlows(h, s.Obj().Name(), node.Rhs[i])
			}
		}
		return true
	})
	return flows
}
