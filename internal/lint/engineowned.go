package lint

import (
	"go/ast"
	"go/types"

	"mcddvfs/internal/lint/analysis"
)

// EngineOwned forbids advancing or stopping a clock.Domain directly
// from simulator code outside internal/clock. The event engine owns
// registered domains: it caches every domain's next-edge time in a
// flat slice so edge arbitration is a scan instead of a pointer chase,
// and that cache is only coherent because all clock mutation flows
// through Engine.Advance / Engine.IdleAdvance. A direct
// Domain.Advance call is also the signature of per-cycle polling — the
// cycle-stepping pattern the event core replaced — so new code paths
// that bypass the engine are caught at lint time rather than as a
// stale-cache heisenbug or a silent throughput regression.
//
// internal/clock itself is exempt (the engine and the plain scheduler
// are the sanctioned callers), as is everything outside the simulator
// scope.
var EngineOwned = &analysis.Analyzer{
	Name: "engineowned",
	Doc:  "forbids direct clock.Domain.Advance/Stop (per-cycle polling) outside the engine package",
	Run:  runEngineOwned,
}

// domainOwnedMethods are the clock-mutating Domain methods reserved to
// the engine.
var domainOwnedMethods = map[string]bool{"Advance": true, "Stop": true}

func runEngineOwned(pass *analysis.Pass) error {
	pkg := pass.Pkg.Path()
	if !inScope(pkg, simPackages) || inScope(pkg, []string{"internal/clock"}) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !domainOwnedMethods[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Name() != "Domain" {
				return true
			}
			if owner := named.Obj().Pkg(); owner == nil || !inScope(owner.Path(), []string{"internal/clock"}) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"clock.Domain.%s called outside the engine; engine-owned domains advance through clock.Engine (Advance/IdleAdvance) so cached edge times stay coherent",
				fn.Name())
			return true
		})
	}
	return nil
}
