package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"mcddvfs/internal/lint/analysis"
)

// DetSource forbids nondeterminism *sources* in the simulator
// packages. Simulated time advances from the clock model and every
// random stream is seeded from Config (the contract stated at the top
// of internal/mcd/processor.go), so:
//
//   - time.Now / time.Since / time.Until are banned — wall-clock
//     readings differ between runs;
//   - package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Seed, ...) are banned — the global source is shared,
//     lock-contended, and unseeded by config. Constructing an owned
//     generator (rand.New, rand.NewSource, rand.NewZipf, ...) stays
//     legal: a *rand.Rand seeded from Config is the sanctioned idiom;
//   - %p in format strings is banned — addresses change with every
//     process and ASLR makes them useless even as stable labels.
//
// In the wider fsListPackages scope (the trace corpus and experiment
// harness on top of the simulator), filesystem enumeration —
// os.ReadDir, filepath.Walk/WalkDir/Glob, and the (os.File)
// Readdir/Readdirnames/ReadDir methods — is banned too: listing order
// is host state, and corpus resolution feeds the bit-identical-output
// contract. Code that genuinely needs a listing goes through
// internal/detfs.SortedNames, the one audited site.
var DetSource = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbids wall-clock, global-rand, pointer-formatting, and filesystem-enumeration nondeterminism sources in simulator packages",
	Run:  runDetSource,
}

// wallClockFuncs are the banned time-package readings.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand (v1 and v2) package functions
// that build an owned generator rather than using the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// fsEnumMethods are the directory-enumeration methods on os.File; the
// one method family detsource bans (all other method calls are fine).
var fsEnumMethods = map[string]bool{"Readdir": true, "Readdirnames": true, "ReadDir": true}

// fsEnumFix is the remediation every filesystem-enumeration diagnostic
// points at.
const fsEnumFix = "depends on host directory order; list through internal/detfs.SortedNames"

func runDetSource(pass *analysis.Pass) error {
	sim := inScope(pass.Pkg.Path(), simPackages)
	fsScope := inScope(pass.Pkg.Path(), fsListPackages)
	if !sim && !fsScope {
		return nil
	}

	// Identifier uses: wall clock and global rand. Info.Uses is a map,
	// so collect first and let the driver's position sort keep the
	// final diagnostics deterministic.
	type use struct {
		id  *ast.Ident
		msg string
	}
	var uses []use
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if sig.Recv() != nil {
			// Methods (e.g. (*rand.Rand).Float64) are fine — except the
			// directory-enumeration family on an open os.File.
			if fsScope && fn.Pkg().Path() == "os" && fsEnumMethods[fn.Name()] {
				uses = append(uses, use{id, "filesystem enumeration (os.File)." + fn.Name() + " " + fsEnumFix})
			}
			continue
		}
		if sim {
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					uses = append(uses, use{id, "wall clock time." + fn.Name() + " in a simulator package; simulated time must come from the clock model"})
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					uses = append(uses, use{id, "global math/rand." + fn.Name() + " in a simulator package; use a *rand.Rand seeded from Config"})
				}
			}
		}
		if fsScope {
			switch fn.Pkg().Path() {
			case "os":
				if fn.Name() == "ReadDir" {
					uses = append(uses, use{id, "filesystem enumeration os.ReadDir " + fsEnumFix})
				}
			case "path/filepath":
				if fn.Name() == "Walk" || fn.Name() == "WalkDir" || fn.Name() == "Glob" {
					uses = append(uses, use{id, "filesystem enumeration filepath." + fn.Name() + " " + fsEnumFix})
				}
			}
		}
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	for _, u := range uses {
		pass.Reportf(u.id.Pos(), "%s", u.msg)
	}

	// Format strings: %p leaks addresses into output. Simulator scope
	// only — the wider fs scope cares about listings, not labels.
	if sim {
		for _, f := range pass.Files {
			for _, pos := range findPointerFormats(pass.Info, f) {
				pass.Reportf(pos, "%%p formats a memory address, which differs between runs; print a stable identifier instead")
			}
		}
	}
	return nil
}

// findPointerFormats returns the position of every constant fmt format
// string containing %p in f. Shared by detsource (which bans them in
// the simulator packages directly) and the dettaint call-graph engine
// (which treats them as taint sources everywhere else).
func findPointerFormats(info *types.Info, f *ast.File) []token.Pos {
	var out []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				continue
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				continue
			}
			if strings.Contains(s, "%p") || strings.Contains(s, "%#p") {
				out = append(out, lit.Pos())
			}
		}
		return true
	})
	return out
}
