package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcddvfs/internal/lint/analysis"
	"mcddvfs/internal/lint/load"
)

// TestCacheKeyCatchesDroppedHashField proves the cachekey analyzer
// guards the real cache keys, not just the fixtures: it type-checks a
// copy of the repo with a field-write deleted from a key hash struct
// and requires the analyzer to fail on it. The unmutated copy is
// checked clean first, so the diagnostic is attributable to the
// deletion alone.
//
// Coverage is reachability-based, so a field mentioned on any path
// from cacheKey stays covered: Instructions must be deleted from BOTH
// the legacy struct (cache.go) and the chip struct (chip.go) to go
// dark — dropping it from just one is the byte-stability tests' job
// (TestCacheKeyGolden pins the legacy struct). Seed would survive even
// the double deletion legitimately (cacheKey hashes the machine
// config, which machine() derives from the seed) — exactly the
// transitive coverage the call graph exists to see. GovernorGain is
// the chip-era twin: it reaches cacheKey only through chipCacheKey's
// hash struct, so a single chip-side deletion must fail.
func TestCacheKeyCatchesDroppedHashField(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and re-type-checks the module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}

	cases := []struct {
		name      string
		drops     map[string]string // file under the repo root -> literal line to delete
		wantField string
	}{
		{
			name: "instructions-from-every-key",
			drops: map[string]string{
				"internal/experiment/cache.go": "Instructions:     opt.Instructions,",
				"internal/experiment/chip.go":  "Instructions:     opt.Instructions,",
			},
			wantField: "Options.Instructions",
		},
		{
			name: "governor-gain-from-chip-key",
			drops: map[string]string{
				"internal/experiment/chip.go": "GovernorGain:     opt.GovernorGain,",
			},
			wantField: "Options.GovernorGain",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := t.TempDir()
			copyModule(t, root, dst)

			if ds := cachekeyDiags(t, dst); len(ds) != 0 {
				t.Fatalf("unmutated copy is not clean: %v", ds)
			}
			for rel, dropped := range tc.drops {
				path := filepath.Join(dst, filepath.FromSlash(rel))
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(string(src), dropped) {
					t.Fatalf("%s no longer contains %q; update this test alongside the key structs", path, dropped)
				}
				mutated := strings.Replace(string(src), dropped, "", 1)
				if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			ds := cachekeyDiags(t, dst)
			if len(ds) != 1 || !strings.Contains(ds[0], tc.wantField) {
				t.Fatalf("dropping %v: got diagnostics %v, want exactly one naming %s", tc.drops, ds, tc.wantField)
			}
		})
	}
}

// cachekeyDiags runs the full suite over dir's internal packages and
// returns the active cachekey diagnostics as strings. The full suite
// (not just CacheKey) runs so //lint:allow directive validation sees
// every analyzer name the tree references.
func cachekeyDiags(t *testing.T, dir string) []string {
	t.Helper()
	pkgs, err := load.Load(dir, "./internal/...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	ds, err := analysis.Run(Targets(pkgs), Analyzers())
	if err != nil {
		t.Fatalf("running suite over %s: %v", dir, err)
	}
	fset := pkgs[0].Fset
	var out []string
	for _, d := range analysis.Active(ds) {
		if d.Analyzer != "cachekey" {
			continue
		}
		pos := fset.Position(d.Pos)
		out = append(out, filepath.Base(pos.Filename)+": "+d.Message)
	}
	return out
}

// copyModule copies go.mod and every non-test Go source file under
// internal/ (skipping the lint fixture module under testdata) from
// root into dst, preserving layout.
func copyModule(t *testing.T, root, dst string) {
	t.Helper()
	copyFile(t, filepath.Join(root, "go.mod"), filepath.Join(dst, "go.mod"))
	src := filepath.Join(root, "internal")
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		copyFile(t, path, filepath.Join(dst, rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
