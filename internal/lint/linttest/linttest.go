// Package linttest is a miniature analysistest: it runs the mcdlint
// suite over the fixture module under internal/lint/testdata and
// compares the diagnostics against expectations embedded in the
// fixture sources.
//
// An expectation is a trailing comment of the form
//
//	// want <analyzer> `regexp`
//
// on the line where the diagnostic is reported. Multiple backquoted
// patterns may follow one tag. Run fails the test on any unexpected
// diagnostic, any unmatched expectation, and — to guarantee the suite
// demonstrably catches violations — when the analyzer under test
// matched no expectation at all.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"mcddvfs/internal/lint"
	"mcddvfs/internal/lint/analysis"
	"mcddvfs/internal/lint/load"
)

// want is one expectation parsed from a fixture source line.
type want struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

// diag is one reported diagnostic in file/line form.
type diag struct {
	file     string
	line     int
	analyzer string
	message  string
}

var fixture struct {
	once  sync.Once
	err   error
	wants []*want
	diags []diag
}

var wantRE = regexp.MustCompile("// want ([a-z]+)((?: `[^`]+`)+)")
var patRE = regexp.MustCompile("`([^`]+)`")

// loadFixture runs the full suite over dir once per test binary.
func loadFixture(dir string) error {
	fixture.once.Do(func() { fixture.err = runSuite(dir) })
	return fixture.err
}

func runSuite(dir string) error {
	pkgs, err := load.Load(dir, "./...")
	if err != nil {
		return fmt.Errorf("loading fixture module: %w", err)
	}
	ds, err := analysis.Run(lint.Targets(pkgs), lint.Analyzers())
	if err != nil {
		return fmt.Errorf("running suite: %w", err)
	}
	if len(pkgs) == 0 {
		return fmt.Errorf("fixture module %s matched no packages", dir)
	}
	fset := pkgs[0].Fset
	for _, d := range analysis.Active(ds) {
		pos := fset.Position(d.Pos)
		fixture.diags = append(fixture.diags, diag{
			file:     pos.Filename,
			line:     pos.Line,
			analyzer: d.Analyzer,
			message:  d.Message,
		})
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := fset.Position(f.Pos()).Filename
			if err := parseWants(name); err != nil {
				return err
			}
		}
	}
	return nil
}

func parseWants(filename string) error {
	src, err := os.ReadFile(filename)
	if err != nil {
		return err
	}
	for i, line := range strings.Split(string(src), "\n") {
		// A line may carry several want tags (one per analyzer expected
		// to fire there), each with several backquoted patterns.
		for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
			for _, pm := range patRE.FindAllStringSubmatch(m[2], -1) {
				re, err := regexp.Compile(pm[1])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %q: %w", filename, i+1, pm[1], err)
				}
				fixture.wants = append(fixture.wants, &want{
					file:     filename,
					line:     i + 1,
					analyzer: m[1],
					re:       re,
				})
			}
		}
	}
	return nil
}

// Run checks one analyzer's diagnostics against the fixture module at
// dir (shared and evaluated once across all Run calls in a binary).
func Run(t *testing.T, dir string, analyzer string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := loadFixture(abs); err != nil {
		t.Fatal(err)
	}

	matched := 0
	for _, d := range fixture.diags {
		if d.analyzer != analyzer {
			continue
		}
		ok := false
		for _, w := range fixture.wants {
			if w.analyzer == analyzer && w.file == d.file && w.line == d.line && w.re.MatchString(d.message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", rel(d.file), d.line, d.analyzer, d.message)
			continue
		}
		matched++
	}
	for _, w := range fixture.wants {
		if w.analyzer == analyzer && !w.matched {
			t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", rel(w.file), w.line, analyzer, w.re)
		}
	}
	if matched == 0 && !t.Failed() {
		t.Errorf("fixture demonstrates no %s violation; the analyzer is untested", analyzer)
	}
}

func rel(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if r, err := filepath.Rel(wd, path); err == nil {
		return r
	}
	return path
}
