package lint

import (
	"mcddvfs/internal/lint/analysis"
)

// DetTaint is the interprocedural extension of detsource/detrange: it
// builds the whole-program call graph (see graph.go), marks every
// nondeterminism source — wall clock, global math/rand, filesystem
// enumeration, multi-ready select, %p formatting, order-dependent map
// iteration — and fails when any source is transitively reachable from
// the simulation entry points. The per-package analyzers can only
// inspect a hard-coded package list; dettaint closes the gap where a
// helper in, say, internal/stats leaks time.Now into a controller
// through two call hops and an interface.
//
// Entry points are every function declared in the taint-root packages:
// the simulator core (internal/mcd), the event engine and its handlers
// (internal/clock), scheme Attach/Validate hooks (internal/scheme),
// and trace generation/replay (internal/trace). Anything those can
// call, transitively — through direct calls, method values, closures,
// or conservative interface dispatch — must be deterministic.
//
// Division of labor with the per-package analyzers: inside detsource's
// scope, wall-clock/global-rand/%p sources are detsource's findings
// (reported with its messages), inside detrange's scope map-range
// sources are detrange's, and inside the fsListPackages scope
// filesystem-enumeration sources are detsource's too; dettaint reports
// only sources those analyzers cannot see. Multi-ready-select sources
// are dettaint's alone and are reported everywhere reachable.
//
// Each diagnostic carries the full reachability path from an entry
// point to the source, so the fix target is explicit: either break the
// path (stop calling the tainted helper) or remove the source.
var DetTaint = &analysis.Analyzer{
	Name:       "dettaint",
	Doc:        "forbids nondeterminism sources transitively reachable from the simulation entry points",
	RunProgram: runDetTaint,
}

// taintRootPackages are the entry-point packages: every function they
// declare is a root of the reachability analysis.
var taintRootPackages = []string{
	"internal/mcd",
	"internal/clock",
	"internal/scheme",
	"internal/trace",
	// Since the multi-core chip PR: a governor's Apportion runs inside
	// the simulation loop at every epoch barrier, so any nondeterminism
	// it reaches lands in chip results.
	"internal/governor",
}

func runDetTaint(pass *analysis.ProgramPass) error {
	g := buildGraph(pass.Targets, pass.Fset)

	var roots []*graphNode
	for _, n := range g.order {
		if inScope(n.fn.Pkg().Path(), taintRootPackages) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	parent := reachableFrom(roots)

	for _, n := range g.order {
		if _, reachable := parent[n]; !reachable {
			continue
		}
		pkgPath := n.fn.Pkg().Path()
		for _, s := range n.sources {
			if ownedBySiblingAnalyzer(s.kind, pkgPath) {
				continue
			}
			pass.Reportf(s.pos, "%s is reachable from the simulation entry points via %s; %s",
				s.what, pathTo(parent, n), s.fix)
		}
	}
	return nil
}

// ownedBySiblingAnalyzer reports whether a source of the given kind in
// the given package is already the finding of a per-package analyzer,
// so dettaint stays silent there instead of double-reporting the same
// line under two names.
func ownedBySiblingAnalyzer(kind, pkgPath string) bool {
	switch kind {
	case "wallclock", "globalrand", "ptrformat":
		return inScope(pkgPath, simPackages) // detsource's scope
	case "fsorder":
		return inScope(pkgPath, fsListPackages) // detsource's fs scope
	case "maprange":
		return inScope(pkgPath, renderPackages) // detrange's scope
	}
	return false
}
