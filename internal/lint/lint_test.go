package lint_test

import (
	"testing"

	"mcddvfs/internal/lint/linttest"
)

// The fixture module seeds at least one violation per analyzer plus
// the compliant idioms each analyzer must accept; linttest fails on
// any unexpected diagnostic, any unmatched expectation, and on an
// analyzer that catches nothing.
const fixtureDir = "testdata/src/fixture.example"

func TestDetRange(t *testing.T)     { linttest.Run(t, fixtureDir, "detrange") }
func TestDetSource(t *testing.T)    { linttest.Run(t, fixtureDir, "detsource") }
func TestCtxFlow(t *testing.T)      { linttest.Run(t, fixtureDir, "ctxflow") }
func TestErrTaxonomy(t *testing.T)  { linttest.Run(t, fixtureDir, "errtaxonomy") }
func TestSchemeSwitch(t *testing.T) { linttest.Run(t, fixtureDir, "schemeswitch") }
func TestEngineOwned(t *testing.T)  { linttest.Run(t, fixtureDir, "engineowned") }
func TestDetTaint(t *testing.T)     { linttest.Run(t, fixtureDir, "dettaint") }
func TestCacheKey(t *testing.T)     { linttest.Run(t, fixtureDir, "cachekey") }
