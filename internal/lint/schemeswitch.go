package lint

import (
	"go/ast"
	"go/types"

	"mcddvfs/internal/lint/analysis"
)

// SchemeSwitch forbids switch-based dispatch on DVFS scheme values
// outside the scheme registry. Every per-scheme behavior belongs in
// the scheme's Descriptor (internal/scheme): a switch on a Scheme
// elsewhere is a shadow dispatch table that silently misses schemes
// registered later — exactly the coupling the registry exists to kill.
// Direct comparisons (s == SchemeNone) stay legal; they special-case
// one known scheme rather than enumerating the set.
//
// The registry package itself is exempt by import-path suffix, like
// the other analyzers' scopes, so the fixture module exercises the
// same rule as the real tree.
var SchemeSwitch = &analysis.Analyzer{
	Name: "schemeswitch",
	Doc:  "forbids switch dispatch on Scheme values outside the scheme registry package",
	Run:  runSchemeSwitch,
}

// schemeRegistryPackages are exempt: the registry is the one sanctioned
// place where per-scheme dispatch may live.
var schemeRegistryPackages = []string{"internal/scheme"}

// isSchemeType reports whether t is (or aliases) a named type `Scheme`
// with string underlying — the experiment harness's scheme name type,
// matched structurally so the fixture module's copy counts too.
func isSchemeType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Name() != "Scheme" {
		return false
	}
	basic, ok := n.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.String
}

func runSchemeSwitch(pass *analysis.Pass) error {
	if inScope(pass.Pkg.Path(), schemeRegistryPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			if sw.Tag != nil {
				if isSchemeType(pass.TypeOf(sw.Tag)) {
					pass.Reportf(sw.Switch, "switch on Scheme dispatches per-scheme behavior outside the registry; move it into a scheme Descriptor (internal/scheme)")
				}
				return true
			}
			// Tagless switch: a case comparing a Scheme value is the
			// same dispatch table in disguise.
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if cmp, ok := e.(*ast.BinaryExpr); ok &&
						(isSchemeType(pass.TypeOf(cmp.X)) || isSchemeType(pass.TypeOf(cmp.Y))) {
						pass.Reportf(sw.Switch, "tagless switch comparing Scheme values dispatches per-scheme behavior outside the registry; move it into a scheme Descriptor (internal/scheme)")
						return true
					}
				}
			}
			return true
		})
	}
	return nil
}
