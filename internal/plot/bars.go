package plot

import (
	"fmt"
	"strings"
)

// BarGroup is one series of a grouped bar chart: one value per label.
type BarGroup struct {
	Name   string
	Values []float64
}

// BarChart is a magnitude-comparison figure (e.g. Figures 8–11). With
// one group it renders plain bars; with several, grouped bars with a
// legend and a 2px surface gap between adjacent bars. Data ends are
// rounded (2px) and anchored to the zero baseline; negative values
// hang below it.
type BarChart struct {
	Title  string
	YLabel string
	// YSuffix is appended to y tick labels (e.g. "%").
	YSuffix string
	Labels  []string
	Groups  []BarGroup
	// LabelGroupValues, when it matches a label, draws visible value
	// labels on that label's bars (selective direct labels; the
	// contrast relief for below-3:1 palette slots).
	LabelGroupValues string
	// Width and Height default to width fitted to the data and 380.
	Width, Height int
}

// SVG renders the chart.
func (c *BarChart) SVG() (string, error) {
	if len(c.Groups) == 0 || len(c.Labels) == 0 {
		return "", fmt.Errorf("plot: bar chart needs labels and groups")
	}
	if len(c.Groups) > len(seriesColors) {
		return "", fmt.Errorf("plot: %d groups exceeds the %d fixed palette slots", len(c.Groups), len(seriesColors))
	}
	for _, g := range c.Groups {
		if len(g.Values) != len(c.Labels) {
			return "", fmt.Errorf("plot: group %q has %d values for %d labels", g.Name, len(g.Values), len(c.Labels))
		}
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 64 + 20 + len(c.Labels)*(len(c.Groups)*18+26)
		if w < 480 {
			w = 480
		}
	}
	if h == 0 {
		h = 380
	}
	ymin, ymax := 0.0, 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			if v < ymin {
				ymin = v
			}
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	ymax *= 1.1
	if ymin < 0 {
		ymin *= 1.1
	}
	f := frame{
		w: w, h: h, ml: 64, mr: 20, mt: 46, mb: 64,
		title: c.Title, ylabel: c.YLabel,
		xmin: 0, xmax: 1, ymin: ymin, ymax: ymax,
	}

	var b strings.Builder
	f.header(&b)
	f.yAxis(&b, c.YSuffix)
	if len(c.Groups) >= 2 {
		names := make([]string, len(c.Groups))
		for i, g := range c.Groups {
			names[i] = g.Name
		}
		legend(&b, f.ml+120, f.mt-20, names)
	}

	slot := f.plotW() / float64(len(c.Labels))
	barW := (slot - 26) / float64(len(c.Groups))
	if barW < 4 {
		barW = 4
	}
	zero := f.ypix(0)
	for li, label := range c.Labels {
		groupX := f.ml + float64(li)*slot + 13
		for gi, g := range c.Groups {
			v := g.Values[li]
			x := groupX + float64(gi)*barW
			yv := f.ypix(v)
			top, hgt := yv, zero-yv
			if v < 0 {
				top, hgt = zero, yv-zero
			}
			if hgt < 0.5 {
				hgt = 0.5
			}
			// 2px surface gap between adjacent bars: shrink each bar.
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" rx="2" fill="%s"><title>%s — %s: %.2f%s</title></rect>`+"\n",
				x+1, top, barW-2, hgt, seriesColors[gi], esc(label), esc(g.Name), v, c.YSuffix)
			if c.LabelGroupValues == label {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="middle">%.1f</text>`+"\n",
					x+barW/2, top-4, textPrimary, v)
			}
		}
		// Category label, angled when crowded.
		lx := groupX + barW*float64(len(c.Groups))/2
		ly := f.mt + f.plotH() + 14
		if len(c.Labels) > 8 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="9" fill="%s" text-anchor="end" transform="rotate(-35 %.1f %.1f)">%s</text>`+"\n",
				lx, ly, textSecondary, lx, ly, esc(label))
		} else {
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
				lx, ly, textSecondary, esc(label))
		}
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
