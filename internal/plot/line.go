package plot

import (
	"fmt"
	"math"
	"strings"
)

// LineChart is a change-over-time figure (e.g. Figure 7's frequency
// trajectory).
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// YMin/YMax fix the y range when both are set (YMax > YMin);
	// otherwise the range fits the data with headroom.
	YMin, YMax float64
	Series     []Series
	// Width and Height default to 860x360.
	Width, Height int
}

// SVG renders the chart.
func (c *LineChart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: line chart with no series")
	}
	if len(c.Series) > len(seriesColors) {
		return "", fmt.Errorf("plot: %d series exceeds the %d fixed palette slots", len(c.Series), len(seriesColors))
	}
	w, h := c.Width, c.Height
	if w == 0 {
		w = 860
	}
	if h == 0 {
		h = 360
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) < 2 {
			return "", fmt.Errorf("plot: series %q needs at least 2 points", s.Name)
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if c.YMax > c.YMin {
		ymin, ymax = c.YMin, c.YMax
	} else {
		pad := (ymax - ymin) * 0.08
		if pad == 0 {
			pad = 1
		}
		ymin -= pad
		ymax += pad
	}
	f := frame{
		w: w, h: h, ml: 64, mr: 20, mt: 46, mb: 44,
		title: c.Title, xlabel: c.XLabel, ylabel: c.YLabel,
		xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax,
	}

	var b strings.Builder
	f.header(&b)
	f.yAxis(&b, "")
	// X ticks.
	for _, t := range niceTicks(xmin, xmax, 8) {
		x := f.xpix(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1"/>`+"\n",
			x, f.mt+f.plotH(), x, f.mt+f.plotH()+4, axisColor)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, f.mt+f.plotH()+16, textSecondary, fmtTick(t))
	}
	if len(c.Series) >= 2 {
		names := make([]string, len(c.Series))
		for i, s := range c.Series {
			names[i] = s.Name
		}
		legend(&b, f.ml+120, f.mt-20, names)
	}
	// Lines: 2px, no markers (dense traces), native tooltip per series.
	for i, s := range c.Series {
		var path strings.Builder
		for j := range s.X {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, f.xpix(s.X[j]), f.ypix(s.Y[j]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"><title>%s</title></path>`+"\n",
			strings.TrimSpace(path.String()), seriesColors[i], esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}
