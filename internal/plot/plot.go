// Package plot renders the paper's figures as standalone SVG files
// using only the standard library. Forms and styling follow a fixed
// house method: thin marks, recessive grid and axes, text in text
// tokens (never series colors), a legend whenever two or more series
// are shown, native <title> tooltips on every mark, and a validated
// colorblind-safe categorical palette assigned in fixed slot order.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// The validated palette (light mode). Slots are assigned in fixed
// order and never cycled; charts here use at most three series.
var seriesColors = []string{
	"#2a78d6", // slot 1: blue
	"#1baf7a", // slot 2: aqua
	"#eda100", // slot 3: yellow
}

// Surface and text tokens (light mode).
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e4e3df"
	axisColor     = "#b5b4ae"
)

// Series is one named line on a line chart.
type Series struct {
	Name string
	X, Y []float64
}

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceTicks returns ~n rounded tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for span/step > float64(n)*2 {
		step *= 2
	}
	for span/step > float64(n) {
		step *= 2.5
		if span/step <= float64(n) {
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// fmtTick renders a tick value compactly.
func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// frame holds the shared chart scaffolding.
type frame struct {
	w, h                   int
	ml, mr, mt, mb         float64
	title, xlabel, ylabel  string
	xmin, xmax, ymin, ymax float64
}

func (f *frame) plotW() float64 { return float64(f.w) - f.ml - f.mr }
func (f *frame) plotH() float64 { return float64(f.h) - f.mt - f.mb }

func (f *frame) xpix(x float64) float64 {
	return f.ml + (x-f.xmin)/(f.xmax-f.xmin)*f.plotW()
}

func (f *frame) ypix(y float64) float64 {
	return f.mt + (1-(y-f.ymin)/(f.ymax-f.ymin))*f.plotH()
}

// header emits the SVG opening, background, title and axis labels.
func (f *frame) header(b *strings.Builder) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		f.w, f.h, f.w, f.h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", f.w, f.h, surface)
	fmt.Fprintf(b, `<text x="%g" y="%g" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		f.ml, f.mt-24, textPrimary, esc(f.title))
	if f.xlabel != "" {
		fmt.Fprintf(b, `<text x="%g" y="%g" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			f.ml+f.plotW()/2, float64(f.h)-8, textSecondary, esc(f.xlabel))
	}
	if f.ylabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%g" font-size="11" fill="%s" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
			f.mt+f.plotH()/2, textSecondary, f.mt+f.plotH()/2, esc(f.ylabel))
	}
}

// yAxis emits horizontal gridlines and y tick labels.
func (f *frame) yAxis(b *strings.Builder, suffix string) {
	for _, t := range niceTicks(f.ymin, f.ymax, 5) {
		y := f.ypix(t)
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1"/>`+"\n",
			f.ml, y, f.ml+f.plotW(), y, gridColor)
		fmt.Fprintf(b, `<text x="%g" y="%g" font-size="10" fill="%s" text-anchor="end">%s%s</text>`+"\n",
			f.ml-6, y+3, textSecondary, fmtTick(t), suffix)
	}
	// Baseline axis.
	fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1"/>`+"\n",
		f.ml, f.mt+f.plotH(), f.ml+f.plotW(), f.mt+f.plotH(), axisColor)
}

// legend emits a legend row above the plot (only called for >= 2 series).
func legend(b *strings.Builder, x, y float64, names []string) {
	for i, name := range names {
		fmt.Fprintf(b, `<rect x="%g" y="%g" width="10" height="10" rx="2" fill="%s"/>`+"\n",
			x, y-9, seriesColors[i%len(seriesColors)])
		fmt.Fprintf(b, `<text x="%g" y="%g" font-size="11" fill="%s">%s</text>`+"\n",
			x+14, y, textPrimary, esc(name))
		x += 14 + float64(len(name))*6.6 + 18
	}
}
