package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func parseSVG(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, s)
		}
	}
}

func TestLineChartRendersValidSVG(t *testing.T) {
	c := &LineChart{
		Title:  "FP frequency",
		XLabel: "instructions",
		YLabel: "relative f",
		Series: []Series{{
			Name: "adaptive",
			X:    []float64{0, 1000, 2000, 3000},
			Y:    []float64{1.0, 0.8, 0.4, 0.25},
		}},
	}
	s, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, s)
	for _, want := range []string{"<svg", "FP frequency", "instructions", `stroke="#2a78d6"`, "stroke-width=\"2\""} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Single series: no legend swatch rects beyond the background.
	if strings.Count(s, `rx="2"`) != 0 {
		t.Errorf("unexpected legend/bars in a single-series line chart")
	}
}

func TestLineChartLegendForMultipleSeries(t *testing.T) {
	c := &LineChart{
		Title: "two",
		Series: []Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{1, 2}},
			{Name: "b", X: []float64{0, 1}, Y: []float64{2, 1}},
		},
	}
	s, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, s)
	if !strings.Contains(s, ">a</text>") || !strings.Contains(s, ">b</text>") {
		t.Error("legend labels missing")
	}
	if !strings.Contains(s, seriesColors[1]) {
		t.Error("second series color missing")
	}
}

func TestLineChartErrors(t *testing.T) {
	if _, err := (&LineChart{Title: "x"}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	bad := &LineChart{Series: []Series{{Name: "a", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("mismatched series accepted")
	}
	short := &LineChart{Series: []Series{{Name: "a", X: []float64{1}, Y: []float64{1}}}}
	if _, err := short.SVG(); err == nil {
		t.Error("1-point series accepted")
	}
	many := &LineChart{Series: make([]Series, len(seriesColors)+1)}
	for i := range many.Series {
		many.Series[i] = Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}
	}
	if _, err := many.SVG(); err == nil {
		t.Error("palette overflow accepted")
	}
}

func TestBarChartGrouped(t *testing.T) {
	c := &BarChart{
		Title:   "energy savings",
		YLabel:  "saving",
		YSuffix: "%",
		Labels:  []string{"gzip", "mcf", "AVERAGE"},
		Groups: []BarGroup{
			{Name: "adaptive", Values: []float64{9.1, 12.7, 8.1}},
			{Name: "pid", Values: []float64{10.5, 9.7, 7.1}},
			{Name: "attack-decay", Values: []float64{6.8, 11.5, 6.2}},
		},
		LabelGroupValues: "AVERAGE",
	}
	s, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, s)
	// 9 bars + 3 legend swatches.
	if got := strings.Count(s, `rx="2"`); got != 12 {
		t.Errorf("rounded rect count = %d, want 12", got)
	}
	// Tooltips on every bar.
	if got := strings.Count(s, "<title>"); got != 9 {
		t.Errorf("tooltip count = %d, want 9", got)
	}
	// Direct labels only on the AVERAGE group (3 values).
	if got := strings.Count(s, `font-size="9" fill="#0b0b0b"`); got != 3 {
		t.Errorf("direct label count = %d, want 3", got)
	}
	for _, col := range seriesColors {
		if !strings.Contains(s, col) {
			t.Errorf("missing series color %s", col)
		}
	}
}

func TestBarChartNegativeValuesHangBelowBaseline(t *testing.T) {
	c := &BarChart{
		Title:  "edp",
		Labels: []string{"art"},
		Groups: []BarGroup{{Name: "attack-decay", Values: []float64{-9.8}}},
	}
	s, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	parseSVG(t, s)
	if !strings.Contains(s, "-9.8") {
		t.Error("negative value missing from tooltip")
	}
}

func TestBarChartErrors(t *testing.T) {
	if _, err := (&BarChart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	mismatch := &BarChart{Labels: []string{"a", "b"}, Groups: []BarGroup{{Name: "g", Values: []float64{1}}}}
	if _, err := mismatch.SVG(); err == nil {
		t.Error("mismatched group accepted")
	}
	many := &BarChart{Labels: []string{"a"}, Groups: make([]BarGroup, len(seriesColors)+1)}
	for i := range many.Groups {
		many.Groups[i] = BarGroup{Name: "g", Values: []float64{1}}
	}
	if _, err := many.SVG(); err == nil {
		t.Error("palette overflow accepted")
	}
}

func TestRotatedLabelsWhenCrowded(t *testing.T) {
	labels := make([]string, 12)
	vals := make([]float64, 12)
	for i := range labels {
		labels[i] = "bench"
		vals[i] = float64(i)
	}
	c := &BarChart{Title: "crowded", Labels: labels, Groups: []BarGroup{{Name: "g", Values: vals}}}
	s, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "rotate(-35") {
		t.Error("crowded labels not rotated")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 3 || ticks[0] < 0 || ticks[len(ticks)-1] > 10.001 {
		t.Errorf("bad ticks %v", ticks)
	}
	// Degenerate range must not loop forever or panic.
	_ = niceTicks(5, 5, 5)
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{2e6: "2.0M", 5000: "5k", 12: "12", 0.25: "0.25", 3: "3"}
	for in, want := range cases {
		if got := fmtTick(in); got != want {
			t.Errorf("fmtTick(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestEsc(t *testing.T) {
	if esc(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("esc wrong: %q", esc(`a<b>&"c"`))
	}
}
