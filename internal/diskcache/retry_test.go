package diskcache

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openFlaky builds a store over a FaultFS with a fast retry policy so
// tests exercise real backoff sleeps without slowing the suite.
func openFlaky(t *testing.T) (*Store, *FaultFS, string) {
	t.Helper()
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := OpenFS(dir, 0, ffs)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetry(3, time.Millisecond)
	return s, ffs, dir
}

// TestPutRetriesTransientWriteFaults is the satellite contract: a
// transient temp-file/rename failure no longer silently drops the
// entry — Put retries with backoff until the fault clears and the
// entry is eventually persisted, complete and readable.
func TestPutRetriesTransientWriteFaults(t *testing.T) {
	for _, op := range []string{FaultCreateTemp, FaultWrite, FaultRename} {
		t.Run(op, func(t *testing.T) {
			s, ffs, dir := openFlaky(t)
			ffs.FailNext(2, op) // first two attempts fail, third succeeds
			want := samplePayload(512)
			if err := s.Put(key(1), &want); err != nil {
				t.Fatalf("Put did not survive 2 transient %s faults: %v", op, err)
			}
			var got payload
			if err := s.Get(key(1), &got); err != nil {
				t.Fatalf("Get after faulted Put: %v", err)
			}
			if len(got.Series) != len(want.Series) {
				t.Fatalf("entry truncated: %d samples, want %d", len(got.Series), len(want.Series))
			}
			st := s.Stats()
			if st.Retries < 2 || st.WriteErrors != 0 {
				t.Errorf("stats = %+v, want >=2 retries and 0 write errors", st)
			}
			if _, err := Verify(dir, true); err != nil {
				t.Errorf("store left partial files behind: %v", err)
			}
		})
	}
}

// TestPutGivesUpAfterRetryBudget asserts a persistent fault surfaces
// as an error (counted, observed) instead of spinning forever, and
// still leaves no partial files behind.
func TestPutGivesUpAfterRetryBudget(t *testing.T) {
	s, ffs, dir := openFlaky(t)
	var (
		mu       sync.Mutex
		observed []error
	)
	s.SetObserver(func(op Op, err error) {
		if op == OpPut {
			mu.Lock()
			observed = append(observed, err)
			mu.Unlock()
		}
	})
	ffs.Fail(FaultRename)
	err := s.Put(key(2), samplePayload(64))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Put under a persistent fault = %v, want ErrInjected", err)
	}
	st := s.Stats()
	if st.WriteErrors != 1 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 1 write error after 2 retries", st)
	}
	mu.Lock()
	seen := append([]error(nil), observed...)
	mu.Unlock()
	if len(seen) != 1 || seen[0] == nil {
		t.Errorf("observer saw %v, want exactly one failure", seen)
	}
	ffs.Heal()
	if _, err := Verify(dir, true); err != nil {
		t.Errorf("failed Put left partial files: %v", err)
	}
	// The slot still works once the fault clears.
	if err := s.Put(key(2), samplePayload(64)); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
}

// TestGetIOFaultIsObservedDistinctlyFromCorruption asserts the
// observer separates disk-availability failures (breaker-relevant)
// from self-healing corruption (not breaker-relevant).
func TestGetIOFaultIsObservedDistinctlyFromCorruption(t *testing.T) {
	s, ffs, _ := openFlaky(t)
	if err := s.Put(key(3), samplePayload(16)); err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		fails int
		oks   int
	)
	s.SetObserver(func(op Op, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			fails++
		} else {
			oks++
		}
	})

	ffs.Fail(FaultOpen)
	var got payload
	if err := s.Get(key(3), &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under open fault = %v, want ErrCorrupt wrapper", err)
	}
	ffs.Heal()
	if err := s.Get(key(3), &got); err != nil {
		t.Fatalf("Get after heal: %v", err)
	}
	if err := s.Get(key(9), &got); !errors.Is(err, ErrMiss) {
		t.Fatalf("Get of absent key = %v, want ErrMiss", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if fails != 1 {
		t.Errorf("observer saw %d failures, want exactly 1 (the injected open fault)", fails)
	}
	if oks < 2 {
		t.Errorf("observer saw %d successes, want >=2 (the healthy hit and the miss)", oks)
	}
	if st := s.Stats(); st.ReadErrors != 1 {
		t.Errorf("stats = %+v, want 1 read error", st)
	}
}

// TestSetFSMidFlight slides a FaultFS under a live store (the chaos
// endpoint's move) and asserts traffic degrades and recovers.
func TestSetFSMidFlight(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRetry(2, time.Millisecond)
	if err := s.Put(key(4), samplePayload(8)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(nil)
	ffs.Fail(FaultCreateTemp, FaultRename, FaultOpen)
	s.SetFS(ffs)
	if err := s.Put(key(5), samplePayload(8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put after SetFS(faulty) = %v, want ErrInjected", err)
	}
	s.SetFS(nil) // back to the real filesystem
	if err := s.Put(key(5), samplePayload(8)); err != nil {
		t.Fatalf("Put after restoring FS: %v", err)
	}
	var got payload
	if err := s.Get(key(4), &got); err != nil {
		t.Fatalf("entry written before the fault window is gone: %v", err)
	}
}

// TestVerifyFlagsDamage asserts the auditor actually fails on a
// truncated entry and on leftover temp files under strict mode.
func TestVerifyFlagsDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(6), samplePayload(32)); err != nil {
		t.Fatal(err)
	}
	if n, err := Verify(dir, true); err != nil || n != 1 {
		t.Fatalf("Verify(clean) = %d, %v; want 1, nil", n, err)
	}
	path := entryFile(t, dir)
	if err := os.Truncate(path, headerSize-2); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir, true); err == nil {
		t.Error("Verify accepted a truncated entry")
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-leftover"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 0) // re-open heals nothing by itself
	_ = s2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir, true); err == nil {
		t.Error("strict Verify accepted a leftover temp file")
	}
	if _, err := Verify(dir, false); err == nil {
		t.Error("lenient Verify should still flag the truncated entry")
	}
}
