// Package diskcache is a content-addressed on-disk result store: the
// persistence layer under the experiment harness's in-process result
// cache. Entries are keyed by the caller's content hash (for the
// harness, the SHA-256 of everything that determines a simulation), so
// a stored value never goes stale — a different input is a different
// key — and the only invalidation ever needed is a FormatVersion bump
// when the encoding itself changes.
//
// Durability model, in order of the failure modes that matter:
//
//   - Concurrent writers (the harness worker pool, or two processes
//     sharing one directory): every write goes to a unique temp file in
//     the store directory and is published with an atomic rename, so
//     readers only ever observe complete entries and the last writer
//     of a key wins with an identical payload.
//   - Corruption (torn writes on crash, bit rot, truncation): every
//     entry carries a SHA-256 checksum of its payload; Get verifies it
//     and reports ErrCorrupt, deleting the bad file so the slot heals
//     on the next Put. The caller's contract is "any Get error means
//     re-compute", never "trust a damaged entry".
//   - Unbounded growth: the store is size-capped; GC evicts entries in
//     LRU order, approximated by file modification time (Get touches
//     entries it serves). Eviction is never an error — an evicted
//     entry is just a future cache miss.
//
// Values are encoded with encoding/gob: binary-exact for float64 (the
// harness's dominant payload is occupancy sample series) and several
// times faster than JSON at the megabyte sizes simulation results
// reach.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FormatVersion is the on-disk encoding version. Bump it whenever the
// entry header or payload encoding changes shape: every entry written
// by an older version then misses with ErrVersionMismatch and is
// lazily rewritten, instead of being misdecoded.
const FormatVersion = 1

// Store error taxonomy. Callers dispatch with errors.Is; every Get
// failure wraps exactly one of these.
var (
	// ErrMiss reports that no entry exists for the key.
	ErrMiss = errors.New("diskcache: miss")
	// ErrCorrupt reports an entry that failed its checksum, header, or
	// payload decode. Get removes the damaged file before returning it.
	ErrCorrupt = errors.New("diskcache: entry corrupt")
	// ErrVersionMismatch reports an entry written under a different
	// FormatVersion. Get removes the stale file before returning it.
	ErrVersionMismatch = errors.New("diskcache: format version mismatch")
)

// entry layout: magic(4) | version(u32 LE) | payload sha256(32) |
// payload length(u64 LE) | gob payload.
const (
	entryMagic  = "MCDR"
	headerSize  = 4 + 4 + sha256.Size + 8
	entrySuffix = ".res"
	tmpPattern  = ".tmp-*"
)

// DefaultMaxBytes caps a store at 2 GiB unless the caller chooses
// otherwise — roomy enough for several full experiment matrices at
// default scale, small enough to stay unremarkable in a results tree.
const DefaultMaxBytes = 2 << 30

// gcEvery is how many Puts pass between size checks; a directory scan
// per write would turn the cache into an O(n²) proposition.
const gcEvery = 64

// Stats counts store traffic since Open.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Writes    uint64
	Corrupt   uint64 // checksum/decode failures (self-healed)
	Stale     uint64 // version mismatches (self-healed)
	Evictions uint64
}

// Store is one cache directory. It is safe for concurrent use by
// multiple goroutines, and safe (atomic, last-writer-wins) across
// processes sharing the directory.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex // guards stats and the GC cadence counter
	stats    Stats
	sincePut int
}

// Open creates (if needed) and returns the store rooted at dir.
// maxBytes caps the directory's total entry size; 0 selects
// DefaultMaxBytes. An initial GC pass bounds a directory inherited
// from earlier runs.
func Open(dir string, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, maxBytes: maxBytes}
	if _, err := s.GC(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) path(key [sha256.Size]byte) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+entrySuffix)
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// blobPool recycles entry read buffers across Gets. A warm experiment
// matrix replayed from disk reads one multi-megabyte entry per cell;
// without reuse every hit allocates (and promptly garbage-collects) a
// fresh blob, which dominated the warm-disk hit path's allocation
// profile. Buffers are returned to the pool only after gob has copied
// the payload into the caller's value, so no decoded data aliases a
// pooled buffer.
var blobPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// readEntry reads the file into a pooled buffer. The returned release
// func recycles the buffer; the blob must not be used after calling it.
func readEntry(path string) (blob []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //nolint:errcheck // read-only descriptor
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(info.Size())
	bp := blobPool.Get().(*[]byte)
	if cap(*bp) < size {
		*bp = make([]byte, 0, size)
	}
	blob = (*bp)[:size]
	release = func() { blobPool.Put(bp) }
	if _, err := io.ReadFull(f, blob); err != nil {
		release()
		return nil, nil, err
	}
	return blob, release, nil
}

// Get decodes the entry for key into v (a pointer, as for
// gob.Decoder.Decode). A missing entry returns ErrMiss; a damaged or
// stale one is deleted and returns ErrCorrupt or ErrVersionMismatch.
// On success the entry's mtime is refreshed so LRU eviction sees the
// use.
func (s *Store) Get(key [sha256.Size]byte, v any) error {
	path := s.path(key)
	blob, release, err := readEntry(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.count(func(st *Stats) { st.Misses++ })
		return fmt.Errorf("%w: %s", ErrMiss, hex.EncodeToString(key[:8]))
	}
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		return fmt.Errorf("%w: reading %s: %v", ErrCorrupt, path, err)
	}
	defer release()
	payload, err := decodeEntry(blob)
	if err != nil {
		os.Remove(path) //nolint:errcheck // best-effort self-heal
		if errors.Is(err, ErrVersionMismatch) {
			s.count(func(st *Stats) { st.Stale++; st.Misses++ })
		} else {
			s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		}
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		os.Remove(path) //nolint:errcheck // best-effort self-heal
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return fmt.Errorf("%w: decoding %s: %v", ErrCorrupt, path, err)
	}
	now := time.Now()
	os.Chtimes(path, now, now) //nolint:errcheck // LRU hint only
	s.count(func(st *Stats) { st.Hits++ })
	return nil
}

// decodeEntry validates the header and checksum and returns the
// payload bytes.
func decodeEntry(blob []byte) ([]byte, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte entry shorter than header", ErrCorrupt, len(blob))
	}
	if string(blob[:4]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, blob[:4])
	}
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: entry v%d, store v%d", ErrVersionMismatch, v, FormatVersion)
	}
	var sum [sha256.Size]byte
	copy(sum[:], blob[8:8+sha256.Size])
	n := binary.LittleEndian.Uint64(blob[8+sha256.Size : headerSize])
	payload := blob[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Put encodes v and atomically publishes it as the entry for key:
// the payload goes to a unique temp file in the store directory and is
// renamed into place, so a concurrent Get sees either the old complete
// entry or the new complete entry, never a torn one.
func (s *Store) Put(key [sha256.Size]byte, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("diskcache: encoding entry: %w", err)
	}
	var header [headerSize]byte
	copy(header[:4], entryMagic)
	binary.LittleEndian.PutUint32(header[4:8], FormatVersion)
	sum := sha256.Sum256(payload.Bytes())
	copy(header[8:8+sha256.Size], sum[:])
	binary.LittleEndian.PutUint64(header[8+sha256.Size:], uint64(payload.Len()))

	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("diskcache: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after successful rename
	if _, err := tmp.Write(header[:]); err == nil {
		_, err = tmp.Write(payload.Bytes())
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("diskcache: writing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("diskcache: publishing entry: %w", err)
	}

	s.mu.Lock()
	s.stats.Writes++
	s.sincePut++
	runGC := s.sincePut >= gcEvery
	if runGC {
		s.sincePut = 0
	}
	s.mu.Unlock()
	if runGC {
		// Concurrent GC passes are safe (removals tolerate ENOENT);
		// the cadence counter just keeps them rare.
		if _, err := s.GC(); err != nil {
			return err
		}
	}
	return nil
}

// GC enforces the size cap, removing the least-recently-used entries
// (oldest mtime first) until the directory's entry total fits. It also
// sweeps abandoned temp files. Returns how many entries it evicted.
func (s *Store) GC() (evicted int, err error) {
	dents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("diskcache: scanning %s: %w", s.dir, err)
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		entries []entry
		total   int64
	)
	for _, de := range dents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		info, ierr := de.Info()
		if ierr != nil {
			continue // deleted underneath us: nothing to account
		}
		if matched, _ := filepath.Match(tmpPattern, name); matched {
			// A live writer's temp file is seconds old; anything older
			// was abandoned by a crashed process.
			if time.Since(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(s.dir, name)) //nolint:errcheck // best-effort sweep
			}
			continue
		}
		if filepath.Ext(name) != entrySuffix {
			continue
		}
		entries = append(entries, entry{filepath.Join(s.dir, name), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable tie-break
	})
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if rmErr := os.Remove(e.path); rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
			continue // another process beat us or the file is busy; skip
		}
		total -= e.size
		evicted++
	}
	if evicted > 0 {
		s.count(func(st *Stats) { st.Evictions += uint64(evicted) })
	}
	return evicted, nil
}
