// Package diskcache is a content-addressed on-disk result store: the
// persistence layer under the experiment harness's in-process result
// cache. Entries are keyed by the caller's content hash (for the
// harness, the SHA-256 of everything that determines a simulation), so
// a stored value never goes stale — a different input is a different
// key — and the only invalidation ever needed is a FormatVersion bump
// when the encoding itself changes.
//
// Durability model, in order of the failure modes that matter:
//
//   - Concurrent writers (the harness worker pool, or two processes
//     sharing one directory): every write goes to a unique temp file in
//     the store directory and is published with an atomic rename, so
//     readers only ever observe complete entries and the last writer
//     of a key wins with an identical payload.
//   - Corruption (torn writes on crash, bit rot, truncation): every
//     entry carries a SHA-256 checksum of its payload; Get verifies it
//     and reports ErrCorrupt, deleting the bad file so the slot heals
//     on the next Put. The caller's contract is "any Get error means
//     re-compute", never "trust a damaged entry".
//   - Unbounded growth: the store is size-capped; GC evicts entries in
//     LRU order, approximated by file modification time (Get touches
//     entries it serves). Eviction is never an error — an evicted
//     entry is just a future cache miss.
//   - Transient I/O failures (a flaky network mount, a briefly-full
//     disk): Put retries temp-file creation, writes, and the publishing
//     rename a bounded number of times with exponential backoff before
//     giving up, so a single EIO does not silently drop an entry. Real
//     I/O failures (as opposed to misses and self-healed corruption)
//     are counted in Stats and reported to an optional observer — the
//     hook a circuit breaker latches onto (see internal/serve).
//
// Values are encoded with encoding/gob: binary-exact for float64 (the
// harness's dominant payload is occupancy sample series) and several
// times faster than JSON at the megabyte sizes simulation results
// reach.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FormatVersion is the on-disk encoding version. Bump it whenever the
// entry header or payload encoding changes shape: every entry written
// by an older version then misses with ErrVersionMismatch and is
// lazily rewritten, instead of being misdecoded.
const FormatVersion = 1

// Store error taxonomy. Callers dispatch with errors.Is; every Get
// failure wraps exactly one of these.
var (
	// ErrMiss reports that no entry exists for the key.
	ErrMiss = errors.New("diskcache: miss")
	// ErrCorrupt reports an entry that failed its checksum, header, or
	// payload decode. Get removes the damaged file before returning it.
	ErrCorrupt = errors.New("diskcache: entry corrupt")
	// ErrVersionMismatch reports an entry written under a different
	// FormatVersion. Get removes the stale file before returning it.
	ErrVersionMismatch = errors.New("diskcache: format version mismatch")
)

// entry layout: magic(4) | version(u32 LE) | payload sha256(32) |
// payload length(u64 LE) | gob payload.
const (
	entryMagic  = "MCDR"
	headerSize  = 4 + 4 + sha256.Size + 8
	entrySuffix = ".res"
	tmpPattern  = ".tmp-*"
)

// DefaultMaxBytes caps a store at 2 GiB unless the caller chooses
// otherwise — roomy enough for several full experiment matrices at
// default scale, small enough to stay unremarkable in a results tree.
const DefaultMaxBytes = 2 << 30

// gcEvery is how many Puts pass between size checks; a directory scan
// per write would turn the cache into an O(n²) proposition.
const gcEvery = 64

// Put retry defaults: a transient write/rename failure is retried
// twice more (5 ms then 10 ms apart) before the entry is dropped.
const (
	defaultRetryAttempts = 3
	defaultRetryBackoff  = 5 * time.Millisecond
)

// Stats counts store traffic since Open.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Writes    uint64
	Corrupt   uint64 // checksum/decode failures (self-healed)
	Stale     uint64 // version mismatches (self-healed)
	Evictions uint64
	// ReadErrors counts Gets that failed on real I/O (not misses, not
	// self-healed corruption): the disk, not the data, misbehaved.
	ReadErrors uint64
	// WriteErrors counts Puts that still failed after every retry.
	WriteErrors uint64
	// Retries counts Put attempts beyond the first.
	Retries uint64
}

// Op labels the store operation an observer callback reports on.
type Op string

// Observable operations.
const (
	OpGet Op = "get"
	OpPut Op = "put"
	OpGC  Op = "gc"
)

// Store is one cache directory. It is safe for concurrent use by
// multiple goroutines, and safe (atomic, last-writer-wins) across
// processes sharing the directory.
type Store struct {
	dir      string
	maxBytes int64

	fsMu sync.RWMutex // guards fsys (swappable for fault injection)
	fsys FS

	mu            sync.Mutex // guards stats, the GC cadence counter, retry policy, observer
	stats         Stats
	sincePut      int
	retryAttempts int
	retryBackoff  time.Duration
	observer      func(Op, error)
}

// Open creates (if needed) and returns the store rooted at dir.
// maxBytes caps the directory's total entry size; 0 selects
// DefaultMaxBytes. An initial GC pass bounds a directory inherited
// from earlier runs.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenFS(dir, maxBytes, OSFS{})
}

// OpenFS is Open with an explicit filesystem — the seam fault-injection
// tests and chaos tooling use to fail I/O underneath a real store.
func OpenFS(dir string, maxBytes int64, fsys FS) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("diskcache: empty directory")
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: creating %s: %w", dir, err)
	}
	s := &Store{
		dir: dir, maxBytes: maxBytes, fsys: fsys,
		retryAttempts: defaultRetryAttempts, retryBackoff: defaultRetryBackoff,
	}
	if _, err := s.GC(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// fs returns the store's current filesystem.
func (s *Store) fs() FS {
	s.fsMu.RLock()
	defer s.fsMu.RUnlock()
	return s.fsys
}

// SetFS swaps the store's filesystem. Chaos tooling uses it to slide a
// FaultFS under a store that is already serving traffic; in-flight
// operations finish on the filesystem they started with.
func (s *Store) SetFS(fsys FS) {
	if fsys == nil {
		fsys = OSFS{}
	}
	s.fsMu.Lock()
	s.fsys = fsys
	s.fsMu.Unlock()
}

// SetRetry adjusts Put's bounded retry policy: attempts is the total
// number of tries (minimum 1), backoff the first inter-try sleep
// (doubled each further try). Tests shrink it; servers can widen it.
func (s *Store) SetRetry(attempts int, backoff time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff < 0 {
		backoff = 0
	}
	s.mu.Lock()
	s.retryAttempts = attempts
	s.retryBackoff = backoff
	s.mu.Unlock()
}

// SetObserver registers fn to be told the outcome of every disk-backed
// operation: err is nil on success (hits, publishes, healthy misses)
// and non-nil on real I/O failure. Exactly the signal a circuit
// breaker needs; fn runs synchronously on the calling goroutine and
// must be cheap and safe for concurrent use.
func (s *Store) SetObserver(fn func(Op, error)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// observe reports an operation outcome to the registered observer.
func (s *Store) observe(op Op, err error) {
	s.mu.Lock()
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		fn(op, err)
	}
}

func (s *Store) path(key [sha256.Size]byte) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+entrySuffix)
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// blobPool recycles entry read buffers across Gets. A warm experiment
// matrix replayed from disk reads one multi-megabyte entry per cell;
// without reuse every hit allocates (and promptly garbage-collects) a
// fresh blob, which dominated the warm-disk hit path's allocation
// profile. Buffers are returned to the pool only after gob has copied
// the payload into the caller's value, so no decoded data aliases a
// pooled buffer.
var blobPool = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

// readEntry reads the file into a pooled buffer. The returned release
// func recycles the buffer; the blob must not be used after calling it.
func readEntry(fsys FS, path string) (blob []byte, release func(), err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //nolint:errcheck // read-only descriptor
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(info.Size())
	bp := blobPool.Get().(*[]byte)
	if cap(*bp) < size {
		*bp = make([]byte, 0, size)
	}
	blob = (*bp)[:size]
	release = func() { blobPool.Put(bp) }
	if _, err := io.ReadFull(f, blob); err != nil {
		release()
		return nil, nil, err
	}
	return blob, release, nil
}

// Get decodes the entry for key into v (a pointer, as for
// gob.Decoder.Decode). A missing entry returns ErrMiss; a damaged or
// stale one is deleted and returns ErrCorrupt or ErrVersionMismatch.
// On success the entry's mtime is refreshed so LRU eviction sees the
// use.
func (s *Store) Get(key [sha256.Size]byte, v any) error {
	fsys := s.fs()
	path := s.path(key)
	blob, release, err := readEntry(fsys, path)
	if errors.Is(err, fs.ErrNotExist) {
		// A miss is a healthy disk answering honestly; observers see it
		// as a success signal.
		s.count(func(st *Stats) { st.Misses++ })
		s.observe(OpGet, nil)
		return fmt.Errorf("%w: %s", ErrMiss, hex.EncodeToString(key[:8]))
	}
	if err != nil {
		s.count(func(st *Stats) { st.Misses++; st.ReadErrors++ })
		s.observe(OpGet, err)
		return fmt.Errorf("%w: reading %s: %v", ErrCorrupt, path, err)
	}
	defer release()
	payload, err := decodeEntry(blob)
	if err != nil {
		fsys.Remove(path) //nolint:errcheck // best-effort self-heal
		if errors.Is(err, ErrVersionMismatch) {
			s.count(func(st *Stats) { st.Stale++; st.Misses++ })
		} else {
			s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		}
		// Bit rot and stale versions self-heal; the I/O path worked, so
		// the observer sees success — a breaker must not trip on them.
		s.observe(OpGet, nil)
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		fsys.Remove(path) //nolint:errcheck // best-effort self-heal
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		s.observe(OpGet, nil)
		return fmt.Errorf("%w: decoding %s: %v", ErrCorrupt, path, err)
	}
	now := time.Now()
	fsys.Chtimes(path, now, now) //nolint:errcheck // LRU hint only
	s.count(func(st *Stats) { st.Hits++ })
	s.observe(OpGet, nil)
	return nil
}

// decodeEntry validates the header and checksum and returns the
// payload bytes.
func decodeEntry(blob []byte) ([]byte, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte entry shorter than header", ErrCorrupt, len(blob))
	}
	if string(blob[:4]) != entryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, blob[:4])
	}
	if v := binary.LittleEndian.Uint32(blob[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: entry v%d, store v%d", ErrVersionMismatch, v, FormatVersion)
	}
	var sum [sha256.Size]byte
	copy(sum[:], blob[8:8+sha256.Size])
	n := binary.LittleEndian.Uint64(blob[8+sha256.Size : headerSize])
	payload := blob[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Put encodes v and atomically publishes it as the entry for key:
// the payload goes to a unique temp file in the store directory and is
// renamed into place, so a concurrent Get sees either the old complete
// entry or the new complete entry, never a torn one. Transient I/O
// failures anywhere on that path (temp creation, writes, the rename)
// are retried with exponential backoff per SetRetry before Put gives
// up — a brief disk hiccup must not silently drop the entry.
func (s *Store) Put(key [sha256.Size]byte, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		// An unencodable value is the caller's bug, not disk weather:
		// no retry, no observer signal.
		return fmt.Errorf("diskcache: encoding entry: %w", err)
	}
	var header [headerSize]byte
	copy(header[:4], entryMagic)
	binary.LittleEndian.PutUint32(header[4:8], FormatVersion)
	sum := sha256.Sum256(payload.Bytes())
	copy(header[8:8+sha256.Size], sum[:])
	binary.LittleEndian.PutUint64(header[8+sha256.Size:], uint64(payload.Len()))

	s.mu.Lock()
	attempts, backoff := s.retryAttempts, s.retryBackoff
	s.mu.Unlock()

	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			s.count(func(st *Stats) { st.Retries++ })
			time.Sleep(backoff << (attempt - 1))
		}
		if err = s.writeEntry(key, header[:], payload.Bytes()); err == nil {
			break
		}
	}
	if err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		s.observe(OpPut, err)
		return fmt.Errorf("diskcache: publishing entry: %w", err)
	}
	s.observe(OpPut, nil)

	s.mu.Lock()
	s.stats.Writes++
	s.sincePut++
	runGC := s.sincePut >= gcEvery
	if runGC {
		s.sincePut = 0
	}
	s.mu.Unlock()
	if runGC {
		// Concurrent GC passes are safe (removals tolerate ENOENT);
		// the cadence counter just keeps them rare. A GC failure is not
		// a Put failure — the entry is already published — so it only
		// reaches the observer.
		if _, gcErr := s.GC(); gcErr != nil {
			s.observe(OpGC, gcErr)
		}
	}
	return nil
}

// writeEntry is one attempt at the temp-write-rename publish. Any
// failure removes the temp file (best effort) so a retried or
// abandoned attempt never leaves a partial entry behind.
func (s *Store) writeEntry(key [sha256.Size]byte, header, payload []byte) error {
	fsys := s.fs()
	tmp, err := fsys.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("temp file: %w", err)
	}
	name := tmp.Name()
	if _, err = tmp.Write(header); err == nil {
		_, err = tmp.Write(payload)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(name) //nolint:errcheck // best-effort cleanup of a failed attempt
		return fmt.Errorf("writing entry: %w", err)
	}
	if err := fsys.Rename(name, s.path(key)); err != nil {
		fsys.Remove(name) //nolint:errcheck // best-effort cleanup of a failed attempt
		return fmt.Errorf("renaming entry: %w", err)
	}
	return nil
}

// GC enforces the size cap, removing the least-recently-used entries
// (oldest mtime first) until the directory's entry total fits. It also
// sweeps abandoned temp files. Returns how many entries it evicted.
func (s *Store) GC() (evicted int, err error) {
	fsys := s.fs()
	dents, err := fsys.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("diskcache: scanning %s: %w", s.dir, err)
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var (
		entries []entry
		total   int64
	)
	for _, de := range dents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		info, ierr := de.Info()
		if ierr != nil {
			continue // deleted underneath us: nothing to account
		}
		if matched, _ := filepath.Match(tmpPattern, name); matched {
			// A live writer's temp file is seconds old; anything older
			// was abandoned by a crashed process.
			if time.Since(info.ModTime()) > time.Hour {
				fsys.Remove(filepath.Join(s.dir, name)) //nolint:errcheck // best-effort sweep
			}
			continue
		}
		if filepath.Ext(name) != entrySuffix {
			continue
		}
		entries = append(entries, entry{filepath.Join(s.dir, name), info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= s.maxBytes {
		return 0, nil
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable tie-break
	})
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if rmErr := fsys.Remove(e.path); rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
			continue // another process beat us or the file is busy; skip
		}
		total -= e.size
		evicted++
	}
	if evicted > 0 {
		s.count(func(st *Stats) { st.Evictions += uint64(evicted) })
	}
	return evicted, nil
}

// Verify scans dir and validates every published entry end to end
// (magic, version, length, checksum), returning how many entries it
// checked. It is the chaos-test and post-crash audit tool: after a
// storm of injected faults, a clean Verify proves the atomic-publish
// and retry machinery let nothing torn or truncated reach an entry
// slot. Temp files are reported as an error only alongside `strict`,
// since a live writer legitimately owns one for a few milliseconds.
func Verify(dir string, strict bool) (checked int, err error) {
	dents, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("diskcache: verifying %s: %w", dir, err)
	}
	for _, de := range dents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if matched, _ := filepath.Match(tmpPattern, name); matched {
			if strict {
				return checked, fmt.Errorf("diskcache: verifying %s: leftover temp file %s", dir, name)
			}
			continue
		}
		if filepath.Ext(name) != entrySuffix {
			continue
		}
		path := filepath.Join(dir, name)
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			return checked, fmt.Errorf("diskcache: verifying %s: %w", path, rerr)
		}
		if _, derr := decodeEntry(blob); derr != nil {
			return checked, fmt.Errorf("diskcache: verifying %s: %w", path, derr)
		}
		checked++
	}
	return checked, nil
}
