package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

type payload struct {
	Name    string
	Series  []float64
	ByName  map[string]int64
	Nested  struct{ A, B float64 }
	Version int
}

func samplePayload(n int) payload {
	p := payload{
		Name:    "gzip/adaptive",
		ByName:  map[string]int64{"ialu": 123, "load": 456},
		Version: 7,
	}
	p.Nested.A, p.Nested.B = 1.5, -2.25
	p.Series = make([]float64, n)
	for i := range p.Series {
		p.Series[i] = float64(i) * 0.3125
	}
	return p
}

func key(b byte) [sha256.Size]byte {
	var k [sha256.Size]byte
	k[0] = b
	return k
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := samplePayload(1000)
	if err := s.Put(key(1), &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(1), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip mutated the payload:\n want %+v\n got  %+v", want, got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 write", st)
	}
}

func TestGetMiss(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(9), &got); !errors.Is(err, ErrMiss) {
		t.Fatalf("Get on empty store = %v, want ErrMiss", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 miss", st)
	}
}

// entryFile returns the single *.res file in the store directory.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry file, got %v (err %v)", matches, err)
	}
	return matches[0]
}

// TestCorruptEntryFallsBack asserts a bit-flipped payload fails its
// checksum, reports ErrCorrupt, and is deleted so the slot heals.
func TestCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := samplePayload(64)
	if err := s.Put(key(2), &want); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var got payload
	if err := s.Get(key(2), &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt entry = %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt entry was not deleted")
	}
	// The slot works again after a rewrite.
	if err := s.Put(key(2), &want); err != nil {
		t.Fatal(err)
	}
	if err := s.Get(key(2), &got); err != nil {
		t.Fatalf("Get after heal: %v", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt", st)
	}
}

// TestTruncatedEntryFallsBack covers the torn-write crash shape.
func TestTruncatedEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(3), samplePayload(128)); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	if err := os.Truncate(path, headerSize+5); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(3), &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on truncated entry = %v, want ErrCorrupt", err)
	}
}

// TestVersionMismatchFallsBack asserts an entry stamped with a foreign
// FormatVersion misses with ErrVersionMismatch and is deleted.
func TestVersionMismatchFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(4), samplePayload(16)); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(blob[4:8], FormatVersion+1)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(4), &got); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("Get on future-version entry = %v, want ErrVersionMismatch", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale-version entry was not deleted")
	}
	if st := s.Stats(); st.Stale != 1 {
		t.Errorf("stats = %+v, want 1 stale", st)
	}
}

// TestConcurrentWritersSameKey asserts racing writers of one key leave
// exactly one complete, decodable entry (atomic rename publication).
func TestConcurrentWritersSameKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := samplePayload(2048)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := s.Put(key(5), &want); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var got payload
	if err := s.Get(key(5), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("entry torn by concurrent writers")
	}
	entryFile(t, dir) // asserts exactly one entry and no leaked temp files beyond tmp-* cleanup
	leftovers, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if len(leftovers) != 0 {
		t.Errorf("leaked temp files: %v", leftovers)
	}
}

// TestGCEvictsOldestFirst asserts the size cap is enforced in
// LRU-by-mtime order: the untouched oldest entries go first and the
// most recently used survive.
func TestGCEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Four ~300 KB entries against a 1 MiB cap: at most 3 fit.
	base := time.Now().Add(-time.Hour)
	for i := byte(0); i < 4; i++ {
		if err := s.Put(key(i), samplePayload(70_000)); err != nil {
			t.Fatal(err)
		}
		// Spread mtimes a minute apart, oldest = key(0).
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(key(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	evicted, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if evicted == 0 {
		t.Fatal("GC evicted nothing over a full cap")
	}
	var got payload
	if err := s.Get(key(0), &got); !errors.Is(err, ErrMiss) {
		t.Errorf("oldest entry survived GC (err %v)", err)
	}
	if err := s.Get(key(3), &got); err != nil {
		t.Errorf("newest entry was evicted: %v", err)
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Errorf("stats = %+v, want evictions recorded", st)
	}
}

// TestGetRefreshesMtime asserts a served entry is touched, so a hit
// protects an old entry from the next GC pass.
func TestGetRefreshesMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(6), samplePayload(8)); err != nil {
		t.Fatal(err)
	}
	path := s.path(key(6))
	old := time.Now().Add(-24 * time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(6), &got); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.ModTime().Before(old.Add(time.Hour)) {
		t.Error("Get did not refresh the entry mtime")
	}
}

// TestOpenRunsInitialGC asserts a directory inherited over the cap is
// bounded at Open.
func TestOpenRunsInitialGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 6; i++ {
		if err := s.Put(key(i), samplePayload(70_000)); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "*"+entrySuffix))
	var total int64
	for _, m := range matches {
		info, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 1<<20 {
		t.Errorf("store holds %d bytes after re-Open, cap is %d", total, 1<<20)
	}
	_ = s2
}

// TestGetReusesReadBuffers is the allocation regression test for the
// warm hit path: once the blob pool is warm, repeated Gets of a
// multi-megabyte entry must not re-allocate the read buffer. The
// decoded value's own storage (the Series slice, the map) is a real
// cost of returning data and is excluded by measuring total heap bytes
// against a budget of roughly twice the decoded size — far below the
// ~2x entry-size churn the unpooled path paid per hit.
func TestGetReusesReadBuffers(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200_000 // 1.6 MB of series data per entry
	if err := s.Put(key(1), samplePayload(n)); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(key(1), &got); err != nil { // warm the pool
		t.Fatal(err)
	}

	const rounds = 8
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		var v payload
		if err := s.Get(key(1), &v); err != nil {
			t.Fatal(err)
		}
		if len(v.Series) != n {
			t.Fatalf("decoded %d samples, want %d", len(v.Series), n)
		}
	}
	runtime.ReadMemStats(&after)

	perGet := int64(after.TotalAlloc-before.TotalAlloc) / rounds
	decoded := int64(n * 8)
	// A warm Get pays for the decoded value itself (~decoded bytes)
	// plus gob's internal message buffer (gob always copies the payload
	// into a fresh per-Decoder buffer — about one more decoded-size
	// allocation). The pooled blob must not add a third copy: hold the
	// line at twice the decoded size, well under the ~3x the unpooled
	// path paid.
	budget := 2 * decoded
	if perGet > budget {
		t.Errorf("warm Get allocates %d B/op, budget %d (decoded payload is %d)",
			perGet, budget, decoded)
	}
}
