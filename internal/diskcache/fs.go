package diskcache

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"time"
)

// FS abstracts the filesystem operations the store performs, so tests
// and chaos tooling can inject transient I/O failures underneath a
// real Store without touching the on-disk layout. The default is the
// process filesystem (OSFS); FaultFS wraps any FS with deterministic
// failure injection.
type FS interface {
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
	MkdirAll(path string, perm fs.FileMode) error
}

// File is the slice of *os.File the store uses.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Stat() (fs.FileInfo, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

// Open opens name for reading.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// CreateTemp creates a unique temp file in dir.
func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Rename renames (moves) oldpath to newpath.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes the named file.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir reads the named directory.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Chtimes changes the access and modification times of the named file.
func (OSFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// MkdirAll creates the named directory and any missing parents.
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ErrInjected marks an I/O failure synthesized by FaultFS. Tests and
// chaos probes match it with errors.Is to tell injected faults from
// real ones.
var ErrInjected = errors.New("diskcache: injected I/O fault")

// The operation names FaultFS can be armed against.
const (
	FaultOpen       = "open"
	FaultCreateTemp = "createtemp"
	FaultWrite      = "write"
	FaultRename     = "rename"
	FaultRemove     = "remove"
	FaultReadDir    = "readdir"
	FaultChtimes    = "chtimes"
	FaultMkdirAll   = "mkdirall"
)

// faultMode selects how an armed FaultFS decides which operations fail.
type faultMode int

const (
	faultOff   faultMode = iota
	faultAll             // every armed op fails until Heal
	faultNext            // the next N armed ops fail, then auto-heal
	faultEvery           // every k-th armed op fails until Heal
)

// FaultFS wraps an FS with deterministic failure injection: arm it
// against a set of operations and it synthesizes ErrInjected-wrapped
// errors by simple counting (no randomness), so a failing test replays
// exactly. The zero set of armed operations passes everything through.
// It is safe for concurrent use.
type FaultFS struct {
	base FS

	mu        sync.Mutex
	mode      faultMode
	armed     map[string]bool
	remaining int    // faultNext budget
	every     int    // faultEvery period
	seen      int    // armed ops observed in faultEvery mode
	injected  uint64 // total faults synthesized
}

// NewFaultFS wraps base (nil = OSFS) with injection disabled.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{base: base, armed: map[string]bool{}}
}

// Fail arms the listed operations (default: all write-path ops) to
// fail on every call until Heal.
func (f *FaultFS) Fail(ops ...string) { f.arm(faultAll, 0, ops) }

// FailNext arms the listed operations to fail the next n calls, then
// auto-heals.
func (f *FaultFS) FailNext(n int, ops ...string) { f.arm(faultNext, n, ops) }

// FailEvery arms the listed operations so every k-th call fails (k=1
// behaves like Fail) until Heal — the chaos-storm setting: a stream of
// operations sees a deterministic sprinkle of faults.
func (f *FaultFS) FailEvery(k int, ops ...string) { f.arm(faultEvery, k, ops) }

// Heal disarms all injection.
func (f *FaultFS) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mode = faultOff
	f.armed = map[string]bool{}
	f.seen = 0
}

// Injected reports how many faults have been synthesized since
// construction.
func (f *FaultFS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Failing reports whether any operation is currently armed.
func (f *FaultFS) Failing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mode != faultOff
}

func (f *FaultFS) arm(mode faultMode, n int, ops []string) {
	if len(ops) == 0 {
		ops = []string{FaultCreateTemp, FaultWrite, FaultRename}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mode = mode
	f.armed = make(map[string]bool, len(ops))
	for _, op := range ops {
		f.armed[op] = true
	}
	f.remaining = n
	f.every = n
	f.seen = 0
}

// inject returns a synthetic error when op is armed and the current
// mode elects this call to fail, nil otherwise.
func (f *FaultFS) inject(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.mode == faultOff || !f.armed[op] {
		return nil
	}
	fail := false
	switch f.mode {
	case faultAll:
		fail = true
	case faultNext:
		if f.remaining > 0 {
			f.remaining--
			fail = true
		}
		if f.remaining == 0 {
			f.mode = faultOff
		}
	case faultEvery:
		f.seen++
		fail = f.every > 0 && f.seen%f.every == 0
	}
	if !fail {
		return nil
	}
	f.injected++
	return fmt.Errorf("%w: %s %s", ErrInjected, op, name)
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.inject(FaultOpen, name); err != nil {
		return nil, err
	}
	return f.base.Open(name)
}

// CreateTemp implements FS. The returned file shares the wrapper's
// injection state, so armed write faults hit mid-stream too.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.inject(FaultCreateTemp, dir); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.inject(FaultRename, newpath); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.inject(FaultRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := f.inject(FaultReadDir, name); err != nil {
		return nil, err
	}
	return f.base.ReadDir(name)
}

// Chtimes implements FS.
func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	if err := f.inject(FaultChtimes, name); err != nil {
		return err
	}
	return f.base.Chtimes(name, atime, mtime)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err := f.inject(FaultMkdirAll, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

// faultFile injects write faults into an open temp file.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.inject(FaultWrite, f.Name()); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}
