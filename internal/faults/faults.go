// Package faults is a deterministic, seeded fault-injection layer for
// the DVFS control loop. The paper's robustness story (Section 3's
// "reject deviant events", the Section-4 stability analysis) is argued
// over *perfect* queue-occupancy readings and instantaneous, lossless
// actuation; this package stresses that story the way control-loop work
// such as Chen/Wardi/Yalamanchili and Xia et al. does, by corrupting
// the two narrow interfaces the controller actually touches:
//
//   - the sensor path: what the controller reads as queue occupancy
//     (additive Gaussian noise, coarse quantization, dropped/stale
//     samples, transient counter corruption);
//   - the actuator path: what happens to a commanded frequency change
//     (deferred actuation, silently missed steps, a regulator that
//     latches stuck at the current operating point, PLL relock jitter
//     on top of the Table-1 transition cost).
//
// Everything is driven by per-slot RNGs derived from one seed, so a
// faulty run replays byte-identically. The zero value of Config
// disables injection entirely: the simulator takes the exact pre-fault
// code paths and produces bit-identical outputs.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"mcddvfs/internal/clock"
)

// SensorConfig corrupts the queue-occupancy readings a controller sees.
// The true occupancy (and everything downstream of the queues) is
// untouched: sensing faults are observation faults.
type SensorConfig struct {
	// NoiseStdDev is the standard deviation, in queue entries, of
	// zero-mean Gaussian noise added to every reading.
	NoiseStdDev float64
	// QuantizeStep coarsens readings to multiples of this many entries
	// (0 or 1 = exact). Models a cheap saturating counter tap.
	QuantizeStep int
	// DropRate is the probability a sample is lost; the controller then
	// sees the last delivered (stale) reading.
	DropRate float64
	// CorruptRate is the probability of a transient counter corruption:
	// the reading is replaced by a uniform value in [0, CorruptMax].
	CorruptRate float64
	// CorruptMax bounds corrupted readings (default 64, about the
	// largest Table-1 queue).
	CorruptMax int
}

// ActuatorConfig corrupts the path from a controller's decision to the
// clock domain's target frequency.
type ActuatorConfig struct {
	// DelayTicks defers every command by this many sampling ticks
	// before it reaches the domain (actuation latency). A newer command
	// overwrites a still-pending one, as in a single-entry regulator
	// command latch.
	DelayTicks int
	// MissRate is the probability a command is silently dropped
	// (missed step).
	MissRate float64
	// StuckRate is the per-command probability that the regulator
	// latches at the current operating point and ignores every later
	// command for the rest of the run (stuck-at-frequency domain).
	StuckRate float64
	// RelockJitterNS adds a uniform extra delay in [0, RelockJitterNS]
	// nanoseconds to each accepted command: PLL relock jitter on top of
	// the Table-1 transition cost.
	RelockJitterNS float64
}

// Config is the complete fault model for one run. The zero value
// disables injection and leaves all simulator outputs bit-identical.
type Config struct {
	// Seed derives every per-slot fault RNG. Two runs with the same
	// Config (seed included) inject the identical fault sequence.
	Seed     int64
	Sensor   SensorConfig
	Actuator ActuatorConfig
}

// Enabled reports whether any fault is configured.
func (c Config) Enabled() bool {
	return c.Sensor != (SensorConfig{}) || c.Actuator != (ActuatorConfig{})
}

// Validate checks the configuration.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"Sensor.DropRate", c.Sensor.DropRate},
		{"Sensor.CorruptRate", c.Sensor.CorruptRate},
		{"Actuator.MissRate", c.Actuator.MissRate},
		{"Actuator.StuckRate", c.Actuator.StuckRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if c.Sensor.NoiseStdDev < 0 {
		return fmt.Errorf("faults: negative Sensor.NoiseStdDev %g", c.Sensor.NoiseStdDev)
	}
	if c.Sensor.QuantizeStep < 0 {
		return fmt.Errorf("faults: negative Sensor.QuantizeStep %d", c.Sensor.QuantizeStep)
	}
	if c.Sensor.CorruptMax < 0 {
		return fmt.Errorf("faults: negative Sensor.CorruptMax %d", c.Sensor.CorruptMax)
	}
	if c.Actuator.DelayTicks < 0 {
		return fmt.Errorf("faults: negative Actuator.DelayTicks %d", c.Actuator.DelayTicks)
	}
	if c.Actuator.RelockJitterNS < 0 {
		return fmt.Errorf("faults: negative Actuator.RelockJitterNS %g", c.Actuator.RelockJitterNS)
	}
	return nil
}

// Intensity returns the canonical fault profile scaled by level in
// [0, 1]: the knob the robustness sweep turns. Level 0 is fault-free;
// level 1 is a harsh but survivable environment (±2-entry noise, 20%
// dropped samples, occasional counter corruption, 3-tick actuation
// delay, 10% missed steps, 500 ns relock jitter). StuckRate stays 0
// here — a stuck domain measures a different failure mode and is
// enabled explicitly.
func Intensity(level float64, seed int64) Config {
	if level <= 0 {
		return Config{}
	}
	if level > 1 {
		level = 1
	}
	return Config{
		Seed: seed,
		Sensor: SensorConfig{
			NoiseStdDev: 2.0 * level,
			DropRate:    0.20 * level,
			CorruptRate: 0.02 * level,
			CorruptMax:  64,
		},
		Actuator: ActuatorConfig{
			DelayTicks:     int(math.Round(3 * level)),
			MissRate:       0.10 * level,
			RelockJitterNS: 500 * level,
		},
	}
}

// Injector owns the per-domain fault state of one simulation. Slots
// identify controlled domains (the simulator uses its execution-domain
// indices plus one extra slot for the front end); each slot gets
// independent sensor and actuator RNG streams so the fault sequence
// seen by one domain never depends on what another domain drew.
type Injector struct {
	cfg    Config
	period clock.Time
}

// NewInjector builds an injector for one run. samplingPeriod converts
// ActuatorConfig.DelayTicks into simulated time. It returns nil when
// cfg has no fault enabled; a nil *Injector hands out nil sensors and
// actuators, which the simulator treats as absent.
func NewInjector(cfg Config, samplingPeriod clock.Time) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, period: samplingPeriod}
}

// slotSeed decorrelates the per-slot streams from each other and from
// the simulator's own seeded RNGs (clock jitter, trace generation).
func (in *Injector) slotSeed(slot, stream int64) int64 {
	h := uint64(in.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(slot)*0xBF58476D1CE4E5B9 + uint64(stream)*0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// Sensor returns the fault wrapper for one slot's occupancy readings,
// or nil when sensing is clean (nil receiver included).
func (in *Injector) Sensor(slot int) *Sensor {
	if in == nil || in.cfg.Sensor == (SensorConfig{}) {
		return nil
	}
	return &Sensor{
		cfg: in.cfg.Sensor,
		rng: rand.New(rand.NewSource(in.slotSeed(int64(slot), 1))),
	}
}

// Actuator returns the fault wrapper for one slot's frequency commands,
// or nil when actuation is clean (nil receiver included).
func (in *Injector) Actuator(slot int) *Actuator {
	if in == nil || in.cfg.Actuator == (ActuatorConfig{}) {
		return nil
	}
	return &Actuator{
		cfg:    in.cfg.Actuator,
		rng:    rand.New(rand.NewSource(in.slotSeed(int64(slot), 2))),
		period: in.period,
	}
}

// Sensor corrupts one domain's occupancy readings. Not safe for
// concurrent use; the simulator is single-threaded by design.
type Sensor struct {
	cfg      SensorConfig
	rng      *rand.Rand
	last     int
	haveLast bool
}

// Read maps a true occupancy to the value the controller observes.
// Fault order is fixed — drop, corrupt, noise, quantize, clamp — so a
// seed fully determines the sequence.
func (s *Sensor) Read(occ int) int {
	if s.cfg.DropRate > 0 && s.rng.Float64() < s.cfg.DropRate {
		if s.haveLast {
			return s.last
		}
		// Nothing delivered yet: a dropped first sample reads as empty.
		occ = 0
	} else {
		if s.cfg.CorruptRate > 0 && s.rng.Float64() < s.cfg.CorruptRate {
			max := s.cfg.CorruptMax
			if max <= 0 {
				max = 64
			}
			occ = s.rng.Intn(max + 1)
		}
		if s.cfg.NoiseStdDev > 0 {
			occ += int(math.Round(s.rng.NormFloat64() * s.cfg.NoiseStdDev))
		}
		if step := s.cfg.QuantizeStep; step > 1 {
			occ = (occ / step) * step
		}
		if occ < 0 {
			occ = 0
		}
	}
	s.last = occ
	s.haveLast = true
	return occ
}

// Actuator corrupts one domain's frequency commands. It must be
// consulted on every sampling tick (change=false included) so deferred
// commands are released on time.
type Actuator struct {
	cfg    ActuatorConfig
	rng    *rand.Rand
	period clock.Time

	stuck      bool
	pending    bool
	pendingMHz float64
	dueAt      clock.Time

	// Event counters for reports and tests.
	missed  int
	applied int
}

// Filter maps a controller decision to what reaches the clock domain
// this tick. With change=false it still releases a pending deferred
// command whose time has come.
func (a *Actuator) Filter(now clock.Time, targetMHz float64, change bool) (float64, bool) {
	if a.stuck {
		a.pending = false
		if change {
			a.missed++
		}
		return 0, false
	}
	if change {
		if a.cfg.StuckRate > 0 && a.rng.Float64() < a.cfg.StuckRate {
			a.stuck = true
			a.pending = false
			a.missed++
			return 0, false
		}
		if a.cfg.MissRate > 0 && a.rng.Float64() < a.cfg.MissRate {
			a.missed++
			return 0, false
		}
		delay := clock.Time(a.cfg.DelayTicks) * a.period
		if a.cfg.RelockJitterNS > 0 {
			delay += clock.Time(a.rng.Float64() * a.cfg.RelockJitterNS * float64(clock.Nanosecond))
		}
		if delay <= 0 {
			a.applied++
			return targetMHz, true
		}
		// Single-entry command latch: a newer command overwrites an
		// undelivered older one.
		a.pending = true
		a.pendingMHz = targetMHz
		a.dueAt = now + delay
		return 0, false
	}
	if a.pending && now >= a.dueAt {
		a.pending = false
		a.applied++
		return a.pendingMHz, true
	}
	return 0, false
}

// PendingDue reports whether a deferred command sits in the latch and
// when it comes due. The event engine schedules an EvActuation wake for
// the controlled domain at that time; a newer deferred command
// overwrites the latch and reschedules the wake.
func (a *Actuator) PendingDue() (clock.Time, bool) { return a.dueAt, a.pending }

// Stuck reports whether the regulator has latched.
func (a *Actuator) Stuck() bool { return a.stuck }

// Counts returns how many commands were applied and how many were lost
// (missed, latched away, or superseded commands are not counted as
// applied).
func (a *Actuator) Counts() (applied, missed int) { return a.applied, a.missed }
