package faults

import (
	"testing"

	"mcddvfs/internal/clock"
)

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero Config does not validate: %v", err)
	}
	if in := NewInjector(cfg, clock.Nanosecond); in != nil {
		t.Fatal("NewInjector built an injector for a zero Config")
	}
	// A nil injector must hand out nil wrappers so the simulator keeps
	// its pre-fault code paths.
	var in *Injector
	if s := in.Sensor(0); s != nil {
		t.Error("nil injector returned a sensor")
	}
	if a := in.Actuator(0); a != nil {
		t.Error("nil injector returned an actuator")
	}

	// Seed alone does not enable injection: only actual fault knobs do.
	if (Config{Seed: 42}).Enabled() {
		t.Error("seed-only Config reports Enabled")
	}
}

func TestIntensityProfile(t *testing.T) {
	if got := Intensity(0, 7); got != (Config{}) {
		t.Errorf("Intensity(0) = %+v, want zero Config", got)
	}
	if got := Intensity(-3, 7); got != (Config{}) {
		t.Errorf("Intensity(-3) = %+v, want zero Config", got)
	}
	// Levels above 1 clamp to the level-1 profile.
	if Intensity(5, 7) != Intensity(1, 7) {
		t.Error("Intensity does not clamp levels above 1")
	}
	for _, lv := range []float64{0.1, 0.25, 0.5, 0.75, 1} {
		cfg := Intensity(lv, 7)
		if !cfg.Enabled() {
			t.Errorf("Intensity(%g) not enabled", lv)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("Intensity(%g) invalid: %v", lv, err)
		}
		if cfg.Seed != 7 {
			t.Errorf("Intensity(%g) lost the seed", lv)
		}
		if cfg.Actuator.StuckRate != 0 {
			t.Errorf("Intensity(%g) enables stuck-at faults", lv)
		}
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	bad := []Config{
		{Sensor: SensorConfig{DropRate: 1.5}},
		{Sensor: SensorConfig{CorruptRate: -0.1}},
		{Sensor: SensorConfig{NoiseStdDev: -1}},
		{Sensor: SensorConfig{QuantizeStep: -2}},
		{Sensor: SensorConfig{CorruptMax: -1}},
		{Actuator: ActuatorConfig{MissRate: 2}},
		{Actuator: ActuatorConfig{StuckRate: -0.5}},
		{Actuator: ActuatorConfig{DelayTicks: -1}},
		{Actuator: ActuatorConfig{RelockJitterNS: -10}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, cfg)
		}
	}
}

// TestSensorDeterministicPerSlot asserts the same (seed, slot) replays
// the identical reading sequence while distinct slots draw independent
// streams.
func TestSensorDeterministicPerSlot(t *testing.T) {
	cfg := Intensity(1, 11)
	mk := func(slot int) *Sensor { return NewInjector(cfg, clock.Nanosecond).Sensor(slot) }

	a, b, other := mk(0), mk(0), mk(1)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		occ := i % 17
		ra, rb, ro := a.Read(occ), b.Read(occ), other.Read(occ)
		if ra != rb {
			same = false
		}
		if ra != ro {
			diff = true
		}
	}
	if !same {
		t.Error("same slot and seed produced different reading sequences")
	}
	if !diff {
		t.Error("distinct slots produced identical fault streams")
	}
}

func TestSensorNeverNegative(t *testing.T) {
	s := NewInjector(Config{Seed: 3, Sensor: SensorConfig{NoiseStdDev: 50}}, clock.Nanosecond).Sensor(0)
	for i := 0; i < 1000; i++ {
		if got := s.Read(1); got < 0 {
			t.Fatalf("reading %d is negative", got)
		}
	}
}

func TestSensorDropHoldsStaleReading(t *testing.T) {
	// DropRate 1: nothing is ever delivered. The first read has no
	// stale value to fall back on and reads empty; every later read
	// repeats it.
	s := NewInjector(Config{Sensor: SensorConfig{DropRate: 1}}, clock.Nanosecond).Sensor(0)
	for i, occ := range []int{9, 23, 4, 17} {
		if got := s.Read(occ); got != 0 {
			t.Fatalf("read %d: got %d, want stale 0", i, got)
		}
	}
}

func TestSensorQuantizes(t *testing.T) {
	s := NewInjector(Config{Sensor: SensorConfig{QuantizeStep: 8}}, clock.Nanosecond).Sensor(0)
	for occ := 0; occ < 40; occ++ {
		if got := s.Read(occ); got != (occ/8)*8 {
			t.Fatalf("Read(%d) = %d, want %d", occ, got, (occ/8)*8)
		}
	}
}

func TestActuatorDelaysCommand(t *testing.T) {
	period := 10 * clock.Nanosecond
	a := NewInjector(Config{Actuator: ActuatorConfig{DelayTicks: 2}}, period).Actuator(0)

	if _, ch := a.Filter(0, 1000, true); ch {
		t.Fatal("delayed command applied immediately")
	}
	if _, ch := a.Filter(period, 0, false); ch {
		t.Fatal("command released one tick early")
	}
	mhz, ch := a.Filter(2*period, 0, false)
	if !ch || mhz != 1000 {
		t.Fatalf("due command not released: (%g, %v)", mhz, ch)
	}
	if applied, missed := a.Counts(); applied != 1 || missed != 0 {
		t.Errorf("counts = (%d, %d), want (1, 0)", applied, missed)
	}
}

func TestActuatorLatchOverwrites(t *testing.T) {
	period := 10 * clock.Nanosecond
	a := NewInjector(Config{Actuator: ActuatorConfig{DelayTicks: 1}}, period).Actuator(0)

	a.Filter(0, 1000, true)      // pending, due at 10ns
	a.Filter(period, 1500, true) // newer command overwrites, due at 20ns
	if mhz, ch := a.Filter(2*period, 0, false); !ch || mhz != 1500 {
		t.Fatalf("latch released (%g, %v), want the newer 1500", mhz, ch)
	}
	if applied, _ := a.Counts(); applied != 1 {
		t.Errorf("applied = %d, want 1 (superseded command is not applied)", applied)
	}
}

func TestActuatorMissesEveryCommand(t *testing.T) {
	a := NewInjector(Config{Actuator: ActuatorConfig{MissRate: 1}}, clock.Nanosecond).Actuator(0)
	for i := 0; i < 10; i++ {
		if _, ch := a.Filter(clock.Time(i), 900, true); ch {
			t.Fatal("command got through a MissRate-1 actuator")
		}
	}
	if applied, missed := a.Counts(); applied != 0 || missed != 10 {
		t.Errorf("counts = (%d, %d), want (0, 10)", applied, missed)
	}
}

func TestActuatorSticks(t *testing.T) {
	a := NewInjector(Config{Actuator: ActuatorConfig{StuckRate: 1}}, clock.Nanosecond).Actuator(0)
	if _, ch := a.Filter(0, 800, true); ch {
		t.Fatal("command applied by a regulator that should latch")
	}
	if !a.Stuck() {
		t.Fatal("regulator did not latch")
	}
	for i := 1; i < 5; i++ {
		if _, ch := a.Filter(clock.Time(i), 700, true); ch {
			t.Fatal("stuck regulator applied a command")
		}
	}
	if applied, missed := a.Counts(); applied != 0 || missed != 5 {
		t.Errorf("counts = (%d, %d), want (0, 5)", applied, missed)
	}
}
