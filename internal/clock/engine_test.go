package clock

import (
	"math/rand"
	"testing"
)

func TestEngineTieBreaksByRegistrationOrder(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	b := NewDomain(DomainConfig{Name: "b", FreqMHz: 1000})
	e := NewEngine(a, b)
	i1, t1 := e.Next()
	e.Advance(i1)
	i2, t2 := e.Next()
	e.Advance(i2)
	if i1 != 0 || i2 != 1 || t1 != t2 {
		t.Errorf("tie broke as (%d@%v, %d@%v); want (0, 1) at equal times", i1, t1, i2, t2)
	}
}

func TestEngineMatchesSchedulerOrder(t *testing.T) {
	mk := func() []*Domain {
		return []*Domain{
			NewDomain(DomainConfig{Name: "a", FreqMHz: 1000, JitterPS: 110, Seed: 1}),
			NewDomain(DomainConfig{Name: "b", FreqMHz: 700, JitterPS: 110, Seed: 2}),
			NewDomain(DomainConfig{Name: "c", FreqMHz: 250, Seed: 3}),
		}
	}
	ds, de := mk(), mk()
	s := NewScheduler(ds...)
	e := NewEngine(de...)
	for i := 0; i < 10000; i++ {
		sd, st := s.Step()
		ei, _ := e.Next()
		et := e.Advance(ei)
		if sd.Name() != de[ei].Name() || st != et {
			t.Fatalf("step %d: scheduler %s@%v, engine %s@%v", i, sd.Name(), st, de[ei].Name(), et)
		}
	}
}

func TestEventQueueDeterministicOrder(t *testing.T) {
	var q eventQueue
	// Same time: kind breaks the tie; same kind: scheduling order does.
	q.push(Event{At: 10, Kind: EvFreqChange, seq: 0})
	q.push(Event{At: 10, Kind: EvDeadline, seq: 1})
	q.push(Event{At: 5, Kind: EvActuation, seq: 2})
	q.push(Event{At: 10, Kind: EvDeadline, seq: 3})
	q.push(Event{At: 10, Kind: EvQueuePush, seq: 4})
	want := []Event{
		{At: 5, Kind: EvActuation, seq: 2},
		{At: 10, Kind: EvDeadline, seq: 1},
		{At: 10, Kind: EvDeadline, seq: 3},
		{At: 10, Kind: EvQueuePush, seq: 4},
		{At: 10, Kind: EvFreqChange, seq: 0},
	}
	for i, w := range want {
		got := q.pop()
		if got != w {
			t.Errorf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestEventQueueHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	for i := 0; i < 500; i++ {
		q.push(Event{
			At:   Time(rng.Int63n(100)),
			Kind: EventKind(rng.Intn(NumEventKinds)),
			seq:  uint64(i),
		})
	}
	prev := q.pop()
	for q.len() > 0 {
		next := q.pop()
		if next.before(prev) {
			t.Fatalf("heap order violated: %+v popped after %+v", next, prev)
		}
		prev = next
	}
}

func TestEngineSleepWakeDeadline(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	e := NewEngine(a)
	e.Sleep(0, 2500*Picosecond, false)
	if !e.Asleep(0) {
		t.Fatal("domain not asleep after Sleep")
	}
	skipped := 0
	for {
		i, tm := e.Next()
		if tm >= e.WakeAt(i) {
			e.WakeDue(i)
			break
		}
		e.IdleAdvance(i)
		skipped++
	}
	if e.Asleep(0) {
		t.Fatal("domain still asleep after WakeDue")
	}
	// Edges at 0 ps and 1000 ps precede the 2500 ps deadline; the edge
	// at 2000 ps does too (2000 < 2500), so three edges are skipped and
	// the 3000 ps edge runs slow.
	if skipped != 3 {
		t.Errorf("skipped %d edges before deadline, want 3", skipped)
	}
	st := e.Stats(0)
	if st.SkippedEdges != 3 || st.Sleeps != 1 || st.Wakes[EvDeadline] != 1 {
		t.Errorf("stats = %+v, want 3 skipped, 1 sleep, 1 deadline wake", st)
	}
}

func TestEngineWakeIsIdempotentAndImmediate(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	e := NewEngine(a)
	e.Wake(0, EvQueuePush) // awake: no-op
	if got := e.Stats(0).Wakes[EvQueuePush]; got != 0 {
		t.Errorf("wake on awake domain counted: %d", got)
	}
	e.Sleep(0, Forever, false)
	e.Wake(0, EvQueuePush)
	if e.Asleep(0) {
		t.Fatal("domain asleep after Wake")
	}
	if got := e.Stats(0).Wakes[EvQueuePush]; got != 1 {
		t.Errorf("queue-push wakes = %d, want 1", got)
	}
}

func TestEngineScheduleCoalesces(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	e := NewEngine(a)
	e.Sleep(0, Forever, false)
	e.Schedule(5000*Picosecond, EvQueuePush, 0)
	if n := e.PendingEvents(); n != 1 {
		t.Fatalf("pending events = %d, want 1", n)
	}
	// A later event cannot lower the bound: coalesced away.
	e.Schedule(9000*Picosecond, EvQueuePush, 0)
	if n := e.PendingEvents(); n != 1 {
		t.Errorf("later event enqueued: pending = %d, want 1", n)
	}
	// An earlier event lowers the bound.
	e.Schedule(3000*Picosecond, EvActuation, 0)
	if got := e.WakeAt(0); got != 3000*Picosecond {
		t.Errorf("WakeAt = %v, want 3000 ps", got)
	}
	// Waking discards the domain's pending events lazily at the next
	// slow edge.
	e.Wake(0, EvFreqChange)
	e.Advance(0)
	if n := e.PendingEvents(); n != 0 {
		t.Errorf("stale events survived a slow edge: pending = %d", n)
	}
}

func TestEngineBroadcastIssue(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	b := NewDomain(DomainConfig{Name: "b", FreqMHz: 1000})
	c := NewDomain(DomainConfig{Name: "c", FreqMHz: 1000})
	e := NewEngine(a, b, c)
	e.Sleep(0, Forever, true)  // subscribed to issue broadcasts
	e.Sleep(1, Forever, false) // not subscribed
	e.BroadcastIssue(4000 * Picosecond)
	if got := e.WakeAt(0); got != 4000*Picosecond {
		t.Errorf("subscribed sleeper WakeAt = %v, want 4000 ps", got)
	}
	if got := e.WakeAt(1); got != Forever {
		t.Errorf("unsubscribed sleeper WakeAt = %v, want Forever", got)
	}
}

func TestEngineSleepTwicePanics(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	e := NewEngine(a)
	e.Sleep(0, Forever, false)
	defer func() {
		if recover() == nil {
			t.Error("second Sleep did not panic")
		}
	}()
	e.Sleep(0, Forever, false)
}
