// Package clock models simulated time and GALS (globally asynchronous,
// locally synchronous) clocking for a multiple-clock-domain processor.
//
// Simulated time is a count of femtoseconds since the start of the
// simulation. Each clock domain owns an independently generated clock
// whose frequency may change at run time under DVFS control; domains may
// also carry Gaussian edge jitter. Inter-domain communication pays a
// synchronization penalty governed by a synchronization window, following
// the arbitration-based interface design used by the MCD implementation of
// Semeraro et al.
package clock

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in femtoseconds.
//
// Femtosecond resolution keeps every Table-1 quantity integral: a 1 GHz
// clock period is exactly 1e6 fs, a 300 ps synchronization window is
// 3e5 fs, and ±110 ps jitter is representable without rounding drift.
// An int64 of femtoseconds covers ~2.5 hours of simulated time, far more
// than any run here needs.
type Time int64

// Common durations expressed in Time units.
const (
	Femtosecond Time = 1
	Picosecond  Time = 1e3
	Nanosecond  Time = 1e6
	Microsecond Time = 1e9
	Millisecond Time = 1e12
	Second      Time = 1e15
)

// Forever is a sentinel time later than any event in a simulation. It is
// used as the next-edge time of a stopped clock.
const Forever Time = math.MaxInt64

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t expressed in nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t expressed in microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dfs", int64(t))
	}
}

// PeriodForMHz returns the clock period for a frequency given in MHz.
// It panics if the frequency is not positive; a domain with no clock
// should be stopped, not run at zero frequency.
func PeriodForMHz(mhz float64) Time {
	if mhz <= 0 {
		panic(fmt.Sprintf("clock: non-positive frequency %g MHz", mhz))
	}
	return Time(math.Round(1e9 / mhz)) // 1 MHz -> 1e9 fs period
}

// FreqMHzForPeriod is the inverse of PeriodForMHz.
func FreqMHzForPeriod(p Time) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("clock: non-positive period %d", int64(p)))
	}
	return 1e9 / float64(p)
}
