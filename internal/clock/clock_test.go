package clock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeriodForMHz(t *testing.T) {
	tests := []struct {
		mhz  float64
		want Time
	}{
		{1000, 1 * Nanosecond},
		{250, 4 * Nanosecond},
		{500, 2 * Nanosecond},
		{1, 1000 * Nanosecond},
	}
	for _, tt := range tests {
		if got := PeriodForMHz(tt.mhz); got != tt.want {
			t.Errorf("PeriodForMHz(%g) = %v, want %v", tt.mhz, got, tt.want)
		}
	}
}

func TestPeriodForMHzPanicsOnNonPositive(t *testing.T) {
	for _, mhz := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PeriodForMHz(%g) did not panic", mhz)
				}
			}()
			PeriodForMHz(mhz)
		}()
	}
}

func TestFreqPeriodRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		mhz := 250 + float64(raw%750) // 250..1000 MHz
		p := PeriodForMHz(mhz)
		back := FreqMHzForPeriod(p)
		return math.Abs(back-mhz)/mhz < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		t    Time
		want string
	}{
		{500, "500fs"},
		{2 * Nanosecond, "2.000ns"},
		{3 * Microsecond, "3.000us"},
		{Millisecond, "1.000ms"},
		{Forever, "forever"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tt.t), got, tt.want)
		}
	}
}

func TestDomainFixedFrequencyEdges(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "fe", FreqMHz: 1000})
	for i := 0; i < 5; i++ {
		edge := d.Advance()
		if want := Time(i) * Nanosecond; edge != want {
			t.Fatalf("edge %d at %v, want %v", i, edge, want)
		}
	}
	if d.Cycles() != 5 {
		t.Errorf("Cycles() = %d, want 5", d.Cycles())
	}
}

func TestDomainSetTargetInstant(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "int", FreqMHz: 1000, MinMHz: 250, MaxMHz: 1000})
	d.Advance() // edge at 0
	d.SetTarget(0, 500)
	if got := d.FreqMHz(1); got != 500 {
		t.Fatalf("FreqMHz after instant transition = %g, want 500", got)
	}
	e1 := d.Advance()
	e2 := d.Advance()
	if e2-e1 != 2*Nanosecond {
		t.Errorf("period after retarget = %v, want 2ns", e2-e1)
	}
}

func TestDomainSetTargetClamps(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "int", FreqMHz: 500, MinMHz: 250, MaxMHz: 1000})
	d.SetTarget(0, 2000)
	if d.TargetMHz() != 1000 {
		t.Errorf("target after over-range request = %g, want 1000", d.TargetMHz())
	}
	d.SetTarget(0, 10)
	if d.TargetMHz() != 250 {
		t.Errorf("target after under-range request = %g, want 250", d.TargetMHz())
	}
}

func TestDomainSlewIsLinear(t *testing.T) {
	// 73.3 ns/MHz over a 100 MHz swing = 7330 ns of slew.
	slew := Time(73300) * Picosecond // 73.3ns in fs
	d := NewDomain(DomainConfig{Name: "fp", FreqMHz: 500, MinMHz: 250, MaxMHz: 1000, SlewPerMHz: slew})
	d.SetTarget(0, 600)
	total := Time(100) * slew
	if !d.InTransition(total - 1) {
		t.Fatal("expected to still be in transition just before slewEnd")
	}
	if d.InTransition(total) {
		t.Fatal("expected transition over at slewEnd")
	}
	// Midpoint frequency should be halfway.
	mid := d.FreqMHz(total / 2)
	if math.Abs(mid-550) > 0.5 {
		t.Errorf("midpoint frequency = %g, want ~550", mid)
	}
	if got := d.FreqMHz(total + 1); got != 600 {
		t.Errorf("final frequency = %g, want 600", got)
	}
	if d.Transitions() != 1 {
		t.Errorf("Transitions() = %d, want 1", d.Transitions())
	}
	if d.SlewTime() != total {
		t.Errorf("SlewTime() = %v, want %v", d.SlewTime(), total)
	}
}

func TestDomainRedundantTargetIsNoOp(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "ls", FreqMHz: 500, MinMHz: 250, MaxMHz: 1000})
	d.SetTarget(0, 500)
	if d.Transitions() != 0 {
		t.Errorf("redundant SetTarget counted as transition")
	}
}

func TestTransmetaIdlesDuringTransition(t *testing.T) {
	slew := Time(10) * Nanosecond
	d := NewDomain(DomainConfig{Name: "fp", FreqMHz: 500, MinMHz: 250, MaxMHz: 1000,
		SlewPerMHz: slew, Style: Transmeta})
	d.SetTarget(0, 510)
	if !d.Idle(5 * Nanosecond) {
		t.Error("Transmeta domain should idle mid-transition")
	}
	if d.Idle(200 * Nanosecond) {
		t.Error("Transmeta domain should run after transition")
	}
	x := NewDomain(DomainConfig{Name: "int", FreqMHz: 500, MinMHz: 250, MaxMHz: 1000,
		SlewPerMHz: slew, Style: XScale})
	x.SetTarget(0, 510)
	if x.Idle(5 * Nanosecond) {
		t.Error("XScale domain must never idle")
	}
}

func TestDomainEdgesMonotonicUnderJitterAndRetargets(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "int", FreqMHz: 1000, MinMHz: 250, MaxMHz: 1000,
		JitterPS: 110, Seed: 42, SlewPerMHz: Time(73300) * Picosecond})
	prev := Time(-1)
	for i := 0; i < 10000; i++ {
		if i%100 == 0 {
			// Alternate retargets to exercise slewing.
			if i%200 == 0 {
				d.SetTarget(d.NextEdge(), 250)
			} else {
				d.SetTarget(d.NextEdge(), 1000)
			}
		}
		e := d.Advance()
		if e <= prev {
			t.Fatalf("edge %d at %v not after previous %v", i, e, prev)
		}
		prev = e
	}
}

func TestJitterBounded(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "int", FreqMHz: 1000, JitterPS: 110, Seed: 7})
	period := PeriodForMHz(1000)
	bound := Time(110) * Picosecond
	prev := d.Advance()
	for i := 0; i < 5000; i++ {
		e := d.Advance()
		delta := e - prev - period
		if delta > bound || delta < -bound {
			t.Fatalf("edge %d jitter %v exceeds ±110ps", i, delta)
		}
		prev = e
	}
}

func TestJitterDeterministicBySeed(t *testing.T) {
	mk := func() []Time {
		d := NewDomain(DomainConfig{Name: "x", FreqMHz: 777, JitterPS: 110, Seed: 99})
		out := make([]Time, 100)
		for i := range out {
			out[i] = d.Advance()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSchedulerOrdersEdgesGlobally(t *testing.T) {
	fast := NewDomain(DomainConfig{Name: "fast", FreqMHz: 1000})
	slow := NewDomain(DomainConfig{Name: "slow", FreqMHz: 250})
	s := NewScheduler(fast, slow)
	counts := map[string]int{}
	prev := Time(-1)
	for i := 0; i < 50; i++ {
		d, tm := s.Step()
		if d == nil {
			t.Fatal("scheduler ran dry")
		}
		if tm < prev {
			t.Fatalf("time went backwards: %v after %v", tm, prev)
		}
		prev = tm
		counts[d.Name()]++
	}
	// The 1000 MHz domain must get ~4x the edges of the 250 MHz domain.
	if counts["fast"] < 3*counts["slow"] {
		t.Errorf("edge ratio fast:slow = %d:%d, want ~4:1", counts["fast"], counts["slow"])
	}
}

func TestSchedulerTieBreaksByRegistrationOrder(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	b := NewDomain(DomainConfig{Name: "b", FreqMHz: 1000})
	s := NewScheduler(a, b)
	d1, _ := s.Step()
	d2, _ := s.Step()
	if d1.Name() != "a" || d2.Name() != "b" {
		t.Errorf("tie broke as %s,%s; want a,b", d1.Name(), d2.Name())
	}
}

func TestSchedulerAllStopped(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	a.Stop()
	s := NewScheduler(a)
	if d, tm := s.Step(); d != nil || tm != Forever {
		t.Errorf("Step on stopped set = (%v,%v), want (nil,Forever)", d, tm)
	}
}

func TestAdvanceOnStoppedDomainPanics(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	d.Stop()
	defer func() {
		if recover() == nil {
			t.Error("Advance on stopped domain did not panic")
		}
	}()
	d.Advance()
}

func TestTimeUnitConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %g", got)
	}
	if got := (3 * Nanosecond).Nanoseconds(); got != 3 {
		t.Errorf("Nanoseconds = %g", got)
	}
	if got := (5 * Microsecond).Microseconds(); got != 5 {
		t.Errorf("Microseconds = %g", got)
	}
}

func TestFreqMHzForPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FreqMHzForPeriod(0)
}

func TestTransitionStyleString(t *testing.T) {
	if XScale.String() != "xscale" || Transmeta.String() != "transmeta" {
		t.Error("bad style names")
	}
	if TransitionStyle(7).String() == "" {
		t.Error("out-of-range style must format")
	}
}

func TestDomainAccessors(t *testing.T) {
	d := NewDomain(DomainConfig{Name: "x", FreqMHz: 500})
	if d.Config().Name != "x" || d.Config().FreqMHz != 500 {
		t.Error("Config not round-tripped")
	}
	if d.Stopped() {
		t.Error("fresh domain reports stopped")
	}
	e := d.Advance()
	if d.LastEdge() != e {
		t.Errorf("LastEdge = %v, want %v", d.LastEdge(), e)
	}
	d.Stop()
	if !d.Stopped() {
		t.Error("Stop not reflected")
	}
}

func TestNewDomainPanics(t *testing.T) {
	for i, cfg := range []DomainConfig{
		{Name: "bad", FreqMHz: 0},
		{Name: "bad", FreqMHz: 100, MinMHz: 200, MaxMHz: 100},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewDomain(cfg)
		}()
	}
}

func TestSchedulerAddNowDomains(t *testing.T) {
	a := NewDomain(DomainConfig{Name: "a", FreqMHz: 1000})
	s := NewScheduler(a)
	b := NewDomain(DomainConfig{Name: "b", FreqMHz: 500})
	s.Add(b)
	if len(s.Domains()) != 2 {
		t.Fatalf("Domains = %d, want 2", len(s.Domains()))
	}
	_, tm := s.Step()
	if s.Now() != tm {
		t.Errorf("Now = %v, want %v", s.Now(), tm)
	}
}
