package clock

import "fmt"

// EventKind labels the typed wake events the Engine tracks. The kind is
// part of the deterministic ordering of simultaneous events (time first,
// then kind, then scheduling order), so the declaration order below is
// semantic: it is the tie-break priority mirrored by the event queue.
type EventKind uint8

const (
	// EvDeadline is a self-scheduled recheck bound: a domain that found
	// nothing to do computed the earliest time anything it is waiting on
	// (operand readiness, entry visibility, a fetch-block window) can
	// change, and asked to be woken then.
	EvDeadline EventKind = iota
	// EvQueuePush wakes the consumer of a synchronizing queue when an
	// upstream domain enqueues into it.
	EvQueuePush
	// EvQueueDrain wakes a producer blocked on a full downstream
	// structure when the consumer frees a slot (or, equivalently, when
	// the pipeline stage it feeds consumes the entry it was waiting on).
	EvQueueDrain
	// EvOperandReady wakes sleepers that were blocked on a producer
	// that had not yet issued: once it issues, its completion time is
	// known and broadcast as the wake bound.
	EvOperandReady
	// EvFreqChange wakes a domain whose frequency target changed (DVFS
	// actuation or frequency-transition completion): its precomputed
	// idle energy charge is stale and its work conditions may differ.
	EvFreqChange
	// EvActuation wakes a domain when a deferred actuator command
	// (regulator latch delay plus PLL relock jitter) comes due. A newer
	// deferred command reschedules the wake.
	EvActuation
	numEventKinds
)

// NumEventKinds is the number of distinct event kinds.
const NumEventKinds = int(numEventKinds)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvDeadline:
		return "deadline"
	case EvQueuePush:
		return "queue-push"
	case EvQueueDrain:
		return "queue-drain"
	case EvOperandReady:
		return "operand-ready"
	case EvFreqChange:
		return "freq-change"
	case EvActuation:
		return "actuation"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one pending typed wake in the engine's queue.
type Event struct {
	At     Time
	Kind   EventKind
	Domain int

	// epoch snapshots the target domain's sleep epoch at scheduling
	// time; an event whose epoch is stale (the domain woke since) is
	// discarded unprocessed.
	epoch uint64
	// seq is the global scheduling order, the final tie-break.
	seq uint64
}

// before is the deterministic event ordering: time, then kind, then
// scheduling order. Never wall-clock, never map order.
func (ev Event) before(other Event) bool {
	if ev.At != other.At {
		return ev.At < other.At
	}
	if ev.Kind != other.Kind {
		return ev.Kind < other.Kind
	}
	return ev.seq < other.seq
}

// eventQueue is a binary min-heap of Events ordered by Event.before.
// It is a concrete heap (no container/heap interface) so pushes and
// pops on the simulation path stay allocation-free after warm-up.
type eventQueue struct {
	ev []Event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(ev Event) {
	q.ev = append(q.ev, ev)
	i := len(q.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.ev[i].before(q.ev[parent]) {
			break
		}
		q.ev[i], q.ev[parent] = q.ev[parent], q.ev[i]
		i = parent
	}
}

func (q *eventQueue) peek() (Event, bool) {
	if len(q.ev) == 0 {
		return Event{}, false
	}
	return q.ev[0], true
}

func (q *eventQueue) pop() Event {
	top := q.ev[0]
	last := len(q.ev) - 1
	q.ev[0] = q.ev[last]
	q.ev = q.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.ev) && q.ev[l].before(q.ev[smallest]) {
			smallest = l
		}
		if r < len(q.ev) && q.ev[r].before(q.ev[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.ev[i], q.ev[smallest] = q.ev[smallest], q.ev[i]
		i = smallest
	}
}

// DomainEngineStats counts what the engine did for one domain.
type DomainEngineStats struct {
	// SlowEdges is the number of clock edges on which the domain's full
	// cycle work ran.
	SlowEdges uint64
	// SkippedEdges is the number of clock edges consumed while the
	// domain was descheduled: the clock (and its jitter stream) still
	// advanced, but the per-cycle work was provably a no-op and was
	// replaced by the precomputed idle energy charge.
	SkippedEdges uint64
	// Sleeps counts transitions into the descheduled state.
	Sleeps uint64
	// Wakes counts wake events by kind.
	Wakes [NumEventKinds]uint64
}

// domainState is the engine's per-domain scheduling state.
type domainState struct {
	asleep bool
	// wakeAt is the earliest live wake event for the domain (Forever
	// when the domain waits for an external wake only). The first edge
	// at or after wakeAt runs the full cycle work again.
	wakeAt Time
	// wakeKind remembers which event set wakeAt, for wake accounting.
	wakeKind EventKind
	// wakeOnIssue marks sleepers whose wake bound involved a producer
	// that had not issued yet: any issue broadcast can lower their bound.
	wakeOnIssue bool
	epoch       uint64
	stats       DomainEngineStats
}

// Engine schedules a set of clock domains as a deterministic event
// system. It extends the Scheduler's next-edge arbitration (earliest
// pending edge wins, ties break by registration order) with a typed
// wake-event queue that lets callers deschedule a domain whose cycle
// work is provably a no-op: the domain's clock still advances edge by
// edge — edge times and the per-edge jitter stream are part of the
// simulator's bit-exact contract — but each descheduled edge is consumed
// through IdleAdvance instead of running the domain's cycle work, until
// a wake event (queue push, operand readiness, frequency change,
// actuation, or a self-scheduled deadline) is due.
//
// Determinism rules:
//   - Edge arbitration: earliest edge first; equal times break by
//     registration order (Next mirrors Scheduler.Next).
//   - Event ordering: earliest time first; equal times break by event
//     kind, then by scheduling order (Event.before).
//   - No wall-clock time, no map iteration, no randomness.
//
// Registered domains are owned by the engine: their clocks must only
// advance (or stop) through Engine calls, which keep the cached
// next-edge times in sync. The cache turns arbitration into a scan of
// one flat Time slice instead of a pointer chase into every Domain on
// every edge.
type Engine struct {
	domains []*Domain
	state   []domainState
	edges   []Time // cached Domain.NextEdge, maintained by Advance/IdleAdvance
	pq      eventQueue
	now     Time
	seq     uint64
	// issueSubs counts sleepers subscribed to issue broadcasts, so
	// BroadcastIssue on the issue hot path is a single compare when
	// nobody is listening.
	issueSubs int
}

// NewEngine creates an engine over the given domains, registered in
// argument order.
func NewEngine(domains ...*Domain) *Engine {
	e := &Engine{}
	for _, d := range domains {
		e.Add(d)
	}
	return e
}

// Add registers another domain and returns its index. Registration
// order is the arbitration tie-break, exactly as with Scheduler.
func (e *Engine) Add(d *Domain) int {
	e.domains = append(e.domains, d)
	e.state = append(e.state, domainState{wakeAt: Forever})
	e.edges = append(e.edges, d.NextEdge())
	return len(e.domains) - 1
}

// Len returns the number of registered domains.
func (e *Engine) Len() int { return len(e.domains) }

// Domains returns the registered domains in registration order.
func (e *Engine) Domains() []*Domain { return e.domains }

// Domain returns the domain at index i.
func (e *Engine) Domain(i int) *Domain { return e.domains[i] }

// Now returns the time of the most recently consumed non-idle edge.
func (e *Engine) Now() Time { return e.now }

// Next returns the index of the domain with the earliest pending clock
// edge (sleeping domains included: their clocks keep running) and that
// edge's time. Ties break by registration order. It returns (-1,
// Forever) when every domain is stopped.
func (e *Engine) Next() (int, Time) {
	best := -1
	bestT := Forever
	for i, t := range e.edges {
		if t < bestT {
			best, bestT = i, t
		}
	}
	return best, bestT
}

// Advance consumes domain i's pending edge as a full (slow) edge and
// returns its time. Stale events that reached the queue head are
// discarded here, off the idle path.
func (e *Engine) Advance(i int) Time {
	st := &e.state[i]
	st.stats.SlowEdges++
	d := e.domains[i]
	t := d.Advance()
	e.edges[i] = d.NextEdge()
	e.now = t
	for {
		head, ok := e.pq.peek()
		if !ok || head.epoch == e.state[head.Domain].epoch {
			break
		}
		e.pq.pop()
	}
	return t
}

// IdleAdvance consumes domain i's pending edge as a descheduled edge:
// the clock (and jitter stream) advances, the cycle work is skipped.
// The caller owns charging the domain's precomputed idle energy.
func (e *Engine) IdleAdvance(i int) Time {
	e.state[i].stats.SkippedEdges++
	d := e.domains[i]
	t := d.Advance()
	e.edges[i] = d.NextEdge()
	return t
}

// IdleHorizon returns the earliest future time at which the engine's
// scheduling state can change: the minimum over awake domains' next
// edges and sleeping domains' wake bounds. Sleep and wake state only
// mutates during slow-edge cycle work, and no slow edge can run before
// the horizon, so every sleeping domain's clock edge strictly before it
// is provably idle: callers may consume those edges in a tight batch
// (IdleAdvance plus the idle energy charge) without re-arbitrating
// after each one.
func (e *Engine) IdleHorizon() Time {
	h := Forever
	for i := range e.state {
		st := &e.state[i]
		if st.asleep {
			if st.wakeAt < h {
				h = st.wakeAt
			}
		} else if t := e.edges[i]; t < h {
			h = t
		}
	}
	return h
}

// Asleep reports whether domain i is descheduled.
func (e *Engine) Asleep(i int) bool { return e.state[i].asleep }

// WakeAt returns the earliest live wake bound for domain i (Forever
// when it waits for an external wake only).
func (e *Engine) WakeAt(i int) Time { return e.state[i].wakeAt }

// Sleep deschedules domain i until an event wakes it. A finite `until`
// self-schedules an EvDeadline wake (the caller's recheck bound);
// wakeOnIssue additionally subscribes the domain to EvOperandReady
// broadcasts. The caller must only sleep a domain whose cycle work is a
// no-op until one of its wake conditions fires.
func (e *Engine) Sleep(i int, until Time, wakeOnIssue bool) {
	st := &e.state[i]
	if st.asleep {
		panic(fmt.Sprintf("clock: Sleep on already-sleeping domain %q", e.domains[i].Name()))
	}
	st.asleep = true
	st.wakeAt = Forever
	st.wakeOnIssue = wakeOnIssue
	if wakeOnIssue {
		e.issueSubs++
	}
	st.stats.Sleeps++
	if until < Forever {
		e.Schedule(until, EvDeadline, i)
	}
}

// Wake immediately reschedules domain i: its next edge runs the full
// cycle work. Waking an awake domain is a no-op, so callers can wake
// unconditionally on state changes. Pending events for the domain
// become stale and are discarded lazily.
func (e *Engine) Wake(i int, kind EventKind) {
	st := &e.state[i]
	if !st.asleep {
		return
	}
	st.asleep = false
	if st.wakeOnIssue {
		st.wakeOnIssue = false
		e.issueSubs--
	}
	st.wakeAt = Forever
	st.epoch++
	st.stats.Wakes[kind]++
}

// Schedule enqueues a typed wake for domain i at time `at`. Events that
// cannot lower the domain's wake bound (domain awake, or an earlier
// wake already pending) coalesce into a no-op, so the queue holds only
// bound-improving events. The first edge at or after the bound wakes
// the domain.
func (e *Engine) Schedule(at Time, kind EventKind, i int) {
	st := &e.state[i]
	if !st.asleep || at >= st.wakeAt {
		return
	}
	e.pq.push(Event{At: at, Kind: kind, Domain: i, epoch: st.epoch, seq: e.seq})
	e.seq++
	st.wakeAt = at
	st.wakeKind = kind
}

// BroadcastIssue lowers the wake bound of every wakeOnIssue sleeper to
// readyAt: a producer with an unknown completion time just issued, so
// consumers blocked on it can be rechecked once its result is due.
func (e *Engine) BroadcastIssue(readyAt Time) {
	if e.issueSubs == 0 {
		return
	}
	for i := range e.state {
		if e.state[i].wakeOnIssue {
			e.Schedule(readyAt, EvOperandReady, i)
		}
	}
}

// WakeDue wakes domain i from an expired bound (its next edge reached
// wakeAt), attributing the wake to the event kind that set the bound.
func (e *Engine) WakeDue(i int) {
	st := &e.state[i]
	kind := st.wakeKind
	e.Wake(i, kind)
}

// Stats returns domain i's scheduling counters.
func (e *Engine) Stats(i int) DomainEngineStats { return e.state[i].stats }

// PendingEvents returns the number of events resident in the queue
// (live and stale); for tests and introspection.
func (e *Engine) PendingEvents() int { return e.pq.len() }
