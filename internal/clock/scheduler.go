package clock

// Scheduler interleaves the clock edges of a set of domains in global
// time order, implementing the classic MCD co-simulation loop: at every
// step the domain with the earliest pending edge executes one cycle.
//
// The number of domains in an MCD processor is tiny (four in the paper's
// configuration, plus a sampling clock), so a linear scan beats a heap.
type Scheduler struct {
	domains []*Domain
	now     Time
}

// NewScheduler creates a scheduler over the given domains.
func NewScheduler(domains ...*Domain) *Scheduler {
	return &Scheduler{domains: domains}
}

// Add registers another domain with the scheduler.
func (s *Scheduler) Add(d *Domain) { s.domains = append(s.domains, d) }

// Domains returns the registered domains in registration order.
func (s *Scheduler) Domains() []*Domain { return s.domains }

// Now returns the time of the most recently dispatched edge.
func (s *Scheduler) Now() Time { return s.now }

// Next returns the domain with the earliest pending clock edge and that
// edge's time, without consuming it. It returns (nil, Forever) when every
// domain is stopped. Ties break by registration order, so a deterministic
// ordering of simultaneous edges is guaranteed.
func (s *Scheduler) Next() (*Domain, Time) {
	var best *Domain
	bestT := Forever
	for _, d := range s.domains {
		if t := d.NextEdge(); t < bestT {
			best, bestT = d, t
		}
	}
	return best, bestT
}

// Step consumes the earliest pending edge and returns the domain and the
// edge time. It returns (nil, Forever) when all domains are stopped.
func (s *Scheduler) Step() (*Domain, Time) {
	d, t := s.Next()
	if d == nil {
		return nil, Forever
	}
	d.Advance()
	s.now = t
	return d, t
}
