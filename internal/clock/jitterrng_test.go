package clock

import (
	"math"
	"math/rand"
	"testing"
)

// TestJitterRNGMatchesMathRand proves the vendored generator's
// NormFloat64 stream is bit-identical to math/rand's for the same seed.
// This equivalence is what lets the devirtualized generator replace the
// stdlib one without perturbing the jitter streams that are part of the
// simulator's byte-determinism contract. Seeds cover zero, negatives,
// values beyond 2^31-1 (the seeding modulus), and the seeds the
// simulator actually uses.
func TestJitterRNGMatchesMathRand(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, 7, 42, 1234567, -987654321,
		1<<31 - 1, 1 << 31, 1<<31 + 1, -(1<<31 - 1), 1 << 40, math.MaxInt64, math.MinInt64,
	}
	// The simulator seeds domains at Seed + small offsets.
	for s := int64(0); s < 16; s++ {
		seeds = append(seeds, s*7919+s)
	}
	const draws = 200000
	for _, seed := range seeds {
		ref := rand.New(rand.NewSource(seed))
		got := newJitterRNG(seed)
		for i := 0; i < draws; i++ {
			w, g := ref.NormFloat64(), got.normFloat64()
			if math.Float64bits(w) != math.Float64bits(g) {
				t.Fatalf("seed %d draw %d: math/rand %v (%#x) != vendored %v (%#x)",
					seed, i, w, math.Float64bits(w), g, math.Float64bits(g))
			}
		}
	}
}

// TestJitterRNGRawStreams checks the lower layers (int63, uint32,
// float64) against math/rand directly, so a future divergence is
// attributed to the right layer rather than surfacing as a Gaussian
// mismatch.
func TestJitterRNGRawStreams(t *testing.T) {
	for _, seed := range []int64{0, 3, -5, 1 << 33} {
		ref := rand.New(rand.NewSource(seed))
		got := newJitterRNG(seed)
		for i := 0; i < 50000; i++ {
			switch i % 3 {
			case 0:
				if w, g := ref.Int63(), got.int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, w, g)
				}
			case 1:
				if w, g := ref.Uint32(), got.uint32(); w != g {
					t.Fatalf("seed %d draw %d: Uint32 %d != %d", seed, i, w, g)
				}
			case 2:
				w, g := ref.Float64(), got.float64()
				if math.Float64bits(w) != math.Float64bits(g) {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, w, g)
				}
			}
		}
	}
}
