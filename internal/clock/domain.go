package clock

import "fmt"

// TransitionStyle selects how a domain behaves while its frequency and
// voltage are physically slewing toward a new target (Section 3 of the
// paper distinguishes the two industrial models).
type TransitionStyle int

const (
	// XScale-style DVFS: the domain keeps executing through the
	// transition; there is no idle time waiting for the PLL.
	XScale TransitionStyle = iota
	// Transmeta-style DVFS: the domain idles until the transition
	// completes.
	Transmeta
)

// String implements fmt.Stringer.
func (s TransitionStyle) String() string {
	switch s {
	case XScale:
		return "xscale"
	case Transmeta:
		return "transmeta"
	default:
		return fmt.Sprintf("TransitionStyle(%d)", int(s))
	}
}

// DomainConfig parameterizes a clock domain.
type DomainConfig struct {
	Name string
	// FreqMHz is the initial clock frequency.
	FreqMHz float64
	// MinMHz and MaxMHz bound the controllable range; SetTarget clamps
	// to them. If both are zero the domain is fixed-frequency.
	MinMHz, MaxMHz float64
	// SlewPerMHz is the time needed to move the frequency by 1 MHz
	// (Table 1: 73.3 ns/MHz). Zero means instantaneous transitions.
	SlewPerMHz Time
	// JitterPS is the peak edge jitter in picoseconds (Table 1: ±110 ps,
	// normally distributed). It is interpreted as the 3-sigma point of a
	// zero-mean Gaussian, truncated at ±JitterPS.
	JitterPS float64
	// Style selects XScale or Transmeta transition behavior.
	Style TransitionStyle
	// Seed seeds the domain's private jitter RNG.
	Seed int64
}

// Domain is an independently clocked region of the processor. It is not
// safe for concurrent use; the simulator is single-threaded by design so
// that runs are deterministic.
type Domain struct {
	cfg DomainConfig

	// Frequency state. The instantaneous frequency slews linearly from
	// slewFromMHz (at slewStart) toward targetMHz.
	targetMHz   float64
	slewFromMHz float64
	slewStart   Time
	slewEnd     Time

	nextEdge Time
	lastEdge Time
	cycles   uint64
	stopped  bool

	jitter *jitterRNG

	// transitions counts completed frequency-change requests, and
	// slewTime accumulates total time spent with the frequency moving;
	// both feed the DVFS-overhead accounting.
	transitions int
	slewTime    Time

	// Period memoization: outside transitions the frequency is constant
	// for long stretches, so the divide+round in PeriodForMHz is paid
	// once per frequency value instead of once per cycle.
	memoFreqMHz float64
	memoPeriod  Time
}

// NewDomain creates a domain whose first clock edge is at time 0.
func NewDomain(cfg DomainConfig) *Domain {
	if cfg.FreqMHz <= 0 {
		panic(fmt.Sprintf("clock: domain %q: non-positive initial frequency %g", cfg.Name, cfg.FreqMHz))
	}
	if cfg.MinMHz > cfg.MaxMHz {
		panic(fmt.Sprintf("clock: domain %q: MinMHz %g > MaxMHz %g", cfg.Name, cfg.MinMHz, cfg.MaxMHz))
	}
	d := &Domain{
		cfg:         cfg,
		targetMHz:   cfg.FreqMHz,
		slewFromMHz: cfg.FreqMHz,
		jitter:      newJitterRNG(cfg.Seed),
	}
	return d
}

// Name returns the domain's configured name.
func (d *Domain) Name() string { return d.cfg.Name }

// Config returns the domain's configuration.
func (d *Domain) Config() DomainConfig { return d.cfg }

// Cycles returns the number of clock edges executed so far.
func (d *Domain) Cycles() uint64 { return d.cycles }

// NextEdge returns the time of the domain's next clock edge, or Forever
// if the domain is stopped.
func (d *Domain) NextEdge() Time {
	if d.stopped {
		return Forever
	}
	return d.nextEdge
}

// Stop halts the domain's clock; NextEdge reports Forever afterwards.
func (d *Domain) Stop() { d.stopped = true }

// Stopped reports whether the clock is halted.
func (d *Domain) Stopped() bool { return d.stopped }

// FreqMHz returns the instantaneous frequency at time t, accounting for
// an in-progress transition.
func (d *Domain) FreqMHz(t Time) float64 {
	if d.slewEnd <= d.slewStart || t >= d.slewEnd {
		return d.targetMHz
	}
	if t <= d.slewStart {
		return d.slewFromMHz
	}
	frac := float64(t-d.slewStart) / float64(d.slewEnd-d.slewStart)
	return d.slewFromMHz + frac*(d.targetMHz-d.slewFromMHz)
}

// TargetMHz returns the frequency the domain is converging to.
func (d *Domain) TargetMHz() float64 { return d.targetMHz }

// InTransition reports whether the frequency is still slewing at time t.
func (d *Domain) InTransition(t Time) bool {
	return t < d.slewEnd
}

// Idle reports whether the domain must skip work at time t. Only
// Transmeta-style domains idle, and only while in transition.
func (d *Domain) Idle(t Time) bool {
	return d.cfg.Style == Transmeta && d.InTransition(t)
}

// SetTarget requests a frequency change to mhz, clamped to the domain's
// range, starting at time t. The instantaneous frequency slews linearly
// at the configured rate; with SlewPerMHz == 0 the change is immediate.
// Redundant requests (already at or slewing to mhz) are no-ops.
func (d *Domain) SetTarget(t Time, mhz float64) {
	if d.cfg.MaxMHz > 0 {
		if mhz > d.cfg.MaxMHz {
			mhz = d.cfg.MaxMHz
		}
		if mhz < d.cfg.MinMHz {
			mhz = d.cfg.MinMHz
		}
	}
	if mhz == d.targetMHz {
		return
	}
	cur := d.FreqMHz(t)
	d.slewFromMHz = cur
	d.slewStart = t
	d.targetMHz = mhz
	delta := mhz - cur
	if delta < 0 {
		delta = -delta
	}
	dur := Time(float64(d.cfg.SlewPerMHz) * delta)
	d.slewEnd = t + dur
	d.transitions++
	d.slewTime += dur
}

// Transitions returns the number of frequency-change requests accepted.
func (d *Domain) Transitions() int { return d.transitions }

// SlewTime returns the cumulative time spent in frequency transitions.
func (d *Domain) SlewTime() Time { return d.slewTime }

// Advance consumes the pending clock edge and schedules the next one. It
// returns the time of the consumed edge. The caller must perform exactly
// one cycle of domain work per Advance call.
func (d *Domain) Advance() Time {
	if d.stopped {
		panic(fmt.Sprintf("clock: Advance on stopped domain %q", d.cfg.Name))
	}
	edge := d.nextEdge
	d.lastEdge = edge
	d.cycles++
	period := d.PeriodForFreq(d.FreqMHz(edge))
	next := edge + period + d.jitterSample()
	if next <= edge {
		next = edge + 1 // jitter must never stall or reverse time
	}
	d.nextEdge = next
	return edge
}

// LastEdge returns the time of the most recently consumed edge.
func (d *Domain) LastEdge() Time { return d.lastEdge }

// PeriodForFreq returns PeriodForMHz(mhz) through the domain's
// single-entry memo. The mapping is identical to PeriodForMHz; only the
// repeated divide+round for an unchanged frequency is skipped.
func (d *Domain) PeriodForFreq(mhz float64) Time {
	if mhz != d.memoFreqMHz {
		d.memoFreqMHz = mhz
		d.memoPeriod = PeriodForMHz(mhz)
	}
	return d.memoPeriod
}

// jitterSample draws one edge-jitter value: zero-mean Gaussian with the
// configured peak treated as 3 sigma, truncated at the peak.
func (d *Domain) jitterSample() Time {
	if d.cfg.JitterPS <= 0 {
		return 0
	}
	sigma := d.cfg.JitterPS / 3
	j := d.jitter.normFloat64() * sigma
	if j > d.cfg.JitterPS {
		j = d.cfg.JitterPS
	} else if j < -d.cfg.JitterPS {
		j = -d.cfg.JitterPS
	}
	return Time(j * float64(Picosecond))
}
