package bpred

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounter2Saturates(t *testing.T) {
	c := counter2(0)
	c = c.update(false)
	if c != 0 {
		t.Error("counter went below 0")
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter = %d, want saturated 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x400100)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to re-learn always-taken")
	}
}

func TestTwoLevelLearnsPattern(t *testing.T) {
	// A strict alternation T,N,T,N is invisible to bimodal but trivial
	// for a history-based predictor.
	tl := NewTwoLevel(1024, 1024, 10)
	pc := uint64(0x400200)
	outcome := func(i int) bool { return i%2 == 0 }
	// Train.
	for i := 0; i < 2000; i++ {
		tl.Update(pc, outcome(i))
	}
	// Measure.
	correct := 0
	for i := 2000; i < 2400; i++ {
		if tl.Predict(pc) == outcome(i) {
			correct++
		}
		tl.Update(pc, outcome(i))
	}
	if correct < 380 {
		t.Errorf("two-level got %d/400 on alternating pattern, want ~400", correct)
	}
}

func TestCombinedBeatsWorstComponent(t *testing.T) {
	// Mixture: half biased branches (bimodal-friendly), half periodic
	// (two-level-friendly). The tournament should do well on both.
	c := DefaultCombined()
	rng := rand.New(rand.NewSource(1))
	correct, total := 0, 0
	for i := 0; i < 30000; i++ {
		var pc uint64
		var taken bool
		if i%2 == 0 {
			pc = 0x400000 + uint64(i%8)*4
			taken = rng.Float64() < 0.95
		} else {
			pc = 0x500000 + uint64(i%4)*4
			taken = (i/2)%3 == 0 // period-3 pattern
		}
		if i > 10000 {
			if c.Predict(pc) == taken {
				correct++
			}
			total++
		}
		c.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("combined accuracy %.3f, want > 0.85", acc)
	}
}

func TestBTBHitAfterInsert(t *testing.T) {
	b := DefaultBTB()
	b.Insert(0x400100, 0x400800)
	tgt, hit := b.Lookup(0x400100)
	if !hit || tgt != 0x400800 {
		t.Errorf("Lookup = (%#x,%v), want (0x400800,true)", tgt, hit)
	}
	if _, hit := b.Lookup(0x999000); hit {
		t.Error("unexpected BTB hit")
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(1, 2) // single set, 2 ways
	b.Insert(0x1000, 0xA)
	b.Insert(0x2000, 0xB)
	b.Lookup(0x1000)      // touch 0x1000: now 0x2000 is LRU
	b.Insert(0x3000, 0xC) // must evict 0x2000
	if _, hit := b.Lookup(0x2000); hit {
		t.Error("LRU entry not evicted")
	}
	if _, hit := b.Lookup(0x1000); !hit {
		t.Error("MRU entry evicted")
	}
	if tgt, hit := b.Lookup(0x3000); !hit || tgt != 0xC {
		t.Error("new entry missing")
	}
}

func TestBTBUpdateExistingEntry(t *testing.T) {
	b := NewBTB(4, 2)
	b.Insert(0x1000, 0xA)
	b.Insert(0x1000, 0xB)
	if tgt, _ := b.Lookup(0x1000); tgt != 0xB {
		t.Errorf("target = %#x, want 0xB after re-insert", tgt)
	}
}

func TestUnitPredictNeedsBTBForTaken(t *testing.T) {
	u := DefaultUnit()
	pc := uint64(0x400300)
	// Train direction taken but never insert a target...
	for i := 0; i < 10; i++ {
		u.dir.Update(pc, true)
	}
	taken, _ := u.Predict(pc)
	if taken {
		t.Error("predicted taken without a BTB target")
	}
}

func TestUnitResolveCountsMispredicts(t *testing.T) {
	u := DefaultUnit()
	pc := uint64(0x400400)
	pt, ptgt := u.Predict(pc)
	mis := u.Resolve(pc, pt, ptgt, true, 0x400900)
	if !mis {
		t.Error("first taken branch should mispredict (no BTB entry yet)")
	}
	// After training, the same branch should predict correctly.
	for i := 0; i < 8; i++ {
		pt, ptgt = u.Predict(pc)
		u.Resolve(pc, pt, ptgt, true, 0x400900)
	}
	pt, ptgt = u.Predict(pc)
	if !pt || ptgt != 0x400900 {
		t.Errorf("after training: predict = (%v,%#x), want (true,0x400900)", pt, ptgt)
	}
	lookups, mispredicts := u.Stats()
	if lookups == 0 || mispredicts == 0 {
		t.Error("stats not tracked")
	}
	if u.MispredictRate() <= 0 || u.MispredictRate() >= 1 {
		t.Errorf("mispredict rate %.3f out of (0,1)", u.MispredictRate())
	}
}

func TestUnitWrongTargetIsMispredict(t *testing.T) {
	u := DefaultUnit()
	pc := uint64(0x400500)
	for i := 0; i < 8; i++ {
		pt, ptgt := u.Predict(pc)
		u.Resolve(pc, pt, ptgt, true, 0x400600)
	}
	pt, ptgt := u.Predict(pc)
	if !pt {
		t.Fatal("expected taken prediction after training")
	}
	// Same branch suddenly jumps elsewhere (indirect-like behavior).
	if !u.Resolve(pc, pt, ptgt, true, 0xDEAD00) {
		t.Error("wrong target must count as misprediction")
	}
}

func TestPredictorsNeverPanicOnArbitraryPCs(t *testing.T) {
	u := DefaultUnit()
	f := func(pc uint64, taken bool) bool {
		pt, ptgt := u.Predict(pc)
		u.Resolve(pc, pt, ptgt, taken, pc+8)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCheckPow2Panics(t *testing.T) {
	for _, n := range []int{0, -4, 3, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d did not panic", n)
				}
			}()
			NewBimodal(n)
		}()
	}
}
