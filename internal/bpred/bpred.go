// Package bpred implements the branch prediction hardware of the
// simulated processor: a bimodal predictor, a two-level adaptive
// predictor, a combined (tournament) predictor, and a set-associative
// branch target buffer, matching the Table-1 configuration of the paper
// (2-level L1 1024 / history 10 / L2 1024, bimodal 1024, combined meta
// 4096, BTB 4096 sets 2-way).
package bpred

import "fmt"

// counter2 is a 2-bit saturating counter; values 0..3, taken when >= 2.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirectionPredictor predicts conditional branch directions.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with the given table size,
// which must be a power of two. Counters initialize to weakly taken.
func NewBimodal(size int) *Bimodal {
	checkPow2("bimodal size", size)
	t := make([]counter2, size)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(size - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// TwoLevel is a two-level adaptive predictor: a first-level table of
// per-branch history registers indexing a second-level pattern table of
// 2-bit counters (PAg-style, as configured in SimpleScalar).
type TwoLevel struct {
	hist     []uint64
	pattern  []counter2
	histBits uint
	l1mask   uint64
	l2mask   uint64
}

// NewTwoLevel creates a two-level predictor with l1 history registers of
// histBits bits and an l2 pattern table. Both sizes must be powers of 2.
func NewTwoLevel(l1, l2 int, histBits uint) *TwoLevel {
	checkPow2("two-level L1 size", l1)
	checkPow2("two-level L2 size", l2)
	if histBits == 0 || histBits > 30 {
		panic(fmt.Sprintf("bpred: bad history length %d", histBits))
	}
	p := make([]counter2, l2)
	for i := range p {
		p[i] = 2
	}
	return &TwoLevel{
		hist:     make([]uint64, l1),
		pattern:  p,
		histBits: histBits,
		l1mask:   uint64(l1 - 1),
		l2mask:   uint64(l2 - 1),
	}
}

func (t *TwoLevel) patternIndex(pc uint64) uint64 {
	h := t.hist[(pc>>2)&t.l1mask]
	// XOR in PC bits (gshare flavor) so different branches sharing a
	// history register don't fully alias in the pattern table.
	return (h ^ (pc >> 2)) & t.l2mask
}

// Predict implements DirectionPredictor.
func (t *TwoLevel) Predict(pc uint64) bool {
	return t.pattern[t.patternIndex(pc)].taken()
}

// Update implements DirectionPredictor.
func (t *TwoLevel) Update(pc uint64, taken bool) {
	pi := t.patternIndex(pc)
	t.pattern[pi] = t.pattern[pi].update(taken)
	hi := (pc >> 2) & t.l1mask
	bit := uint64(0)
	if taken {
		bit = 1
	}
	t.hist[hi] = ((t.hist[hi] << 1) | bit) & ((1 << t.histBits) - 1)
}

// Combined is a tournament predictor: a meta table of 2-bit counters
// selects between a bimodal and a two-level component per branch.
type Combined struct {
	bimodal *Bimodal
	twoLvl  *TwoLevel
	meta    []counter2
	mask    uint64
}

// NewCombined creates the paper's combined predictor.
func NewCombined(bimodalSize, l1, l2 int, histBits uint, metaSize int) *Combined {
	checkPow2("meta size", metaSize)
	m := make([]counter2, metaSize)
	for i := range m {
		m[i] = 2 // weakly prefer the two-level component
	}
	return &Combined{
		bimodal: NewBimodal(bimodalSize),
		twoLvl:  NewTwoLevel(l1, l2, histBits),
		meta:    m,
		mask:    uint64(metaSize - 1),
	}
}

// DefaultCombined builds the Table-1 configuration: bimodal 1024,
// 2-level 1024/10/1024, meta 4096.
func DefaultCombined() *Combined { return NewCombined(1024, 1024, 1024, 10, 4096) }

// Predict implements DirectionPredictor.
func (c *Combined) Predict(pc uint64) bool {
	if c.meta[(pc>>2)&c.mask].taken() {
		return c.twoLvl.Predict(pc)
	}
	return c.bimodal.Predict(pc)
}

// Update implements DirectionPredictor. The meta counter trains toward
// whichever component was correct when they disagreed.
func (c *Combined) Update(pc uint64, taken bool) {
	pb := c.bimodal.Predict(pc)
	pt := c.twoLvl.Predict(pc)
	if pb != pt {
		i := (pc >> 2) & c.mask
		c.meta[i] = c.meta[i].update(pt == taken)
	}
	c.bimodal.Update(pc, taken)
	c.twoLvl.Update(pc, taken)
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets    int
	ways    int
	tags    []uint64 // sets*ways entries; 0 = invalid
	targets []uint64
	lru     []uint8 // per-entry age, smaller = more recent
}

// NewBTB creates a BTB with the given geometry.
func NewBTB(sets, ways int) *BTB {
	checkPow2("BTB sets", sets)
	if ways <= 0 {
		panic("bpred: BTB ways must be positive")
	}
	n := sets * ways
	return &BTB{
		sets: sets, ways: ways,
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		lru:     make([]uint8, n),
	}
}

// DefaultBTB builds the Table-1 configuration: 4096 sets, 2-way.
func DefaultBTB() *BTB { return NewBTB(4096, 2) }

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	base := b.set(pc) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc {
			b.touch(base, w)
			return b.targets[base+w], true
		}
	}
	return 0, false
}

// Insert records a taken branch's target, evicting the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	base := b.set(pc) * b.ways
	victim := 0
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == pc || b.tags[base+w] == 0 {
			victim = w
			break
		}
		if b.lru[base+w] > b.lru[base+victim] {
			victim = w
		}
	}
	b.tags[base+victim] = pc
	b.targets[base+victim] = target
	b.touch(base, victim)
}

// touch marks way w most recent within the set starting at base.
func (b *BTB) touch(base, w int) {
	for i := 0; i < b.ways; i++ {
		if b.lru[base+i] < 255 {
			b.lru[base+i]++
		}
	}
	b.lru[base+w] = 0
}

// Unit bundles a direction predictor and a BTB, tracking accuracy
// statistics; this is what the front end instantiates.
type Unit struct {
	dir DirectionPredictor
	btb *BTB

	lookups     uint64
	mispredicts uint64
}

// NewUnit creates a prediction unit.
func NewUnit(dir DirectionPredictor, btb *BTB) *Unit {
	return &Unit{dir: dir, btb: btb}
}

// DefaultUnit builds the paper's full configuration.
func DefaultUnit() *Unit { return NewUnit(DefaultCombined(), DefaultBTB()) }

// Predict returns the predicted direction and target for the branch at
// pc. A predicted-taken branch without a BTB entry predicts not-taken
// (the front end cannot redirect without a target).
func (u *Unit) Predict(pc uint64) (taken bool, target uint64) {
	u.lookups++
	taken = u.dir.Predict(pc)
	if !taken {
		return false, 0
	}
	target, hit := u.btb.Lookup(pc)
	if !hit {
		return false, 0
	}
	return true, target
}

// Resolve trains the unit with the architectural outcome and reports
// whether the earlier prediction (as Predict would have produced it
// before this update) was a misprediction.
func (u *Unit) Resolve(pc uint64, predictedTaken bool, predictedTarget uint64, taken bool, target uint64) (mispredict bool) {
	if predictedTaken != taken || (taken && predictedTarget != target) {
		mispredict = true
		u.mispredicts++
	}
	u.dir.Update(pc, taken)
	if taken {
		u.btb.Insert(pc, target)
	}
	return mispredict
}

// Stats returns lookups and mispredictions so far.
func (u *Unit) Stats() (lookups, mispredicts uint64) { return u.lookups, u.mispredicts }

// MispredictRate returns the fraction of mispredicted lookups.
func (u *Unit) MispredictRate() float64 {
	if u.lookups == 0 {
		return 0
	}
	return float64(u.mispredicts) / float64(u.lookups)
}

func checkPow2(what string, n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bpred: %s %d is not a power of two", what, n))
	}
}
