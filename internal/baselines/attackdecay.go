// Package baselines implements the prior-work DVFS schemes the paper
// compares against: the fixed-interval attack/decay controller of
// Semeraro et al. (reference [9]) and the fixed-interval PID controller
// of Wu et al. (reference [23]), plus their hardware-cost models for
// the Section-3.1 comparison. All controllers implement the simulator's
// per-domain Controller interface (Observe per 250 MHz sampling tick);
// interval boundaries are counted in sampling ticks internally, which
// is exactly the "predetermined interval independent of workload
// changes" property the paper's adaptive scheme removes.
package baselines

import (
	"fmt"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/dvfs"
)

// AttackDecayConfig parameterizes the Semeraro et al. [9] controller.
type AttackDecayConfig struct {
	// IntervalTicks is the fixed decision interval in sampling ticks.
	// 2500 ticks at 250 MHz = 10 µs ≈ the 10K-instruction interval of
	// the original scheme at IPC ≈ 1 and 1 GHz.
	IntervalTicks int
	// QRef is the target queue occupancy used to center reactions.
	QRef float64
	// AttackThreshold is the interval-to-interval change in average
	// occupancy (entries) that counts as a significant workload change.
	AttackThreshold float64
	// AttackGainMHz is the frequency response per entry of occupancy
	// deviation during an attack.
	AttackGainMHz float64
	// DecayRate is the fractional frequency decay applied per quiet
	// interval when the queue sits below the reference.
	DecayRate float64
	// Range is the operating envelope.
	Range dvfs.Range
}

// DefaultAttackDecay returns the configuration used in the evaluation.
func DefaultAttackDecay() AttackDecayConfig {
	return AttackDecayConfig{
		IntervalTicks:   2500,
		QRef:            4,
		AttackThreshold: 1.0,
		AttackGainMHz:   60,
		DecayRate:       0.0125,
		Range:           dvfs.Default(),
	}
}

// Validate checks the configuration.
func (c AttackDecayConfig) Validate() error {
	if c.IntervalTicks <= 0 {
		return fmt.Errorf("baselines: non-positive attack/decay interval")
	}
	if c.AttackThreshold < 0 || c.AttackGainMHz <= 0 {
		return fmt.Errorf("baselines: bad attack parameters")
	}
	if c.DecayRate <= 0 || c.DecayRate >= 1 {
		return fmt.Errorf("baselines: decay rate %g outside (0,1)", c.DecayRate)
	}
	return c.Range.Validate()
}

// AttackDecay is the fixed-interval attack/decay controller: at each
// interval boundary it compares the interval's average occupancy with
// the previous interval's; a significant swing triggers a proportional
// frequency "attack", otherwise the frequency "decays" slowly downward
// while the queue is comfortable (saving energy) and snaps upward when
// the queue runs clearly above the reference.
type AttackDecay struct {
	cfg AttackDecayConfig

	ticks   int
	sum     float64
	prevAvg float64
	have    bool

	actions int
}

// NewAttackDecay builds the controller; invalid configs panic.
func NewAttackDecay(cfg AttackDecayConfig) *AttackDecay {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &AttackDecay{cfg: cfg}
}

// Name implements the Controller interface.
func (a *AttackDecay) Name() string { return "attack-decay" }

// Actions returns how many frequency changes the controller issued.
func (a *AttackDecay) Actions() int { return a.actions }

// Reset implements the Controller interface.
func (a *AttackDecay) Reset() {
	a.ticks, a.sum, a.prevAvg, a.have, a.actions = 0, 0, 0, false, 0
}

// Observe implements the Controller interface.
func (a *AttackDecay) Observe(_ clock.Time, occ int, cur float64) (float64, bool) {
	a.sum += float64(occ)
	a.ticks++
	if a.ticks < a.cfg.IntervalTicks {
		return 0, false
	}
	avg := a.sum / float64(a.ticks)
	a.ticks, a.sum = 0, 0

	if !a.have {
		a.prevAvg, a.have = avg, true
		return 0, false
	}
	delta := avg - a.prevAvg
	a.prevAvg = avg

	dev := avg - a.cfg.QRef
	var target float64
	switch {
	case delta > a.cfg.AttackThreshold || delta < -a.cfg.AttackThreshold:
		// Attack: respond proportionally to the occupancy deviation.
		target = cur + a.cfg.AttackGainMHz*dev
	case dev > 1:
		// Queue persistently above reference: protect performance.
		target = cur + a.cfg.AttackGainMHz*dev
	default:
		// Quiet interval: decay downward to harvest energy.
		target = cur * (1 - a.cfg.DecayRate)
	}
	target = a.cfg.Range.Clamp(target)
	if target == cur {
		return 0, false
	}
	a.actions++
	return target, true
}

// AttackDecayHardware models the decision-logic cost of [9]: interval
// statistics accumulators plus the multiply needed to scale the
// deviation into a frequency setting each interval.
func AttackDecayHardware() control.HardwareBudget {
	return control.HardwareBudget{
		Scheme:      "attack-decay",
		Adders:      []int{16, 16}, // occupancy accumulator, delta
		Comparators: []int{16, 16}, // threshold tests
		Counters:    []int{12},     // interval tick counter
		Multipliers: []int{16},     // gain * deviation
		Registers:   16 + 16,       // previous average, current setting
		FSMStates:   2,
	}
}
