package baselines

import (
	"testing"

	"mcddvfs/internal/clock"
)

func TestAdaptivePIDDefaultsValid(t *testing.T) {
	if err := DefaultAdaptivePID().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptivePIDValidateCatchesErrors(t *testing.T) {
	bad := []func(*AdaptivePIDConfig){
		func(c *AdaptivePIDConfig) { c.Kp, c.Ki = 0, 0 },
		func(c *AdaptivePIDConfig) { c.Kd = -1 },
		func(c *AdaptivePIDConfig) { c.IntegralClampMHz = 0 },
		func(c *AdaptivePIDConfig) { c.TM0 = 0 },
		func(c *AdaptivePIDConfig) { c.DW = -1 },
		func(c *AdaptivePIDConfig) { c.GainM = 0 },
		func(c *AdaptivePIDConfig) { c.MinIntervalTicks = 0 },
	}
	for i, mut := range bad {
		c := DefaultAdaptivePID()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestAdaptivePIDIgnoresInWindowSamples is the trigger's noise
// rejection: occupancy inside q_ref ± DW never matures the counter, so
// no decision fires no matter how long the run.
func TestAdaptivePIDIgnoresInWindowSamples(t *testing.T) {
	p := NewAdaptivePID(DefaultAdaptivePID()) // QRef 4, DW 1
	if _, changed := driveN(p.Observe, 4, 5000, 700); changed {
		t.Error("in-window occupancy triggered a decision")
	}
	if _, changed := driveN(p.Observe, 5, 5000, 700); changed {
		t.Error("edge-of-window occupancy triggered a decision")
	}
	if p.Actions() != 0 {
		t.Errorf("%d actions on quiet input", p.Actions())
	}
}

// TestAdaptivePIDRaisesOnBacklog: a persistent excursion above the
// window matures the counter and the PID law raises frequency.
func TestAdaptivePIDRaisesOnBacklog(t *testing.T) {
	p := NewAdaptivePID(DefaultAdaptivePID())
	target, changed := driveN(p.Observe, 12, 2000, 700)
	if !changed {
		t.Fatal("no decision on sustained backlog")
	}
	if target <= 700 {
		t.Errorf("backlog lowered frequency to %.0f", target)
	}
}

// TestAdaptivePIDReactsFasterThanFixedInterval is the scheme's reason
// to exist: under a sudden sustained swing the adaptive trigger
// decides in far fewer ticks than the fixed PID interval.
func TestAdaptivePIDReactsFasterThanFixedInterval(t *testing.T) {
	p := NewAdaptivePID(DefaultAdaptivePID())
	now := clock.Time(0)
	firstDecision := 0
	for i := 1; i <= int(DefaultPID().IntervalTicks); i++ {
		now += 4 * clock.Nanosecond
		if _, ok := p.Observe(now, 12, 700); ok {
			firstDecision = i
			break
		}
	}
	if firstDecision == 0 {
		t.Fatalf("no decision within one fixed PID interval (%d ticks)", DefaultPID().IntervalTicks)
	}
	if limit := int(DefaultPID().IntervalTicks) / 2; firstDecision > limit {
		t.Errorf("first decision at tick %d, want faster than %d (half the fixed interval)", firstDecision, limit)
	}
}

// TestAdaptivePIDResetCountersOnReentry: dipping back inside the
// deviation window must reset the delay counter, so an interrupted
// excursion takes as long as a fresh one (the paper's "deviant event"
// rejection).
func TestAdaptivePIDResetCountersOnReentry(t *testing.T) {
	cfg := DefaultAdaptivePID()
	cfg.MinIntervalTicks = 1
	cfg.TM0 = 100
	cfg.GainM = 1

	// 10 ticks out (credit 10·8=80 < 100), 1 tick in, repeated: the
	// reset must keep the counter from ever reaching TM0.
	p := NewAdaptivePID(cfg)
	now := clock.Time(0)
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			now += 4 * clock.Nanosecond
			if _, ok := p.Observe(now, 12, 700); ok {
				t.Fatalf("decision fired despite window re-entry (cycle %d)", i)
			}
		}
		now += 4 * clock.Nanosecond
		p.Observe(now, 4, 700) // back in window: reset
	}
}

// TestAdaptivePIDIntegralAntiWindup mirrors the fixed-interval PID
// test: a long saturating error must not wind the integral term past
// its clamp.
func TestAdaptivePIDIntegralAntiWindup(t *testing.T) {
	cfg := DefaultAdaptivePID()
	cfg.MinIntervalTicks = 10
	cfg.TM0 = 10
	p := NewAdaptivePID(cfg)
	driveN(p.Observe, 30, 20000, 250)
	if p.integral > cfg.IntegralClampMHz || p.integral < -cfg.IntegralClampMHz {
		t.Errorf("integral %.0f escaped clamp ±%.0f", p.integral, cfg.IntegralClampMHz)
	}
}

func TestAdaptivePIDReset(t *testing.T) {
	p := NewAdaptivePID(DefaultAdaptivePID())
	driveN(p.Observe, 12, 2000, 700)
	p.Reset()
	if p.ticks != 0 || p.sum != 0 || p.counter != 0 || p.have || p.integral != 0 || p.Actions() != 0 {
		t.Errorf("Reset left state behind: %+v", p)
	}
}

func TestAdaptivePIDName(t *testing.T) {
	if NewAdaptivePID(DefaultAdaptivePID()).Name() != "pid-adaptive" {
		t.Error("wrong controller name")
	}
}
