package baselines

import (
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
)

// drive feeds n identical occupancy samples and returns the last
// decision.
func driveN(obs func(clock.Time, int, float64) (float64, bool), occ, n int, cur float64) (float64, bool) {
	var target float64
	var changed bool
	now := clock.Time(0)
	for i := 0; i < n; i++ {
		now += 4 * clock.Nanosecond
		if tg, ok := obs(now, occ, cur); ok {
			target, changed = tg, true
		}
	}
	return target, changed
}

func TestAttackDecayDefaultsValid(t *testing.T) {
	if err := DefaultAttackDecay().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttackDecayValidateCatchesErrors(t *testing.T) {
	bad := []func(*AttackDecayConfig){
		func(c *AttackDecayConfig) { c.IntervalTicks = 0 },
		func(c *AttackDecayConfig) { c.AttackGainMHz = 0 },
		func(c *AttackDecayConfig) { c.DecayRate = 0 },
		func(c *AttackDecayConfig) { c.DecayRate = 1 },
	}
	for i, mut := range bad {
		c := DefaultAttackDecay()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAttackDecayActsOnlyAtIntervalBoundaries(t *testing.T) {
	cfg := DefaultAttackDecay()
	cfg.IntervalTicks = 100
	a := NewAttackDecay(cfg)
	now := clock.Time(0)
	decisions := 0
	for i := 1; i <= 1000; i++ {
		now += 4 * clock.Nanosecond
		occ := 0
		if (i/100)%2 == 0 {
			occ = 12 // swing every interval to force attacks
		}
		if _, ok := a.Observe(now, occ, 700); ok {
			if i%100 != 0 {
				t.Fatalf("decision mid-interval at tick %d", i)
			}
			decisions++
		}
	}
	if decisions == 0 {
		t.Fatal("no decisions over 10 intervals")
	}
}

func TestAttackDecayDecaysWhenQuiet(t *testing.T) {
	cfg := DefaultAttackDecay()
	cfg.IntervalTicks = 10
	a := NewAttackDecay(cfg)
	// Two intervals with an empty queue: first establishes the
	// average, second must decay.
	target, changed := driveN(a.Observe, 0, 20, 800)
	if !changed {
		t.Fatal("no decay action")
	}
	want := 800 * (1 - cfg.DecayRate)
	if target != want {
		t.Errorf("decay target = %g, want %g", target, want)
	}
}

func TestAttackDecayAttacksOnSwing(t *testing.T) {
	cfg := DefaultAttackDecay()
	cfg.IntervalTicks = 10
	a := NewAttackDecay(cfg)
	driveN(a.Observe, 0, 20, 500) // establish a low average (plus one decay)
	target, changed := driveN(a.Observe, 14, 10, 500)
	if !changed {
		t.Fatal("no attack on a 14-entry swing")
	}
	if target <= 500 {
		t.Errorf("attack should raise frequency, got %g", target)
	}
	// Attack is proportional: deviation (14-4) * 60 MHz = +600 MHz.
	if target != cfg.Range.Clamp(500+10*cfg.AttackGainMHz) {
		t.Errorf("attack target = %g, want %g", target, cfg.Range.Clamp(1100))
	}
}

func TestAttackDecayClampsToRange(t *testing.T) {
	cfg := DefaultAttackDecay()
	cfg.IntervalTicks = 5
	a := NewAttackDecay(cfg)
	f := func(occs []uint8) bool {
		now := clock.Time(0)
		cur := 600.0
		for _, o := range occs {
			now += 4 * clock.Nanosecond
			if tg, ok := a.Observe(now, int(o%17), cur); ok {
				if tg < cfg.Range.MinMHz || tg > cfg.Range.MaxMHz {
					return false
				}
				cur = tg
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAttackDecayReset(t *testing.T) {
	cfg := DefaultAttackDecay()
	cfg.IntervalTicks = 10
	a := NewAttackDecay(cfg)
	driveN(a.Observe, 0, 25, 800)
	a.Reset()
	if a.Actions() != 0 {
		t.Error("actions not reset")
	}
	// After reset, the first interval only establishes the average.
	if _, changed := driveN(a.Observe, 0, 10, 800); changed {
		t.Error("acted on the first post-reset interval")
	}
}

func TestPIDDefaultsValid(t *testing.T) {
	if err := DefaultPID().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPIDValidateCatchesErrors(t *testing.T) {
	bad := []func(*PIDConfig){
		func(c *PIDConfig) { c.IntervalTicks = -1 },
		func(c *PIDConfig) { c.Kp, c.Ki = 0, 0 },
		func(c *PIDConfig) { c.Kd = -1 },
		func(c *PIDConfig) { c.IntegralClampMHz = 0 },
	}
	for i, mut := range bad {
		c := DefaultPID()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPIDRaisesFrequencyOnPositiveError(t *testing.T) {
	cfg := DefaultPID()
	cfg.IntervalTicks = 10
	p := NewPID(cfg)
	target, changed := driveN(p.Observe, int(cfg.QRef)+8, 10, 500)
	if !changed {
		t.Fatal("no action on sustained positive error")
	}
	if target <= 500 {
		t.Errorf("positive error should raise frequency, got %g", target)
	}
}

func TestPIDLowersFrequencyOnEmptyQueue(t *testing.T) {
	cfg := DefaultPID()
	cfg.IntervalTicks = 10
	p := NewPID(cfg)
	target, changed := driveN(p.Observe, 0, 30, 900)
	if !changed {
		t.Fatal("no action on sustained empty queue")
	}
	if target >= 900 {
		t.Errorf("empty queue should lower frequency, got %g", target)
	}
}

func TestPIDIntegralAntiWindup(t *testing.T) {
	cfg := DefaultPID()
	cfg.IntervalTicks = 5
	p := NewPID(cfg)
	// Hammer the integrator with a huge error for many intervals.
	driveN(p.Observe, 16, 500, 1000)
	if p.integral > cfg.IntegralClampMHz || p.integral < -cfg.IntegralClampMHz {
		t.Errorf("integral %g escaped the clamp ±%g", p.integral, cfg.IntegralClampMHz)
	}
	// Now drive it the other way; the clamp means recovery within a
	// bounded number of intervals rather than windup paralysis.
	target, changed := driveN(p.Observe, 0, 200, 1000)
	if !changed || target >= 1000 {
		t.Error("PID failed to recover from windup and scale down")
	}
}

func TestPIDActsOnlyAtBoundaries(t *testing.T) {
	cfg := DefaultPID()
	cfg.IntervalTicks = 50
	p := NewPID(cfg)
	now := clock.Time(0)
	for i := 1; i <= 500; i++ {
		now += 4 * clock.Nanosecond
		occ := 0
		if (i/50)%2 == 0 {
			occ = 14
		}
		if _, ok := p.Observe(now, occ, 600); ok && i%50 != 0 {
			t.Fatalf("PID acted mid-interval at tick %d", i)
		}
	}
}

func TestPIDReset(t *testing.T) {
	cfg := DefaultPID()
	cfg.IntervalTicks = 10
	p := NewPID(cfg)
	driveN(p.Observe, 12, 100, 700)
	p.Reset()
	if p.Actions() != 0 || p.integral != 0 || p.have {
		t.Error("reset incomplete")
	}
}

func TestHardwareComparison(t *testing.T) {
	adaptive := control.AdaptiveHardware().Gates()
	pid := PIDHardware().Gates()
	ad := AttackDecayHardware().Gates()
	// Section 3.1: the adaptive decision logic must be much smaller
	// than either fixed-interval scheme (which need interval arithmetic
	// and multipliers).
	if adaptive*2 > pid {
		t.Errorf("adaptive (%d gates) should be well under half of PID (%d gates)", adaptive, pid)
	}
	if adaptive >= ad {
		t.Errorf("adaptive (%d gates) should undercut attack/decay (%d gates)", adaptive, ad)
	}
	if pid <= ad {
		t.Errorf("PID (%d) should cost more than attack/decay (%d)", pid, ad)
	}
}

func TestControllerNames(t *testing.T) {
	if NewAttackDecay(DefaultAttackDecay()).Name() != "attack-decay" {
		t.Error("bad attack/decay name")
	}
	if NewPID(DefaultPID()).Name() != "pid" {
		t.Error("bad PID name")
	}
}
