package baselines

import (
	"fmt"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/dvfs"
)

// AdaptivePIDConfig parameterizes the event-triggered PID variant: the
// fixed-interval PID law of [23] driven by the paper's adaptive
// reaction-time trigger instead of a predetermined interval clock.
type AdaptivePIDConfig struct {
	// QRef is the reference queue occupancy the loop regulates to.
	QRef float64
	// Kp, Ki, Kd are the PID gains in MHz per entry of occupancy
	// error (per decision).
	Kp, Ki, Kd float64
	// IntegralClampMHz bounds the integral term (anti-windup).
	IntegralClampMHz float64
	// Range is the operating envelope.
	Range dvfs.Range

	// TM0 is the basic time delay in sampling periods: the credit the
	// level signal must accumulate outside the deviation window before
	// a PID update fires (Section 3's resettable counter).
	TM0 float64
	// DW is the deviation-window half-width in queue entries; samples
	// within QRef±DW reset the delay counter (noise rejection).
	DW float64
	// GainM scales the per-tick counter increment by |signal| (Eq. 5),
	// so severe swings trigger sooner.
	GainM float64
	// MinIntervalTicks floors the spacing between decisions so the
	// occupancy average each update consumes stays meaningful.
	MinIntervalTicks int
}

// DefaultAdaptivePID couples the evaluation's PID gains to the paper's
// level-signal trigger setting (T_m0 = 50 sampling periods, deviation
// window ±1, signal-scaled delay). The 125-tick floor (0.5 µs at
// 250 MHz) is 20x shorter than the fixed 2500-tick interval, so under
// fast workload swings the loop reacts an order of magnitude sooner.
func DefaultAdaptivePID() AdaptivePIDConfig {
	return AdaptivePIDConfig{
		QRef:             4,
		Kp:               25,
		Ki:               12,
		Kd:               4,
		IntegralClampMHz: 400,
		Range:            dvfs.Default(),
		TM0:              50,
		DW:               1,
		GainM:            1,
		MinIntervalTicks: 125,
	}
}

// Validate checks the configuration.
func (c AdaptivePIDConfig) Validate() error {
	if c.Kp < 0 || c.Ki < 0 || c.Kd < 0 || (c.Kp == 0 && c.Ki == 0) {
		return fmt.Errorf("baselines: degenerate PID gains (%g,%g,%g)", c.Kp, c.Ki, c.Kd)
	}
	if c.IntegralClampMHz <= 0 {
		return fmt.Errorf("baselines: non-positive integral clamp")
	}
	if c.TM0 <= 0 {
		return fmt.Errorf("baselines: non-positive basic time delay %g", c.TM0)
	}
	if c.DW < 0 {
		return fmt.Errorf("baselines: negative deviation window %g", c.DW)
	}
	if c.GainM <= 0 {
		return fmt.Errorf("baselines: non-positive delay gain %g", c.GainM)
	}
	if c.MinIntervalTicks <= 0 {
		return fmt.Errorf("baselines: non-positive minimum interval %d", c.MinIntervalTicks)
	}
	return c.Range.Validate()
}

// AdaptivePID computes the same control law as PID — at each decision
// it averages the occupancy since the previous decision and sets
//
//	f = f_base + Kp·e + Ki·Σe + Kd·(e − e_prev),  e = avg − q_ref
//
// — but its *reaction time is adaptive*: instead of interval
// boundaries, a decision fires when the level signal q − q_ref has sat
// outside the deviation window long enough to mature a resettable,
// signal-scaled time-delay counter (the paper's Section-3 trigger).
// Samples back inside the window reset the counter, so transient noise
// never triggers an update, while a large persistent swing is acted on
// within tens of sampling periods rather than at the next boundary.
type AdaptivePID struct {
	cfg AdaptivePIDConfig

	ticks   int
	sum     float64
	counter float64

	prevErr  float64
	integral float64
	have     bool
	base     float64

	actions int
}

// NewAdaptivePID builds the controller; invalid configs panic.
func NewAdaptivePID(cfg AdaptivePIDConfig) *AdaptivePID {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &AdaptivePID{cfg: cfg}
}

// Name implements the Controller interface.
func (p *AdaptivePID) Name() string { return "pid-adaptive" }

// Actions returns how many frequency changes the controller issued.
func (p *AdaptivePID) Actions() int { return p.actions }

// Reset implements the Controller interface.
func (p *AdaptivePID) Reset() {
	p.ticks, p.sum, p.counter = 0, 0, 0
	p.prevErr, p.integral, p.have, p.base = 0, 0, false, 0
	p.actions = 0
}

// Observe implements the Controller interface.
func (p *AdaptivePID) Observe(_ clock.Time, occ int, cur float64) (float64, bool) {
	p.sum += float64(occ)
	p.ticks++

	// The adaptive trigger: accumulate delay credit while the sample
	// sits outside the deviation window, faster for larger excursions;
	// re-entering the window resets the counter.
	dev := float64(occ) - p.cfg.QRef
	if dev < 0 {
		dev = -dev
	}
	if dev <= p.cfg.DW {
		p.counter = 0
		return 0, false
	}
	p.counter += p.cfg.GainM * dev
	if p.counter < p.cfg.TM0 || p.ticks < p.cfg.MinIntervalTicks {
		return 0, false
	}

	avg := p.sum / float64(p.ticks)
	p.ticks, p.sum, p.counter = 0, 0, 0

	e := avg - p.cfg.QRef
	if !p.have {
		p.have = true
		p.base = cur
		p.prevErr = e
	}
	p.integral += p.cfg.Ki * e
	if p.integral > p.cfg.IntegralClampMHz {
		p.integral = p.cfg.IntegralClampMHz
	} else if p.integral < -p.cfg.IntegralClampMHz {
		p.integral = -p.cfg.IntegralClampMHz
	}
	d := e - p.prevErr
	p.prevErr = e

	target := p.cfg.Range.Clamp(p.base + p.cfg.Kp*e + p.integral + p.cfg.Kd*d)
	if target == cur {
		return 0, false
	}
	p.actions++
	return target, true
}
