package baselines

import (
	"fmt"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/dvfs"
)

// PIDConfig parameterizes the fixed-interval PID controller of Wu et
// al. [23] ("Formal Online Methods for Voltage/Frequency Control in
// Multiple Clock Domain Microprocessors").
type PIDConfig struct {
	// IntervalTicks is the fixed decision interval in sampling ticks.
	// The paper's closing comparison sweeps this down to short
	// intervals; the default matches the attack/decay interval
	// (2500 ticks = 10 µs ≈ 10K instructions).
	IntervalTicks int
	// QRef is the reference queue occupancy the loop regulates to.
	QRef float64
	// Kp, Ki, Kd are the PID gains in MHz per entry of occupancy
	// error (per interval).
	Kp, Ki, Kd float64
	// IntegralClampMHz bounds the integral term (anti-windup).
	IntegralClampMHz float64
	// Range is the operating envelope.
	Range dvfs.Range
}

// DefaultPID returns the evaluation configuration. Gains follow the
// deadbeat-style tuning of [23]: dominated by the proportional and
// integral terms, conservative derivative.
func DefaultPID() PIDConfig {
	return PIDConfig{
		IntervalTicks:    2500,
		QRef:             4,
		Kp:               25,
		Ki:               12,
		Kd:               4,
		IntegralClampMHz: 400,
		Range:            dvfs.Default(),
	}
}

// Validate checks the configuration.
func (c PIDConfig) Validate() error {
	if c.IntervalTicks <= 0 {
		return fmt.Errorf("baselines: non-positive PID interval")
	}
	if c.Kp < 0 || c.Ki < 0 || c.Kd < 0 || (c.Kp == 0 && c.Ki == 0) {
		return fmt.Errorf("baselines: degenerate PID gains (%g,%g,%g)", c.Kp, c.Ki, c.Kd)
	}
	if c.IntegralClampMHz <= 0 {
		return fmt.Errorf("baselines: non-positive integral clamp")
	}
	return c.Range.Validate()
}

// PID is the fixed-interval PID controller: at each interval boundary
// it computes the average occupancy error e = avg − q_ref and sets
//
//	f = f_base + Kp·e + Ki·Σe + Kd·(e − e_prev)
//
// relative to the frequency at the first interval, with the integral
// term clamped for anti-windup. Between boundaries it does nothing —
// which is precisely the limitation the adaptive scheme addresses.
type PID struct {
	cfg PIDConfig

	ticks int
	sum   float64

	prevErr  float64
	integral float64
	have     bool
	base     float64

	actions int
}

// NewPID builds the controller; invalid configs panic.
func NewPID(cfg PIDConfig) *PID {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PID{cfg: cfg}
}

// Name implements the Controller interface.
func (p *PID) Name() string { return "pid" }

// Actions returns how many frequency changes the controller issued.
func (p *PID) Actions() int { return p.actions }

// Reset implements the Controller interface.
func (p *PID) Reset() {
	p.ticks, p.sum = 0, 0
	p.prevErr, p.integral, p.have, p.base = 0, 0, false, 0
	p.actions = 0
}

// Observe implements the Controller interface.
func (p *PID) Observe(_ clock.Time, occ int, cur float64) (float64, bool) {
	p.sum += float64(occ)
	p.ticks++
	if p.ticks < p.cfg.IntervalTicks {
		return 0, false
	}
	avg := p.sum / float64(p.ticks)
	p.ticks, p.sum = 0, 0

	e := avg - p.cfg.QRef
	if !p.have {
		p.have = true
		p.base = cur
		p.prevErr = e
	}
	p.integral += p.cfg.Ki * e
	if p.integral > p.cfg.IntegralClampMHz {
		p.integral = p.cfg.IntegralClampMHz
	} else if p.integral < -p.cfg.IntegralClampMHz {
		p.integral = -p.cfg.IntegralClampMHz
	}
	d := e - p.prevErr
	p.prevErr = e

	target := p.cfg.Range.Clamp(p.base + p.cfg.Kp*e + p.integral + p.cfg.Kd*d)
	if target == cur {
		return 0, false
	}
	p.actions++
	return target, true
}

// PIDHardware models the decision-logic cost of [23]: three gain
// multiplies plus accumulator state per interval — the
// "multipliers/dividers or lookup tables" the paper contrasts with the
// adaptive scheme's book-keeping logic.
func PIDHardware() control.HardwareBudget {
	return control.HardwareBudget{
		Scheme:      "pid",
		Adders:      []int{16, 16, 16}, // error, integral, output sum
		Comparators: []int{16},         // anti-windup clamp
		Counters:    []int{12},         // interval tick counter
		Multipliers: []int{16, 16, 16}, // Kp, Ki, Kd products
		Registers:   16 * 4,            // e_prev, integral, base, coefficients
		FSMStates:   2,
	}
}
