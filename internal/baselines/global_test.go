package baselines

import (
	"testing"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
)

// tickAll drives one sampling tick through all three ports in domain
// order, as the simulator does, and returns the decisions.
func tickAll(ports [isa.NumExecDomains]*GlobalPort, now clock.Time, occ [isa.NumExecDomains]int, cur float64) (targets [isa.NumExecDomains]float64, changed [isa.NumExecDomains]bool) {
	for d := 0; d < isa.NumExecDomains; d++ {
		targets[d], changed[d] = ports[d].Observe(now, occ[d], cur)
	}
	return targets, changed
}

func globalPorts(cfg control.Config) [isa.NumExecDomains]*GlobalPort {
	g := NewGlobal(cfg)
	var ports [isa.NumExecDomains]*GlobalPort
	for d := 0; d < isa.NumExecDomains; d++ {
		ports[d] = g.Port(isa.ExecDomain(d))
	}
	return ports
}

func fastGlobalCfg() control.Config {
	cfg := control.DefaultConfig(isa.DomainFP)
	cfg.TM0 = 5
	cfg.TL0 = 3
	cfg.SwitchTime = 0
	cfg.SignalScaledDelay = false
	cfg.ScaleDownCaution = false
	return cfg
}

func TestGlobalFollowsBusiestDomain(t *testing.T) {
	ports := globalPorts(fastGlobalCfg())
	now := clock.Time(0)
	// INT empty, FP empty, LS saturated: the coupled decision must
	// track the busiest queue and raise frequency, not lower it.
	var fired bool
	var target float64
	for i := 0; i < 20 && !fired; i++ {
		now += 4 * clock.Nanosecond
		targets, changed := tickAll(ports, now, [isa.NumExecDomains]int{0, 0, 14}, 500)
		for d := 0; d < isa.NumExecDomains; d++ {
			if changed[d] {
				fired = true
				target = targets[d]
			}
		}
	}
	if !fired {
		t.Fatal("global controller never acted")
	}
	if target <= 500 {
		t.Errorf("coupled target %g should rise with a saturated LS queue", target)
	}
}

func TestGlobalBroadcastsToAllPorts(t *testing.T) {
	ports := globalPorts(fastGlobalCfg())
	now := clock.Time(0)
	seen := [isa.NumExecDomains]bool{}
	var first [isa.NumExecDomains]float64
	for i := 0; i < 40; i++ {
		now += 4 * clock.Nanosecond
		targets, changed := tickAll(ports, now, [isa.NumExecDomains]int{12, 12, 12}, 500)
		for d := 0; d < isa.NumExecDomains; d++ {
			if changed[d] && !seen[d] {
				seen[d] = true
				first[d] = targets[d]
			}
		}
		if seen[0] && seen[1] && seen[2] {
			break
		}
	}
	for d := 0; d < isa.NumExecDomains; d++ {
		if !seen[d] {
			t.Fatalf("port %d never received the coupled decision", d)
		}
	}
	if first[0] != first[1] || first[1] != first[2] {
		t.Errorf("ports disagree on the coupled target: %v", first)
	}
}

func TestGlobalRelaysEachDecisionOnce(t *testing.T) {
	ports := globalPorts(fastGlobalCfg())
	now := clock.Time(0)
	changes := 0
	for i := 0; i < 200; i++ {
		now += 4 * clock.Nanosecond
		// Saturated queues: the inner controller keeps stepping up
		// until f_max; each decision must surface exactly once per
		// port.
		_, changed := tickAll(ports, now, [isa.NumExecDomains]int{15, 15, 15}, 990)
		for d := 0; d < isa.NumExecDomains; d++ {
			if changed[d] {
				changes++
			}
		}
	}
	if changes == 0 {
		t.Fatal("no decisions")
	}
	// Drain in-flight relays with quiet ticks (occupancy at the
	// reference cannot trigger new decisions).
	qref := fastGlobalCfg().QRef
	for i := 0; i < 3; i++ {
		now += 4 * clock.Nanosecond
		_, changed := tickAll(ports, now, [isa.NumExecDomains]int{qref, qref, qref}, 990)
		for d := 0; d < isa.NumExecDomains; d++ {
			if changed[d] {
				changes++
			}
		}
	}
	if changes%isa.NumExecDomains != 0 {
		t.Errorf("changes (%d) not a multiple of the port count: some port saw a decision twice or never", changes)
	}
}

func TestGlobalReset(t *testing.T) {
	ports := globalPorts(fastGlobalCfg())
	now := clock.Time(0)
	for i := 0; i < 20; i++ {
		now += 4 * clock.Nanosecond
		tickAll(ports, now, [isa.NumExecDomains]int{12, 12, 12}, 500)
	}
	for d := 0; d < isa.NumExecDomains; d++ {
		ports[d].Reset()
	}
	// After reset no stale decision must leak out on a quiet queue.
	qref := fastGlobalCfg().QRef
	for i := 0; i < 3; i++ {
		now += 4 * clock.Nanosecond
		_, changed := tickAll(ports, now, [isa.NumExecDomains]int{qref, qref, qref}, 500)
		for d := 0; d < isa.NumExecDomains; d++ {
			if changed[d] {
				t.Fatal("stale decision after reset")
			}
		}
	}
}

func TestGlobalName(t *testing.T) {
	ports := globalPorts(fastGlobalCfg())
	if ports[0].Name() != "global" {
		t.Error("bad name")
	}
}
