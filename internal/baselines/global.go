package baselines

import (
	"mcddvfs/internal/clock"
	"mcddvfs/internal/control"
	"mcddvfs/internal/isa"
)

// Global implements chip-coupled frequency scaling: a single adaptive
// decision engine driven by the *most loaded* queue, with all execution
// domains forced to the same frequency. It approximates conventional
// synchronous-chip DVFS inside the MCD simulator and exists to quantify
// the benefit of per-domain control (the MCD advantage the paper builds
// on): domains with idle queues cannot be slowed independently, so the
// chip follows its busiest domain.
//
// Global is a coordinator; attach one port per execution domain via
// Port. The port for the highest domain index closes each sampling tick
// by feeding the tick's maximum occupancy to the shared controller.
type Global struct {
	inner *control.Adaptive

	occ    [isa.NumExecDomains]int
	filled int

	target    float64
	hasTarget bool
	// generation increments on each new decision so every port relays
	// the change exactly once.
	generation int
}

// NewGlobal creates the coordinator. The shared decision engine uses
// the paper's adaptive configuration with the FP/LS reference point
// (the conservative choice for a chip-wide signal).
func NewGlobal(cfg control.Config) *Global {
	return &Global{inner: control.NewAdaptive(cfg)}
}

// Port returns the per-domain controller for domain d.
func (g *Global) Port(d isa.ExecDomain) *GlobalPort {
	return &GlobalPort{g: g, domain: d}
}

// GlobalPort adapts one domain's Observe stream onto the coordinator.
type GlobalPort struct {
	g      *Global
	domain isa.ExecDomain
	// seenGen is the last decision generation this port relayed.
	seenGen int
}

// Name implements the Controller interface.
func (p *GlobalPort) Name() string { return "global" }

// Reset implements the Controller interface.
func (p *GlobalPort) Reset() {
	if p.domain == 0 {
		p.g.inner.Reset()
		p.g.filled = 0
		p.g.hasTarget = false
		p.g.generation = 0
	}
	p.seenGen = 0
}

// Observe implements the Controller interface. The simulator calls the
// ports in domain order within one sampling tick; the last port runs
// the shared decision.
func (p *GlobalPort) Observe(now clock.Time, occ int, cur float64) (float64, bool) {
	g := p.g
	g.occ[p.domain] = occ
	g.filled++
	if int(p.domain) == isa.NumExecDomains-1 {
		maxOcc := g.occ[0]
		for _, o := range g.occ[1:] {
			if o > maxOcc {
				maxOcc = o
			}
		}
		g.filled = 0
		if target, ok := g.inner.Observe(now, maxOcc, cur); ok {
			g.target = target
			g.hasTarget = true
			g.generation++
		}
	}
	if g.hasTarget && p.seenGen != g.generation {
		p.seenGen = g.generation
		return g.target, true
	}
	return 0, false
}
