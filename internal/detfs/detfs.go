// Package detfs is the one place the repository enumerates a
// directory on a determinism-sensitive path. Filesystem listing order
// is host state — ext4, tmpfs, and overlayfs disagree about it — so
// mcdlint bans os.ReadDir and filepath.Walk/Glob twice over: the
// detsource analyzer flags direct listings in the corpus and
// experiment packages, and the dettaint analyzer flags them anywhere
// reachable from the simulator or artifact pipeline. Code that
// genuinely needs a listing (the corpus verifier's orphan scan) goes
// through SortedNames, which collapses the host-ordered listing to a
// sorted one and carries the audited waiver.
package detfs

import (
	"os"
	"sort"
)

// SortedNames returns the names of dir's entries in ascending lexical
// order — a listing with no host-order dependence left in it.
func SortedNames(dir string) ([]string, error) {
	//lint:allow dettaint listing is sorted before use, removing the host-order dependence
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}
