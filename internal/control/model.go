package control

import (
	"mcddvfs/internal/stability"
)

// ModelSystem maps a controller configuration onto the Section-4
// analytic model, so any configuration can be checked against Remarks
// 1–3 before it is deployed:
//
//	sys := control.DefaultConfig(isa.DomainInt).ModelSystem(t1, c2, ipcPerSample)
//	xi := sys.DampingRatio(1) // want 0.5..1 per Remark 3
//
// t1 and c2 are the µ–f constants of the controlled domain (average
// frequency-independent time and frequency-dependent cycles per
// instruction, both normalized to the sampling period at f_max);
// gamma is the arrival-rate scale (instructions per sampling period).
// The m/l conversion constants carry the controller gains scaled so the
// analytic loop matches the paper's typical K_l ≈ 0.5 operating point
// when the default 50/8 delays and unit gains are used.
func (c Config) ModelSystem(t1, c2, gamma float64) stability.System {
	// Calibration constant aligning unit gains with the typical
	// operating point (see stability.Default).
	const unitGainScale = 650
	return stability.System{
		M:     c.GainM * unitGainScale,
		L:     c.GainL * unitGainScale,
		Step:  c.StepMHz / (c.Range.MaxMHz - c.Range.MinMHz),
		TM0:   c.TM0,
		TL0:   c.TL0,
		Gamma: gamma,
		T1:    t1,
		C2:    c2,
		QRef:  float64(c.QRef),
	}
}

// RemarkCompliant reports whether the configuration achieves what
// Remark 3 protects at the given operating point (normalized frequency
// f0) for a typical domain (t1=0.3, c2=0.7, gamma=4): damping of at
// least 0.5 (small transient overshoot) without drifting into a
// sluggish, heavily overdamped regime (ξ ≤ 1.5). Note the damping
// ratio varies with the operating frequency, so a configuration that
// sits mid-band at f₀ = 0.5 may be mildly overdamped at f_max — that
// is the behavior of the paper's own 50/8 setting.
func (c Config) RemarkCompliant(f0 float64) bool {
	xi := c.ModelSystem(0.3, 0.7, 4).DampingRatio(f0)
	return xi >= 0.5 && xi <= 1.5
}
