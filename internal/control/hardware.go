package control

// This file models the hardware cost of the DVFS decision logic
// (Figure 5 and the Section-3.1 discussion). The paper argues the
// adaptive scheme needs only book-keeping hardware — an adder, a
// comparator, a small FSM and a delay counter per signal — while the
// fixed-interval schemes additionally need arithmetic to compute a new
// voltage/frequency setting each interval (multipliers/dividers or
// lookup tables for the PID of [23], profile arithmetic for [9]).
// Gate counts below use standard synthesis rules of thumb; they are for
// *relative* comparison, exactly as the paper uses them.

// HardwareBudget itemizes the decision-logic hardware of a controller.
type HardwareBudget struct {
	Scheme string
	// Adders is a list of adder bit-widths.
	Adders []int
	// Comparators is a list of comparator bit-widths.
	Comparators []int
	// Counters is a list of counter bit-widths.
	Counters []int
	// FSMStates is the total number of FSM states across signals.
	FSMStates int
	// Multipliers is a list of multiplier operand widths (square
	// arrays assumed).
	Multipliers []int
	// LookupBits is ROM/LUT capacity in bits.
	LookupBits int
	// Registers is extra storage in bits (accumulated error terms,
	// interval statistics, coefficient registers).
	Registers int
}

// Gate-count rules of thumb (NAND2-equivalent gates).
const (
	gatesPerAdderBit      = 7  // ripple-carry full adder
	gatesPerComparatorBit = 5  // magnitude comparator slice
	gatesPerCounterBit    = 8  // flop + increment logic
	gatesPerFSMState      = 12 // state flops + next-state logic share
	gatesPerMultBitSq     = 9  // array multiplier cell, per bit^2
	gatesPerLookupBit     = 1  // ROM bit
	gatesPerRegisterBit   = 6  // flop
)

// Gates estimates the NAND2-equivalent gate count.
func (h HardwareBudget) Gates() int {
	g := 0
	for _, b := range h.Adders {
		g += b * gatesPerAdderBit
	}
	for _, b := range h.Comparators {
		g += b * gatesPerComparatorBit
	}
	for _, b := range h.Counters {
		g += b * gatesPerCounterBit
	}
	g += h.FSMStates * gatesPerFSMState
	for _, b := range h.Multipliers {
		g += b * b * gatesPerMultBitSq
	}
	g += h.LookupBits * gatesPerLookupBit
	g += h.Registers * gatesPerRegisterBit
	return g
}

// AdaptiveHardware is the Figure-5 budget for one domain's adaptive
// controller: per queue signal a 6-bit adder (queue sizes ≈ 20 < 2^6),
// a 7-bit comparator against the deviation window, a 5-state FSM and an
// 8-bit time-delay counter (delay 256 max), plus a previous-occupancy
// register for the slope signal and a tiny 2-bit scheduler FSM.
func AdaptiveHardware() HardwareBudget {
	return HardwareBudget{
		Scheme:      "adaptive",
		Adders:      []int{6, 6},
		Comparators: []int{7, 7},
		Counters:    []int{8, 8},
		FSMStates:   5 + 5 + 2,
		Registers:   6, // q_{i-1} latch
	}
}
