package control

import (
	"testing"
	"testing/quick"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/isa"
)

// tick drives the controller with a constant sampling period of 4 ns.
type tick struct {
	now clock.Time
	c   *Adaptive
}

func (tk *tick) observe(occ int, cur float64) (float64, bool) {
	tk.now += 4 * clock.Nanosecond
	return tk.c.Observe(tk.now, occ, cur)
}

func newTick(cfg Config) *tick { return &tick{c: NewAdaptive(cfg)} }

// fastCfg is a small-delay configuration for focused unit tests.
func fastCfg() Config {
	cfg := DefaultConfig(isa.DomainInt)
	cfg.TM0 = 5
	cfg.TL0 = 3
	cfg.SwitchTime = 0
	cfg.SignalScaledDelay = false
	cfg.ScaleDownCaution = false
	return cfg
}

func TestDefaultConfigsMatchPaper(t *testing.T) {
	ci := DefaultConfig(isa.DomainInt)
	if ci.QRef != 7 {
		t.Errorf("INT QRef = %d, want 7", ci.QRef)
	}
	for _, d := range []isa.ExecDomain{isa.DomainFP, isa.DomainLS} {
		if c := DefaultConfig(d); c.QRef != 4 {
			t.Errorf("%v QRef = %d, want 4", d, c.QRef)
		}
	}
	if ci.TM0 != 50 || ci.TL0 != 8 {
		t.Errorf("delays = %g/%g, want 50/8", ci.TM0, ci.TL0)
	}
	if ci.DWLevel != 1 || ci.DWSlope != 0 {
		t.Errorf("windows = %d/%d, want 1/0", ci.DWLevel, ci.DWSlope)
	}
	// Remark 3: T_m0 should be 2-8x T_l0.
	ratio := ci.TM0 / ci.TL0
	if ratio < 2 || ratio > 8 {
		t.Errorf("TM0/TL0 = %g outside the Remark-3 band [2,8]", ratio)
	}
	if err := ci.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := DefaultConfig(isa.DomainInt)
		mut(&c)
		return c
	}
	bad := []Config{
		mk(func(c *Config) { c.QRef = -1 }),
		mk(func(c *Config) { c.DWLevel = -1 }),
		mk(func(c *Config) { c.TM0 = 0 }),
		mk(func(c *Config) { c.TL0 = -3 }),
		mk(func(c *Config) { c.GainM = 0 }),
		mk(func(c *Config) { c.StepMHz = 0 }),
		mk(func(c *Config) { c.SwitchTime = -1 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestLevelSignalTriggersUpAfterDelay(t *testing.T) {
	cfg := fastCfg()
	tk := newTick(cfg)
	cur := 500.0
	var fired int
	for i := 0; i < 20; i++ {
		// Occupancy stuck well above QRef+DW -> count up.
		if target, ok := tk.observe(cfg.QRef+5, cur); ok {
			fired = i + 1
			if target <= cur {
				t.Fatalf("trigger lowered frequency: %g -> %g", cur, target)
			}
			break
		}
	}
	// TL0=3 fires first via the slope FSM? Slope signal is 0 for a
	// constant occupancy, so the level FSM (TM0=5) fires on tick 5.
	if fired != 5 {
		t.Errorf("fired at tick %d, want 5 (TM0)", fired)
	}
}

func TestLevelSignalTriggersDownOnEmptyQueue(t *testing.T) {
	cfg := fastCfg()
	tk := newTick(cfg)
	cur := 500.0
	for i := 0; i < 4; i++ {
		if _, ok := tk.observe(0, cur); ok {
			t.Fatalf("fired early at tick %d", i+1)
		}
	}
	target, ok := tk.observe(0, cur)
	if !ok {
		t.Fatal("did not fire at TM0")
	}
	if target >= cur {
		t.Errorf("empty queue should lower frequency: %g -> %g", cur, target)
	}
}

func TestDeviationWindowSuppressesSmallErrors(t *testing.T) {
	cfg := fastCfg()
	tk := newTick(cfg)
	// |q - qref| <= DW (=1) must never trigger.
	for i := 0; i < 200; i++ {
		occ := cfg.QRef
		if i%2 == 0 {
			occ++
		}
		if _, ok := tk.observe(occ, 500); ok {
			t.Fatal("triggered inside deviation window")
		}
	}
}

func TestNoiseResetsCounter(t *testing.T) {
	cfg := fastCfg()
	cfg.TL0 = 100 // keep the slope FSM quiet
	tk := newTick(cfg)
	// Pattern: 4 ticks outside the window, then 1 inside, repeatedly.
	// The counter (threshold 5) must never fire.
	for i := 0; i < 100; i++ {
		occ := cfg.QRef + 5
		if i%5 == 4 {
			occ = cfg.QRef
		}
		if _, ok := tk.observe(occ, 500); ok {
			t.Fatalf("noise pattern triggered an action at tick %d", i)
		}
	}
}

func TestSlopeSignalCatchesFastSwing(t *testing.T) {
	cfg := fastCfg()
	cfg.TM0 = 1000 // keep the level FSM quiet
	tk := newTick(cfg)
	occ := 0
	fired := 0
	for i := 0; i < 10; i++ {
		occ += 2 // rising fast: slope +2 each tick, level still below ref
		if target, ok := tk.observe(occ, 500); ok {
			fired = i + 1
			if target <= 500 {
				t.Fatalf("rising queue must raise frequency, got %g", target)
			}
			break
		}
	}
	// The first sample only establishes q_{i-1}, so the slope FSM
	// fires TL0 ticks later: tick 4.
	if fired != 4 {
		t.Errorf("slope FSM fired at tick %d, want 4", fired)
	}
}

func TestOppositeTriggersCancel(t *testing.T) {
	cfg := fastCfg()
	// Thresholds chosen so both FSMs cross on the same tick given the
	// priming sample below: the level FSM counts from tick 1, the
	// slope FSM from tick 2 (the first sample only sets q_{i-1}).
	cfg.TM0 = 4
	cfg.TL0 = 3
	tk := newTick(cfg)
	// Occupancy far below qref (level wants DOWN) but rising steeply
	// (slope wants UP).
	// Occupancies 2,3,4,5 against QRef 7: the level signal stays below
	// -DW throughout while the slope is +1 every tick.
	if _, ok := tk.observe(2, 500); ok { // prime: level tick 1
		t.Fatal("fired on priming sample")
	}
	occ := 2
	for i := 0; i < 3; i++ {
		occ++
		if _, ok := tk.observe(occ, 500); ok {
			t.Fatal("simultaneous opposite triggers acted instead of cancelling")
		}
	}
	if tk.c.Stats().Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", tk.c.Stats().Cancellations)
	}
	if tk.c.Stats().Actions != 0 {
		t.Errorf("actions = %d, want 0 after cancellation", tk.c.Stats().Actions)
	}
}

func TestAgreeingTriggersDouble(t *testing.T) {
	cfg := fastCfg()
	// Align the two FSMs: level counts from the priming sample, slope
	// from one tick later.
	cfg.TM0 = 4
	cfg.TL0 = 3
	drive := func(cfg Config) (*tick, float64, bool) {
		tk := newTick(cfg)
		// Occupancy far above qref AND rising: both trigger UP together.
		occ := cfg.QRef + 10
		target, ok := tk.observe(occ, 500) // prime
		for i := 0; i < 3 && !ok; i++ {
			occ += 2
			target, ok = tk.observe(occ, 500)
		}
		return tk, target, ok
	}
	tk, target, ok := drive(cfg)
	if !ok {
		t.Fatal("no trigger")
	}
	if tk.c.Stats().DoubleSteps != 1 {
		t.Errorf("double steps = %d, want 1", tk.c.Stats().DoubleSteps)
	}
	if want := cfg.Range.Step(500, 2); target != want {
		t.Errorf("double-step target = %g, want %g", target, want)
	}
	// With CombineDouble off, the same scenario steps once.
	cfg2 := cfg
	cfg2.CombineDouble = false
	if _, target, ok := drive(cfg2); !ok || target != cfg.Range.Step(500, 1) {
		t.Errorf("single-step target = %g, want %g", target, cfg.Range.Step(500, 1))
	}
}

func TestSwitchingHoldBlocksNewActions(t *testing.T) {
	cfg := fastCfg()
	cfg.SwitchTime = 100 * clock.Nanosecond // 25 sampling ticks
	tk := newTick(cfg)
	occ := cfg.QRef + 5
	fired := 0
	for i := 0; i < 60; i++ {
		if _, ok := tk.observe(occ, 500); ok {
			fired++
		}
	}
	// Without the hold we'd fire every TM0=5 ticks (12 times); the
	// 25-tick Act residency plus the 5-tick count allows ~2x fewer.
	if fired == 0 || fired > 3 {
		t.Errorf("fired %d times in 60 ticks with a 25-tick hold, want 1-3", fired)
	}
}

func TestSignalScaledDelayActsFaster(t *testing.T) {
	base := fastCfg()
	base.TM0 = 50
	run := func(cfg Config, occ int) int {
		tk := newTick(cfg)
		for i := 1; i <= 200; i++ {
			if _, ok := tk.observe(occ, 500); ok {
				return i
			}
		}
		return -1
	}
	cfg := base
	cfg.SignalScaledDelay = true
	fast := run(cfg, base.QRef+10) // |signal| = 10 -> 10x faster counting
	slow := run(base, base.QRef+10)
	if fast == -1 || slow == -1 {
		t.Fatal("controller never fired")
	}
	if fast*5 > slow {
		t.Errorf("signal scaling too weak: scaled=%d ticks unscaled=%d", fast, slow)
	}
	// And a larger swing must fire sooner than a small one.
	small := run(cfg, base.QRef+2)
	if fast >= small {
		t.Errorf("10-over swing (%d) not faster than 2-over swing (%d)", fast, small)
	}
}

func TestScaleDownCautionSlowsLowFrequencyDowSteps(t *testing.T) {
	cfg := fastCfg()
	cfg.TM0 = 20
	cfg.ScaleDownCaution = true
	cfg.SignalScaledDelay = false
	run := func(cur float64) int {
		tk := newTick(cfg)
		for i := 1; i <= 2000; i++ {
			if _, ok := tk.observe(0, cur); ok {
				return i
			}
		}
		return -1
	}
	atMax := run(1000) // f̃=1: no slowdown
	atMin := run(250)  // f̃=0.25: 16x slower counting
	if atMax == -1 || atMin == -1 {
		t.Fatal("controller never fired")
	}
	if atMin < atMax*8 {
		t.Errorf("down-step at fmin (%d ticks) should be ≫ slower than at fmax (%d)", atMin, atMax)
	}
}

func TestResetClearsState(t *testing.T) {
	cfg := fastCfg()
	tk := newTick(cfg)
	for i := 0; i < 4; i++ {
		tk.observe(cfg.QRef+5, 500)
	}
	tk.c.Reset()
	// After reset the counter must start over: 4 more ticks, no fire.
	for i := 0; i < 4; i++ {
		if _, ok := tk.observe(cfg.QRef+5, 500); ok {
			t.Fatal("fired before TM0 after Reset")
		}
	}
	if tk.c.Stats().Samples != 4 {
		t.Errorf("stats not reset: %+v", tk.c.Stats())
	}
}

func TestTargetsStayInRange(t *testing.T) {
	cfg := fastCfg()
	tk := newTick(cfg)
	f := func(occRaw uint8, curRaw uint16) bool {
		occ := int(occRaw % 40)
		cur := 250 + float64(curRaw%751)
		target, ok := tk.observe(occ, cur)
		if !ok {
			return true
		}
		return target >= cfg.Range.MinMHz && target <= cfg.Range.MaxMHz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestName(t *testing.T) {
	if NewAdaptive(fastCfg()).Name() != "adaptive" {
		t.Error("wrong scheme name")
	}
}

func TestHardwareBudget(t *testing.T) {
	hb := AdaptiveHardware()
	g := hb.Gates()
	if g <= 0 {
		t.Fatal("non-positive gate estimate")
	}
	// The paper's point: the decision logic is tiny (book-keeping
	// scale, i.e. well under ~2000 gates).
	if g > 2000 {
		t.Errorf("adaptive decision logic estimated at %d gates; expected book-keeping scale", g)
	}
	if hb.Scheme != "adaptive" {
		t.Error("wrong scheme label")
	}
}

func TestModelSystemMatchesCalibration(t *testing.T) {
	cfg := DefaultConfig(isa.DomainInt)
	sys := cfg.ModelSystem(0.3, 0.7, 4)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's default (50/8 delays, unit gains) must be stable and
	// near the typical Kl ~ 0.5 operating point at f_max.
	if !sys.Stable(1) {
		t.Error("default configuration analytically unstable")
	}
	if kl := sys.Kl(1); kl < 0.3 || kl > 0.8 {
		t.Errorf("Kl(fmax) = %g, want near the paper's typical 0.5", kl)
	}
}

func TestRemarkComplianceFollowsDelayRatio(t *testing.T) {
	good := DefaultConfig(isa.DomainInt) // 50/8: ratio 6.25, in band
	if !good.RemarkCompliant(1) {
		t.Errorf("paper default not Remark-3 compliant (xi=%g)",
			good.ModelSystem(0.3, 0.7, 4).DampingRatio(1))
	}
	bad := good
	bad.TL0 = bad.TM0 * 4 // inverted ratio: heavily underdamped
	if bad.RemarkCompliant(1) {
		t.Error("inverted delay ratio should violate Remark 3")
	}
}

func TestProportionalStepScalesWithExcursion(t *testing.T) {
	cfg := fastCfg()
	cfg.ProportionalStep = true
	cfg.MaxPropSteps = 4
	run := func(occ int) float64 {
		tk := newTick(cfg)
		for i := 0; i < 20; i++ {
			if target, ok := tk.observe(occ, 500); ok {
				return target
			}
		}
		t.Fatalf("no trigger for occ %d", occ)
		return 0
	}
	small := run(cfg.QRef + 3)  // |sM|=3 -> 1 step
	large := run(cfg.QRef + 20) // |sM|=20 -> 20/4=5, capped at 4 steps
	if large <= small {
		t.Errorf("large excursion target %g not above small %g", large, small)
	}
	if want := cfg.Range.Step(500, 4); large != want {
		t.Errorf("capped proportional target = %g, want %g", large, want)
	}
	if want := cfg.Range.Step(500, 1); small != want {
		t.Errorf("small proportional target = %g, want %g", small, want)
	}
}
