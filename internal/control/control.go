// Package control implements the paper's primary contribution: the
// intra-task online DVFS controller with *adaptive reaction time* for
// multiple-clock-domain processors (Section 3).
//
// Per controlled domain, the controller monitors two queue signals at
// every sampling tick i:
//
//	level signal  sM = q_i − q_ref       (deviation window ±1)
//	slope signal  sL = q_i − q_{i−1}     (deviation window 0)
//
// Each signal drives its own five-state finite state machine (Figure 4:
// Wait, Count-Up, Count-Down, Start, Act) with a resettable time-delay
// counter. A signal outside its deviation window accumulates delay
// credit; falling back inside the window resets the counter (noise
// rejection). When the accumulated delay passes the basic time delay
// (T_m0 = 50 or T_l0 = 8 sampling periods), a single ±step
// frequency/voltage change is triggered; the physical switch takes the
// transition time T_s, during which the FSM parks in Act.
//
// Two refinements from the paper:
//   - signal-dependent delay (Eq. 5): the counter increments faster for
//     larger |signal|, so severe swings trigger sooner;
//   - frequency-dependent down-scaling caution: the count-down delay is
//     scaled by 1/f̃² (f̃ = f/f_max), making the controller increasingly
//     reluctant to scale an already-slow domain further down.
//
// A scheduler reconciles the two FSMs (Section 3.1): two simultaneous
// triggers in the same direction combine into one double-size step; two
// opposite triggers cancel and both FSMs reset.
package control

import (
	"fmt"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/dvfs"
	"mcddvfs/internal/isa"
)

// Config parameterizes one adaptive controller instance.
type Config struct {
	// QRef is the reference (target) queue occupancy. Table 1: 7 for
	// INT, 4 for FP and LS. Raising QRef makes the controller more
	// aggressive about saving energy; lowering it preserves
	// performance (Section 3.1).
	QRef int
	// DWLevel is the deviation-window half-width for the level signal
	// q−q_ref (Table 1: ±1).
	DWLevel int
	// DWSlope is the deviation-window half-width for the slope signal
	// q_i−q_{i−1} (Table 1: 0).
	DWSlope int
	// TM0 and TL0 are the basic time delays, in sampling periods, for
	// the level and slope signals (Section 5.1: T_m0 = 50, T_l0 = 8;
	// Remark 3 wants TM0 ≈ 2–8 × TL0).
	TM0 float64
	TL0 float64
	// GainM and GainL are the m and l conversion constants of Eq. 5:
	// the counter increment per sampling period is Gain·|signal| when
	// signal-scaled delay is enabled.
	GainM float64
	GainL float64
	// StepMHz is the frequency step of one triggered action (one grid
	// step, ≈2.3 MHz).
	StepMHz float64
	// SwitchTime is T_s: the physical time one single-step transition
	// takes (the FSM parks in Act for this long).
	SwitchTime clock.Time
	// Range is the operating envelope (for relative frequency and
	// clamping).
	Range dvfs.Range

	// Feature switches, all true in the paper's design; exposed for the
	// ablation experiments.
	SignalScaledDelay bool // larger |signal| counts faster (Eq. 5)
	ScaleDownCaution  bool // count-down delay × 1/f̃²
	CombineDouble     bool // scheduler merges agreeing triggers into a 2× step

	// ProportionalStep is a design-space extension beyond the paper:
	// instead of a fixed single step per action, the step count scales
	// with the level excursion (|q−q_ref|/4, clamped to [1,
	// MaxPropSteps]). The paper argues for fixed fine-grained steps
	// under the XScale model; this knob measures what proportional
	// actuation would buy or cost.
	ProportionalStep bool
	// MaxPropSteps caps the proportional step count (default 4).
	MaxPropSteps int
}

// DefaultConfig returns the paper's Section-5.1 configuration for a
// given execution domain.
func DefaultConfig(domain isa.ExecDomain) Config {
	r := dvfs.Default()
	qref := 4
	if domain == isa.DomainInt {
		qref = 7 // Table 1: roughly 1/3 of the 20-entry INT queue
	}
	tm := dvfs.DefaultTransitions()
	return Config{
		QRef:    qref,
		DWLevel: 1,
		DWSlope: 0,
		TM0:     50,
		TL0:     8,
		GainM:   1,
		GainL:   1,
		StepMHz: r.StepMHz(),
		// T_s for a single step at the Table-1 slew rate (~172 ns).
		SwitchTime: tm.TimeFor(r, r.StepMHz()),
		Range:      r,

		SignalScaledDelay: true,
		ScaleDownCaution:  true,
		CombineDouble:     true,
		MaxPropSteps:      4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QRef < 0 {
		return fmt.Errorf("control: negative QRef %d", c.QRef)
	}
	if c.DWLevel < 0 || c.DWSlope < 0 {
		return fmt.Errorf("control: negative deviation window")
	}
	if c.TM0 <= 0 || c.TL0 <= 0 {
		return fmt.Errorf("control: non-positive basic time delay (TM0=%g TL0=%g)", c.TM0, c.TL0)
	}
	if c.GainM <= 0 || c.GainL <= 0 {
		return fmt.Errorf("control: non-positive gain")
	}
	if c.StepMHz <= 0 {
		return fmt.Errorf("control: non-positive step")
	}
	if c.SwitchTime < 0 {
		return fmt.Errorf("control: negative switch time")
	}
	return c.Range.Validate()
}

// fsmState is a five-state Figure-4 machine state. Start and Act are
// folded together: in this simulator triggering and actuation happen at
// the same sampling tick, and the Act residency is modeled by the
// controller-level switching hold.
type fsmState uint8

const (
	stateWait fsmState = iota
	stateCountUp
	stateCountDown
)

// signalFSM is one of the two per-signal state machines.
type signalFSM struct {
	state   fsmState
	counter float64
}

// trigger values returned by step.
const (
	trigNone = 0
	trigUp   = +1
	trigDown = -1
)

// step advances the FSM by one sampling tick and returns a trigger when
// the accumulated delay crosses the threshold.
//
// signal is the raw queue signal; dw the deviation window half-width;
// threshold the basic time delay; inc the per-tick counter increment
// (already signal- and frequency-scaled by the caller).
func (f *signalFSM) step(signal, dw int, threshold, inc float64) int {
	switch {
	case signal > dw:
		if f.state != stateCountUp {
			f.state = stateCountUp
			f.counter = 0
		}
		f.counter += inc
		if f.counter >= threshold {
			f.reset()
			return trigUp
		}
	case signal < -dw:
		if f.state != stateCountDown {
			f.state = stateCountDown
			f.counter = 0
		}
		f.counter += inc
		if f.counter >= threshold {
			f.reset()
			return trigDown
		}
	default:
		// Inside the deviation window: noise rejection resets the
		// counter (the resettable time-delay relay of Section 3).
		f.reset()
	}
	return trigNone
}

func (f *signalFSM) reset() {
	f.state = stateWait
	f.counter = 0
}

// Stats counts controller events for reports and ablations.
type Stats struct {
	Samples       uint64
	Actions       int // frequency changes issued (double steps count once)
	UpSteps       int // total up steps (a double step counts 2)
	DownSteps     int
	Cancellations int // opposite simultaneous triggers annulled
	DoubleSteps   int // agreeing simultaneous triggers merged
}

// Adaptive is the paper's event-driven DVFS controller. It implements
// the simulator's Controller interface (Observe is called at each
// 250 MHz sampling tick).
type Adaptive struct {
	cfg Config

	level signalFSM
	slope signalFSM

	prevOcc  int
	havePrev bool

	// holdUntil parks the controller in the Act state while the
	// physical transition completes.
	holdUntil clock.Time

	stats Stats
}

// NewAdaptive creates a controller; it panics on invalid configuration
// (construction is programmer-controlled).
func NewAdaptive(cfg Config) *Adaptive {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Adaptive{cfg: cfg}
}

// Name implements the Controller interface.
func (a *Adaptive) Name() string { return "adaptive" }

// Config returns the controller's configuration.
func (a *Adaptive) Config() Config { return a.cfg }

// Stats returns the event counters.
func (a *Adaptive) Stats() Stats { return a.stats }

// Reset implements the Controller interface.
func (a *Adaptive) Reset() {
	a.level.reset()
	a.slope.reset()
	a.prevOcc = 0
	a.havePrev = false
	a.holdUntil = 0
	a.stats = Stats{}
}

// Observe implements the Controller interface: one sampling tick.
func (a *Adaptive) Observe(now clock.Time, occ int, curMHz float64) (float64, bool) {
	a.stats.Samples++

	sM := occ - a.cfg.QRef
	sL := 0
	if a.havePrev {
		sL = occ - a.prevOcc
	}
	a.prevOcc = occ
	a.havePrev = true

	// Act state: the physical switch is still in flight; signals are
	// not examined until it completes (Figure 4: "after Ts, any
	// signal" -> Wait).
	if now < a.holdUntil {
		return 0, false
	}

	rel := a.cfg.Range.RelativeFreq(curMHz)

	tM := a.level.step(sM, a.cfg.DWLevel, a.cfg.TM0, a.increment(a.cfg.GainM, sM, rel))
	tL := a.slope.step(sL, a.cfg.DWSlope, a.cfg.TL0, a.increment(a.cfg.GainL, sL, rel))

	steps := a.reconcile(tM, tL)
	if steps == 0 {
		return 0, false
	}
	if a.cfg.ProportionalStep {
		mag := sM / 4
		if mag < 0 {
			mag = -mag
		}
		if mag < 1 {
			mag = 1
		}
		maxSteps := a.cfg.MaxPropSteps
		if maxSteps < 1 {
			maxSteps = 1
		}
		if mag > maxSteps {
			mag = maxSteps
		}
		steps *= mag
	}

	a.stats.Actions++
	if steps > 0 {
		a.stats.UpSteps += steps
	} else {
		a.stats.DownSteps -= steps
	}
	target := a.cfg.Range.Step(curMHz, steps)
	n := steps
	if n < 0 {
		n = -n
	}
	a.holdUntil = now + clock.Time(int64(n))*a.cfg.SwitchTime
	a.level.reset()
	a.slope.reset()
	return target, true
}

// increment computes the per-tick counter increment for a signal value:
// gain·|signal| under signal-scaled delay (Eq. 5), with the count-down
// 1/f̃² caution factor applied as a f̃² increment scale.
func (a *Adaptive) increment(gain float64, signal int, relFreq float64) float64 {
	inc := gain
	if a.cfg.SignalScaledDelay {
		s := signal
		if s < 0 {
			s = -s
		}
		if s > 0 {
			inc = gain * float64(s)
		}
	}
	if a.cfg.ScaleDownCaution && signal < 0 {
		inc *= relFreq * relFreq
	}
	return inc
}

// reconcile implements the Section-3.1 scheduler: merge or cancel
// simultaneous triggers from the two FSMs.
func (a *Adaptive) reconcile(tM, tL int) int {
	switch {
	case tM == trigNone && tL == trigNone:
		return 0
	case tM == trigNone:
		return tL
	case tL == trigNone:
		return tM
	case tM == tL:
		if a.cfg.CombineDouble {
			a.stats.DoubleSteps++
			return 2 * tM
		}
		return tM
	default:
		// Opposite actions cancel; both FSMs reset to Wait.
		a.stats.Cancellations++
		return 0
	}
}
