package control

import (
	"testing"

	"mcddvfs/internal/clock"
	"mcddvfs/internal/isa"
)

// FuzzAdaptiveObserve drives the dual-FSM controller with arbitrary
// occupancy sequences (the exact byte stream a corrupted sensor could
// deliver) under every combination of feature switches and asserts the
// paper's safety invariants:
//
//   - a commanded frequency always lands inside cfg.Range;
//   - the resettable delay counters never go negative;
//   - the Act state always exits: a triggered hold is bounded by the
//     largest possible step count times the switch time, so the
//     controller cannot park itself forever.
func FuzzAdaptiveObserve(f *testing.F) {
	f.Add(uint8(0), []byte{7, 7, 7, 7})
	f.Add(uint8(15), []byte{0, 40, 0, 40, 0, 40, 0, 40, 0, 40})
	f.Add(uint8(5), []byte{255, 0, 255, 0, 12, 3, 9, 200, 1, 1, 1, 1, 1, 1})
	f.Add(uint8(8), []byte{20, 20, 20, 20, 20, 20, 20, 20, 20, 20, 20, 20})

	f.Fuzz(func(t *testing.T, flags uint8, occs []byte) {
		for _, dom := range []isa.ExecDomain{isa.DomainInt, isa.DomainFP} {
			cfg := DefaultConfig(dom)
			cfg.SignalScaledDelay = flags&1 != 0
			cfg.ScaleDownCaution = flags&2 != 0
			cfg.CombineDouble = flags&4 != 0
			cfg.ProportionalStep = flags&8 != 0
			a := NewAdaptive(cfg)

			maxSteps := 2 // a combined double step
			if cfg.ProportionalStep && cfg.MaxPropSteps > 1 {
				maxSteps = 2 * cfg.MaxPropSteps
			}
			maxHold := clock.Time(int64(maxSteps)) * cfg.SwitchTime

			const period = 4 * clock.Nanosecond // 250 MHz sampling
			cur := cfg.Range.MaxMHz
			var now clock.Time
			for i, b := range occs {
				target, change := a.Observe(now, int(b), cur)
				if a.level.counter < 0 || a.slope.counter < 0 {
					t.Fatalf("tick %d: negative delay counter (level %g, slope %g)",
						i, a.level.counter, a.slope.counter)
				}
				if change {
					if target < cfg.Range.MinMHz || target > cfg.Range.MaxMHz {
						t.Fatalf("tick %d: target %g MHz outside [%g, %g]",
							i, target, cfg.Range.MinMHz, cfg.Range.MaxMHz)
					}
					if a.holdUntil > now+maxHold {
						t.Fatalf("tick %d: Act hold of %v exceeds the %v bound for ≤%d steps",
							i, a.holdUntil-now, maxHold, maxSteps)
					}
					cur = target
				}
				now += period
			}

			// The Act state must be exited by waiting, not only by luck.
			// After the longest possible hold, settle both signals: the
			// first q_ref sample may still see a large slope (q_ref −
			// prevOcc), but the second has level 0 and slope 0, so it
			// must reach the FSMs, trigger nothing, and leave the
			// counters reset.
			now += maxHold
			a.Observe(now, cfg.QRef, cur)
			now += period + maxHold
			if _, change := a.Observe(now, cfg.QRef, cur); change {
				t.Fatal("zero-signal sample after the hold still triggered a change")
			}
			if a.level.counter != 0 || a.slope.counter != 0 {
				t.Fatalf("in-window sample did not reset the counters (level %g, slope %g)",
					a.level.counter, a.slope.counter)
			}
		}
	})
}
