package stability

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadSystems(t *testing.T) {
	bad := []func(*System){
		func(s *System) { s.M = 0 },
		func(s *System) { s.Step = -1 },
		func(s *System) { s.TM0 = 0 },
		func(s *System) { s.Gamma = 0 },
		func(s *System) { s.C2 = 0 },
		func(s *System) { s.T1 = -1 },
	}
	for i, mut := range bad {
		s := Default()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRootsSatisfyCharacteristicEquation(t *testing.T) {
	s := Default()
	for _, f0 := range []float64{0.3, 0.5, 1.0} {
		km, kl := complex(s.Km(f0), 0), complex(s.Kl(f0), 0)
		r1, r2 := s.Roots(f0)
		for _, r := range []complex128{r1, r2} {
			res := r*r + kl*r + km
			if math.Hypot(real(res), imag(res)) > 1e-12 {
				t.Errorf("f0=%g: root %v violates characteristic equation (residual %v)", f0, r, res)
			}
		}
	}
}

// TestRemark1 verifies: any positive parameter setting is stable.
func TestRemark1StabilityForAllPositiveSettings(t *testing.T) {
	f := func(m, l, step, tm, tl, gamma, t1, c2, f0 uint16) bool {
		s := System{
			M:     0.1 + float64(m%100)/10,
			L:     0.1 + float64(l%100)/10,
			Step:  0.001 + float64(step%100)/100,
			TM0:   1 + float64(tm%200),
			TL0:   1 + float64(tl%50),
			Gamma: 0.1 + float64(gamma%50)/10,
			T1:    float64(t1%10) / 10,
			C2:    0.1 + float64(c2%20)/10,
			QRef:  4,
		}
		op := 0.25 + float64(f0%76)/100 // 0.25..1.0
		return s.Stable(op)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestRemark2 verifies: smaller time delays improve settling time.
func TestRemark2SmallerDelaysSettleFaster(t *testing.T) {
	fast := Default()
	slow := Default()
	slow.TM0 *= 4
	slow.TL0 *= 4
	if fast.SettlingTime(1) >= slow.SettlingTime(1) {
		t.Errorf("analytic settling: fast %g !< slow %g", fast.SettlingTime(1), slow.SettlingTime(1))
	}
	// And numerically, via the nonlinear loop.
	trFast, err := fast.StepResponse(0.6, 0.2, 0.5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	trSlow, err := slow.StepResponse(0.6, 0.2, 0.5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	mf, ms := fast.Analyze(trFast), slow.Analyze(trSlow)
	if mf.SettleTime < 0 || ms.SettleTime < 0 {
		t.Fatalf("loop did not settle: fast %g slow %g", mf.SettleTime, ms.SettleTime)
	}
	if mf.SettleTime >= ms.SettleTime {
		t.Errorf("numeric settling: fast %g !< slow %g", mf.SettleTime, ms.SettleTime)
	}
}

// TestRemark3 verifies the damping band and the 2-8x delay ratio.
func TestRemark3DelayRatioBand(t *testing.T) {
	lo, hi := DelayRatioBounds(0.5)
	if lo != 2 || hi != 8 {
		t.Errorf("delay ratio bounds at K_l=1/2 = [%g,%g], want [2,8]", lo, hi)
	}
	// A system tuned inside the band has 0.5 <= xi <= 1 and small
	// overshoot; the paper's 50/8 with m=l stays near it.
	s := Default()
	// Build a system with an exact mid-band ratio: TM0/TL0 = Kl/Km.
	s.TL0 = 10
	s.TM0 = 40 // ratio 4, mid-band
	// Scale Gamma so K_l lands at 0.5 (the paper's "typical" value).
	s.Gamma = 0.5 * s.TL0 / (s.L * s.K(1) * s.Step)
	if xi := s.DampingRatio(1); xi < 0.5 || xi > 1.1 {
		t.Errorf("mid-band damping ratio = %g, want ~[0.5,1]", xi)
	}
	if !s.Remark3OK(1) && s.DampingRatio(1) < 1.05 {
		// allow boundary rounding
		t.Errorf("Remark3OK false for mid-band system (xi=%g)", s.DampingRatio(1))
	}
	if ov := s.Overshoot(1); ov > 0.17 {
		t.Errorf("overshoot %g for in-band damping, want <= ~16%%", ov)
	}
}

func TestOvershootMonotoneInDamping(t *testing.T) {
	s := Default()
	// Increasing TL0 lowers K_l, hence xi, hence raises overshoot.
	s2 := s
	s2.TL0 *= 4
	if s2.DampingRatio(1) >= s.DampingRatio(1) {
		t.Fatal("larger TL0 should lower damping")
	}
	if s2.Overshoot(1) <= s.Overshoot(1) && s.DampingRatio(1) < 1 {
		t.Error("lower damping should raise overshoot")
	}
	// Critically damped and beyond: zero overshoot.
	s3 := s
	s3.TL0 = 0.1
	if s3.DampingRatio(1) < 1 {
		t.Skip("could not construct overdamped system")
	}
	if s3.Overshoot(1) != 0 {
		t.Error("overdamped system must not overshoot")
	}
}

func TestMuModel(t *testing.T) {
	s := Default()
	if s.Mu(0) != 0 {
		t.Error("Mu(0) must be 0")
	}
	// Monotone increasing in f, saturating toward 1/t1.
	prev := 0.0
	for f := 0.1; f <= 1.0; f += 0.1 {
		mu := s.Mu(f)
		if mu <= prev {
			t.Fatalf("Mu not increasing at f=%g", f)
		}
		prev = mu
	}
	if lim := 1 / s.T1; s.Mu(1) >= lim {
		t.Errorf("Mu(1)=%g should stay below the 1/t1=%g asymptote", s.Mu(1), lim)
	}
}

func TestKApproximation(t *testing.T) {
	// K(f0)/f0^2 should match dMu/df at f0.
	s := Default()
	for _, f0 := range []float64{0.3, 0.6, 1.0} {
		h := 1e-6
		num := (s.Mu(f0+h) - s.Mu(f0-h)) / (2 * h)
		approx := s.K(f0) / (f0 * f0)
		if math.Abs(num-approx)/num > 1e-4 {
			t.Errorf("f0=%g: dMu/df=%g vs K/f^2=%g", f0, num, approx)
		}
	}
}

func TestStepResponseConverges(t *testing.T) {
	s := Default()
	tr, err := s.StepResponse(0.5, 0.3, 0.5, 30000)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Analyze(tr)
	final := tr[len(tr)-1]
	// The loop must settle with the service rate matching the new
	// arrival rate, i.e. f rises.
	if final.F <= 0.5 {
		t.Errorf("frequency did not rise after workload step: %g", final.F)
	}
	want := s.Mu(0.5) + 0.3
	if math.Abs(final.U-want)/want > 0.05 {
		t.Errorf("service rate %g did not converge to arrival rate %g", final.U, want)
	}
	if m.SettleTime < 0 {
		t.Error("step response never settled")
	}
}

func TestSimulateBoundedForWildInputs(t *testing.T) {
	s := Default()
	lambda := func(t float64) float64 {
		// Aggressive square-wave workload.
		if int(t/100)%2 == 0 {
			return 2.0
		}
		return 0.0
	}
	tr, err := s.Simulate(lambda, 0, 1, 0.5, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range tr {
		if st.Q < 0 || st.Q > 64 || st.F < 0.25 || st.F > 1 {
			t.Fatalf("state escaped bounds: %+v", st)
		}
	}
}

func TestSimulateRejectsBadArgs(t *testing.T) {
	s := Default()
	if _, err := s.Simulate(func(float64) float64 { return 1 }, 0, 1, 0, 10); err == nil {
		t.Error("dt=0 accepted")
	}
	s.C2 = 0
	if _, err := s.Simulate(func(float64) float64 { return 1 }, 0, 1, 0.5, 10); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestAnalyzeEmptyTrajectory(t *testing.T) {
	s := Default()
	m := s.Analyze(nil)
	if m.SettleTime != -1 {
		t.Error("empty trajectory should not settle")
	}
}

func TestCmplxSqrt(t *testing.T) {
	cases := []complex128{4, -4, complex(3, 4), complex(3, -4), 0}
	for _, c := range cases {
		r := cmplxSqrt(c)
		if sq := r * r; math.Hypot(real(sq-c), imag(sq-c)) > 1e-9 {
			t.Errorf("sqrt(%v)^2 = %v", c, sq)
		}
	}
}
