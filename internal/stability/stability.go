// Package stability implements the paper's Section-4 control-theoretic
// analysis of the adaptive DVFS system: the aggregate continuous model
// of the controller/queue/clock-domain loop, its linearization, the
// characteristic roots, and the derived design guidance (Remarks 1–3),
// plus a Runge-Kutta integrator for the nonlinear closed loop used to
// validate the analysis numerically.
//
// The model (Eqs. 1–2 / 7–9 of the paper):
//
//	f'(t) = m·step/(h(f)·T_m0)·(q − q_ref) + l·step/(h(f)·T_l0)·q'(t)
//	q'(t) = γ·(λ(t) − µ(t))
//	µ(t)  = 1/(t1 + c2/f(t))
//
// Choosing h(f) = f² linearizes the loop in the state µ, giving the
// second-order characteristic equation s² + K_l·s + K_m = 0 with
//
//	K_m = m·γ·k·step/T_m0      K_l = l·γ·k·step/T_l0
//
// where k is the local quadratic approximation factor of the µ–f map.
package stability

import (
	"fmt"
	"math"
)

// System carries the aggregate model constants.
type System struct {
	// M and L are the m and l unit-conversion constants of Eq. 1.
	M, L float64
	// Step is the frequency step per action, in normalized frequency.
	Step float64
	// TM0 and TL0 are the basic time delays (sampling periods).
	TM0, TL0 float64
	// Gamma is the γ constant of the queue equation (proportional to
	// the sampling period).
	Gamma float64
	// T1 and C2 parameterize the µ–f service model: t1 is the average
	// frequency-independent time per instruction, c2 the average
	// frequency-dependent cycles per instruction.
	T1, C2 float64
	// QRef is the reference queue occupancy.
	QRef float64
}

// Default returns the paper's "typical system setting": t1/c2 from a
// moderately memory-bound domain, delays from Section 5.1
// (T_m0=50, T_l0=8), γ = 4 instructions per sampling period (IPC ≈ 1
// at 1 GHz sampled at 250 MHz), and the m/l unit-conversion constants
// calibrated so that K_l ≈ 0.5 at the f_max operating point — the
// value the paper's Remark-3 derivation treats as typical, which puts
// the damping ratio inside the [0.5, 1] band for the 50/8 delay pair.
func Default() System {
	return System{
		M: 650, L: 650,
		Step:  1.0 / 320, // one grid step in normalized frequency
		TM0:   50,
		TL0:   8,
		Gamma: 4,
		T1:    0.3,
		C2:    0.7,
		QRef:  4,
	}
}

// Validate checks physical sanity.
func (s System) Validate() error {
	if s.M <= 0 || s.L <= 0 || s.Step <= 0 || s.TM0 <= 0 || s.TL0 <= 0 || s.Gamma <= 0 {
		return fmt.Errorf("stability: non-positive model constant in %+v", s)
	}
	if s.T1 < 0 || s.C2 <= 0 {
		return fmt.Errorf("stability: bad µ–f constants t1=%g c2=%g", s.T1, s.C2)
	}
	return nil
}

// K approximates the µ–f relationship's quadratic factor around the
// operating point f0 (normalized frequency): dµ/df = c2/(t1·f+c2)²,
// which the paper approximates by k/f² and compensates with h(f)=f².
func (s System) K(f0 float64) float64 {
	d := s.T1*f0 + s.C2
	return s.C2 * f0 * f0 / (d * d)
}

// Km returns K_m = m·γ·k·step/T_m0 at operating point f0.
func (s System) Km(f0 float64) float64 {
	return s.M * s.Gamma * s.K(f0) * s.Step / s.TM0
}

// Kl returns K_l = l·γ·k·step/T_l0 at operating point f0.
func (s System) Kl(f0 float64) float64 {
	return s.L * s.Gamma * s.K(f0) * s.Step / s.TL0
}

// Roots returns the characteristic roots
// s_{1,2} = (−K_l ± √(K_l² − 4·K_m))/2 of the linearized loop.
func (s System) Roots(f0 float64) (complex128, complex128) {
	kl, km := s.Kl(f0), s.Km(f0)
	disc := complex(kl*kl-4*km, 0)
	sq := cmplxSqrt(disc)
	a := complex(-kl, 0)
	return (a + sq) / 2, (a - sq) / 2
}

func cmplxSqrt(c complex128) complex128 {
	if imag(c) == 0 {
		if real(c) >= 0 {
			return complex(math.Sqrt(real(c)), 0)
		}
		return complex(0, math.Sqrt(-real(c)))
	}
	r := math.Hypot(real(c), imag(c))
	re := math.Sqrt((r + real(c)) / 2)
	im := math.Sqrt((r - real(c)) / 2)
	if imag(c) < 0 {
		im = -im
	}
	return complex(re, im)
}

// Stable reports Remark 1: with any non-zero positive setting both
// characteristic roots lie in the left half-plane.
func (s System) Stable(f0 float64) bool {
	r1, r2 := s.Roots(f0)
	return real(r1) < 0 && real(r2) < 0
}

// DampingRatio returns ξ = K_l / (2·√K_m).
func (s System) DampingRatio(f0 float64) float64 {
	return s.Kl(f0) / (2 * math.Sqrt(s.Km(f0)))
}

// NaturalFreq returns ω_n = √K_m.
func (s System) NaturalFreq(f0 float64) float64 { return math.Sqrt(s.Km(f0)) }

// SettlingTime returns t_s = 8/K_l (2% criterion), in sampling periods.
func (s System) SettlingTime(f0 float64) float64 { return 8 / s.Kl(f0) }

// RiseTime returns t_r ≈ 0.8/√K_m + 1.25·K_l/K_m, in sampling periods.
func (s System) RiseTime(f0 float64) float64 {
	km, kl := s.Km(f0), s.Kl(f0)
	return 0.8/math.Sqrt(km) + 1.25*kl/km
}

// Overshoot returns the maximum percent transient overshoot
// M_p = exp(−πξ/√(1−ξ²)) for underdamped systems, 0 otherwise.
func (s System) Overshoot(f0 float64) float64 {
	xi := s.DampingRatio(f0)
	if xi >= 1 {
		return 0
	}
	return math.Exp(-math.Pi * xi / math.Sqrt(1-xi*xi))
}

// Remark3OK reports whether the damping constraint 0.5 ≤ ξ ≤ 1 holds —
// the condition the paper derives for small transient overshoot with
// good rise time.
func (s System) Remark3OK(f0 float64) bool {
	xi := s.DampingRatio(f0)
	return xi >= 0.5 && xi <= 1
}

// DelayRatioBounds returns the [low, high] band for T_m0/T_l0 implied
// by Remark 3: K_l²/4 ≤ K_m ≤ K_l² together with m = l gives
// T_m0/T_l0 = K_l/K_m ∈ [1/K_l, 4/K_l]. With the paper's typical
// K_l = 1/2 this is the famous 2–8× band.
func DelayRatioBounds(kl float64) (lo, hi float64) {
	return 1 / kl, 4 / kl
}
