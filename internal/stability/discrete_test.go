package stability

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestDiscreteRootsMatchContinuous(t *testing.T) {
	s := Default()
	for _, T := range []float64{0.1, 1, 10} {
		z1, z2 := s.DiscreteRoots(1, T)
		r1, r2 := s.Roots(1)
		// |z| = e^{Re(s)·T}.
		if got, want := cmplx.Abs(z1), math.Exp(real(r1)*T); math.Abs(got-want) > 1e-12 {
			t.Errorf("T=%g: |z1| = %g, want %g", T, got, want)
		}
		if got, want := cmplx.Abs(z2), math.Exp(real(r2)*T); math.Abs(got-want) > 1e-12 {
			t.Errorf("T=%g: |z2| = %g, want %g", T, got, want)
		}
	}
}

// TestDiscreteStabilityForAllPositiveSettings extends Remark 1 to the
// sampled system: any positive parameterization is stable at any
// sampling period.
func TestDiscreteStabilityForAllPositiveSettings(t *testing.T) {
	f := func(m, l, tm, tl, gamma, Traw uint16) bool {
		s := Default()
		s.M = 1 + float64(m%2000)
		s.L = 1 + float64(l%2000)
		s.TM0 = 1 + float64(tm%200)
		s.TL0 = 1 + float64(tl%50)
		s.Gamma = 0.5 + float64(gamma%100)/10
		T := 0.1 + float64(Traw%100)
		return s.StableDiscrete(1, T) && s.StableDiscrete(0.3, T)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDiscreteStepResponseConvergesToZero(t *testing.T) {
	// The loop has integral action on the queue error, so the sampled
	// error sequence must decay to zero after a workload step.
	s := Default()
	seq, err := s.DiscreteStepResponse(1, 1, 400)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0.0
	for _, e := range seq {
		if math.Abs(e) > peak {
			peak = math.Abs(e)
		}
	}
	if peak == 0 {
		t.Fatal("no transient at all")
	}
	tail := seq[len(seq)-1]
	if math.Abs(tail) > 0.02*peak {
		t.Errorf("queue error did not decay: tail %g vs peak %g", tail, peak)
	}
}

func TestDiscreteMatchesContinuousEnvelope(t *testing.T) {
	// At the paper's fine-grained setting the discrete and continuous
	// analyses must agree: the sampled error envelope decays at the
	// continuous rate e^{Re(s)·t} within a modest factor.
	s := Default()
	T := 1.0
	seq, err := s.DiscreteStepResponse(1, T, 200)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := s.Roots(1)
	decay := real(r1)
	// Compare |e(k)| at two well-separated points against the
	// analytic envelope ratio.
	k1, k2 := 20, 120
	got := math.Abs(seq[k2]) / math.Abs(seq[k1])
	want := math.Exp(decay * float64(k2-k1) * T)
	if got > want*50 || got < want/50 {
		t.Errorf("envelope ratio %g vs analytic %g (decay %g)", got, want, decay)
	}
}

func TestDiscreteStepResponseErrors(t *testing.T) {
	s := Default()
	if _, err := s.DiscreteStepResponse(1, 0, 10); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := s.DiscreteStepResponse(1, 1, 0); err == nil {
		t.Error("steps=0 accepted")
	}
	s.C2 = 0
	if _, err := s.DiscreteStepResponse(1, 1, 10); err == nil {
		t.Error("invalid system accepted")
	}
}

func TestExpm2Identity(t *testing.T) {
	// exp(0) = I.
	m := expm2(0, 0, 0, 0, 5)
	want := [4]float64{1, 0, 0, 1}
	for i := range want {
		if math.Abs(m[i]-want[i]) > 1e-12 {
			t.Fatalf("exp(0) = %v", m)
		}
	}
	// exp(diag(a,d)t) = diag(e^{at}, e^{dt}).
	m = expm2(0.3, 0, 0, -0.7, 2)
	if math.Abs(m[0]-math.Exp(0.6)) > 1e-9 || math.Abs(m[3]-math.Exp(-1.4)) > 1e-9 {
		t.Errorf("diagonal exponential wrong: %v", m)
	}
	if m[1] != 0 || m[2] != 0 {
		t.Errorf("off-diagonals nonzero: %v", m)
	}
}

func TestExpm2Rotation(t *testing.T) {
	// exp([[0,1],[-1,0]]·θ) is a rotation by θ.
	theta := 0.8
	m := expm2(0, 1, -1, 0, theta)
	if math.Abs(m[0]-math.Cos(theta)) > 1e-9 || math.Abs(m[1]-math.Sin(theta)) > 1e-9 {
		t.Errorf("rotation wrong: %v", m)
	}
}
