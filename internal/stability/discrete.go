package stability

// Discrete-time analysis. The paper's model is continuous-time; its
// footnote notes that "a similar but more complicated discrete-time
// model can be derived to get a better and more accurate analysis
// result" and leaves it as future work. This file provides that
// extension: the exact zero-order-hold discretization of the linearized
// second-order loop and its z-plane stability test, plus the sampled
// step response used to cross-check the continuous analysis.

import (
	"fmt"
	"math"
	"math/cmplx"
)

// DiscreteRoots maps the continuous characteristic roots onto the
// z-plane for a sampling period of T sampling-time units via the exact
// pole mapping z = e^{sT} (zero-order hold preserves pole locations).
func (s System) DiscreteRoots(f0, T float64) (complex128, complex128) {
	r1, r2 := s.Roots(f0)
	return cmplx.Exp(r1 * complex(T, 0)), cmplx.Exp(r2 * complex(T, 0))
}

// StableDiscrete reports whether the sampled system is stable: both
// z-plane poles strictly inside the unit circle. For any left-half-
// plane continuous pole this holds for every positive T, so the
// discrete analysis confirms Remark 1 at any sampling rate.
func (s System) StableDiscrete(f0, T float64) bool {
	z1, z2 := s.DiscreteRoots(f0, T)
	return cmplx.Abs(z1) < 1 && cmplx.Abs(z2) < 1
}

// DiscreteStepResponse iterates the exact ZOH-discretized linear loop
//
//	e_{k+1} = Φ·e_k + Γ·u
//
// for the state (q−q_ref, µ−µ*) under a unit workload step, returning
// the queue-error sequence. It exposes any inter-sample behavior the
// continuous approximation hides (for the paper's fine-grained steps
// the two agree closely; the test suite quantifies the gap).
func (s System) DiscreteStepResponse(f0, T float64, steps int) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if T <= 0 || steps <= 0 {
		return nil, fmt.Errorf("stability: non-positive T or steps")
	}
	km, kl := s.Km(f0), s.Kl(f0)

	// Continuous dynamics: x' = A x + B λ with x = (e, v) where
	// e = q − q_ref, v = µ − λ0:
	//   e' = γ(λ − µ) = −γ·v + γ·dλ
	//   v' = (km/γ)·e + kl·... — work in the (e, e') companion form:
	//   e'' + kl·e' + km·e = γ·dλ'  (impulse at the step). Equivalent
	// state x = (e, e'): A = [[0,1],[−km,−kl]]; the step in λ enters as
	// an initial condition e'(0) = γ·dλ.
	a11, a12 := 0.0, 1.0
	a21, a22 := -km, -kl

	// Matrix exponential of the 2x2 companion matrix over T via
	// scaling-and-squaring with a Taylor series (adequate for the
	// well-conditioned magnitudes here).
	phi := expm2(a11, a12, a21, a22, T)

	e, de := 0.0, s.Gamma*1.0 // unit workload step
	out := make([]float64, steps)
	for k := 0; k < steps; k++ {
		out[k] = e
		e, de = phi[0]*e+phi[1]*de, phi[2]*e+phi[3]*de
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return out[:k+1], fmt.Errorf("stability: discrete iteration diverged at step %d", k)
		}
	}
	return out, nil
}

// expm2 computes exp([[a,b],[c,d]]·t) by scaling and squaring.
func expm2(a, b, c, d, t float64) [4]float64 {
	// Scale so the norm is small.
	norm := math.Max(math.Abs(a)+math.Abs(b), math.Abs(c)+math.Abs(d)) * t
	squarings := 0
	for norm > 0.5 {
		norm /= 2
		t /= 2
		squarings++
	}
	// Taylor series: I + M + M²/2! + ...
	m := [4]float64{a * t, b * t, c * t, d * t}
	res := [4]float64{1, 0, 0, 1}
	term := [4]float64{1, 0, 0, 1}
	for k := 1; k <= 12; k++ {
		term = mul2(term, m)
		f := 1 / factorial(k)
		res[0] += term[0] * f
		res[1] += term[1] * f
		res[2] += term[2] * f
		res[3] += term[3] * f
	}
	for i := 0; i < squarings; i++ {
		res = mul2(res, res)
	}
	return res
}

func mul2(x, y [4]float64) [4]float64 {
	return [4]float64{
		x[0]*y[0] + x[1]*y[2], x[0]*y[1] + x[1]*y[3],
		x[2]*y[0] + x[3]*y[2], x[2]*y[1] + x[3]*y[3],
	}
}

func factorial(k int) float64 {
	f := 1.0
	for i := 2; i <= k; i++ {
		f *= float64(i)
	}
	return f
}
