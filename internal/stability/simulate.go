package stability

import (
	"fmt"
	"math"
)

// State is one point of a closed-loop trajectory.
type State struct {
	T float64 // time in sampling periods
	Q float64 // queue occupancy
	F float64 // normalized frequency
	U float64 // service rate µ(f)
}

// Mu evaluates the µ–f service model at normalized frequency f.
func (s System) Mu(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return 1 / (s.T1 + s.C2/f)
}

// Simulate integrates the *nonlinear* closed loop with a 4th-order
// Runge-Kutta scheme:
//
//	q' = γ·(λ(t) − µ(f))
//	f' = step·( m·(q−q_ref)/(h(f)·T_m0) + l·q'/(h(f)·T_l0) ),  h(f)=f²
//
// from (q0, f0) over horizon T with step dt, sampling every point.
// λ is the workload (arrival-rate) input. Frequency is clamped to
// [fmin, 1] and the queue to [0, qmax], matching the physical system.
func (s System) Simulate(lambda func(t float64) float64, q0, f0, dt, horizon float64) ([]State, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("stability: non-positive dt or horizon")
	}
	const (
		fmin = 0.25
		qmax = 64
	)
	clampF := func(f float64) float64 {
		if f < fmin {
			return fmin
		}
		if f > 1 {
			return 1
		}
		return f
	}
	clampQ := func(q float64) float64 {
		if q < 0 {
			return 0
		}
		if q > qmax {
			return qmax
		}
		return q
	}

	deriv := func(t, q, f float64) (dq, df float64) {
		f = clampF(f)
		dq = s.Gamma * (lambda(t) - s.Mu(f))
		h := f * f
		df = s.Step * (s.M*(q-s.QRef)/(h*s.TM0) + s.L*dq/(h*s.TL0))
		return dq, df
	}

	n := int(horizon/dt) + 1
	out := make([]State, 0, n)
	q, f := q0, clampF(f0)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		out = append(out, State{T: t, Q: q, F: f, U: s.Mu(f)})

		k1q, k1f := deriv(t, q, f)
		k2q, k2f := deriv(t+dt/2, q+dt/2*k1q, f+dt/2*k1f)
		k3q, k3f := deriv(t+dt/2, q+dt/2*k2q, f+dt/2*k2f)
		k4q, k4f := deriv(t+dt, q+dt*k3q, f+dt*k3f)
		q = clampQ(q + dt/6*(k1q+2*k2q+2*k3q+k4q))
		f = clampF(f + dt/6*(k1f+2*k2f+2*k3f+k4f))

		if math.IsNaN(q) || math.IsNaN(f) || math.IsInf(q, 0) || math.IsInf(f, 0) {
			return out, fmt.Errorf("stability: trajectory diverged at t=%g", t)
		}
	}
	return out, nil
}

// StepResponse runs the canonical experiment behind Remarks 2 and 3: the
// loop starts in equilibrium (λ = µ(f0), q = q_ref) and the workload
// steps up by dLambda at t = 0. It returns the trajectory.
func (s System) StepResponse(f0, dLambda, dt, horizon float64) ([]State, error) {
	lam0 := s.Mu(f0)
	lambda := func(t float64) float64 { return lam0 + dLambda }
	return s.Simulate(lambda, s.QRef, f0, dt, horizon)
}

// ResponseMetrics quantifies a step-response trajectory.
type ResponseMetrics struct {
	// PeakQ is the maximum queue excursion above q_ref. The loop's
	// integral action returns the queue to q_ref in steady state, so
	// the peak *is* the transient.
	PeakQ float64
	// OvershootFrac is the frequency trajectory's overshoot past its
	// final value, as a fraction of the net frequency change.
	OvershootFrac float64
	// SettleTime is the first time after which the frequency stays
	// within 5% of its net change around the final value (-1 = never).
	// Settling is measured on f rather than q because f has a
	// well-defined net excursion under a workload step.
	SettleTime float64
	// FinalQ and FinalF are the trajectory's last state.
	FinalQ, FinalF float64
}

// Analyze computes ResponseMetrics for a trajectory that starts at
// equilibrium (q = q_ref, service rate matching arrivals).
func (s System) Analyze(tr []State) ResponseMetrics {
	if len(tr) == 0 {
		return ResponseMetrics{SettleTime: -1}
	}
	first, final := tr[0], tr[len(tr)-1]
	m := ResponseMetrics{FinalQ: final.Q, FinalF: final.F, SettleTime: -1}
	peakF := first.F
	rising := final.F >= first.F
	for _, st := range tr {
		if e := st.Q - s.QRef; e > m.PeakQ {
			m.PeakQ = e
		}
		if rising && st.F > peakF {
			peakF = st.F
		} else if !rising && st.F < peakF {
			peakF = st.F
		}
	}
	net := math.Abs(final.F - first.F)
	if net > 1e-9 {
		if over := math.Abs(peakF-first.F) - net; over > 0 {
			m.OvershootFrac = over / net
		}
	}
	band := 0.05 * net
	if band <= 0 {
		band = 1e-3
	}
	for i := len(tr) - 1; i >= 0; i-- {
		if math.Abs(tr[i].F-final.F) > band {
			if i+1 < len(tr) {
				m.SettleTime = tr[i+1].T
			}
			break
		}
		if i == 0 {
			m.SettleTime = 0
		}
	}
	return m
}
