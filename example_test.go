package mcddvfs_test

import (
	"fmt"
	"sort"

	"mcddvfs"
)

// ExampleBenchmarks lists the bundled benchmark suite.
func ExampleBenchmarks() {
	names := mcddvfs.Benchmarks()
	sort.Strings(names)
	fmt.Println(len(names), "benchmarks, including", names[0])
	// Output: 17 benchmarks, including adpcm_decode
}

// ExampleRun simulates a benchmark under the adaptive controller and
// checks the run against the no-DVFS baseline.
func ExampleRun() {
	base, err := mcddvfs.Run(mcddvfs.RunSpec{
		Benchmark: "gzip", Scheme: mcddvfs.SchemeNone,
		Instructions: 50000, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	adaptive, err := mcddvfs.Run(mcddvfs.RunSpec{
		Benchmark: "gzip", Scheme: mcddvfs.SchemeAdaptive,
		Instructions: 50000, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	c := mcddvfs.CompareRuns(base, adaptive)
	fmt.Println("saved energy:", c.EnergySaving > 0)
	fmt.Println("slowdown under 10%:", c.PerfDegradation < 0.10)
	// Output:
	// saved energy: true
	// slowdown under 10%: true
}

// ExampleStabilitySystem inspects the paper's Section-4 analytic model.
func ExampleStabilitySystem() {
	sys := mcddvfs.DefaultStabilitySystem()
	fmt.Printf("stable at f_max: %v\n", sys.Stable(1))
	fmt.Printf("damping at f=0.5: %.2f\n", sys.DampingRatio(0.5))
	// Output:
	// stable at f_max: true
	// damping at f=0.5: 0.62
}

// ExampleDefaultController shows the paper's per-domain reference
// occupancies and time delays.
func ExampleDefaultController() {
	for _, d := range []mcddvfs.ExecDomain{mcddvfs.DomainInt, mcddvfs.DomainFP, mcddvfs.DomainLS} {
		cfg := mcddvfs.DefaultController(d)
		fmt.Printf("%v: qref=%d Tm0=%.0f Tl0=%.0f\n", d, cfg.QRef, cfg.TM0, cfg.TL0)
	}
	// Output:
	// INT: qref=7 Tm0=50 Tl0=8
	// FP: qref=4 Tm0=50 Tl0=8
	// LS: qref=4 Tm0=50 Tl0=8
}
