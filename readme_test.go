package mcddvfs

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestReadmeSchemeTable keeps the README's scheme table honest: every
// row is regenerated from the registry via Schemes(), so registering a
// new scheme without documenting it (or documenting one that does not
// exist) fails the build.
func TestReadmeSchemeTable(t *testing.T) {
	src, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(src)

	var rows []string
	for _, d := range Schemes() {
		kind := "core"
		switch {
		case !d.Controlled:
			kind = "baseline"
		case d.Extension:
			kind = "extension"
		}
		rows = append(rows, fmt.Sprintf("| `%s` | %s | %s |", d.Name, kind, d.Description))
	}
	table := strings.Join(rows, "\n")
	if !strings.Contains(readme, table) {
		t.Errorf("README scheme table is out of date; it must contain exactly these registry-derived rows in order:\n%s", table)
	}

	// No row for a scheme or governor the registries do not know. Rows
	// whose backticked token starts with "-" document CLI flags, not
	// registry entries.
	for _, line := range strings.Split(readme, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		name := strings.SplitN(line, "`", 3)[1]
		if strings.HasPrefix(name, "-") {
			continue
		}
		known := false
		for _, d := range Schemes() {
			if string(d.Name) == name {
				known = true
			}
		}
		for _, d := range Governors() {
			if d.Name == name {
				known = true
			}
		}
		if !known {
			t.Errorf("README documents unregistered scheme or governor %q", name)
		}
	}
}

// TestReadmeGovernorTable is the governor registry's twin of the scheme
// check: the README table must carry exactly the registry-derived rows,
// in registry order.
func TestReadmeGovernorTable(t *testing.T) {
	src, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, d := range Governors() {
		kind := "capping"
		if !d.Capping {
			kind = "baseline"
		}
		rows = append(rows, fmt.Sprintf("| `%s` | %s | %s |", d.Name, kind, d.Description))
	}
	table := strings.Join(rows, "\n")
	if !strings.Contains(string(src), table) {
		t.Errorf("README governor table is out of date; it must contain exactly these registry-derived rows in order:\n%s", table)
	}
}
