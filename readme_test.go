package mcddvfs

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestReadmeSchemeTable keeps the README's scheme table honest: every
// row is regenerated from the registry via Schemes(), so registering a
// new scheme without documenting it (or documenting one that does not
// exist) fails the build.
func TestReadmeSchemeTable(t *testing.T) {
	src, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(src)

	var rows []string
	for _, d := range Schemes() {
		kind := "core"
		switch {
		case !d.Controlled:
			kind = "baseline"
		case d.Extension:
			kind = "extension"
		}
		rows = append(rows, fmt.Sprintf("| `%s` | %s | %s |", d.Name, kind, d.Description))
	}
	table := strings.Join(rows, "\n")
	if !strings.Contains(readme, table) {
		t.Errorf("README scheme table is out of date; it must contain exactly these registry-derived rows in order:\n%s", table)
	}

	// No row for a scheme the registry does not know.
	for _, line := range strings.Split(readme, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		name := strings.TrimPrefix(strings.SplitN(line, "`", 3)[1], "")
		known := false
		for _, d := range Schemes() {
			if string(d.Name) == name {
				known = true
			}
		}
		if !known {
			t.Errorf("README documents unregistered scheme %q", name)
		}
	}
}
