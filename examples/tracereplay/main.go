// Tracereplay demonstrates deterministic trace capture and replay:
// generate a workload trace once, serialize it, then replay the *same*
// dynamic instruction stream under different DVFS schemes — the
// methodology cycle-accurate simulation studies use to guarantee every
// scheme sees identical work.
package main

import (
	"bytes"
	"fmt"
	"log"

	"mcddvfs"
)

func main() {
	const insts = 150000
	prof, err := mcddvfs.BenchmarkProfile("gsm_decode")
	if err != nil {
		log.Fatal(err)
	}

	// Capture the trace once.
	gen, err := mcddvfs.NewTraceGenerator(prof, 42, insts)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := mcddvfs.WriteTrace(&buf, gen, insts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %s: %d instructions, %d bytes serialized\n\n",
		prof.Name, insts, buf.Len())
	blob := buf.Bytes()

	// Replay the identical stream under each scheme.
	schemes := []mcddvfs.Scheme{
		mcddvfs.SchemeNone, mcddvfs.SchemeAdaptive,
		mcddvfs.SchemePID, mcddvfs.SchemeAttackDecay,
	}
	var base *mcddvfs.Result
	fmt.Printf("%-14s %14s %12s %8s\n", "scheme", "time", "energy (J)", "IPC")
	for _, s := range schemes {
		r, err := mcddvfs.ReadTrace(bytes.NewReader(blob))
		if err != nil {
			log.Fatal(err)
		}
		res, err := mcddvfs.RunTrace(r, mcddvfs.RunSpec{Scheme: s, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14v %12.5g %8.3f\n", s, res.Metrics.ExecTime, res.Metrics.EnergyJ, res.IPC)
		if s == mcddvfs.SchemeNone {
			base = res
		} else if base != nil {
			c := mcddvfs.CompareRuns(base, res)
			fmt.Printf("%-14s   save %.2f%%  perf %.2f%%  EDP %.2f%%\n", "",
				100*c.EnergySaving, 100*c.PerfDegradation, 100*c.EDPImprovement)
		}
	}
}
