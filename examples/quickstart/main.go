// Quickstart: simulate one benchmark on the MCD processor with the
// paper's adaptive DVFS controller and compare it against the no-DVFS
// baseline (all domains pinned at f_max).
package main

import (
	"fmt"
	"log"

	"mcddvfs"
)

func main() {
	const bench = "epic_decode"
	const insts = 300000

	base, err := mcddvfs.Run(mcddvfs.RunSpec{
		Benchmark:    bench,
		Scheme:       mcddvfs.SchemeNone,
		Instructions: insts,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := mcddvfs.Run(mcddvfs.RunSpec{
		Benchmark:    bench,
		Scheme:       mcddvfs.SchemeAdaptive,
		Instructions: insts,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (%d instructions)\n\n", bench, insts)
	fmt.Printf("%-22s %14s %14s\n", "", "baseline", "adaptive DVFS")
	fmt.Printf("%-22s %14v %14v\n", "execution time", base.Metrics.ExecTime, adaptive.Metrics.ExecTime)
	fmt.Printf("%-22s %13.4g J %13.4g J\n", "energy", base.Metrics.EnergyJ, adaptive.Metrics.EnergyJ)
	fmt.Printf("%-22s %14.3f %14.3f\n", "IPC", base.IPC, adaptive.IPC)

	c := mcddvfs.CompareRuns(base, adaptive)
	fmt.Printf("\nenergy saving:        %6.2f%%\n", 100*c.EnergySaving)
	fmt.Printf("performance cost:     %6.2f%%\n", 100*c.PerfDegradation)
	fmt.Printf("EDP improvement:      %6.2f%%\n", 100*c.EDPImprovement)

	fmt.Println("\nper-domain mean frequency under adaptive control:")
	for _, d := range []string{"INT", "FP", "LS"} {
		fmt.Printf("  %-4s %7.1f MHz (%d retargets)\n",
			d, adaptive.Domains[d].MeanFreqMHz, adaptive.Domains[d].Transitions)
	}
}
