// Customworkload shows how to define your own synthetic workload
// profile — here, a signal-processing pipeline that alternates a
// floating-point filter burst with an integer bookkeeping stretch —
// and watch the adaptive controller track the FP domain's demand.
package main

import (
	"fmt"
	"log"

	"mcddvfs"
)

func main() {
	prof := mcddvfs.Profile{
		Name:    "sensor_pipeline",
		Suite:   "custom",
		Loop:    true,
		LoopLen: 6000,
		Phases: []mcddvfs.Phase{
			{
				Name:   "fir_filter",
				Weight: 1.0,
				// Heavy FP with streaming loads.
				Mix:            fpHeavyMix(),
				DepMean:        6,
				Dep2Prob:       0.55,
				BranchBias:     0.95,
				HardBranchFrac: 0.02,
				WorkingSet:     512 << 10,
				SeqFrac:        0.9,
				CodeSize:       16 << 10,
			},
			{
				Name:   "bookkeeping",
				Weight: 1.0,
				// Branchy integer code, FP idle.
				Mix:            intHeavyMix(),
				DepMean:        2,
				Dep2Prob:       0.45,
				BranchBias:     0.85,
				HardBranchFrac: 0.15,
				WorkingSet:     128 << 10,
				SeqFrac:        0.6,
				CodeSize:       16 << 10,
			},
		},
	}
	if err := prof.Validate(); err != nil {
		log.Fatal(err)
	}

	base, err := mcddvfs.RunProfile(prof, mcddvfs.RunSpec{Scheme: mcddvfs.SchemeNone, Instructions: 250000})
	if err != nil {
		log.Fatal(err)
	}
	run, err := mcddvfs.RunProfile(prof, mcddvfs.RunSpec{Scheme: mcddvfs.SchemeAdaptive, Instructions: 250000})
	if err != nil {
		log.Fatal(err)
	}

	pid, err := mcddvfs.RunProfile(prof, mcddvfs.RunSpec{Scheme: mcddvfs.SchemePID, Instructions: 250000})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom workload %q:\n", prof.Name)
	for _, r := range []*mcddvfs.Result{run, pid} {
		c := mcddvfs.CompareRuns(base, r)
		fmt.Printf("  %-12s energy saving %6.2f%%  perf cost %6.2f%%  EDP impr. %6.2f%%\n",
			r.Scheme, 100*c.EnergySaving, 100*c.PerfDegradation, 100*c.EDPImprovement)
	}

	fmt.Println("\nFP-domain frequency trace (the controller chasing the filter bursts):")
	tr := run.FreqTrace["FP"]
	step := len(tr)/24 + 1
	for i := 0; i < len(tr); i += step {
		n := int(tr[i].MHz / 25)
		fmt.Printf("  %9d insts %6.0f MHz ", tr[i].Insts, tr[i].MHz)
		for j := 0; j < n; j++ {
			fmt.Print("#")
		}
		fmt.Println()
	}

	// The classifier agrees this is a fast-varying workload.
	share, fast, err := mcddvfs.ClassifyWorkload(base.QueueSamples["FP"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspectral classification of the FP queue: share=%.2f fast=%v\n", share, fast)
}

// fpHeavyMix builds a phase mix dominated by FP adds/multiplies.
func fpHeavyMix() mcddvfs.Mix {
	var m mcddvfs.Mix
	m[mcddvfs.ClassFPAdd] = 0.22
	m[mcddvfs.ClassFPMult] = 0.16
	m[mcddvfs.ClassLoad] = 0.28
	m[mcddvfs.ClassStore] = 0.1
	m[mcddvfs.ClassBranch] = 0.08
	m[mcddvfs.ClassIntALU] = 0.16
	return m
}

// intHeavyMix builds a branchy integer mix.
func intHeavyMix() mcddvfs.Mix {
	var m mcddvfs.Mix
	m[mcddvfs.ClassIntALU] = 0.5
	m[mcddvfs.ClassLoad] = 0.2
	m[mcddvfs.ClassStore] = 0.08
	m[mcddvfs.ClassBranch] = 0.2
	m[mcddvfs.ClassIntMult] = 0.02
	return m
}
